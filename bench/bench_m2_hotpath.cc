/**
 * @file
 * M2: hot-path memory-model benchmark. Two measurements, one run:
 *
 * 1. Micro lanes: the per-packet data flow of the coupled hot path —
 *    allocate a packet, register it in an in-flight table, queue a
 *    completion callback, then deliver (look up, time-stamp, erase,
 *    free) — executed twice over the same workload. The *legacy* lane
 *    uses the pre-refactor idioms (std::make_shared packets, std::map
 *    in-flight table, std::function callbacks with a realistic ~48-byte
 *    capture); the *pooled* lane uses the current substrate (slab pool
 *    handles, FlatMap, InlineCallable). Both lanes compute the same
 *    checksum, so the comparison is like-for-like.
 *
 * 2. System lane: a real CosimCycle FullSystem advanced quantum by
 *    quantum past warm-up, reporting end-to-end packets/sec and the
 *    honest steady-state heap allocations per quantum.
 *
 * A counting global allocator (defined in this translation unit, so it
 * only governs this binary) attributes heap traffic to each lane.
 * Results go to stdout and to BENCH_hotpath.json in the working
 * directory. --quick shrinks the workload for CI.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "cosim/full_system.hh"
#include "noc/cycle_network.hh"
#include "noc/packet.hh"
#include "sim/callable.hh"
#include "sim/cpuid.hh"
#include "sim/flat_map.hh"
#include "sim/pool.hh"
#include "sim/rng.hh"
#include "sim/simulation.hh"

// ---------------------------------------------------------------------
// Counting global allocator (this binary only).
// ---------------------------------------------------------------------

namespace
{
std::atomic<std::uint64_t> g_allocs{0};
} // namespace

void *
operator new(std::size_t n)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    return ::operator new(n);
}

void *
operator new(std::size_t n, std::align_val_t al)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::aligned_alloc(static_cast<std::size_t>(al),
                                     (n + static_cast<std::size_t>(al) -
                                      1) &
                                         ~(static_cast<std::size_t>(al) -
                                           1)))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n, std::align_val_t al)
{
    return ::operator new(n, al);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

namespace
{

using namespace rasim;

// ---------------------------------------------------------------------
// Micro lanes.
// ---------------------------------------------------------------------

constexpr int packets_per_quantum = 64;

/** Pre-refactor idioms: shared_ptr + std::map + std::function. */
struct LegacyLane
{
    std::map<std::uint64_t, std::shared_ptr<noc::Packet>> inflight;
    std::vector<std::function<void()>> pending;
    std::uint64_t checksum = 0;

    void
    quantum(std::uint64_t base)
    {
        for (int i = 0; i < packets_per_quantum; ++i) {
            auto pkt = std::make_shared<noc::Packet>();
            pkt->id = base + static_cast<std::uint64_t>(i);
            pkt->src = static_cast<NodeId>(i & 63);
            pkt->dst = static_cast<NodeId>((i * 7) & 63);
            pkt->inject_tick = base;
            inflight[pkt->id] = pkt;
            // ~48-byte capture: what the coherence completion lambdas
            // actually carried, past std::function's inline buffer.
            std::uint64_t a = base, b = static_cast<std::uint64_t>(i);
            std::uint64_t c = base ^ b, id = pkt->id;
            pending.emplace_back([this, id, a, b, c] {
                auto it = inflight.find(id);
                it->second->deliver_tick = a + b + 4;
                checksum += it->second->deliver_tick + c;
                inflight.erase(it);
            });
        }
        for (auto &fn : pending)
            fn();
        pending.clear();
    }
};

/** Current substrate: slab pool + FlatMap + InlineCallable. */
struct PooledLane
{
    Pool<noc::Packet> pool{"bench.packet"};
    FlatMap<std::uint64_t, PoolPtr<noc::Packet>> inflight;
    std::vector<InlineCallable> pending;
    std::uint64_t checksum = 0;

    void
    quantum(std::uint64_t base)
    {
        for (int i = 0; i < packets_per_quantum; ++i) {
            PoolPtr<noc::Packet> pkt = pool.allocate();
            pkt->id = base + static_cast<std::uint64_t>(i);
            pkt->src = static_cast<NodeId>(i & 63);
            pkt->dst = static_cast<NodeId>((i * 7) & 63);
            pkt->inject_tick = base;
            std::uint64_t a = base, b = static_cast<std::uint64_t>(i);
            std::uint64_t c = base ^ b, id = pkt->id;
            inflight.insertOrAssign(id, std::move(pkt));
            pending.emplace_back([this, id, a, b, c] {
                PoolPtr<noc::Packet> *p = inflight.find(id);
                (*p)->deliver_tick = a + b + 4;
                checksum += (*p)->deliver_tick + c;
                inflight.erase(id);
            });
        }
        for (auto &fn : pending)
            fn();
        pending.clear();
    }
};

struct LaneResult
{
    double packets_per_sec = 0.0;
    double allocs_per_quantum = 0.0;
    std::uint64_t checksum = 0;
};

template <typename Lane>
LaneResult
runLane(std::uint64_t warm_quanta, std::uint64_t quanta)
{
    Lane lane;
    for (std::uint64_t q = 0; q < warm_quanta; ++q)
        lane.quantum(q * 1000);

    std::uint64_t allocs0 = g_allocs.load(std::memory_order_relaxed);
    double secs = benchutil::timeIt([&] {
        for (std::uint64_t q = 0; q < quanta; ++q)
            lane.quantum((warm_quanta + q) * 1000);
    });
    std::uint64_t allocs1 = g_allocs.load(std::memory_order_relaxed);

    LaneResult r;
    r.packets_per_sec =
        static_cast<double>(quanta * packets_per_quantum) / secs;
    r.allocs_per_quantum =
        static_cast<double>(allocs1 - allocs0) /
        static_cast<double>(quanta);
    r.checksum = lane.checksum;
    return r;
}

// ---------------------------------------------------------------------
// System lane.
// ---------------------------------------------------------------------

struct SystemResult
{
    double packets_per_sec = 0.0;
    double allocs_per_quantum = 0.0;
    std::uint64_t quanta = 0;
};

SystemResult
runSystem(Tick warm_ticks, Tick run_ticks)
{
    cosim::FullSystemOptions o;
    o.mode = cosim::Mode::CosimCycle;
    o.app = "lu";
    o.ops_per_core = 10000000; // never drains inside the window
    o.quantum = 64;
    o.noc.columns = 4;
    o.noc.rows = 4;
    o.mem.l1_sets = 16;
    cosim::FullSystem sys(Config(), o);

    sys.run(warm_ticks);
    std::uint64_t delivered0 = sys.packetsDelivered();
    std::uint64_t allocs0 = g_allocs.load(std::memory_order_relaxed);
    double secs =
        benchutil::timeIt([&] { sys.run(warm_ticks + run_ticks); });
    std::uint64_t allocs1 = g_allocs.load(std::memory_order_relaxed);

    SystemResult r;
    r.quanta = run_ticks / o.quantum;
    r.packets_per_sec =
        static_cast<double>(sys.packetsDelivered() - delivered0) / secs;
    r.allocs_per_quantum = static_cast<double>(allocs1 - allocs0) /
                           static_cast<double>(r.quanta);
    return r;
}

// ---------------------------------------------------------------------
// Kernel lanes: the same detailed CycleNetwork run under each compute
// backend — object (per-component reference), soa-scalar and, when the
// build and host allow it, soa-avx2. All lanes see identical seeded
// traffic and must deliver the identical packet stream (checksummed),
// so the throughput ratio isolates the kernel: flat SoA state plus the
// active-node worklist versus pointer-chasing every component every
// cycle.
// ---------------------------------------------------------------------

struct KernelLaneResult
{
    double router_cycles_per_sec = 0.0; ///< routers x cycles / wall sec
    double ns_per_router_cycle = 0.0;
    double allocs_per_quantum = 0.0;
    std::uint64_t checksum = 0;
};

KernelLaneResult
runKernelLane(const char *kernel, const char *simd,
              std::uint64_t warm_quanta, std::uint64_t quanta)
{
    constexpr Tick quantum = 1000;
    constexpr int packets_per_kquantum = 48;

    Simulation sim;
    noc::NocParams p;
    p.columns = 16;
    p.rows = 16;
    p.kernel = kernel;
    p.simd = simd;
    noc::CycleNetwork net(sim, "bench", p);

    KernelLaneResult r;
    net.setDeliveryHandler([&r](const noc::PacketPtr &pkt) {
        r.checksum += pkt->deliver_tick ^ pkt->id;
    });

    Rng rng(0xbe7c, 9);
    std::uint64_t next_id = 1;
    std::size_t nodes = net.numNodes();
    auto step = [&](std::uint64_t q) {
        Tick base = q * quantum;
        for (int i = 0; i < packets_per_kquantum; ++i) {
            net.inject(noc::makePacket(
                static_cast<PacketId>(next_id++),
                static_cast<NodeId>(rng.range(nodes)),
                static_cast<NodeId>(rng.range(nodes)),
                static_cast<noc::MsgClass>(rng.range(3)),
                rng.bernoulli(0.5) ? 8 : 64,
                base + static_cast<Tick>(rng.range(quantum))));
        }
        net.advanceTo(base + quantum);
    };

    for (std::uint64_t q = 0; q < warm_quanta; ++q)
        step(q);

    std::uint64_t allocs0 = g_allocs.load(std::memory_order_relaxed);
    double secs = benchutil::timeIt([&] {
        for (std::uint64_t q = 0; q < quanta; ++q)
            step(warm_quanta + q);
    });
    std::uint64_t allocs1 = g_allocs.load(std::memory_order_relaxed);

    double router_cycles =
        static_cast<double>(quanta * quantum) *
        static_cast<double>(nodes);
    r.router_cycles_per_sec = router_cycles / secs;
    r.ns_per_router_cycle = secs * 1e9 / router_cycles;
    r.allocs_per_quantum = static_cast<double>(allocs1 - allocs0) /
                           static_cast<double>(quanta);
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
    }

    const std::uint64_t warm_quanta = quick ? 200 : 1000;
    const std::uint64_t quanta = quick ? 5000 : 50000;
    const Tick sys_warm = quick ? 10000 : 40000;
    const Tick sys_run = quick ? 20000 : 160000;

    benchutil::printHeader("M2: hot-path memory model");

    LaneResult legacy = runLane<LegacyLane>(warm_quanta, quanta);
    LaneResult pooled = runLane<PooledLane>(warm_quanta, quanta);
    if (legacy.checksum != pooled.checksum) {
        std::fprintf(stderr,
                     "lane checksum mismatch: legacy %llu pooled %llu\n",
                     static_cast<unsigned long long>(legacy.checksum),
                     static_cast<unsigned long long>(pooled.checksum));
        return 1;
    }
    double speedup = pooled.packets_per_sec / legacy.packets_per_sec;

    benchutil::printRow({"lane", "packets/s", "allocs/quantum"});
    benchutil::printRow({"legacy", benchutil::fmt(legacy.packets_per_sec, 0),
                         benchutil::fmt(legacy.allocs_per_quantum, 2)});
    benchutil::printRow({"pooled", benchutil::fmt(pooled.packets_per_sec, 0),
                         benchutil::fmt(pooled.allocs_per_quantum, 2)});
    std::printf("micro speedup: %.2fx (target >= 1.3x)\n", speedup);

    SystemResult sys = runSystem(sys_warm, sys_run);
    std::printf("system (cosim 4x4, quantum 64): %.0f packets/s, "
                "%.2f allocs/quantum over %llu quanta\n",
                sys.packets_per_sec, sys.allocs_per_quantum,
                static_cast<unsigned long long>(sys.quanta));

    // Kernel lanes: 16x16 CycleNetwork, identical seeded traffic.
    const std::uint64_t kwarm = quick ? 50 : 100;
    const std::uint64_t kquanta = quick ? 40 : 300;
    KernelLaneResult kobj = runKernelLane("object", "auto", kwarm, kquanta);
    KernelLaneResult ksoa = runKernelLane("soa", "scalar", kwarm, kquanta);
    bool have_avx2 = cpuid::simdCompiledIn() && cpuid::hostHasAvx2();
    KernelLaneResult ksimd;
    if (have_avx2)
        ksimd = runKernelLane("soa", "avx2", kwarm, kquanta);
    if (ksoa.checksum != kobj.checksum ||
        (have_avx2 && ksimd.checksum != kobj.checksum)) {
        std::fprintf(stderr, "kernel lane checksum mismatch\n");
        return 1;
    }
    double soa_speedup =
        ksoa.router_cycles_per_sec / kobj.router_cycles_per_sec;
    double simd_speedup =
        have_avx2
            ? ksimd.router_cycles_per_sec / kobj.router_cycles_per_sec
            : 0.0;

    benchutil::printRow(
        {"kernel lane", "Mrouter-cyc/s", "ns/router-cyc",
         "allocs/quantum"});
    auto kernelRow = [](const char *name, const KernelLaneResult &k) {
        benchutil::printRow(
            {name, benchutil::fmt(k.router_cycles_per_sec / 1e6, 1),
             benchutil::fmt(k.ns_per_router_cycle, 3),
             benchutil::fmt(k.allocs_per_quantum, 2)});
    };
    kernelRow("object", kobj);
    kernelRow("soa-scalar", ksoa);
    if (have_avx2)
        kernelRow("soa-avx2", ksimd);
    else
        std::printf("soa-avx2: n/a (build or host lacks AVX2)\n");
    std::printf("soa kernel speedup vs object: %.2fx scalar", soa_speedup);
    if (have_avx2)
        std::printf(", %.2fx avx2", simd_speedup);
    std::printf(" (target >= 1.5x)\n");

    const char *path = "BENCH_hotpath.json";
    if (FILE *f = std::fopen(path, "w")) {
        std::fprintf(
            f,
            "{\n"
            "  \"quick\": %s,\n"
            "  \"micro\": {\n"
            "    \"quanta\": %llu,\n"
            "    \"packets_per_quantum\": %d,\n"
            "    \"legacy\": {\"packets_per_sec\": %.1f, "
            "\"allocs_per_quantum\": %.3f},\n"
            "    \"pooled\": {\"packets_per_sec\": %.1f, "
            "\"allocs_per_quantum\": %.3f},\n"
            "    \"speedup\": %.3f\n"
            "  },\n"
            "  \"system\": {\n"
            "    \"mode\": \"cosim\",\n"
            "    \"quanta\": %llu,\n"
            "    \"packets_per_sec\": %.1f,\n"
            "    \"allocs_per_quantum\": %.3f\n"
            "  },\n"
            "  \"kernel\": {\n"
            "    \"mesh\": \"16x16\",\n"
            "    \"quanta\": %llu,\n"
            "    \"object\": {\"router_cycles_per_sec\": %.1f, "
            "\"ns_per_router_cycle\": %.4f, "
            "\"allocs_per_quantum\": %.3f},\n"
            "    \"soa_scalar\": {\"router_cycles_per_sec\": %.1f, "
            "\"ns_per_router_cycle\": %.4f, "
            "\"allocs_per_quantum\": %.3f},\n",
            quick ? "true" : "false",
            static_cast<unsigned long long>(quanta), packets_per_quantum,
            legacy.packets_per_sec, legacy.allocs_per_quantum,
            pooled.packets_per_sec, pooled.allocs_per_quantum, speedup,
            static_cast<unsigned long long>(sys.quanta),
            sys.packets_per_sec, sys.allocs_per_quantum,
            static_cast<unsigned long long>(kquanta),
            kobj.router_cycles_per_sec, kobj.ns_per_router_cycle,
            kobj.allocs_per_quantum, ksoa.router_cycles_per_sec,
            ksoa.ns_per_router_cycle, ksoa.allocs_per_quantum);
        if (have_avx2)
            std::fprintf(
                f,
                "    \"soa_avx2\": {\"router_cycles_per_sec\": %.1f, "
                "\"ns_per_router_cycle\": %.4f, "
                "\"allocs_per_quantum\": %.3f},\n"
                "    \"soa_avx2_speedup\": %.3f,\n",
                ksimd.router_cycles_per_sec, ksimd.ns_per_router_cycle,
                ksimd.allocs_per_quantum, simd_speedup);
        else
            std::fprintf(f, "    \"soa_avx2\": null,\n");
        std::fprintf(f,
                     "    \"soa_speedup\": %.3f\n"
                     "  }\n"
                     "}\n",
                     soa_speedup);
        std::fclose(f);
        std::printf("wrote %s\n", path);
    } else {
        std::perror("BENCH_hotpath.json");
        return 1;
    }
    return 0;
}
