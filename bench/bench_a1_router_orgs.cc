/**
 * @file
 * A1 (extension ablation, DESIGN.md "design choices in the detailed
 * component"): virtual-channel versus bufferless deflection router
 * organisations, swept over offered load — the latency/energy
 * trade-off study the detailed component model enables.
 */

#include <cstdio>

#include "bench_util.hh"
#include "noc/cycle_network.hh"
#include "noc/deflection_network.hh"
#include "noc/power.hh"
#include "sim/simulation.hh"
#include "workload/traffic.hh"

using namespace rasim;
using namespace benchutil;

namespace
{

struct OrgResult
{
    double latency = 0.0;
    double energy_pj = 0.0;
    double deflections = 0.0;
};

OrgResult
runOrg(bool deflection, double rate)
{
    Simulation sim;
    noc::NocParams p;
    OrgResult r;
    const Tick cycles = 15000;

    auto drive = [&](noc::NetworkModel &net) {
        workload::TrafficGenerator::Options o;
        o.rate = rate;
        o.size_bytes = 8;
        o.data_frac = 0.4;
        workload::TrafficGenerator gen(net, p.columns, p.rows, o,
                                       sim.makeRng(11));
        for (Tick t = 128; t <= cycles; t += 128) {
            gen.generateTo(t);
            net.advanceTo(t);
        }
        net.advanceTo(cycles + 100000);
    };

    if (deflection) {
        noc::DeflectionNetwork net(sim, "dnoc", p);
        drive(net);
        r.latency = net.totalLatency.mean();
        r.deflections = net.flitsDeflected.value();
        // Bufferless energy: no buffer writes; price hops as switch +
        // link events.
        noc::PowerParams pw;
        noc::NocActivity a;
        a.routers = 64;
        a.cycles = cycles;
        auto hops = static_cast<std::uint64_t>(
            net.flitsEjected.value() + net.flitsDeflected.value());
        a.switch_traversals = hops;
        a.link_traversals = hops;
        r.energy_pj = noc::NocPowerModel(pw).estimate(a).totalPj();
    } else {
        noc::CycleNetwork net(sim, "noc", p);
        drive(net);
        r.latency = net.totalLatency.mean();
        r.energy_pj = noc::NocPowerModel()
                          .estimate(noc::activityOf(net))
                          .totalPj();
    }
    return r;
}

} // namespace

int
main()
{
    printHeader("A1: VC router vs bufferless deflection router "
                "(8x8 mesh, uniform random)");
    printRow({"rate", "vc_lat", "defl_lat", "vc_energy_nJ",
              "defl_energy_nJ", "deflections"});
    for (double rate : {0.01, 0.03, 0.06, 0.10, 0.14}) {
        OrgResult vc = runOrg(false, rate);
        OrgResult dn = runOrg(true, rate);
        printRow({fmt(rate, 3), fmt(vc.latency), fmt(dn.latency),
                  fmt(vc.energy_pj / 1000.0), fmt(dn.energy_pj / 1000.0),
                  fmt(dn.deflections, 0)});
    }
    std::printf("\n(bufferless wins energy at low load — no buffers to "
                "write — and loses latency as deflections grow)\n");
    return 0;
}
