/**
 * @file
 * E2 (Fig. 2 / Table 2) — the headline claim: "co-simulation using
 * reciprocal abstraction of the cycle-level network model reduces
 * packet latency error compared to the more abstract network model by
 * 69% on average."
 *
 * For every application preset, run the 64-core target three ways:
 *   monolithic  — cycle-level network, quantum 1 (the reference),
 *   abstract    — static analytical model (the paper's baseline),
 *   cosim       — reciprocal-abstraction co-simulation (quantum 256).
 * Report each model's mean-packet-latency error against the reference
 * and the average error reduction.
 */

#include <cstdio>

#include "bench_util.hh"
#include "workload/app_profiles.hh"

using namespace rasim;
using namespace benchutil;

int
main()
{
    printHeader("E2: packet latency error vs monolithic reference "
                "(8x8 mesh, 64 cores)");
    printRow({"app", "ref_lat", "abs_lat", "abs_err", "cosim_lat",
              "cosim_err", "reduction"});

    double abs_err_sum = 0.0, cosim_err_sum = 0.0;
    int apps = 0;
    for (const auto &app : workload::appProfiles()) {
        cosim::FullSystem mono(
            Config(), accuracyOptions(cosim::Mode::Monolithic, app.name));
        mono.run();
        double ref = mono.meanPacketLatency();

        cosim::FullSystem abs(
            Config(), accuracyOptions(cosim::Mode::Abstract, app.name));
        abs.run();
        double abs_lat = abs.meanPacketLatency();
        double abs_err = relErr(abs_lat, ref);

        cosim::FullSystem cs(
            Config(), accuracyOptions(cosim::Mode::CosimCycle, app.name));
        cs.run();
        double cs_lat = cs.meanPacketLatency();
        double cs_err = relErr(cs_lat, ref);

        double reduction =
            abs_err > 0.0 ? 1.0 - cs_err / abs_err : 0.0;
        abs_err_sum += abs_err;
        cosim_err_sum += cs_err;
        ++apps;
        printRow({app.name, fmt(ref), fmt(abs_lat), pct(abs_err),
                  fmt(cs_lat), pct(cs_err), pct(reduction)});
    }

    double mean_abs = abs_err_sum / apps;
    double mean_cosim = cosim_err_sum / apps;
    std::printf("\nmean abstract-model error:     %s\n",
                pct(mean_abs).c_str());
    std::printf("mean cosim error:              %s\n",
                pct(mean_cosim).c_str());
    std::printf("average error reduction:       %s  (paper: 69%%)\n",
                pct(mean_abs > 0 ? 1.0 - mean_cosim / mean_abs : 0)
                    .c_str());
    return 0;
}
