/**
 * @file
 * E1 (Fig. 1): "We demonstrate the potential inaccuracies of isolated
 * component simulation."
 *
 * Part A: classic latency-vs-load curves of the standalone NoC under
 * synthetic patterns — the isolated methodology itself.
 *
 * Part B: for each application preset, compare the packet latency the
 * NoC shows (1) in system context (reciprocal co-simulation), (2)
 * isolated under uniform synthetic traffic matched in average offered
 * load and size mix, and (3) isolated replaying the co-simulation's
 * own packet trace (spatial/temporal mix preserved, closed loop
 * lost). The mismatch columns are the paper's point.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "noc/cycle_network.hh"
#include "sim/simulation.hh"
#include "workload/app_profiles.hh"
#include "workload/trace.hh"
#include "workload/traffic.hh"

using namespace rasim;
using namespace benchutil;

namespace
{

struct NetStats
{
    double mean_latency = 0.0;
    double packets = 0.0;
    Tick cycles = 0;
};

NetStats
runSynthetic(workload::TrafficGenerator::Options opts, Tick cycles,
             const noc::NocParams &p)
{
    Simulation sim;
    noc::CycleNetwork net(sim, "noc", p);
    workload::TrafficGenerator gen(net, p.columns, p.rows, opts,
                                   sim.makeRng(0xe1));
    for (Tick t = 256; t <= cycles; t += 256) {
        gen.generateTo(t);
        net.advanceTo(t);
    }
    net.advanceTo(cycles + 50000); // drain
    NetStats s;
    s.mean_latency = net.totalLatency.mean();
    s.packets = net.packetsDelivered.value();
    s.cycles = cycles;
    return s;
}

NetStats
runReplay(const workload::PacketTrace &trace, Tick cycles,
          const noc::NocParams &p)
{
    Simulation sim;
    noc::CycleNetwork net(sim, "noc", p);
    workload::TraceReplayer rep(net, trace);
    for (Tick t = 256; t <= cycles; t += 256) {
        rep.replayTo(t);
        net.advanceTo(t);
    }
    rep.replayTo(cycles + 1);
    net.advanceTo(cycles + 50000);
    NetStats s;
    s.mean_latency = net.totalLatency.mean();
    s.packets = net.packetsDelivered.value();
    return s;
}

} // namespace

int
main()
{
    printHeader("E1-A: isolated NoC latency vs offered load (8x8 mesh)");
    printRow({"pattern", "rate", "mean_lat", "delivered"});
    for (const char *pattern : {"uniform", "transpose", "hotspot"}) {
        for (double rate : {0.005, 0.02, 0.05, 0.10, 0.20}) {
            workload::TrafficGenerator::Options o;
            o.pattern = workload::patternFromName(pattern);
            o.rate = rate;
            o.size_bytes = 8;
            o.data_frac = 0.4;
            NetStats s = runSynthetic(o, 20000, noc::NocParams());
            printRow({pattern, fmt(rate, 3), fmt(s.mean_latency),
                      fmt(s.packets, 0)});
        }
    }

    printHeader("E1-B: in-context vs isolated per application");
    printRow({"app", "cosim_lat", "synth_lat", "synth_err", "replay_lat",
              "replay_err"});
    double synth_err_sum = 0.0, replay_err_sum = 0.0;
    int apps = 0;
    for (const auto &app : workload::appProfiles()) {
        // In-context: reciprocal co-simulation; capture the traffic the
        // detailed network actually saw.
        cosim::FullSystemOptions o =
            accuracyOptions(cosim::Mode::CosimCycle, app.name, 200);
        cosim::FullSystem sys(Config(), o);
        workload::PacketTrace trace;
        // Record the traffic the detailed network actually carried:
        // every clone the bridge forwarded, with real injection times.
        sys.bridge().setDeliveryObserver(
            [&trace](const noc::PacketPtr &pkt) { trace.record(pkt); });
        sys.run();
        double cosim_lat = sys.cycleNetwork()->totalLatency.mean();
        Tick cycles = sys.cycleNetwork()->curTime();
        double n_pkts = sys.cycleNetwork()->packetsDelivered.value();

        // Isolated synthetic: uniform random at the matched average
        // rate with the matched control/data mix.
        workload::TrafficGenerator::Options so;
        so.pattern = workload::TrafficPattern::UniformRandom;
        so.rate = n_pkts / static_cast<double>(cycles) / 64.0;
        so.size_bytes = 8;
        so.data_frac =
            sys.cycleNetwork()->flitsDelivered.value() / n_pkts > 2.0
                ? 0.5
                : 0.3;
        so.data_bytes = 72;
        NetStats synth = runSynthetic(so, cycles, o.noc);

        // Isolated replay of the recorded in-context trace.
        trace.sortByTime();
        NetStats replay = runReplay(trace, cycles, o.noc);

        double synth_err = relErr(synth.mean_latency, cosim_lat);
        double replay_err = relErr(replay.mean_latency, cosim_lat);
        synth_err_sum += synth_err;
        replay_err_sum += replay_err;
        ++apps;
        printRow({app.name, fmt(cosim_lat), fmt(synth.mean_latency),
                  pct(synth_err), fmt(replay.mean_latency),
                  pct(replay_err)});
    }
    std::printf("\nmean synthetic-isolation error: %s\n",
                pct(synth_err_sum / apps).c_str());
    std::printf("mean trace-replay error:        %s\n",
                pct(replay_err_sum / apps).c_str());
    std::printf("(replay keeps the spatial and temporal mix; synthetic "
                "loses both)\n");

    // Part C: the closed-loop pitfall. Evaluate a *modified* network
    // (deeper router pipeline) with each methodology. In context the
    // cores slow down and offered load adapts; an old trace or a fixed
    // synthetic rate keeps injecting at the old pace and overstates
    // congestion.
    printHeader("E1-C: evaluating a slower router design (pipeline 2->5)"
                " per methodology");
    printRow({"app", "cosim_lat", "stale_replay", "replay_err",
              "stale_synth", "synth_err"});
    double stale_replay_sum = 0.0, stale_synth_sum = 0.0;
    int apps_c = 0;
    for (const char *name : {"fft", "radix", "ocean"}) {
        // Record the trace and the rate on the ORIGINAL design.
        cosim::FullSystemOptions base =
            accuracyOptions(cosim::Mode::CosimCycle, name, 200);
        cosim::FullSystem rec(Config(), base);
        workload::PacketTrace trace;
        rec.bridge().setDeliveryObserver(
            [&trace](const noc::PacketPtr &pkt) { trace.record(pkt); });
        rec.run();
        Tick cycles = rec.cycleNetwork()->curTime();
        double rate = rec.cycleNetwork()->packetsDelivered.value() /
                      static_cast<double>(cycles) / 64.0;
        trace.sortByTime();

        // The modified design, evaluated in context (ground truth).
        cosim::FullSystemOptions mod = base;
        mod.noc.pipeline_stages = 5;
        cosim::FullSystem truth(Config(), mod);
        truth.run();
        double truth_lat = truth.cycleNetwork()->totalLatency.mean();
        Tick mod_cycles = truth.cycleNetwork()->curTime();

        // The modified design, evaluated with the stale trace and the
        // stale synthetic rate.
        NetStats replay = runReplay(trace, mod_cycles, mod.noc);
        workload::TrafficGenerator::Options so;
        so.rate = rate;
        so.size_bytes = 8;
        so.data_frac = 0.4;
        so.data_bytes = 72;
        NetStats synth = runSynthetic(so, mod_cycles, mod.noc);

        double r_err = relErr(replay.mean_latency, truth_lat);
        double s_err = relErr(synth.mean_latency, truth_lat);
        stale_replay_sum += r_err;
        stale_synth_sum += s_err;
        ++apps_c;
        printRow({name, fmt(truth_lat), fmt(replay.mean_latency),
                  pct(r_err), fmt(synth.mean_latency), pct(s_err)});
    }
    std::printf("\nmean stale-trace error under design change:     %s\n",
                pct(stale_replay_sum / apps_c).c_str());
    std::printf("mean stale-synthetic error under design change: %s\n",
                pct(stale_synth_sum / apps_c).c_str());
    std::printf("(without the closed loop, isolated evaluation cannot "
                "track how the system adapts to the design)\n");
    return 0;
}
