/**
 * @file
 * E5 (Table 4, ablation): accuracy and cost versus the exchange
 * quantum, for both couplings. Conservative coupling rounds every
 * message round-trip up to the boundary, so its error explodes with
 * the quantum; reciprocal coupling only loses feedback freshness, so
 * its error stays nearly flat — the quantitative argument for the
 * paper's scheme.
 */

#include <cstdio>
#include <string>

#include "bench_util.hh"

using namespace rasim;
using namespace benchutil;

namespace
{

struct Result
{
    double latency = 0.0;
    Tick runtime = 0;
    double wall_s = 0.0;
};

Result
runAt(Tick quantum, bool conservative)
{
    cosim::FullSystemOptions o =
        accuracyOptions(cosim::Mode::CosimCycle, "fft", 150);
    o.quantum = quantum;
    o.conservative = conservative;
    Result r;
    cosim::FullSystem sys(Config(), o);
    r.wall_s = timeIt([&] { r.runtime = sys.run(); });
    r.latency = sys.meanPacketLatency();
    return r;
}

} // namespace

int
main()
{
    // Reference: conservative at quantum 1 is exact by construction.
    Result ref = runAt(1, true);

    printHeader("E5: error and cost vs exchange quantum (fft, 8x8)");
    printRow({"quantum", "coupling", "mean_lat", "lat_err", "runtime",
              "rt_err", "wall_s"});
    printRow({"1", "exact-ref", fmt(ref.latency), "-",
              std::to_string(ref.runtime), "-", fmt(ref.wall_s, 3)});

    for (Tick q : {16u, 64u, 256u, 1024u}) {
        for (bool conservative : {true, false}) {
            Result r = runAt(q, conservative);
            printRow({std::to_string(q),
                      conservative ? "conservative" : "reciprocal",
                      fmt(r.latency), pct(relErr(r.latency, ref.latency)),
                      std::to_string(r.runtime),
                      pct(relErr(static_cast<double>(r.runtime),
                                 static_cast<double>(ref.runtime))),
                      fmt(r.wall_s, 3)});
        }
    }
    std::printf("\n(conservative error grows with the quantum; "
                "reciprocal stays near the reference)\n");
    return 0;
}
