/**
 * @file
 * Shared helpers for the experiment harnesses: aligned table printing,
 * wall-clock timing and common FullSystem setups. Each bench binary
 * regenerates one table/figure from DESIGN.md's experiment index and
 * prints the rows the paper reports.
 */

#ifndef RASIM_BENCH_BENCH_UTIL_HH
#define RASIM_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "cosim/full_system.hh"

namespace benchutil
{

/** Wall-clock seconds spent in fn(). */
template <typename Fn>
double
timeIt(Fn &&fn)
{
    auto start = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

inline double
relErr(double value, double reference)
{
    return reference == 0.0 ? 0.0
                            : std::abs(value - reference) / reference;
}

inline void
printHeader(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

/** Print one row of right-aligned cells under a fixed width. */
inline void
printRow(const std::vector<std::string> &cells, int width = 14)
{
    for (const std::string &c : cells)
        std::printf("%*s", width, c.c_str());
    std::printf("\n");
}

inline std::string
fmt(double v, int precision = 2)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

inline std::string
pct(double v, int precision = 1)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, v * 100.0);
    return buf;
}

/**
 * Baseline options shared by the accuracy experiments: an 8x8 target
 * with a lean network (1 VC/vnet, shallow buffers) and fast memory so
 * the fabric carries meaningful contention — the regime where network
 * fidelity matters.
 */
inline rasim::cosim::FullSystemOptions
accuracyOptions(rasim::cosim::Mode mode, const std::string &app,
                std::uint64_t ops = 250)
{
    rasim::cosim::FullSystemOptions o;
    o.mode = mode;
    o.app = app;
    o.ops_per_core = ops;
    o.quantum = 256;
    o.noc.columns = 8;
    o.noc.rows = 8;
    o.noc.vcs_per_vnet = 1;
    o.noc.buffer_depth = 2;
    o.mem.l1_sets = 32;
    o.mem.dram_latency = 40;
    o.mem.mshrs = 16;
    return o;
}

} // namespace benchutil

#endif // RASIM_BENCH_BENCH_UTIL_HH
