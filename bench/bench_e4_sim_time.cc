/**
 * @file
 * E4 (Fig. 4 / Table 3): "The CPU+GPU can reduce simulation time for
 * the reciprocal abstraction co-simulation by 16% for a 256-core
 * target machine and 65% for a 512-core target machine."
 *
 * For 64-, 256- and 512-core targets, measure the host wall-clock of
 * a reciprocal co-simulation split into its full-system and network
 * components, then apply the GPU coprocessor timing model (DESIGN.md
 * substitution: this machine has one CPU core and no CUDA device, so
 * the device is modelled, not measured):
 *
 *   CPU-only   = host_ns + serial network ns      (both measured)
 *   CPU+GPU    = quanta * max(host/quantum, device quantum time)
 *                                                  (device modelled)
 */

#include <cstdio>
#include <string>

#include "bench_util.hh"
#include "gpu/gpu_model.hh"

using namespace rasim;
using namespace benchutil;

namespace
{

struct Measured
{
    double host_ns = 0.0;
    double net_ns = 0.0;
    std::uint64_t quanta = 0;
    Tick quantum = 0;
    int routers = 0;
};

Measured
measure(int cols, int rows)
{
    cosim::FullSystemOptions o;
    o.mode = cosim::Mode::CosimCycle;
    o.app = "fft";
    o.ops_per_core = 120;
    o.quantum = 256;
    o.noc.columns = cols;
    o.noc.rows = rows;
    cosim::FullSystem sys(Config(), o);
    sys.run();
    Measured m;
    m.host_ns = sys.bridge().hostNs();
    m.net_ns = sys.bridge().netNs();
    m.quanta = sys.bridge().quantaRun();
    m.quantum = o.quantum;
    m.routers = cols * rows;
    return m;
}

} // namespace

int
main()
{
    gpu::GpuTimingModel device;

    printHeader("E4: co-simulation wall-clock, CPU-only vs CPU+GPU "
                "(fft, quantum 256)");
    printRow({"target", "quanta", "host_ms", "net_ms", "cpu_only_ms",
              "cpu_gpu_ms", "reduction"});

    const struct
    {
        int cols, rows;
        const char *label;
        const char *paper;
    } targets[] = {
        {8, 8, "64-core", "-"},
        {16, 16, "256-core", "16%"},
        {16, 32, "512-core", "65%"},
    };

    for (const auto &t : targets) {
        Measured m = measure(t.cols, t.rows);
        double cpu_only = m.host_ns + m.net_ns;
        double cpu_gpu = device.overlappedRunNs(m.host_ns, m.quanta,
                                                m.quantum, m.routers);
        double reduction = 1.0 - cpu_gpu / cpu_only;
        printRow({t.label, std::to_string(m.quanta),
                  fmt(m.host_ns / 1e6), fmt(m.net_ns / 1e6),
                  fmt(cpu_only / 1e6), fmt(cpu_gpu / 1e6),
                  pct(reduction)});
        std::printf("%14s paper-reported reduction: %s\n", "", t.paper);
    }

    std::printf(
        "\n(device side modelled: launch %.0f ns, %.0f ns/router-wave, "
        "width %d, transfer %.0f ns/quantum — see DESIGN.md)\n",
        device.params().kernel_launch_ns, device.params().router_slot_ns,
        device.params().parallel_width,
        device.params().boundary_transfer_ns);
    return 0;
}
