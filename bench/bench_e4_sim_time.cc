/**
 * @file
 * E4 (Fig. 4 / Table 3): "The CPU+GPU can reduce simulation time for
 * the reciprocal abstraction co-simulation by 16% for a 256-core
 * target machine and 65% for a 512-core target machine."
 *
 * For 64-, 256- and 512-core targets, measure the host wall-clock of
 * a reciprocal co-simulation split into its full-system and network
 * components, then apply the GPU coprocessor timing model (DESIGN.md
 * substitution: this machine has one CPU core and no CUDA device, so
 * the device is modelled, not measured):
 *
 *   CPU-only   = host_ns + serial network ns      (both measured)
 *   CPU+GPU    = quanta * max(host/quantum, device quantum time)
 *                                                  (device modelled)
 */

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "noc/remote/remote_network.hh"
#include "sim/rng.hh"

#include "bench_util.hh"
#include "gpu/gpu_model.hh"
#include "ipc/nocd_server.hh"
#include "sim/parallel_engine.hh"
#include "workload/traffic.hh"

using namespace rasim;
using namespace benchutil;

namespace
{

struct Measured
{
    double host_ns = 0.0;
    double net_ns = 0.0;
    std::uint64_t quanta = 0;
    Tick quantum = 0;
    int routers = 0;
};

/**
 * StepEngine decorator measuring the time spent inside the
 * data-parallel phases — separates the parallelisable fraction of a
 * serial run from the sequential residue (injection drain, delivery
 * callbacks, stat reduction).
 */
class PhaseTimingEngine : public StepEngine
{
  public:
    void
    forEach(std::size_t n,
            const std::function<void(std::size_t)> &fn) override
    {
        auto t0 = std::chrono::steady_clock::now();
        inner_.forEach(n, fn);
        ns_ += std::chrono::duration<double, std::nano>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
        ++phases_;
    }

    const char *name() const override { return "phase-timing"; }

    double phaseNs() const { return ns_; }
    std::uint64_t phases() const { return phases_; }

  private:
    SerialEngine inner_;
    double ns_ = 0.0;
    std::uint64_t phases_ = 0;
};

struct NocMeasured
{
    double wall_ns = 0.0;
    double phase_ns = 0.0;
    std::uint64_t phases = 0;
    std::uint64_t cycles = 0;
};

/** High-load random traffic on an 8x8 mesh, wall-clock measured. */
NocMeasured
measureNoc(StepEngine *engine)
{
    Simulation sim;
    noc::NocParams p;
    p.columns = 8;
    p.rows = 8;
    noc::CycleNetwork net(sim, "noc", p);
    if (engine)
        net.setEngine(engine);
    workload::TrafficGenerator::Options o;
    o.rate = 0.30;
    o.data_frac = 0.3;
    workload::TrafficGenerator gen(net, 8, 8, o, sim.makeRng(0x5eed));
    NocMeasured m;
    auto t0 = std::chrono::steady_clock::now();
    for (Tick t = 64; t <= 20000; t += 64) {
        gen.generateTo(t);
        net.advanceTo(t);
    }
    m.wall_ns = std::chrono::duration<double, std::nano>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    m.cycles = static_cast<std::uint64_t>(net.cyclesRun.value());
    return m;
}

Measured
measure(int cols, int rows)
{
    cosim::FullSystemOptions o;
    o.mode = cosim::Mode::CosimCycle;
    o.app = "fft";
    o.ops_per_core = 120;
    o.quantum = 256;
    o.noc.columns = cols;
    o.noc.rows = rows;
    cosim::FullSystem sys(Config(), o);
    sys.run();
    Measured m;
    m.host_ns = sys.bridge().hostNs();
    m.net_ns = sys.bridge().netNs();
    m.quanta = sys.bridge().quantaRun();
    m.quantum = o.quantum;
    m.routers = cols * rows;
    return m;
}

struct BackendMeasured
{
    double wall_s = 0.0;
    std::uint64_t quanta = 0;
    std::uint64_t rpc_round_trips = 0;
    Tick finish = 0;
    std::uint64_t delivered = 0;
};

/** One full co-simulation, timed, against either backend. */
BackendMeasured
measureBackend(bool remote, const std::string &socket,
               std::uint64_t ops_per_core)
{
    cosim::FullSystemOptions o;
    o.mode = cosim::Mode::CosimCycle;
    o.app = "fft";
    o.ops_per_core = ops_per_core;
    o.quantum = 256;
    o.noc.columns = 8;
    o.noc.rows = 8;
    if (remote) {
        o.network_backend = "remote";
        o.remote.socket = socket;
    }
    cosim::FullSystem sys(Config(), o);
    BackendMeasured m;
    m.wall_s = benchutil::timeIt([&] { m.finish = sys.run(); });
    m.quanta = sys.bridge().quantaRun();
    m.delivered = sys.packetsDelivered();
    if (remote)
        m.rpc_round_trips = static_cast<std::uint64_t>(
            sys.remoteNetwork()->rpcRoundTrips.value());
    return m;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
    }

    gpu::GpuTimingModel device;

    printHeader("E4: co-simulation wall-clock, CPU-only vs CPU+GPU "
                "(fft, quantum 256)");
    printRow({"target", "quanta", "host_ms", "net_ms", "cpu_only_ms",
              "cpu_gpu_ms", "reduction"});

    const struct
    {
        int cols, rows;
        const char *label;
        const char *paper;
    } targets[] = {
        {8, 8, "64-core", "-"},
        {16, 16, "256-core", "16%"},
        {16, 32, "512-core", "65%"},
    };

    for (const auto &t : targets) {
        if (quick && t.cols * t.rows > 64)
            continue; // CI lane: the 64-core target is representative
        Measured m = measure(t.cols, t.rows);
        double cpu_only = m.host_ns + m.net_ns;
        double cpu_gpu = device.overlappedRunNs(m.host_ns, m.quanta,
                                                m.quantum, m.routers);
        double reduction = 1.0 - cpu_gpu / cpu_only;
        printRow({t.label, std::to_string(m.quanta),
                  fmt(m.host_ns / 1e6), fmt(m.net_ns / 1e6),
                  fmt(cpu_only / 1e6), fmt(cpu_gpu / 1e6),
                  pct(reduction)});
        std::printf("%14s paper-reported reduction: %s\n", "", t.paper);
    }

    std::printf(
        "\n(device side modelled: launch %.0f ns, %.0f ns/router-wave, "
        "width %d, transfer %.0f ns/quantum — see DESIGN.md)\n",
        device.params().kernel_launch_ns, device.params().router_slot_ns,
        device.params().parallel_width,
        device.params().boundary_transfer_ns);

    // E4b: the host-side pool engine, serial vs parallel stepping of
    // the detailed network itself (8x8 mesh, high uniform-random
    // load). The serial run is instrumented to split the phase
    // (parallelisable) time from the sequential residue; the modelled
    // column applies static sharding over the pool slots plus a
    // per-phase barrier-handoff cost — the DESIGN.md substitution for
    // hosts (like the reference machine) without enough cores to
    // measure real concurrency.
    constexpr double handoff_ns = 1000.0; // spin-barrier phase handoff

    printHeader("E4b: serial vs pool engine, cycle network, 8x8 mesh, "
                "high load");
    auto timing = std::make_unique<PhaseTimingEngine>();
    NocMeasured serial = measureNoc(timing.get());
    serial.phase_ns = timing->phaseNs();
    serial.phases = timing->phases();
    double residue_ns = serial.wall_ns - serial.phase_ns;

    std::printf("  serial: %.1f ms total, %.1f ms in phases (%.0f%%), "
                "%llu cycles\n",
                serial.wall_ns / 1e6, serial.phase_ns / 1e6,
                100.0 * serial.phase_ns / serial.wall_ns,
                static_cast<unsigned long long>(serial.cycles));

    printRow({"workers", "measured_ms", "meas_speedup", "modelled_ms",
              "model_speedup"});
    const std::vector<int> worker_counts =
        quick ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};
    for (int workers : worker_counts) {
        ParallelEngine pool(workers);
        NocMeasured m = measureNoc(&pool);
        double modelled_ns =
            residue_ns + serial.phase_ns / (workers + 1) +
            static_cast<double>(serial.phases) * handoff_ns;
        printRow({std::to_string(workers), fmt(m.wall_ns / 1e6),
                  fmt(serial.wall_ns / m.wall_ns) + "x",
                  fmt(modelled_ns / 1e6),
                  fmt(serial.wall_ns / modelled_ns) + "x"});
    }
    std::printf(
        "\n(modelled: residue + phase/(workers+1) + %.0f ns/phase "
        "handoff; measured column reflects this host's %u core(s) — "
        "results are bit-identical to serial either way)\n",
        handoff_ns, std::thread::hardware_concurrency());

    // E4c: the out-of-process backend. The same 8x8 co-simulation with
    // the detailed network hosted in a rasim-nocd server (here on a
    // background thread, over a Unix socket — the same transport a
    // separate process would use), against the in-process baseline.
    // The quotient of interest is the per-quantum RPC cost: one
    // InjectBatch + Advance/DeliveryBatch round-trip per quantum.
    printHeader("E4c: in-process vs remote (rasim-nocd) backend, "
                "8x8 mesh, quantum 256");
    const std::uint64_t remote_ops = quick ? 120 : 600;
    std::string socket = "unix:/tmp/rasim-bench-e4-" +
                         std::to_string(::getpid()) + ".sock";
    ipc::NocServerOptions so;
    so.address = socket;
    ipc::NocServer server(so);
    std::thread server_thread([&] { server.run(); });

    BackendMeasured inproc = measureBackend(false, socket, remote_ops);
    BackendMeasured remote = measureBackend(true, socket, remote_ops);

    if (remote.finish != inproc.finish ||
        remote.delivered != inproc.delivered) {
        std::fprintf(stderr,
                     "remote/in-process divergence: finish %llu vs "
                     "%llu, delivered %llu vs %llu\n",
                     static_cast<unsigned long long>(remote.finish),
                     static_cast<unsigned long long>(inproc.finish),
                     static_cast<unsigned long long>(remote.delivered),
                     static_cast<unsigned long long>(inproc.delivered));
        return 1;
    }

    double inproc_qps = inproc.quanta / inproc.wall_s;
    double remote_qps = remote.quanta / remote.wall_s;
    double rpc_overhead_us =
        remote.quanta == 0
            ? 0.0
            : (remote.wall_s - inproc.wall_s) * 1e6 /
                  static_cast<double>(remote.quanta);
    printRow({"backend", "wall_ms", "quanta", "quanta/s", "rpc_rt"});
    printRow({"inproc", fmt(inproc.wall_s * 1e3),
              std::to_string(inproc.quanta), fmt(inproc_qps, 0), "-"});
    printRow({"remote", fmt(remote.wall_s * 1e3),
              std::to_string(remote.quanta), fmt(remote_qps, 0),
              std::to_string(remote.rpc_round_trips)});
    std::printf("per-quantum RPC overhead: %.2f us (results "
                "bit-identical: finish tick %llu, %llu packets)\n",
                rpc_overhead_us,
                static_cast<unsigned long long>(remote.finish),
                static_cast<unsigned long long>(remote.delivered));

    // E4d: amortized per-quantum RPC overhead of the pipelined v2
    // transport (coalesced Step frames + idle elision + server
    // speculation) against the v1 blocking exchange, both measured as
    // wall-clock over a direct in-process drive of the same network.
    // The workload is phase-shaped the way a real co-simulation is —
    // bursts, drains, idle stretches — because that is where the
    // pipelined transport earns its keep: one frame per busy quantum
    // instead of two, zero frames while idle. Each lane repeats three
    // times and keeps the fastest run (noise floor on a shared host).
    printHeader("E4d: blocking (v1) vs pipelined (v2) quantum RPC, "
                "direct drive, 8x8 mesh");
    const int e4d_quanta = quick ? 300 : 1200;
    constexpr Tick e4d_quantum = 64;
    constexpr int e4d_reps = 3;

    struct E4dLane
    {
        double wall_s = 0.0;
        std::uint64_t delivered = 0;
        std::uint64_t rpcs = 0;
        std::uint64_t elided = 0;
        std::uint64_t spec_hits = 0;
    };

    // Bursty traffic: every 8th quantum injects a burst, which then
    // drains over a few quanta, leaving the rest idle.
    auto drive = [&](auto &net) {
        std::uint64_t delivered = 0;
        net.setDeliveryHandler(
            [&](const noc::PacketPtr &) { ++delivered; });
        Rng rng(0xe4d, 3);
        PacketId id = 1;
        for (int q = 0; q < e4d_quanta; ++q) {
            Tick now = static_cast<Tick>(q) * e4d_quantum;
            if (q % 8 == 0) {
                for (int i = 0; i < 20; ++i) {
                    net.inject(noc::makePacket(
                        id++, static_cast<NodeId>(rng.range(64)),
                        static_cast<NodeId>(rng.range(64)),
                        static_cast<noc::MsgClass>(rng.range(3)),
                        rng.bernoulli(0.3) ? 64 : 8, now));
                }
            }
            net.advanceTo(now + e4d_quantum);
        }
        return delivered;
    };

    auto runDirectLane = [&] {
        E4dLane lane;
        lane.wall_s = 1e18;
        for (int rep = 0; rep < e4d_reps; ++rep) {
            Simulation sim;
            noc::NocParams p;
            p.columns = 8;
            p.rows = 8;
            noc::CycleNetwork net(sim, "noc", p);
            std::uint64_t delivered = 0;
            double s = benchutil::timeIt([&] { delivered = drive(net); });
            lane.wall_s = std::min(lane.wall_s, s);
            lane.delivered = delivered;
        }
        return lane;
    };
    auto runRemoteLane = [&](bool pipeline, bool speculate) {
        E4dLane lane;
        lane.wall_s = 1e18;
        for (int rep = 0; rep < e4d_reps; ++rep) {
            Simulation sim;
            noc::NocParams p;
            p.columns = 8;
            p.rows = 8;
            noc::remote::RemoteOptions ro;
            ro.socket = socket;
            ro.pipeline = pipeline;
            ro.speculate = speculate;
            noc::remote::RemoteNetwork net(sim, "rnet", p, ro);
            std::uint64_t delivered = 0;
            double s = benchutil::timeIt([&] { delivered = drive(net); });
            if (s < lane.wall_s) {
                lane.wall_s = s;
                lane.rpcs = static_cast<std::uint64_t>(
                    net.rpcRoundTrips.value());
                lane.elided = static_cast<std::uint64_t>(
                    net.elidedQuanta.value());
                lane.spec_hits =
                    static_cast<std::uint64_t>(net.specHits.value());
            }
            lane.delivered = delivered;
        }
        return lane;
    };

    E4dLane direct_lane = runDirectLane();
    E4dLane blocking = runRemoteLane(false, false);
    E4dLane pipelined = runRemoteLane(true, true);
    server.stop();
    server_thread.join();

    if (blocking.delivered != direct_lane.delivered ||
        pipelined.delivered != direct_lane.delivered) {
        std::fprintf(stderr,
                     "E4d divergence: delivered direct %llu, blocking "
                     "%llu, pipelined %llu\n",
                     static_cast<unsigned long long>(
                         direct_lane.delivered),
                     static_cast<unsigned long long>(blocking.delivered),
                     static_cast<unsigned long long>(
                         pipelined.delivered));
        return 1;
    }

    auto overheadUs = [&](const E4dLane &lane) {
        return (lane.wall_s - direct_lane.wall_s) * 1e6 /
               static_cast<double>(e4d_quanta);
    };
    double block_us = overheadUs(blocking);
    double pipe_us = overheadUs(pipelined);
    double e4d_ratio = pipe_us > 0.0 ? block_us / pipe_us : 0.0;

    printRow({"lane", "wall_ms", "ovh_us/q", "rpcs", "elided",
              "spec_hits"});
    printRow({"direct", fmt(direct_lane.wall_s * 1e3), "-", "-", "-",
              "-"});
    printRow({"blocking", fmt(blocking.wall_s * 1e3), fmt(block_us),
              std::to_string(blocking.rpcs), "0", "0"});
    printRow({"pipelined", fmt(pipelined.wall_s * 1e3), fmt(pipe_us),
              std::to_string(pipelined.rpcs),
              std::to_string(pipelined.elided),
              std::to_string(pipelined.spec_hits)});
    std::printf("amortized per-quantum RPC overhead: %.2f us -> %.2f "
                "us (%.1fx; %llu deliveries, identical on every "
                "lane)\n",
                block_us, pipe_us, e4d_ratio,
                static_cast<unsigned long long>(direct_lane.delivered));

    const char *path = "BENCH_remote.json";
    if (FILE *f = std::fopen(path, "w")) {
        std::fprintf(
            f,
            "{\n"
            "  \"quick\": %s,\n"
            "  \"target\": \"8x8 cosim, fft, quantum 256\",\n"
            "  \"inproc\": {\"wall_ms\": %.3f, \"quanta\": %llu, "
            "\"quanta_per_sec\": %.1f},\n"
            "  \"remote\": {\"wall_ms\": %.3f, \"quanta\": %llu, "
            "\"quanta_per_sec\": %.1f, \"rpc_round_trips\": %llu},\n"
            "  \"rpc_overhead_us_per_quantum\": %.3f,\n"
            "  \"bit_identical\": true,\n"
            "  \"finish_tick\": %llu,\n"
            "  \"packets_delivered\": %llu,\n"
            "  \"e4d\": {\n"
            "    \"quanta\": %d,\n"
            "    \"blocking\": {\"wall_ms\": %.3f, "
            "\"overhead_us_per_quantum\": %.3f, \"rpcs\": %llu},\n"
            "    \"pipelined\": {\"wall_ms\": %.3f, "
            "\"overhead_us_per_quantum\": %.3f, \"rpcs\": %llu, "
            "\"elided_quanta\": %llu, \"spec_hits\": %llu},\n"
            "    \"overhead_reduction\": %.2f,\n"
            "    \"deliveries_identical\": true\n"
            "  }\n"
            "}\n",
            quick ? "true" : "false", inproc.wall_s * 1e3,
            static_cast<unsigned long long>(inproc.quanta), inproc_qps,
            remote.wall_s * 1e3,
            static_cast<unsigned long long>(remote.quanta), remote_qps,
            static_cast<unsigned long long>(remote.rpc_round_trips),
            rpc_overhead_us,
            static_cast<unsigned long long>(remote.finish),
            static_cast<unsigned long long>(remote.delivered),
            e4d_quanta, blocking.wall_s * 1e3, block_us,
            static_cast<unsigned long long>(blocking.rpcs),
            pipelined.wall_s * 1e3, pipe_us,
            static_cast<unsigned long long>(pipelined.rpcs),
            static_cast<unsigned long long>(pipelined.elided),
            static_cast<unsigned long long>(pipelined.spec_hits),
            e4d_ratio);
        std::fclose(f);
        std::printf("wrote %s\n", path);
    } else {
        std::perror(path);
        return 1;
    }
    return 0;
}
