/**
 * @file
 * E4 (Fig. 4 / Table 3): "The CPU+GPU can reduce simulation time for
 * the reciprocal abstraction co-simulation by 16% for a 256-core
 * target machine and 65% for a 512-core target machine."
 *
 * For 64-, 256- and 512-core targets, measure the host wall-clock of
 * a reciprocal co-simulation split into its full-system and network
 * components, then apply the GPU coprocessor timing model (DESIGN.md
 * substitution: this machine has one CPU core and no CUDA device, so
 * the device is modelled, not measured):
 *
 *   CPU-only   = host_ns + serial network ns      (both measured)
 *   CPU+GPU    = quanta * max(host/quantum, device quantum time)
 *                                                  (device modelled)
 */

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "bench_util.hh"
#include "gpu/gpu_model.hh"
#include "ipc/nocd_server.hh"
#include "sim/parallel_engine.hh"
#include "workload/traffic.hh"

using namespace rasim;
using namespace benchutil;

namespace
{

struct Measured
{
    double host_ns = 0.0;
    double net_ns = 0.0;
    std::uint64_t quanta = 0;
    Tick quantum = 0;
    int routers = 0;
};

/**
 * StepEngine decorator measuring the time spent inside the
 * data-parallel phases — separates the parallelisable fraction of a
 * serial run from the sequential residue (injection drain, delivery
 * callbacks, stat reduction).
 */
class PhaseTimingEngine : public StepEngine
{
  public:
    void
    forEach(std::size_t n,
            const std::function<void(std::size_t)> &fn) override
    {
        auto t0 = std::chrono::steady_clock::now();
        inner_.forEach(n, fn);
        ns_ += std::chrono::duration<double, std::nano>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
        ++phases_;
    }

    const char *name() const override { return "phase-timing"; }

    double phaseNs() const { return ns_; }
    std::uint64_t phases() const { return phases_; }

  private:
    SerialEngine inner_;
    double ns_ = 0.0;
    std::uint64_t phases_ = 0;
};

struct NocMeasured
{
    double wall_ns = 0.0;
    double phase_ns = 0.0;
    std::uint64_t phases = 0;
    std::uint64_t cycles = 0;
};

/** High-load random traffic on an 8x8 mesh, wall-clock measured. */
NocMeasured
measureNoc(StepEngine *engine)
{
    Simulation sim;
    noc::NocParams p;
    p.columns = 8;
    p.rows = 8;
    noc::CycleNetwork net(sim, "noc", p);
    if (engine)
        net.setEngine(engine);
    workload::TrafficGenerator::Options o;
    o.rate = 0.30;
    o.data_frac = 0.3;
    workload::TrafficGenerator gen(net, 8, 8, o, sim.makeRng(0x5eed));
    NocMeasured m;
    auto t0 = std::chrono::steady_clock::now();
    for (Tick t = 64; t <= 20000; t += 64) {
        gen.generateTo(t);
        net.advanceTo(t);
    }
    m.wall_ns = std::chrono::duration<double, std::nano>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    m.cycles = static_cast<std::uint64_t>(net.cyclesRun.value());
    return m;
}

Measured
measure(int cols, int rows)
{
    cosim::FullSystemOptions o;
    o.mode = cosim::Mode::CosimCycle;
    o.app = "fft";
    o.ops_per_core = 120;
    o.quantum = 256;
    o.noc.columns = cols;
    o.noc.rows = rows;
    cosim::FullSystem sys(Config(), o);
    sys.run();
    Measured m;
    m.host_ns = sys.bridge().hostNs();
    m.net_ns = sys.bridge().netNs();
    m.quanta = sys.bridge().quantaRun();
    m.quantum = o.quantum;
    m.routers = cols * rows;
    return m;
}

struct BackendMeasured
{
    double wall_s = 0.0;
    std::uint64_t quanta = 0;
    std::uint64_t rpc_round_trips = 0;
    Tick finish = 0;
    std::uint64_t delivered = 0;
};

/** One full co-simulation, timed, against either backend. */
BackendMeasured
measureBackend(bool remote, const std::string &socket,
               std::uint64_t ops_per_core)
{
    cosim::FullSystemOptions o;
    o.mode = cosim::Mode::CosimCycle;
    o.app = "fft";
    o.ops_per_core = ops_per_core;
    o.quantum = 256;
    o.noc.columns = 8;
    o.noc.rows = 8;
    if (remote) {
        o.network_backend = "remote";
        o.remote.socket = socket;
    }
    cosim::FullSystem sys(Config(), o);
    BackendMeasured m;
    m.wall_s = benchutil::timeIt([&] { m.finish = sys.run(); });
    m.quanta = sys.bridge().quantaRun();
    m.delivered = sys.packetsDelivered();
    if (remote)
        m.rpc_round_trips = static_cast<std::uint64_t>(
            sys.remoteNetwork()->rpcRoundTrips.value());
    return m;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
    }

    gpu::GpuTimingModel device;

    printHeader("E4: co-simulation wall-clock, CPU-only vs CPU+GPU "
                "(fft, quantum 256)");
    printRow({"target", "quanta", "host_ms", "net_ms", "cpu_only_ms",
              "cpu_gpu_ms", "reduction"});

    const struct
    {
        int cols, rows;
        const char *label;
        const char *paper;
    } targets[] = {
        {8, 8, "64-core", "-"},
        {16, 16, "256-core", "16%"},
        {16, 32, "512-core", "65%"},
    };

    for (const auto &t : targets) {
        if (quick && t.cols * t.rows > 64)
            continue; // CI lane: the 64-core target is representative
        Measured m = measure(t.cols, t.rows);
        double cpu_only = m.host_ns + m.net_ns;
        double cpu_gpu = device.overlappedRunNs(m.host_ns, m.quanta,
                                                m.quantum, m.routers);
        double reduction = 1.0 - cpu_gpu / cpu_only;
        printRow({t.label, std::to_string(m.quanta),
                  fmt(m.host_ns / 1e6), fmt(m.net_ns / 1e6),
                  fmt(cpu_only / 1e6), fmt(cpu_gpu / 1e6),
                  pct(reduction)});
        std::printf("%14s paper-reported reduction: %s\n", "", t.paper);
    }

    std::printf(
        "\n(device side modelled: launch %.0f ns, %.0f ns/router-wave, "
        "width %d, transfer %.0f ns/quantum — see DESIGN.md)\n",
        device.params().kernel_launch_ns, device.params().router_slot_ns,
        device.params().parallel_width,
        device.params().boundary_transfer_ns);

    // E4b: the host-side pool engine, serial vs parallel stepping of
    // the detailed network itself (8x8 mesh, high uniform-random
    // load). The serial run is instrumented to split the phase
    // (parallelisable) time from the sequential residue; the modelled
    // column applies static sharding over the pool slots plus a
    // per-phase barrier-handoff cost — the DESIGN.md substitution for
    // hosts (like the reference machine) without enough cores to
    // measure real concurrency.
    constexpr double handoff_ns = 1000.0; // spin-barrier phase handoff

    printHeader("E4b: serial vs pool engine, cycle network, 8x8 mesh, "
                "high load");
    auto timing = std::make_unique<PhaseTimingEngine>();
    NocMeasured serial = measureNoc(timing.get());
    serial.phase_ns = timing->phaseNs();
    serial.phases = timing->phases();
    double residue_ns = serial.wall_ns - serial.phase_ns;

    std::printf("  serial: %.1f ms total, %.1f ms in phases (%.0f%%), "
                "%llu cycles\n",
                serial.wall_ns / 1e6, serial.phase_ns / 1e6,
                100.0 * serial.phase_ns / serial.wall_ns,
                static_cast<unsigned long long>(serial.cycles));

    printRow({"workers", "measured_ms", "meas_speedup", "modelled_ms",
              "model_speedup"});
    const std::vector<int> worker_counts =
        quick ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};
    for (int workers : worker_counts) {
        ParallelEngine pool(workers);
        NocMeasured m = measureNoc(&pool);
        double modelled_ns =
            residue_ns + serial.phase_ns / (workers + 1) +
            static_cast<double>(serial.phases) * handoff_ns;
        printRow({std::to_string(workers), fmt(m.wall_ns / 1e6),
                  fmt(serial.wall_ns / m.wall_ns) + "x",
                  fmt(modelled_ns / 1e6),
                  fmt(serial.wall_ns / modelled_ns) + "x"});
    }
    std::printf(
        "\n(modelled: residue + phase/(workers+1) + %.0f ns/phase "
        "handoff; measured column reflects this host's %u core(s) — "
        "results are bit-identical to serial either way)\n",
        handoff_ns, std::thread::hardware_concurrency());

    // E4c: the out-of-process backend. The same 8x8 co-simulation with
    // the detailed network hosted in a rasim-nocd server (here on a
    // background thread, over a Unix socket — the same transport a
    // separate process would use), against the in-process baseline.
    // The quotient of interest is the per-quantum RPC cost: one
    // InjectBatch + Advance/DeliveryBatch round-trip per quantum.
    printHeader("E4c: in-process vs remote (rasim-nocd) backend, "
                "8x8 mesh, quantum 256");
    const std::uint64_t remote_ops = quick ? 120 : 600;
    std::string socket = "unix:/tmp/rasim-bench-e4-" +
                         std::to_string(::getpid()) + ".sock";
    ipc::NocServerOptions so;
    so.address = socket;
    ipc::NocServer server(so);
    std::thread server_thread([&] { server.run(); });

    BackendMeasured inproc = measureBackend(false, socket, remote_ops);
    BackendMeasured remote = measureBackend(true, socket, remote_ops);
    server.stop();
    server_thread.join();

    if (remote.finish != inproc.finish ||
        remote.delivered != inproc.delivered) {
        std::fprintf(stderr,
                     "remote/in-process divergence: finish %llu vs "
                     "%llu, delivered %llu vs %llu\n",
                     static_cast<unsigned long long>(remote.finish),
                     static_cast<unsigned long long>(inproc.finish),
                     static_cast<unsigned long long>(remote.delivered),
                     static_cast<unsigned long long>(inproc.delivered));
        return 1;
    }

    double inproc_qps = inproc.quanta / inproc.wall_s;
    double remote_qps = remote.quanta / remote.wall_s;
    double rpc_overhead_us =
        remote.quanta == 0
            ? 0.0
            : (remote.wall_s - inproc.wall_s) * 1e6 /
                  static_cast<double>(remote.quanta);
    printRow({"backend", "wall_ms", "quanta", "quanta/s", "rpc_rt"});
    printRow({"inproc", fmt(inproc.wall_s * 1e3),
              std::to_string(inproc.quanta), fmt(inproc_qps, 0), "-"});
    printRow({"remote", fmt(remote.wall_s * 1e3),
              std::to_string(remote.quanta), fmt(remote_qps, 0),
              std::to_string(remote.rpc_round_trips)});
    std::printf("per-quantum RPC overhead: %.2f us (results "
                "bit-identical: finish tick %llu, %llu packets)\n",
                rpc_overhead_us,
                static_cast<unsigned long long>(remote.finish),
                static_cast<unsigned long long>(remote.delivered));

    const char *path = "BENCH_remote.json";
    if (FILE *f = std::fopen(path, "w")) {
        std::fprintf(
            f,
            "{\n"
            "  \"quick\": %s,\n"
            "  \"target\": \"8x8 cosim, fft, quantum 256\",\n"
            "  \"inproc\": {\"wall_ms\": %.3f, \"quanta\": %llu, "
            "\"quanta_per_sec\": %.1f},\n"
            "  \"remote\": {\"wall_ms\": %.3f, \"quanta\": %llu, "
            "\"quanta_per_sec\": %.1f, \"rpc_round_trips\": %llu},\n"
            "  \"rpc_overhead_us_per_quantum\": %.3f,\n"
            "  \"bit_identical\": true,\n"
            "  \"finish_tick\": %llu,\n"
            "  \"packets_delivered\": %llu\n"
            "}\n",
            quick ? "true" : "false", inproc.wall_s * 1e3,
            static_cast<unsigned long long>(inproc.quanta), inproc_qps,
            remote.wall_s * 1e3,
            static_cast<unsigned long long>(remote.quanta), remote_qps,
            static_cast<unsigned long long>(remote.rpc_round_trips),
            rpc_overhead_us,
            static_cast<unsigned long long>(remote.finish),
            static_cast<unsigned long long>(remote.delivered));
        std::fclose(f);
        std::printf("wrote %s\n", path);
    } else {
        std::perror(path);
        return 1;
    }
    return 0;
}
