/**
 * @file
 * E3 (Fig. 3): "reciprocal abstraction ... allows an exploration of
 * the impact on the full system resulting from design choices in the
 * detailed component model."
 *
 * Sweep detailed-router design knobs (VCs per vnet, buffer depth,
 * routing algorithm) and report the *full-system runtime* each choice
 * yields under reciprocal co-simulation, next to the abstract model's
 * prediction — which is blind to these knobs by construction.
 */

#include <cstdio>
#include <string>

#include "bench_util.hh"

using namespace rasim;
using namespace benchutil;

namespace
{

Tick
runWith(cosim::Mode mode, int vcs, int depth, const std::string &routing)
{
    cosim::FullSystemOptions o =
        accuracyOptions(mode, "radix", 200); // contended workload
    o.noc.vcs_per_vnet = vcs;
    o.noc.buffer_depth = depth;
    o.noc.routing = routing;
    cosim::FullSystem sys(Config(), o);
    return sys.run();
}

} // namespace

int
main()
{
    printHeader("E3: full-system runtime vs detailed NoC design knobs "
                "(radix, 8x8)");
    printRow({"vcs", "buffers", "routing", "cosim_rt", "abstract_rt"});

    Tick cs_min = max_tick, cs_max = 0;
    Tick abs_min = max_tick, abs_max = 0;
    const struct
    {
        int vcs;
        int depth;
        const char *routing;
    } configs[] = {
        {1, 2, "xy"},  {1, 4, "xy"},        {2, 4, "xy"},
        {4, 4, "xy"},  {4, 8, "xy"},        {2, 4, "yx"},
        {2, 4, "westfirst"}, {8, 8, "westfirst"},
    };
    for (const auto &cfg : configs) {
        Tick cs = runWith(cosim::Mode::CosimCycle, cfg.vcs, cfg.depth,
                          cfg.routing);
        Tick abs = runWith(cosim::Mode::Abstract, cfg.vcs, cfg.depth,
                           cfg.routing);
        cs_min = std::min(cs_min, cs);
        cs_max = std::max(cs_max, cs);
        abs_min = std::min(abs_min, abs);
        abs_max = std::max(abs_max, abs);
        printRow({std::to_string(cfg.vcs), std::to_string(cfg.depth),
                  cfg.routing, std::to_string(cs), std::to_string(abs)});
    }

    double cs_spread =
        static_cast<double>(cs_max - cs_min) / static_cast<double>(cs_min);
    double abs_spread = static_cast<double>(abs_max - abs_min) /
                        static_cast<double>(abs_min);
    std::printf("\nco-simulation runtime spread across designs: %s\n",
                pct(cs_spread).c_str());
    std::printf("abstract-model runtime spread:               %s "
                "(blind to the knobs)\n",
                pct(abs_spread).c_str());
    return 0;
}
