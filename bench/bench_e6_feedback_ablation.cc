/**
 * @file
 * E6 (Fig. 5, ablation): how much of the error reduction comes from
 * each direction of the reciprocity. Compare, per application:
 *
 *   abstract  — static analytical model (no reciprocity),
 *   tuned     — abstract model re-tuned by a co-simulation's table
 *               (upward feedback only; detail discarded afterwards),
 *   cosim     — full reciprocal co-simulation.
 *
 * Both directions matter: tuning alone recovers part of the gap, the
 * live detailed model recovers most of it. A fourth column ablates
 * the feedback granularity: per-(src,dst)-pair estimators instead of
 * per-distance aggregates (extension; helps hotspot workloads most).
 */

#include <cstdio>

#include "bench_util.hh"
#include "workload/app_profiles.hh"

using namespace rasim;
using namespace benchutil;

int
main()
{
    printHeader("E6: reciprocity ablation — static vs tuned vs cosim "
                "(8x8)");
    printRow({"app", "abs_err", "tuned_err", "cosim_err", "pair_err"});

    double abs_sum = 0, tuned_sum = 0, cosim_sum = 0, pair_sum = 0;
    int apps = 0;
    for (const char *name : {"fft", "radix", "barnes", "ocean"}) {
        cosim::FullSystem mono(
            Config(), accuracyOptions(cosim::Mode::Monolithic, name));
        mono.run();
        double ref = mono.meanPacketLatency();

        cosim::FullSystem abs(
            Config(), accuracyOptions(cosim::Mode::Abstract, name));
        abs.run();

        cosim::FullSystem cs(
            Config(), accuracyOptions(cosim::Mode::CosimCycle, name));
        cs.run();

        cosim::FullSystem tuned(
            Config(), accuracyOptions(cosim::Mode::TunedAbstract, name));
        tuned.abstractNetwork()->table() = cs.bridge().table();
        tuned.run();

        Config pair_cfg;
        pair_cfg.set("abstract.granularity", std::string("pair"));
        cosim::FullSystem pair(
            pair_cfg, accuracyOptions(cosim::Mode::CosimCycle, name));
        pair.run();

        double abs_err = relErr(abs.meanPacketLatency(), ref);
        double tuned_err = relErr(tuned.meanPacketLatency(), ref);
        double cosim_err = relErr(cs.meanPacketLatency(), ref);
        double pair_err = relErr(pair.meanPacketLatency(), ref);
        abs_sum += abs_err;
        tuned_sum += tuned_err;
        cosim_sum += cosim_err;
        pair_sum += pair_err;
        ++apps;
        printRow({name, pct(abs_err), pct(tuned_err), pct(cosim_err),
                  pct(pair_err)});
    }
    printRow({"mean", pct(abs_sum / apps), pct(tuned_sum / apps),
              pct(cosim_sum / apps), pct(pair_sum / apps)});
    std::printf("\n(tuned = feedback direction only; cosim = both "
                "directions; pair = cosim with per-flow feedback "
                "granularity)\n");
    return 0;
}
