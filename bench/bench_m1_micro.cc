/**
 * @file
 * M1: google-benchmark microbenchmarks of the simulation substrates —
 * event queue throughput, router pipeline cost vs network size,
 * cache access cost, engine dispatch overhead, abstract-model cost.
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "abstractnet/abstract_network.hh"
#include "mem/memory_system.hh"
#include "noc/cycle_network.hh"
#include "noc/deflection_network.hh"
#include "sim/parallel_engine.hh"
#include "sim/rng.hh"
#include "sim/simulation.hh"
#include "workload/traffic.hh"

using namespace rasim;

namespace
{

void
BM_EventQueueScheduleService(benchmark::State &state)
{
    EventQueue eq;
    std::uint64_t processed = 0;
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i)
            eq.scheduleLambda(eq.curTick() + 1 + (i % 7),
                              [&processed] { ++processed; });
        while (eq.serviceOne()) {
        }
    }
    benchmark::DoNotOptimize(processed);
    state.SetItemsProcessed(static_cast<std::int64_t>(processed));
}
BENCHMARK(BM_EventQueueScheduleService);

void
BM_RngUniform(benchmark::State &state)
{
    Rng rng(1, 2);
    double sum = 0;
    for (auto _ : state)
        sum += rng.uniform();
    benchmark::DoNotOptimize(sum);
}
BENCHMARK(BM_RngUniform);

void
BM_NetworkCyclePerSize(benchmark::State &state)
{
    int side = static_cast<int>(state.range(0));
    Simulation sim;
    noc::NocParams p;
    p.columns = side;
    p.rows = side;
    noc::CycleNetwork net(sim, "noc", p);
    workload::TrafficGenerator::Options o;
    o.rate = 0.05;
    workload::TrafficGenerator gen(net, side, side, o,
                                   sim.makeRng(0xbe));
    Tick t = 0;
    for (auto _ : state) {
        t += 16;
        gen.generateTo(t);
        net.advanceTo(t);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(net.cyclesRun.value()) * side * side);
    state.counters["routers"] = side * side;
}
BENCHMARK(BM_NetworkCyclePerSize)->Arg(4)->Arg(8)->Arg(16)->Arg(23);

void
BM_AbstractModelInject(benchmark::State &state)
{
    Simulation sim;
    noc::NocParams p;
    abstractnet::AbstractNetwork net(
        sim, "abs", p, abstractnet::AbstractNetwork::Mode::Static);
    Rng rng(7, 7);
    PacketId id = 1;
    Tick t = 0;
    for (auto _ : state) {
        ++t;
        net.inject(noc::makePacket(id++, rng.range(64), rng.range(64),
                                   noc::MsgClass::Request, 8, t));
        net.advanceTo(t);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(id));
}
BENCHMARK(BM_AbstractModelInject);

void
BM_L1HitPath(benchmark::State &state)
{
    Simulation sim;
    noc::NocParams p;
    p.columns = 2;
    p.rows = 2;
    noc::CycleNetwork net(sim, "noc", p);
    mem::MemorySystem memsys(sim, "mem", net, mem::MemParams());
    // Warm one block to M state.
    bool done = false;
    memsys.l1(0).access(0x1000, true, [&done] { done = true; });
    Tick t = 0;
    while (!done) {
        ++t;
        sim.run(t);
        net.advanceTo(t);
    }
    std::uint64_t hits = 0;
    for (auto _ : state) {
        memsys.l1(0).access(0x1000, false, [&hits] { ++hits; });
        ++t;
        sim.run(t + 4);
        t += 4;
    }
    benchmark::DoNotOptimize(hits);
    state.SetItemsProcessed(static_cast<std::int64_t>(hits));
}
BENCHMARK(BM_L1HitPath);

void
BM_EngineDispatchOverhead(benchmark::State &state)
{
    int workers = static_cast<int>(state.range(0));
    std::unique_ptr<StepEngine> engine;
    if (workers == 0)
        engine = std::make_unique<SerialEngine>();
    else
        engine = std::make_unique<ParallelEngine>(workers);
    std::atomic<std::uint64_t> sink{0};
    for (auto _ : state) {
        engine->forEach(64, [&sink](std::size_t i) {
            sink.fetch_add(i, std::memory_order_relaxed);
        });
    }
    benchmark::DoNotOptimize(sink.load());
}
BENCHMARK(BM_EngineDispatchOverhead)->Arg(0)->Arg(1)->Arg(3);

/**
 * Serial-vs-parallel stepping of the cycle network at high load:
 * time/iteration across worker counts gives the measured pool
 * speedup on this host (Arg 0 = SerialEngine baseline; on a 1-core
 * host the >1 worker rows measure dispatch overhead, not speedup).
 */
void
BM_NetworkCycleSerialVsPool(benchmark::State &state)
{
    int workers = static_cast<int>(state.range(0));
    Simulation sim;
    noc::NocParams p;
    p.columns = 8;
    p.rows = 8;
    noc::CycleNetwork net(sim, "noc", p);
    std::unique_ptr<StepEngine> engine;
    if (workers > 0) {
        engine = std::make_unique<ParallelEngine>(workers);
        net.setEngine(engine.get());
    }
    workload::TrafficGenerator::Options o;
    o.rate = 0.3;
    workload::TrafficGenerator gen(net, 8, 8, o, sim.makeRng(0xbe));
    Tick t = 0;
    for (auto _ : state) {
        t += 16;
        gen.generateTo(t);
        net.advanceTo(t);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(net.cyclesRun.value()) * 64);
    state.counters["workers"] = workers;
}
BENCHMARK(BM_NetworkCycleSerialVsPool)->Arg(0)->Arg(1)->Arg(2)->Arg(4);

/** Same comparison for the bufferless deflection backend. */
void
BM_DeflectionCycleSerialVsPool(benchmark::State &state)
{
    int workers = static_cast<int>(state.range(0));
    Simulation sim;
    noc::NocParams p;
    p.columns = 8;
    p.rows = 8;
    noc::DeflectionNetwork net(sim, "dnoc", p);
    std::unique_ptr<StepEngine> engine;
    if (workers > 0) {
        engine = std::make_unique<ParallelEngine>(workers);
        net.setEngine(engine.get());
    }
    workload::TrafficGenerator::Options o;
    o.rate = 0.3;
    workload::TrafficGenerator gen(net, 8, 8, o, sim.makeRng(0xbe));
    Tick t = 0;
    for (auto _ : state) {
        t += 16;
        gen.generateTo(t);
        net.advanceTo(t);
    }
    state.counters["workers"] = workers;
}
BENCHMARK(BM_DeflectionCycleSerialVsPool)->Arg(0)->Arg(2);

} // namespace

BENCHMARK_MAIN();
