#!/usr/bin/env bash
# Chaos soak: the fault-tolerance differential, end-to-end over a real
# socket. Run the quickstart co-simulation against a rasim-nocd server
# once fault-free (the baseline), then once per seed with the client's
# transport chaos injector armed (torn frames, short reads, CRC
# corruption, stalls, cold disconnects) and deterministic retry — every
# chaos run must produce the identical headline results. A further run
# exercises server-side chaos (the daemon tears its own replies), and a
# final check SIGTERMs the daemon and expects a graceful drain.
#
# On a mismatch the offending seed is printed so the failure can be
# replayed exactly.
#
# Usage: scripts/chaos_soak.sh [build-dir] [seed ...]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-"$repo/build"}"
shift || true
seeds=("$@")
[ "${#seeds[@]}" -eq 0 ] && seeds=(1 22695477 987654321)
jobs="$(nproc 2>/dev/null || echo 2)"

cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build" -j "$jobs" --target quickstart rasim-nocd

quickstart="$build/examples/quickstart"
nocd="$build/src/ipc/rasim-nocd"
work="$(mktemp -d)"
server_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2> /dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

start_server() { # <socket> <log> [server key=value ...]
    local socket="$1" log="$2"
    shift 2
    "$nocd" "unix:$socket" "$@" > "$log" 2>&1 &
    server_pid=$!
    for _ in $(seq 1 100); do
        grep -q "listening on" "$log" && return 0
        sleep 0.05
    done
    echo "error: rasim-nocd did not come up" >&2
    cat "$log" >&2
    exit 1
}

stop_server() {
    [ -n "$server_pid" ] || return 0
    kill "$server_pid" 2> /dev/null || true
    wait "$server_pid" 2> /dev/null || true
    server_pid=""
}

# The headline block (finish tick through the reciprocal-table summary)
# is the differential claim; transport/health counters — retries,
# reconnects, backoff — legitimately differ between a chaotic and a
# calm run and live outside it.
extract() {
    sed -n '/^finished at tick/,/^reciprocal table/p' "$1"
}

args=(system.ops_per_core=2000 network.backend=remote)

# Deterministic retry in its bit-reproducible configuration: no
# wall-clock deadline (the one nondeterministic input), a generous
# attempt budget, breaker off.
# A short journal (frequent base refreshes) keeps each recovery replay
# small, and the attempt budget exceeds the fault cap: even if every
# remaining fault lands inside one retry round, the round survives.
retry_args=(
    network.remote.retry.max_attempts=12
    network.remote.retry.base_ms=0.05
    network.remote.retry.max_ms=0.5
    network.remote.retry.deadline_ms=0
    network.remote.retry.breaker_failures=0
    network.remote.ckpt_quanta=16
)

chaos_args() { # <seed>
    echo fault.transport.enabled=1 \
        "fault.transport.seed=$1" \
        fault.transport.torn_frame=0.01 \
        fault.transport.short_read=0.005 \
        fault.transport.corrupt=0.01 \
        fault.transport.delay=0.01 \
        fault.transport.delay_ms=0.05 \
        fault.transport.stall=0.005 \
        fault.transport.stall_ms=0.1 \
        fault.transport.disconnect=0.005 \
        fault.transport.min_gap_ops=25 \
        fault.transport.max_faults=10
}

socket="$work/nocd.sock"
echo "== baseline: fault-free remote run =="
start_server "$socket" "$work/nocd.log"
"$quickstart" "${args[@]}" remote.socket="unix:$socket" \
    > "$work/baseline.log"

for seed in "${seeds[@]}"; do
    echo "== chaos run, seed=$seed =="
    # shellcheck disable=SC2046
    "$quickstart" "${args[@]}" remote.socket="unix:$socket" \
        "${retry_args[@]}" $(chaos_args "$seed") \
        > "$work/chaos-$seed.log"
    if ! diff <(extract "$work/baseline.log") \
              <(extract "$work/chaos-$seed.log"); then
        echo "error: chaos run diverged from the fault-free baseline" >&2
        echo "error: replay with fault.transport.seed=$seed" >&2
        exit 1
    fi
done
stop_server

echo "== server-side chaos: the daemon tears its own replies =="
chaotic="$work/nocd-chaos.sock"
start_server "$chaotic" "$work/nocd-chaos.log" \
    fault.transport.enabled=1 fault.transport.seed=7 \
    fault.transport.torn_frame=0.01 fault.transport.min_gap_ops=20 \
    fault.transport.max_faults=10
"$quickstart" "${args[@]}" remote.socket="unix:$chaotic" \
    "${retry_args[@]}" > "$work/server-chaos.log"
if ! diff <(extract "$work/baseline.log") \
          <(extract "$work/server-chaos.log"); then
    echo "error: run against a chaotic server diverged (server seed=7)" >&2
    exit 1
fi

echo "== graceful drain on SIGTERM =="
kill -TERM "$server_pid"
for _ in $(seq 1 100); do
    kill -0 "$server_pid" 2> /dev/null || break
    sleep 0.05
done
if kill -0 "$server_pid" 2> /dev/null; then
    echo "error: rasim-nocd did not drain within 5s of SIGTERM" >&2
    exit 1
fi
wait "$server_pid" || {
    echo "error: rasim-nocd exited non-zero after SIGTERM drain" >&2
    exit 1
}
server_pid=""
grep -q "exiting" "$work/nocd-chaos.log" || {
    echo "error: drained daemon left no exit line" >&2
    cat "$work/nocd-chaos.log" >&2
    exit 1
}

echo "chaos soak passed: every seeded run matches the baseline"
