#!/usr/bin/env bash
# Crash-anywhere soak: the self-healing differential, end-to-end over
# real processes. A rasim-supervisor manages a two-worker rasim-nocd
# fleet; the quickstart co-simulation runs against it once fault-free
# (the baseline), then once per seed while this script SIGKILLs
# workers at seed-derived moments — single kills of either worker and
# a double kill that takes the whole fleet down at once. The
# supervisor respawns every corpse on its old endpoint, the client's
# recovery lineage (base image + journal replay, standby promotion,
# deterministic re-priming) carries it across, and every killed run
# must reproduce the baseline's headline results exactly.
#
# On a mismatch the offending seed is printed so the failure can be
# replayed: scripts/crash_anywhere_soak.sh <build-dir> <seed>.
#
# Usage: scripts/crash_anywhere_soak.sh [build-dir] [seed ...]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-"$repo/build"}"
shift || true
seeds=("$@")
# Defaults chosen so the schedules cover single kills of both workers
# AND a double kill (seed 5's first target is 2 = whole fleet down).
[ "${#seeds[@]}" -eq 0 ] && seeds=(1 5 31337)
jobs="$(nproc 2>/dev/null || echo 2)"

cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build" -j "$jobs" \
    --target quickstart rasim-nocd rasim-supervisor

quickstart="$build/examples/quickstart"
nocd="$build/src/ipc/rasim-nocd"
supervisor="$build/src/ipc/rasim-supervisor"
work="$(mktemp -d)"
sup_pid=""
cleanup() {
    [ -n "$sup_pid" ] && kill "$sup_pid" 2> /dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

ep0="unix:$work/worker-0.sock"
ep1="unix:$work/worker-1.sock"
registry="$work/registry"

start_fleet() {
    "$supervisor" --endpoints "$ep0,$ep1" --worker "$nocd" \
        --registry "$registry" --backoff-base-ms 20 \
        --backoff-max-ms 200 > "$work/supervisor.log" 2>&1 &
    sup_pid=$!
    # The workers inherit the supervisor's stdout: wait until both
    # announce their listening sockets.
    for _ in $(seq 1 200); do
        [ "$(grep -c "listening on" "$work/supervisor.log" \
            2> /dev/null || true)" -ge 2 ] && return 0
        sleep 0.05
    done
    echo "error: the worker fleet did not come up" >&2
    cat "$work/supervisor.log" >&2
    exit 1
}

worker_pid() { # <idx> — live pid from the registry, 0 while down
    awk -v i="$1" '$1 == "worker" && $2 == i {print $6}' "$registry"
}

kill_worker() { # <idx>
    local pid
    pid="$(worker_pid "$1")"
    [ -n "$pid" ] && [ "$pid" -gt 0 ] && kill -9 "$pid" 2> /dev/null \
        || true
}

# The headline block is the differential claim; the health counters
# (reconnects, failovers, reprimes, ...) are failure weather that
# legitimately differs between a calm run and a massacred one.
extract() {
    sed -n '/^finished at tick/,/^reciprocal table/p' "$1"
}

# A workload long enough (~10 s) that every kill in the schedule lands
# while the run is still in flight.
args=(system.ops_per_core=20000 network.backend=remote
      "remote.socket=$ep0"
      "network.remote.endpoints=$ep0,$ep1"
      "network.remote.registry=$registry"
      network.remote.ckpt_quanta=16)

# Deterministic retry sized for a supervisor respawn window: no
# wall-clock deadline, backed-off attempts that comfortably outlast
# the 20-200 ms restart backoff, breaker off so no kill streak can
# shed the recovery lineage.
retry_args=(
    network.remote.retry.max_attempts=30
    network.remote.retry.base_ms=2
    network.remote.retry.max_ms=50
    network.remote.retry.deadline_ms=0
    network.remote.retry.breaker_failures=0
)

# Seed-derived kill schedule: three kills per run, each "<sleep-ds>
# <target>" where target 0/1 kills that worker and 2 kills both (the
# double failure). An LCG keeps the schedule reproducible per seed.
kill_schedule() { # <seed>
    local s="$1" k
    for k in 1 2 3; do
        s=$(( (s * 1103515245 + 12345) % 2147483648 ))
        echo "$(( (s % 8) + 3 )) $(( s % 3 ))"
    done
}

health_counter() { # <log> <name> — summed health counter value
    awk -v n="$2" '$1 ~ ("\\.health\\." n "$") {sum += $2} END {print sum + 0}' "$1"
}

start_fleet

echo "== baseline: fault-free supervised run =="
"$quickstart" "${args[@]}" "${retry_args[@]}" > "$work/baseline.log"

for seed in "${seeds[@]}"; do
    echo "== crash run, seed=$seed =="
    "$quickstart" "${args[@]}" "${retry_args[@]}" \
        > "$work/crash-$seed.log" 2>&1 &
    client=$!
    while read -r sleep_ds target; do
        sleep "0.$sleep_ds"
        kill -0 "$client" 2> /dev/null || break
        if [ "$target" = 2 ]; then
            echo "   double kill: both workers"
            kill_worker 0
            kill_worker 1
        else
            echo "   kill: worker $target"
            kill_worker "$target"
        fi
    done < <(kill_schedule "$seed")
    if ! wait "$client"; then
        echo "error: the client did not survive the kill schedule" >&2
        echo "error: replay with seed $seed" >&2
        tail -20 "$work/crash-$seed.log" >&2
        exit 1
    fi
    if ! diff <(extract "$work/baseline.log") \
              <(extract "$work/crash-$seed.log"); then
        echo "error: crash run diverged from the fault-free baseline" >&2
        echo "error: replay with seed $seed" >&2
        exit 1
    fi
    reconnects="$(health_counter "$work/crash-$seed.log" reconnects)"
    if [ "${reconnects%.*}" -lt 1 ]; then
        echo "error: seed $seed landed no kill mid-run (reconnects=0);" \
             "the soak proved nothing" >&2
        exit 1
    fi
done

echo "== supervisor teardown on SIGTERM =="
kill -TERM "$sup_pid"
for _ in $(seq 1 100); do
    kill -0 "$sup_pid" 2> /dev/null || break
    sleep 0.05
done
if kill -0 "$sup_pid" 2> /dev/null; then
    echo "error: rasim-supervisor did not exit within 5s of SIGTERM" >&2
    exit 1
fi
wait "$sup_pid" || {
    echo "error: rasim-supervisor exited non-zero after SIGTERM" >&2
    exit 1
}
sup_pid=""
grep -q "rasim-supervisor exiting" "$work/supervisor.log" || {
    echo "error: supervisor left no exit line" >&2
    cat "$work/supervisor.log" >&2
    exit 1
}

echo "crash-anywhere soak passed: every killed run matches the baseline"
