#!/usr/bin/env bash
# Out-of-process backend smoke test: start a rasim-nocd server, run the
# quickstart co-simulation once against the in-process backend and once
# against the remote one, and verify the headline results — finish
# tick, packet counts, latencies and the reciprocal-table observation
# count — match exactly. This is the differential claim of the remote
# backend, exercised end-to-end over a real socket.
#
# Usage: scripts/remote_smoke.sh [build-dir]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-"$repo/build"}"
jobs="$(nproc 2>/dev/null || echo 2)"

cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build" -j "$jobs" --target quickstart rasim-nocd

quickstart="$build/examples/quickstart"
nocd="$build/src/ipc/rasim-nocd"
work="$(mktemp -d)"
socket="$work/nocd.sock"
server_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2> /dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

args=(system.ops_per_core=2000)

echo "== in-process reference run =="
"$quickstart" "${args[@]}" > "$work/inproc.log"

echo "== rasim-nocd =="
"$nocd" "unix:$socket" > "$work/nocd.log" 2>&1 &
server_pid=$!
for _ in $(seq 1 100); do
    grep -q "listening on" "$work/nocd.log" && break
    sleep 0.05
done
grep -q "listening on" "$work/nocd.log" || {
    echo "error: rasim-nocd did not come up" >&2
    cat "$work/nocd.log" >&2
    exit 1
}

echo "== remote run (network.backend=remote) =="
"$quickstart" "${args[@]}" network.backend=remote \
    remote.socket="unix:$socket" > "$work/remote.log"

# The headline block: everything from the finish line through the
# reciprocal-table summary must be identical. (The full stats dump is
# not comparable across backends: the client exports transport
# counters, the in-process network exports router internals.)
extract() {
    sed -n '/^finished at tick/,/^reciprocal table/p' "$1"
}
if ! diff <(extract "$work/inproc.log") <(extract "$work/remote.log")
then
    echo "error: remote run diverged from the in-process reference" >&2
    exit 1
fi
echo "remote run matches the in-process reference"
