#!/usr/bin/env bash
# Crash-recovery end-to-end check: run the quickstart co-simulation
# with periodic checkpointing enabled, SIGKILL it mid-run, resume from
# the newest on-disk image and verify the resumed run reproduces the
# uninterrupted reference bit-for-bit (final tick, packet counts and
# the full statistics dump).
#
# Usage: scripts/kill_and_resume.sh [build-dir]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-"$repo/build"}"
jobs="$(nproc 2>/dev/null || echo 2)"

cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build" -j "$jobs" --target quickstart

quickstart="$build/examples/quickstart"
work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

# A workload long enough (~10 s) that the SIGKILL lands mid-run, well
# after the first periodic image hits the disk.
args=(system.ops_per_core=20000 checkpoint.interval_quanta=4)

echo "== reference run (uninterrupted) =="
"$quickstart" "${args[@]}" > "$work/reference.log"

echo "== checkpointing run, killed mid-flight =="
"$quickstart" "${args[@]}" checkpoint.dir="$work/ckpt" \
    > "$work/killed.log" 2>&1 &
pid=$!
# Wait for the first retained checkpoint image, then kill -9: no
# destructors, no flush — exactly the crash the tmp+rename protocol
# is supposed to survive.
for _ in $(seq 1 600); do
    compgen -G "$work/ckpt/ckpt-*.ckpt" > /dev/null && break
    sleep 0.05
done
compgen -G "$work/ckpt/ckpt-*.ckpt" > /dev/null || {
    echo "error: no checkpoint image appeared before the run ended" >&2
    cat "$work/killed.log" >&2
    exit 1
}
kill -9 "$pid" 2> /dev/null || true
wait "$pid" 2> /dev/null || true
if grep -q "finished at tick" "$work/killed.log"; then
    echo "error: run completed before it could be killed" >&2
    exit 1
fi
echo "killed pid $pid with $(ls "$work/ckpt" | wc -l) image(s) on disk"

echo "== resumed run =="
"$quickstart" "${args[@]}" checkpoint.dir="$work/ckpt" \
    --restore="$work/ckpt" > "$work/resumed.log"

# Everything from the finish line onward — final tick, packet counts,
# latencies and the full statistics dump — must match the reference
# exactly; wall-clock quantities are deliberately kept out of stats.
extract() { sed -n '/^finished at tick/,$p' "$1"; }
if ! diff <(extract "$work/reference.log") <(extract "$work/resumed.log"); then
    echo "error: resumed run diverged from the uninterrupted reference" >&2
    exit 1
fi
echo "resumed run matches the uninterrupted reference"
