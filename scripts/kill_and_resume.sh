#!/usr/bin/env bash
# Crash-recovery end-to-end check: run the quickstart co-simulation
# with periodic checkpointing enabled, SIGKILL it mid-run, resume from
# the newest on-disk image and verify the resumed run reproduces the
# uninterrupted reference bit-for-bit (final tick, packet counts and
# the full statistics dump).
#
# With --remote the same check runs against the out-of-process NoC
# backend, and the SIGKILL lands on the *server* instead: the client
# (run with health.degrade=false so a lost backend is fatal rather
# than degraded) dies on the transport error, the server is restarted,
# and the resumed client restores both halves from the paired
# client+server checkpoint image. The client speaks the pipelined v2
# transport (coalesced Step frames, idle elision, server speculation —
# all default-on), so the SIGKILL routinely lands while the server is
# mid-speculation; the bit-identical resume proves speculative state
# never leaks into a checkpoint.
#
# Usage: scripts/kill_and_resume.sh [build-dir] [--remote]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="$repo/build"
remote=0
for arg in "$@"; do
    case "$arg" in
      --remote) remote=1 ;;
      *) build="$arg" ;;
    esac
done
jobs="$(nproc 2>/dev/null || echo 2)"

cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build" -j "$jobs" --target quickstart rasim-nocd

quickstart="$build/examples/quickstart"
nocd="$build/src/ipc/rasim-nocd"
work="$(mktemp -d)"
server_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2> /dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

# A workload long enough (~10 s) that the SIGKILL lands mid-run, well
# after the first periodic image hits the disk.
args=(system.ops_per_core=20000 checkpoint.interval_quanta=4)

start_server() {
    local log="$1"
    "$nocd" "unix:$work/nocd.sock" > "$log" 2>&1 &
    server_pid=$!
    for _ in $(seq 1 100); do
        grep -q "listening on" "$log" 2> /dev/null && return 0
        sleep 0.05
    done
    echo "error: rasim-nocd did not come up" >&2
    cat "$log" >&2
    exit 1
}

if [ "$remote" = 1 ]; then
    # The detailed network lives in rasim-nocd; a lost server must
    # abort the client (not degrade it) for this crash drill.
    args+=(network.backend=remote "remote.socket=unix:$work/nocd.sock"
           health.degrade=false remote.connect_timeout_ms=500
           remote.quantum_timeout_ms=2000)
    start_server "$work/nocd-ref.log"
fi

echo "== reference run (uninterrupted) =="
"$quickstart" "${args[@]}" > "$work/reference.log"

echo "== checkpointing run, killed mid-flight =="
"$quickstart" "${args[@]}" checkpoint.dir="$work/ckpt" \
    > "$work/killed.log" 2>&1 &
pid=$!
# Wait for the first retained checkpoint image, then kill -9: no
# destructors, no flush — exactly the crash the tmp+rename protocol
# is supposed to survive.
for _ in $(seq 1 600); do
    compgen -G "$work/ckpt/ckpt-*.ckpt" > /dev/null && break
    sleep 0.05
done
compgen -G "$work/ckpt/ckpt-*.ckpt" > /dev/null || {
    echo "error: no checkpoint image appeared before the run ended" >&2
    cat "$work/killed.log" >&2
    exit 1
}
if [ "$remote" = 1 ]; then
    # SIGKILL the *server*: the client's next quantum RPC fails with a
    # transport error, which health.degrade=false turns fatal — the
    # client dies too, leaving only the paired images on disk.
    kill -9 "$server_pid" 2> /dev/null || true
    server_pid=""
    wait "$pid" 2> /dev/null && {
        echo "error: client survived the server SIGKILL" >&2
        exit 1
    } || true
else
    kill -9 "$pid" 2> /dev/null || true
    wait "$pid" 2> /dev/null || true
fi
if grep -q "finished at tick" "$work/killed.log"; then
    echo "error: run completed before it could be killed" >&2
    exit 1
fi
echo "killed pid $pid with $(ls "$work/ckpt" | wc -l) image(s) on disk"

echo "== resumed run =="
if [ "$remote" = 1 ]; then
    # A fresh server process: the resumed client pushes the paired
    # server-side image into it over CkptLoad.
    start_server "$work/nocd-resume.log"
fi
"$quickstart" "${args[@]}" checkpoint.dir="$work/ckpt" \
    --restore="$work/ckpt" > "$work/resumed.log"

# Everything from the finish line onward — final tick, packet counts,
# latencies and the full statistics dump — must match the reference
# exactly; wall-clock quantities are deliberately kept out of stats.
# The health.* counters are transport weather, not simulation results:
# the resumed client legitimately records the reconnect that resumed
# it, which the uninterrupted reference never needed.
extract() {
    sed -n '/^finished at tick/,$p' "$1" |
        grep -Ev '\.health\.(reconnects|retries|failovers|backoff_ms_total|breaker_trips)'
}
if ! diff <(extract "$work/reference.log") <(extract "$work/resumed.log"); then
    echo "error: resumed run diverged from the uninterrupted reference" >&2
    exit 1
fi
echo "resumed run matches the uninterrupted reference"
