#!/usr/bin/env bash
# Crash-recovery end-to-end check: run the quickstart co-simulation
# with periodic checkpointing enabled, SIGKILL it mid-run, resume from
# the newest on-disk image and verify the resumed run reproduces the
# uninterrupted reference bit-for-bit (final tick, packet counts and
# the full statistics dump).
#
# With --remote the detailed network lives in a rasim-nocd worker
# managed by rasim-supervisor, and the drill has two phases. Phase A
# SIGKILLs the *worker* mid-run: the supervisor respawns it on its old
# endpoint and the client survives in place, rebuilding the server
# from its recovery lineage (base image + journal replay) — the run
# finishes and must match the reference. Phase B SIGKILLs the *client*
# mid-run and resumes it from the newest paired client+server
# checkpoint image against the still-supervised fleet. The client
# speaks the pipelined v2 transport (coalesced Step frames, idle
# elision, server speculation — all default-on), so the kills
# routinely land while the server is mid-speculation; the bit-identical
# outcomes prove speculative state never leaks into a checkpoint or a
# recovery replay.
#
# Usage: scripts/kill_and_resume.sh [build-dir] [--remote]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="$repo/build"
remote=0
for arg in "$@"; do
    case "$arg" in
      --remote) remote=1 ;;
      *) build="$arg" ;;
    esac
done
jobs="$(nproc 2>/dev/null || echo 2)"

cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build" -j "$jobs" \
    --target quickstart rasim-nocd rasim-supervisor

quickstart="$build/examples/quickstart"
nocd="$build/src/ipc/rasim-nocd"
supervisor="$build/src/ipc/rasim-supervisor"
work="$(mktemp -d)"
sup_pid=""
cleanup() {
    [ -n "$sup_pid" ] && kill "$sup_pid" 2> /dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

# A workload long enough (~10 s) that the SIGKILL lands mid-run, well
# after the first periodic image hits the disk.
args=(system.ops_per_core=20000 checkpoint.interval_quanta=4)

registry="$work/registry"

start_fleet() {
    "$supervisor" --endpoints "unix:$work/nocd.sock" --worker "$nocd" \
        --registry "$registry" --backoff-base-ms 20 \
        --backoff-max-ms 200 > "$work/supervisor.log" 2>&1 &
    sup_pid=$!
    for _ in $(seq 1 200); do
        grep -q "listening on" "$work/supervisor.log" 2> /dev/null \
            && return 0
        sleep 0.05
    done
    echo "error: the supervised worker did not come up" >&2
    cat "$work/supervisor.log" >&2
    exit 1
}

kill_worker() {
    local pid
    pid="$(awk '$1 == "worker" && $2 == 0 {print $6}' "$registry")"
    [ -n "$pid" ] && [ "$pid" -gt 0 ] && kill -9 "$pid" 2> /dev/null \
        || true
}

if [ "$remote" = 1 ]; then
    # The worker fleet outlives any single worker: the supervisor
    # respawns a SIGKILLed rasim-nocd on the same endpoint, and the
    # client's retry budget is sized to outlast that respawn window.
    # health.degrade=false keeps a genuinely lost backend fatal, so
    # phase A really proves recovery, not degradation.
    args+=(network.backend=remote "remote.socket=unix:$work/nocd.sock"
           "network.remote.registry=$registry"
           network.remote.ckpt_quanta=16
           network.remote.retry.max_attempts=30
           network.remote.retry.base_ms=2
           network.remote.retry.max_ms=50
           network.remote.retry.deadline_ms=0
           network.remote.retry.breaker_failures=0
           health.degrade=false remote.connect_timeout_ms=500
           remote.quantum_timeout_ms=2000)
    start_fleet
fi

echo "== reference run (uninterrupted) =="
"$quickstart" "${args[@]}" > "$work/reference.log"

# Everything from the finish line onward — final tick, packet counts,
# latencies and the full statistics dump — must match the reference
# exactly; wall-clock quantities are deliberately kept out of stats.
# The health.* counters are transport weather, not simulation results:
# a recovered client legitimately records the reconnects, failovers,
# re-primes and registry-mirrored restarts its drill needed, which the
# uninterrupted reference never did.
extract() {
    sed -n '/^finished at tick/,$p' "$1" |
        grep -Ev '\.health\.(reconnects|retries|failovers|backoff_ms_total|breaker_trips|standby_prime_failures|reprimes|heartbeat_misses|attestation_mismatches|worker_restarts)'
}

if [ "$remote" = 1 ]; then
    echo "== phase A: worker killed mid-run, client survives in place =="
    "$quickstart" "${args[@]}" > "$work/survived.log" 2>&1 &
    pid=$!
    sleep 2
    kill -0 "$pid" 2> /dev/null || {
        echo "error: run completed before the worker could be killed" >&2
        exit 1
    }
    kill_worker
    wait "$pid" || {
        echo "error: client did not survive the worker SIGKILL" >&2
        tail -20 "$work/survived.log" >&2
        exit 1
    }
    if ! diff <(extract "$work/reference.log") \
              <(extract "$work/survived.log"); then
        echo "error: survived run diverged from the reference" >&2
        exit 1
    fi
    reconnects="$(awk '$1 ~ /\.health\.reconnects$/ {sum += $2} END {print sum + 0}' \
        "$work/survived.log")"
    if [ "${reconnects%.*}" -lt 1 ]; then
        echo "error: the worker kill landed after the run ended;" \
             "phase A proved nothing" >&2
        exit 1
    fi
    echo "client survived the worker kill and matches the reference"
fi

echo "== checkpointing run, killed mid-flight =="
"$quickstart" "${args[@]}" checkpoint.dir="$work/ckpt" \
    > "$work/killed.log" 2>&1 &
pid=$!
# Wait for the first retained checkpoint image, then kill -9: no
# destructors, no flush — exactly the crash the tmp+rename protocol
# is supposed to survive.
for _ in $(seq 1 600); do
    compgen -G "$work/ckpt/ckpt-*.ckpt" > /dev/null && break
    sleep 0.05
done
compgen -G "$work/ckpt/ckpt-*.ckpt" > /dev/null || {
    echo "error: no checkpoint image appeared before the run ended" >&2
    cat "$work/killed.log" >&2
    exit 1
}
kill -9 "$pid" 2> /dev/null || true
wait "$pid" 2> /dev/null || true
if grep -q "finished at tick" "$work/killed.log"; then
    echo "error: run completed before it could be killed" >&2
    exit 1
fi
echo "killed pid $pid with $(ls "$work/ckpt" | wc -l) image(s) on disk"

echo "== resumed run =="
# Under --remote the supervised fleet is still up: the resumed client
# opens a fresh session and pushes the paired server-side image into
# it over CkptLoad.
"$quickstart" "${args[@]}" checkpoint.dir="$work/ckpt" \
    --restore="$work/ckpt" > "$work/resumed.log"

if ! diff <(extract "$work/reference.log") <(extract "$work/resumed.log"); then
    echo "error: resumed run diverged from the uninterrupted reference" >&2
    exit 1
fi
echo "resumed run matches the uninterrupted reference"
