#!/usr/bin/env bash
# Build the simulator with ThreadSanitizer and run the test labels
# that exercise concurrency: sim (engine unit/property tests), noc
# (serial-vs-parallel differentials, including the network.kernel=soa
# lanes whose flat occupancy arrays rely on the single-writer-per-phase
# discipline TSan validates), cosim (overlapped bridge determinism) and
# ipc (the multiplexing rasim-nocd daemon — session threads, fair
# scheduler, speculation, and the multi-session soak).
#
# Usage: scripts/run_tsan.sh [build-dir]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-"$repo/build-tsan"}"
jobs="$(nproc 2>/dev/null || echo 2)"

cmake -B "$build" -S "$repo" -DRASIM_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build" -j "$jobs"

# halt_on_error keeps CI red on the first race instead of drowning
# the log; second_deadlock_stack aids lock-order reports.
export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1 ${TSAN_OPTIONS:-}"

ctest --test-dir "$build" --output-on-failure -L 'sim|noc|cosim|ipc'
