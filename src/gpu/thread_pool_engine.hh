/**
 * @file
 * Lock-step worker-pool execution engine for the network's per-cycle
 * phases — the host-side realisation of the paper's data-parallel
 * router-update kernels. Results are bit-identical to SerialEngine
 * because the network's phase discipline guarantees partition-i
 * isolation; the pool only changes *where* iterations run.
 */

#ifndef RASIM_GPU_THREAD_POOL_ENGINE_HH
#define RASIM_GPU_THREAD_POOL_ENGINE_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "noc/step_engine.hh"

namespace rasim
{
namespace gpu
{

class ThreadPoolEngine : public noc::StepEngine
{
  public:
    /**
     * @param num_workers Worker threads in addition to the calling
     *        thread (which always processes the first partition).
     */
    explicit ThreadPoolEngine(int num_workers);
    ~ThreadPoolEngine() override;

    ThreadPoolEngine(const ThreadPoolEngine &) = delete;
    ThreadPoolEngine &operator=(const ThreadPoolEngine &) = delete;

    void forEach(std::size_t n,
                 const std::function<void(std::size_t)> &fn) override;

    const char *name() const override { return "threadpool"; }

    int numWorkers() const { return static_cast<int>(workers_.size()); }

    /** forEach() invocations so far (one per simulated phase). */
    std::uint64_t phasesRun() const { return generation_; }

  private:
    void workerLoop(int worker_index);
    void runPartition(int slot, std::size_t n,
                      const std::function<void(std::size_t)> &fn) const;

    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable start_cv_;
    std::condition_variable done_cv_;
    std::uint64_t generation_ = 0;
    int pending_workers_ = 0;
    bool shutdown_ = false;
    std::size_t job_n_ = 0;
    const std::function<void(std::size_t)> *job_fn_ = nullptr;
};

} // namespace gpu
} // namespace rasim

#endif // RASIM_GPU_THREAD_POOL_ENGINE_HH
