#include "gpu/gpu_model.hh"

#include <algorithm>
#include <cmath>

#include "sim/config.hh"
#include "sim/logging.hh"

namespace rasim
{
namespace gpu
{

GpuDeviceParams
GpuDeviceParams::fromConfig(const Config &cfg)
{
    GpuDeviceParams p;
    p.kernel_launch_ns =
        cfg.getDouble("gpu.kernel_launch_ns", p.kernel_launch_ns);
    p.router_slot_ns =
        cfg.getDouble("gpu.router_slot_ns", p.router_slot_ns);
    p.parallel_width = static_cast<int>(
        cfg.getUInt("gpu.parallel_width", p.parallel_width));
    p.boundary_transfer_ns = cfg.getDouble("gpu.boundary_transfer_ns",
                                           p.boundary_transfer_ns);
    if (p.parallel_width < 1)
        fatal("gpu.parallel_width must be positive");
    return p;
}

GpuTimingModel::GpuTimingModel(GpuDeviceParams params) : params_(params)
{
}

double
GpuTimingModel::cycleNs(int routers) const
{
    // Two kernels (compute + commit); each processes the router array
    // in waves of parallel_width routers, one wave per slot time.
    double waves = std::ceil(static_cast<double>(routers) /
                             params_.parallel_width);
    double body = waves * params_.router_slot_ns;
    return 2.0 * (params_.kernel_launch_ns + body);
}

double
GpuTimingModel::quantumNs(Tick cycles, int routers) const
{
    return static_cast<double>(cycles) * cycleNs(routers) +
           params_.boundary_transfer_ns;
}

double
GpuTimingModel::overlappedRunNs(double host_ns, std::uint64_t quanta,
                                Tick quantum_cycles, int routers) const
{
    if (quanta == 0)
        return host_ns;
    double host_per_quantum = host_ns / static_cast<double>(quanta);
    double device_per_quantum = quantumNs(quantum_cycles, routers);
    return static_cast<double>(quanta) *
           std::max(host_per_quantum, device_per_quantum);
}

} // namespace gpu
} // namespace rasim
