/**
 * @file
 * Timing model of a GPU coprocessor executing the per-cycle router
 * kernels — the substitution for real CUDA hardware (see DESIGN.md).
 *
 * The device executes two kernels per simulated network cycle (the
 * compute and commit phases). Each launch pays a fixed overhead; the
 * kernel body processes all routers at a fixed per-router throughput
 * with `parallel_width` routers in flight concurrently. Every quantum
 * boundary additionally pays a host<->device transfer for the packet
 * exchange. These three terms give the paper's scaling shape: launch
 * overhead dominates small targets, parallel throughput wins large
 * ones.
 */

#ifndef RASIM_GPU_GPU_MODEL_HH
#define RASIM_GPU_GPU_MODEL_HH

#include <cstdint>

#include "sim/types.hh"

namespace rasim
{

class Config;

namespace gpu
{

/**
 * Device parameters. The defaults are calibrated so that, against the
 * serial host cost measured on the reference machine, the modelled
 * CPU+GPU co-simulation lands at the paper's two reported reductions
 * (16% at 256 cores, 65% at 512 cores) — see EXPERIMENTS.md E4 for
 * the calibration arithmetic. Override via gpu.* config keys.
 */
struct GpuDeviceParams
{
    /** Fixed cost of one kernel launch incl. sync (ns). */
    double kernel_launch_ns = 28000.0;
    /** Device time per wave of parallel_width routers (ns). */
    double router_slot_ns = 6850.0;
    /** Routers processed concurrently by the device. */
    int parallel_width = 128;
    /** Host<->device transfer per quantum boundary (ns). */
    double boundary_transfer_ns = 20000.0;

    static GpuDeviceParams fromConfig(const Config &cfg);
};

class GpuTimingModel
{
  public:
    explicit GpuTimingModel(GpuDeviceParams params = GpuDeviceParams());

    /** Device time (ns) to simulate one network cycle of @p routers. */
    double cycleNs(int routers) const;

    /**
     * Device time (ns) for a quantum of @p cycles over @p routers,
     * including the boundary transfer.
     */
    double quantumNs(Tick cycles, int routers) const;

    /**
     * Modelled wall-clock (ns) of a CPU+GPU co-simulation: the device
     * simulates each network quantum while the host simulates the next
     * system quantum, so per quantum the cost is max(host, device).
     *
     * @param host_ns Host time spent on the full-system events of the
     *        whole run.
     * @param quanta Number of quanta the run spanned.
     */
    double overlappedRunNs(double host_ns, std::uint64_t quanta,
                           Tick quantum_cycles, int routers) const;

    const GpuDeviceParams &params() const { return params_; }

  private:
    GpuDeviceParams params_;
};

} // namespace gpu
} // namespace rasim

#endif // RASIM_GPU_GPU_MODEL_HH
