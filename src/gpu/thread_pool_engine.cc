#include "gpu/thread_pool_engine.hh"

#include "sim/logging.hh"

namespace rasim
{
namespace gpu
{

ThreadPoolEngine::ThreadPoolEngine(int num_workers)
{
    if (num_workers < 0)
        fatal("thread pool needs a non-negative worker count");
    workers_.reserve(num_workers);
    for (int i = 0; i < num_workers; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPoolEngine::~ThreadPoolEngine()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    start_cv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
ThreadPoolEngine::runPartition(
    int slot, std::size_t n,
    const std::function<void(std::size_t)> &fn) const
{
    // Static block partition over (workers + caller) slots: slot 0 is
    // the caller. Determinism does not depend on the partition shape —
    // the phase discipline isolates every index — but static blocks
    // keep cache behaviour stable.
    std::size_t slots = workers_.size() + 1;
    std::size_t begin = n * slot / slots;
    std::size_t end = n * (slot + 1) / slots;
    for (std::size_t i = begin; i < end; ++i)
        fn(i);
}

void
ThreadPoolEngine::workerLoop(int worker_index)
{
    std::uint64_t seen = 0;
    for (;;) {
        std::unique_lock<std::mutex> lock(mutex_);
        start_cv_.wait(lock, [this, seen] {
            return shutdown_ || generation_ != seen;
        });
        if (shutdown_)
            return;
        seen = generation_;
        std::size_t n = job_n_;
        const auto *fn = job_fn_;
        lock.unlock();

        runPartition(worker_index + 1, n, *fn);

        lock.lock();
        if (--pending_workers_ == 0)
            done_cv_.notify_all();
    }
}

void
ThreadPoolEngine::forEach(std::size_t n,
                          const std::function<void(std::size_t)> &fn)
{
    if (workers_.empty()) {
        ++generation_;
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_n_ = n;
        job_fn_ = &fn;
        pending_workers_ = static_cast<int>(workers_.size());
        ++generation_;
    }
    start_cv_.notify_all();

    runPartition(0, n, fn);

    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return pending_workers_ == 0; });
}

} // namespace gpu
} // namespace rasim
