#include "workload/app_profiles.hh"

#include "sim/logging.hh"

namespace rasim
{
namespace workload
{

namespace
{

std::vector<AppProfile>
buildProfiles()
{
    std::vector<AppProfile> apps;

    // fft: all-to-all data exchange — large shared region, little
    // locality, read-mostly, memory-hungry.
    AppProfile fft;
    fft.name = "fft";
    fft.stream.shared_frac = 0.55;
    fft.stream.shared_blocks = 8192;
    fft.stream.seq_frac = 0.35;
    fft.stream.write_frac = 0.25;
    fft.mem_ratio = 0.45;
    apps.push_back(fft);

    // lu: blocked factorisation — strong sequential locality in the
    // private tiles, moderate sharing of the pivot rows.
    AppProfile lu;
    lu.name = "lu";
    lu.stream.shared_frac = 0.25;
    lu.stream.seq_frac = 0.85;
    lu.stream.write_frac = 0.4;
    lu.mem_ratio = 0.35;
    apps.push_back(lu);

    // barnes: irregular pointer chasing over a shared tree, low
    // locality, read-dominated.
    AppProfile barnes;
    barnes.name = "barnes";
    barnes.stream.shared_frac = 0.6;
    barnes.stream.shared_blocks = 16384;
    barnes.stream.seq_frac = 0.1;
    barnes.stream.write_frac = 0.15;
    barnes.mem_ratio = 0.4;
    apps.push_back(barnes);

    // ocean: nearest-neighbour grid sweeps — high locality, writes to
    // the private partition, modest boundary sharing.
    AppProfile ocean;
    ocean.name = "ocean";
    ocean.stream.shared_frac = 0.15;
    ocean.stream.seq_frac = 0.9;
    ocean.stream.write_frac = 0.5;
    ocean.mem_ratio = 0.5;
    apps.push_back(ocean);

    // radix: permutation writes into a shared histogram — write-heavy
    // hotspot behaviour.
    AppProfile radix;
    radix.name = "radix";
    radix.stream.shared_frac = 0.5;
    radix.stream.hotspot_frac = 0.5;
    radix.stream.hotspot_blocks = 64;
    radix.stream.write_frac = 0.6;
    radix.mem_ratio = 0.45;
    apps.push_back(radix);

    // water: mostly-private molecular updates with a small strongly
    // contended reduction area.
    AppProfile water;
    water.name = "water";
    water.stream.shared_frac = 0.1;
    water.stream.hotspot_frac = 0.8;
    water.stream.hotspot_blocks = 8;
    water.stream.seq_frac = 0.7;
    water.stream.write_frac = 0.35;
    water.mem_ratio = 0.25;
    apps.push_back(water);

    // raytrace: read-only shared scene data, random traversal.
    AppProfile raytrace;
    raytrace.name = "raytrace";
    raytrace.stream.shared_frac = 0.7;
    raytrace.stream.shared_blocks = 32768;
    raytrace.stream.seq_frac = 0.2;
    raytrace.stream.write_frac = 0.05;
    raytrace.mem_ratio = 0.35;
    apps.push_back(raytrace);

    // cholesky: supernodal factorisation — bursty private compute with
    // shared frontal matrices.
    AppProfile cholesky;
    cholesky.name = "cholesky";
    cholesky.stream.shared_frac = 0.35;
    cholesky.stream.seq_frac = 0.6;
    cholesky.stream.write_frac = 0.45;
    cholesky.mem_ratio = 0.3;
    apps.push_back(cholesky);

    return apps;
}

} // namespace

const std::vector<AppProfile> &
appProfiles()
{
    static const std::vector<AppProfile> apps = buildProfiles();
    return apps;
}

const AppProfile &
appProfile(const std::string &name)
{
    for (const AppProfile &app : appProfiles())
        if (app.name == name)
            return app;
    fatal("unknown application profile '", name, "'");
}

} // namespace workload
} // namespace rasim
