/**
 * @file
 * Packet trace capture and replay. Traces recorded from an in-context
 * co-simulation can be replayed into an isolated network — the middle
 * ground between synthetic traffic and full co-simulation that E1
 * quantifies (replay preserves the spatial/temporal mix but loses the
 * closed-loop feedback).
 */

#ifndef RASIM_WORKLOAD_TRACE_HH
#define RASIM_WORKLOAD_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "noc/network_model.hh"
#include "sim/types.hh"

namespace rasim
{
namespace workload
{

/** One recorded injection. */
struct TraceRecord
{
    Tick inject_tick = 0;
    NodeId src = 0;
    NodeId dst = 0;
    noc::MsgClass cls = noc::MsgClass::Request;
    std::uint32_t size_bytes = 0;

    bool operator==(const TraceRecord &other) const = default;
};

/** An ordered packet trace with text (CSV) persistence. */
class PacketTrace
{
  public:
    void
    record(const noc::PacketPtr &pkt)
    {
        records_.push_back({pkt->inject_tick, pkt->src, pkt->dst,
                            pkt->cls, pkt->size_bytes});
    }

    const std::vector<TraceRecord> &records() const { return records_; }
    std::size_t size() const { return records_.size(); }
    bool empty() const { return records_.empty(); }
    void clear() { records_.clear(); }

    /** Stable-sort records by injection tick (replay requires
     *  chronological order; capture order may differ). */
    void sortByTime();

    /** Write as CSV ("tick,src,dst,class,bytes"). */
    void save(std::ostream &os) const;

    /** Parse a CSV trace; fatal() on malformed rows. */
    static PacketTrace load(std::istream &is);

    /**
     * Write as a sim/serialize archive (magic, format version, CRC32):
     * compact, fast to parse, and corruption is detected rather than
     * silently mis-replayed. CSV remains the interchange format; this
     * is the bulk-storage one.
     */
    void saveBinary(std::ostream &os) const;

    /** Read an archive written by saveBinary(); fatal() on a corrupt,
     *  truncated or version-mismatched image. */
    static PacketTrace loadBinary(std::istream &is);

  private:
    std::vector<TraceRecord> records_;
};

/**
 * Replays a trace into a network model, preserving recorded injection
 * times (open loop). The caller advances the network.
 */
class TraceReplayer
{
  public:
    TraceReplayer(noc::NetworkModel &net, const PacketTrace &trace);

    /** Inject all records with inject_tick < t. */
    void replayTo(Tick t);

    bool finished() const { return next_ >= trace_.size(); }
    std::size_t injected() const { return next_; }

  private:
    noc::NetworkModel &net_;
    const PacketTrace &trace_;
    std::size_t next_ = 0;
    PacketId next_id_ = 1;
};

} // namespace workload
} // namespace rasim

#endif // RASIM_WORKLOAD_TRACE_HH
