#include "workload/traffic.hh"

#include "sim/logging.hh"

namespace rasim
{
namespace workload
{

TrafficPattern
patternFromName(const std::string &name)
{
    if (name == "uniform")
        return TrafficPattern::UniformRandom;
    if (name == "transpose")
        return TrafficPattern::Transpose;
    if (name == "bitcomp")
        return TrafficPattern::BitComplement;
    if (name == "hotspot")
        return TrafficPattern::Hotspot;
    if (name == "tornado")
        return TrafficPattern::Tornado;
    if (name == "neighbor")
        return TrafficPattern::Neighbor;
    fatal("unknown traffic pattern '", name, "'");
}

const char *
toString(TrafficPattern pattern)
{
    switch (pattern) {
      case TrafficPattern::UniformRandom:
        return "uniform";
      case TrafficPattern::Transpose:
        return "transpose";
      case TrafficPattern::BitComplement:
        return "bitcomp";
      case TrafficPattern::Hotspot:
        return "hotspot";
      case TrafficPattern::Tornado:
        return "tornado";
      case TrafficPattern::Neighbor:
        return "neighbor";
    }
    return "unknown";
}

NodeId
patternDest(TrafficPattern pattern, NodeId src, int cols, int rows,
            Rng &rng)
{
    int n = cols * rows;
    int x = static_cast<int>(src) % cols;
    int y = static_cast<int>(src) / cols;
    switch (pattern) {
      case TrafficPattern::UniformRandom:
        return rng.range(static_cast<std::uint32_t>(n));
      case TrafficPattern::Transpose: {
        // Transpose needs a square fabric; clamp coordinates when the
        // grid is rectangular.
        int tx = y % cols;
        int ty = x % rows;
        return static_cast<NodeId>(ty * cols + tx);
      }
      case TrafficPattern::BitComplement:
        return static_cast<NodeId>((n - 1) - static_cast<int>(src));
      case TrafficPattern::Hotspot:
        // Handled by the generator; fall back to uniform here.
        return rng.range(static_cast<std::uint32_t>(n));
      case TrafficPattern::Tornado: {
        int tx = (x + cols / 2) % cols;
        return static_cast<NodeId>(y * cols + tx);
      }
      case TrafficPattern::Neighbor: {
        int tx = (x + 1) % cols;
        return static_cast<NodeId>(y * cols + tx);
      }
    }
    panic("patternDest: bad pattern");
}

TrafficGenerator::TrafficGenerator(noc::NetworkModel &net, int cols,
                                   int rows, Options opts, Rng rng)
    : net_(net), cols_(cols), rows_(rows), opts_(opts), rng_(rng)
{
    if (opts_.rate < 0.0 || opts_.rate > 1.0)
        fatal("traffic rate must be in [0, 1] packets/node/cycle");
    if (static_cast<std::size_t>(cols) * rows != net.numNodes())
        fatal("traffic generator grid does not match the network");
    burst_state_.assign(net.numNodes(), 0);
}

bool
TrafficGenerator::shouldInject(std::size_t node)
{
    if (!opts_.bursty)
        return rng_.bernoulli(opts_.rate);
    // On/off process: positive state = cycles left in a burst, during
    // which injection happens at a rate compensating the off period.
    std::int64_t &s = burst_state_[node];
    if (s == 0) {
        double on_prob = opts_.rate; // duty cycle equals offered rate
        bool on = rng_.bernoulli(on_prob);
        auto len = static_cast<std::int64_t>(
            1 + rng_.geometric(1.0 / opts_.mean_burst));
        s = on ? len : -len;
    }
    bool inject = s > 0;
    s += (s > 0) ? -1 : 1;
    return inject;
}

NodeId
TrafficGenerator::pickDest(NodeId src)
{
    if (opts_.pattern == TrafficPattern::Hotspot) {
        if (rng_.bernoulli(opts_.hotspot_frac)) {
            // Hotspots spread over the first diagonal nodes.
            int k = rng_.range(
                static_cast<std::uint32_t>(opts_.hotspot_nodes));
            int step = (cols_ * rows_) / opts_.hotspot_nodes;
            return static_cast<NodeId>(k * step);
        }
        return rng_.range(static_cast<std::uint32_t>(cols_ * rows_));
    }
    return patternDest(opts_.pattern, src, cols_, rows_, rng_);
}

void
TrafficGenerator::generateTo(Tick t)
{
    for (; time_ < t; ++time_) {
        for (std::size_t node = 0; node < net_.numNodes(); ++node) {
            if (!shouldInject(node))
                continue;
            auto src = static_cast<NodeId>(node);
            NodeId dst = pickDest(src);
            std::uint32_t bytes =
                (opts_.data_frac > 0.0 &&
                 rng_.bernoulli(opts_.data_frac))
                    ? opts_.data_bytes
                    : opts_.size_bytes;
            net_.inject(noc::makePacket(next_id_++, src, dst, opts_.cls,
                                        bytes, time_));
        }
    }
}

} // namespace workload
} // namespace rasim
