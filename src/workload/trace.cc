#include "workload/trace.hh"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "sim/logging.hh"

namespace rasim
{
namespace workload
{

void
PacketTrace::sortByTime()
{
    std::stable_sort(records_.begin(), records_.end(),
                     [](const TraceRecord &a, const TraceRecord &b) {
                         return a.inject_tick < b.inject_tick;
                     });
}

void
PacketTrace::save(std::ostream &os) const
{
    os << "tick,src,dst,class,bytes\n";
    for (const TraceRecord &r : records_) {
        os << r.inject_tick << "," << r.src << "," << r.dst << ","
           << static_cast<int>(r.cls) << "," << r.size_bytes << "\n";
    }
}

PacketTrace
PacketTrace::load(std::istream &is)
{
    PacketTrace trace;
    std::string line;
    bool first = true;
    int lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty())
            continue;
        if (first) {
            first = false;
            if (line.rfind("tick,", 0) == 0)
                continue; // header
        }
        std::istringstream row(line);
        TraceRecord r;
        char c1, c2, c3, c4;
        int cls;
        if (!(row >> r.inject_tick >> c1 >> r.src >> c2 >> r.dst >>
              c3 >> cls >> c4 >> r.size_bytes) ||
            c1 != ',' || c2 != ',' || c3 != ',' || c4 != ',' ||
            cls < 0 || cls >= noc::num_vnets) {
            fatal("malformed trace row ", lineno, ": '", line, "'");
        }
        r.cls = static_cast<noc::MsgClass>(cls);
        trace.records_.push_back(r);
    }
    return trace;
}

TraceReplayer::TraceReplayer(noc::NetworkModel &net,
                             const PacketTrace &trace)
    : net_(net), trace_(trace)
{
}

void
TraceReplayer::replayTo(Tick t)
{
    const auto &recs = trace_.records();
    while (next_ < recs.size() && recs[next_].inject_tick < t) {
        const TraceRecord &r = recs[next_];
        net_.inject(noc::makePacket(next_id_++, r.src, r.dst, r.cls,
                                    r.size_bytes, r.inject_tick));
        ++next_;
    }
}

} // namespace workload
} // namespace rasim
