#include "workload/trace.hh"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace rasim
{
namespace workload
{

void
PacketTrace::sortByTime()
{
    std::stable_sort(records_.begin(), records_.end(),
                     [](const TraceRecord &a, const TraceRecord &b) {
                         return a.inject_tick < b.inject_tick;
                     });
}

void
PacketTrace::save(std::ostream &os) const
{
    os << "tick,src,dst,class,bytes\n";
    for (const TraceRecord &r : records_) {
        os << r.inject_tick << "," << r.src << "," << r.dst << ","
           << static_cast<int>(r.cls) << "," << r.size_bytes << "\n";
    }
}

PacketTrace
PacketTrace::load(std::istream &is)
{
    PacketTrace trace;
    std::string line;
    bool first = true;
    int lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty())
            continue;
        if (first) {
            first = false;
            if (line.rfind("tick,", 0) == 0)
                continue; // header
        }
        std::istringstream row(line);
        TraceRecord r;
        char c1, c2, c3, c4;
        int cls;
        if (!(row >> r.inject_tick >> c1 >> r.src >> c2 >> r.dst >>
              c3 >> cls >> c4 >> r.size_bytes) ||
            c1 != ',' || c2 != ',' || c3 != ',' || c4 != ',' ||
            cls < 0 || cls >= noc::num_vnets) {
            fatal("malformed trace row ", lineno, ": '", line, "'");
        }
        r.cls = static_cast<noc::MsgClass>(cls);
        trace.records_.push_back(r);
    }
    return trace;
}

void
PacketTrace::saveBinary(std::ostream &os) const
{
    ArchiveWriter aw;
    aw.beginSection("trace");
    aw.putU64(records_.size());
    for (const TraceRecord &r : records_) {
        aw.putU64(r.inject_tick);
        aw.putU32(r.src);
        aw.putU32(r.dst);
        aw.putU8(static_cast<std::uint8_t>(r.cls));
        aw.putU32(r.size_bytes);
    }
    aw.endSection();
    aw.writeTo(os);
}

PacketTrace
PacketTrace::loadBinary(std::istream &is)
{
    std::ostringstream ss;
    ss << is.rdbuf();
    ArchiveReader ar(ss.str());
    if (!ar.ok())
        fatal("cannot load binary trace: ", ar.error());
    PacketTrace trace;
    ar.expectSection("trace");
    std::uint64_t count = ar.getU64();
    trace.records_.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        TraceRecord r;
        r.inject_tick = ar.getU64();
        r.src = ar.getU32();
        r.dst = ar.getU32();
        int cls = ar.getU8();
        r.size_bytes = ar.getU32();
        if (cls < 0 || cls >= noc::num_vnets)
            fatal("binary trace record ", i, ": bad class ", cls);
        r.cls = static_cast<noc::MsgClass>(cls);
        trace.records_.push_back(r);
    }
    ar.endSection();
    return trace;
}

TraceReplayer::TraceReplayer(noc::NetworkModel &net,
                             const PacketTrace &trace)
    : net_(net), trace_(trace)
{
}

void
TraceReplayer::replayTo(Tick t)
{
    const auto &recs = trace_.records();
    while (next_ < recs.size() && recs[next_].inject_tick < t) {
        const TraceRecord &r = recs[next_];
        net_.inject(noc::makePacket(next_id_++, r.src, r.dst, r.cls,
                                    r.size_bytes, r.inject_tick));
        ++next_;
    }
}

} // namespace workload
} // namespace rasim
