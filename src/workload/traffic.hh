/**
 * @file
 * Synthetic packet-level traffic for *isolated* network evaluation —
 * the methodology the paper argues against: patterns with no system
 * context, no closed-loop feedback and no protocol structure.
 */

#ifndef RASIM_WORKLOAD_TRAFFIC_HH
#define RASIM_WORKLOAD_TRAFFIC_HH

#include <memory>
#include <string>
#include <vector>

#include "noc/network_model.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace rasim
{
namespace workload
{

/** Spatial destination patterns from the NoC literature. */
enum class TrafficPattern
{
    UniformRandom,
    Transpose,     ///< (x, y) -> (y, x)
    BitComplement, ///< node -> ~node
    Hotspot,       ///< a few nodes receive a share of all traffic
    Tornado,       ///< half-ring offset in x
    Neighbor,      ///< nearest neighbour (x+1, y)
};

TrafficPattern patternFromName(const std::string &name);
const char *toString(TrafficPattern pattern);

/**
 * Destination of a packet from @p src under @p pattern on a cols x
 * rows grid. Patterns needing randomness draw from @p rng.
 */
NodeId patternDest(TrafficPattern pattern, NodeId src, int cols,
                   int rows, Rng &rng);

/**
 * Open-loop traffic generator: each node injects packets by a Bernoulli
 * (or bursty on/off) process at a configured rate, ignoring delivery
 * feedback — exactly what isolated NoC studies do.
 */
class TrafficGenerator
{
  public:
    struct Options
    {
        TrafficPattern pattern = TrafficPattern::UniformRandom;
        /** Offered load in packets per node per cycle. */
        double rate = 0.01;
        /** Packet size in bytes (control packets). */
        std::uint32_t size_bytes = 32;
        /** Fraction of packets using data_bytes instead (protocol-like
         *  bimodal size mix); 0 disables. */
        double data_frac = 0.0;
        std::uint32_t data_bytes = 72;
        noc::MsgClass cls = noc::MsgClass::Request;
        /** Bursty on/off injection (geometric burst lengths). */
        bool bursty = false;
        double mean_burst = 8.0;
        /** Fraction of hotspot traffic for Hotspot pattern. */
        double hotspot_frac = 0.3;
        int hotspot_nodes = 4;
    };

    TrafficGenerator(noc::NetworkModel &net, int cols, int rows,
                     Options opts, Rng rng);

    /**
     * Generate injections for cycles [curTime, t) and hand them to the
     * network (the caller advances the network itself).
     */
    void generateTo(Tick t);

    std::uint64_t generated() const { return next_id_ - 1; }

  private:
    bool shouldInject(std::size_t node);
    NodeId pickDest(NodeId src);

    noc::NetworkModel &net_;
    int cols_;
    int rows_;
    Options opts_;
    Rng rng_;
    Tick time_ = 0;
    PacketId next_id_ = 1;
    /** Remaining burst/idle cycles per node (bursty mode). */
    std::vector<std::int64_t> burst_state_;
};

} // namespace workload
} // namespace rasim

#endif // RASIM_WORKLOAD_TRAFFIC_HH
