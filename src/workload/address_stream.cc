#include "workload/address_stream.hh"

#include "sim/logging.hh"

namespace rasim
{
namespace workload
{

void
AddressStream::save(ArchiveWriter &) const
{
    fatal("this address stream does not support checkpointing");
}

void
AddressStream::restore(ArchiveReader &)
{
    fatal("this address stream does not support checkpointing");
}

SyntheticStream::SyntheticStream(const StreamProfile &profile,
                                 NodeId node, int block_bytes, Rng rng)
    : profile_(profile), node_(node), block_bytes_(block_bytes),
      rng_(rng)
{
    if (profile_.private_blocks == 0 || profile_.shared_blocks == 0)
        fatal("stream profile needs non-empty regions");
    if (profile_.hotspot_blocks > profile_.shared_blocks)
        fatal("hotspot larger than the shared region");
}

Addr
SyntheticStream::blockAddr(Addr base, std::uint64_t block_index) const
{
    return base + block_index * static_cast<Addr>(block_bytes_);
}

MemOp
SyntheticStream::next()
{
    MemOp op;
    op.is_write = rng_.bernoulli(profile_.write_frac);

    if (rng_.bernoulli(profile_.shared_frac)) {
        std::uint64_t idx;
        if (profile_.hotspot_frac > 0.0 &&
            rng_.bernoulli(profile_.hotspot_frac)) {
            idx = rng_.range(
                static_cast<std::uint32_t>(profile_.hotspot_blocks));
        } else {
            idx = rng_.range(
                static_cast<std::uint32_t>(profile_.shared_blocks));
        }
        op.addr = blockAddr(shared_base, idx);
        return op;
    }

    // Private region with sequential runs.
    if (rng_.bernoulli(profile_.seq_frac)) {
        last_private_ = (last_private_ + profile_.stride_blocks) %
                        profile_.private_blocks;
    } else {
        last_private_ = rng_.range(
            static_cast<std::uint32_t>(profile_.private_blocks));
    }
    Addr span = static_cast<Addr>(profile_.private_blocks) *
                static_cast<Addr>(block_bytes_);
    op.addr = blockAddr(private_base + node_ * span, last_private_);
    return op;
}

void
SyntheticStream::save(ArchiveWriter &aw) const
{
    aw.beginSection("stream");
    const Rng::State rs = rng_.state();
    aw.putU64(rs.state);
    aw.putU64(rs.inc);
    aw.putU64(last_private_);
    aw.endSection();
}

void
SyntheticStream::restore(ArchiveReader &ar)
{
    ar.expectSection("stream");
    Rng::State rs;
    rs.state = ar.getU64();
    rs.inc = ar.getU64();
    rng_.setState(rs);
    last_private_ = ar.getU64();
    ar.endSection();
}

} // namespace workload
} // namespace rasim
