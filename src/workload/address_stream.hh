/**
 * @file
 * Synthetic memory address streams: per-core generators whose spatial
 * locality, sharing degree and hotspotting are parameterised so that
 * different "applications" stress the memory system — and therefore
 * the network — in qualitatively different ways.
 */

#ifndef RASIM_WORKLOAD_ADDRESS_STREAM_HH
#define RASIM_WORKLOAD_ADDRESS_STREAM_HH

#include <cstdint>
#include <memory>

#include "sim/rng.hh"
#include "sim/serialize.hh"
#include "sim/types.hh"

namespace rasim
{
namespace workload
{

/** One memory operation of a core's instruction stream. */
struct MemOp
{
    Addr addr = 0;
    bool is_write = false;
};

/** Generator of a core's memory reference stream. */
class AddressStream
{
  public:
    virtual ~AddressStream() = default;
    virtual MemOp next() = 0;

    /**
     * Checkpoint hooks. The default implementations reject the
     * operation: a stream without them cannot take part in
     * checkpointed runs.
     */
    virtual void save(ArchiveWriter &aw) const;
    virtual void restore(ArchiveReader &ar);
};

/**
 * Tunable synthetic reference behaviour. All sizes in cache blocks.
 */
struct StreamProfile
{
    /** Per-core private working set. */
    std::uint64_t private_blocks = 1024;
    /** Globally shared region. */
    std::uint64_t shared_blocks = 4096;
    /** Fraction of accesses going to the shared region. */
    double shared_frac = 0.2;
    /** Of shared accesses, fraction hitting the hotspot blocks. */
    double hotspot_frac = 0.0;
    std::uint64_t hotspot_blocks = 16;
    /** P(next private access continues sequentially from the last). */
    double seq_frac = 0.5;
    int stride_blocks = 1;
    /** Fraction of accesses that are stores. */
    double write_frac = 0.3;
};

/**
 * The standard synthetic stream: private region with sequential
 * locality plus a shared region with optional hotspot.
 *
 * Address map: shared region at shared_base; each core's private
 * region at private_base + node * private_span.
 */
class SyntheticStream : public AddressStream
{
  public:
    SyntheticStream(const StreamProfile &profile, NodeId node,
                    int block_bytes, Rng rng);

    MemOp next() override;

    void save(ArchiveWriter &aw) const override;
    void restore(ArchiveReader &ar) override;

    static constexpr Addr shared_base = 0x10000000;
    static constexpr Addr private_base = 0x40000000;

  private:
    Addr blockAddr(Addr base, std::uint64_t block_index) const;

    StreamProfile profile_;
    NodeId node_;
    int block_bytes_;
    Rng rng_;
    std::uint64_t last_private_ = 0;
};

} // namespace workload
} // namespace rasim

#endif // RASIM_WORKLOAD_ADDRESS_STREAM_HH
