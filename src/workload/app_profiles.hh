/**
 * @file
 * Named application presets: parameter sets for the synthetic cores
 * whose sharing degree, locality, hotspotting and memory intensity
 * differ per "application". Names are SPLASH-2-inspired; the presets
 * are synthetic stand-ins documented in DESIGN.md (substitution for
 * full-system workload traces, which we do not have).
 */

#ifndef RASIM_WORKLOAD_APP_PROFILES_HH
#define RASIM_WORKLOAD_APP_PROFILES_HH

#include <string>
#include <vector>

#include "workload/address_stream.hh"

namespace rasim
{
namespace workload
{

/** Full behavioural description of one application preset. */
struct AppProfile
{
    std::string name;
    StreamProfile stream;
    /** Probability an instruction is a memory operation. */
    double mem_ratio = 0.3;
    /** Memory operations each core executes in an experiment. */
    std::uint64_t ops_per_core = 2000;
};

/** The eight presets used across the E1/E2/E3/E5/E6 experiments. */
const std::vector<AppProfile> &appProfiles();

/** Look up a preset by name; fatal() when unknown. */
const AppProfile &appProfile(const std::string &name);

} // namespace workload
} // namespace rasim

#endif // RASIM_WORKLOAD_APP_PROFILES_HH
