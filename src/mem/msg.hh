/**
 * @file
 * Coherence protocol messages exchanged between L1 controllers and
 * directory (home) controllers over the on-chip network.
 *
 * Message classes map onto virtual networks so the protocol is
 * deadlock-free: requests can wait on forwards, forwards on responses,
 * and responses are always sunk.
 */

#ifndef RASIM_MEM_MSG_HH
#define RASIM_MEM_MSG_HH

#include <cstdint>
#include <string>

#include "noc/packet.hh"
#include "sim/serialize.hh"
#include "sim/types.hh"

namespace rasim
{
namespace mem
{

enum class MsgType : std::uint8_t
{
    // Request vnet (L1 -> home).
    GetS,     ///< read miss: request shared copy
    GetM,     ///< write miss/upgrade: request exclusive copy
    PutM,     ///< writeback of a modified block
    // Forward vnet (home -> L1).
    FwdGetS,  ///< forward read request to the owner
    FwdGetM,  ///< forward write request to the owner
    Inv,      ///< invalidate a shared copy (ack to requestor)
    // Response vnet.
    Data,     ///< data response (from home or owner)
    DataCtrl, ///< ack-count-only response for upgrades (no data)
    InvAck,   ///< invalidation acknowledgement (sharer -> requestor)
    WBData,   ///< owner's data on a FwdGetS downgrade (owner -> home)
    WBAck,    ///< home acknowledges a PutM
    ChownAck, ///< owner acknowledges a FwdGetM handoff (owner -> home)
};

/** Virtual network (message class) a message type travels on. */
noc::MsgClass vnetOf(MsgType type);

/** True for messages that carry a full cache block. */
bool carriesData(MsgType type);

const char *toString(MsgType type);

struct CoherenceMsg
{
    MsgType type = MsgType::GetS;
    Addr addr = 0;        ///< block-aligned address
    NodeId sender = 0;    ///< controller sending this message
    NodeId requestor = 0; ///< original requestor of the transaction
    /** For Data/DataCtrl: invalidation acks the requestor must await. */
    int ack_count = 0;

    std::string toString() const;
};

/** Checkpoint helpers for in-flight protocol messages. */
void saveMsg(ArchiveWriter &aw, const CoherenceMsg &msg);
CoherenceMsg restoreMsg(ArchiveReader &ar);

} // namespace mem
} // namespace rasim

#endif // RASIM_MEM_MSG_HH
