#include "mem/replacement.hh"

#include "sim/logging.hh"

namespace rasim
{
namespace mem
{

ReplacementPolicy::ReplacementPolicy(int num_sets, int num_ways)
    : num_sets_(num_sets), num_ways_(num_ways)
{
    if (num_sets < 1 || num_ways < 1)
        panic("replacement policy needs positive geometry");
}

LruPolicy::LruPolicy(int num_sets, int num_ways)
    : ReplacementPolicy(num_sets, num_ways),
      last_use_(static_cast<std::size_t>(num_sets) * num_ways, 0),
      seq_(static_cast<std::size_t>(num_sets) * num_ways, 0)
{
}

void
LruPolicy::touch(int set, int way, Tick now)
{
    auto idx = static_cast<std::size_t>(set) * num_ways_ + way;
    last_use_[idx] = now;
    seq_[idx] = next_seq_++;
}

int
LruPolicy::victim(int set, const std::vector<int> &candidates)
{
    if (candidates.empty())
        panic("lru: no eviction candidates");
    int best = candidates[0];
    for (int way : candidates) {
        auto i = static_cast<std::size_t>(set) * num_ways_ + way;
        auto b = static_cast<std::size_t>(set) * num_ways_ + best;
        if (last_use_[i] < last_use_[b] ||
            (last_use_[i] == last_use_[b] && seq_[i] < seq_[b])) {
            best = way;
        }
    }
    return best;
}

void
LruPolicy::save(ArchiveWriter &aw) const
{
    aw.beginSection("lru");
    aw.putU64(next_seq_);
    aw.putU64(last_use_.size());
    for (Tick t : last_use_)
        aw.putU64(t);
    for (std::uint64_t s : seq_)
        aw.putU64(s);
    aw.endSection();
}

void
LruPolicy::restore(ArchiveReader &ar)
{
    ar.expectSection("lru");
    next_seq_ = ar.getU64();
    std::uint64_t n = ar.getU64();
    if (n != last_use_.size())
        panic("lru restore: geometry mismatch (", n, " vs ",
              last_use_.size(), " ways)");
    for (Tick &t : last_use_)
        t = ar.getU64();
    for (std::uint64_t &s : seq_)
        s = ar.getU64();
    ar.endSection();
}

FifoPolicy::FifoPolicy(int num_sets, int num_ways)
    : ReplacementPolicy(num_sets, num_ways),
      fill_seq_(static_cast<std::size_t>(num_sets) * num_ways, 0)
{
}

void
FifoPolicy::touch(int set, int way, Tick now)
{
    (void)now;
    auto idx = static_cast<std::size_t>(set) * num_ways_ + way;
    // A touch of a way never filled yet counts as the fill (the cache
    // calls touch() on fill as well); later touches don't move it.
    if (fill_seq_[idx] == 0)
        fill_seq_[idx] = next_seq_++;
}

void
FifoPolicy::filled(int set, int way)
{
    fill_seq_[static_cast<std::size_t>(set) * num_ways_ + way] =
        next_seq_++;
}

int
FifoPolicy::victim(int set, const std::vector<int> &candidates)
{
    if (candidates.empty())
        panic("fifo: no eviction candidates");
    int best = candidates[0];
    for (int way : candidates) {
        auto i = static_cast<std::size_t>(set) * num_ways_ + way;
        auto b = static_cast<std::size_t>(set) * num_ways_ + best;
        if (fill_seq_[i] < fill_seq_[b])
            best = way;
    }
    // Reset so the way re-enters FIFO order on its next fill.
    fill_seq_[static_cast<std::size_t>(set) * num_ways_ + best] = 0;
    return best;
}

void
FifoPolicy::save(ArchiveWriter &aw) const
{
    aw.beginSection("fifo");
    aw.putU64(next_seq_);
    aw.putU64(fill_seq_.size());
    for (std::uint64_t s : fill_seq_)
        aw.putU64(s);
    aw.endSection();
}

void
FifoPolicy::restore(ArchiveReader &ar)
{
    ar.expectSection("fifo");
    next_seq_ = ar.getU64();
    std::uint64_t n = ar.getU64();
    if (n != fill_seq_.size())
        panic("fifo restore: geometry mismatch (", n, " vs ",
              fill_seq_.size(), " ways)");
    for (std::uint64_t &s : fill_seq_)
        s = ar.getU64();
    ar.endSection();
}

RandomPolicy::RandomPolicy(int num_sets, int num_ways, Rng rng)
    : ReplacementPolicy(num_sets, num_ways), rng_(rng)
{
}

void
RandomPolicy::touch(int set, int way, Tick now)
{
    (void)set;
    (void)way;
    (void)now;
}

int
RandomPolicy::victim(int set, const std::vector<int> &candidates)
{
    (void)set;
    if (candidates.empty())
        panic("random: no eviction candidates");
    return candidates[rng_.range(
        static_cast<std::uint32_t>(candidates.size()))];
}

void
RandomPolicy::save(ArchiveWriter &aw) const
{
    aw.beginSection("random");
    const Rng::State rs = rng_.state();
    aw.putU64(rs.state);
    aw.putU64(rs.inc);
    aw.endSection();
}

void
RandomPolicy::restore(ArchiveReader &ar)
{
    ar.expectSection("random");
    Rng::State rs;
    rs.state = ar.getU64();
    rs.inc = ar.getU64();
    rng_.setState(rs);
    ar.endSection();
}

std::unique_ptr<ReplacementPolicy>
makeReplacement(const std::string &kind, int num_sets, int num_ways,
                Rng rng)
{
    if (kind == "lru")
        return std::make_unique<LruPolicy>(num_sets, num_ways);
    if (kind == "fifo")
        return std::make_unique<FifoPolicy>(num_sets, num_ways);
    if (kind == "random")
        return std::make_unique<RandomPolicy>(num_sets, num_ways, rng);
    fatal("unknown replacement policy '", kind,
          "' (want lru, fifo or random)");
}

} // namespace mem
} // namespace rasim
