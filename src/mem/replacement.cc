#include "mem/replacement.hh"

#include "sim/logging.hh"

namespace rasim
{
namespace mem
{

ReplacementPolicy::ReplacementPolicy(int num_sets, int num_ways)
    : num_sets_(num_sets), num_ways_(num_ways)
{
    if (num_sets < 1 || num_ways < 1)
        panic("replacement policy needs positive geometry");
}

LruPolicy::LruPolicy(int num_sets, int num_ways)
    : ReplacementPolicy(num_sets, num_ways),
      last_use_(static_cast<std::size_t>(num_sets) * num_ways, 0),
      seq_(static_cast<std::size_t>(num_sets) * num_ways, 0)
{
}

void
LruPolicy::touch(int set, int way, Tick now)
{
    auto idx = static_cast<std::size_t>(set) * num_ways_ + way;
    last_use_[idx] = now;
    seq_[idx] = next_seq_++;
}

int
LruPolicy::victim(int set, const std::vector<int> &candidates)
{
    if (candidates.empty())
        panic("lru: no eviction candidates");
    int best = candidates[0];
    for (int way : candidates) {
        auto i = static_cast<std::size_t>(set) * num_ways_ + way;
        auto b = static_cast<std::size_t>(set) * num_ways_ + best;
        if (last_use_[i] < last_use_[b] ||
            (last_use_[i] == last_use_[b] && seq_[i] < seq_[b])) {
            best = way;
        }
    }
    return best;
}

FifoPolicy::FifoPolicy(int num_sets, int num_ways)
    : ReplacementPolicy(num_sets, num_ways),
      fill_seq_(static_cast<std::size_t>(num_sets) * num_ways, 0)
{
}

void
FifoPolicy::touch(int set, int way, Tick now)
{
    (void)now;
    auto idx = static_cast<std::size_t>(set) * num_ways_ + way;
    // A touch of a way never filled yet counts as the fill (the cache
    // calls touch() on fill as well); later touches don't move it.
    if (fill_seq_[idx] == 0)
        fill_seq_[idx] = next_seq_++;
}

void
FifoPolicy::filled(int set, int way)
{
    fill_seq_[static_cast<std::size_t>(set) * num_ways_ + way] =
        next_seq_++;
}

int
FifoPolicy::victim(int set, const std::vector<int> &candidates)
{
    if (candidates.empty())
        panic("fifo: no eviction candidates");
    int best = candidates[0];
    for (int way : candidates) {
        auto i = static_cast<std::size_t>(set) * num_ways_ + way;
        auto b = static_cast<std::size_t>(set) * num_ways_ + best;
        if (fill_seq_[i] < fill_seq_[b])
            best = way;
    }
    // Reset so the way re-enters FIFO order on its next fill.
    fill_seq_[static_cast<std::size_t>(set) * num_ways_ + best] = 0;
    return best;
}

RandomPolicy::RandomPolicy(int num_sets, int num_ways, Rng rng)
    : ReplacementPolicy(num_sets, num_ways), rng_(rng)
{
}

void
RandomPolicy::touch(int set, int way, Tick now)
{
    (void)set;
    (void)way;
    (void)now;
}

int
RandomPolicy::victim(int set, const std::vector<int> &candidates)
{
    (void)set;
    if (candidates.empty())
        panic("random: no eviction candidates");
    return candidates[rng_.range(
        static_cast<std::uint32_t>(candidates.size()))];
}

std::unique_ptr<ReplacementPolicy>
makeReplacement(const std::string &kind, int num_sets, int num_ways,
                Rng rng)
{
    if (kind == "lru")
        return std::make_unique<LruPolicy>(num_sets, num_ways);
    if (kind == "fifo")
        return std::make_unique<FifoPolicy>(num_sets, num_ways);
    if (kind == "random")
        return std::make_unique<RandomPolicy>(num_sets, num_ways, rng);
    fatal("unknown replacement policy '", kind,
          "' (want lru, fifo or random)");
}

} // namespace mem
} // namespace rasim
