/**
 * @file
 * Directory (home-node) controller: one slice per node, serialising
 * coherence transactions per block. Data misses at the home go through
 * the local DRAM bank model; a per-entry "cached" bit stands in for an
 * L2 data slice of unbounded capacity (documented simplification).
 */

#ifndef RASIM_MEM_DIRECTORY_HH
#define RASIM_MEM_DIRECTORY_HH

#include <algorithm>
#include <deque>
#include <vector>

#include "mem/dram.hh"
#include "mem/message_hub.hh"
#include "mem/msg.hh"
#include "mem/params.hh"
#include "sim/flat_map.hh"
#include "sim/serialize.hh"
#include "sim/sim_object.hh"
#include "stats/stat.hh"

namespace rasim
{
namespace mem
{

/**
 * Sharer set as a sorted vector: iteration is ascending (same order the
 * std::set it replaced produced) and clear() keeps the capacity, so the
 * steady-state protocol churn of insert/clear allocates nothing.
 */
class NodeSet
{
  public:
    void
    insert(NodeId node)
    {
        auto it = std::lower_bound(nodes_.begin(), nodes_.end(), node);
        if (it == nodes_.end() || *it != node)
            nodes_.insert(it, node);
    }

    std::size_t
    count(NodeId node) const
    {
        return std::binary_search(nodes_.begin(), nodes_.end(), node)
                   ? 1
                   : 0;
    }

    void clear() { nodes_.clear(); }
    std::size_t size() const { return nodes_.size(); }
    bool empty() const { return nodes_.empty(); }

    auto begin() const { return nodes_.begin(); }
    auto end() const { return nodes_.end(); }

  private:
    std::vector<NodeId> nodes_;
};

class Directory : public SimObject, public Serializable
{
  public:
    Directory(Simulation &sim, const std::string &name, NodeId node,
              const MemParams &params, MessageHub &hub,
              SimObject *parent = nullptr);

    /** Coherence message entry point (registered with the hub). */
    void handleMessage(const CoherenceMsg &msg);

    /** True when no transaction is mid-flight at this slice. */
    bool quiescent() const;

    NodeId node() const { return node_; }

    /** Introspection for tests: 'I'/'S'/'M', 'B' while busy. */
    char probeState(Addr addr) const;
    std::size_t probeSharerCount(Addr addr) const;

    void save(ArchiveWriter &aw) const override;
    void restore(ArchiveReader &ar) override;

    stats::Scalar getSReceived;
    stats::Scalar getMReceived;
    stats::Scalar putMReceived;
    stats::Scalar forwardsSent;
    stats::Scalar invalidationsSent;
    stats::Scalar queuedMessages;

  private:
    enum class DirState : std::uint8_t { I, S, M };

    struct Entry
    {
        DirState state = DirState::I;
        NodeSet sharers;
        NodeId owner = invalid_node;
        /** Data present in the L2 slice (no DRAM access needed). */
        bool cached = false;
        /** A forward-based transaction is in flight. */
        bool busy = false;
        /** Requestor of the in-flight forward transaction. */
        NodeId pending_requestor = invalid_node;
        std::deque<CoherenceMsg> queue;
    };

    void process(const CoherenceMsg &msg);
    void processGetS(const CoherenceMsg &msg, Entry &entry);
    void processGetM(const CoherenceMsg &msg, Entry &entry);
    void processPutM(const CoherenceMsg &msg, Entry &entry);
    void unblock(Addr addr, Entry &entry);

    /** Tick at which the block's data is available at this slice. */
    Tick dataReadyTick(const Entry &entry, Addr addr);

    void sendAt(Tick when, const CoherenceMsg &msg, NodeId dst);

    struct PendingSend
    {
        Tick when = 0;
        CoherenceMsg msg;
        NodeId dst = 0;
    };

    NodeId node_;
    const MemParams &params_;
    MessageHub &hub_;
    Dram dram_;
    /**
     * Per-block directory state. Open addressing: references into the
     * table are invalidated by insertion (rehash), so no Entry& may be
     * held across an entries_[] of a different address — unblock()'s
     * existing "no rehash while handling addr's own queue" invariant.
     */
    FlatMap<Addr, Entry> entries_;
    /** sendAt() events not yet fired, keyed by event sequence. */
    FlatMap<std::uint64_t, PendingSend> pending_sends_;
    std::uint64_t busy_count_ = 0;
};

} // namespace mem
} // namespace rasim

#endif // RASIM_MEM_DIRECTORY_HH
