/**
 * @file
 * Cache replacement policies over abstract way indices.
 */

#ifndef RASIM_MEM_REPLACEMENT_HH
#define RASIM_MEM_REPLACEMENT_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/rng.hh"
#include "sim/serialize.hh"
#include "sim/types.hh"

namespace rasim
{
namespace mem
{

/**
 * Replacement state for one cache: sets x ways. The cache reports
 * touches and asks for victims among the ways it marks evictable.
 */
class ReplacementPolicy
{
  public:
    ReplacementPolicy(int num_sets, int num_ways);
    virtual ~ReplacementPolicy() = default;

    /** Record a hit/fill touch of (set, way) at @p now. */
    virtual void touch(int set, int way, Tick now) = 0;

    /**
     * Pick the victim among @p candidates (way indices) in @p set.
     * @pre candidates is non-empty.
     */
    virtual int victim(int set, const std::vector<int> &candidates) = 0;

    virtual std::string name() const = 0;

    /** Checkpoint the policy's dynamic state (recency, fill order,
     *  RNG position — whatever the concrete policy keeps). */
    virtual void save(ArchiveWriter &aw) const = 0;
    virtual void restore(ArchiveReader &ar) = 0;

  protected:
    int num_sets_;
    int num_ways_;
};

/** Evict the least recently touched way. */
class LruPolicy : public ReplacementPolicy
{
  public:
    LruPolicy(int num_sets, int num_ways);
    void touch(int set, int way, Tick now) override;
    int victim(int set, const std::vector<int> &candidates) override;
    std::string name() const override { return "lru"; }
    void save(ArchiveWriter &aw) const override;
    void restore(ArchiveReader &ar) override;

  private:
    std::vector<Tick> last_use_;
    std::vector<std::uint64_t> seq_; ///< tie-break on equal ticks
    std::uint64_t next_seq_ = 1;
};

/** Evict the way filled longest ago (touches on hit ignored). */
class FifoPolicy : public ReplacementPolicy
{
  public:
    FifoPolicy(int num_sets, int num_ways);
    void touch(int set, int way, Tick now) override;
    int victim(int set, const std::vector<int> &candidates) override;
    std::string name() const override { return "fifo"; }

    /** The cache calls this on fill (not on hit). */
    void filled(int set, int way);

    void save(ArchiveWriter &aw) const override;
    void restore(ArchiveReader &ar) override;

  private:
    std::vector<std::uint64_t> fill_seq_;
    std::uint64_t next_seq_ = 1;
};

/** Evict a uniformly random candidate (deterministic seeded stream). */
class RandomPolicy : public ReplacementPolicy
{
  public:
    RandomPolicy(int num_sets, int num_ways, Rng rng);
    void touch(int set, int way, Tick now) override;
    int victim(int set, const std::vector<int> &candidates) override;
    std::string name() const override { return "random"; }
    void save(ArchiveWriter &aw) const override;
    void restore(ArchiveReader &ar) override;

  private:
    Rng rng_;
};

/** Factory: "lru", "fifo" or "random". */
std::unique_ptr<ReplacementPolicy> makeReplacement(const std::string &kind,
                                                   int num_sets,
                                                   int num_ways, Rng rng);

} // namespace mem
} // namespace rasim

#endif // RASIM_MEM_REPLACEMENT_HH
