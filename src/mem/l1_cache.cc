#include "mem/l1_cache.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace rasim
{
namespace mem
{

L1Cache::L1Cache(Simulation &sim, const std::string &name, NodeId node,
                 const MemParams &params, MessageHub &hub,
                 HomeOf home_of, SimObject *parent)
    : SimObject(sim, name, parent),
      loadHits(this, "load_hits", "loads hitting in the L1"),
      loadMisses(this, "load_misses", "loads missing in the L1"),
      storeHits(this, "store_hits", "stores hitting in M state"),
      storeMisses(this, "store_misses", "stores missing in the L1"),
      upgrades(this, "upgrades", "S-to-M upgrade transactions"),
      writebacks(this, "writebacks", "dirty blocks written back"),
      invsReceived(this, "invs_received", "invalidations received"),
      fwdsReceived(this, "fwds_received", "forwards received"),
      retriesSignalled(this, "retries", "resource-full retries"),
      node_(node), params_(params), hub_(hub),
      home_of_(std::move(home_of))
{
    sets_.assign(params_.l1_sets,
                 std::vector<Line>(params_.l1_ways));
    repl_ = makeReplacement(params_.l1_replacement, params_.l1_sets,
                            params_.l1_ways,
                            sim.makeRng(0x11c0 + node));
}

int
L1Cache::setOf(Addr block) const
{
    return static_cast<int>(
        (block / static_cast<Addr>(params_.block_bytes)) %
        static_cast<Addr>(params_.l1_sets));
}

L1Cache::Line *
L1Cache::findLine(Addr block)
{
    for (Line &line : sets_[setOf(block)])
        if (line.state != State::I && line.block == block)
            return &line;
    return nullptr;
}

const L1Cache::Line *
L1Cache::findLine(Addr block) const
{
    for (const Line &line : sets_[setOf(block)])
        if (line.state != State::I && line.block == block)
            return &line;
    return nullptr;
}

L1Cache::Line *
L1Cache::allocateLine(Addr block)
{
    auto &set = sets_[setOf(block)];
    for (Line &line : set) {
        if (line.state == State::I) {
            line.block = block;
            return &line;
        }
    }
    // Evict a stable line. Transient lines cannot be victimised.
    std::vector<int> candidates;
    for (int w = 0; w < params_.l1_ways; ++w) {
        if (set[w].state == State::S || set[w].state == State::M)
            candidates.push_back(w);
    }
    if (candidates.empty())
        return nullptr;
    int way = repl_->victim(setOf(block), candidates);
    Line &victim = set[way];
    if (victim.state == State::M) {
        if (static_cast<int>(wb_buffer_.size()) >= params_.wb_buffer)
            return nullptr;
        // The dirty block moves to the write-back buffer and keeps
        // answering forwards from there until the home acknowledges.
        wb_buffer_.emplace(victim.block, true);
        ++writebacks;
        CoherenceMsg put;
        put.type = MsgType::PutM;
        put.addr = victim.block;
        put.sender = node_;
        put.requestor = node_;
        hub_.send(put, home_of_(victim.block));
    }
    // S eviction is silent (the home tolerates stale sharers).
    victim.state = State::I;
    victim.block = block;
    return &victim;
}

void
L1Cache::touchLine(Addr block, Line *line)
{
    int set = setOf(block);
    int way = static_cast<int>(line - sets_[set].data());
    repl_->touch(set, way, curTick());
}

void
L1Cache::sendToHome(MsgType type, Addr block)
{
    CoherenceMsg msg;
    msg.type = type;
    msg.addr = block;
    msg.sender = node_;
    msg.requestor = node_;
    hub_.send(msg, home_of_(block));
}

bool
L1Cache::access(Addr addr, bool is_write, Callback cb)
{
    return accessInternal(addr, is_write, std::move(cb), true);
}

void
L1Cache::scheduleCompletion(Tick done, bool is_write, Callback cb)
{
    // Key the bookkeeping entry by the sequence the event is about to
    // receive; the wrapper retires the entry before running the core's
    // callback so the map mirrors the queue exactly.
    std::uint64_t seq = sim().eventq().nextSequence();
    pending_completions_.emplace(seq, std::make_pair(done, is_write));
    sim().eventq().scheduleLambda(
        done, [this, seq, cb = std::move(cb)] {
            pending_completions_.erase(seq);
            cb();
        });
}

bool
L1Cache::accessInternal(Addr addr, bool is_write, Callback cb,
                        bool count_stats)
{
    Addr block = params_.blockAlign(addr);

    // Coalesce into an outstanding transaction on the same block.
    if (Mshr *m = mshrs_.find(block)) {
        m->waiters.emplace_back(is_write, std::move(cb));
        return true;
    }
    // A block sitting in the write-back buffer must complete the
    // eviction before it can be re-requested.
    if (wb_buffer_.contains(block)) {
        want_retry_ = true;
        ++retriesSignalled;
        return false;
    }

    Line *line = findLine(block);
    Tick done = curTick() + params_.l1_latency;

    if (line && line->state == State::M) {
        if (count_stats)
            (is_write ? storeHits : loadHits) += 1;
        touchLine(block, line);
        scheduleCompletion(done, is_write, std::move(cb));
        return true;
    }
    if (line && line->state == State::S && !is_write) {
        if (count_stats)
            ++loadHits;
        touchLine(block, line);
        scheduleCompletion(done, false, std::move(cb));
        return true;
    }

    if (static_cast<int>(mshrs_.size()) >= params_.mshrs) {
        want_retry_ = true;
        ++retriesSignalled;
        return false;
    }

    if (line && line->state == State::S && is_write) {
        // Upgrade in place.
        ++upgrades;
        if (count_stats)
            ++storeMisses;
        line->state = State::SM_D;
        Mshr &m = mshrs_[block];
        m.is_write = true;
        m.waiters.emplace_back(true, std::move(cb));
        sendToHome(MsgType::GetM, block);
        return true;
    }

    if (line)
        panic("l1", node_, ": access raced a transient line");

    line = allocateLine(block);
    if (!line) {
        want_retry_ = true;
        ++retriesSignalled;
        return false;
    }
    if (count_stats)
        (is_write ? storeMisses : loadMisses) += 1;
    line->state = is_write ? State::IM_D : State::IS_D;
    Mshr &m = mshrs_[block];
    m.is_write = is_write;
    m.waiters.emplace_back(is_write, std::move(cb));
    sendToHome(is_write ? MsgType::GetM : MsgType::GetS, block);
    return true;
}

void
L1Cache::handleMessage(const CoherenceMsg &msg)
{
    switch (msg.type) {
      case MsgType::Data:
      case MsgType::DataCtrl:
        handleData(msg);
        break;
      case MsgType::InvAck:
        handleInvAck(msg);
        break;
      case MsgType::Inv:
        handleInv(msg);
        break;
      case MsgType::FwdGetS:
      case MsgType::FwdGetM:
        handleFwd(msg);
        break;
      case MsgType::WBAck:
        handleWBAck(msg);
        break;
      default:
        panic("l1", node_, ": unexpected message ", msg.toString());
    }
}

void
L1Cache::handleData(const CoherenceMsg &msg)
{
    Mshr *mp = mshrs_.find(msg.addr);
    if (!mp)
        panic("l1", node_, ": data without transaction: ",
              msg.toString());
    Mshr &m = *mp;
    Line *line = findLine(msg.addr);
    if (!line)
        panic("l1", node_, ": data for unallocated line");

    m.data_received = true;
    m.pending_acks += msg.ack_count;

    if (line->state == State::IS_D) {
        line->state = m.was_invalidated ? State::I : State::S;
        touchLine(msg.addr, line);
        finishMshr(msg.addr);
        return;
    }
    if (line->state != State::IM_D && line->state != State::SM_D)
        panic("l1", node_, ": data in unexpected state");
    if (m.pending_acks == 0) {
        line->state = State::M;
        touchLine(msg.addr, line);
        finishMshr(msg.addr);
    }
}

void
L1Cache::handleInvAck(const CoherenceMsg &msg)
{
    Mshr *mp = mshrs_.find(msg.addr);
    if (!mp)
        panic("l1", node_, ": stray InvAck ", msg.toString());
    Mshr &m = *mp;
    --m.pending_acks;
    if (m.data_received && m.pending_acks == 0) {
        Line *line = findLine(msg.addr);
        if (!line || (line->state != State::IM_D &&
                      line->state != State::SM_D))
            panic("l1", node_, ": InvAck completion in bad state");
        line->state = State::M;
        finishMshr(msg.addr);
    }
}

void
L1Cache::handleInv(const CoherenceMsg &msg)
{
    ++invsReceived;
    // Always acknowledge towards the requestor waiting for us.
    CoherenceMsg ack;
    ack.type = MsgType::InvAck;
    ack.addr = msg.addr;
    ack.sender = node_;
    ack.requestor = msg.requestor;
    hub_.send(ack, msg.requestor);

    Line *line = findLine(msg.addr);
    if (!line)
        return; // silently evicted or long-stale epoch
    switch (line->state) {
      case State::S:
        line->state = State::I;
        break;
      case State::SM_D: {
        Mshr &m = mshrs_.at(msg.addr);
        if (!m.data_received) {
            // Real: our upgrade lost the race; the home will answer
            // with full data.
            line->state = State::IM_D;
        }
        // Data already received: we are the legitimate M-elect and the
        // Inv is from a stale epoch. Nothing further.
        break;
      }
      case State::IS_D: {
        // Reordered past our data: consume-once semantics.
        mshrs_.at(msg.addr).was_invalidated = true;
        break;
      }
      case State::M:
      case State::IM_D:
      case State::MI_A:
        break; // stale epochs; ack was enough
      case State::I:
        panic("l1", node_, ": I line in lookup");
    }
}

void
L1Cache::handleFwd(const CoherenceMsg &msg)
{
    ++fwdsReceived;
    Line *line = findLine(msg.addr);
    bool evicting = wb_buffer_.contains(msg.addr);

    if (!line && !evicting)
        panic("l1", node_, ": forward to non-owner: ", msg.toString());

    if (line && (line->state == State::IM_D ||
                 line->state == State::SM_D)) {
        // Owner-elect without data yet: stall the forward.
        deferred_[msg.addr].push_back(msg);
        return;
    }
    if (line && line->state != State::M)
        panic("l1", node_, ": forward in state without ownership");

    // Data to the requestor (cache-to-cache).
    CoherenceMsg data;
    data.type = MsgType::Data;
    data.addr = msg.addr;
    data.sender = node_;
    data.requestor = msg.requestor;
    data.ack_count = 0;
    hub_.send(data, msg.requestor);

    if (msg.type == MsgType::FwdGetS) {
        // Downgrade: the home also needs the dirty data.
        CoherenceMsg wb;
        wb.type = MsgType::WBData;
        wb.addr = msg.addr;
        wb.sender = node_;
        wb.requestor = msg.requestor;
        hub_.send(wb, home_of_(msg.addr));
        if (line)
            line->state = State::S;
        // Write-back-buffer copies stay put until the (stale) PutM is
        // acknowledged.
    } else {
        CoherenceMsg chown;
        chown.type = MsgType::ChownAck;
        chown.addr = msg.addr;
        chown.sender = node_;
        chown.requestor = msg.requestor;
        hub_.send(chown, home_of_(msg.addr));
        if (line)
            line->state = State::I;
    }
}

void
L1Cache::handleWBAck(const CoherenceMsg &msg)
{
    if (!wb_buffer_.erase(msg.addr))
        panic("l1", node_, ": WBAck without write-back: ",
              msg.toString());
    signalRetry();
}

void
L1Cache::finishMshr(Addr block)
{
    auto waiters = std::move(mshrs_.at(block).waiters);
    mshrs_.erase(block);

    // Stalled forwards act on the freshly stable line first (protocol
    // order), then the waiting core operations re-issue.
    processDeferred(block);

    for (auto &[is_write, cb] : waiters) {
        // Re-run: hits complete, mismatches (e.g. a store waiting on a
        // line that just got forwarded away) start a new transaction.
        if (!accessInternal(block, is_write, std::move(cb), false))
            panic("l1", node_, ": waiter re-issue must not fail");
    }
    signalRetry();
}

void
L1Cache::processDeferred(Addr block)
{
    std::deque<CoherenceMsg> *dp = deferred_.find(block);
    if (!dp)
        return;
    std::deque<CoherenceMsg> msgs = std::move(*dp);
    deferred_.erase(block);
    for (const CoherenceMsg &msg : msgs)
        handleFwd(msg);
}

void
L1Cache::signalRetry()
{
    if (want_retry_ && retry_cb_) {
        want_retry_ = false;
        retry_cb_();
    }
}

bool
L1Cache::quiescent() const
{
    return mshrs_.empty() && wb_buffer_.empty() && deferred_.empty();
}

void
L1Cache::save(ArchiveWriter &aw) const
{
    aw.beginSection("l1");

    for (const auto &set : sets_) {
        for (const Line &line : set) {
            aw.putU64(line.block);
            aw.putU8(static_cast<std::uint8_t>(line.state));
        }
    }
    repl_->save(aw);

    // FlatMap iterates in ascending key order, so the archive (and
    // therefore the CRC) is reproducible without the sort-before-save
    // loops the unordered maps needed.
    aw.putU64(mshrs_.size());
    for (const auto &[addr, m] : mshrs_) {
        aw.putU64(addr);
        aw.putBool(m.is_write);
        aw.putBool(m.data_received);
        aw.putBool(m.was_invalidated);
        aw.putI64(m.pending_acks);
        aw.putU64(m.waiters.size());
        for (const auto &[is_write, cb] : m.waiters)
            aw.putBool(is_write);
    }

    aw.putU64(wb_buffer_.size());
    for (const auto &[addr, dirty] : wb_buffer_) {
        aw.putU64(addr);
        aw.putBool(dirty);
    }

    aw.putU64(deferred_.size());
    for (const auto &[addr, msgs] : deferred_) {
        aw.putU64(addr);
        aw.putU64(msgs.size());
        for (const CoherenceMsg &msg : msgs)
            saveMsg(aw, msg);
    }

    aw.putU64(pending_completions_.size());
    for (const auto &[seq, entry] : pending_completions_) {
        aw.putU64(seq);
        aw.putU64(entry.first);
        aw.putBool(entry.second);
    }

    aw.putBool(want_retry_);
    aw.endSection();
}

void
L1Cache::restore(ArchiveReader &ar)
{
    ar.expectSection("l1");

    for (auto &set : sets_) {
        for (Line &line : set) {
            line.block = ar.getU64();
            line.state = static_cast<State>(ar.getU8());
        }
    }
    repl_->restore(ar);

    if (!completion_factory_)
        panic("l1", node_,
              ": restore without a completion factory installed");

    mshrs_.clear();
    std::uint64_t n_mshrs = ar.getU64();
    for (std::uint64_t i = 0; i < n_mshrs; ++i) {
        Addr addr = ar.getU64();
        Mshr &m = mshrs_[addr];
        m.is_write = ar.getBool();
        m.data_received = ar.getBool();
        m.was_invalidated = ar.getBool();
        m.pending_acks = static_cast<int>(ar.getI64());
        std::uint64_t n_waiters = ar.getU64();
        for (std::uint64_t w = 0; w < n_waiters; ++w) {
            bool is_write = ar.getBool();
            m.waiters.emplace_back(is_write,
                                   completion_factory_(is_write));
        }
    }

    wb_buffer_.clear();
    std::uint64_t n_wb = ar.getU64();
    for (std::uint64_t i = 0; i < n_wb; ++i) {
        Addr addr = ar.getU64();
        wb_buffer_[addr] = ar.getBool();
    }

    deferred_.clear();
    std::uint64_t n_def = ar.getU64();
    for (std::uint64_t i = 0; i < n_def; ++i) {
        Addr addr = ar.getU64();
        std::uint64_t n_msgs = ar.getU64();
        auto &msgs = deferred_[addr];
        for (std::uint64_t k = 0; k < n_msgs; ++k)
            msgs.push_back(restoreMsg(ar));
    }

    pending_completions_.clear();
    std::uint64_t n_pc = ar.getU64();
    for (std::uint64_t i = 0; i < n_pc; ++i) {
        std::uint64_t seq = ar.getU64();
        Tick when = ar.getU64();
        bool is_write = ar.getBool();
        pending_completions_.emplace(seq,
                                     std::make_pair(when, is_write));
        Callback cb = completion_factory_(is_write);
        sim().eventq().scheduleLambdaWithSequence(
            when,
            [this, seq, cb = std::move(cb)] {
                pending_completions_.erase(seq);
                cb();
            },
            Event::default_pri, seq);
    }

    want_retry_ = ar.getBool();
    ar.endSection();
}

char
L1Cache::probeState(Addr addr) const
{
    const Line *line = findLine(params_.blockAlign(addr));
    if (!line)
        return 'I';
    switch (line->state) {
      case State::S:
        return 'S';
      case State::M:
        return 'M';
      default:
        return 'T';
    }
}

} // namespace mem
} // namespace rasim
