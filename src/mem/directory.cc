#include "mem/directory.hh"

#include <algorithm>
#include <vector>

#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace rasim
{
namespace mem
{

Directory::Directory(Simulation &sim, const std::string &name,
                     NodeId node, const MemParams &params,
                     MessageHub &hub, SimObject *parent)
    : SimObject(sim, name, parent),
      getSReceived(this, "gets_received", "GetS requests received"),
      getMReceived(this, "getm_received", "GetM requests received"),
      putMReceived(this, "putm_received", "PutM requests received"),
      forwardsSent(this, "forwards_sent", "Fwd* messages issued"),
      invalidationsSent(this, "invalidations_sent", "Inv messages"),
      queuedMessages(this, "queued_messages",
                     "requests queued behind a busy block"),
      node_(node), params_(params), hub_(hub),
      dram_(this, "dram", params.dram_banks, params.dram_latency,
            params.block_bytes)
{
}

void
Directory::sendAt(Tick when, const CoherenceMsg &msg, NodeId dst)
{
    Tick at = std::max(when, curTick());
    std::uint64_t seq = sim().eventq().nextSequence();
    pending_sends_.emplace(seq, PendingSend{at, msg, dst});
    sim().eventq().scheduleLambda(at, [this, seq, msg, dst] {
        pending_sends_.erase(seq);
        hub_.send(msg, dst);
    });
}

Tick
Directory::dataReadyTick(const Entry &entry, Addr addr)
{
    Tick start = curTick() + params_.dir_latency;
    if (entry.cached)
        return start;
    return dram_.access(addr, start);
}

void
Directory::handleMessage(const CoherenceMsg &msg)
{
    switch (msg.type) {
      case MsgType::GetS:
      case MsgType::GetM:
      case MsgType::PutM: {
        Entry &entry = entries_[msg.addr];
        if (entry.busy) {
            entry.queue.push_back(msg);
            ++queuedMessages;
            return;
        }
        process(msg);
        return;
      }
      case MsgType::WBData: {
        // Owner downgraded on our FwdGetS: transaction completes.
        Entry &entry = entries_[msg.addr];
        if (!entry.busy || entry.state != DirState::M)
            panic("dir", node_, ": WBData without transaction: ",
                  msg.toString());
        entry.state = DirState::S;
        entry.sharers.insert(msg.sender);
        entry.sharers.insert(entry.pending_requestor);
        entry.owner = invalid_node;
        entry.cached = true;
        unblock(msg.addr, entry);
        return;
      }
      case MsgType::ChownAck: {
        // Ownership handed over on our FwdGetM.
        Entry &entry = entries_[msg.addr];
        if (!entry.busy || entry.state != DirState::M)
            panic("dir", node_, ": ChownAck without transaction: ",
                  msg.toString());
        entry.owner = entry.pending_requestor;
        entry.cached = false;
        unblock(msg.addr, entry);
        return;
      }
      default:
        panic("dir", node_, ": unexpected message ", msg.toString());
    }
}

void
Directory::process(const CoherenceMsg &msg)
{
    Entry &entry = entries_[msg.addr];
    switch (msg.type) {
      case MsgType::GetS:
        ++getSReceived;
        processGetS(msg, entry);
        break;
      case MsgType::GetM:
        ++getMReceived;
        processGetM(msg, entry);
        break;
      case MsgType::PutM:
        ++putMReceived;
        processPutM(msg, entry);
        break;
      default:
        panic("dir", node_, ": bad queued message ", msg.toString());
    }
}

void
Directory::processGetS(const CoherenceMsg &msg, Entry &entry)
{
    switch (entry.state) {
      case DirState::I:
      case DirState::S: {
        Tick ready = dataReadyTick(entry, msg.addr);
        entry.cached = true;
        entry.state = DirState::S;
        entry.sharers.insert(msg.requestor);
        CoherenceMsg data;
        data.type = MsgType::Data;
        data.addr = msg.addr;
        data.sender = node_;
        data.requestor = msg.requestor;
        data.ack_count = 0;
        sendAt(ready, data, msg.requestor);
        return;
      }
      case DirState::M: {
        if (entry.owner == msg.requestor)
            panic("dir", node_, ": owner re-requesting GetS");
        entry.busy = true;
        ++busy_count_;
        entry.pending_requestor = msg.requestor;
        CoherenceMsg fwd;
        fwd.type = MsgType::FwdGetS;
        fwd.addr = msg.addr;
        fwd.sender = node_;
        fwd.requestor = msg.requestor;
        ++forwardsSent;
        sendAt(curTick() + params_.dir_latency, fwd, entry.owner);
        return;
      }
    }
}

void
Directory::processGetM(const CoherenceMsg &msg, Entry &entry)
{
    switch (entry.state) {
      case DirState::I:
      case DirState::S: {
        // Invalidate other sharers; the requestor collects the acks.
        int acks = 0;
        bool req_was_sharer = entry.sharers.count(msg.requestor) > 0;
        for (NodeId sharer : entry.sharers) {
            if (sharer == msg.requestor)
                continue;
            CoherenceMsg inv;
            inv.type = MsgType::Inv;
            inv.addr = msg.addr;
            inv.sender = node_;
            inv.requestor = msg.requestor;
            ++invalidationsSent;
            sendAt(curTick() + params_.dir_latency, inv, sharer);
            ++acks;
        }
        CoherenceMsg resp;
        resp.addr = msg.addr;
        resp.sender = node_;
        resp.requestor = msg.requestor;
        resp.ack_count = acks;
        if (req_was_sharer) {
            // Upgrade: the requestor already holds the data.
            resp.type = MsgType::DataCtrl;
            sendAt(curTick() + params_.dir_latency, resp,
                   msg.requestor);
        } else {
            resp.type = MsgType::Data;
            sendAt(dataReadyTick(entry, msg.addr), resp, msg.requestor);
        }
        entry.state = DirState::M;
        entry.owner = msg.requestor;
        entry.sharers.clear();
        entry.cached = false;
        return;
      }
      case DirState::M: {
        if (entry.owner == msg.requestor)
            panic("dir", node_, ": owner re-requesting GetM");
        entry.busy = true;
        ++busy_count_;
        entry.pending_requestor = msg.requestor;
        CoherenceMsg fwd;
        fwd.type = MsgType::FwdGetM;
        fwd.addr = msg.addr;
        fwd.sender = node_;
        fwd.requestor = msg.requestor;
        ++forwardsSent;
        sendAt(curTick() + params_.dir_latency, fwd, entry.owner);
        return;
      }
    }
}

void
Directory::processPutM(const CoherenceMsg &msg, Entry &entry)
{
    CoherenceMsg ack;
    ack.type = MsgType::WBAck;
    ack.addr = msg.addr;
    ack.sender = node_;
    ack.requestor = msg.sender;

    if (entry.state == DirState::M && entry.owner == msg.sender) {
        entry.state = DirState::I;
        entry.owner = invalid_node;
        entry.cached = true; // written-back data lives in the slice
        entry.sharers.clear();
    }
    // Otherwise the write-back is stale (a forward overtook the
    // eviction); only the acknowledgement matters.
    sendAt(curTick() + params_.dir_latency, ack, msg.sender);
}

void
Directory::unblock(Addr addr, Entry &entry)
{
    entry.busy = false;
    entry.pending_requestor = invalid_node;
    --busy_count_;
    while (!entry.queue.empty() && !entry.busy) {
        CoherenceMsg next = entry.queue.front();
        entry.queue.pop_front();
        process(next);
        // process() may have re-marked the entry busy; remaining
        // messages stay queued (entry reference remains valid: no
        // rehash can happen while handling addr's own queue).
        (void)addr;
    }
}

bool
Directory::quiescent() const
{
    return busy_count_ == 0;
}

char
Directory::probeState(Addr addr) const
{
    const Entry *entry = entries_.find(params_.blockAlign(addr));
    if (!entry)
        return 'I';
    if (entry->busy)
        return 'B';
    switch (entry->state) {
      case DirState::I:
        return 'I';
      case DirState::S:
        return 'S';
      case DirState::M:
        return 'M';
    }
    return '?';
}

std::size_t
Directory::probeSharerCount(Addr addr) const
{
    const Entry *entry = entries_.find(params_.blockAlign(addr));
    return entry ? entry->sharers.size() : 0;
}

void
Directory::save(ArchiveWriter &aw) const
{
    aw.beginSection("dir");
    dram_.save(aw);
    aw.putU64(busy_count_);

    // FlatMap iterates in ascending address order — same bytes as the
    // sort-before-save loop this replaces.
    aw.putU64(entries_.size());
    for (const auto &[addr, entry] : entries_) {
        aw.putU64(addr);
        aw.putU8(static_cast<std::uint8_t>(entry.state));
        aw.putU64(entry.sharers.size());
        for (NodeId sharer : entry.sharers) // NodeSet: sorted
            aw.putU32(sharer);
        aw.putU32(entry.owner);
        aw.putBool(entry.cached);
        aw.putBool(entry.busy);
        aw.putU32(entry.pending_requestor);
        aw.putU64(entry.queue.size());
        for (const CoherenceMsg &msg : entry.queue)
            saveMsg(aw, msg);
    }

    aw.putU64(pending_sends_.size());
    for (const auto &[seq, ps] : pending_sends_) {
        aw.putU64(seq);
        aw.putU64(ps.when);
        saveMsg(aw, ps.msg);
        aw.putU32(ps.dst);
    }
    aw.endSection();
}

void
Directory::restore(ArchiveReader &ar)
{
    ar.expectSection("dir");
    dram_.restore(ar);
    busy_count_ = ar.getU64();

    entries_.clear();
    std::uint64_t n_entries = ar.getU64();
    for (std::uint64_t i = 0; i < n_entries; ++i) {
        Addr addr = ar.getU64();
        Entry &entry = entries_[addr];
        entry.state = static_cast<DirState>(ar.getU8());
        std::uint64_t n_sharers = ar.getU64();
        for (std::uint64_t s = 0; s < n_sharers; ++s)
            entry.sharers.insert(ar.getU32());
        entry.owner = ar.getU32();
        entry.cached = ar.getBool();
        entry.busy = ar.getBool();
        entry.pending_requestor = ar.getU32();
        std::uint64_t n_queued = ar.getU64();
        for (std::uint64_t q = 0; q < n_queued; ++q)
            entry.queue.push_back(restoreMsg(ar));
    }

    pending_sends_.clear();
    std::uint64_t n_sends = ar.getU64();
    for (std::uint64_t i = 0; i < n_sends; ++i) {
        std::uint64_t seq = ar.getU64();
        Tick when = ar.getU64();
        CoherenceMsg msg = restoreMsg(ar);
        NodeId dst = ar.getU32();
        pending_sends_.emplace(seq, PendingSend{when, msg, dst});
        sim().eventq().scheduleLambdaWithSequence(
            when,
            [this, seq, msg, dst] {
                pending_sends_.erase(seq);
                hub_.send(msg, dst);
            },
            Event::default_pri, seq);
    }
    ar.endSection();
}

} // namespace mem
} // namespace rasim
