/**
 * @file
 * Transport layer between coherence controllers and the network
 * abstraction. The hub turns CoherenceMsgs into Packets (sizes, message
 * classes), and dispatches delivered packets back to the destination
 * controller as simulation events — this is the "downward" half of
 * reciprocal abstraction: the network sees real protocol traffic, not
 * a synthetic pattern.
 */

#ifndef RASIM_MEM_MESSAGE_HUB_HH
#define RASIM_MEM_MESSAGE_HUB_HH

#include <functional>
#include <vector>

#include "mem/msg.hh"
#include "noc/network_model.hh"
#include "sim/flat_map.hh"
#include "sim/serialize.hh"
#include "sim/sim_object.hh"
#include "stats/stat.hh"

namespace rasim
{
namespace mem
{

class MessageHub : public SimObject, public Serializable
{
  public:
    using Handler = std::function<void(const CoherenceMsg &)>;

    /**
     * @param control_bytes Wire size of a control message.
     * @param data_bytes Wire size of a message carrying a block.
     */
    MessageHub(Simulation &sim, const std::string &name,
               noc::NetworkModel &net, std::uint32_t control_bytes = 8,
               std::uint32_t data_bytes = 72, SimObject *parent = nullptr);

    /** Register the message handler for node @p node. */
    void registerHandler(NodeId node, Handler handler);

    /**
     * Send @p msg to @p dst at the current tick. The message travels
     * on the vnet of its type with the configured wire size; the
     * destination handler runs when the network delivers it.
     */
    void send(const CoherenceMsg &msg, NodeId dst);

    /**
     * Invoked by the co-simulation driver for every packet the network
     * delivered; schedules the handler at the delivery tick (or now,
     * when the boundary already passed — quantum delivery slack).
     */
    void deliver(const noc::PacketPtr &pkt);

    /** Messages still somewhere between send() and handler. */
    std::uint64_t outstanding() const { return outstanding_; }

    void save(ArchiveWriter &aw) const override;
    void restore(ArchiveReader &ar) override;

    stats::Scalar messagesSent;
    stats::Scalar messagesDelivered;
    stats::Scalar bytesSent;

  private:
    /** Schedule a handler dispatch, tracked for checkpointing. */
    void scheduleDispatch(Tick when, const CoherenceMsg &msg,
                          NodeId dst);

    struct PendingDispatch
    {
        Tick when = 0;
        CoherenceMsg msg;
        NodeId dst = 0;
    };

    noc::NetworkModel &net_;
    std::uint32_t control_bytes_;
    std::uint32_t data_bytes_;
    std::vector<Handler> handlers_;
    FlatMap<PacketId, CoherenceMsg> in_transit_;
    /** Delivered messages whose handler event has not yet run, keyed
     *  by the event's insertion sequence. */
    FlatMap<std::uint64_t, PendingDispatch> pending_dispatches_;
    PacketId next_id_ = 1;
    std::uint64_t outstanding_ = 0;
};

} // namespace mem
} // namespace rasim

#endif // RASIM_MEM_MESSAGE_HUB_HH
