#include "mem/msg.hh"

#include <sstream>

#include "sim/logging.hh"

namespace rasim
{
namespace mem
{

noc::MsgClass
vnetOf(MsgType type)
{
    switch (type) {
      case MsgType::GetS:
      case MsgType::GetM:
      case MsgType::PutM:
        return noc::MsgClass::Request;
      case MsgType::FwdGetS:
      case MsgType::FwdGetM:
      case MsgType::Inv:
        return noc::MsgClass::Forward;
      case MsgType::Data:
      case MsgType::DataCtrl:
      case MsgType::InvAck:
      case MsgType::WBData:
      case MsgType::WBAck:
      case MsgType::ChownAck:
        return noc::MsgClass::Response;
    }
    panic("vnetOf: bad message type");
}

bool
carriesData(MsgType type)
{
    switch (type) {
      case MsgType::PutM:
      case MsgType::Data:
      case MsgType::WBData:
        return true;
      default:
        return false;
    }
}

const char *
toString(MsgType type)
{
    switch (type) {
      case MsgType::GetS:
        return "GetS";
      case MsgType::GetM:
        return "GetM";
      case MsgType::PutM:
        return "PutM";
      case MsgType::FwdGetS:
        return "FwdGetS";
      case MsgType::FwdGetM:
        return "FwdGetM";
      case MsgType::Inv:
        return "Inv";
      case MsgType::Data:
        return "Data";
      case MsgType::DataCtrl:
        return "DataCtrl";
      case MsgType::InvAck:
        return "InvAck";
      case MsgType::WBData:
        return "WBData";
      case MsgType::WBAck:
        return "WBAck";
      case MsgType::ChownAck:
        return "ChownAck";
    }
    return "Unknown";
}

std::string
CoherenceMsg::toString() const
{
    std::ostringstream os;
    os << mem::toString(type) << " addr=0x" << std::hex << addr
       << std::dec << " sender=" << sender << " req=" << requestor;
    if (ack_count)
        os << " acks=" << ack_count;
    return os.str();
}

void
saveMsg(ArchiveWriter &aw, const CoherenceMsg &msg)
{
    aw.putU8(static_cast<std::uint8_t>(msg.type));
    aw.putU64(msg.addr);
    aw.putU32(msg.sender);
    aw.putU32(msg.requestor);
    aw.putI64(msg.ack_count);
}

CoherenceMsg
restoreMsg(ArchiveReader &ar)
{
    CoherenceMsg msg;
    msg.type = static_cast<MsgType>(ar.getU8());
    msg.addr = ar.getU64();
    msg.sender = ar.getU32();
    msg.requestor = ar.getU32();
    msg.ack_count = static_cast<int>(ar.getI64());
    return msg;
}

} // namespace mem
} // namespace rasim
