#include "mem/message_hub.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace rasim
{
namespace mem
{

MessageHub::MessageHub(Simulation &sim, const std::string &name,
                       noc::NetworkModel &net,
                       std::uint32_t control_bytes,
                       std::uint32_t data_bytes, SimObject *parent)
    : SimObject(sim, name, parent),
      messagesSent(this, "messages_sent", "coherence messages sent"),
      messagesDelivered(this, "messages_delivered",
                        "coherence messages delivered"),
      bytesSent(this, "bytes_sent", "protocol bytes offered"),
      net_(net), control_bytes_(control_bytes), data_bytes_(data_bytes)
{
    handlers_.resize(net.numNodes());
}

void
MessageHub::registerHandler(NodeId node, Handler handler)
{
    if (node >= handlers_.size())
        panic("hub: handler for node ", node, " out of range");
    handlers_[node] = std::move(handler);
}

void
MessageHub::send(const CoherenceMsg &msg, NodeId dst)
{
    std::uint32_t bytes =
        carriesData(msg.type) ? data_bytes_ : control_bytes_;
    auto pkt = noc::makePacket(next_id_++, msg.sender, dst,
                               vnetOf(msg.type), bytes, curTick());
    in_transit_.emplace(pkt->id, msg);
    ++outstanding_;
    ++messagesSent;
    bytesSent += bytes;
    net_.inject(pkt);
}

void
MessageHub::deliver(const noc::PacketPtr &pkt)
{
    CoherenceMsg *found = in_transit_.find(pkt->id);
    if (!found)
        panic("hub: delivery of unknown packet ", pkt->toString());
    CoherenceMsg msg = *found;
    in_transit_.erase(pkt->id);

    NodeId dst = pkt->dst;
    if (!handlers_[dst])
        panic("hub: no handler registered at node ", dst);

    Tick when = std::max(pkt->deliver_tick, curTick());
    scheduleDispatch(when, msg, dst);
}

void
MessageHub::scheduleDispatch(Tick when, const CoherenceMsg &msg,
                             NodeId dst)
{
    std::uint64_t seq = sim().eventq().nextSequence();
    pending_dispatches_.emplace(seq, PendingDispatch{when, msg, dst});
    sim().eventq().scheduleLambda(when, [this, seq, msg, dst] {
        pending_dispatches_.erase(seq);
        --outstanding_;
        ++messagesDelivered;
        handlers_[dst](msg);
    });
}

void
MessageHub::save(ArchiveWriter &aw) const
{
    aw.beginSection("hub");
    aw.putU64(next_id_);
    aw.putU64(outstanding_);

    // FlatMap iterates in ascending id order — same bytes as the
    // sort-before-save loop this replaces.
    aw.putU64(in_transit_.size());
    for (const auto &[id, msg] : in_transit_) {
        aw.putU64(id);
        saveMsg(aw, msg);
    }

    aw.putU64(pending_dispatches_.size());
    for (const auto &[seq, pd] : pending_dispatches_) {
        aw.putU64(seq);
        aw.putU64(pd.when);
        saveMsg(aw, pd.msg);
        aw.putU32(pd.dst);
    }
    aw.endSection();
}

void
MessageHub::restore(ArchiveReader &ar)
{
    ar.expectSection("hub");
    next_id_ = ar.getU64();
    outstanding_ = ar.getU64();

    in_transit_.clear();
    std::uint64_t n_transit = ar.getU64();
    for (std::uint64_t i = 0; i < n_transit; ++i) {
        PacketId id = ar.getU64();
        in_transit_.emplace(id, restoreMsg(ar));
    }

    pending_dispatches_.clear();
    std::uint64_t n_disp = ar.getU64();
    for (std::uint64_t i = 0; i < n_disp; ++i) {
        std::uint64_t seq = ar.getU64();
        Tick when = ar.getU64();
        CoherenceMsg msg = restoreMsg(ar);
        NodeId dst = ar.getU32();
        pending_dispatches_.emplace(seq,
                                    PendingDispatch{when, msg, dst});
        sim().eventq().scheduleLambdaWithSequence(
            when,
            [this, seq, msg, dst] {
                pending_dispatches_.erase(seq);
                --outstanding_;
                ++messagesDelivered;
                handlers_[dst](msg);
            },
            Event::default_pri, seq);
    }
    ar.endSection();
}

} // namespace mem
} // namespace rasim
