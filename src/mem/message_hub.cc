#include "mem/message_hub.hh"

#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace rasim
{
namespace mem
{

MessageHub::MessageHub(Simulation &sim, const std::string &name,
                       noc::NetworkModel &net,
                       std::uint32_t control_bytes,
                       std::uint32_t data_bytes, SimObject *parent)
    : SimObject(sim, name, parent),
      messagesSent(this, "messages_sent", "coherence messages sent"),
      messagesDelivered(this, "messages_delivered",
                        "coherence messages delivered"),
      bytesSent(this, "bytes_sent", "protocol bytes offered"),
      net_(net), control_bytes_(control_bytes), data_bytes_(data_bytes)
{
    handlers_.resize(net.numNodes());
}

void
MessageHub::registerHandler(NodeId node, Handler handler)
{
    if (node >= handlers_.size())
        panic("hub: handler for node ", node, " out of range");
    handlers_[node] = std::move(handler);
}

void
MessageHub::send(const CoherenceMsg &msg, NodeId dst)
{
    std::uint32_t bytes =
        carriesData(msg.type) ? data_bytes_ : control_bytes_;
    auto pkt = noc::makePacket(next_id_++, msg.sender, dst,
                               vnetOf(msg.type), bytes, curTick());
    in_transit_.emplace(pkt->id, msg);
    ++outstanding_;
    ++messagesSent;
    bytesSent += bytes;
    net_.inject(pkt);
}

void
MessageHub::deliver(const noc::PacketPtr &pkt)
{
    auto it = in_transit_.find(pkt->id);
    if (it == in_transit_.end())
        panic("hub: delivery of unknown packet ", pkt->toString());
    CoherenceMsg msg = it->second;
    in_transit_.erase(it);

    NodeId dst = pkt->dst;
    if (!handlers_[dst])
        panic("hub: no handler registered at node ", dst);

    Tick when = std::max(pkt->deliver_tick, curTick());
    sim().eventq().scheduleLambda(when, [this, msg, dst] {
        --outstanding_;
        ++messagesDelivered;
        handlers_[dst](msg);
    });
}

} // namespace mem
} // namespace rasim
