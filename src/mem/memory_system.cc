#include "mem/memory_system.hh"

#include "sim/config.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace rasim
{
namespace mem
{

MemParams
MemParams::fromConfig(const Config &cfg)
{
    MemParams p;
    p.block_bytes = static_cast<int>(cfg.getUInt("mem.block_bytes", 64));
    p.l1_sets = static_cast<int>(cfg.getUInt("mem.l1_sets", 64));
    p.l1_ways = static_cast<int>(cfg.getUInt("mem.l1_ways", 4));
    p.l1_replacement = cfg.getString("mem.l1_replacement", "lru");
    p.l1_latency = cfg.getUInt("mem.l1_latency", 2);
    p.dir_latency = cfg.getUInt("mem.dir_latency", 6);
    p.dram_latency = cfg.getUInt("mem.dram_latency", 100);
    p.dram_banks = static_cast<int>(cfg.getUInt("mem.dram_banks", 8));
    p.mshrs = static_cast<int>(cfg.getUInt("mem.mshrs", 8));
    p.wb_buffer = static_cast<int>(cfg.getUInt("mem.wb_buffer", 4));
    p.control_bytes =
        static_cast<int>(cfg.getUInt("mem.control_bytes", 8));
    p.validate();
    return p;
}

void
MemParams::validate() const
{
    if (block_bytes < 1 || (block_bytes & (block_bytes - 1)) != 0)
        fatal("mem: block_bytes must be a power of two");
    if (l1_sets < 1 || l1_ways < 1)
        fatal("mem: L1 geometry must be positive");
    if (mshrs < 1)
        fatal("mem: need at least one MSHR");
    if (wb_buffer < 1)
        fatal("mem: need at least one write-back buffer entry");
    if (dram_banks < 1)
        fatal("mem: need at least one DRAM bank");
}

MemorySystem::MemorySystem(Simulation &sim, const std::string &name,
                           noc::NetworkModel &net,
                           const MemParams &params, SimObject *parent)
    : SimObject(sim, name, parent), params_(params),
      hub_(sim, "hub", net, params.control_bytes,
           static_cast<std::uint32_t>(params.dataBytes()), this)
{
    // Default delivery wiring straight into the hub; the co-simulation
    // bridge replaces this with a wrapper that also feeds the
    // reciprocal latency table.
    net.setDeliveryHandler(
        [this](const noc::PacketPtr &pkt) { hub_.deliver(pkt); });

    auto nodes = static_cast<NodeId>(net.numNodes());
    auto home_of = [this, nodes](Addr block) {
        return static_cast<NodeId>(
            (block / static_cast<Addr>(params_.block_bytes)) % nodes);
    };
    for (NodeId i = 0; i < nodes; ++i) {
        l1s_.push_back(std::make_unique<L1Cache>(
            sim, "l1_" + std::to_string(i), i, params_, hub_, home_of,
            this));
        dirs_.push_back(std::make_unique<Directory>(
            sim, "dir_" + std::to_string(i), i, params_, hub_, this));
    }
    for (NodeId i = 0; i < nodes; ++i) {
        L1Cache *l1 = l1s_[i].get();
        Directory *dir = dirs_[i].get();
        hub_.registerHandler(i, [l1, dir](const CoherenceMsg &msg) {
            // Responses/forwards for caches; requests and transaction
            // completions for the home slice.
            switch (msg.type) {
              case MsgType::GetS:
              case MsgType::GetM:
              case MsgType::PutM:
              case MsgType::WBData:
              case MsgType::ChownAck:
                dir->handleMessage(msg);
                break;
              default:
                l1->handleMessage(msg);
                break;
            }
        });
    }
}

NodeId
MemorySystem::homeOf(Addr addr) const
{
    return static_cast<NodeId>(
        (params_.blockAlign(addr) /
         static_cast<Addr>(params_.block_bytes)) %
        l1s_.size());
}

bool
MemorySystem::quiescent() const
{
    if (hub_.outstanding() != 0)
        return false;
    for (const auto &l1 : l1s_)
        if (!l1->quiescent())
            return false;
    for (const auto &dir : dirs_)
        if (!dir->quiescent())
            return false;
    return true;
}

void
MemorySystem::save(ArchiveWriter &aw) const
{
    aw.beginSection("memory");
    hub_.save(aw);
    for (const auto &l1 : l1s_)
        l1->save(aw);
    for (const auto &dir : dirs_)
        dir->save(aw);
    aw.endSection();
}

void
MemorySystem::restore(ArchiveReader &ar)
{
    ar.expectSection("memory");
    hub_.restore(ar);
    for (const auto &l1 : l1s_)
        l1->restore(ar);
    for (const auto &dir : dirs_)
        dir->restore(ar);
    ar.endSection();
}

} // namespace mem
} // namespace rasim
