#include "mem/dram.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace rasim
{
namespace mem
{

Dram::Dram(stats::Group *parent, const std::string &name, int banks,
           Tick access_latency, int block_bytes)
    : stats::Group(parent, name),
      accesses(this, "accesses", "DRAM accesses"),
      queueDelay(this, "queue_delay", "bank queueing delay (cycles)"),
      access_latency_(access_latency), block_bytes_(block_bytes)
{
    if (banks < 1)
        fatal("dram: need at least one bank");
    if (block_bytes < 1)
        fatal("dram: block size must be positive");
    bank_free_.assign(banks, 0);
}

Tick
Dram::access(Addr addr, Tick now)
{
    auto bank = static_cast<std::size_t>(
        (addr / static_cast<Addr>(block_bytes_)) % bank_free_.size());
    Tick start = std::max(now, bank_free_[bank]);
    Tick done = start + access_latency_;
    bank_free_[bank] = done;
    ++accesses;
    queueDelay.sample(static_cast<double>(start - now));
    return done;
}

void
Dram::save(ArchiveWriter &aw) const
{
    aw.beginSection("dram");
    aw.putU64(bank_free_.size());
    for (Tick t : bank_free_)
        aw.putU64(t);
    aw.endSection();
}

void
Dram::restore(ArchiveReader &ar)
{
    ar.expectSection("dram");
    std::uint64_t n = ar.getU64();
    if (n != bank_free_.size())
        panic("dram restore: bank count mismatch (", n, " vs ",
              bank_free_.size(), ")");
    for (Tick &t : bank_free_)
        t = ar.getU64();
    ar.endSection();
}

} // namespace mem
} // namespace rasim
