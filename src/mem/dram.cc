#include "mem/dram.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace rasim
{
namespace mem
{

Dram::Dram(stats::Group *parent, const std::string &name, int banks,
           Tick access_latency, int block_bytes)
    : stats::Group(parent, name),
      accesses(this, "accesses", "DRAM accesses"),
      queueDelay(this, "queue_delay", "bank queueing delay (cycles)"),
      access_latency_(access_latency), block_bytes_(block_bytes)
{
    if (banks < 1)
        fatal("dram: need at least one bank");
    if (block_bytes < 1)
        fatal("dram: block size must be positive");
    bank_free_.assign(banks, 0);
}

Tick
Dram::access(Addr addr, Tick now)
{
    auto bank = static_cast<std::size_t>(
        (addr / static_cast<Addr>(block_bytes_)) % bank_free_.size());
    Tick start = std::max(now, bank_free_[bank]);
    Tick done = start + access_latency_;
    bank_free_[bank] = done;
    ++accesses;
    queueDelay.sample(static_cast<double>(start - now));
    return done;
}

} // namespace mem
} // namespace rasim
