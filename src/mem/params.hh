/**
 * @file
 * Memory hierarchy parameters.
 */

#ifndef RASIM_MEM_PARAMS_HH
#define RASIM_MEM_PARAMS_HH

#include <string>

#include "sim/types.hh"

namespace rasim
{

class Config;

namespace mem
{

struct MemParams
{
    int block_bytes = 64;
    int l1_sets = 64;
    int l1_ways = 4;
    std::string l1_replacement = "lru";
    /** L1 hit latency in cycles. */
    Tick l1_latency = 2;
    /** Directory/L2-slice lookup latency in cycles. */
    Tick dir_latency = 6;
    /** DRAM access latency in cycles (per bank). */
    Tick dram_latency = 100;
    int dram_banks = 8;
    /** Outstanding misses per L1. */
    int mshrs = 8;
    /** Evicted-dirty-block buffer entries per L1. */
    int wb_buffer = 4;
    /** Wire size of control messages in bytes. */
    int control_bytes = 8;

    static MemParams fromConfig(const Config &cfg);
    void validate() const;

    Addr
    blockAlign(Addr a) const
    {
        return a & ~static_cast<Addr>(block_bytes - 1);
    }

    int dataBytes() const { return control_bytes + block_bytes; }
};

} // namespace mem
} // namespace rasim

#endif // RASIM_MEM_PARAMS_HH
