/**
 * @file
 * Assembles the per-node memory hierarchy: one L1 + one directory
 * slice per network endpoint, wired through a MessageHub onto any
 * NetworkModel. Block homes interleave across all nodes.
 */

#ifndef RASIM_MEM_MEMORY_SYSTEM_HH
#define RASIM_MEM_MEMORY_SYSTEM_HH

#include <memory>
#include <vector>

#include "mem/directory.hh"
#include "mem/l1_cache.hh"
#include "mem/message_hub.hh"
#include "mem/params.hh"
#include "noc/network_model.hh"
#include "sim/serialize.hh"
#include "sim/sim_object.hh"

namespace rasim
{
namespace mem
{

class MemorySystem : public SimObject, public Serializable
{
  public:
    MemorySystem(Simulation &sim, const std::string &name,
                 noc::NetworkModel &net, const MemParams &params,
                 SimObject *parent = nullptr);

    L1Cache &l1(NodeId node) { return *l1s_[node]; }
    Directory &directory(NodeId node) { return *dirs_[node]; }
    MessageHub &hub() { return hub_; }

    std::size_t numNodes() const { return l1s_.size(); }
    const MemParams &params() const { return params_; }

    /** Home (directory) node of an address. */
    NodeId homeOf(Addr addr) const;

    /** True when no coherence activity is outstanding anywhere. */
    bool quiescent() const;

    void save(ArchiveWriter &aw) const override;
    void restore(ArchiveReader &ar) override;

  private:
    MemParams params_;
    MessageHub hub_;
    std::vector<std::unique_ptr<L1Cache>> l1s_;
    std::vector<std::unique_ptr<Directory>> dirs_;
};

} // namespace mem
} // namespace rasim

#endif // RASIM_MEM_MEMORY_SYSTEM_HH
