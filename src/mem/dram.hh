/**
 * @file
 * Per-home-node DRAM timing model: fixed access latency plus bank
 * serialisation. The directory consults it for the completion tick of
 * each off-chip access.
 */

#ifndef RASIM_MEM_DRAM_HH
#define RASIM_MEM_DRAM_HH

#include <cstdint>
#include <vector>

#include "sim/serialize.hh"
#include "sim/types.hh"
#include "stats/stat.hh"
#include "stats/distribution.hh"
#include "stats/group.hh"

namespace rasim
{
namespace mem
{

class Dram : public stats::Group
{
  public:
    /**
     * @param banks Independent banks at this controller.
     * @param access_latency Cycles a bank is busy per access.
     */
    Dram(stats::Group *parent, const std::string &name, int banks,
         Tick access_latency, int block_bytes);

    /**
     * Schedule an access to @p addr issued at @p now.
     * @return the tick the data is available (>= now + latency).
     */
    Tick access(Addr addr, Tick now);

    int banks() const { return static_cast<int>(bank_free_.size()); }
    Tick accessLatency() const { return access_latency_; }

    void save(ArchiveWriter &aw) const;
    void restore(ArchiveReader &ar);

    stats::Scalar accesses;
    stats::Distribution queueDelay;

  private:
    Tick access_latency_;
    int block_bytes_;
    std::vector<Tick> bank_free_; ///< tick each bank becomes free
};

} // namespace mem
} // namespace rasim

#endif // RASIM_MEM_DRAM_HH
