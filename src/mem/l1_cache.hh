/**
 * @file
 * Private L1 cache controller: MESI-style (MSI + upgrade) state
 * machine against distributed directories, with MSHRs, a write-back
 * buffer and pluggable replacement.
 *
 * Race handling summary (home nodes serialise per-block transactions):
 *  - Inv arriving in M/IM_D-with-data/I is stale (silently-evicted or
 *    reordered epoch) and only needs an InvAck.
 *  - Inv in IS_D is real under reordering: the load completes with the
 *    arriving data but the line is not cached (was_invalidated).
 *  - Fwd* arriving before the data of our own GetM is deferred until
 *    the line reaches M.
 *  - Fwd* arriving while a dirty eviction is in flight is answered
 *    from the write-back buffer; the PutM goes stale at the home.
 */

#ifndef RASIM_MEM_L1_CACHE_HH
#define RASIM_MEM_L1_CACHE_HH

#include <deque>
#include <functional>
#include <utility>
#include <vector>

#include "mem/message_hub.hh"
#include "mem/msg.hh"
#include "mem/params.hh"
#include "mem/replacement.hh"
#include "sim/flat_map.hh"
#include "sim/serialize.hh"
#include "sim/sim_object.hh"
#include "stats/stat.hh"

namespace rasim
{
namespace mem
{

class L1Cache : public SimObject, public Serializable
{
  public:
    /** Completion callback for a core memory operation. */
    using Callback = std::function<void()>;
    /** Maps a block address to its home (directory) node. */
    using HomeOf = std::function<NodeId(Addr)>;
    /**
     * Rebuilds a core completion callback from its is_write flag when
     * restoring a checkpoint: closures cannot be archived, but the
     * core's load/store completion handlers are a pure function of the
     * operation kind.
     */
    using CompletionFactory = std::function<Callback(bool is_write)>;

    L1Cache(Simulation &sim, const std::string &name, NodeId node,
            const MemParams &params, MessageHub &hub, HomeOf home_of,
            SimObject *parent = nullptr);

    /**
     * Issue a load/store to @p addr. Returns false when no MSHR,
     * write-back buffer entry or stable victim is available — the core
     * must retry after the retry callback fires.
     * On true, @p cb runs when the operation completes.
     */
    bool access(Addr addr, bool is_write, Callback cb);

    /** As access(), but without hit/miss accounting (used for waiter
     *  re-issue so one core operation is classified exactly once). */
    bool accessInternal(Addr addr, bool is_write, Callback cb,
                        bool count_stats);

    /** Invoked when a previously exhausted resource frees up. */
    void setRetryCallback(Callback cb) { retry_cb_ = std::move(cb); }

    /** Install the callback rebuilder used by restore(). */
    void
    setCompletionFactory(CompletionFactory f)
    {
        completion_factory_ = std::move(f);
    }

    void save(ArchiveWriter &aw) const override;
    void restore(ArchiveReader &ar) override;

    /** Coherence message entry point (registered with the hub). */
    void handleMessage(const CoherenceMsg &msg);

    /** True when no transaction or write-back is outstanding. */
    bool quiescent() const;

    NodeId node() const { return node_; }

    /** Introspection for tests: stable state of a block ('I' when
     *  absent), one of "ISM" plus 'T' for transient. */
    char probeState(Addr addr) const;

    stats::Scalar loadHits;
    stats::Scalar loadMisses;
    stats::Scalar storeHits;
    stats::Scalar storeMisses;
    stats::Scalar upgrades;
    stats::Scalar writebacks;
    stats::Scalar invsReceived;
    stats::Scalar fwdsReceived;
    stats::Scalar retriesSignalled;

  private:
    enum class State : std::uint8_t
    {
        I,
        S,
        M,
        IS_D, ///< load miss, waiting for data
        IM_D, ///< store miss, waiting for data and/or acks
        SM_D, ///< upgrade, waiting for ack count and/or acks
        MI_A, ///< dirty eviction, waiting for WBAck (wb buffer)
    };

    struct Line
    {
        Addr block = 0;
        State state = State::I;
    };

    struct Mshr
    {
        bool is_write = false;
        bool data_received = false;
        bool was_invalidated = false;
        int pending_acks = 0;
        std::vector<std::pair<bool, Callback>> waiters;
    };

    int setOf(Addr block) const;
    void touchLine(Addr block, Line *line);
    Line *findLine(Addr block);
    const Line *findLine(Addr block) const;

    /** Allocate a way for @p block; may start a write-back.
     *  @return nullptr when no stable victim or wb space exists. */
    Line *allocateLine(Addr block);

    void sendToHome(MsgType type, Addr block);
    /** Schedule a hit-path completion, tracked for checkpointing. */
    void scheduleCompletion(Tick done, bool is_write, Callback cb);
    void completeTransaction(Addr block, Line &line);
    void finishMshr(Addr block);
    void processDeferred(Addr block);
    void signalRetry();

    void handleData(const CoherenceMsg &msg);
    void handleInvAck(const CoherenceMsg &msg);
    void handleInv(const CoherenceMsg &msg);
    void handleFwd(const CoherenceMsg &msg);
    void handleWBAck(const CoherenceMsg &msg);

    NodeId node_;
    const MemParams &params_;
    MessageHub &hub_;
    HomeOf home_of_;
    std::vector<std::vector<Line>> sets_;
    std::unique_ptr<ReplacementPolicy> repl_;
    /** Open addressing: no Mshr& survives an insert into mshrs_ (the
     *  table may rehash); the controller never holds one across
     *  finishMshr()/accessInternal(). */
    FlatMap<Addr, Mshr> mshrs_;
    /** Dirty blocks evicted but not yet acknowledged by the home. */
    FlatMap<Addr, bool> wb_buffer_;
    /** Forwards stalled until the local transaction completes. */
    FlatMap<Addr, std::deque<CoherenceMsg>> deferred_;
    Callback retry_cb_;
    CompletionFactory completion_factory_;
    /** Hit completions in flight, keyed by their event's insertion
     *  sequence: seq -> (completion tick, is_write). */
    FlatMap<std::uint64_t, std::pair<Tick, bool>> pending_completions_;
    bool want_retry_ = false;
};

} // namespace mem
} // namespace rasim

#endif // RASIM_MEM_L1_CACHE_HH
