/**
 * @file
 * Closed-form latency building blocks shared by the abstract network
 * and the reciprocal latency table.
 */

#ifndef RASIM_ABSTRACTNET_LATENCY_MODEL_HH
#define RASIM_ABSTRACTNET_LATENCY_MODEL_HH

#include <cstdint>

#include "noc/params.hh"

namespace rasim
{
namespace abstractnet
{

/**
 * Zero-load latency of a packet over @p hops router-to-router hops,
 * matching the cycle-level network exactly in the absence of
 * contention (locked by tests/noc/network_test.cc):
 *
 *   (hops + 1) router traversals, each pipeline_stages cycles
 * + (link_latency - 1) extra wire cycles per router-to-router hop
 * + (flits - 1) serialisation cycles for the wormhole tail
 * + 1 delivery-visibility cycle
 *
 * i.e. P * (hops + 1) + hops * (L - 1) + flits.
 */
Tick zeroLoadLatency(const noc::NocParams &params, int hops,
                     std::uint32_t flits);

/**
 * M/D/1-style per-hop queueing delay for channel utilisation @p rho in
 * [0, 1): W = s * rho / (2 * (1 - rho)) with unit service time, capped
 * at @p cap to keep the model stable past saturation.
 */
double contentionDelay(double rho, double cap);

} // namespace abstractnet
} // namespace rasim

#endif // RASIM_ABSTRACTNET_LATENCY_MODEL_HH
