#include "abstractnet/latency_table.hh"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "abstractnet/latency_model.hh"
#include "sim/logging.hh"

namespace rasim
{
namespace abstractnet
{

LatencyTable::LatencyTable(const noc::NocParams &params, int max_hops,
                           double alpha, Granularity granularity,
                           int num_nodes)
    : params_(params), max_hops_(max_hops), alpha_(alpha),
      granularity_(granularity), num_nodes_(num_nodes)
{
    if (max_hops_ < 0)
        panic("latency table needs a non-negative distance range");
    if (alpha_ <= 0.0 || alpha_ > 1.0)
        fatal("latency table EWMA weight must be in (0, 1], got ",
              alpha_);
    entries_.resize(static_cast<std::size_t>(noc::num_vnets) *
                    (max_hops_ + 1));
    if (granularity_ == Granularity::Pair) {
        if (num_nodes_ < 1)
            fatal("pair-granularity latency table needs the node count");
        pair_entries_.resize(static_cast<std::size_t>(noc::num_vnets) *
                             num_nodes_ * num_nodes_);
    }
}

std::size_t
LatencyTable::pairIndex(int vnet, NodeId src, NodeId dst) const
{
    return (static_cast<std::size_t>(vnet) * num_nodes_ + src) *
               num_nodes_ +
           dst;
}

std::size_t
LatencyTable::index(int vnet, int hops) const
{
    int h = std::clamp(hops, 0, max_hops_);
    return static_cast<std::size_t>(vnet) * (max_hops_ + 1) + h;
}

void
LatencyTable::observe(int vnet, int hops, std::uint32_t flits,
                      Tick latency, NodeId src, NodeId dst)
{
    // Normalise to a single-flit packet so all sizes share the entry.
    double serial = flits > 0 ? flits - 1 : 0;
    double single = static_cast<double>(latency) - serial;
    auto fold = [this, single](Entry &e) {
        if (e.samples == 0)
            e.ewma = single;
        else
            e.ewma = alpha_ * single + (1.0 - alpha_) * e.ewma;
        ++e.samples;
    };
    fold(entries_[index(vnet, hops)]);
    if (granularity_ == Granularity::Pair && src != invalid_node &&
        dst != invalid_node &&
        src < static_cast<NodeId>(num_nodes_) &&
        dst < static_cast<NodeId>(num_nodes_)) {
        fold(pair_entries_[pairIndex(vnet, src, dst)]);
    }
    ++observations_;
}

double
LatencyTable::estimate(int vnet, int hops, std::uint32_t flits,
                       NodeId src, NodeId dst) const
{
    double serial = flits > 0 ? flits - 1 : 0;
    if (granularity_ == Granularity::Pair && src != invalid_node &&
        dst != invalid_node &&
        src < static_cast<NodeId>(num_nodes_) &&
        dst < static_cast<NodeId>(num_nodes_)) {
        const Entry &p = pair_entries_[pairIndex(vnet, src, dst)];
        if (p.samples > 0)
            return p.ewma + serial;
    }
    const Entry &e = entries_[index(vnet, hops)];
    if (e.samples > 0)
        return e.ewma + serial;
    return static_cast<double>(zeroLoadLatency(params_, hops, 1)) +
           serial;
}

void
LatencyTable::reset()
{
    for (Entry &e : entries_)
        e = Entry{};
    for (Entry &e : pair_entries_)
        e = Entry{};
    observations_ = 0;
}

double
LatencyTable::maxSeedRatio() const
{
    double worst = 1.0;
    for (int v = 0; v < noc::num_vnets; ++v) {
        for (int h = 0; h <= max_hops_; ++h) {
            const Entry &e = entries_[index(v, h)];
            if (e.samples == 0)
                continue;
            double seed = std::max(
                1.0,
                static_cast<double>(zeroLoadLatency(params_, h, 1)));
            worst = std::max(worst, e.ewma / seed);
        }
    }
    return worst;
}

void
LatencyTable::save(std::ostream &os) const
{
    os << "vnet,hops,ewma,samples\n";
    for (int v = 0; v < noc::num_vnets; ++v) {
        for (int h = 0; h <= max_hops_; ++h) {
            const Entry &e = entries_[index(v, h)];
            if (e.samples == 0)
                continue;
            os << v << "," << h << "," << e.ewma << "," << e.samples
               << "\n";
        }
    }
}

void
LatencyTable::load(std::istream &is)
{
    reset();
    std::string line;
    int lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty() || line.rfind("vnet,", 0) == 0)
            continue;
        std::istringstream row(line);
        int v, h;
        double ewma;
        std::uint64_t samples;
        char c1, c2, c3;
        if (!(row >> v >> c1 >> h >> c2 >> ewma >> c3 >> samples) ||
            c1 != ',' || c2 != ',' || c3 != ',' || v < 0 ||
            v >= noc::num_vnets || h < 0 || samples == 0) {
            fatal("malformed latency table row ", lineno, ": '", line,
                  "'");
        }
        if (h > max_hops_)
            fatal("latency table row ", lineno, " exceeds max hops ",
                  max_hops_, " (geometry mismatch)");
        Entry &e = entries_[index(v, h)];
        e.ewma = ewma;
        e.samples = samples;
        observations_ += samples;
    }
}

void
LatencyTable::saveBinary(ArchiveWriter &aw) const
{
    aw.beginSection("lat_table");
    aw.putU64(observations_);
    aw.putU64(entries_.size());
    for (const Entry &e : entries_) {
        aw.putDouble(e.ewma);
        aw.putU64(e.samples);
    }
    aw.putU64(pair_entries_.size());
    for (const Entry &e : pair_entries_) {
        aw.putDouble(e.ewma);
        aw.putU64(e.samples);
    }
    aw.endSection();
}

void
LatencyTable::restoreBinary(ArchiveReader &ar)
{
    ar.expectSection("lat_table");
    observations_ = ar.getU64();
    std::uint64_t n = ar.getU64();
    if (n != entries_.size())
        panic("latency table restore: ", n, " entries vs ",
              entries_.size(), " expected");
    for (Entry &e : entries_) {
        e.ewma = ar.getDouble();
        e.samples = ar.getU64();
    }
    std::uint64_t n_pair = ar.getU64();
    if (n_pair != pair_entries_.size())
        panic("latency table restore: ", n_pair, " pair entries vs ",
              pair_entries_.size(), " expected");
    for (Entry &e : pair_entries_) {
        e.ewma = ar.getDouble();
        e.samples = ar.getU64();
    }
    ar.endSection();
}

bool
LatencyTable::identicalTo(const LatencyTable &other) const
{
    if (observations_ != other.observations_ ||
        entries_.size() != other.entries_.size() ||
        pair_entries_.size() != other.pair_entries_.size())
        return false;
    for (std::size_t i = 0; i < entries_.size(); ++i)
        if (entries_[i].ewma != other.entries_[i].ewma ||
            entries_[i].samples != other.entries_[i].samples)
            return false;
    for (std::size_t i = 0; i < pair_entries_.size(); ++i)
        if (pair_entries_[i].ewma != other.pair_entries_[i].ewma ||
            pair_entries_[i].samples != other.pair_entries_[i].samples)
            return false;
    return true;
}

} // namespace abstractnet
} // namespace rasim
