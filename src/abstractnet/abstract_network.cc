#include "abstractnet/abstract_network.hh"

#include <algorithm>
#include <cmath>

#include "abstractnet/latency_model.hh"
#include "sim/config.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace rasim
{
namespace abstractnet
{

namespace
{

/** Unidirectional router-to-router channels in the topology. */
std::uint64_t
countChannels(const noc::Topology &topo)
{
    std::uint64_t n = 0;
    for (int i = 0; i < topo.numNodes(); ++i)
        for (int p = 1; p < topo.numPorts(); ++p)
            if (topo.neighbor(i, p) >= 0)
                ++n;
    return n;
}

} // namespace

AbstractNetwork::AbstractNetwork(Simulation &sim, const std::string &name,
                                 const noc::NocParams &params, Mode mode,
                                 SimObject *parent)
    : SimObject(sim, name, parent),
      packetsInjected(this, "packets_injected",
                      "packets handed to the abstract model"),
      packetsDelivered(this, "packets_delivered",
                       "packets delivered by the abstract model"),
      totalLatency(this, "total_latency",
                   "modelled inject-to-deliver latency (cycles)"),
      params_(params), mode_(mode),
      topo_(noc::makeTopology(params.topology, params.columns,
                              params.rows)),
      table_(params,
             topo_->minHops(0, static_cast<NodeId>(topo_->numNodes() - 1)) +
                 topo_->columns() + topo_->rows(),
             sim.config().getDouble("abstract.ewma_alpha", 0.05),
             sim.config().getString("abstract.granularity",
                                    "distance") == "pair"
                 ? LatencyTable::Granularity::Pair
                 : LatencyTable::Granularity::Distance,
             topo_->numNodes()),
      window_(sim.config().getUInt("abstract.window", 256)),
      contention_cap_(
          sim.config().getDouble("abstract.contention_cap", 64.0)),
      num_channels_(countChannels(*topo_))
{
    if (window_ == 0)
        fatal("abstract.window must be positive");
    for (int v = 0; v < noc::num_vnets; ++v) {
        vnetLatency.push_back(std::make_unique<stats::Distribution>(
            this, std::string("latency_vnet") + std::to_string(v),
            "total latency on vnet " + std::to_string(v)));
    }
}

AbstractNetwork::~AbstractNetwork() = default;

std::size_t
AbstractNetwork::numNodes() const
{
    return static_cast<std::size_t>(topo_->numNodes());
}

std::optional<noc::NetworkModel::Accounting>
AbstractNetwork::accounting() const
{
    Accounting acc;
    acc.injected = injected_;
    acc.delivered = delivered_;
    acc.in_flight = in_flight_.size();
    return acc;
}

double
AbstractNetwork::utilization() const
{
    return rho_;
}

void
AbstractNetwork::accountLoad(const noc::PacketPtr &pkt)
{
    // Advance the window, decaying the utilisation estimate once per
    // elapsed window.
    while (time_ >= window_start_ + window_) {
        double w = static_cast<double>(window_) *
                   static_cast<double>(num_channels_);
        rho_ = 0.5 * rho_ + 0.5 * std::min(1.0, window_flit_hops_ / w);
        window_flit_hops_ = 0.0;
        window_start_ += window_;
    }
    int hops = topo_->minHops(pkt->src, pkt->dst);
    window_flit_hops_ += static_cast<double>(
        params_.flitsPerPacket(pkt->size_bytes) * (hops + 1));
}

Tick
AbstractNetwork::latencyFor(const noc::PacketPtr &pkt) const
{
    int hops = topo_->minHops(pkt->src, pkt->dst);
    std::uint32_t flits = params_.flitsPerPacket(pkt->size_bytes);
    if (mode_ == Mode::Tuned) {
        double est = table_.estimate(static_cast<int>(pkt->cls), hops,
                                     flits, pkt->src, pkt->dst);
        return static_cast<Tick>(std::llround(est));
    }
    Tick base = zeroLoadLatency(params_, hops, flits);
    double queueing =
        contentionDelay(rho_, contention_cap_) * (hops + 1);
    return base + static_cast<Tick>(std::llround(queueing));
}

void
AbstractNetwork::inject(const noc::PacketPtr &pkt)
{
    if (pkt->src >= numNodes() || pkt->dst >= numNodes())
        fatal("packet ", pkt->toString(),
              " references nodes outside the abstract network");
    ++packetsInjected;
    ++injected_;
    Tick start = std::max(pkt->inject_tick, time_);
    accountLoad(pkt);
    pkt->enter_tick = start;
    pkt->hops = static_cast<std::uint32_t>(
        topo_->minHops(pkt->src, pkt->dst));
    pkt->deliver_tick = start + latencyFor(pkt);
    in_flight_.push(pkt);
}

void
AbstractNetwork::setDeliveryHandler(DeliveryHandler handler)
{
    handler_ = std::move(handler);
}

void
AbstractNetwork::advanceTo(Tick t)
{
    while (!in_flight_.empty() &&
           in_flight_.top()->deliver_tick <= t) {
        noc::PacketPtr pkt = in_flight_.top();
        in_flight_.pop();
        time_ = std::max(time_, pkt->deliver_tick);
        ++packetsDelivered;
        ++delivered_;
        totalLatency.sample(static_cast<double>(pkt->latency()));
        vnetLatency[static_cast<int>(pkt->cls)]->sample(
            static_cast<double>(pkt->latency()));
        if (handler_)
            handler_(pkt);
    }
    time_ = std::max(time_, t);
}

void
AbstractNetwork::save(ArchiveWriter &aw) const
{
    aw.beginSection("abstract_net");
    aw.putU64(time_);
    aw.putU64(injected_);
    aw.putU64(delivered_);
    aw.putU64(window_start_);
    aw.putDouble(window_flit_hops_);
    aw.putDouble(rho_);

    auto in_flight = in_flight_;
    std::vector<noc::PacketPtr> pkts;
    pkts.reserve(in_flight.size());
    while (!in_flight.empty()) {
        pkts.push_back(in_flight.top());
        in_flight.pop();
    }
    aw.putU64(pkts.size());
    for (const noc::PacketPtr &pkt : pkts)
        noc::savePacket(aw, *pkt);

    table_.saveBinary(aw);
    aw.endSection();
}

void
AbstractNetwork::restore(ArchiveReader &ar)
{
    ar.expectSection("abstract_net");
    time_ = ar.getU64();
    injected_ = ar.getU64();
    delivered_ = ar.getU64();
    window_start_ = ar.getU64();
    window_flit_hops_ = ar.getDouble();
    rho_ = ar.getDouble();

    in_flight_ = {};
    std::uint64_t n = ar.getU64();
    for (std::uint64_t i = 0; i < n; ++i)
        in_flight_.push(noc::restorePacket(ar));

    table_.restoreBinary(ar);
    ar.endSection();
}

} // namespace abstractnet
} // namespace rasim
