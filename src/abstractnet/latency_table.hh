/**
 * @file
 * The reciprocal feedback target: a small per-(vnet, hop-distance)
 * latency estimator, seeded from the zero-load model and re-tuned by
 * EWMA from latencies the detailed network actually observed.
 */

#ifndef RASIM_ABSTRACTNET_LATENCY_TABLE_HH
#define RASIM_ABSTRACTNET_LATENCY_TABLE_HH

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "noc/params.hh"
#include "sim/serialize.hh"
#include "sim/types.hh"

namespace rasim
{
namespace abstractnet
{

/**
 * Latency estimates indexed by (virtual network, hop distance). The
 * stored quantity is the latency of a single-flit packet; wormhole
 * serialisation (flits - 1) is factored out on observe() and added
 * back on estimate(), so packets of different sizes share statistics.
 *
 * Intentionally copyable: the co-simulation bridge checkpoints the
 * table at healthy quantum boundaries (a plain copy) and restores the
 * last-good copy when a health guard quarantines the detailed backend.
 */
class LatencyTable
{
  public:
    /**
     * Feedback granularity. Distance aggregates all flows of equal
     * hop count; Pair additionally keeps one estimator per (source,
     * destination) flow — strictly finer, catching per-flow
     * contention (hotspots) at 3*N^2 entries, and falling back to the
     * distance entry (then the zero-load seed) for unseen flows.
     */
    enum class Granularity
    {
        Distance,
        Pair,
    };

    /**
     * @param params Network parameters (zero-load seed and max hops).
     * @param max_hops Largest representable distance; longer paths
     *        clamp to this entry.
     * @param alpha EWMA weight of a new observation in (0, 1].
     * @param granularity Feedback resolution (see Granularity).
     * @param num_nodes Endpoint count; required for Pair granularity.
     */
    LatencyTable(const noc::NocParams &params, int max_hops,
                 double alpha = 0.05,
                 Granularity granularity = Granularity::Distance,
                 int num_nodes = 0);

    /**
     * Fold one observed delivery into the estimator. src/dst refine
     * the per-pair entry when Pair granularity is active (ignored
     * otherwise).
     */
    void observe(int vnet, int hops, std::uint32_t flits, Tick latency,
                 NodeId src = invalid_node, NodeId dst = invalid_node);

    /** Current latency estimate (>= zero-load, in cycles). */
    double estimate(int vnet, int hops, std::uint32_t flits,
                    NodeId src = invalid_node,
                    NodeId dst = invalid_node) const;

    Granularity granularity() const { return granularity_; }

    /** Observations folded in so far. */
    std::uint64_t observations() const { return observations_; }

    /** Discard all observations, reverting to the zero-load seed. */
    void reset();

    /**
     * Divergence probe: the largest ratio of a tuned (distance)
     * estimate to its zero-load seed, or 1.0 with no observations. A
     * healthy table tracks contention, so the ratio stays moderate; a
     * poisoned feedback stream drives it far above any physical
     * queueing bound — the health monitor trips when it exceeds the
     * configured factor.
     */
    double maxSeedRatio() const;

    /**
     * Persist the tuned estimates as CSV ("vnet,hops,ewma,samples");
     * lets a calibration run feed later TunedAbstract experiments
     * without re-simulating (the paper's model-reuse workflow).
     */
    void save(std::ostream &os) const;

    /** Load estimates saved by save(); fatal() on malformed rows or a
     *  geometry mismatch. */
    void load(std::istream &is);

    /**
     * Exact binary checkpoint of the tuned state (unlike the CSV
     * export, which rounds). Bit-identical resume depends on it.
     */
    void saveBinary(ArchiveWriter &aw) const;
    void restoreBinary(ArchiveReader &ar);

    /** Exact state comparison (differential resume tests). */
    bool identicalTo(const LatencyTable &other) const;

    double alpha() const { return alpha_; }
    int maxHops() const { return max_hops_; }

  private:
    struct Entry
    {
        double ewma = 0.0;
        std::uint64_t samples = 0;
    };

    std::size_t index(int vnet, int hops) const;
    std::size_t pairIndex(int vnet, NodeId src, NodeId dst) const;

    noc::NocParams params_;
    int max_hops_;
    double alpha_;
    Granularity granularity_;
    int num_nodes_;
    std::uint64_t observations_ = 0;
    std::vector<Entry> entries_;
    std::vector<Entry> pair_entries_;
};

} // namespace abstractnet
} // namespace rasim

#endif // RASIM_ABSTRACTNET_LATENCY_TABLE_HH
