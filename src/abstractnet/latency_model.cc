#include "abstractnet/latency_model.hh"

#include <algorithm>

namespace rasim
{
namespace abstractnet
{

Tick
zeroLoadLatency(const noc::NocParams &params, int hops,
                std::uint32_t flits)
{
    auto h = static_cast<Tick>(hops);
    Tick routers = (h + 1) * static_cast<Tick>(params.pipeline_stages);
    Tick wires = h * static_cast<Tick>(params.link_latency - 1);
    return routers + wires + std::max<std::uint32_t>(flits, 1);
}

double
contentionDelay(double rho, double cap)
{
    if (rho <= 0.0)
        return 0.0;
    if (rho >= 1.0)
        return cap;
    double w = rho / (2.0 * (1.0 - rho));
    return std::min(w, cap);
}

} // namespace abstractnet
} // namespace rasim
