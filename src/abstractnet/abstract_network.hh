/**
 * @file
 * The coarse network model the full-system simulator uses on its own:
 * analytical latency per packet, no routers, no flits. In Tuned mode
 * the latency comes from the reciprocal LatencyTable instead of the
 * static contention formula.
 */

#ifndef RASIM_ABSTRACTNET_ABSTRACT_NETWORK_HH
#define RASIM_ABSTRACTNET_ABSTRACT_NETWORK_HH

#include <memory>
#include <queue>
#include <vector>

#include "abstractnet/latency_table.hh"
#include "noc/network_model.hh"
#include "noc/params.hh"
#include "noc/topology.hh"
#include "sim/sim_object.hh"
#include "stats/distribution.hh"
#include "stats/stat.hh"

namespace rasim
{

class Simulation;

namespace abstractnet
{

class AbstractNetwork : public SimObject, public noc::NetworkModel
{
  public:
    enum class Mode
    {
        /** Zero-load + analytical M/D/1 contention (no feedback). */
        Static,
        /** Latency from the reciprocally tuned LatencyTable. */
        Tuned,
    };

    /**
     * @param params The *target* network's parameters: topology for
     *        hop counts, flit width for serialisation, pipeline/link
     *        latencies for the zero-load seed.
     */
    AbstractNetwork(Simulation &sim, const std::string &name,
                    const noc::NocParams &params, Mode mode,
                    SimObject *parent = nullptr);
    ~AbstractNetwork() override;

    // NetworkModel interface.
    void inject(const noc::PacketPtr &pkt) override;
    void advanceTo(Tick t) override;
    void setDeliveryHandler(DeliveryHandler handler) override;
    Tick curTime() const override { return time_; }
    bool idle() const override { return in_flight_.empty(); }
    std::size_t numNodes() const override;
    std::optional<Accounting> accounting() const override;

    Mode mode() const { return mode_; }

    /** The reciprocal feedback target (shared with the bridge). */
    LatencyTable &table() { return table_; }
    const LatencyTable &table() const { return table_; }

    const noc::Topology &topology() const { return *topo_; }

    /**
     * Estimated utilisation of the network channels in [0, 1],
     * computed from a sliding window of injected flit-hops (Static
     * mode's contention input).
     */
    double utilization() const;

    /** Checkpoint in-flight packets, load window and tuned table. */
    void save(ArchiveWriter &aw) const;
    void restore(ArchiveReader &ar);

    stats::Scalar packetsInjected;
    stats::Scalar packetsDelivered;
    stats::Distribution totalLatency;
    std::vector<std::unique_ptr<stats::Distribution>> vnetLatency;

  private:
    Tick latencyFor(const noc::PacketPtr &pkt) const;
    void accountLoad(const noc::PacketPtr &pkt);

    struct DeliverOrder
    {
        bool
        operator()(const noc::PacketPtr &a, const noc::PacketPtr &b) const
        {
            if (a->deliver_tick != b->deliver_tick)
                return a->deliver_tick > b->deliver_tick;
            return a->id > b->id;
        }
    };

    noc::NocParams params_;
    Mode mode_;
    std::unique_ptr<noc::Topology> topo_;
    LatencyTable table_;

    Tick time_ = 0;
    std::uint64_t injected_ = 0;
    std::uint64_t delivered_ = 0;
    std::priority_queue<noc::PacketPtr, std::vector<noc::PacketPtr>,
                        DeliverOrder>
        in_flight_;
    DeliveryHandler handler_;

    /** Sliding-window load accounting for the contention term. */
    Tick window_;
    double contention_cap_;
    std::uint64_t num_channels_;
    Tick window_start_ = 0;
    double window_flit_hops_ = 0.0;
    double rho_ = 0.0;
};

} // namespace abstractnet
} // namespace rasim

#endif // RASIM_ABSTRACTNET_ABSTRACT_NETWORK_HH
