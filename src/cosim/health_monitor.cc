#include "cosim/health_monitor.hh"

#include <sstream>

#include "sim/config.hh"
#include "sim/logging.hh"

namespace rasim
{
namespace cosim
{

HealthOptions
HealthOptions::fromConfig(const Config &cfg)
{
    HealthOptions o;
    o.enabled = cfg.getBool("health.enabled", true);
    o.conservation = cfg.getBool("health.conservation", true);
    o.watchdog_cycles = cfg.getUInt("health.watchdog_cycles", 100000);
    o.divergence_factor = cfg.getDouble("health.divergence_factor", 64.0);
    o.divergence_error = cfg.getDouble("health.divergence_error", 0.0);
    o.worker_timeout_ms = cfg.getDouble("health.worker_timeout_ms", 0.0);
    o.timeout_scale = cfg.getDouble("health.timeout_scale", 1.0);
    o.checkpoint_quanta = cfg.getUInt("health.checkpoint_quanta", 8);
    o.recovery_quanta = cfg.getUInt("health.recovery_quanta", 64);
    o.probation_quanta = cfg.getUInt("health.probation_quanta", 8);
    o.max_backoff = cfg.getUInt("health.max_backoff", 64);
    o.degrade = cfg.getBool("health.degrade", true);
    if (o.divergence_factor < 0.0)
        fatal("health.divergence_factor must be non-negative");
    if (o.divergence_error < 0.0)
        fatal("health.divergence_error must be non-negative");
    if (o.worker_timeout_ms < 0.0)
        fatal("health.worker_timeout_ms must be non-negative");
    if (o.timeout_scale <= 0.0)
        fatal("health.timeout_scale must be positive");
    if (o.checkpoint_quanta == 0)
        fatal("health.checkpoint_quanta must be positive");
    if (o.probation_quanta == 0)
        fatal("health.probation_quanta must be positive");
    if (o.max_backoff == 0)
        fatal("health.max_backoff must be positive");
    return o;
}

namespace
{

std::int64_t
lostPackets(const noc::NetworkModel::Accounting &acc)
{
    return static_cast<std::int64_t>(acc.injected) -
           static_cast<std::int64_t>(acc.delivered) -
           static_cast<std::int64_t>(acc.in_flight);
}

} // namespace

HealthMonitor::HealthMonitor(Simulation &sim, const std::string &name,
                             HealthOptions options, SimObject *parent)
    : SimObject(sim, name, parent),
      conservationTrips(this, "conservation_trips",
                        "packet-conservation guard trips"),
      deadlockTrips(this, "deadlock_trips",
                    "progress-watchdog guard trips"),
      divergenceTrips(this, "divergence_trips",
                      "estimate-divergence guard trips"),
      timeoutTrips(this, "timeout_trips",
                   "backend wall-clock timeout trips"),
      transportTrips(this, "transport_trips",
                     "remote-backend transport failures caught"),
      backpressureTrips(this, "backpressure_trips",
                        "batches the remote server refused over quota"),
      internalTrips(this, "internal_trips",
                    "backend exceptions caught at the boundary"),
      degradations(this, "degradations",
                   "transitions into the degraded state"),
      recoveries(this, "recoveries",
                 "successful re-engagements of the backend"),
      recoveryFailures(this, "recovery_failures",
                       "probations ended by a fresh trip"),
      checkpoints(this, "checkpoints",
                  "latency-table checkpoints taken"),
      degradedQuanta(this, "degraded_quanta",
                     "quanta run without the detailed backend"),
      syntheticDeliveries(this, "synthetic_deliveries",
                          "deliveries synthesised from estimates"),
      stateValue(this, "state",
                 "0 healthy, 1 degraded, 2 probation",
                 [this] { return static_cast<double>(state_); }),
      options_(options)
{
}

std::optional<HealthMonitor::Trip>
HealthMonitor::checkBoundary(const Snapshot &s)
{
    // Conservation: every packet the backend accepted must be either
    // delivered or still in flight. Checked against the baseline so a
    // re-engaged backend is not re-tripped by pre-quarantine losses.
    if (options_.conservation && s.acc) {
        std::int64_t delta = lostPackets(*s.acc) - lost_baseline_;
        if (delta != 0) {
            ++conservationTrips;
            std::ostringstream os;
            os << "packet conservation violated: injected="
               << s.acc->injected << " delivered=" << s.acc->delivered
               << " in_flight=" << s.acc->in_flight << " ("
               << (delta > 0 ? "lost " : "duplicated ")
               << (delta > 0 ? delta : -delta) << ")";
            return Trip{ErrorKind::Conservation, os.str()};
        }
    }

    // Progress watchdog: packets in flight but no delivery progress
    // across enough cycles means the detailed network wedged.
    if (options_.watchdog_cycles > 0 && s.acc) {
        bool progressed = !have_last_delivered_ ||
                          s.acc->delivered != last_delivered_;
        last_delivered_ = s.acc->delivered;
        have_last_delivered_ = true;
        if (s.acc->in_flight > 0 && !progressed) {
            stalled_cycles_ += s.quantum_cycles;
            if (stalled_cycles_ >= options_.watchdog_cycles) {
                ++deadlockTrips;
                std::ostringstream os;
                os << "no delivery progress for " << stalled_cycles_
                   << " cycles with " << s.acc->in_flight
                   << " packets in flight (deadlock/livelock)";
                return Trip{ErrorKind::Deadlock, os.str()};
            }
        } else {
            stalled_cycles_ = 0;
        }
    }

    // Divergence: the tuned table left its physical bounds, or the
    // per-quantum estimate error blew up — the feedback is poisoned.
    if (options_.divergence_factor > 0.0 &&
        s.table_seed_ratio > options_.divergence_factor) {
        ++divergenceTrips;
        std::ostringstream os;
        os << "latency table diverged: max tuned/zero-load ratio "
           << s.table_seed_ratio << " exceeds "
           << options_.divergence_factor;
        return Trip{ErrorKind::Divergence, os.str()};
    }
    if (options_.divergence_error > 0.0 && s.err_samples > 0) {
        double mean = s.err_abs_sum / static_cast<double>(s.err_samples);
        if (mean > options_.divergence_error) {
            ++divergenceTrips;
            std::ostringstream os;
            os << "estimate error diverged: mean |error| " << mean
               << " cycles over " << s.err_samples
               << " deliveries exceeds " << options_.divergence_error;
            return Trip{ErrorKind::Divergence, os.str()};
        }
    }

    // Timeout: the backend burnt more wall-clock on this quantum than
    // the budget allows (the worker was already asked to abort).
    double budget_ms = options_.worker_timeout_ms * options_.timeout_scale;
    if (options_.worker_timeout_ms > 0.0 && s.worker_ms > budget_ms) {
        ++timeoutTrips;
        std::ostringstream os;
        os << "backend spent " << s.worker_ms
           << " ms on one quantum (budget " << budget_ms << " ms)";
        return Trip{ErrorKind::Timeout, os.str()};
    }

    return std::nullopt;
}

void
HealthMonitor::rebase(
    const std::optional<noc::NetworkModel::Accounting> &acc)
{
    lost_baseline_ = acc ? lostPackets(*acc) : 0;
    have_last_delivered_ = false;
    last_delivered_ = 0;
    stalled_cycles_ = 0;
}

void
HealthMonitor::noteTrip(ErrorKind kind, const std::string &detail)
{
    switch (kind) {
      case ErrorKind::Conservation:
        ++conservationTrips;
        break;
      case ErrorKind::Deadlock:
        ++deadlockTrips;
        break;
      case ErrorKind::Divergence:
        ++divergenceTrips;
        break;
      case ErrorKind::Timeout:
        ++timeoutTrips;
        break;
      case ErrorKind::Transport:
        ++transportTrips;
        // The server's frame-quota refusals travel as Transport
        // errors with a wire-contract message prefix; count them
        // separately so an operator can tell a flaky link from a
        // client that overruns the daemon's quotas.
        if (detail.find("backpressure:") != std::string::npos)
            ++backpressureTrips;
        break;
      default:
        ++internalTrips;
        break;
    }
}

void
HealthMonitor::noteDegraded()
{
    ++degradations;
    state_ = 1;
}

void
HealthMonitor::noteProbation()
{
    state_ = 2;
}

void
HealthMonitor::noteRecovered()
{
    ++recoveries;
    state_ = 0;
}

void
HealthMonitor::noteRecoveryFailure()
{
    ++recoveryFailures;
}

void
HealthMonitor::noteCheckpoint()
{
    ++checkpoints;
}

void
HealthMonitor::noteSynthesized(std::uint64_t n)
{
    syntheticDeliveries += static_cast<double>(n);
}

void
HealthMonitor::save(ArchiveWriter &aw) const
{
    aw.beginSection("health");
    aw.putU64(last_delivered_);
    aw.putBool(have_last_delivered_);
    aw.putU64(stalled_cycles_);
    aw.putI64(lost_baseline_);
    aw.putI64(state_);
    aw.endSection();
}

void
HealthMonitor::restore(ArchiveReader &ar)
{
    ar.expectSection("health");
    last_delivered_ = ar.getU64();
    have_last_delivered_ = ar.getBool();
    stalled_cycles_ = ar.getU64();
    lost_baseline_ = ar.getI64();
    state_ = static_cast<int>(ar.getI64());
    ar.endSection();
}

} // namespace cosim
} // namespace rasim
