/**
 * @file
 * The reciprocal-abstraction boundary: a quantum-synchronised bridge
 * coupling the coarse-grain full-system simulator with a network model
 * of arbitrary fidelity.
 *
 * Downward abstraction: the system's real protocol packets (with
 * injection times inside the quantum) are the only view the network
 * gets of the cores and caches.
 *
 * Upward abstraction: every detailed delivery re-tunes a per-(vnet,
 * distance) latency table the coarse side can consult — the reciprocal
 * feedback that keeps the abstract view calibrated by the detailed
 * component (and that E6 ablates).
 *
 * Synchronisation: in sync mode the system simulates quantum k, then
 * the network simulates quantum k and its deliveries apply at the
 * boundary (exact at quantum = 1 — the Monolithic reference). In
 * overlapped mode the network processes quantum k while the host
 * simulates k+1, adding one quantum of exchange slack in both
 * directions but allowing the coprocessor to run concurrently.
 */

#ifndef RASIM_COSIM_BRIDGE_HH
#define RASIM_COSIM_BRIDGE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "abstractnet/latency_table.hh"
#include "sim/flat_map.hh"
#include "cosim/health_monitor.hh"
#include "noc/network_model.hh"
#include "noc/params.hh"
#include "noc/topology.hh"
#include "sim/parallel_engine.hh"
#include "sim/serialize.hh"
#include "sim/sim_error.hh"
#include "sim/sim_object.hh"
#include "stats/distribution.hh"
#include "stats/stat.hh"

namespace rasim
{
namespace cosim
{

class QuantumBridge : public SimObject,
                      public noc::NetworkModel,
                      public Serializable
{
  public:
    /**
     * How the two simulators exchange timing.
     *
     * Conservative: packets cross the boundary physically — the system
     * waits for the detailed network's deliveries, which apply at
     * quantum boundaries. Exact at quantum 1 (the Monolithic
     * reference), but rounds every message round-trip up to the
     * quantum, so error grows quickly with the quantum (E5 shows
     * this).
     *
     * Reciprocal: the system's view of every packet is the tuned
     * latency table — deliveries are scheduled event-exactly from the
     * estimate at injection time, so the coarse side never stalls on
     * the detailed side. The detailed network simulates the same
     * traffic stream (per quantum, optionally on the coprocessor,
     * optionally overlapped) and its true latencies continuously
     * re-tune the table. This is the paper's contribution.
     */
    enum class Coupling
    {
        Conservative,
        Reciprocal,
    };

    struct Options
    {
        /** Exchange period in cycles. */
        Tick quantum = 256;
        /** Network quantum k runs while the host runs k+1. */
        bool overlap = false;
        /** Feed detailed deliveries into the latency table. */
        bool feedback = true;
        Coupling coupling = Coupling::Conservative;
        /**
         * Worker threads of a ParallelEngine the bridge installs on
         * the backend, so advanceCoupled() runs the detailed model's
         * data-parallel phases on the pool (combine with overlap to
         * overlap the pooled network with the host's next quantum).
         * Zero leaves the backend on its serial engine. Results are
         * bit-identical either way — see the determinism contract in
         * sim/step_engine.hh.
         */
        int engine_workers = 0;
        /** Guard thresholds and degradation policy (see
         *  HealthOptions); health.enabled=false disables the monitor
         *  entirely. */
        HealthOptions health;
    };

    /**
     * Degradation state machine, driven by the health monitor's guard
     * verdicts at quantum boundaries:
     *
     *   Healthy --trip--> Degraded --cooldown--> Probation
     *   Probation --clean quanta--> Healthy (backoff resets)
     *   Probation --trip--> Degraded (cooldown doubles, capped)
     *
     * Degraded quanta run without the detailed backend: the system is
     * served tuned-abstract estimates from the last-good checkpoint of
     * the latency table (Reciprocal), or synthesised estimate-based
     * deliveries (Conservative). With health.recovery_quanta = 0 a
     * degraded bridge never re-engages the backend.
     */
    enum class HealthState
    {
        Healthy,
        Degraded,
        Probation,
    };

    QuantumBridge(Simulation &sim, const std::string &name,
                  noc::NetworkModel &backend,
                  const noc::NocParams &net_params, Options options,
                  SimObject *parent = nullptr);
    ~QuantumBridge() override;

    /** @name NetworkModel facade seen by the full system */
    /// @{
    void inject(const noc::PacketPtr &pkt) override;
    void advanceTo(Tick t) override;
    void setDeliveryHandler(DeliveryHandler handler) override;
    Tick curTime() const override;
    bool idle() const override;
    std::size_t numNodes() const override;
    /// @}

    /**
     * Drive the coupled pair — event simulator and network — forward
     * to tick @p t in quantum steps. The only sanctioned way to
     * advance a co-simulation.
     */
    void advanceCoupled(Tick t);

    /**
     * Observer invoked (on the main thread, at boundaries) for every
     * packet the detailed backend delivered — tooling hook for trace
     * capture and error analysis; does not affect coupling.
     */
    void
    setDeliveryObserver(DeliveryHandler observer)
    {
        observer_ = std::move(observer);
    }

    /** The reciprocal feedback target. */
    abstractnet::LatencyTable &table() { return table_; }
    const abstractnet::LatencyTable &table() const { return table_; }

    const Options &options() const { return options_; }
    noc::NetworkModel &backend() { return backend_; }

    HealthState healthState() const { return state_; }
    /** Null when health.enabled is false. */
    HealthMonitor *health() { return health_.get(); }
    const HealthMonitor *health() const { return health_.get(); }

    /**
     * Checkpoint the coupling state. Only valid at a quantum boundary
     * (after advanceCoupled returned): pending_deliveries_ must be
     * empty, which the save asserts. Wall-clock accounting (hostNs,
     * netNs, the last worker budget sample) is intentionally excluded
     * from the bit-identical contract.
     */
    void save(ArchiveWriter &aw) const override;
    void restore(ArchiveReader &ar) override;

    /** Host nanoseconds spent inside full-system event simulation. */
    double hostNs() const { return host_ns_; }
    /** Host nanoseconds spent advancing the network backend. */
    double netNs() const { return net_ns_; }
    /** Quanta executed by advanceCoupled(). */
    std::uint64_t quantaRun() const { return quanta_; }

    stats::Scalar packetsForwarded;
    stats::Scalar packetsDelivered;
    /** Conservative: cycles between true delivery and boundary
     *  application. Reciprocal: staleness of the feedback (cycles
     *  between detailed delivery and its table update). */
    stats::Distribution deliverySlack;
    /** Reciprocal coupling only: signed error of the estimate the
     *  system consumed versus the detailed network's true latency. */
    stats::Distribution estimateError;

  private:
    void runQuantumSync(Tick q_end);
    void runQuantumOverlapped(Tick q_end);
    void runQuantumDegraded(Tick q_end);
    void applyDeliveries(Tick boundary);
    void onBackendDelivery(const noc::PacketPtr &pkt);

    /**
     * Advance the backend to @p q_end under the health monitor: backend
     * panic()/fatal() surface as catchable SimError, and with a
     * configured wall-clock budget the advance runs on a joinable
     * worker that is cooperatively preempted (requestAbort) on
     * overrun. Records the elapsed wall-clock in last_worker_ms_.
     * @throws SimError on backend failure or budget overrun.
     */
    void advanceBackendChecked(Tick q_end);

    /** Evaluate the guard set at a boundary; returns the trip if any
     *  guard fired (already counted in the monitor's stats). */
    std::optional<std::pair<ErrorKind, std::string>>
    boundaryHealthCheck(Tick q_end, Tick quantum_cycles);

    /** React to a tripped guard: quarantine the backend, or rethrow
     *  when health.degrade is off. */
    void handleTrip(ErrorKind kind, const std::string &detail,
                    Tick q_end);
    void quarantine(Tick q_end);
    void beginProbation();

    /** Queue an estimate-based delivery for @p pkt (Conservative
     *  coupling while degraded); never delivered before @p floor. */
    void scheduleSynthetic(const noc::PacketPtr &pkt, Tick floor);
    /** Apply queued synthetic deliveries due by @p boundary. */
    void drainDegraded(Tick boundary);

    noc::NetworkModel &backend_;
    Options options_;
    noc::NocParams net_params_;
    /** Pool driving the backend's phases (engine_workers > 0). */
    std::unique_ptr<ParallelEngine> engine_;
    std::unique_ptr<noc::Topology> topo_;
    abstractnet::LatencyTable table_;
    /** Last-good copy of table_, restored on quarantine. */
    abstractnet::LatencyTable checkpoint_;
    std::unique_ptr<HealthMonitor> health_;
    DeliveryHandler system_handler_;
    DeliveryHandler observer_;

    /** Injections buffered during the current host quantum (overlap
     *  mode only). */
    std::vector<noc::PacketPtr> pending_injections_;
    /** Deliveries produced by the backend, applied at the boundary. */
    std::vector<noc::PacketPtr> pending_deliveries_;

    /** @name Degradation state (health monitoring only) */
    /// @{
    HealthState state_ = HealthState::Healthy;
    /** Degraded quanta left before probation (0 = no recovery due). */
    std::uint64_t cooldown_ = 0;
    /** Clean probation quanta left before declaring recovery. */
    std::uint64_t probation_left_ = 0;
    /** Cooldown multiplier; doubles on each failed recovery. */
    std::uint64_t backoff_ = 1;
    std::uint64_t boundaries_since_checkpoint_ = 0;
    /** |estimate error| accumulated since the last boundary. */
    double err_abs_window_ = 0.0;
    std::uint64_t err_samples_window_ = 0;
    /** Wall-clock the backend burnt on the last quantum (ms). */
    double last_worker_ms_ = 0.0;
    /** Conservative coupling: packets the backend owes the system,
     *  so a quarantine can serve them from estimates and late real
     *  deliveries after re-engagement are not applied twice. */
    FlatMap<PacketId, noc::PacketPtr> outstanding_;
    /** Synthetic deliveries waiting for their due boundary. */
    std::vector<noc::PacketPtr> degraded_out_;
    /// @}

    double host_ns_ = 0.0;
    double net_ns_ = 0.0;
    std::uint64_t quanta_ = 0;
};

} // namespace cosim
} // namespace rasim

#endif // RASIM_COSIM_BRIDGE_HH
