/**
 * @file
 * Top-level assembly: cores + memory hierarchy + a network model of
 * the chosen fidelity, coupled through the reciprocal-abstraction
 * bridge. This is the public entry point examples and benchmarks use.
 */

#ifndef RASIM_COSIM_FULL_SYSTEM_HH
#define RASIM_COSIM_FULL_SYSTEM_HH

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "abstractnet/abstract_network.hh"
#include "cosim/bridge.hh"
#include "cpu/core.hh"
#include "mem/memory_system.hh"
#include "noc/cycle_network.hh"
#include "noc/remote/remote_network.hh"
#include "sim/config.hh"
#include "sim/fault_injector.hh"
#include "sim/simulation.hh"
#include "workload/app_profiles.hh"

namespace rasim
{
namespace cosim
{

/** Network fidelity / integration modes (see DESIGN.md section 4). */
enum class Mode
{
    /** Static analytical network model (the paper's baseline). */
    Abstract,
    /** Analytical model driven by a reciprocally tuned table. */
    TunedAbstract,
    /** Reciprocal co-simulation with the cycle-level network. */
    CosimCycle,
    /** Co-simulation with the coprocessor engine, overlapped. */
    CosimGpu,
    /** Cycle-level network at quantum 1: the exact reference. */
    Monolithic,
};

Mode modeFromName(const std::string &name);
const char *toString(Mode mode);

/**
 * Crash-safe periodic checkpointing ("checkpoint.*" keys). Checkpoints
 * are taken at quantum boundaries — the only globally consistent
 * points of the coupled pair — and written atomically (temp file,
 * fsync, rename) so a crash mid-write never clobbers the previous
 * image.
 */
struct CheckpointOptions
{
    /** Take a checkpoint every N run-loop quanta (0 = off). */
    std::uint64_t interval_quanta = 0;
    /** Directory receiving ckpt-<tick>.ckpt images. */
    std::string dir = "checkpoints";
    /** Retained images; older ones are deleted after each write. */
    std::uint64_t keep = 3;
    /** Boot from this image (or the newest in this directory) instead
     *  of cold-starting. Corrupt or mismatched images fall back to the
     *  next-oldest retained checkpoint. */
    std::string restore;

    /** Read the "checkpoint.*" keys. */
    static CheckpointOptions fromConfig(const Config &cfg);
};

struct FullSystemOptions
{
    Mode mode = Mode::CosimCycle;
    std::string app = "fft";
    /** Memory operations per core; 0 takes the preset's default. */
    std::uint64_t ops_per_core = 0;
    /** Exchange quantum for the co-simulation modes. */
    Tick quantum = 256;
    /** Reciprocal feedback into the latency table. */
    bool feedback = true;
    /**
     * Force conservative (boundary-blocking) coupling instead of the
     * reciprocal scheme in the co-simulation modes — the baseline the
     * E5 quantum sweep ablates against.
     */
    bool conservative = false;
    /** Worker threads of the pool engine driving the detailed
     *  network's phases. Always used by CosimGpu; other cycle-level
     *  modes use it when @ref parallel is set. */
    int engine_workers = 2;
    /**
     * Run the detailed network's phases on the worker pool in the
     * non-overlapped cycle-level modes too (CosimCycle, Monolithic).
     * Bit-identical to serial execution by the determinism contract;
     * defaults off so single-core hosts skip the dispatch overhead.
     */
    bool parallel = false;
    /**
     * Where the cycle-level backend runs: "inproc" hosts it in this
     * process, "remote" drives a rasim-nocd server over the quantum
     * RPC protocol ("network.backend"). Only meaningful in the
     * cycle-network modes; the abstract modes reject "remote".
     */
    std::string network_backend = "inproc";
    /** Transport configuration of the remote backend ("remote.*"). */
    noc::remote::RemoteOptions remote;
    noc::NocParams noc;
    mem::MemParams mem;
    /** Health-guard thresholds and degradation policy ("health.*"). */
    HealthOptions health;
    /** Deterministic fault injection ("fault.*"); when enabled the
     *  injector is interposed between the bridge and the backend. */
    FaultOptions fault;
    /** Periodic crash-safe checkpointing ("checkpoint.*"). */
    CheckpointOptions checkpoint;

    static FullSystemOptions fromConfig(const Config &cfg);
};

class FullSystem
{
  public:
    FullSystem(Config cfg, FullSystemOptions options);
    ~FullSystem();

    /**
     * Run until every core finished and the protocol drained, or the
     * tick limit is hit.
     * @return the tick the last core finished (the run's "runtime").
     */
    Tick run(Tick limit = 50000000);

    bool allCoresDone() const;

    /** Mean end-to-end packet latency observed by the network. */
    double meanPacketLatency() const;
    /** Mean packet latency per message class (vnet). */
    double meanPacketLatency(noc::MsgClass cls) const;
    /** Packets the network delivered. */
    std::uint64_t packetsDelivered() const;

    Simulation &simulation() { return *sim_; }
    QuantumBridge &bridge() { return *bridge_; }
    mem::MemorySystem &memory() { return *memory_; }
    cpu::SyntheticCore &core(std::size_t i) { return *cores_[i]; }
    std::size_t numCores() const { return cores_.size(); }
    const FullSystemOptions &options() const { return options_; }

    /** Non-null in the cycle-network modes. */
    noc::CycleNetwork *cycleNetwork() { return cycle_net_.get(); }
    /** Non-null in the abstract modes. */
    abstractnet::AbstractNetwork *abstractNetwork()
    {
        return abstract_net_.get();
    }
    /** Non-null when network.backend=remote hosts the cycle network
     *  in a rasim-nocd server. */
    noc::remote::RemoteNetwork *remoteNetwork()
    {
        return remote_net_.get();
    }
    /** Non-null when fault.enabled interposed the injector. */
    FaultInjector *faultInjector() { return fault_injector_.get(); }

    /** @name Checkpoint / restore */
    /// @{
    /**
     * Archive the full dynamic state. Only valid at a quantum boundary
     * (construction time or after run() / advanceCoupled returned).
     */
    void save(ArchiveWriter &aw) const;
    /** Seal a complete archive image onto @p os. */
    void saveTo(std::ostream &os) const;

    /**
     * Restore this (freshly constructed, never run) system from a
     * complete archive image. Validation — magic, version, CRC and the
     * configuration fingerprint — happens before any state is touched;
     * a failed candidate leaves the system untouched and @p why set.
     * Structural errors after validation panic: the CRC passed, so a
     * short or misshapen body is a programming error, not bad input.
     */
    bool restoreFromBytes(std::string bytes, std::string *why = nullptr);

    /**
     * Write an atomic checkpoint of the current state into
     * checkpoint.dir and rotate old images down to checkpoint.keep.
     * @return the path of the image written.
     */
    std::string writeCheckpoint();
    /// @}

  private:
    bool restoreArchive(ArchiveReader &ar, std::string *why);
    /** Boot-time restore honouring the fallback chain. */
    void restoreFromPath(const std::string &path);
    void maybeCheckpoint(Tick t);
    void rotateCheckpoints();

    FullSystemOptions options_;
    std::unique_ptr<Simulation> sim_;
    std::unique_ptr<noc::CycleNetwork> cycle_net_;
    std::unique_ptr<noc::remote::RemoteNetwork> remote_net_;
    std::unique_ptr<abstractnet::AbstractNetwork> abstract_net_;
    std::unique_ptr<FaultInjector> fault_injector_;
    std::unique_ptr<QuantumBridge> bridge_;
    std::unique_ptr<mem::MemorySystem> memory_;
    std::vector<std::unique_ptr<cpu::SyntheticCore>> cores_;
};

} // namespace cosim
} // namespace rasim

#endif // RASIM_COSIM_FULL_SYSTEM_HH
