/**
 * @file
 * The co-simulation health subsystem: machine-checked invariants
 * evaluated at every quantum boundary of QuantumBridge::advanceCoupled.
 *
 * Guards (each individually configurable through "health.*" keys):
 *
 *  - conservation: the backend must satisfy
 *        injected == delivered + in_flight
 *    (relative to the baseline at the last re-engagement) — a dropped
 *    or duplicated packet trips it;
 *  - progress watchdog: no delivery progress for a configurable
 *    number of cycles while packets are in flight means the detailed
 *    network dead- or livelocked;
 *  - divergence: the reciprocal latency table left its trusted bounds
 *    (tuned estimate >> zero-load seed) or the per-quantum mean
 *    |estimate error| blew up — poisoned feedback;
 *  - timeout: the backend burnt more wall-clock on one quantum than
 *    the configured budget (the overlapped worker is additionally
 *    preempted via NetworkModel::requestAbort()).
 *
 * A tripped guard quarantines the detailed backend: the bridge falls
 * back to tuned-abstract estimates from the last-good checkpoint of
 * the LatencyTable and optionally re-engages the backend after a
 * cooldown (probation with exponential backoff). All events are
 * exported as statistics under the bridge's "health" group.
 */

#ifndef RASIM_COSIM_HEALTH_MONITOR_HH
#define RASIM_COSIM_HEALTH_MONITOR_HH

#include <cstdint>
#include <optional>
#include <string>

#include "noc/network_model.hh"
#include "sim/serialize.hh"
#include "sim/sim_error.hh"
#include "sim/sim_object.hh"
#include "stats/stat.hh"

namespace rasim
{
namespace cosim
{

/** Guard thresholds and degradation policy ("health.*" keys). */
struct HealthOptions
{
    /** Master switch: construct the monitor at all. */
    bool enabled = true;
    /** Packet-conservation check at boundaries. */
    bool conservation = true;
    /** Cycles without delivery progress (while packets are in flight)
     *  before the watchdog declares deadlock/livelock (0 = off). */
    Tick watchdog_cycles = 100000;
    /** Largest tolerated tuned-estimate / zero-load-seed ratio
     *  (0 = off). */
    double divergence_factor = 64.0;
    /** Largest tolerated per-quantum mean |estimate error| in cycles
     *  (0 = off; reciprocal coupling only). */
    double divergence_error = 0.0;
    /** Wall-clock budget per backend quantum in milliseconds
     *  (0 = off). */
    double worker_timeout_ms = 0.0;
    /**
     * Multiplier applied to worker_timeout_ms wherever it is enforced
     * (the bridge's preemption budget and the boundary timeout guard).
     * Lets slow hosts — sanitizer builds, loaded CI runners, remote
     * backends over congested links — loosen the wall-clock watchdog
     * without retuning every config. The default 1.0 changes nothing,
     * so runs stay bit-identical unless explicitly scaled.
     */
    double timeout_scale = 1.0;
    /** Checkpoint the latency table every N healthy boundaries. */
    std::uint64_t checkpoint_quanta = 8;
    /** Quanta to stay quarantined before re-engaging the backend
     *  (0 = never re-engage once degraded). */
    std::uint64_t recovery_quanta = 64;
    /** Clean quanta on probation before declaring recovery. */
    std::uint64_t probation_quanta = 8;
    /** Cap on the exponential cooldown backoff multiplier. */
    std::uint64_t max_backoff = 64;
    /** false: a tripped guard raises SimError instead of degrading. */
    bool degrade = true;

    /** Read the "health.*" keys. */
    static HealthOptions fromConfig(const Config &cfg);
};

/**
 * Evaluates the guard set against per-boundary snapshots and owns the
 * health statistics. The degradation/recovery state machine itself
 * lives in QuantumBridge; the bridge reports its transitions here so
 * every event lands in the stats dump.
 */
class HealthMonitor : public SimObject
{
  public:
    /** Everything a boundary check needs, gathered by the bridge. */
    struct Snapshot
    {
        /** Backend packet accounting (nullopt: unauditable model). */
        std::optional<noc::NetworkModel::Accounting> acc;
        /** Cycles this boundary advanced the coupled pair. */
        Tick quantum_cycles = 0;
        /** Sum of |estimate error| samples since the last boundary. */
        double err_abs_sum = 0.0;
        /** Number of those samples. */
        std::uint64_t err_samples = 0;
        /** LatencyTable::maxSeedRatio() of the live table. */
        double table_seed_ratio = 1.0;
        /** Wall-clock the backend burnt on this quantum (ms). */
        double worker_ms = 0.0;
    };

    /** A tripped guard: what and why, ready to raise or log. */
    struct Trip
    {
        ErrorKind kind;
        std::string detail;
    };

    HealthMonitor(Simulation &sim, const std::string &name,
                  HealthOptions options, SimObject *parent);

    const HealthOptions &options() const { return options_; }

    /**
     * Evaluate every enabled guard against @p s. Returns the first
     * trip (conservation, deadlock, divergence, timeout — in that
     * order) or nullopt when healthy. Not idempotent: feeds the
     * watchdog's progress tracking.
     */
    std::optional<Trip> checkBoundary(const Snapshot &s);

    /**
     * Re-baseline the guards after the backend is re-engaged: packets
     * lost before the quarantine stay forgiven and the watchdog
     * restarts, so a recovered run is not re-tripped by old damage.
     */
    void rebase(const std::optional<noc::NetworkModel::Accounting> &acc);

    /** Count a trip detected outside checkBoundary (backend threw).
     *  @p detail distinguishes sub-causes: a Transport trip whose
     *  message carries the server's "backpressure:" marker (a frame
     *  quota refused the batch) also counts as a backpressure trip. */
    void noteTrip(ErrorKind kind,
                  const std::string &detail = std::string());

    /** Checkpoint watchdog/conservation tracking (stats are archived
     *  with the global stats tree). */
    void save(ArchiveWriter &aw) const;
    void restore(ArchiveReader &ar);

    /** @name State-machine transitions, reported by the bridge */
    /// @{
    void noteDegraded();
    void noteProbation();
    void noteRecovered();
    void noteRecoveryFailure();
    void noteCheckpoint();
    void noteDegradedQuantum() { ++degradedQuanta; }
    void noteSynthesized(std::uint64_t n);
    /// @}

    /** @name Health statistics (exported under <bridge>.health) */
    /// @{
    stats::Scalar conservationTrips;
    stats::Scalar deadlockTrips;
    stats::Scalar divergenceTrips;
    stats::Scalar timeoutTrips;
    stats::Scalar transportTrips;
    stats::Scalar backpressureTrips;
    stats::Scalar internalTrips;
    stats::Scalar degradations;
    stats::Scalar recoveries;
    stats::Scalar recoveryFailures;
    stats::Scalar checkpoints;
    stats::Scalar degradedQuanta;
    stats::Scalar syntheticDeliveries;
    stats::Value stateValue;
    /// @}

  private:
    HealthOptions options_;

    /** Watchdog progress tracking. */
    std::uint64_t last_delivered_ = 0;
    bool have_last_delivered_ = false;
    Tick stalled_cycles_ = 0;

    /** Conservation baseline: packets lost before the last rebase
     *  stay forgiven (signed: negative means duplication). */
    std::int64_t lost_baseline_ = 0;

    /** 0 healthy, 1 degraded, 2 probation (mirrors the bridge). */
    int state_ = 0;
};

} // namespace cosim
} // namespace rasim

#endif // RASIM_COSIM_HEALTH_MONITOR_HH
