#include "cosim/bridge.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <future>
#include <sstream>

#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace rasim
{
namespace cosim
{

namespace
{

double
elapsedNs(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::nano>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

QuantumBridge::QuantumBridge(Simulation &sim, const std::string &name,
                             noc::NetworkModel &backend,
                             const noc::NocParams &net_params,
                             Options options, SimObject *parent)
    : SimObject(sim, name, parent),
      packetsForwarded(this, "packets_forwarded",
                       "packets crossing the boundary downwards"),
      packetsDelivered(this, "packets_delivered",
                       "packets crossing the boundary upwards"),
      deliverySlack(this, "delivery_slack",
                    "boundary application delay (cycles)"),
      estimateError(this, "estimate_error",
                    "consumed estimate minus true latency (cycles)"),
      backend_(backend), options_(options), net_params_(net_params),
      topo_(noc::makeTopology(net_params.topology, net_params.columns,
                              net_params.rows)),
      table_(net_params, net_params.columns + net_params.rows + 2,
             sim.config().getDouble("abstract.ewma_alpha", 0.05),
             sim.config().getString("abstract.granularity",
                                    "distance") == "pair"
                 ? abstractnet::LatencyTable::Granularity::Pair
                 : abstractnet::LatencyTable::Granularity::Distance,
             net_params.numNodes()),
      checkpoint_(table_)
{
    if (options_.quantum == 0)
        fatal("co-simulation quantum must be positive");
    if (options_.engine_workers < 0)
        fatal("co-simulation engine worker count must be non-negative");
    if (options_.engine_workers > 0) {
        engine_ =
            std::make_unique<ParallelEngine>(options_.engine_workers);
        backend_.setEngine(engine_.get());
    }
    if (options_.health.enabled) {
        health_ = std::make_unique<HealthMonitor>(
            sim, "health", options_.health, this);
    }
    backend_.setDeliveryHandler(
        [this](const noc::PacketPtr &pkt) { onBackendDelivery(pkt); });
}

QuantumBridge::~QuantumBridge()
{
    // The backend usually outlives the bridge; detach the pool before
    // it is destroyed so the backend falls back to serial execution.
    if (engine_)
        backend_.setEngine(nullptr);
}

void
QuantumBridge::inject(const noc::PacketPtr &pkt)
{
    ++packetsForwarded;
    if (options_.coupling == Coupling::Reciprocal) {
        // Upward abstraction: the system consumes the table estimate
        // immediately, event-exactly, and never waits on the detailed
        // model.
        int hops = topo_->minHops(pkt->src, pkt->dst);
        std::uint32_t flits =
            net_params_.flitsPerPacket(pkt->size_bytes);
        double est = table_.estimate(static_cast<int>(pkt->cls), hops,
                                     flits, pkt->src, pkt->dst);
        auto est_ticks =
            std::max<Tick>(1, static_cast<Tick>(std::llround(est)));
        pkt->enter_tick = pkt->inject_tick;
        pkt->hops = static_cast<std::uint32_t>(hops);
        pkt->deliver_tick = pkt->inject_tick + est_ticks;
        if (system_handler_)
            system_handler_(pkt);

        // Quarantined: the system keeps running on the checkpointed
        // table (the Tuned-abstract fallback); no clone reaches the
        // detailed backend until it is re-engaged.
        if (state_ == HealthState::Degraded)
            return;

        // Downward abstraction: the detailed network sees the same
        // contextual traffic stream through a clone whose true
        // latency will re-tune the table.
        noc::PacketPtr clone = noc::clonePacket(*pkt);
        clone->enter_tick = 0;
        clone->deliver_tick = 0;
        clone->hops = 0;
        clone->context = est_ticks; // remember the consumed estimate
        if (options_.overlap)
            pending_injections_.push_back(clone);
        else
            backend_.inject(clone);
        return;
    }
    if (state_ == HealthState::Degraded) {
        // Conservative fallback: the detailed network is quarantined,
        // so the delivery is synthesised from the tuned estimate.
        scheduleSynthetic(pkt, 0);
        return;
    }
    if (health_)
        outstanding_.emplace(pkt->id, pkt);
    if (options_.overlap) {
        // The backend may be advancing on the worker right now; hold
        // the packet until the boundary.
        pending_injections_.push_back(pkt);
        return;
    }
    backend_.inject(pkt);
}

void
QuantumBridge::advanceTo(Tick t)
{
    advanceCoupled(t);
}

void
QuantumBridge::setDeliveryHandler(DeliveryHandler handler)
{
    system_handler_ = std::move(handler);
}

Tick
QuantumBridge::curTime() const
{
    return backend_.curTime();
}

bool
QuantumBridge::idle() const
{
    return backend_.idle() && pending_injections_.empty() &&
           pending_deliveries_.empty() && degraded_out_.empty();
}

std::size_t
QuantumBridge::numNodes() const
{
    return backend_.numNodes();
}

void
QuantumBridge::onBackendDelivery(const noc::PacketPtr &pkt)
{
    // Runs on the thread advancing the backend (worker in overlapped
    // mode); defer everything that touches shared state to the
    // boundary.
    pending_deliveries_.push_back(pkt);
}

void
QuantumBridge::applyDeliveries(Tick boundary)
{
    bool reciprocal = options_.coupling == Coupling::Reciprocal;
    bool track = health_ && !reciprocal;
    for (const noc::PacketPtr &pkt : pending_deliveries_) {
        ++packetsDelivered;
        deliverySlack.sample(
            static_cast<double>(boundary - pkt->deliver_tick));
        if (observer_)
            observer_(pkt);
        if (options_.feedback) {
            table_.observe(static_cast<int>(pkt->cls),
                           static_cast<int>(pkt->hops),
                           net_params_.flitsPerPacket(pkt->size_bytes),
                           pkt->latency(), pkt->src, pkt->dst);
        }
        if (reciprocal) {
            // The system already received this packet from the
            // estimate; only the feedback matters here.
            double err = static_cast<double>(pkt->context) -
                         static_cast<double>(pkt->latency());
            estimateError.sample(err);
            err_abs_window_ += std::abs(err);
            ++err_samples_window_;
            continue;
        }
        if (track && outstanding_.erase(pkt->id) == 0) {
            // A quarantine already served this packet from the
            // estimate; the late real delivery still calibrates the
            // table (above) but must not reach the system twice.
            continue;
        }
        if (system_handler_)
            system_handler_(pkt);
    }
    pending_deliveries_.clear();
}

void
QuantumBridge::advanceBackendChecked(Tick q_end)
{
    auto t1 = std::chrono::steady_clock::now();
    double budget_ms = health_ ? options_.health.worker_timeout_ms *
                                     options_.health.timeout_scale
                               : 0.0;
    if (budget_ms <= 0.0) {
        if (health_) {
            // Backend panic()/fatal() become catchable SimError so a
            // misbehaving model degrades instead of killing the run.
            logging::ThrowOnError guard;
            backend_.advanceTo(q_end);
        } else {
            backend_.advanceTo(q_end);
        }
        double ns = elapsedNs(t1);
        net_ns_ += ns;
        last_worker_ms_ = ns / 1e6;
        return;
    }

    // Budgeted advance: run on a joinable worker so a hung backend can
    // be preempted (cooperatively, via requestAbort) instead of
    // wedging the host forever.
    std::promise<void> done;
    auto fut = done.get_future();
    std::thread worker([this, q_end, &done] {
        try {
            logging::ThrowOnError guard;
            backend_.advanceTo(q_end);
            done.set_value();
        } catch (...) {
            done.set_exception(std::current_exception());
        }
    });
    auto budget = std::chrono::duration<double, std::milli>(budget_ms);
    bool timed_out =
        fut.wait_for(budget) == std::future_status::timeout;
    if (timed_out)
        backend_.requestAbort();
    worker.join();
    double ns = elapsedNs(t1);
    net_ns_ += ns;
    last_worker_ms_ = ns / 1e6;
    if (timed_out) {
        try {
            fut.get();
        } catch (...) {
            // The abort itself may surface as an exception; the trip
            // below already tells the whole story.
        }
        std::ostringstream os;
        os << "backend exceeded its " << budget_ms
           << " ms wall-clock budget on the quantum ending at tick "
           << q_end;
        throw SimError(ErrorKind::Timeout, os.str());
    }
    fut.get();
}

void
QuantumBridge::runQuantumSync(Tick q_end)
{
    auto t0 = std::chrono::steady_clock::now();
    sim().run(q_end);
    host_ns_ += elapsedNs(t0);

    advanceBackendChecked(q_end);

    applyDeliveries(q_end);
}

void
QuantumBridge::runQuantumOverlapped(Tick q_end)
{
    // Release the injections gathered during the previous host
    // quantum, then let the backend chew on them while the host
    // simulates this quantum.
    Tick boundary = backend_.curTime();
    for (const noc::PacketPtr &pkt : pending_injections_) {
        if (options_.coupling == Coupling::Reciprocal) {
            // Clones exist only to calibrate the table; shift them to
            // the boundary so the one-quantum hand-off slack is not
            // mistaken for genuine source queueing.
            pkt->inject_tick = std::max(pkt->inject_tick, boundary);
        }
        backend_.inject(pkt);
    }
    pending_injections_.clear();

    bool monitored = static_cast<bool>(health_);
    std::promise<void> done;
    auto fut = done.get_future();
    std::thread net_worker([this, q_end, &done, monitored] {
        auto t1 = std::chrono::steady_clock::now();
        try {
            if (monitored) {
                logging::ThrowOnError guard;
                backend_.advanceTo(q_end);
            } else {
                backend_.advanceTo(q_end);
            }
            double ns = elapsedNs(t1);
            net_ns_ += ns;
            last_worker_ms_ = ns / 1e6;
            done.set_value();
        } catch (...) {
            double ns = elapsedNs(t1);
            net_ns_ += ns;
            last_worker_ms_ = ns / 1e6;
            done.set_exception(std::current_exception());
        }
    });

    auto t0 = std::chrono::steady_clock::now();
    try {
        sim().run(q_end);
    } catch (...) {
        // Host-side failure mid-overlap: never leak the worker (or the
        // deliveries it already produced — they stay queued in
        // pending_deliveries_ for whoever catches this).
        backend_.requestAbort();
        net_worker.join();
        host_ns_ += elapsedNs(t0);
        throw;
    }
    host_ns_ += elapsedNs(t0);

    double budget_ms = health_ ? options_.health.worker_timeout_ms *
                                     options_.health.timeout_scale
                               : 0.0;
    bool timed_out = false;
    if (budget_ms > 0.0) {
        // The worker already had the whole host quantum; grant the
        // remaining wall-clock budget before preempting it.
        auto budget = std::chrono::duration<double, std::milli>(budget_ms);
        timed_out = fut.wait_for(budget) == std::future_status::timeout;
        if (timed_out)
            backend_.requestAbort();
    }
    net_worker.join();
    if (timed_out) {
        try {
            fut.get();
        } catch (...) {
        }
        std::ostringstream os;
        os << "overlapped backend worker exceeded its " << budget_ms
           << " ms wall-clock budget on the quantum ending at tick "
           << q_end;
        throw SimError(ErrorKind::Timeout, os.str());
    }
    fut.get();
    applyDeliveries(q_end);
}

void
QuantumBridge::runQuantumDegraded(Tick q_end)
{
    auto t0 = std::chrono::steady_clock::now();
    sim().run(q_end);
    host_ns_ += elapsedNs(t0);

    health_->noteDegradedQuantum();
    drainDegraded(q_end);

    if (cooldown_ > 0 && --cooldown_ == 0)
        beginProbation();
}

std::optional<std::pair<ErrorKind, std::string>>
QuantumBridge::boundaryHealthCheck(Tick q_end, Tick quantum_cycles)
{
    // Synthetic deliveries can outlive the degraded window; serve the
    // due ones even after the backend re-engaged.
    drainDegraded(q_end);

    HealthMonitor::Snapshot s;
    s.acc = backend_.accounting();
    s.quantum_cycles = quantum_cycles;
    s.err_abs_sum = err_abs_window_;
    s.err_samples = err_samples_window_;
    // The divergence guard protects the estimates the system consumes;
    // under Conservative coupling the system never consumes them, and
    // the table legitimately tracks boundary-rounded latencies far
    // above zero-load, so the probe only applies to Reciprocal runs.
    if (options_.coupling == Coupling::Reciprocal)
        s.table_seed_ratio = table_.maxSeedRatio();
    s.worker_ms = last_worker_ms_;
    err_abs_window_ = 0.0;
    err_samples_window_ = 0;

    auto trip = health_->checkBoundary(s);
    if (trip)
        return std::make_pair(trip->kind, trip->detail);

    // A clean boundary: advance probation and take the periodic
    // last-good checkpoint of the reciprocal table.
    if (state_ == HealthState::Probation && probation_left_ > 0 &&
        --probation_left_ == 0) {
        state_ = HealthState::Healthy;
        backoff_ = 1;
        health_->noteRecovered();
        inform("health: backend re-engaged and recovered at tick ",
               q_end);
    }
    if (++boundaries_since_checkpoint_ >=
        options_.health.checkpoint_quanta) {
        checkpoint_ = table_;
        boundaries_since_checkpoint_ = 0;
        health_->noteCheckpoint();
    }
    return std::nullopt;
}

void
QuantumBridge::handleTrip(ErrorKind kind, const std::string &detail,
                          Tick q_end)
{
    warn("health: ", toString(kind), " guard tripped at tick ", q_end,
         ": ", detail);
    if (!options_.health.degrade)
        throw SimError(kind, detail);
    quarantine(q_end);
}

void
QuantumBridge::quarantine(Tick q_end)
{
    // Real deliveries collected this quantum still count — apply them
    // before the rollback (a poisoned sample folded into the table is
    // undone by the checkpoint restore below).
    applyDeliveries(q_end);

    if (state_ == HealthState::Probation) {
        health_->noteRecoveryFailure();
        backoff_ = std::min(backoff_ * 2, options_.health.max_backoff);
    }
    state_ = HealthState::Degraded;
    health_->noteDegraded();
    cooldown_ = options_.health.recovery_quanta * backoff_;

    // Tuned-abstract fallback: estimates come from the last-good
    // checkpoint from here on.
    table_ = checkpoint_;
    boundaries_since_checkpoint_ = 0;
    err_abs_window_ = 0.0;
    err_samples_window_ = 0;

    // Clones (Reciprocal) or packets (Conservative) buffered for a
    // backend that will not run; the conservative ones are served from
    // estimates below via outstanding_.
    pending_injections_.clear();

    if (options_.coupling == Coupling::Conservative) {
        // Everything the quarantined backend still owes the system is
        // synthesised from estimates, due no earlier than now (id
        // order — FlatMap iterates ascending).
        for (const auto &[id, pkt] : outstanding_)
            scheduleSynthetic(pkt, q_end);
        outstanding_.clear();
        drainDegraded(q_end);
    }

    if (cooldown_ > 0) {
        inform("health: detailed backend quarantined at tick ", q_end,
               "; retrying after ", cooldown_, " quanta");
    } else {
        inform("health: detailed backend quarantined at tick ", q_end,
               "; running tuned-abstract for the rest of the run");
    }
}

void
QuantumBridge::beginProbation()
{
    state_ = HealthState::Probation;
    probation_left_ = options_.health.probation_quanta;
    health_->noteProbation();
    // Forgive pre-quarantine damage: conservation losses are
    // re-baselined and the watchdog restarts from scratch.
    health_->rebase(backend_.accounting());
}

void
QuantumBridge::scheduleSynthetic(const noc::PacketPtr &pkt, Tick floor)
{
    int hops = topo_->minHops(pkt->src, pkt->dst);
    std::uint32_t flits = net_params_.flitsPerPacket(pkt->size_bytes);
    double est = table_.estimate(static_cast<int>(pkt->cls), hops,
                                 flits, pkt->src, pkt->dst);
    auto est_ticks =
        std::max<Tick>(1, static_cast<Tick>(std::llround(est)));
    pkt->enter_tick = pkt->inject_tick;
    pkt->hops = static_cast<std::uint32_t>(hops);
    pkt->deliver_tick = std::max(pkt->inject_tick + est_ticks, floor);
    degraded_out_.push_back(pkt);
}

void
QuantumBridge::drainDegraded(Tick boundary)
{
    if (degraded_out_.empty())
        return;
    // Stable order: (due tick, id) makes degraded runs reproducible.
    std::sort(degraded_out_.begin(), degraded_out_.end(),
              [](const noc::PacketPtr &a, const noc::PacketPtr &b) {
                  if (a->deliver_tick != b->deliver_tick)
                      return a->deliver_tick < b->deliver_tick;
                  return a->id < b->id;
              });
    std::size_t n = 0;
    while (n < degraded_out_.size() &&
           degraded_out_[n]->deliver_tick <= boundary) {
        const noc::PacketPtr &pkt = degraded_out_[n];
        ++packetsDelivered;
        deliverySlack.sample(
            static_cast<double>(boundary - pkt->deliver_tick));
        // No observer_ call: the observer contract is "deliveries the
        // detailed backend actually made".
        if (system_handler_)
            system_handler_(pkt);
        ++n;
    }
    if (n > 0) {
        health_->noteSynthesized(n);
        degraded_out_.erase(degraded_out_.begin(),
                            degraded_out_.begin() +
                                static_cast<std::ptrdiff_t>(n));
    }
}

void
QuantumBridge::save(ArchiveWriter &aw) const
{
    aw.beginSection("bridge");
    if (!pending_deliveries_.empty()) {
        panic("bridge checkpoint outside a quantum boundary (",
              pending_deliveries_.size(), " deliveries unapplied)");
    }
    table_.saveBinary(aw);
    checkpoint_.saveBinary(aw);
    aw.putU8(static_cast<std::uint8_t>(state_));
    aw.putU64(cooldown_);
    aw.putU64(probation_left_);
    aw.putU64(backoff_);
    aw.putU64(boundaries_since_checkpoint_);
    aw.putDouble(err_abs_window_);
    aw.putU64(err_samples_window_);
    aw.putU64(quanta_);

    // Overlap mode buffers the host quantum's injections until the
    // next boundary; they are part of the coupling state.
    aw.putU64(pending_injections_.size());
    for (const noc::PacketPtr &pkt : pending_injections_)
        noc::savePacket(aw, *pkt);

    // Conservative accounting of what the backend owes the system,
    // archived in id order (FlatMap iterates ascending) so the image
    // (and its CRC) is reproducible.
    aw.putU64(outstanding_.size());
    for (const auto &[id, pkt] : outstanding_)
        noc::savePacket(aw, *pkt);

    aw.putU64(degraded_out_.size());
    for (const noc::PacketPtr &pkt : degraded_out_)
        noc::savePacket(aw, *pkt);

    aw.putBool(static_cast<bool>(health_));
    if (health_)
        health_->save(aw);
    aw.endSection();
}

void
QuantumBridge::restore(ArchiveReader &ar)
{
    ar.expectSection("bridge");
    table_.restoreBinary(ar);
    checkpoint_.restoreBinary(ar);
    state_ = static_cast<HealthState>(ar.getU8());
    cooldown_ = ar.getU64();
    probation_left_ = ar.getU64();
    backoff_ = ar.getU64();
    boundaries_since_checkpoint_ = ar.getU64();
    err_abs_window_ = ar.getDouble();
    err_samples_window_ = ar.getU64();
    quanta_ = ar.getU64();

    pending_injections_.clear();
    std::uint64_t n_inj = ar.getU64();
    for (std::uint64_t i = 0; i < n_inj; ++i)
        pending_injections_.push_back(noc::restorePacket(ar));

    outstanding_.clear();
    std::uint64_t n_out = ar.getU64();
    for (std::uint64_t i = 0; i < n_out; ++i) {
        noc::PacketPtr pkt = noc::restorePacket(ar);
        outstanding_.emplace(pkt->id, pkt);
    }

    degraded_out_.clear();
    std::uint64_t n_deg = ar.getU64();
    for (std::uint64_t i = 0; i < n_deg; ++i)
        degraded_out_.push_back(noc::restorePacket(ar));

    pending_deliveries_.clear();
    bool had_health = ar.getBool();
    if (had_health != static_cast<bool>(health_)) {
        panic("checkpoint ", had_health ? "has" : "lacks",
              " health-monitor state but the restored bridge ",
              health_ ? "has" : "lacks", " a monitor");
    }
    if (health_)
        health_->restore(ar);
    ar.endSection();
}

void
QuantumBridge::advanceCoupled(Tick t)
{
    Tick cur = std::max(sim().curTick(), backend_.curTime());
    while (cur < t) {
        Tick q_end = std::min(cur + options_.quantum, t);
        if (state_ == HealthState::Degraded) {
            runQuantumDegraded(q_end);
        } else if (health_) {
            std::optional<std::pair<ErrorKind, std::string>> trip;
            try {
                if (options_.overlap)
                    runQuantumOverlapped(q_end);
                else
                    runQuantumSync(q_end);
            } catch (const SimError &e) {
                health_->noteTrip(e.kind(), e.what());
                trip = std::make_pair(e.kind(), std::string(e.what()));
            }
            if (!trip)
                trip = boundaryHealthCheck(q_end, q_end - cur);
            if (trip)
                handleTrip(trip->first, trip->second, q_end);
        } else {
            if (options_.overlap)
                runQuantumOverlapped(q_end);
            else
                runQuantumSync(q_end);
        }
        ++quanta_;
        cur = q_end;
    }
}

} // namespace cosim
} // namespace rasim
