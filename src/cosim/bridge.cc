#include "cosim/bridge.hh"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace rasim
{
namespace cosim
{

namespace
{

double
elapsedNs(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::nano>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

QuantumBridge::QuantumBridge(Simulation &sim, const std::string &name,
                             noc::NetworkModel &backend,
                             const noc::NocParams &net_params,
                             Options options, SimObject *parent)
    : SimObject(sim, name, parent),
      packetsForwarded(this, "packets_forwarded",
                       "packets crossing the boundary downwards"),
      packetsDelivered(this, "packets_delivered",
                       "packets crossing the boundary upwards"),
      deliverySlack(this, "delivery_slack",
                    "boundary application delay (cycles)"),
      estimateError(this, "estimate_error",
                    "consumed estimate minus true latency (cycles)"),
      backend_(backend), options_(options), net_params_(net_params),
      topo_(noc::makeTopology(net_params.topology, net_params.columns,
                              net_params.rows)),
      table_(net_params, net_params.columns + net_params.rows + 2,
             sim.config().getDouble("abstract.ewma_alpha", 0.05),
             sim.config().getString("abstract.granularity",
                                    "distance") == "pair"
                 ? abstractnet::LatencyTable::Granularity::Pair
                 : abstractnet::LatencyTable::Granularity::Distance,
             net_params.numNodes())
{
    if (options_.quantum == 0)
        fatal("co-simulation quantum must be positive");
    if (options_.engine_workers < 0)
        fatal("co-simulation engine worker count must be non-negative");
    if (options_.engine_workers > 0) {
        engine_ =
            std::make_unique<ParallelEngine>(options_.engine_workers);
        backend_.setEngine(engine_.get());
    }
    backend_.setDeliveryHandler(
        [this](const noc::PacketPtr &pkt) { onBackendDelivery(pkt); });
}

QuantumBridge::~QuantumBridge()
{
    // The backend usually outlives the bridge; detach the pool before
    // it is destroyed so the backend falls back to serial execution.
    if (engine_)
        backend_.setEngine(nullptr);
}

void
QuantumBridge::inject(const noc::PacketPtr &pkt)
{
    ++packetsForwarded;
    if (options_.coupling == Coupling::Reciprocal) {
        // Upward abstraction: the system consumes the table estimate
        // immediately, event-exactly, and never waits on the detailed
        // model.
        int hops = topo_->minHops(pkt->src, pkt->dst);
        std::uint32_t flits =
            net_params_.flitsPerPacket(pkt->size_bytes);
        double est = table_.estimate(static_cast<int>(pkt->cls), hops,
                                     flits, pkt->src, pkt->dst);
        auto est_ticks =
            std::max<Tick>(1, static_cast<Tick>(std::llround(est)));
        pkt->enter_tick = pkt->inject_tick;
        pkt->hops = static_cast<std::uint32_t>(hops);
        pkt->deliver_tick = pkt->inject_tick + est_ticks;
        if (system_handler_)
            system_handler_(pkt);

        // Downward abstraction: the detailed network sees the same
        // contextual traffic stream through a clone whose true
        // latency will re-tune the table.
        auto clone = std::make_shared<noc::Packet>(*pkt);
        clone->enter_tick = 0;
        clone->deliver_tick = 0;
        clone->hops = 0;
        clone->context = est_ticks; // remember the consumed estimate
        if (options_.overlap)
            pending_injections_.push_back(clone);
        else
            backend_.inject(clone);
        return;
    }
    if (options_.overlap) {
        // The backend may be advancing on the worker right now; hold
        // the packet until the boundary.
        pending_injections_.push_back(pkt);
        return;
    }
    backend_.inject(pkt);
}

void
QuantumBridge::advanceTo(Tick t)
{
    advanceCoupled(t);
}

void
QuantumBridge::setDeliveryHandler(DeliveryHandler handler)
{
    system_handler_ = std::move(handler);
}

Tick
QuantumBridge::curTime() const
{
    return backend_.curTime();
}

bool
QuantumBridge::idle() const
{
    return backend_.idle() && pending_injections_.empty() &&
           pending_deliveries_.empty();
}

std::size_t
QuantumBridge::numNodes() const
{
    return backend_.numNodes();
}

void
QuantumBridge::onBackendDelivery(const noc::PacketPtr &pkt)
{
    // Runs on the thread advancing the backend (worker in overlapped
    // mode); defer everything that touches shared state to the
    // boundary.
    pending_deliveries_.push_back(pkt);
}

void
QuantumBridge::applyDeliveries(Tick boundary)
{
    bool reciprocal = options_.coupling == Coupling::Reciprocal;
    for (const noc::PacketPtr &pkt : pending_deliveries_) {
        ++packetsDelivered;
        deliverySlack.sample(
            static_cast<double>(boundary - pkt->deliver_tick));
        if (observer_)
            observer_(pkt);
        if (options_.feedback) {
            table_.observe(static_cast<int>(pkt->cls),
                           static_cast<int>(pkt->hops),
                           net_params_.flitsPerPacket(pkt->size_bytes),
                           pkt->latency(), pkt->src, pkt->dst);
        }
        if (reciprocal) {
            // The system already received this packet from the
            // estimate; only the feedback matters here.
            estimateError.sample(static_cast<double>(pkt->context) -
                                 static_cast<double>(pkt->latency()));
            continue;
        }
        if (system_handler_)
            system_handler_(pkt);
    }
    pending_deliveries_.clear();
}

void
QuantumBridge::runQuantumSync(Tick q_end)
{
    auto t0 = std::chrono::steady_clock::now();
    sim().run(q_end);
    host_ns_ += elapsedNs(t0);

    auto t1 = std::chrono::steady_clock::now();
    backend_.advanceTo(q_end);
    net_ns_ += elapsedNs(t1);

    applyDeliveries(q_end);
}

void
QuantumBridge::runQuantumOverlapped(Tick q_end)
{
    // Release the injections gathered during the previous host
    // quantum, then let the backend chew on them while the host
    // simulates this quantum.
    Tick boundary = backend_.curTime();
    for (const noc::PacketPtr &pkt : pending_injections_) {
        if (options_.coupling == Coupling::Reciprocal) {
            // Clones exist only to calibrate the table; shift them to
            // the boundary so the one-quantum hand-off slack is not
            // mistaken for genuine source queueing.
            pkt->inject_tick = std::max(pkt->inject_tick, boundary);
        }
        backend_.inject(pkt);
    }
    pending_injections_.clear();

    std::thread net_worker([this, q_end] {
        auto t1 = std::chrono::steady_clock::now();
        backend_.advanceTo(q_end);
        net_ns_ += elapsedNs(t1);
    });

    auto t0 = std::chrono::steady_clock::now();
    sim().run(q_end);
    host_ns_ += elapsedNs(t0);

    net_worker.join();
    applyDeliveries(q_end);
}

void
QuantumBridge::advanceCoupled(Tick t)
{
    Tick cur = std::max(sim().curTick(), backend_.curTime());
    while (cur < t) {
        Tick q_end = std::min(cur + options_.quantum, t);
        if (options_.overlap)
            runQuantumOverlapped(q_end);
        else
            runQuantumSync(q_end);
        ++quanta_;
        cur = q_end;
    }
}

} // namespace cosim
} // namespace rasim
