#include "cosim/full_system.hh"

#include <utility>

#include "sim/logging.hh"

namespace rasim
{
namespace cosim
{

Mode
modeFromName(const std::string &name)
{
    if (name == "abstract")
        return Mode::Abstract;
    if (name == "tuned")
        return Mode::TunedAbstract;
    if (name == "cosim")
        return Mode::CosimCycle;
    if (name == "cosim-gpu")
        return Mode::CosimGpu;
    if (name == "monolithic")
        return Mode::Monolithic;
    fatal("unknown mode '", name,
          "' (want abstract, tuned, cosim, cosim-gpu or monolithic)");
}

const char *
toString(Mode mode)
{
    switch (mode) {
      case Mode::Abstract:
        return "abstract";
      case Mode::TunedAbstract:
        return "tuned";
      case Mode::CosimCycle:
        return "cosim";
      case Mode::CosimGpu:
        return "cosim-gpu";
      case Mode::Monolithic:
        return "monolithic";
    }
    return "unknown";
}

FullSystemOptions
FullSystemOptions::fromConfig(const Config &cfg)
{
    FullSystemOptions o;
    o.mode = modeFromName(cfg.getString("system.mode", "cosim"));
    o.app = cfg.getString("system.app", "fft");
    o.ops_per_core = cfg.getUInt("system.ops_per_core", 0);
    o.quantum = cfg.getUInt("system.quantum", 256);
    o.feedback = cfg.getBool("system.feedback", true);
    o.conservative = cfg.getBool("system.conservative", false);
    o.engine_workers =
        static_cast<int>(cfg.getUInt("system.engine_workers", 2));
    o.parallel = cfg.getBool("system.parallel", false);
    o.noc = noc::NocParams::fromConfig(cfg);
    o.mem = mem::MemParams::fromConfig(cfg);
    o.health = HealthOptions::fromConfig(cfg);
    o.fault = FaultOptions::fromConfig(cfg);
    return o;
}

FullSystem::FullSystem(Config cfg, FullSystemOptions options)
    : options_(std::move(options))
{
    sim_ = std::make_unique<Simulation>(std::move(cfg));

    // Backend network of the requested fidelity.
    noc::NetworkModel *backend = nullptr;
    switch (options_.mode) {
      case Mode::Abstract:
        abstract_net_ = std::make_unique<abstractnet::AbstractNetwork>(
            *sim_, "net", options_.noc,
            abstractnet::AbstractNetwork::Mode::Static);
        backend = abstract_net_.get();
        break;
      case Mode::TunedAbstract:
        abstract_net_ = std::make_unique<abstractnet::AbstractNetwork>(
            *sim_, "net", options_.noc,
            abstractnet::AbstractNetwork::Mode::Tuned);
        backend = abstract_net_.get();
        break;
      case Mode::CosimCycle:
      case Mode::CosimGpu:
      case Mode::Monolithic:
        cycle_net_ = std::make_unique<noc::CycleNetwork>(
            *sim_, "net", options_.noc);
        backend = cycle_net_.get();
        break;
    }

    // Deterministic fault injection sits between the bridge and the
    // backend, so every health guard is exercisable on demand.
    if (options_.fault.enabled) {
        fault_injector_ =
            std::make_unique<FaultInjector>(*backend, options_.fault);
        backend = fault_injector_.get();
    }

    QuantumBridge::Options bo;
    bo.feedback = options_.feedback;
    bo.health = options_.health;
    switch (options_.mode) {
      case Mode::Abstract:
      case Mode::TunedAbstract:
        // Event-exact integration: the quantum degenerates to a cycle.
        bo.quantum = 1;
        bo.overlap = false;
        break;
      case Mode::Monolithic:
        bo.quantum = 1;
        bo.overlap = false;
        if (options_.parallel)
            bo.engine_workers = options_.engine_workers;
        break;
      case Mode::CosimCycle:
        bo.quantum = options_.quantum;
        bo.overlap = false;
        bo.coupling = options_.conservative
                          ? QuantumBridge::Coupling::Conservative
                          : QuantumBridge::Coupling::Reciprocal;
        if (options_.parallel)
            bo.engine_workers = options_.engine_workers;
        break;
      case Mode::CosimGpu:
        bo.quantum = options_.quantum;
        bo.overlap = true;
        bo.coupling = options_.conservative
                          ? QuantumBridge::Coupling::Conservative
                          : QuantumBridge::Coupling::Reciprocal;
        bo.engine_workers = options_.engine_workers;
        break;
    }
    bridge_ = std::make_unique<QuantumBridge>(*sim_, "bridge", *backend,
                                              options_.noc, bo);

    memory_ = std::make_unique<mem::MemorySystem>(*sim_, "mem", *bridge_,
                                                  options_.mem);

    const workload::AppProfile &app = workload::appProfile(options_.app);
    std::uint64_t ops = options_.ops_per_core ? options_.ops_per_core
                                              : app.ops_per_core;
    auto nodes = static_cast<NodeId>(backend->numNodes());
    for (NodeId n = 0; n < nodes; ++n) {
        cpu::CoreParams cp;
        cp.mem_ratio = app.mem_ratio;
        cp.ops_budget = ops;
        cores_.push_back(std::make_unique<cpu::SyntheticCore>(
            *sim_, "core" + std::to_string(n), n, memory_->l1(n),
            std::make_unique<workload::SyntheticStream>(
                app.stream, n, options_.mem.block_bytes,
                sim_->makeRng(0xa99 + n)),
            cp));
    }

    // Config hygiene: every consumer has pulled its keys by now, so
    // anything left unread under the known prefixes is a misspelling
    // ("noc.colums") silently falling back to a default.
    sim_->config().warnUnread({"system.", "noc.", "mem.", "abstract.",
                               "fault.", "health.", "sim."});
}

FullSystem::~FullSystem() = default;

bool
FullSystem::allCoresDone() const
{
    for (const auto &core : cores_)
        if (!core->done())
            return false;
    return true;
}

Tick
FullSystem::run(Tick limit)
{
    Tick t = sim_->curTick();
    while (t < limit) {
        t += options_.quantum;
        bridge_->advanceCoupled(t);
        if (allCoresDone() && memory_->quiescent() && bridge_->idle())
            break;
    }
    if (!allCoresDone())
        warn("run hit the tick limit with unfinished cores");
    Tick finish = 0;
    for (const auto &core : cores_)
        finish = std::max(finish, core->finishTick());
    return finish;
}

double
FullSystem::meanPacketLatency() const
{
    if (cycle_net_)
        return cycle_net_->totalLatency.mean();
    return abstract_net_->totalLatency.mean();
}

double
FullSystem::meanPacketLatency(noc::MsgClass cls) const
{
    if (cycle_net_)
        return cycle_net_->vnetLatency[static_cast<int>(cls)]->mean();
    return abstract_net_->vnetLatency[static_cast<int>(cls)]->mean();
}

std::uint64_t
FullSystem::packetsDelivered() const
{
    if (cycle_net_)
        return cycle_net_->deliveredCount();
    return static_cast<std::uint64_t>(
        abstract_net_->packetsDelivered.value());
}

} // namespace cosim
} // namespace rasim
