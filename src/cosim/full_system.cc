#include "cosim/full_system.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <utility>

#include <fcntl.h>
#include <unistd.h>

#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace rasim
{
namespace cosim
{

Mode
modeFromName(const std::string &name)
{
    if (name == "abstract")
        return Mode::Abstract;
    if (name == "tuned")
        return Mode::TunedAbstract;
    if (name == "cosim")
        return Mode::CosimCycle;
    if (name == "cosim-gpu")
        return Mode::CosimGpu;
    if (name == "monolithic")
        return Mode::Monolithic;
    fatal("unknown mode '", name,
          "' (want abstract, tuned, cosim, cosim-gpu or monolithic)");
}

const char *
toString(Mode mode)
{
    switch (mode) {
      case Mode::Abstract:
        return "abstract";
      case Mode::TunedAbstract:
        return "tuned";
      case Mode::CosimCycle:
        return "cosim";
      case Mode::CosimGpu:
        return "cosim-gpu";
      case Mode::Monolithic:
        return "monolithic";
    }
    return "unknown";
}

CheckpointOptions
CheckpointOptions::fromConfig(const Config &cfg)
{
    CheckpointOptions o;
    o.interval_quanta = cfg.getUInt("checkpoint.interval_quanta", 0);
    o.dir = cfg.getString("checkpoint.dir", "checkpoints");
    o.keep = cfg.getUInt("checkpoint.keep", 3);
    o.restore = cfg.getString("checkpoint.restore", "");
    if (o.keep == 0)
        fatal("checkpoint.keep must be positive");
    if (o.interval_quanta > 0 && o.dir.empty())
        fatal("checkpoint.dir must be set when checkpointing is on");
    return o;
}

FullSystemOptions
FullSystemOptions::fromConfig(const Config &cfg)
{
    FullSystemOptions o;
    o.mode = modeFromName(cfg.getString("system.mode", "cosim"));
    o.app = cfg.getString("system.app", "fft");
    o.ops_per_core = cfg.getUInt("system.ops_per_core", 0);
    o.quantum = cfg.getUInt("system.quantum", 256);
    o.feedback = cfg.getBool("system.feedback", true);
    o.conservative = cfg.getBool("system.conservative", false);
    o.engine_workers =
        static_cast<int>(cfg.getUInt("system.engine_workers", 2));
    o.parallel = cfg.getBool("system.parallel", false);
    o.network_backend = cfg.getString("network.backend", "inproc");
    if (o.network_backend != "inproc" && o.network_backend != "remote") {
        fatal("network.backend must be inproc or remote, not '",
              o.network_backend, "'");
    }
    if (o.network_backend == "remote")
        o.remote = noc::remote::RemoteOptions::fromConfig(cfg);
    o.noc = noc::NocParams::fromConfig(cfg);
    o.mem = mem::MemParams::fromConfig(cfg);
    o.health = HealthOptions::fromConfig(cfg);
    o.fault = FaultOptions::fromConfig(cfg);
    o.checkpoint = CheckpointOptions::fromConfig(cfg);
    return o;
}

FullSystem::FullSystem(Config cfg, FullSystemOptions options)
    : options_(std::move(options))
{
    sim_ = std::make_unique<Simulation>(std::move(cfg));

    // Backend network of the requested fidelity.
    noc::NetworkModel *backend = nullptr;
    switch (options_.mode) {
      case Mode::Abstract:
        abstract_net_ = std::make_unique<abstractnet::AbstractNetwork>(
            *sim_, "net", options_.noc,
            abstractnet::AbstractNetwork::Mode::Static);
        backend = abstract_net_.get();
        break;
      case Mode::TunedAbstract:
        abstract_net_ = std::make_unique<abstractnet::AbstractNetwork>(
            *sim_, "net", options_.noc,
            abstractnet::AbstractNetwork::Mode::Tuned);
        backend = abstract_net_.get();
        break;
      case Mode::CosimCycle:
      case Mode::CosimGpu:
      case Mode::Monolithic:
        if (options_.network_backend == "remote") {
            // The detailed fabric lives in a rasim-nocd server; the
            // server hosts the parallel engine too, so the requested
            // worker count travels with the session.
            noc::remote::RemoteOptions ro = options_.remote;
            if (ro.engine_workers == 0 && options_.parallel)
                ro.engine_workers = options_.engine_workers;
            remote_net_ = std::make_unique<noc::remote::RemoteNetwork>(
                *sim_, "net", options_.noc, ro);
            backend = remote_net_.get();
        } else {
            cycle_net_ = std::make_unique<noc::CycleNetwork>(
                *sim_, "net", options_.noc);
            backend = cycle_net_.get();
        }
        break;
    }
    if (options_.network_backend == "remote" && !remote_net_) {
        fatal("network.backend=remote needs a cycle-network mode "
              "(cosim, cosim-gpu or monolithic), not ",
              toString(options_.mode));
    }

    // Deterministic fault injection sits between the bridge and the
    // backend, so every health guard is exercisable on demand.
    if (options_.fault.enabled) {
        fault_injector_ =
            std::make_unique<FaultInjector>(*backend, options_.fault);
        backend = fault_injector_.get();
    }

    QuantumBridge::Options bo;
    bo.feedback = options_.feedback;
    bo.health = options_.health;
    switch (options_.mode) {
      case Mode::Abstract:
      case Mode::TunedAbstract:
        // Event-exact integration: the quantum degenerates to a cycle.
        bo.quantum = 1;
        bo.overlap = false;
        break;
      case Mode::Monolithic:
        bo.quantum = 1;
        bo.overlap = false;
        if (options_.parallel)
            bo.engine_workers = options_.engine_workers;
        break;
      case Mode::CosimCycle:
        bo.quantum = options_.quantum;
        bo.overlap = false;
        bo.coupling = options_.conservative
                          ? QuantumBridge::Coupling::Conservative
                          : QuantumBridge::Coupling::Reciprocal;
        if (options_.parallel)
            bo.engine_workers = options_.engine_workers;
        break;
      case Mode::CosimGpu:
        bo.quantum = options_.quantum;
        bo.overlap = true;
        bo.coupling = options_.conservative
                          ? QuantumBridge::Coupling::Conservative
                          : QuantumBridge::Coupling::Reciprocal;
        bo.engine_workers = options_.engine_workers;
        break;
    }
    // With a remote backend the parallel engine runs inside the
    // server (wired through remote.engine_workers above); a client
    // pool would have nothing to drive.
    if (remote_net_)
        bo.engine_workers = 0;
    bridge_ = std::make_unique<QuantumBridge>(*sim_, "bridge", *backend,
                                              options_.noc, bo);

    memory_ = std::make_unique<mem::MemorySystem>(*sim_, "mem", *bridge_,
                                                  options_.mem);

    const workload::AppProfile &app = workload::appProfile(options_.app);
    std::uint64_t ops = options_.ops_per_core ? options_.ops_per_core
                                              : app.ops_per_core;
    auto nodes = static_cast<NodeId>(backend->numNodes());
    for (NodeId n = 0; n < nodes; ++n) {
        cpu::CoreParams cp;
        cp.mem_ratio = app.mem_ratio;
        cp.ops_budget = ops;
        cores_.push_back(std::make_unique<cpu::SyntheticCore>(
            *sim_, "core" + std::to_string(n), n, memory_->l1(n),
            std::make_unique<workload::SyntheticStream>(
                app.stream, n, options_.mem.block_bytes,
                sim_->makeRng(0xa99 + n)),
            cp));
    }

    // Config hygiene: every consumer has pulled its keys by now, so
    // anything left unread under the known prefixes is a misspelling
    // ("noc.colums") silently falling back to a default.
    sim_->config().warnUnread({"system.", "noc.", "mem.", "abstract.",
                               "fault.", "health.", "sim.",
                               "checkpoint.", "network.", "remote.",
                               "kernel."});

    if (!options_.checkpoint.restore.empty())
        restoreFromPath(options_.checkpoint.restore);
}

FullSystem::~FullSystem() = default;

bool
FullSystem::allCoresDone() const
{
    for (const auto &core : cores_)
        if (!core->done())
            return false;
    return true;
}

Tick
FullSystem::run(Tick limit)
{
    Tick t = sim_->curTick();
    while (t < limit) {
        t += options_.quantum;
        bridge_->advanceCoupled(t);
        bool done = allCoresDone() && memory_->quiescent() &&
                    bridge_->idle();
        if (!done)
            maybeCheckpoint(t);
        if (done)
            break;
    }
    if (!allCoresDone())
        warn("run hit the tick limit with unfinished cores");
    Tick finish = 0;
    for (const auto &core : cores_)
        finish = std::max(finish, core->finishTick());
    return finish;
}

namespace
{

/** Keyed on the absolute boundary so a restored run checkpoints at
 *  exactly the same ticks as an uninterrupted one. */
bool
atCheckpointBoundary(Tick t, Tick quantum, std::uint64_t interval)
{
    return interval > 0 && quantum > 0 && t % quantum == 0 &&
           (t / quantum) % interval == 0;
}

std::string
checkpointName(Tick t)
{
    std::ostringstream os;
    os << "ckpt-" << std::setw(20) << std::setfill('0') << t << ".ckpt";
    return os.str();
}

bool
isCheckpointName(const std::string &name)
{
    return name.size() > 10 && name.rfind("ckpt-", 0) == 0 &&
           name.size() >= 5 &&
           name.compare(name.size() - 5, 5, ".ckpt") == 0;
}

/** Retained images in @p dir, newest (largest tick) first. Zero-padded
 *  names make the lexicographic order the chronological one. */
std::vector<std::filesystem::path>
listCheckpoints(const std::filesystem::path &dir)
{
    std::vector<std::filesystem::path> out;
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir, ec)) {
        if (entry.is_regular_file() &&
            isCheckpointName(entry.path().filename().string())) {
            out.push_back(entry.path());
        }
    }
    std::sort(out.begin(), out.end(),
              [](const auto &a, const auto &b) {
                  return a.filename().string() > b.filename().string();
              });
    return out;
}

bool
readFile(const std::filesystem::path &path, std::string &out)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;
    std::ostringstream ss;
    ss << is.rdbuf();
    out = ss.str();
    return static_cast<bool>(is);
}

} // namespace

void
FullSystem::save(ArchiveWriter &aw) const
{
    // Configuration fingerprint: a checkpoint only restores into a
    // system built from the same knobs that shape dynamic state.
    aw.beginSection("meta");
    aw.putString(toString(options_.mode));
    aw.putString(options_.network_backend);
    aw.putString(options_.app);
    aw.putU64(cores_.size());
    aw.putU64(options_.quantum);
    aw.putBool(options_.conservative);
    aw.putBool(options_.feedback);
    aw.putBool(options_.fault.enabled);
    aw.putBool(options_.health.enabled);
    aw.endSection();

    aw.beginSection("sim");
    aw.putU64(sim_->curTick());
    aw.putU64(sim_->eventq().nextSequence());
    aw.putU64(sim_->eventq().numProcessed());
    aw.endSection();

    saveStats(aw, sim_->statsRoot());

    if (cycle_net_) {
        cycle_net_->save(aw);
    } else if (remote_net_) {
        // The paired-checkpoint RPC only touches transport state and
        // transport statistics; logically the system is unchanged.
        remote_net_->save(aw);
    } else {
        abstract_net_->save(aw);
    }
    if (fault_injector_)
        fault_injector_->save(aw);
    bridge_->save(aw);
    memory_->save(aw);
    for (const auto &core : cores_)
        core->save(aw);
}

void
FullSystem::saveTo(std::ostream &os) const
{
    ArchiveWriter aw;
    save(aw);
    aw.writeTo(os);
}

bool
FullSystem::restoreArchive(ArchiveReader &ar, std::string *why)
{
    auto mismatch = [why](const std::string &what) {
        if (why)
            *why = "configuration mismatch: " + what;
        return false;
    };
    ar.expectSection("meta");
    if (ar.getString() != toString(options_.mode))
        return mismatch("mode");
    if (ar.getString() != options_.network_backend)
        return mismatch("network backend");
    if (ar.getString() != options_.app)
        return mismatch("app");
    if (ar.getU64() != cores_.size())
        return mismatch("node count");
    if (ar.getU64() != options_.quantum)
        return mismatch("quantum");
    if (ar.getBool() != options_.conservative)
        return mismatch("coupling");
    if (ar.getBool() != options_.feedback)
        return mismatch("feedback");
    if (ar.getBool() != options_.fault.enabled)
        return mismatch("fault injection");
    if (ar.getBool() != options_.health.enabled)
        return mismatch("health monitoring");
    ar.endSection();

    // Validation passed — from here on the image is committed to and
    // structural trouble is a panic, not a fallback.
    ar.expectSection("sim");
    Tick cur_tick = ar.getU64();
    std::uint64_t next_seq = ar.getU64();
    std::uint64_t num_processed = ar.getU64();
    ar.endSection();
    // First, so the components' restore() calls can re-schedule their
    // pending events against the restored clock and sequence space.
    sim_->eventq().restoreState(cur_tick, next_seq, num_processed);

    restoreStats(ar, sim_->statsRoot());

    if (cycle_net_)
        cycle_net_->restore(ar);
    else if (remote_net_)
        remote_net_->restore(ar);
    else
        abstract_net_->restore(ar);
    if (fault_injector_)
        fault_injector_->restore(ar);
    bridge_->restore(ar);
    memory_->restore(ar);
    for (const auto &core : cores_)
        core->restore(ar);

    // init() would schedule fresh startup events on top of the
    // restored ones; the archive already carries every pending event.
    sim_->markInitialized();
    return true;
}

bool
FullSystem::restoreFromBytes(std::string bytes, std::string *why)
{
    ArchiveReader ar(std::move(bytes));
    if (!ar.ok()) {
        if (why)
            *why = ar.error();
        return false;
    }
    return restoreArchive(ar, why);
}

void
FullSystem::restoreFromPath(const std::string &path)
{
    namespace fs = std::filesystem;
    // Candidate chain: the named image (or the newest in the named
    // directory) first, then every older retained sibling — so a
    // corrupt or mismatched newest image degrades the restore instead
    // of aborting it.
    std::vector<fs::path> candidates;
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
        candidates = listCheckpoints(path);
        if (candidates.empty())
            fatal("checkpoint.restore: no checkpoints in '", path, "'");
    } else {
        fs::path p(path);
        candidates.push_back(p);
        for (const auto &sibling : listCheckpoints(p.parent_path())) {
            if (sibling.filename().string() < p.filename().string())
                candidates.push_back(sibling);
        }
    }

    for (const auto &candidate : candidates) {
        std::string bytes;
        if (!readFile(candidate, bytes)) {
            warn("checkpoint.restore: cannot read '", candidate.string(),
                 "', trying an older image");
            continue;
        }
        std::string why;
        if (restoreFromBytes(std::move(bytes), &why)) {
            inform("restored from checkpoint '", candidate.string(),
                   "' at tick ", sim_->curTick());
            return;
        }
        warn("checkpoint.restore: rejected '", candidate.string(),
             "' (", why, "), trying an older image");
    }
    fatal("checkpoint.restore: no usable checkpoint for '", path, "'");
}

std::string
FullSystem::writeCheckpoint()
{
    namespace fs = std::filesystem;
    const fs::path dir(options_.checkpoint.dir);
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec)
        fatal("cannot create checkpoint directory '", dir.string(),
              "': ", ec.message());

    ArchiveWriter aw;
    save(aw);
    std::string bytes = aw.finish();

    // Crash-safe publication: the image becomes visible under its
    // final name only after its bytes are durable, so a crash at any
    // point leaves either the old set or the old set plus a complete
    // new image — never a torn file.
    fs::path final_path = dir / checkpointName(sim_->curTick());
    fs::path tmp_path = final_path;
    tmp_path += ".tmp";
    int fd = ::open(tmp_path.c_str(), O_CREAT | O_TRUNC | O_WRONLY,
                    0644);
    if (fd < 0)
        fatal("cannot create '", tmp_path.string(), "'");
    const char *p = bytes.data();
    std::size_t left = bytes.size();
    while (left > 0) {
        ssize_t n = ::write(fd, p, left);
        if (n < 0) {
            ::close(fd);
            fatal("short write to '", tmp_path.string(), "'");
        }
        p += n;
        left -= static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0) {
        ::close(fd);
        fatal("fsync failed on '", tmp_path.string(), "'");
    }
    ::close(fd);
    fs::rename(tmp_path, final_path, ec);
    if (ec)
        fatal("cannot publish checkpoint '", final_path.string(),
              "': ", ec.message());
    if (int dfd = ::open(dir.c_str(), O_RDONLY); dfd >= 0) {
        ::fsync(dfd); // make the rename itself durable
        ::close(dfd);
    }

    rotateCheckpoints();
    return final_path.string();
}

void
FullSystem::rotateCheckpoints()
{
    auto images = listCheckpoints(options_.checkpoint.dir);
    for (std::size_t i = options_.checkpoint.keep; i < images.size();
         ++i) {
        std::error_code ec;
        std::filesystem::remove(images[i], ec);
    }
}

void
FullSystem::maybeCheckpoint(Tick t)
{
    if (!atCheckpointBoundary(t, options_.quantum,
                              options_.checkpoint.interval_quanta)) {
        return;
    }
    writeCheckpoint();
}

double
FullSystem::meanPacketLatency() const
{
    if (cycle_net_)
        return cycle_net_->totalLatency.mean();
    if (remote_net_)
        return remote_net_->totalLatency.mean();
    return abstract_net_->totalLatency.mean();
}

double
FullSystem::meanPacketLatency(noc::MsgClass cls) const
{
    if (cycle_net_)
        return cycle_net_->vnetLatency[static_cast<int>(cls)]->mean();
    if (remote_net_)
        return remote_net_->vnetLatency[static_cast<int>(cls)]->mean();
    return abstract_net_->vnetLatency[static_cast<int>(cls)]->mean();
}

std::uint64_t
FullSystem::packetsDelivered() const
{
    if (cycle_net_)
        return cycle_net_->deliveredCount();
    if (remote_net_)
        return static_cast<std::uint64_t>(
            remote_net_->packetsDelivered.value());
    return static_cast<std::uint64_t>(
        abstract_net_->packetsDelivered.value());
}

} // namespace cosim
} // namespace rasim
