#include "noc/packet.hh"

#include <sstream>

namespace rasim
{
namespace noc
{

const char *
toString(MsgClass cls)
{
    switch (cls) {
      case MsgClass::Request:
        return "Request";
      case MsgClass::Forward:
        return "Forward";
      case MsgClass::Response:
        return "Response";
    }
    return "Unknown";
}

std::string
Packet::toString() const
{
    std::ostringstream os;
    os << "pkt" << id << " " << src << "->" << dst << " "
       << noc::toString(cls) << " " << size_bytes << "B";
    return os.str();
}

Pool<Packet> &
packetPool()
{
    // Immortal by design: handles held by function-local statics or
    // late-destroyed globals must never outlive the pool, so the pool
    // is simply never destroyed (still reachable, so leak-clean).
    static Pool<Packet> *pool = new Pool<Packet>("noc.packet");
    return *pool;
}

PacketPtr
makePacket(PacketId id, NodeId src, NodeId dst, MsgClass cls,
           std::uint32_t size_bytes, Tick inject_tick,
           std::uint64_t context)
{
    PacketPtr pkt = packetPool().allocate();
    pkt->id = id;
    pkt->src = src;
    pkt->dst = dst;
    pkt->cls = cls;
    pkt->size_bytes = size_bytes;
    pkt->inject_tick = inject_tick;
    pkt->context = context;
    return pkt;
}

PacketPtr
clonePacket(const Packet &src)
{
    return packetPool().allocate(src);
}

std::uint32_t
flitsForBytes(std::uint32_t size_bytes, std::uint32_t flit_bytes)
{
    if (size_bytes == 0)
        return 1;
    return (size_bytes + flit_bytes - 1) / flit_bytes;
}

void
collectPacket(PacketTable &table, const PacketPtr &pkt)
{
    if (pkt)
        table.emplace(pkt->id, pkt);
}

void
savePacketTable(ArchiveWriter &aw, const PacketTable &table)
{
    aw.beginSection("pkts");
    aw.putU64(table.size());
    for (const auto &[id, pkt] : table)
        savePacket(aw, *pkt);
    aw.endSection();
}

PacketTable
restorePacketTable(ArchiveReader &ar)
{
    ar.expectSection("pkts");
    PacketTable table;
    std::uint64_t n = ar.getU64();
    for (std::uint64_t i = 0; i < n; ++i) {
        PacketPtr pkt = restorePacket(ar);
        table.emplace(pkt->id, pkt);
    }
    ar.endSection();
    return table;
}

void
saveFlit(ArchiveWriter &aw, const Flit &flit)
{
    aw.putU8(static_cast<std::uint8_t>(flit.type));
    aw.putU8(flit.vnet);
    aw.putU8(static_cast<std::uint8_t>(flit.vc));
    aw.putU8(flit.vc_class);
    aw.putU8(flit.last_dim);
    aw.putU32(flit.seq);
    aw.putU64(flit.ready_cycle);
    aw.putU64(flit.pkt ? flit.pkt->id : 0);
    aw.putBool(static_cast<bool>(flit.pkt));
}

Flit
restoreFlit(ArchiveReader &ar, const PacketTable &table)
{
    Flit flit;
    flit.type = static_cast<Flit::Type>(ar.getU8());
    flit.vnet = ar.getU8();
    flit.vc = static_cast<std::int8_t>(ar.getU8());
    flit.vc_class = ar.getU8();
    flit.last_dim = ar.getU8();
    flit.seq = static_cast<std::uint16_t>(ar.getU32());
    flit.ready_cycle = ar.getU64();
    PacketId id = ar.getU64();
    if (ar.getBool())
        flit.pkt = table.at(id);
    return flit;
}

} // namespace noc
} // namespace rasim
