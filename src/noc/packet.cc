#include "noc/packet.hh"

#include <sstream>

namespace rasim
{
namespace noc
{

const char *
toString(MsgClass cls)
{
    switch (cls) {
      case MsgClass::Request:
        return "Request";
      case MsgClass::Forward:
        return "Forward";
      case MsgClass::Response:
        return "Response";
    }
    return "Unknown";
}

std::string
Packet::toString() const
{
    std::ostringstream os;
    os << "pkt" << id << " " << src << "->" << dst << " "
       << noc::toString(cls) << " " << size_bytes << "B";
    return os.str();
}

PacketPtr
makePacket(PacketId id, NodeId src, NodeId dst, MsgClass cls,
           std::uint32_t size_bytes, Tick inject_tick,
           std::uint64_t context)
{
    auto pkt = std::make_shared<Packet>();
    pkt->id = id;
    pkt->src = src;
    pkt->dst = dst;
    pkt->cls = cls;
    pkt->size_bytes = size_bytes;
    pkt->inject_tick = inject_tick;
    pkt->context = context;
    return pkt;
}

std::uint32_t
flitsForBytes(std::uint32_t size_bytes, std::uint32_t flit_bytes)
{
    if (size_bytes == 0)
        return 1;
    return (size_bytes + flit_bytes - 1) / flit_bytes;
}

} // namespace noc
} // namespace rasim
