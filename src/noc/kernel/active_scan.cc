#include "noc/kernel/active_scan.hh"

#include "sim/logging.hh"

namespace rasim
{
namespace noc
{
namespace kernel
{

void
activeScanScalar(const std::uint32_t *occ, std::size_t blocks,
                 std::size_t words_per_block, std::vector<int> &out)
{
    for (std::size_t i = 0; i < blocks; ++i) {
        const std::uint32_t *block = occ + i * words_per_block;
        std::uint32_t acc = 0;
        for (std::size_t w = 0; w < words_per_block; ++w)
            acc |= block[w];
        if (acc)
            out.push_back(static_cast<int>(i));
    }
}

ActiveScanFn
activeScanFor(cpuid::SimdLevel level)
{
#if defined(RASIM_SIMD_AVX2)
    if (level == cpuid::SimdLevel::Avx2)
        return &activeScanAvx2;
#else
    if (level == cpuid::SimdLevel::Avx2)
        panic("active scan: AVX2 requested in a build without "
              "RASIM_SIMD");
#endif
    return &activeScanScalar;
}

} // namespace kernel
} // namespace noc
} // namespace rasim
