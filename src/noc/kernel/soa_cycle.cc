#include "noc/kernel/soa_cycle.hh"

#include "noc/routing.hh"
#include "noc/topology.hh"
#include "sim/logging.hh"

namespace rasim
{
namespace noc
{
namespace kernel
{

namespace
{

std::uint32_t
roundPow2(std::uint32_t v)
{
    std::uint32_t c = 1;
    while (c < v)
        c <<= 1;
    return c;
}

} // namespace

SoaCycleFabric::RouterStats::RouterStats(stats::Group *parent, int id)
    : stats::Group(parent, "router" + std::to_string(id)),
      flitsRouted(this, "flits_routed",
                  "flits moved through the crossbar"),
      bufferWrites(this, "buffer_writes",
                   "flits written into input buffers"),
      linkTraversals(this, "link_traversals",
                     "flits sent over inter-router links")
{
}

SoaCycleFabric::NicStats::NicStats(stats::Group *parent, int node)
    : stats::Group(parent, "nic" + std::to_string(node)),
      flitsSent(this, "flits_sent", "flits injected into the router"),
      flitsReceived(this, "flits_received",
                    "flits ejected to this NIC")
{
}

void
SoaCycleFabric::FlitRing::grow()
{
    std::size_t old = buf.size();
    std::size_t ncap = old ? old * 2 : 8;
    std::vector<Flit> nb(ncap);
    for (std::uint32_t k = 0; k < size; ++k)
        nb[k] = std::move(buf[(head + k) & (old - 1)]);
    buf = std::move(nb);
    head = 0;
}

SoaCycleFabric::SoaCycleFabric(stats::Group *parent,
                               const NocParams &params,
                               const Topology &topo,
                               const RoutingAlgorithm &routing)
    : params_(params), topo_(topo), routing_(routing)
{
    n_ = topo.numNodes();
    P_ = topo.numPorts();
    V_ = params_.totalVcs();
    D_ = params_.buffer_depth;
    C_ = num_vnets * params_.vc_classes;

    if (P_ > max_ports)
        fatal("network.kernel=soa supports at most ", max_ports,
              " ports per router; topology '", topo.name(), "' has ",
              P_);
    if (D_ > 65535)
        fatal("network.kernel=soa supports buffer_depth up to 65535 "
              "(got ", D_, "); use network.kernel=object");

    simd_ = cpuid::resolveSimdLevel(params_.simd);
    scan_ = activeScanFor(simd_);

    // Stats tree: router/NIC groups interleaved in node order, the
    // exact child order the object backend creates, so stats archives
    // are interchangeable across kernels.
    router_stats_.reserve(n_);
    nic_stats_.reserve(n_);
    for (int i = 0; i < n_; ++i) {
        router_stats_.push_back(
            std::make_unique<RouterStats>(parent, i));
        nic_stats_.push_back(std::make_unique<NicStats>(parent, i));
    }

    std::size_t npv = static_cast<std::size_t>(n_) * P_ * V_;
    std::size_t np = static_cast<std::size_t>(n_) * P_;
    ivc_state_.assign(npv, vc_idle);
    ivc_out_port_.assign(npv, -1);
    ivc_out_vc_.assign(npv, -1);
    ivc_out_class_.assign(npv, 0);
    ivc_out_dim_.assign(npv, 2);
    fifo_.assign(npv * D_, Flit{});
    fifo_head_.assign(npv, 0);
    fifo_size_.assign(npv, 0);
    ip_sa_rr_.assign(np, 0);
    op_sa_rr_.assign(np, 0);
    op_va_rr_.assign(np * C_, 0);
    ovc_busy_.assign(npv, 0);
    ovc_credits_.assign(npv, 0);
    in_link_.assign(np, -1);
    out_link_.assign(np, -1);

    nicq_.assign(static_cast<std::size_t>(n_) * num_vnets, FlitRing{});
    // Pre-size every injection ring past the common case (a couple of
    // queued packets) so steady state never pays a first-touch grow;
    // rings still grow on demand under sustained backpressure.
    for (FlitRing &q : nicq_)
        q.buf.resize(16);
    nicq_cur_vc_.assign(static_cast<std::size_t>(n_) * num_vnets, -1);
    inj_busy_.assign(static_cast<std::size_t>(n_) * V_, 0);
    inj_credits_.assign(static_cast<std::size_t>(n_) * V_,
                        params_.buffer_depth);
    nic_va_rr_.assign(static_cast<std::size_t>(n_) * num_vnets, 0);
    nic_rr_vnet_.assign(n_, 0);
    nic_queued_.assign(n_, 0);
    rx_.resize(n_);
    completed_.resize(n_);

    compute_occ_.assign(static_cast<std::size_t>(n_) * compute_words,
                        0);
    commit_occ_.assign(static_cast<std::size_t>(n_) * commit_words, 0);
    compute_list_.reserve(n_);
    commit_list_.reserve(n_);
    route_scratch_.resize(n_);
    for (auto &s : route_scratch_)
        s.reserve(8);

    d_flits_routed_.assign(n_, 0);
    d_buffer_writes_.assign(n_, 0);
    d_link_traversals_.assign(n_, 0);
    d_flits_sent_.assign(n_, 0);
    d_flits_received_.assign(n_, 0);

    // Links in the object backend's creation order (the archive link
    // order): all router-to-router links, then per node the injection
    // and ejection links. The occupancy pointers are stable because
    // the occ arrays were sized above and never reallocate.
    auto add_link = [this](int latency, std::uint32_t *flit_occ,
                           std::uint32_t *cred_occ) {
        SoaLink l;
        l.latency = latency;
        l.cap = roundPow2(static_cast<std::uint32_t>(V_) * D_ +
                          latency + 2);
        l.flits.resize(l.cap);
        l.credits.resize(l.cap);
        l.flit_occ = flit_occ;
        l.cred_occ = cred_occ;
        links_.push_back(std::move(l));
        return static_cast<std::int32_t>(links_.size() - 1);
    };

    for (int i = 0; i < n_; ++i) {
        for (int p = 1; p < P_; ++p) {
            int j = topo.neighbor(i, p);
            if (j < 0)
                continue;
            int q = topo.inputPortAt(i, p);
            std::int32_t id = add_link(
                params_.link_latency,
                &commit_occ_[static_cast<std::size_t>(j) *
                                 commit_words + q],
                &commit_occ_[static_cast<std::size_t>(i) *
                                 commit_words +
                             occ_out_credit_base + p]);
            out_link_[pi(i, p)] = id;
            in_link_[pi(j, q)] = id;
            // connectOutput: initial credits = downstream depth.
            for (int v = 0; v < V_; ++v)
                ovc_credits_[vi(i, p, v)] = params_.buffer_depth;
        }
    }
    for (int i = 0; i < n_; ++i) {
        std::int32_t inj = add_link(
            1,
            &commit_occ_[static_cast<std::size_t>(i) * commit_words +
                         port_local],
            &compute_occ_[static_cast<std::size_t>(i) * compute_words +
                          occ_inj_credits]);
        in_link_[pi(i, port_local)] = inj;

        std::int32_t ej = add_link(
            1,
            &commit_occ_[static_cast<std::size_t>(i) * commit_words +
                         occ_ej_flits],
            &commit_occ_[static_cast<std::size_t>(i) * commit_words +
                         occ_out_credit_base + port_local]);
        out_link_[pi(i, port_local)] = ej;
        for (int v = 0; v < V_; ++v)
            ovc_credits_[vi(i, port_local, v)] = params_.buffer_depth;
    }
}

std::string
SoaCycleFabric::description() const
{
    return std::string("soa (simd=") + cpuid::simdLevelName(simd_) +
           ")";
}

void
SoaCycleFabric::pushFlit(SoaLink &l, Cycle now, Flit f)
{
    if (l.fsize >= l.cap)
        panic("soa link: flit ring overflow "
              "(credit protocol violated)");
    TimedFlit &slot = l.flits[(l.fhead + l.fsize) & (l.cap - 1)];
    slot.cycle = now + l.latency - 1;
    slot.flit = std::move(f);
    ++l.fsize;
    ++*l.flit_occ;
}

Flit
SoaCycleFabric::popFlit(SoaLink &l)
{
    Flit f = std::move(l.flits[l.fhead].flit);
    l.fhead = (l.fhead + 1) & (l.cap - 1);
    --l.fsize;
    --*l.flit_occ;
    return f;
}

void
SoaCycleFabric::pushCredit(SoaLink &l, Cycle now, int vc)
{
    if (l.csize >= l.cap)
        panic("soa link: credit ring overflow "
              "(credit protocol violated)");
    TimedCredit &slot = l.credits[(l.chead + l.csize) & (l.cap - 1)];
    slot.cycle = now + l.latency - 1;
    slot.vc = static_cast<std::int16_t>(vc);
    ++l.csize;
    ++*l.cred_occ;
}

int
SoaCycleFabric::popCredit(SoaLink &l)
{
    int vc = l.credits[l.chead].vc;
    l.chead = (l.chead + 1) & (l.cap - 1);
    --l.csize;
    --*l.cred_occ;
    return vc;
}

void
SoaCycleFabric::enqueue(std::size_t node, const PacketPtr &pkt,
                        Cycle now)
{
    (void)now;
    std::uint32_t nflits = params_.flitsPerPacket(pkt->size_bytes);
    auto vnet = static_cast<std::uint8_t>(pkt->cls);
    FlitRing &q = nicq_[node * num_vnets + vnet];
    for (std::uint32_t i = 0; i < nflits; ++i) {
        Flit f;
        if (nflits == 1)
            f.type = Flit::Type::HeadTail;
        else if (i == 0)
            f.type = Flit::Type::Head;
        else if (i == nflits - 1)
            f.type = Flit::Type::Tail;
        else
            f.type = Flit::Type::Body;
        f.vnet = vnet;
        f.seq = static_cast<std::uint16_t>(i);
        f.pkt = pkt;
        q.push(std::move(f));
    }
    nic_queued_[node] += nflits;
    compute_occ_[node * compute_words + occ_nic_queued] += nflits;
}

void
SoaCycleFabric::nicCompute(int i, Cycle now)
{
    // Credits from the router (input buffer slots freed).
    SoaLink &inj = links_[in_link_[pi(i, port_local)]];
    while (creditReady(inj, now))
        ++inj_credits_[static_cast<std::size_t>(i) * V_ +
                       popCredit(inj)];

    // Inject at most one flit per cycle, round-robin over vnets.
    for (int k = 0; k < num_vnets; ++k) {
        int v = (nic_rr_vnet_[i] + k) % num_vnets;
        FlitRing &q = nicq_[static_cast<std::size_t>(i) * num_vnets + v];
        if (q.size == 0)
            continue;
        Flit &front = q.front();
        int vc = nicq_cur_vc_[static_cast<std::size_t>(i) * num_vnets +
                              v];
        if (front.isHead()) {
            // Allocate a fresh VC (class 0: datelines apply only to
            // router-to-router hops).
            std::int32_t &rr =
                nic_va_rr_[static_cast<std::size_t>(i) * num_vnets + v];
            vc = -1;
            for (int t = 0; t < params_.vcs_per_vnet; ++t) {
                int cand = params_.vcIndex(
                    v, 0, (rr + t) % params_.vcs_per_vnet);
                std::size_t x =
                    static_cast<std::size_t>(i) * V_ + cand;
                if (!inj_busy_[x] && inj_credits_[x] > 0) {
                    vc = cand;
                    rr = ((rr + t) + 1) % params_.vcs_per_vnet;
                    break;
                }
            }
            if (vc < 0)
                continue; // no VC or no credit: try another vnet
            inj_busy_[static_cast<std::size_t>(i) * V_ + vc] = 1;
            nicq_cur_vc_[static_cast<std::size_t>(i) * num_vnets + v] =
                vc;
            front.pkt->enter_tick = now;
        } else if (vc < 0 ||
                   inj_credits_[static_cast<std::size_t>(i) * V_ +
                                vc] <= 0) {
            continue; // streaming body flits but out of credits
        }

        Flit f = q.pop();
        --nic_queued_[i];
        --compute_occ_[static_cast<std::size_t>(i) * compute_words +
                       occ_nic_queued];
        f.vc = static_cast<std::int8_t>(vc);
        f.vc_class = 0;
        f.ready_cycle = now;
        --inj_credits_[static_cast<std::size_t>(i) * V_ + vc];
        if (f.isTail()) {
            inj_busy_[static_cast<std::size_t>(i) * V_ + vc] = 0;
            nicq_cur_vc_[static_cast<std::size_t>(i) * num_vnets + v] =
                -1;
        }
        pushFlit(inj, now, std::move(f));
        ++d_flits_sent_[i];
        nic_rr_vnet_[i] = (v + 1) % num_vnets;
        break;
    }
}

std::uint8_t
SoaCycleFabric::dimOf(int port)
{
    switch (port) {
      case port_east:
      case port_west:
        return 0;
      case port_north:
      case port_south:
        return 1;
      default:
        return 2;
    }
}

std::uint8_t
SoaCycleFabric::nextVcClass(int i, const Flit &head, int out_port) const
{
    if (params_.vc_classes == 1 || out_port == port_local)
        return 0;
    std::uint8_t dim = dimOf(out_port);
    // The dateline class is per dimension: reset on dimension change,
    // set after crossing the wrap link of the current dimension.
    std::uint8_t cls = (dim == head.last_dim) ? head.vc_class : 0;
    if (topo_.isWrapLink(i, out_port))
        cls = 1;
    return cls;
}

int
SoaCycleFabric::selectOutputPort(int i, const Flit &head,
                                 const std::vector<int> &cand,
                                 int in_port) const
{
    if (cand.size() == 1)
        return cand[0];
    // Adaptive selection: most free credits in the pool the packet
    // would use; ties break towards the first candidate the routing
    // algorithm listed (its static preference).
    int best = -1;
    int best_credits = -1;
    for (int port : cand) {
        if (port == in_port)
            continue; // no U-turns
        int cls = nextVcClass(i, head, port);
        int credits = 0;
        for (int k = 0; k < params_.vcs_per_vnet; ++k) {
            int vc = params_.vcIndex(head.vnet, cls, k);
            std::size_t x = vi(i, port, vc);
            if (!ovc_busy_[x])
                credits += ovc_credits_[x];
        }
        if (credits > best_credits) {
            best_credits = credits;
            best = port;
        }
    }
    return best >= 0 ? best : cand[0];
}

int
SoaCycleFabric::allocateOutVc(int i, int out_port, int vnet, int cls)
{
    std::int32_t &rr =
        op_va_rr_[pi(i, out_port) * C_ + vnet * params_.vc_classes +
                  cls];
    for (int k = 0; k < params_.vcs_per_vnet; ++k) {
        int idx = (rr + k) % params_.vcs_per_vnet;
        int vc = params_.vcIndex(vnet, cls, idx);
        std::size_t x = vi(i, out_port, vc);
        if (!ovc_busy_[x]) {
            ovc_busy_[x] = 1;
            rr = (idx + 1) % params_.vcs_per_vnet;
            return vc;
        }
    }
    return -1;
}

void
SoaCycleFabric::routerComputeVa(int i, Cycle now)
{
    // Rotate the starting input port each cycle so no port enjoys
    // permanent priority for fresh output VCs.
    int start = static_cast<int>(now % P_);
    for (int k = 0; k < P_; ++k) {
        int p = (start + k) % P_;
        for (int v = 0; v < V_; ++v) {
            std::size_t x = vi(i, p, v);
            if (ivc_state_[x] != vc_need_va)
                continue;
            if (fifo_size_[x] == 0)
                panic("router", i, ": NeedVA VC with empty fifo");
            const Flit &head = fifo_[x * D_ + fifo_head_[x]];
            if (!head.isHead())
                panic("router", i, ": NeedVA VC fronted by body flit");
            auto &scratch = route_scratch_[i];
            scratch.clear();
            routing_.route(topo_, i, head.pkt->dst, scratch);
            int out_port = selectOutputPort(i, head, scratch, p);
            std::uint8_t cls = nextVcClass(i, head, out_port);
            int out_vc = allocateOutVc(i, out_port, head.vnet, cls);
            if (out_vc < 0)
                continue; // retry next cycle
            ivc_state_[x] = vc_active;
            ivc_out_port_[x] = static_cast<std::int16_t>(out_port);
            ivc_out_vc_[x] = static_cast<std::int16_t>(out_vc);
            ivc_out_class_[x] = cls;
            ivc_out_dim_[x] = dimOf(out_port);
        }
    }
}

void
SoaCycleFabric::routerComputeSa(int i, Cycle now)
{
    int winner[max_ports];

    // Input stage: each input port nominates one ready VC.
    for (int p = 0; p < P_; ++p) {
        winner[p] = -1;
        std::size_t base = vi(i, p, 0);
        int rr = ip_sa_rr_[pi(i, p)];
        for (int k = 0; k < V_; ++k) {
            int v = (rr + k) % V_;
            std::size_t x = base + v;
            if (ivc_state_[x] != vc_active || fifo_size_[x] == 0)
                continue;
            const Flit &f = fifo_[x * D_ + fifo_head_[x]];
            if (f.ready_cycle > now)
                continue;
            if (ovc_credits_[vi(i, ivc_out_port_[x],
                                ivc_out_vc_[x])] <= 0)
                continue;
            winner[p] = v;
            break;
        }
    }

    // Output stage: each output port grants one input port.
    for (int op = 0; op < P_; ++op) {
        if (out_link_[pi(i, op)] < 0)
            continue;
        int granted = -1;
        int rr = op_sa_rr_[pi(i, op)];
        for (int k = 0; k < P_; ++k) {
            int p = (rr + k) % P_;
            if (winner[p] < 0)
                continue;
            if (ivc_out_port_[vi(i, p, winner[p])] != op)
                continue;
            granted = p;
            break;
        }
        if (granted < 0)
            continue;
        op_sa_rr_[pi(i, op)] = (granted + 1) % P_;

        // Switch + link traversal for the granted flit.
        std::size_t x = vi(i, granted, winner[granted]);
        ip_sa_rr_[pi(i, granted)] = (winner[granted] + 1) % V_;
        Flit f = std::move(fifo_[x * D_ + fifo_head_[x]]);
        std::uint16_t h = static_cast<std::uint16_t>(fifo_head_[x] + 1);
        fifo_head_[x] = h == D_ ? 0 : h;
        --fifo_size_[x];
        --compute_occ_[static_cast<std::size_t>(i) * compute_words +
                       occ_buffered];
        int out_vc = ivc_out_vc_[x];
        f.vc = static_cast<std::int8_t>(out_vc);
        f.vc_class = ivc_out_class_[x];
        if (op != port_local) {
            f.last_dim = ivc_out_dim_[x];
            ++d_link_traversals_[i];
            if (f.isHead())
                ++f.pkt->hops;
        }
        --ovc_credits_[vi(i, op, out_vc)];
        ++d_flits_routed_[i];

        bool was_tail = f.isTail();
        pushFlit(links_[out_link_[pi(i, op)]], now, std::move(f));

        // Return the freed buffer slot to the upstream sender.
        std::int32_t in_id = in_link_[pi(i, granted)];
        if (in_id >= 0)
            pushCredit(links_[in_id], now, winner[granted]);

        if (was_tail) {
            ovc_busy_[vi(i, op, out_vc)] = 0;
            ivc_out_port_[x] = -1;
            ivc_out_vc_[x] = -1;
            if (fifo_size_[x] == 0) {
                ivc_state_[x] = vc_idle;
            } else {
                if (!fifo_[x * D_ + fifo_head_[x]].isHead())
                    panic("router", i,
                          ": tail departed but next flit is not a "
                          "head");
                ivc_state_[x] = vc_need_va;
            }
        }

        winner[granted] = -1; // one grant per input port per cycle
    }
}

void
SoaCycleFabric::routerCommit(int i, Cycle now)
{
    for (int p = 0; p < P_; ++p) {
        std::int32_t in_id = in_link_[pi(i, p)];
        if (in_id < 0)
            continue;
        SoaLink &l = links_[in_id];
        while (flitReady(l, now)) {
            Flit f = popFlit(l);
            if (f.vc < 0 || f.vc >= V_)
                panic("router", i, ": flit with unallocated VC");
            std::size_t x = vi(i, p, f.vc);
            if (fifo_size_[x] >= D_)
                panic("router", i, " port ", portName(p), " vc ",
                      static_cast<int>(f.vc),
                      ": buffer overflow (credit protocol violated)");
            f.ready_cycle = now + params_.pipeline_stages;
            ++d_buffer_writes_[i];
            bool was_empty = fifo_size_[x] == 0;
            bool is_head = f.isHead();
            std::uint16_t slot =
                static_cast<std::uint16_t>(fifo_head_[x] +
                                           fifo_size_[x]);
            if (slot >= D_)
                slot = static_cast<std::uint16_t>(slot - D_);
            fifo_[x * D_ + slot] = std::move(f);
            ++fifo_size_[x];
            ++compute_occ_[static_cast<std::size_t>(i) *
                               compute_words +
                           occ_buffered];
            if (ivc_state_[x] == vc_idle) {
                if (!was_empty || !is_head)
                    panic("router", i,
                          ": idle VC must receive a head flit first");
                ivc_state_[x] = vc_need_va;
            }
        }
    }
    for (int p = 0; p < P_; ++p) {
        std::int32_t out_id = out_link_[pi(i, p)];
        if (out_id < 0)
            continue;
        SoaLink &l = links_[out_id];
        while (creditReady(l, now))
            ++ovc_credits_[vi(i, p, popCredit(l))];
    }
}

void
SoaCycleFabric::nicCommit(int i, Cycle now)
{
    SoaLink &ej = links_[out_link_[pi(i, port_local)]];
    while (flitReady(ej, now)) {
        Flit f = popFlit(ej);
        // The ejection buffer drains instantly: return the credit for
        // the slot right away.
        pushCredit(ej, now, f.vc);
        ++d_flits_received_[i];
        PacketPtr pkt = f.pkt;
        std::uint32_t want = params_.flitsPerPacket(pkt->size_bytes);
        std::uint32_t got = ++rx_[i][pkt->id];
        if (got == want) {
            rx_[i].erase(pkt->id);
            pkt->deliver_tick = now + 1;
            completed_[i].push_back(std::move(pkt));
        } else if (got > want) {
            panic("nic", i, ": duplicate flits for packet ", pkt->id);
        }
    }
}

void
SoaCycleFabric::flushNodeStats(int i)
{
    // Counters are integer-valued and far below 2^53, so a batched
    // double add lands on the same value as the object backend's
    // per-event increments.
    if (d_flits_routed_[i]) {
        router_stats_[i]->flitsRouted +=
            static_cast<double>(d_flits_routed_[i]);
        d_flits_routed_[i] = 0;
    }
    if (d_buffer_writes_[i]) {
        router_stats_[i]->bufferWrites +=
            static_cast<double>(d_buffer_writes_[i]);
        d_buffer_writes_[i] = 0;
    }
    if (d_link_traversals_[i]) {
        router_stats_[i]->linkTraversals +=
            static_cast<double>(d_link_traversals_[i]);
        d_link_traversals_[i] = 0;
    }
    if (d_flits_sent_[i]) {
        nic_stats_[i]->flitsSent +=
            static_cast<double>(d_flits_sent_[i]);
        d_flits_sent_[i] = 0;
    }
    if (d_flits_received_[i]) {
        nic_stats_[i]->flitsReceived +=
            static_cast<double>(d_flits_received_[i]);
        d_flits_received_[i] = 0;
    }
}

void
SoaCycleFabric::compute(StepEngine &engine, Cycle now,
                        const std::vector<char> &stalled)
{
    compute_list_.clear();
    scan_(compute_occ_.data(), n_, compute_words, compute_list_);
    if (compute_list_.empty())
        return;
    phase_now_ = now;
    phase_stalled_ = &stalled;
    engine.forRange(
        compute_list_.size(), [this](std::size_t b, std::size_t e) {
            Cycle now = phase_now_;
            const std::vector<char> &stalled = *phase_stalled_;
            for (std::size_t k = b; k < e; ++k) {
                int i = compute_list_[k];
                nicCompute(i, now);
                if (!stalled[i]) {
                    routerComputeVa(i, now);
                    routerComputeSa(i, now);
                }
            }
        });
}

void
SoaCycleFabric::commit(StepEngine &engine, Cycle now,
                       const std::vector<char> &stalled)
{
    commit_list_.clear();
    scan_(commit_occ_.data(), n_, commit_words, commit_list_);
    if (!commit_list_.empty()) {
        phase_now_ = now;
        phase_stalled_ = &stalled;
        engine.forRange(
            commit_list_.size(), [this](std::size_t b, std::size_t e) {
                Cycle now = phase_now_;
                const std::vector<char> &stalled = *phase_stalled_;
                for (std::size_t k = b; k < e; ++k) {
                    int i = commit_list_[k];
                    if (!stalled[i])
                        routerCommit(i, now);
                    nicCommit(i, now);
                }
            });
    }
    // Sequential post-barrier stat flush: only nodes visited this
    // cycle can hold non-zero deltas; flushing is idempotent, so a
    // node on both lists is fine.
    for (int i : compute_list_)
        flushNodeStats(i);
    for (int i : commit_list_)
        flushNodeStats(i);
}

std::vector<PacketPtr> &
SoaCycleFabric::completed(std::size_t node)
{
    return completed_[node];
}

RouterActivity
SoaCycleFabric::routerActivity(std::size_t node) const
{
    RouterActivity a;
    a.flits_routed = router_stats_[node]->flitsRouted.value();
    a.buffer_writes = router_stats_[node]->bufferWrites.value();
    a.link_traversals = router_stats_[node]->linkTraversals.value();
    return a;
}

void
SoaCycleFabric::save(ArchiveWriter &aw) const
{
    // Packet table: same collection set (and the table orders by id),
    // so the bytes match the object backend.
    PacketTable table;
    for (int i = 0; i < n_; ++i)
        for (int p = 0; p < P_; ++p)
            for (int v = 0; v < V_; ++v) {
                std::size_t x = vi(i, p, v);
                for (std::uint16_t k = 0; k < fifo_size_[x]; ++k) {
                    std::uint32_t s = fifo_head_[x] + k;
                    if (s >= static_cast<std::uint32_t>(D_))
                        s -= D_;
                    collectPacket(table, fifo_[x * D_ + s].pkt);
                }
            }
    for (int i = 0; i < n_; ++i)
        for (int v = 0; v < num_vnets; ++v) {
            const FlitRing &q =
                nicq_[static_cast<std::size_t>(i) * num_vnets + v];
            for (std::uint32_t k = 0; k < q.size; ++k)
                collectPacket(table, q.at(k).pkt);
        }
    for (const SoaLink &l : links_)
        for (std::uint32_t k = 0; k < l.fsize; ++k)
            collectPacket(
                table, l.flits[(l.fhead + k) & (l.cap - 1)].flit.pkt);
    savePacketTable(aw, table);

    // Per-router sections, identical field order to Router::save.
    for (int i = 0; i < n_; ++i) {
        aw.beginSection("router");
        for (int p = 0; p < P_; ++p) {
            aw.putI64(ip_sa_rr_[pi(i, p)]);
            for (int v = 0; v < V_; ++v) {
                std::size_t x = vi(i, p, v);
                aw.putU8(ivc_state_[x]);
                aw.putI64(ivc_out_port_[x]);
                aw.putI64(ivc_out_vc_[x]);
                aw.putU8(ivc_out_class_[x]);
                aw.putU8(ivc_out_dim_[x]);
                aw.putU64(fifo_size_[x]);
                for (std::uint16_t k = 0; k < fifo_size_[x]; ++k) {
                    std::uint32_t s = fifo_head_[x] + k;
                    if (s >= static_cast<std::uint32_t>(D_))
                        s -= D_;
                    saveFlit(aw, fifo_[x * D_ + s]);
                }
            }
        }
        for (int p = 0; p < P_; ++p) {
            aw.putI64(op_sa_rr_[pi(i, p)]);
            aw.putU64(C_);
            for (int c = 0; c < C_; ++c)
                aw.putI64(op_va_rr_[pi(i, p) * C_ + c]);
            for (int v = 0; v < V_; ++v) {
                std::size_t x = vi(i, p, v);
                aw.putBool(ovc_busy_[x] != 0);
                aw.putI64(ovc_credits_[x]);
            }
        }
        aw.endSection();
    }

    // Per-NIC sections, identical field order to Nic::save.
    for (int i = 0; i < n_; ++i) {
        if (!completed_[i].empty())
            panic("nic", i, ": checkpoint with undrained completions");
        aw.beginSection("nic");
        for (int v = 0; v < num_vnets; ++v) {
            std::size_t x = static_cast<std::size_t>(i) * num_vnets + v;
            aw.putI64(nicq_cur_vc_[x]);
            const FlitRing &q = nicq_[x];
            aw.putU64(q.size);
            for (std::uint32_t k = 0; k < q.size; ++k)
                saveFlit(aw, q.at(k));
        }
        for (int v = 0; v < V_; ++v) {
            std::size_t x = static_cast<std::size_t>(i) * V_ + v;
            aw.putBool(inj_busy_[x] != 0);
            aw.putI64(inj_credits_[x]);
        }
        for (int v = 0; v < num_vnets; ++v)
            aw.putI64(
                nic_va_rr_[static_cast<std::size_t>(i) * num_vnets +
                           v]);
        aw.putI64(nic_rr_vnet_[i]);
        aw.putU64(nic_queued_[i]);
        aw.putU64(rx_[i].size());
        for (const auto &[id, count] : rx_[i]) {
            aw.putU64(id);
            aw.putU32(count);
        }
        aw.endSection();
    }

    // Per-link sections, identical field order to Link::save.
    for (const SoaLink &l : links_) {
        aw.beginSection("link");
        aw.putU64(l.fsize);
        for (std::uint32_t k = 0; k < l.fsize; ++k) {
            const TimedFlit &tf = l.flits[(l.fhead + k) & (l.cap - 1)];
            aw.putU64(tf.cycle);
            saveFlit(aw, tf.flit);
        }
        aw.putU64(l.csize);
        for (std::uint32_t k = 0; k < l.csize; ++k) {
            const TimedCredit &tc =
                l.credits[(l.chead + k) & (l.cap - 1)];
            aw.putU64(tc.cycle);
            aw.putI64(tc.vc);
        }
        aw.endSection();
    }
}

void
SoaCycleFabric::restore(ArchiveReader &ar)
{
    PacketTable table = restorePacketTable(ar);

    for (int i = 0; i < n_; ++i) {
        ar.expectSection("router");
        for (int p = 0; p < P_; ++p) {
            ip_sa_rr_[pi(i, p)] =
                static_cast<std::int32_t>(ar.getI64());
            for (int v = 0; v < V_; ++v) {
                std::size_t x = vi(i, p, v);
                ivc_state_[x] = ar.getU8();
                ivc_out_port_[x] =
                    static_cast<std::int16_t>(ar.getI64());
                ivc_out_vc_[x] =
                    static_cast<std::int16_t>(ar.getI64());
                ivc_out_class_[x] = ar.getU8();
                ivc_out_dim_[x] = ar.getU8();
                std::uint64_t sz = ar.getU64();
                if (sz > static_cast<std::uint64_t>(D_))
                    panic("soa restore: fifo larger than "
                          "buffer_depth");
                fifo_head_[x] = 0;
                fifo_size_[x] = static_cast<std::uint16_t>(sz);
                for (std::uint64_t k = 0; k < sz; ++k)
                    fifo_[x * D_ + k] = restoreFlit(ar, table);
            }
        }
        for (int p = 0; p < P_; ++p) {
            op_sa_rr_[pi(i, p)] =
                static_cast<std::int32_t>(ar.getI64());
            std::uint64_t n_rr = ar.getU64();
            if (n_rr != static_cast<std::uint64_t>(C_))
                panic("router ", i, ": VA arbiter shape mismatch");
            for (int c = 0; c < C_; ++c)
                op_va_rr_[pi(i, p) * C_ + c] =
                    static_cast<std::int32_t>(ar.getI64());
            for (int v = 0; v < V_; ++v) {
                std::size_t x = vi(i, p, v);
                ovc_busy_[x] = ar.getBool() ? 1 : 0;
                ovc_credits_[x] =
                    static_cast<std::int32_t>(ar.getI64());
            }
        }
        ar.endSection();
    }

    for (int i = 0; i < n_; ++i) {
        ar.expectSection("nic");
        for (int v = 0; v < num_vnets; ++v) {
            std::size_t x = static_cast<std::size_t>(i) * num_vnets + v;
            nicq_cur_vc_[x] = static_cast<std::int32_t>(ar.getI64());
            FlitRing &q = nicq_[x];
            q.head = 0;
            q.size = 0;
            std::uint64_t sz = ar.getU64();
            for (std::uint64_t k = 0; k < sz; ++k)
                q.push(restoreFlit(ar, table));
        }
        for (int v = 0; v < V_; ++v) {
            std::size_t x = static_cast<std::size_t>(i) * V_ + v;
            inj_busy_[x] = ar.getBool() ? 1 : 0;
            inj_credits_[x] = static_cast<std::int32_t>(ar.getI64());
        }
        for (int v = 0; v < num_vnets; ++v)
            nic_va_rr_[static_cast<std::size_t>(i) * num_vnets + v] =
                static_cast<std::int32_t>(ar.getI64());
        nic_rr_vnet_[i] = static_cast<std::int32_t>(ar.getI64());
        nic_queued_[i] = ar.getU64();
        rx_[i].clear();
        std::uint64_t n_rx = ar.getU64();
        for (std::uint64_t k = 0; k < n_rx; ++k) {
            PacketId id = ar.getU64();
            rx_[i][id] = ar.getU32();
        }
        completed_[i].clear();
        ar.endSection();
    }

    for (SoaLink &l : links_) {
        ar.expectSection("link");
        l.fhead = 0;
        std::uint64_t nf = ar.getU64();
        if (nf > l.cap)
            panic("soa restore: link flit ring overflow");
        l.fsize = static_cast<std::uint32_t>(nf);
        for (std::uint64_t k = 0; k < nf; ++k) {
            l.flits[k].cycle = ar.getU64();
            l.flits[k].flit = restoreFlit(ar, table);
        }
        l.chead = 0;
        std::uint64_t nc = ar.getU64();
        if (nc > l.cap)
            panic("soa restore: link credit ring overflow");
        l.csize = static_cast<std::uint32_t>(nc);
        for (std::uint64_t k = 0; k < nc; ++k) {
            l.credits[k].cycle = ar.getU64();
            l.credits[k].vc = static_cast<std::int16_t>(ar.getI64());
        }
        ar.endSection();
    }

    rebuildOccupancy();
}

void
SoaCycleFabric::rebuildOccupancy()
{
    std::fill(compute_occ_.begin(), compute_occ_.end(), 0);
    std::fill(commit_occ_.begin(), commit_occ_.end(), 0);
    for (int i = 0; i < n_; ++i) {
        std::uint32_t buffered = 0;
        for (int p = 0; p < P_; ++p)
            for (int v = 0; v < V_; ++v)
                buffered += fifo_size_[vi(i, p, v)];
        compute_occ_[static_cast<std::size_t>(i) * compute_words +
                     occ_buffered] = buffered;
        std::uint32_t queued = 0;
        for (int v = 0; v < num_vnets; ++v)
            queued +=
                nicq_[static_cast<std::size_t>(i) * num_vnets + v]
                    .size;
        compute_occ_[static_cast<std::size_t>(i) * compute_words +
                     occ_nic_queued] = queued;
    }
    for (SoaLink &l : links_) {
        *l.flit_occ += l.fsize;
        *l.cred_occ += l.csize;
    }
    compute_list_.clear();
    commit_list_.clear();
    std::fill(d_flits_routed_.begin(), d_flits_routed_.end(), 0);
    std::fill(d_buffer_writes_.begin(), d_buffer_writes_.end(), 0);
    std::fill(d_link_traversals_.begin(), d_link_traversals_.end(), 0);
    std::fill(d_flits_sent_.begin(), d_flits_sent_.end(), 0);
    std::fill(d_flits_received_.begin(), d_flits_received_.end(), 0);
}

} // namespace kernel
} // namespace noc
} // namespace rasim
