#include "noc/kernel/soa_deflect.hh"

#include <algorithm>

#include "noc/topology.hh"
#include "sim/logging.hh"

namespace rasim
{
namespace noc
{
namespace kernel
{

namespace
{

void
saveDFlitFields(ArchiveWriter &aw, const DFlit &df)
{
    aw.putU64(df.pkt->id);
    aw.putU32(df.seq);
    aw.putU32(df.deflections);
    aw.putU32(df.hops);
    aw.putU64(df.birth);
}

DFlit
restoreDFlit(ArchiveReader &ar, const PacketTable &table)
{
    DFlit df;
    PacketId id = ar.getU64();
    df.seq = ar.getU32();
    df.deflections = ar.getU32();
    df.hops = ar.getU32();
    df.birth = ar.getU64();
    df.pkt = table.at(id);
    return df;
}

/** Oldest-first order: birth, then packet id, then flit sequence. */
bool
olderThan(const DFlit &a, const DFlit &b)
{
    if (a.birth != b.birth)
        return a.birth < b.birth;
    if (a.pkt->id != b.pkt->id)
        return a.pkt->id < b.pkt->id;
    return a.seq < b.seq;
}

} // namespace

void
SoaDeflectFabric::DRing::grow()
{
    std::size_t old = buf.size();
    std::size_t ncap = old ? old * 2 : 8;
    std::vector<DFlit> nb(ncap);
    for (std::uint32_t k = 0; k < size; ++k)
        nb[k] = std::move(buf[(head + k) & (old - 1)]);
    buf = std::move(nb);
    head = 0;
}

SoaDeflectFabric::SoaDeflectFabric(const NocParams &params,
                                   const Topology &topo)
    : params_(params), topo_(topo)
{
    n_ = topo_.numNodes();
    P_ = topo_.numPorts();
    cap_ = P_ - 1;

    if (P_ > static_cast<int>(occ_words))
        fatal("network.kernel=soa supports at most ", occ_words,
              " ports per deflection router; topology '", topo_.name(),
              "' has ", P_);

    simd_ = cpuid::resolveSimdLevel(params_.simd);
    scan_ = activeScanFor(simd_);

    conn_off_.assign(n_ + 1, 0);
    src_off_.assign(n_ + 1, 0);
    dest_word_.assign(static_cast<std::size_t>(n_) * P_, -1);

    std::vector<std::vector<std::int32_t>> sources(n_);
    for (int i = 0; i < n_; ++i) {
        for (int p = 1; p < P_; ++p) {
            int j = topo_.neighbor(i, p);
            if (j < 0)
                continue;
            conn_.push_back(static_cast<std::int8_t>(p));
            // Gather order: upstream node index ascending (then
            // port), the object backend's fixed source order.
            sources[j].push_back(i * P_ + p);
            dest_word_[static_cast<std::size_t>(i) * P_ + p] =
                static_cast<std::int32_t>(j * occ_words +
                                          topo_.inputPortAt(i, p));
        }
        conn_off_[i + 1] = static_cast<std::int32_t>(conn_.size());
    }
    for (int j = 0; j < n_; ++j) {
        for (std::int32_t s : sources[j])
            src_slot_.push_back(s);
        src_off_[j + 1] = static_cast<std::int32_t>(src_slot_.size());
    }

    arr_.assign(static_cast<std::size_t>(n_) * cap_, DFlit{});
    arr_cnt_.assign(n_, 0);
    out_.assign(static_cast<std::size_t>(n_) * P_, DFlit{});
    injq_.resize(n_);
    rx_.resize(n_);
    scratch_.resize(n_);

    route_occ_.assign(static_cast<std::size_t>(n_) * occ_words, 0);
    gather_occ_.assign(static_cast<std::size_t>(n_) * occ_words, 0);
    route_list_.reserve(n_);
    gather_list_.reserve(n_);
}

std::string
SoaDeflectFabric::description() const
{
    return std::string("soa (simd=") + cpuid::simdLevelName(simd_) +
           ")";
}

void
SoaDeflectFabric::enqueue(std::size_t node, const PacketPtr &pkt,
                          std::uint32_t nflits)
{
    for (std::uint32_t s = 0; s < nflits; ++s) {
        DFlit f;
        f.pkt = pkt;
        f.seq = s;
        injq_[node].push(std::move(f));
    }
    route_occ_[node * occ_words + occ_inject] += nflits;
}

void
SoaDeflectFabric::routeNode(int i, Cycle now,
                            const std::vector<char> &stalled)
{
    DFlit *cand = &arr_[static_cast<std::size_t>(i) * cap_];
    std::uint32_t cnt = arr_cnt_[i];
    NodeScratch &s = scratch_[i];

    // Ejection: one flit per cycle, oldest first. A stalled node's
    // ejection port is wedged: its flits keep routing (bufferless
    // fabrics cannot hold them) but never leave.
    if (cnt > 0 && !stalled[i]) {
        int eject = -1;
        for (std::uint32_t k = 0; k < cnt; ++k) {
            if (cand[k].pkt->dst != static_cast<NodeId>(i))
                continue;
            if (eject < 0 || cand[k].birth < cand[eject].birth ||
                (cand[k].birth == cand[eject].birth &&
                 cand[k].pkt->id < cand[eject].pkt->id)) {
                eject = static_cast<int>(k);
            }
        }
        if (eject >= 0) {
            DFlit f = std::move(cand[eject]);
            for (std::uint32_t k = eject; k + 1 < cnt; ++k)
                cand[k] = std::move(cand[k + 1]);
            --cnt;
            --s.fabric_delta;
            s.eject_deflections.push_back(f.deflections);
            PacketPtr pkt = f.pkt;
            // Hop accounting happens at ejection so a packet's flits
            // never race on the shared Packet.
            pkt->hops = std::max(pkt->hops, f.hops);
            std::uint32_t want =
                params_.flitsPerPacket(pkt->size_bytes);
            auto &rx = rx_[i];
            if (++rx[pkt->id] == want) {
                rx.erase(pkt->id);
                pkt->deliver_tick = now + 1;
                s.delivered.push_back(pkt);
            }
        }
    }

    // Free (connected) output ports, ascending.
    int free_ports[occ_words];
    int nfree = 0;
    for (std::int32_t c = conn_off_[i]; c < conn_off_[i + 1]; ++c)
        free_ports[nfree++] = conn_[c];

    // Injection: one flit per cycle when a slot remains.
    DRing &q = injq_[i];
    if (q.size > 0) {
        if (cnt < static_cast<std::uint32_t>(nfree)) {
            DFlit f = q.pop();
            --route_occ_[static_cast<std::size_t>(i) * occ_words +
                         occ_inject];
            --s.queued_delta;
            ++s.fabric_delta;
            f.birth = now;
            if (f.seq == 0)
                f.pkt->enter_tick = now;
            cand[cnt++] = std::move(f);
        } else {
            ++s.stalls;
        }
    }

    if (cnt > static_cast<std::uint32_t>(nfree))
        panic("deflection: more flits than ports at node ", i);

    // Oldest-first port assignment (insertion sort: the comparator is
    // a total order, so any correct sort matches std::sort exactly).
    for (std::uint32_t a = 1; a < cnt; ++a) {
        DFlit f = std::move(cand[a]);
        std::uint32_t b = a;
        while (b > 0 && olderThan(f, cand[b - 1])) {
            cand[b] = std::move(cand[b - 1]);
            --b;
        }
        cand[b] = std::move(f);
    }

    for (std::uint32_t k = 0; k < cnt; ++k) {
        DFlit &f = cand[k];
        auto [x, y] = topo_.coords(static_cast<NodeId>(i));
        auto [tx, ty] = topo_.coords(f.pkt->dst);
        // Productive direction preference: X first, then Y,
        // honouring torus wrap via the shorter way.
        int prefs[2];
        int nprefs = 0;
        int dx = tx - x, dy = ty - y;
        if (topo_.isWrapLink(topo_.nodeAt(topo_.columns() - 1, y),
                             port_east)) {
            if (dx > topo_.columns() / 2)
                dx -= topo_.columns();
            else if (dx < -(topo_.columns() / 2))
                dx += topo_.columns();
            if (dy > topo_.rows() / 2)
                dy -= topo_.rows();
            else if (dy < -(topo_.rows() / 2))
                dy += topo_.rows();
        }
        if (dx > 0)
            prefs[nprefs++] = port_east;
        else if (dx < 0)
            prefs[nprefs++] = port_west;
        if (dy > 0)
            prefs[nprefs++] = port_south;
        else if (dy < 0)
            prefs[nprefs++] = port_north;

        int chosen = -1;
        for (int t = 0; t < nprefs && chosen < 0; ++t)
            for (int w = 0; w < nfree; ++w)
                if (free_ports[w] == prefs[t]) {
                    chosen = prefs[t];
                    for (; w + 1 < nfree; ++w)
                        free_ports[w] = free_ports[w + 1];
                    --nfree;
                    break;
                }
        if (chosen < 0) {
            // Deflected: take any remaining port.
            if (nfree == 0)
                panic("deflection: no port left for a flit");
            chosen = free_ports[0];
            for (int w = 0; w + 1 < nfree; ++w)
                free_ports[w] = free_ports[w + 1];
            --nfree;
            ++f.deflections;
            ++s.deflected;
        }
        ++f.hops;
        std::size_t slot = static_cast<std::size_t>(i) * P_ + chosen;
        out_[slot] = std::move(f);
        gather_occ_[dest_word_[slot]] = 1;
    }
    arr_cnt_[i] = 0;
    route_occ_[static_cast<std::size_t>(i) * occ_words +
               occ_arriving] = 0;
}

void
SoaDeflectFabric::gatherNode(int j)
{
    DFlit *arr = &arr_[static_cast<std::size_t>(j) * cap_];
    std::uint32_t cnt = arr_cnt_[j];
    for (std::int32_t c = src_off_[j]; c < src_off_[j + 1]; ++c) {
        DFlit &slot = out_[src_slot_[c]];
        if (!slot.pkt)
            continue;
        arr[cnt++] = std::move(slot);
        slot.pkt.reset();
    }
    arr_cnt_[j] = cnt;
    // Arrival count feeds the next cycle's route scan; the staged
    // flags this node just consumed are cleared wholesale.
    route_occ_[static_cast<std::size_t>(j) * occ_words +
               occ_arriving] = cnt;
    std::uint32_t *block =
        &gather_occ_[static_cast<std::size_t>(j) * occ_words];
    for (std::size_t w = 0; w < occ_words; ++w)
        block[w] = 0;
}

void
SoaDeflectFabric::route(StepEngine &engine, Cycle now,
                        const std::vector<char> &stalled)
{
    route_list_.clear();
    scan_(route_occ_.data(), n_, occ_words, route_list_);
    if (route_list_.empty())
        return;
    phase_now_ = now;
    phase_stalled_ = &stalled;
    engine.forRange(route_list_.size(),
                    [this](std::size_t b, std::size_t e) {
                        for (std::size_t k = b; k < e; ++k)
                            routeNode(route_list_[k], phase_now_,
                                      *phase_stalled_);
                    });
}

void
SoaDeflectFabric::gather(StepEngine &engine)
{
    gather_list_.clear();
    scan_(gather_occ_.data(), n_, occ_words, gather_list_);
    if (gather_list_.empty())
        return;
    engine.forRange(gather_list_.size(),
                    [this](std::size_t b, std::size_t e) {
                        for (std::size_t k = b; k < e; ++k)
                            gatherNode(gather_list_[k]);
                    });
}

const std::vector<int> &
SoaDeflectFabric::scratchNodes() const
{
    // Only routeNode touches scratch, so the route worklist covers
    // every node with a non-identity fold.
    return route_list_;
}

NodeScratch &
SoaDeflectFabric::scratch(std::size_t node)
{
    return scratch_[node];
}

void
SoaDeflectFabric::save(ArchiveWriter &aw) const
{
    for (const DFlit &df : out_)
        if (df.pkt)
            panic("deflection net: checkpoint mid-cycle "
                  "(staging slot occupied)");

    PacketTable table;
    for (int i = 0; i < n_; ++i)
        for (std::uint32_t k = 0; k < arr_cnt_[i]; ++k)
            collectPacket(table,
                          arr_[static_cast<std::size_t>(i) * cap_ + k]
                              .pkt);
    for (const DRing &q : injq_)
        for (std::uint32_t k = 0; k < q.size; ++k)
            collectPacket(table, q.at(k).pkt);
    savePacketTable(aw, table);

    for (int i = 0; i < n_; ++i) {
        aw.putU64(arr_cnt_[i]);
        for (std::uint32_t k = 0; k < arr_cnt_[i]; ++k)
            saveDFlitFields(
                aw, arr_[static_cast<std::size_t>(i) * cap_ + k]);
    }
    for (const DRing &q : injq_) {
        aw.putU64(q.size);
        for (std::uint32_t k = 0; k < q.size; ++k)
            saveDFlitFields(aw, q.at(k));
    }
    for (const auto &rx : rx_) {
        aw.putU64(rx.size());
        for (const auto &[id, count] : rx) {
            aw.putU64(id);
            aw.putU32(count);
        }
    }
}

void
SoaDeflectFabric::restore(ArchiveReader &ar)
{
    PacketTable table = restorePacketTable(ar);

    for (int i = 0; i < n_; ++i) {
        std::uint64_t cnt = ar.getU64();
        if (cnt > static_cast<std::uint64_t>(cap_))
            panic("soa restore: arrival set larger than port count");
        arr_cnt_[i] = static_cast<std::uint32_t>(cnt);
        for (std::uint64_t k = 0; k < cnt; ++k)
            arr_[static_cast<std::size_t>(i) * cap_ + k] =
                restoreDFlit(ar, table);
    }
    for (DRing &q : injq_) {
        q.head = 0;
        q.size = 0;
        std::uint64_t cnt = ar.getU64();
        for (std::uint64_t k = 0; k < cnt; ++k)
            q.push(restoreDFlit(ar, table));
    }
    for (auto &rx : rx_) {
        rx.clear();
        std::uint64_t cnt = ar.getU64();
        for (std::uint64_t k = 0; k < cnt; ++k) {
            PacketId id = ar.getU64();
            rx[id] = ar.getU32();
        }
    }

    std::fill(route_occ_.begin(), route_occ_.end(), 0);
    std::fill(gather_occ_.begin(), gather_occ_.end(), 0);
    for (int i = 0; i < n_; ++i) {
        route_occ_[static_cast<std::size_t>(i) * occ_words +
                   occ_arriving] = arr_cnt_[i];
        route_occ_[static_cast<std::size_t>(i) * occ_words +
                   occ_inject] = injq_[i].size;
    }
    route_list_.clear();
    gather_list_.clear();
}

} // namespace kernel
} // namespace noc
} // namespace rasim
