#include "noc/kernel/backend.hh"

#include "noc/kernel/object_cycle.hh"
#include "noc/kernel/object_deflect.hh"
#include "noc/kernel/soa_cycle.hh"
#include "noc/kernel/soa_deflect.hh"
#include "sim/logging.hh"

namespace rasim
{
namespace noc
{
namespace kernel
{

KernelKind
kernelKindFromString(const std::string &s)
{
    if (s == "object")
        return KernelKind::Object;
    if (s == "soa")
        return KernelKind::Soa;
    fatal("network.kernel: unknown kernel '", s,
          "' (expected object or soa)");
}

const char *
kernelKindName(KernelKind kind)
{
    switch (kind) {
      case KernelKind::Object:
        return "object";
      case KernelKind::Soa:
        return "soa";
    }
    return "?";
}

std::unique_ptr<CycleFabric>
makeCycleFabric(stats::Group *parent, const NocParams &params,
                const Topology &topo, const RoutingAlgorithm &routing)
{
    switch (kernelKindFromString(params.kernel)) {
      case KernelKind::Object:
        return std::make_unique<ObjectCycleFabric>(parent, params,
                                                   topo, routing);
      case KernelKind::Soa:
        return std::make_unique<SoaCycleFabric>(parent, params, topo,
                                                routing);
    }
    return nullptr;
}

std::unique_ptr<DeflectFabric>
makeDeflectFabric(const NocParams &params, const Topology &topo)
{
    switch (kernelKindFromString(params.kernel)) {
      case KernelKind::Object:
        return std::make_unique<ObjectDeflectFabric>(params, topo);
      case KernelKind::Soa:
        return std::make_unique<SoaDeflectFabric>(params, topo);
    }
    return nullptr;
}

} // namespace kernel
} // namespace noc
} // namespace rasim
