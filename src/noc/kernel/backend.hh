/**
 * @file
 * The NoC compute-backend layer: the detailed network models
 * (CycleNetwork, DeflectionNetwork) are thin orchestrators — they own
 * injection heaps, aggregate statistics and delivery callbacks — while
 * the per-cycle router/NIC/link state machine lives behind one of the
 * fabric interfaces below, selected by `network.kernel`:
 *
 *  - "object": the per-object Router/Nic/Link reference implementation
 *    (pointer-linked components stepped one at a time), and
 *  - "soa": the structure-of-arrays kernel — all per-router/per-port/
 *    per-VC state in flat, contiguous, index-addressed arrays, the
 *    RC/VA/SA/ST+LT stages run as batched passes over an active-node
 *    worklist, with an AVX2 occupancy scan behind runtime CPU dispatch.
 *
 * Both backends implement the same algorithm in the same per-node
 * operation order, so results are bit-identical: deliveries, the full
 * stats tree, and — because both emit the same archive byte stream —
 * checkpoints are interchangeable across backends.
 */

#ifndef RASIM_NOC_KERNEL_BACKEND_HH
#define RASIM_NOC_KERNEL_BACKEND_HH

#include <memory>
#include <string>
#include <vector>

#include "noc/packet.hh"
#include "noc/params.hh"
#include "sim/step_engine.hh"

namespace rasim
{

namespace stats
{
class Group;
}

namespace noc
{

class Topology;
class RoutingAlgorithm;

namespace kernel
{

enum class KernelKind
{
    Object,
    Soa,
};

/** Parse a `network.kernel` value; fatal() on an unknown name. */
KernelKind kernelKindFromString(const std::string &s);
const char *kernelKindName(KernelKind kind);

/** Per-router activity counters consumed by the power model. */
struct RouterActivity
{
    double flits_routed = 0.0;
    double buffer_writes = 0.0;
    double link_traversals = 0.0;
};

/**
 * Compute backend of the buffered VC network (CycleNetwork). The
 * orchestrator drives one cycle as: enqueue due packets (sequential),
 * compute (parallel phase 1: allocation + traversal), commit (parallel
 * phase 2: buffer writes + credit returns), then drain completed(i)
 * sequentially in node order.
 */
class CycleFabric
{
  public:
    virtual ~CycleFabric() = default;

    virtual const char *kindName() const = 0;

    /** Human-readable dispatch summary for the startup log line. */
    virtual std::string description() const = 0;

    /** Sequential, pre-phase: packetise @p pkt into node's NIC queue. */
    virtual void enqueue(std::size_t node, const PacketPtr &pkt,
                         Cycle now) = 0;

    /** Phase 1 over all nodes. @p stalled nodes skip router compute. */
    virtual void compute(StepEngine &engine, Cycle now,
                         const std::vector<char> &stalled) = 0;

    /** Phase 2 over all nodes. @p stalled nodes skip router commit. */
    virtual void commit(StepEngine &engine, Cycle now,
                        const std::vector<char> &stalled) = 0;

    /**
     * Packets fully received at @p node this cycle, in arrival order.
     * The orchestrator drains and clears this after the commit barrier
     * (sequentially, so delivery callbacks never run concurrently).
     */
    virtual std::vector<PacketPtr> &completed(std::size_t node) = 0;

    virtual RouterActivity routerActivity(std::size_t node) const = 0;

    /**
     * Checkpoint the fabric-resident state: the shared packet table
     * followed by per-router, per-NIC and per-link sections. Both
     * backends emit the identical byte stream, so a checkpoint taken
     * under one kernel restores under the other.
     */
    virtual void save(ArchiveWriter &aw) const = 0;
    virtual void restore(ArchiveReader &ar) = 0;
};

/**
 * A flit in flight in the bufferless deflection fabric, with its age
 * for oldest-first arbitration.
 */
struct DFlit
{
    PacketPtr pkt;
    std::uint32_t seq = 0;
    std::uint32_t deflections = 0;
    std::uint32_t hops = 0;
    Tick birth = 0; ///< cycle the flit entered the fabric
};

/**
 * Per-node side effects produced inside a parallel phase. Only node i
 * touches scratch(i); the orchestrator folds the slots into aggregate
 * stats and fires delivery callbacks in node-index order, so serial
 * and parallel runs accumulate (and float-round) identically.
 */
struct NodeScratch
{
    /** Deflection count of each flit ejected this cycle. */
    std::vector<std::uint32_t> eject_deflections;
    /** Packets whose last flit ejected this cycle. */
    std::vector<PacketPtr> delivered;
    std::uint64_t deflected = 0;
    std::uint64_t stalls = 0;
    std::int64_t fabric_delta = 0;
    std::int64_t queued_delta = 0;
};

/**
 * Compute backend of the bufferless deflection network. One cycle:
 * enqueue due flits (sequential), route (parallel phase 1: eject +
 * inject + port assignment into per-node staging), gather (parallel
 * phase 2: pull from upstream staging in fixed source order), then a
 * sequential scratch fold by the orchestrator.
 */
class DeflectFabric
{
  public:
    virtual ~DeflectFabric() = default;

    virtual const char *kindName() const = 0;
    virtual std::string description() const = 0;

    /** Sequential, pre-phase: append @p nflits flits of @p pkt to the
     *  node's injection queue. */
    virtual void enqueue(std::size_t node, const PacketPtr &pkt,
                         std::uint32_t nflits) = 0;

    virtual void route(StepEngine &engine, Cycle now,
                       const std::vector<char> &stalled) = 0;

    virtual void gather(StepEngine &engine) = 0;

    /**
     * Ascending node indices whose scratch may be non-empty this
     * cycle. Folding an untouched scratch is the identity, so a
     * backend may return all nodes (object) or just the active ones
     * (soa) — the fold result is bit-identical either way.
     */
    virtual const std::vector<int> &scratchNodes() const = 0;

    virtual NodeScratch &scratch(std::size_t node) = 0;

    /** Archive byte stream shared by both kernels (packet table,
     *  arrivals, injection queues, reassembly maps). */
    virtual void save(ArchiveWriter &aw) const = 0;
    virtual void restore(ArchiveReader &ar) = 0;
};

std::unique_ptr<CycleFabric>
makeCycleFabric(stats::Group *parent, const NocParams &params,
                const Topology &topo, const RoutingAlgorithm &routing);

std::unique_ptr<DeflectFabric>
makeDeflectFabric(const NocParams &params, const Topology &topo);

} // namespace kernel
} // namespace noc
} // namespace rasim

#endif // RASIM_NOC_KERNEL_BACKEND_HH
