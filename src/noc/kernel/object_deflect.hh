/**
 * @file
 * The per-object reference backend of the bufferless deflection
 * network: per-node STL containers (arrival vectors, staging slots,
 * injection deques) stepped exactly as DeflectionNetwork did before
 * the kernel split. Kept as the readable reference implementation the
 * SoA kernel is differentially tested against.
 */

#ifndef RASIM_NOC_KERNEL_OBJECT_DEFLECT_HH
#define RASIM_NOC_KERNEL_OBJECT_DEFLECT_HH

#include <deque>
#include <utility>
#include <vector>

#include "noc/kernel/backend.hh"
#include "sim/flat_map.hh"

namespace rasim
{
namespace noc
{
namespace kernel
{

class ObjectDeflectFabric : public DeflectFabric
{
  public:
    ObjectDeflectFabric(const NocParams &params, const Topology &topo);

    const char *kindName() const override { return "object"; }
    std::string description() const override;

    void enqueue(std::size_t node, const PacketPtr &pkt,
                 std::uint32_t nflits) override;
    void route(StepEngine &engine, Cycle now,
               const std::vector<char> &stalled) override;
    void gather(StepEngine &engine) override;
    const std::vector<int> &scratchNodes() const override;
    NodeScratch &scratch(std::size_t node) override;

    void save(ArchiveWriter &aw) const override;
    void restore(ArchiveReader &ar) override;

  private:
    void routeNode(int i, Cycle now, const std::vector<char> &stalled);
    void gatherNode(int j);

    const NocParams &params_;
    const Topology &topo_;

    /** Flits arriving at router i this cycle. */
    std::vector<std::vector<DFlit>> arriving_;
    /** Flit leaving node i through port p this cycle (out_[i][p]);
     *  a null pkt marks an empty slot. Written only by node i in the
     *  route phase, drained only by neighbor(i, p) in the gather
     *  phase — each slot has exactly one reader. */
    std::vector<std::vector<DFlit>> out_;
    /** Upstream (node, port) pairs feeding node j, ordered by node
     *  index: the fixed gather order that keeps arrival sets (and so
     *  the whole simulation) deterministic. */
    std::vector<std::vector<std::pair<int, int>>> sources_;
    /** Per-node injection queues (flits waiting for a free slot). */
    std::vector<std::deque<DFlit>> inject_queues_;
    /** Reassembly state per destination node: flits received per
     *  packet id. Split per node so the route phase stays
     *  partition-local. */
    std::vector<FlatMap<PacketId, std::uint32_t>> rx_;
    std::vector<NodeScratch> scratch_;
    /** All node indices, ascending (the object backend folds every
     *  scratch slot each cycle; untouched slots fold as identity). */
    std::vector<int> all_nodes_;
};

} // namespace kernel
} // namespace noc
} // namespace rasim

#endif // RASIM_NOC_KERNEL_OBJECT_DEFLECT_HH
