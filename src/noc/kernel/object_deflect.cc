#include "noc/kernel/object_deflect.hh"

#include <algorithm>

#include "noc/topology.hh"
#include "sim/logging.hh"

namespace rasim
{
namespace noc
{
namespace kernel
{

namespace
{

void
saveDFlitFields(ArchiveWriter &aw, const DFlit &df)
{
    aw.putU64(df.pkt->id);
    aw.putU32(df.seq);
    aw.putU32(df.deflections);
    aw.putU32(df.hops);
    aw.putU64(df.birth);
}

DFlit
restoreDFlit(ArchiveReader &ar, const PacketTable &table)
{
    DFlit df;
    PacketId id = ar.getU64();
    df.seq = ar.getU32();
    df.deflections = ar.getU32();
    df.hops = ar.getU32();
    df.birth = ar.getU64();
    df.pkt = table.at(id);
    return df;
}

} // namespace

ObjectDeflectFabric::ObjectDeflectFabric(const NocParams &params,
                                         const Topology &topo)
    : params_(params), topo_(topo)
{
    int n = topo_.numNodes();
    arriving_.resize(n);
    out_.resize(n);
    sources_.resize(n);
    inject_queues_.resize(n);
    rx_.resize(n);
    scratch_.resize(n);
    for (int i = 0; i < n; ++i)
        out_[i].resize(topo_.numPorts());
    // Gather order: upstream node index ascending (then port), the
    // same order the pre-refactor per-node loop produced arrivals in.
    for (int i = 0; i < n; ++i) {
        for (int p = 1; p < topo_.numPorts(); ++p) {
            int j = topo_.neighbor(i, p);
            if (j >= 0)
                sources_[j].emplace_back(i, p);
        }
    }
    all_nodes_.resize(n);
    for (int i = 0; i < n; ++i)
        all_nodes_[i] = i;
}

std::string
ObjectDeflectFabric::description() const
{
    return "object";
}

void
ObjectDeflectFabric::enqueue(std::size_t node, const PacketPtr &pkt,
                             std::uint32_t nflits)
{
    for (std::uint32_t s = 0; s < nflits; ++s) {
        DFlit f;
        f.pkt = pkt;
        f.seq = s;
        inject_queues_[node].push_back(std::move(f));
    }
}

void
ObjectDeflectFabric::routeNode(int i, Cycle now,
                               const std::vector<char> &stalled)
{
    std::vector<DFlit> &cand = arriving_[i];
    NodeScratch &s = scratch_[i];

    // Ejection: one flit per cycle, oldest first. Reassembly state is
    // per destination node, so only this partition touches rx_[i].
    // A stalled node's ejection port is wedged: its flits keep routing
    // (bufferless fabrics cannot hold them) but never leave — a
    // livelock only the progress watchdog can detect.
    if (!cand.empty() && !stalled[i]) {
        int eject = -1;
        for (std::size_t k = 0; k < cand.size(); ++k) {
            if (cand[k].pkt->dst != static_cast<NodeId>(i))
                continue;
            if (eject < 0 || cand[k].birth < cand[eject].birth ||
                (cand[k].birth == cand[eject].birth &&
                 cand[k].pkt->id < cand[eject].pkt->id)) {
                eject = static_cast<int>(k);
            }
        }
        if (eject >= 0) {
            DFlit f = std::move(cand[eject]);
            cand.erase(cand.begin() + eject);
            --s.fabric_delta;
            s.eject_deflections.push_back(f.deflections);
            PacketPtr pkt = f.pkt;
            // Hop accounting happens at ejection (not en route) so a
            // packet's flits never race on the shared Packet: every
            // flit of a packet ejects at the same node's partition.
            pkt->hops = std::max(pkt->hops, f.hops);
            std::uint32_t want =
                params_.flitsPerPacket(pkt->size_bytes);
            auto &rx = rx_[i];
            if (++rx[pkt->id] == want) {
                rx.erase(pkt->id);
                pkt->deliver_tick = now + 1;
                s.delivered.push_back(pkt);
            }
        }
    }

    // Count usable (connected) output ports.
    std::vector<int> free_ports;
    for (int p = 1; p < topo_.numPorts(); ++p)
        if (topo_.neighbor(i, p) >= 0)
            free_ports.push_back(p);

    // Injection: one flit per cycle when a slot remains.
    if (!inject_queues_[i].empty()) {
        if (cand.size() < free_ports.size()) {
            DFlit f = std::move(inject_queues_[i].front());
            inject_queues_[i].pop_front();
            --s.queued_delta;
            ++s.fabric_delta;
            f.birth = now;
            if (f.seq == 0)
                f.pkt->enter_tick = now;
            cand.push_back(std::move(f));
        } else {
            ++s.stalls;
        }
    }

    if (cand.size() > free_ports.size())
        panic("deflection: more flits than ports at node ", i);

    // Oldest-first port assignment.
    std::sort(cand.begin(), cand.end(),
              [](const DFlit &a, const DFlit &b) {
                  if (a.birth != b.birth)
                      return a.birth < b.birth;
                  if (a.pkt->id != b.pkt->id)
                      return a.pkt->id < b.pkt->id;
                  return a.seq < b.seq;
              });

    for (DFlit &f : cand) {
        auto [x, y] = topo_.coords(static_cast<NodeId>(i));
        auto [tx, ty] = topo_.coords(f.pkt->dst);
        // Productive direction preference: X first, then Y,
        // honouring torus wrap via the shorter way.
        std::vector<int> prefs;
        int dx = tx - x, dy = ty - y;
        if (topo_.isWrapLink(topo_.nodeAt(topo_.columns() - 1, y),
                             port_east)) {
            if (dx > topo_.columns() / 2)
                dx -= topo_.columns();
            else if (dx < -(topo_.columns() / 2))
                dx += topo_.columns();
            if (dy > topo_.rows() / 2)
                dy -= topo_.rows();
            else if (dy < -(topo_.rows() / 2))
                dy += topo_.rows();
        }
        if (dx > 0)
            prefs.push_back(port_east);
        else if (dx < 0)
            prefs.push_back(port_west);
        if (dy > 0)
            prefs.push_back(port_south);
        else if (dy < 0)
            prefs.push_back(port_north);

        int chosen = -1;
        for (int p : prefs) {
            auto it =
                std::find(free_ports.begin(), free_ports.end(), p);
            if (it != free_ports.end()) {
                chosen = p;
                free_ports.erase(it);
                break;
            }
        }
        if (chosen < 0) {
            // Deflected: take any remaining port.
            if (free_ports.empty())
                panic("deflection: no port left for a flit");
            chosen = free_ports.front();
            free_ports.erase(free_ports.begin());
            ++f.deflections;
            ++s.deflected;
        }
        ++f.hops;
        out_[i][chosen] = std::move(f);
    }
    cand.clear();
}

void
ObjectDeflectFabric::gatherNode(int j)
{
    std::vector<DFlit> &arr = arriving_[j];
    for (const auto &[i, p] : sources_[j]) {
        DFlit &slot = out_[i][p];
        if (!slot.pkt)
            continue;
        arr.push_back(std::move(slot));
        slot.pkt.reset();
    }
}

void
ObjectDeflectFabric::route(StepEngine &engine, Cycle now,
                           const std::vector<char> &stalled)
{
    std::size_t n = arriving_.size();
    engine.forEach(n, [this, now, &stalled](std::size_t i) {
        routeNode(static_cast<int>(i), now, stalled);
    });
}

void
ObjectDeflectFabric::gather(StepEngine &engine)
{
    std::size_t n = arriving_.size();
    engine.forEach(n, [this](std::size_t j) {
        gatherNode(static_cast<int>(j));
    });
}

const std::vector<int> &
ObjectDeflectFabric::scratchNodes() const
{
    return all_nodes_;
}

NodeScratch &
ObjectDeflectFabric::scratch(std::size_t node)
{
    return scratch_[node];
}

void
ObjectDeflectFabric::save(ArchiveWriter &aw) const
{
    // out_ staging is drained every cycle; a populated slot would mean
    // the checkpoint was taken mid-cycle.
    for (const auto &slots : out_)
        for (const DFlit &df : slots)
            if (df.pkt)
                panic("deflection net: checkpoint mid-cycle "
                      "(staging slot occupied)");

    PacketTable table;
    for (const auto &flits : arriving_)
        for (const DFlit &df : flits)
            collectPacket(table, df.pkt);
    for (const auto &q : inject_queues_)
        for (const DFlit &df : q)
            collectPacket(table, df.pkt);
    savePacketTable(aw, table);

    for (const auto &flits : arriving_) {
        aw.putU64(flits.size());
        for (const DFlit &df : flits)
            saveDFlitFields(aw, df);
    }
    for (const auto &q : inject_queues_) {
        aw.putU64(q.size());
        for (const DFlit &df : q)
            saveDFlitFields(aw, df);
    }
    // FlatMap iterates in ascending id order — same bytes as the
    // sort-before-save loop this replaces.
    for (const auto &rx : rx_) {
        aw.putU64(rx.size());
        for (const auto &[id, count] : rx) {
            aw.putU64(id);
            aw.putU32(count);
        }
    }
}

void
ObjectDeflectFabric::restore(ArchiveReader &ar)
{
    PacketTable table = restorePacketTable(ar);

    for (auto &flits : arriving_) {
        flits.clear();
        std::uint64_t n = ar.getU64();
        for (std::uint64_t i = 0; i < n; ++i)
            flits.push_back(restoreDFlit(ar, table));
    }
    for (auto &q : inject_queues_) {
        q.clear();
        std::uint64_t n = ar.getU64();
        for (std::uint64_t i = 0; i < n; ++i)
            q.push_back(restoreDFlit(ar, table));
    }
    for (auto &rx : rx_) {
        rx.clear();
        std::uint64_t n = ar.getU64();
        for (std::uint64_t i = 0; i < n; ++i) {
            PacketId id = ar.getU64();
            rx[id] = ar.getU32();
        }
    }
}

} // namespace kernel
} // namespace noc
} // namespace rasim
