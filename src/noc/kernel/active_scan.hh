/**
 * @file
 * Occupancy-block scan: the data-parallel primitive of the SoA kernel.
 *
 * The SoA fabrics maintain one fixed-width block of occupancy counters
 * per node (8 or 16 u32 words — 32 or 64 bytes — each word counting
 * one class of pending work, with exactly one writer per phase). A
 * node needs visiting in a phase iff its block is non-zero, so the
 * per-cycle worklist build reduces to "collect the indices of the
 * non-zero blocks" — a pure streaming scan over contiguous memory.
 * That is the kernel specialised for AVX2 (one 256-bit load + VPTEST
 * per 32-byte chunk); the scalar loop is bit-identical by construction
 * because both produce the same ascending index list.
 */

#ifndef RASIM_NOC_KERNEL_ACTIVE_SCAN_HH
#define RASIM_NOC_KERNEL_ACTIVE_SCAN_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/cpuid.hh"

namespace rasim
{
namespace noc
{
namespace kernel
{

/**
 * Append to @p out the ascending indices i in [0, blocks) for which
 * the u32 words occ[i*words_per_block .. (i+1)*words_per_block) are
 * not all zero. @p words_per_block must be a multiple of 8 (32-byte
 * chunks). @p out is NOT cleared.
 */
using ActiveScanFn = void (*)(const std::uint32_t *occ,
                              std::size_t blocks,
                              std::size_t words_per_block,
                              std::vector<int> &out);

/** Portable reference implementation. */
void activeScanScalar(const std::uint32_t *occ, std::size_t blocks,
                      std::size_t words_per_block,
                      std::vector<int> &out);

/** AVX2 implementation; only present when RASIM_SIMD compiled it in.
 *  Calling it on a CPU without AVX2 is undefined — resolve through
 *  activeScanFor() instead. */
#if defined(RASIM_SIMD_AVX2)
void activeScanAvx2(const std::uint32_t *occ, std::size_t blocks,
                    std::size_t words_per_block,
                    std::vector<int> &out);
#endif

/** Pick the implementation for a resolved SIMD level. */
ActiveScanFn activeScanFor(cpuid::SimdLevel level);

} // namespace kernel
} // namespace noc
} // namespace rasim

#endif // RASIM_NOC_KERNEL_ACTIVE_SCAN_HH
