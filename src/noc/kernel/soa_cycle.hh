/**
 * @file
 * Structure-of-arrays kernel for the buffered VC network.
 *
 * All per-router/per-port/per-VC state — VC state machines, arbiter
 * pointers, credits, in-flight flit slots and link shift registers —
 * lives in flat, contiguous, index-addressed arrays instead of
 * pointer-linked Router/Nic/Link objects. The RC/VA/SA/ST+LT stages
 * run as batched passes over an active-node worklist rebuilt each
 * cycle from per-node occupancy blocks (see active_scan.hh); nodes
 * with no buffered flits, queued packets or in-flight link traffic
 * are provably no-ops and are skipped entirely.
 *
 * Determinism: each pass executes the exact same per-node operation
 * sequence as the object backend (same arbiter rotations, same
 * iteration order inside a node), and phases only touch
 * partition-local state plus the single-writer ends of links — so
 * results are bit-identical to the object backend on deliveries,
 * stats and archive bytes, under serial and parallel engines alike.
 *
 * Occupancy single-writer discipline (TSan-clean without atomics):
 * every occupancy word has exactly one writing node per phase —
 * compute-block words are written only by their own node; a
 * commit-block word for an input port is incremented only by the
 * one upstream sender (compute) and decremented only by the owner
 * (commit). Worklists are rebuilt sequentially between phases.
 */

#ifndef RASIM_NOC_KERNEL_SOA_CYCLE_HH
#define RASIM_NOC_KERNEL_SOA_CYCLE_HH

#include <memory>
#include <vector>

#include "noc/kernel/active_scan.hh"
#include "noc/kernel/backend.hh"
#include "sim/cpuid.hh"
#include "sim/flat_map.hh"
#include "stats/group.hh"
#include "stats/stat.hh"

namespace rasim
{
namespace noc
{
namespace kernel
{

class SoaCycleFabric : public CycleFabric
{
  public:
    SoaCycleFabric(stats::Group *parent, const NocParams &params,
                   const Topology &topo,
                   const RoutingAlgorithm &routing);

    const char *kindName() const override { return "soa"; }
    std::string description() const override;

    void enqueue(std::size_t node, const PacketPtr &pkt,
                 Cycle now) override;
    void compute(StepEngine &engine, Cycle now,
                 const std::vector<char> &stalled) override;
    void commit(StepEngine &engine, Cycle now,
                const std::vector<char> &stalled) override;
    std::vector<PacketPtr> &completed(std::size_t node) override;
    RouterActivity routerActivity(std::size_t node) const override;

    void save(ArchiveWriter &aw) const override;
    void restore(ArchiveReader &ar) override;

    cpuid::SimdLevel simdLevel() const { return simd_; }

  private:
    /** Numeric values match Router::VcState for archive bytes. */
    static constexpr std::uint8_t vc_idle = 0;
    static constexpr std::uint8_t vc_need_va = 1;
    static constexpr std::uint8_t vc_active = 2;

    /** Compute-block word layout (8 u32 per node). */
    static constexpr int occ_buffered = 0;   ///< flits in input FIFOs
    static constexpr int occ_nic_queued = 1; ///< flits in NIC queues
    static constexpr int occ_inj_credits = 2; ///< credits on inj link
    static constexpr std::size_t compute_words = 8;
    /** Commit-block word layout (16 u32 per node): [0,P) in-port
     *  flits, [5,5+P) out-port credits, 10 ejection-link flits. */
    static constexpr int occ_out_credit_base = 5;
    static constexpr int occ_ej_flits = 10;
    static constexpr std::size_t commit_words = 16;

    static constexpr int max_ports = 16;

    struct TimedFlit
    {
        Cycle cycle = 0;
        Flit flit;
    };

    struct TimedCredit
    {
        Cycle cycle = 0;
        std::int16_t vc = 0;
    };

    /**
     * A link's two pipelines as fixed-capacity rings. Capacity is the
     * provable bound totalVcs * buffer_depth + latency + 2 (credit
     * conservation caps in-flight flits and outstanding credits at
     * the downstream buffer pool size). The occ pointers address the
     * occupancy word of each pipeline's consumer; push/pop helpers
     * keep them in sync.
     */
    struct SoaLink
    {
        int latency = 1;
        std::uint32_t fhead = 0, fsize = 0;
        std::uint32_t chead = 0, csize = 0;
        std::uint32_t cap = 0; ///< power of two; shared by both rings
        std::vector<TimedFlit> flits;
        std::vector<TimedCredit> credits;
        std::uint32_t *flit_occ = nullptr;
        std::uint32_t *cred_occ = nullptr;
    };

    /** Growable power-of-two ring for NIC injection queues: amortised
     *  allocation only up to the high-water mark, then steady-state
     *  allocation-free. */
    struct FlitRing
    {
        std::vector<Flit> buf;
        std::uint32_t head = 0, size = 0;

        Flit &front() { return buf[head]; }
        const Flit &at(std::uint32_t k) const
        {
            return buf[(head + k) & (buf.size() - 1)];
        }

        void
        push(Flit f)
        {
            if (size == buf.size())
                grow();
            buf[(head + size) & (buf.size() - 1)] = std::move(f);
            ++size;
        }

        Flit
        pop()
        {
            Flit f = std::move(buf[head]);
            head = (head + 1) & (buf.size() - 1);
            --size;
            return f;
        }

        void grow();
    };

    struct RouterStats : stats::Group
    {
        RouterStats(stats::Group *parent, int id);
        stats::Scalar flitsRouted;
        stats::Scalar bufferWrites;
        stats::Scalar linkTraversals;
    };

    struct NicStats : stats::Group
    {
        NicStats(stats::Group *parent, int node);
        stats::Scalar flitsSent;
        stats::Scalar flitsReceived;
    };

    // Index helpers over the flat arrays.
    std::size_t pi(int node, int port) const
    {
        return static_cast<std::size_t>(node) * P_ + port;
    }
    std::size_t vi(int node, int port, int vc) const
    {
        return pi(node, port) * V_ + vc;
    }

    // Link pipelines (occupancy maintained inside).
    void pushFlit(SoaLink &l, Cycle now, Flit f);
    bool flitReady(const SoaLink &l, Cycle now) const
    {
        return l.fsize > 0 &&
               l.flits[l.fhead].cycle <= now;
    }
    Flit popFlit(SoaLink &l);
    void pushCredit(SoaLink &l, Cycle now, int vc);
    bool creditReady(const SoaLink &l, Cycle now) const
    {
        return l.csize > 0 && l.credits[l.chead].cycle <= now;
    }
    int popCredit(SoaLink &l);

    // Per-node stages (transliterations of Nic/Router per-cycle code).
    void nicCompute(int i, Cycle now);
    void routerComputeVa(int i, Cycle now);
    void routerComputeSa(int i, Cycle now);
    void routerCommit(int i, Cycle now);
    void nicCommit(int i, Cycle now);

    int selectOutputPort(int i, const Flit &head,
                         const std::vector<int> &cand,
                         int in_port) const;
    std::uint8_t nextVcClass(int i, const Flit &head,
                             int out_port) const;
    static std::uint8_t dimOf(int port);
    int allocateOutVc(int i, int out_port, int vnet, int cls);

    void flushNodeStats(int i);
    void rebuildOccupancy();

    const NocParams &params_;
    const Topology &topo_;
    const RoutingAlgorithm &routing_;
    int n_ = 0, P_ = 0, V_ = 0, D_ = 0, C_ = 0;
    cpuid::SimdLevel simd_ = cpuid::SimdLevel::Scalar;
    ActiveScanFn scan_ = nullptr;

    // Input VC state [n*P*V].
    std::vector<std::uint8_t> ivc_state_;
    std::vector<std::int16_t> ivc_out_port_;
    std::vector<std::int16_t> ivc_out_vc_;
    std::vector<std::uint8_t> ivc_out_class_;
    std::vector<std::uint8_t> ivc_out_dim_;
    // Input FIFOs: flat rings of depth D [n*P*V*D].
    std::vector<Flit> fifo_;
    std::vector<std::uint16_t> fifo_head_;
    std::vector<std::uint16_t> fifo_size_;
    // Per-port arbiters [n*P], per-pool VA pointers [n*P*C].
    std::vector<std::int32_t> ip_sa_rr_;
    std::vector<std::int32_t> op_sa_rr_;
    std::vector<std::int32_t> op_va_rr_;
    // Output VC state [n*P*V].
    std::vector<std::uint8_t> ovc_busy_;
    std::vector<std::int32_t> ovc_credits_;
    // Wiring: link index per (node, port), -1 when unconnected [n*P].
    std::vector<std::int32_t> in_link_;
    std::vector<std::int32_t> out_link_;
    std::vector<SoaLink> links_;

    // NIC state.
    std::vector<FlitRing> nicq_;              ///< [n*num_vnets]
    std::vector<std::int32_t> nicq_cur_vc_;   ///< [n*num_vnets]
    std::vector<std::uint8_t> inj_busy_;      ///< [n*V]
    std::vector<std::int32_t> inj_credits_;   ///< [n*V]
    std::vector<std::int32_t> nic_va_rr_;     ///< [n*num_vnets]
    std::vector<std::int32_t> nic_rr_vnet_;   ///< [n]
    std::vector<std::uint64_t> nic_queued_;   ///< [n]
    std::vector<FlatMap<PacketId, std::uint32_t>> rx_; ///< [n]
    std::vector<std::vector<PacketPtr>> completed_;    ///< [n]

    // Occupancy blocks + per-cycle worklists.
    std::vector<std::uint32_t> compute_occ_; ///< [n*compute_words]
    std::vector<std::uint32_t> commit_occ_;  ///< [n*commit_words]
    std::vector<int> compute_list_;
    std::vector<int> commit_list_;

    // Phase arguments parked in members so the forRange lambda only
    // captures `this` (8 bytes): a fatter capture spills std::function
    // past its inline buffer and costs a heap allocation per phase.
    // Set before the engine call, read-only inside the phase.
    Cycle phase_now_ = 0;
    const std::vector<char> *phase_stalled_ = nullptr;

    // Per-node route scratch (reserved; no steady-state allocation).
    std::vector<std::vector<int>> route_scratch_;

    // Per-cycle stat deltas, flushed sequentially after commit so
    // checkpoint-visible Scalars match the object backend exactly.
    std::vector<std::uint64_t> d_flits_routed_;
    std::vector<std::uint64_t> d_buffer_writes_;
    std::vector<std::uint64_t> d_link_traversals_;
    std::vector<std::uint64_t> d_flits_sent_;
    std::vector<std::uint64_t> d_flits_received_;

    std::vector<std::unique_ptr<RouterStats>> router_stats_;
    std::vector<std::unique_ptr<NicStats>> nic_stats_;
};

} // namespace kernel
} // namespace noc
} // namespace rasim

#endif // RASIM_NOC_KERNEL_SOA_CYCLE_HH
