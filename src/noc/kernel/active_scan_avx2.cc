/**
 * @file
 * AVX2 specialisation of the occupancy-block scan. This translation
 * unit is the only one compiled with -mavx2 (see src/noc/CMakeLists),
 * so AVX2 instructions cannot leak into code that runs on pre-AVX2
 * hosts; the function is reached solely through the runtime dispatch
 * in activeScanFor().
 */

#include "noc/kernel/active_scan.hh"

#if defined(RASIM_SIMD_AVX2)

#include <immintrin.h>

namespace rasim
{
namespace noc
{
namespace kernel
{

void
activeScanAvx2(const std::uint32_t *occ, std::size_t blocks,
               std::size_t words_per_block, std::vector<int> &out)
{
    // words_per_block is a multiple of 8, so every block is a whole
    // number of 256-bit chunks; OR them together and test for zero.
    const std::size_t chunks = words_per_block / 8;
    for (std::size_t i = 0; i < blocks; ++i) {
        const __m256i *block = reinterpret_cast<const __m256i *>(
            occ + i * words_per_block);
        __m256i acc = _mm256_loadu_si256(block);
        for (std::size_t c = 1; c < chunks; ++c)
            acc = _mm256_or_si256(acc,
                                  _mm256_loadu_si256(block + c));
        if (!_mm256_testz_si256(acc, acc))
            out.push_back(static_cast<int>(i));
    }
}

} // namespace kernel
} // namespace noc
} // namespace rasim

#endif // RASIM_SIMD_AVX2
