#include "noc/kernel/object_cycle.hh"

#include "noc/topology.hh"

namespace rasim
{
namespace noc
{
namespace kernel
{

ObjectCycleFabric::ObjectCycleFabric(stats::Group *parent,
                                     const NocParams &params,
                                     const Topology &topo,
                                     const RoutingAlgorithm &routing)
    : params_(params)
{
    int n = topo.numNodes();
    routers_.reserve(n);
    nics_.reserve(n);
    for (int i = 0; i < n; ++i) {
        routers_.push_back(std::make_unique<Router>(parent, i, params_,
                                                    topo, routing));
        nics_.push_back(std::make_unique<Nic>(
            parent, static_cast<NodeId>(i), params_));
    }

    // Router-to-router links.
    for (int i = 0; i < n; ++i) {
        for (int p = 1; p < topo.numPorts(); ++p) {
            int j = topo.neighbor(i, p);
            if (j < 0)
                continue;
            auto link = std::make_unique<Link>(params_.link_latency);
            routers_[i]->connectOutput(p, link.get(),
                                       params_.buffer_depth);
            routers_[j]->connectInput(topo.inputPortAt(i, p),
                                      link.get());
            links_.push_back(std::move(link));
        }
    }

    // NIC <-> router local-port links (latency 1).
    for (int i = 0; i < n; ++i) {
        auto inj = std::make_unique<Link>(1);
        nics_[i]->connectInjection(inj.get(), params_.buffer_depth);
        routers_[i]->connectInput(port_local, inj.get());
        links_.push_back(std::move(inj));

        auto ej = std::make_unique<Link>(1);
        routers_[i]->connectOutput(port_local, ej.get(),
                                   params_.buffer_depth);
        nics_[i]->connectEjection(ej.get());
        links_.push_back(std::move(ej));
    }
}

std::string
ObjectCycleFabric::description() const
{
    return "object";
}

void
ObjectCycleFabric::enqueue(std::size_t node, const PacketPtr &pkt,
                           Cycle now)
{
    nics_[node]->enqueue(pkt, now);
}

void
ObjectCycleFabric::compute(StepEngine &engine, Cycle now,
                           const std::vector<char> &stalled)
{
    std::size_t n = routers_.size();
    engine.forEach(n, [this, now, &stalled](std::size_t i) {
        nics_[i]->compute(now);
        if (!stalled[i])
            routers_[i]->compute(now);
    });
}

void
ObjectCycleFabric::commit(StepEngine &engine, Cycle now,
                          const std::vector<char> &stalled)
{
    std::size_t n = routers_.size();
    engine.forEach(n, [this, now, &stalled](std::size_t i) {
        if (!stalled[i])
            routers_[i]->commit(now);
        nics_[i]->commit(now);
    });
}

std::vector<PacketPtr> &
ObjectCycleFabric::completed(std::size_t node)
{
    return nics_[node]->completed();
}

RouterActivity
ObjectCycleFabric::routerActivity(std::size_t node) const
{
    const Router &r = *routers_[node];
    RouterActivity a;
    a.flits_routed = r.flitsRouted.value();
    a.buffer_writes = r.bufferWrites.value();
    a.link_traversals = r.linkTraversals.value();
    return a;
}

void
ObjectCycleFabric::save(ArchiveWriter &aw) const
{
    // Every flit of a packet shares one Packet object; archive each
    // referenced packet once and let flits point at it by id.
    PacketTable table;
    for (const auto &router : routers_)
        router->collectPackets(table);
    for (const auto &nic : nics_)
        nic->collectPackets(table);
    for (const auto &link : links_)
        link->collectPackets(table);
    savePacketTable(aw, table);

    for (const auto &router : routers_)
        router->save(aw);
    for (const auto &nic : nics_)
        nic->save(aw);
    for (const auto &link : links_)
        link->save(aw);
}

void
ObjectCycleFabric::restore(ArchiveReader &ar)
{
    PacketTable table = restorePacketTable(ar);
    for (const auto &router : routers_)
        router->restore(ar, table);
    for (const auto &nic : nics_)
        nic->restore(ar, table);
    for (const auto &link : links_)
        link->restore(ar, table);
}

} // namespace kernel
} // namespace noc
} // namespace rasim
