/**
 * @file
 * The per-object reference backend of the buffered VC network: the
 * Router/Nic/Link components assembled on the topology exactly as
 * CycleNetwork built them before the kernel split. Kept as the
 * readable reference implementation the SoA kernel is differentially
 * tested against.
 */

#ifndef RASIM_NOC_KERNEL_OBJECT_CYCLE_HH
#define RASIM_NOC_KERNEL_OBJECT_CYCLE_HH

#include <memory>
#include <vector>

#include "noc/kernel/backend.hh"
#include "noc/link.hh"
#include "noc/nic.hh"
#include "noc/router.hh"

namespace rasim
{
namespace noc
{
namespace kernel
{

class ObjectCycleFabric : public CycleFabric
{
  public:
    ObjectCycleFabric(stats::Group *parent, const NocParams &params,
                      const Topology &topo,
                      const RoutingAlgorithm &routing);

    const char *kindName() const override { return "object"; }
    std::string description() const override;

    void enqueue(std::size_t node, const PacketPtr &pkt,
                 Cycle now) override;
    void compute(StepEngine &engine, Cycle now,
                 const std::vector<char> &stalled) override;
    void commit(StepEngine &engine, Cycle now,
                const std::vector<char> &stalled) override;
    std::vector<PacketPtr> &completed(std::size_t node) override;
    RouterActivity routerActivity(std::size_t node) const override;

    void save(ArchiveWriter &aw) const override;
    void restore(ArchiveReader &ar) override;

  private:
    const NocParams &params_;
    std::vector<std::unique_ptr<Router>> routers_;
    std::vector<std::unique_ptr<Nic>> nics_;
    std::vector<std::unique_ptr<Link>> links_;
};

} // namespace kernel
} // namespace noc
} // namespace rasim

#endif // RASIM_NOC_KERNEL_OBJECT_CYCLE_HH
