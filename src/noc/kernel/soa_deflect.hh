/**
 * @file
 * Structure-of-arrays kernel for the bufferless deflection network.
 *
 * Arrival sets, output staging and injection queues live in flat,
 * contiguous, per-node-strided arrays; the route and gather phases run
 * as batched passes over active-node worklists rebuilt each cycle from
 * per-node occupancy blocks (see active_scan.hh). A node with no
 * arriving flits and an empty injection queue is a provable no-op in
 * the route phase, and a node with no staged upstream flits is a no-op
 * in the gather phase, so idle regions of the mesh cost nothing.
 *
 * The per-node route/gather logic is an exact transliteration of the
 * object backend (same ejection choice, same oldest-first ordering,
 * same port preference and deflection fallback), so deliveries, stats
 * and archive bytes are bit-identical across kernels, serial and
 * parallel alike.
 */

#ifndef RASIM_NOC_KERNEL_SOA_DEFLECT_HH
#define RASIM_NOC_KERNEL_SOA_DEFLECT_HH

#include <vector>

#include "noc/kernel/active_scan.hh"
#include "noc/kernel/backend.hh"
#include "sim/cpuid.hh"
#include "sim/flat_map.hh"

namespace rasim
{
namespace noc
{
namespace kernel
{

class SoaDeflectFabric : public DeflectFabric
{
  public:
    SoaDeflectFabric(const NocParams &params, const Topology &topo);

    const char *kindName() const override { return "soa"; }
    std::string description() const override;

    void enqueue(std::size_t node, const PacketPtr &pkt,
                 std::uint32_t nflits) override;
    void route(StepEngine &engine, Cycle now,
               const std::vector<char> &stalled) override;
    void gather(StepEngine &engine) override;
    const std::vector<int> &scratchNodes() const override;
    NodeScratch &scratch(std::size_t node) override;

    void save(ArchiveWriter &aw) const override;
    void restore(ArchiveReader &ar) override;

    cpuid::SimdLevel simdLevel() const { return simd_; }

  private:
    /** Route-block word layout (8 u32 per node): both words are
     *  written only by the owning node (gather refills word 0 for the
     *  next cycle; enqueue runs sequentially between cycles). */
    static constexpr int occ_arriving = 0;
    static constexpr int occ_inject = 1;
    /** Gather-block word layout (8 u32 per node): one word per input
     *  port, set by the unique upstream stager during the route phase
     *  and cleared by the owner in the gather phase. */
    static constexpr std::size_t occ_words = 8;

    /** Growable power-of-two ring for the injection queues. */
    struct DRing
    {
        std::vector<DFlit> buf;
        std::uint32_t head = 0, size = 0;

        const DFlit &at(std::uint32_t k) const
        {
            return buf[(head + k) & (buf.size() - 1)];
        }

        void
        push(DFlit f)
        {
            if (size == buf.size())
                grow();
            buf[(head + size) & (buf.size() - 1)] = std::move(f);
            ++size;
        }

        DFlit
        pop()
        {
            DFlit f = std::move(buf[head]);
            head = (head + 1) & (buf.size() - 1);
            --size;
            return f;
        }

        void grow();
    };

    void routeNode(int i, Cycle now, const std::vector<char> &stalled);
    void gatherNode(int j);

    const NocParams &params_;
    const Topology &topo_;
    int n_ = 0, P_ = 0;
    /** Arrival-set stride: at most one flit per connected port. */
    int cap_ = 0;
    cpuid::SimdLevel simd_ = cpuid::SimdLevel::Scalar;
    ActiveScanFn scan_ = nullptr;

    /** Connected output ports per node: conn_[conn_off_[i] ..
     *  conn_off_[i+1]) ascending (the free-port pool each cycle). */
    std::vector<std::int32_t> conn_off_;
    std::vector<std::int8_t> conn_;
    /** Upstream staging slots feeding node j, in the fixed gather
     *  order: src_slot_[src_off_[j] .. src_off_[j+1]) indexes out_. */
    std::vector<std::int32_t> src_off_;
    std::vector<std::int32_t> src_slot_;
    /** gather_occ_ word set when out_[i*P+p] is staged (-1 when port
     *  p of node i has no downstream). */
    std::vector<std::int32_t> dest_word_;

    /** Arrival sets [n*cap_] with counts [n]. */
    std::vector<DFlit> arr_;
    std::vector<std::uint32_t> arr_cnt_;
    /** Output staging [n*P]; a null pkt marks an empty slot. */
    std::vector<DFlit> out_;
    std::vector<DRing> injq_;                          ///< [n]
    std::vector<FlatMap<PacketId, std::uint32_t>> rx_; ///< [n]
    std::vector<NodeScratch> scratch_;                 ///< [n]

    std::vector<std::uint32_t> route_occ_;  ///< [n*occ_words]
    std::vector<std::uint32_t> gather_occ_; ///< [n*occ_words]
    std::vector<int> route_list_;
    std::vector<int> gather_list_;

    // Phase arguments parked in members so the forRange lambda only
    // captures `this` (8 bytes): a fatter capture spills std::function
    // past its inline buffer and costs a heap allocation per phase.
    // Set before the engine call, read-only inside the phase.
    Cycle phase_now_ = 0;
    const std::vector<char> *phase_stalled_ = nullptr;
};

} // namespace kernel
} // namespace noc
} // namespace rasim

#endif // RASIM_NOC_KERNEL_SOA_DEFLECT_HH
