/**
 * @file
 * Network interface controller: packetisation, injection-side VC
 * allocation towards the local router port, ejection-side reassembly
 * and delivery.
 */

#ifndef RASIM_NOC_NIC_HH
#define RASIM_NOC_NIC_HH

#include <array>
#include <deque>
#include <vector>

#include "noc/link.hh"
#include "noc/packet.hh"
#include "noc/params.hh"
#include "sim/flat_map.hh"
#include "stats/group.hh"
#include "stats/stat.hh"

namespace rasim
{
namespace noc
{

class Nic : public stats::Group
{
  public:
    Nic(stats::Group *parent, NodeId node, const NocParams &params);

    /** Link carrying flits into the local router input port. */
    void connectInjection(Link *link, int router_buffer_depth);

    /** Link delivering ejected flits from the local router. */
    void connectEjection(Link *link);

    /**
     * Queue a packet for injection: packetise into flits on the
     * message-class virtual network. Called before the compute phase
     * of the cycle the packet becomes visible.
     */
    void enqueue(const PacketPtr &pkt, Cycle now);

    /** Phase 1: send at most one flit into the router. */
    void compute(Cycle now);

    /** Phase 2: accept ejected flits, reassemble, return credits. */
    void commit(Cycle now);

    /**
     * Packets fully received this cycle, in arrival order. Drained by
     * the network after the commit barrier (sequentially, so delivery
     * callbacks never run concurrently).
     */
    std::vector<PacketPtr> &completed() { return completed_; }

    /** True when nothing is queued, in reassembly, or half-sent. */
    bool idle() const;

    NodeId node() const { return node_; }

    /** Register packets referenced by queued flits. */
    void collectPackets(PacketTable &table) const;

    /** Checkpoint injection queues, VC state and reassembly counts.
     *  completed() must be empty (drained every cycle). */
    void save(ArchiveWriter &aw) const;
    void restore(ArchiveReader &ar, const PacketTable &table);

    stats::Scalar flitsSent;
    stats::Scalar flitsReceived;

  private:
    struct OutVc
    {
        bool busy = false;
        int credits = 0;
    };

    struct InjectQueue
    {
        std::deque<Flit> fifo;
        int cur_vc = -1; ///< VC carrying the packet being streamed
    };

    NodeId node_;
    const NocParams &params_;
    Link *inj_ = nullptr;
    Link *ej_ = nullptr;
    std::array<InjectQueue, num_vnets> queues_;
    std::vector<OutVc> inj_vcs_;
    std::array<int, num_vnets> va_rr_{};
    int rr_vnet_ = 0;
    FlatMap<PacketId, std::uint32_t> rx_flits_;
    std::vector<PacketPtr> completed_;
    std::uint64_t queued_flits_ = 0;
};

} // namespace noc
} // namespace rasim

#endif // RASIM_NOC_NIC_HH
