#include "noc/nic.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace rasim
{
namespace noc
{

Nic::Nic(stats::Group *parent, NodeId node, const NocParams &params)
    : stats::Group(parent, "nic" + std::to_string(node)),
      flitsSent(this, "flits_sent", "flits injected into the router"),
      flitsReceived(this, "flits_received", "flits ejected to this NIC"),
      node_(node), params_(params)
{
    inj_vcs_.resize(params_.totalVcs());
}

void
Nic::connectInjection(Link *link, int router_buffer_depth)
{
    inj_ = link;
    for (auto &vc : inj_vcs_)
        vc.credits = router_buffer_depth;
}

void
Nic::connectEjection(Link *link)
{
    ej_ = link;
}

void
Nic::enqueue(const PacketPtr &pkt, Cycle now)
{
    (void)now;
    std::uint32_t nflits = params_.flitsPerPacket(pkt->size_bytes);
    auto vnet = static_cast<std::uint8_t>(pkt->cls);
    InjectQueue &q = queues_[vnet];
    for (std::uint32_t i = 0; i < nflits; ++i) {
        Flit f;
        if (nflits == 1)
            f.type = Flit::Type::HeadTail;
        else if (i == 0)
            f.type = Flit::Type::Head;
        else if (i == nflits - 1)
            f.type = Flit::Type::Tail;
        else
            f.type = Flit::Type::Body;
        f.vnet = vnet;
        f.seq = static_cast<std::uint16_t>(i);
        f.pkt = pkt;
        q.fifo.push_back(std::move(f));
    }
    queued_flits_ += nflits;
}

void
Nic::compute(Cycle now)
{
    // Credits from the router (input buffer slots freed).
    while (inj_->creditReady(now))
        inj_vcs_[inj_->popCredit()].credits++;

    // Inject at most one flit per cycle, round-robin over vnets.
    for (int k = 0; k < num_vnets; ++k) {
        int v = (rr_vnet_ + k) % num_vnets;
        InjectQueue &q = queues_[v];
        if (q.fifo.empty())
            continue;
        Flit &front = q.fifo.front();
        int vc = q.cur_vc;
        if (front.isHead()) {
            // Allocate a fresh VC (class 0: datelines apply only to
            // router-to-router hops).
            int &rr = va_rr_[v];
            vc = -1;
            for (int i = 0; i < params_.vcs_per_vnet; ++i) {
                int cand = params_.vcIndex(
                    v, 0, (rr + i) % params_.vcs_per_vnet);
                if (!inj_vcs_[cand].busy && inj_vcs_[cand].credits > 0) {
                    vc = cand;
                    rr = ((rr + i) + 1) % params_.vcs_per_vnet;
                    break;
                }
            }
            if (vc < 0)
                continue; // no VC or no credit: try another vnet
            inj_vcs_[vc].busy = true;
            q.cur_vc = vc;
            front.pkt->enter_tick = now;
        } else if (vc < 0 || inj_vcs_[vc].credits <= 0) {
            continue; // streaming body flits but out of credits
        }

        Flit f = std::move(q.fifo.front());
        q.fifo.pop_front();
        --queued_flits_;
        f.vc = static_cast<std::int8_t>(vc);
        f.vc_class = 0;
        f.ready_cycle = now;
        inj_vcs_[vc].credits--;
        if (f.isTail()) {
            inj_vcs_[vc].busy = false;
            q.cur_vc = -1;
        }
        inj_->sendFlit(now, std::move(f));
        ++flitsSent;
        rr_vnet_ = (v + 1) % num_vnets;
        break;
    }
}

void
Nic::commit(Cycle now)
{
    while (ej_->flitReady(now)) {
        Flit f = ej_->popFlit();
        // The ejection buffer drains instantly: return the credit for
        // the slot right away.
        ej_->sendCredit(now, f.vc);
        ++flitsReceived;
        PacketPtr pkt = f.pkt;
        std::uint32_t want = params_.flitsPerPacket(pkt->size_bytes);
        std::uint32_t got = ++rx_flits_[pkt->id];
        if (got == want) {
            rx_flits_.erase(pkt->id);
            pkt->deliver_tick = now + 1;
            completed_.push_back(std::move(pkt));
        } else if (got > want) {
            panic("nic", node_, ": duplicate flits for packet ",
                  pkt->id);
        }
    }
}

bool
Nic::idle() const
{
    return queued_flits_ == 0 && rx_flits_.empty() && completed_.empty();
}

void
Nic::collectPackets(PacketTable &table) const
{
    for (const auto &q : queues_)
        for (const Flit &flit : q.fifo)
            collectPacket(table, flit.pkt);
}

void
Nic::save(ArchiveWriter &aw) const
{
    if (!completed_.empty())
        panic("nic", node_,
              ": checkpoint with undrained completions");
    aw.beginSection("nic");
    for (const auto &q : queues_) {
        aw.putI64(q.cur_vc);
        aw.putU64(q.fifo.size());
        for (const Flit &flit : q.fifo)
            saveFlit(aw, flit);
    }
    for (const auto &vc : inj_vcs_) {
        aw.putBool(vc.busy);
        aw.putI64(vc.credits);
    }
    for (int rr : va_rr_)
        aw.putI64(rr);
    aw.putI64(rr_vnet_);
    aw.putU64(queued_flits_);

    // FlatMap iterates in ascending id order — same bytes as the
    // sort-before-save loop this replaces.
    aw.putU64(rx_flits_.size());
    for (const auto &[id, count] : rx_flits_) {
        aw.putU64(id);
        aw.putU32(count);
    }
    aw.endSection();
}

void
Nic::restore(ArchiveReader &ar, const PacketTable &table)
{
    ar.expectSection("nic");
    for (auto &q : queues_) {
        q.cur_vc = static_cast<int>(ar.getI64());
        q.fifo.clear();
        std::uint64_t n = ar.getU64();
        for (std::uint64_t i = 0; i < n; ++i)
            q.fifo.push_back(restoreFlit(ar, table));
    }
    for (auto &vc : inj_vcs_) {
        vc.busy = ar.getBool();
        vc.credits = static_cast<int>(ar.getI64());
    }
    for (int &rr : va_rr_)
        rr = static_cast<int>(ar.getI64());
    rr_vnet_ = static_cast<int>(ar.getI64());
    queued_flits_ = ar.getU64();

    rx_flits_.clear();
    std::uint64_t n_rx = ar.getU64();
    for (std::uint64_t i = 0; i < n_rx; ++i) {
        PacketId id = ar.getU64();
        rx_flits_[id] = ar.getU32();
    }
    completed_.clear();
    ar.endSection();
}

} // namespace noc
} // namespace rasim
