#include "noc/router.hh"

#include "noc/routing.hh"
#include "noc/topology.hh"
#include "sim/logging.hh"

namespace rasim
{
namespace noc
{

Router::Router(stats::Group *parent, int id, const NocParams &params,
               const Topology &topo, const RoutingAlgorithm &routing)
    : stats::Group(parent, "router" + std::to_string(id)),
      flitsRouted(this, "flits_routed",
                  "flits moved through the crossbar"),
      bufferWrites(this, "buffer_writes",
                   "flits written into input buffers"),
      linkTraversals(this, "link_traversals",
                     "flits sent over inter-router links"),
      id_(id), params_(params), topo_(topo), routing_(routing)
{
    int nports = topo_.numPorts();
    int nvcs = params_.totalVcs();
    inputs_.resize(nports);
    outputs_.resize(nports);
    for (int p = 0; p < nports; ++p) {
        inputs_[p].vcs.resize(nvcs);
        outputs_[p].vcs.resize(nvcs);
        outputs_[p].va_rr.assign(num_vnets * params_.vc_classes, 0);
    }
}

void
Router::connectInput(int port, Link *link)
{
    inputs_[port].in = link;
}

void
Router::connectOutput(int port, Link *link, int downstream_depth)
{
    outputs_[port].out = link;
    for (auto &ovc : outputs_[port].vcs)
        ovc.credits = downstream_depth;
}

std::uint8_t
Router::dimOf(int port)
{
    switch (port) {
      case port_east:
      case port_west:
        return 0;
      case port_north:
      case port_south:
        return 1;
      default:
        return 2;
    }
}

std::uint8_t
Router::nextVcClass(const Flit &head, int out_port) const
{
    if (params_.vc_classes == 1 || out_port == port_local)
        return 0;
    std::uint8_t dim = dimOf(out_port);
    // The dateline class is per dimension: reset on dimension change,
    // set after crossing the wrap link of the current dimension.
    std::uint8_t cls = (dim == head.last_dim) ? head.vc_class : 0;
    if (topo_.isWrapLink(id_, out_port))
        cls = 1;
    return cls;
}

int
Router::selectOutputPort(const Flit &head, const std::vector<int> &cand,
                         int in_port) const
{
    if (cand.size() == 1)
        return cand[0];
    // Adaptive selection: most free credits in the pool the packet
    // would use; ties break towards the first candidate the routing
    // algorithm listed (its static preference).
    int best = -1;
    int best_credits = -1;
    for (int port : cand) {
        if (port == in_port)
            continue; // no U-turns
        int cls = nextVcClass(head, port);
        int credits = 0;
        for (int i = 0; i < params_.vcs_per_vnet; ++i) {
            int vc = params_.vcIndex(head.vnet, cls, i);
            const OutVc &ovc = outputs_[port].vcs[vc];
            if (!ovc.busy)
                credits += ovc.credits;
        }
        if (credits > best_credits) {
            best_credits = credits;
            best = port;
        }
    }
    return best >= 0 ? best : cand[0];
}

int
Router::allocateOutVc(int out_port, int vnet, int cls)
{
    OutputPort &op = outputs_[out_port];
    int &rr = op.va_rr[vnet * params_.vc_classes + cls];
    for (int k = 0; k < params_.vcs_per_vnet; ++k) {
        int i = (rr + k) % params_.vcs_per_vnet;
        int vc = params_.vcIndex(vnet, cls, i);
        if (!op.vcs[vc].busy) {
            op.vcs[vc].busy = true;
            rr = (i + 1) % params_.vcs_per_vnet;
            return vc;
        }
    }
    return -1;
}

void
Router::vcAllocation(Cycle now)
{
    int nports = topo_.numPorts();
    // Rotate the starting input port each cycle so no port enjoys
    // permanent priority for fresh output VCs.
    int start = static_cast<int>(now % nports);
    for (int k = 0; k < nports; ++k) {
        InputPort &ip = inputs_[(start + k) % nports];
        for (auto &ivc : ip.vcs) {
            if (ivc.state != VcState::NeedVA)
                continue;
            if (ivc.fifo.empty())
                panic("router", id_, ": NeedVA VC with empty fifo");
            const Flit &head = ivc.fifo.front();
            if (!head.isHead())
                panic("router", id_, ": NeedVA VC fronted by body flit");
            route_scratch_.clear();
            routing_.route(topo_, id_, head.pkt->dst, route_scratch_);
            int out_port = selectOutputPort(head, route_scratch_,
                                            (start + k) % nports);
            std::uint8_t cls = nextVcClass(head, out_port);
            int out_vc = allocateOutVc(out_port, head.vnet, cls);
            if (out_vc < 0)
                continue; // retry next cycle
            ivc.state = VcState::Active;
            ivc.out_port = out_port;
            ivc.out_vc = out_vc;
            ivc.out_class = cls;
            ivc.out_dim = dimOf(out_port);
        }
    }
}

void
Router::switchAllocation(Cycle now)
{
    int nports = topo_.numPorts();
    int nvcs = params_.totalVcs();

    // Input stage: each input port nominates one ready VC.
    // winner_vc[p] is the nominated VC index at input port p.
    std::vector<int> winner_vc(nports, -1);
    for (int p = 0; p < nports; ++p) {
        InputPort &ip = inputs_[p];
        for (int k = 0; k < nvcs; ++k) {
            int v = (ip.sa_rr + k) % nvcs;
            InputVc &ivc = ip.vcs[v];
            if (ivc.state != VcState::Active || ivc.fifo.empty())
                continue;
            const Flit &f = ivc.fifo.front();
            if (f.ready_cycle > now)
                continue;
            if (outputs_[ivc.out_port].vcs[ivc.out_vc].credits <= 0)
                continue;
            winner_vc[p] = v;
            break;
        }
    }

    // Output stage: each output port grants one input port.
    for (int op = 0; op < nports; ++op) {
        OutputPort &out = outputs_[op];
        if (!out.out)
            continue;
        int granted = -1;
        for (int k = 0; k < nports; ++k) {
            int p = (out.sa_rr + k) % nports;
            if (winner_vc[p] < 0)
                continue;
            if (inputs_[p].vcs[winner_vc[p]].out_port != op)
                continue;
            granted = p;
            break;
        }
        if (granted < 0)
            continue;
        out.sa_rr = (granted + 1) % nports;

        // Switch + link traversal for the granted flit.
        InputPort &ip = inputs_[granted];
        InputVc &ivc = ip.vcs[winner_vc[granted]];
        ip.sa_rr = (winner_vc[granted] + 1) % nvcs;
        Flit f = std::move(ivc.fifo.front());
        ivc.fifo.pop_front();
        f.vc = static_cast<std::int8_t>(ivc.out_vc);
        f.vc_class = ivc.out_class;
        if (op != port_local) {
            f.last_dim = ivc.out_dim;
            ++linkTraversals;
            if (f.isHead())
                ++f.pkt->hops;
        }
        out.vcs[ivc.out_vc].credits--;
        ++flitsRouted;

        bool was_tail = f.isTail();
        out.out->sendFlit(now, std::move(f));

        // Return the freed buffer slot to the upstream sender.
        if (ip.in)
            ip.in->sendCredit(now, winner_vc[granted]);

        if (was_tail) {
            out.vcs[ivc.out_vc].busy = false;
            ivc.out_port = -1;
            ivc.out_vc = -1;
            if (ivc.fifo.empty()) {
                ivc.state = VcState::Idle;
            } else {
                if (!ivc.fifo.front().isHead())
                    panic("router", id_,
                          ": tail departed but next flit is not a head");
                ivc.state = VcState::NeedVA;
            }
        }

        winner_vc[granted] = -1; // one grant per input port per cycle
    }
}

void
Router::compute(Cycle now)
{
    vcAllocation(now);
    switchAllocation(now);
}

void
Router::commit(Cycle now)
{
    int nports = topo_.numPorts();
    for (int p = 0; p < nports; ++p) {
        InputPort &ip = inputs_[p];
        if (!ip.in)
            continue;
        while (ip.in->flitReady(now)) {
            Flit f = ip.in->popFlit();
            if (f.vc < 0 || f.vc >= params_.totalVcs())
                panic("router", id_, ": flit with unallocated VC");
            InputVc &ivc = ip.vcs[f.vc];
            if (static_cast<int>(ivc.fifo.size()) >=
                params_.buffer_depth) {
                panic("router", id_, " port ", portName(p), " vc ",
                      static_cast<int>(f.vc),
                      ": buffer overflow (credit protocol violated)");
            }
            f.ready_cycle = now + params_.pipeline_stages;
            ++bufferWrites;
            bool was_empty = ivc.fifo.empty();
            bool is_head = f.isHead();
            ivc.fifo.push_back(std::move(f));
            if (ivc.state == VcState::Idle) {
                if (!was_empty || !is_head)
                    panic("router", id_,
                          ": idle VC must receive a head flit first");
                ivc.state = VcState::NeedVA;
            }
        }
    }
    for (int p = 0; p < nports; ++p) {
        OutputPort &out = outputs_[p];
        if (!out.out)
            continue;
        while (out.out->creditReady(now))
            out.vcs[out.out->popCredit()].credits++;
    }
}

std::size_t
Router::bufferedFlits() const
{
    std::size_t n = 0;
    for (const auto &ip : inputs_)
        for (const auto &ivc : ip.vcs)
            n += ivc.fifo.size();
    return n;
}

int
Router::creditsAt(int port, int vc) const
{
    return outputs_[port].vcs[vc].credits;
}

bool
Router::outVcBusy(int port, int vc) const
{
    return outputs_[port].vcs[vc].busy;
}

void
Router::collectPackets(PacketTable &table) const
{
    for (const auto &ip : inputs_)
        for (const auto &ivc : ip.vcs)
            for (const Flit &flit : ivc.fifo)
                collectPacket(table, flit.pkt);
}

void
Router::save(ArchiveWriter &aw) const
{
    aw.beginSection("router");
    for (const auto &ip : inputs_) {
        aw.putI64(ip.sa_rr);
        for (const auto &ivc : ip.vcs) {
            aw.putU8(static_cast<std::uint8_t>(ivc.state));
            aw.putI64(ivc.out_port);
            aw.putI64(ivc.out_vc);
            aw.putU8(ivc.out_class);
            aw.putU8(ivc.out_dim);
            aw.putU64(ivc.fifo.size());
            for (const Flit &flit : ivc.fifo)
                saveFlit(aw, flit);
        }
    }
    for (const auto &op : outputs_) {
        aw.putI64(op.sa_rr);
        aw.putU64(op.va_rr.size());
        for (int rr : op.va_rr)
            aw.putI64(rr);
        for (const auto &ovc : op.vcs) {
            aw.putBool(ovc.busy);
            aw.putI64(ovc.credits);
        }
    }
    aw.endSection();
}

void
Router::restore(ArchiveReader &ar, const PacketTable &table)
{
    ar.expectSection("router");
    for (auto &ip : inputs_) {
        ip.sa_rr = static_cast<int>(ar.getI64());
        for (auto &ivc : ip.vcs) {
            ivc.state = static_cast<VcState>(ar.getU8());
            ivc.out_port = static_cast<int>(ar.getI64());
            ivc.out_vc = static_cast<int>(ar.getI64());
            ivc.out_class = ar.getU8();
            ivc.out_dim = ar.getU8();
            ivc.fifo.clear();
            std::uint64_t n = ar.getU64();
            for (std::uint64_t i = 0; i < n; ++i)
                ivc.fifo.push_back(restoreFlit(ar, table));
        }
    }
    for (auto &op : outputs_) {
        op.sa_rr = static_cast<int>(ar.getI64());
        std::uint64_t n_rr = ar.getU64();
        if (n_rr != op.va_rr.size())
            panic("router ", id_, ": VA arbiter shape mismatch");
        for (int &rr : op.va_rr)
            rr = static_cast<int>(ar.getI64());
        for (auto &ovc : op.vcs) {
            ovc.busy = ar.getBool();
            ovc.credits = static_cast<int>(ar.getI64());
        }
    }
    ar.endSection();
}

} // namespace noc
} // namespace rasim
