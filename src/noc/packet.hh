/**
 * @file
 * Network packets and flits. A Packet is the unit the full system
 * injects and receives; inside the cycle-level network it is carried
 * as a wormhole of Flits.
 */

#ifndef RASIM_NOC_PACKET_HH
#define RASIM_NOC_PACKET_HH

#include <cstdint>
#include <string>

#include "sim/flat_map.hh"
#include "sim/pool.hh"
#include "sim/serialize.hh"
#include "sim/types.hh"

namespace rasim
{
namespace noc
{

/**
 * Message class, mapped one-to-one onto virtual networks. Keeping
 * requests, forwards/invalidations and responses on disjoint VC pools
 * makes the directory protocol deadlock-free on the NoC.
 */
enum class MsgClass : std::uint8_t
{
    Request = 0,  ///< cache miss requests (small control packets)
    Forward = 1,  ///< directory forwards / invalidations
    Response = 2, ///< data and acknowledgement responses
};

/** Number of virtual networks (one per MsgClass). */
constexpr int num_vnets = 3;

/** Render a message class for logs. */
const char *toString(MsgClass cls);

/**
 * The unit of transfer seen by the rest of the system. Created by the
 * injecting component, handed to a NetworkModel, and returned through
 * the delivery handler with the timing fields filled in.
 */
struct Packet
{
    PacketId id = 0;
    NodeId src = 0;
    NodeId dst = 0;
    MsgClass cls = MsgClass::Request;
    std::uint32_t size_bytes = 8;

    /** Tick the sender handed the packet to the network. */
    Tick inject_tick = 0;
    /** Tick the head flit left the source network interface. */
    Tick enter_tick = 0;
    /** Tick the packet was fully received (set by the network). */
    Tick deliver_tick = 0;
    /** Number of router-to-router hops taken (set by the network). */
    std::uint32_t hops = 0;

    /** Opaque cookie for the injecting subsystem (e.g. MSHR index). */
    std::uint64_t context = 0;

    /** Total latency from injection to delivery. */
    Tick latency() const { return deliver_tick - inject_tick; }
    /** Latency inside the network fabric only. */
    Tick networkLatency() const { return deliver_tick - enter_tick; }
    /** Source-side queueing before entering the fabric. */
    Tick queueLatency() const { return enter_tick - inject_tick; }

    std::string toString() const;
};

/**
 * Packets live on a process-wide slab pool; PacketPtr is the
 * refcounted pooled handle (drop-in for the shared_ptr it replaced).
 * The last handle returns the slot to the pool, exactly once.
 */
using PacketPtr = PoolPtr<Packet>;

/** The process-wide packet pool (also feeds the bench/test stats). */
Pool<Packet> &packetPool();

/** Convenience factory assigning a fresh id from a caller counter. */
PacketPtr makePacket(PacketId id, NodeId src, NodeId dst, MsgClass cls,
                     std::uint32_t size_bytes, Tick inject_tick,
                     std::uint64_t context = 0);

/** Pool-allocated field-for-field copy of @p src. */
PacketPtr clonePacket(const Packet &src);

/**
 * One flow-control unit of a packet. Single-flit packets are marked
 * HeadTail.
 */
struct Flit
{
    enum class Type : std::uint8_t { Head, Body, Tail, HeadTail };

    Type type = Type::HeadTail;
    /** Virtual network (from the packet's message class). */
    std::uint8_t vnet = 0;
    /** VC within the vnet on the current link; -1 before allocation. */
    std::int8_t vc = -1;
    /**
     * Dateline VC-class bit for torus deadlock avoidance: flits that
     * crossed the wrap-around link in the current dimension must use
     * the upper half of the VC pool.
     */
    std::uint8_t vc_class = 0;
    /**
     * Dimension of the last traversed link (0 = X, 1 = Y, 2 = none);
     * the dateline class resets when the packet changes dimension.
     */
    std::uint8_t last_dim = 2;
    /** Flit index within the packet (0 = head). */
    std::uint16_t seq = 0;
    /** First cycle the flit may compete for switch allocation. */
    Cycle ready_cycle = 0;
    /** Owning packet (destination, bookkeeping, timing). */
    PacketPtr pkt;

    bool isHead() const
    {
        return type == Type::Head || type == Type::HeadTail;
    }

    bool isTail() const
    {
        return type == Type::Tail || type == Type::HeadTail;
    }
};

/** Flits a packet occupies given the link width. */
std::uint32_t flitsForBytes(std::uint32_t size_bytes,
                            std::uint32_t flit_bytes);

/** Checkpoint a packet's full field set. Inline so users outside the
 *  noc library (e.g. the fault injector) need no link dependency. */
inline void
savePacket(ArchiveWriter &aw, const Packet &pkt)
{
    aw.putU64(pkt.id);
    aw.putU32(pkt.src);
    aw.putU32(pkt.dst);
    aw.putU8(static_cast<std::uint8_t>(pkt.cls));
    aw.putU32(pkt.size_bytes);
    aw.putU64(pkt.inject_tick);
    aw.putU64(pkt.enter_tick);
    aw.putU64(pkt.deliver_tick);
    aw.putU32(pkt.hops);
    aw.putU64(pkt.context);
}

inline PacketPtr
restorePacket(ArchiveReader &ar)
{
    PacketPtr pkt = packetPool().allocate();
    pkt->id = ar.getU64();
    pkt->src = ar.getU32();
    pkt->dst = ar.getU32();
    pkt->cls = static_cast<MsgClass>(ar.getU8());
    pkt->size_bytes = ar.getU32();
    pkt->inject_tick = ar.getU64();
    pkt->enter_tick = ar.getU64();
    pkt->deliver_tick = ar.getU64();
    pkt->hops = ar.getU32();
    pkt->context = ar.getU64();
    return pkt;
}

/**
 * Identity map for checkpointing flits: every flit of a packet shares
 * one Packet object mutated en route, so archives store each packet
 * once (keyed and ordered by id) and flits reference it by id.
 * FlatMap iterates in ascending key order, so archives written by
 * walking the table are byte-identical to the std::map era.
 */
using PacketTable = FlatMap<PacketId, PacketPtr>;

/** Collect @p pkt into @p table (id collisions must agree). */
void collectPacket(PacketTable &table, const PacketPtr &pkt);

void savePacketTable(ArchiveWriter &aw, const PacketTable &table);
PacketTable restorePacketTable(ArchiveReader &ar);

/** Checkpoint a flit; the owning packet is stored as an id. */
void saveFlit(ArchiveWriter &aw, const Flit &flit);
Flit restoreFlit(ArchiveReader &ar, const PacketTable &table);

} // namespace noc
} // namespace rasim

#endif // RASIM_NOC_PACKET_HH
