#include "noc/remote/remote_network.hh"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <utility>

#include "ipc/faulty_transport.hh"
#include "ipc/frame.hh"
#include "sim/config.hh"
#include "sim/logging.hh"
#include "sim/serialize.hh"
#include "sim/simulation.hh"

namespace rasim
{
namespace noc
{
namespace remote
{

namespace
{

/** Rng stream of the retry policy's jitter draws. */
constexpr std::uint64_t rng_stream_retry = 0x7274;

} // namespace

RemoteOptions
RemoteOptions::fromConfig(const Config &cfg)
{
    RemoteOptions o;
    o.socket = cfg.getString("remote.socket", o.socket);
    o.connect_timeout_ms =
        cfg.getDouble("remote.connect_timeout_ms", o.connect_timeout_ms);
    o.quantum_timeout_ms =
        cfg.getDouble("remote.quantum_timeout_ms", o.quantum_timeout_ms);
    o.model = cfg.getString("remote.model", o.model);
    o.engine_workers =
        static_cast<int>(cfg.getUInt("remote.engine_workers", 0));
    o.pipeline = cfg.getBool("network.pipeline.enabled", o.pipeline);
    o.speculate =
        cfg.getBool("network.pipeline.speculate", o.speculate);

    // Failover set: a comma-separated endpoint list overrides the
    // single remote.socket address (and becomes the primary).
    std::string eps = cfg.getString("network.remote.endpoints", "");
    if (!eps.empty()) {
        o.endpoints.clear();
        std::size_t pos = 0;
        while (pos <= eps.size()) {
            std::size_t comma = eps.find(',', pos);
            std::string ep =
                comma == std::string::npos
                    ? eps.substr(pos)
                    : eps.substr(pos, comma - pos);
            while (!ep.empty() && (ep.front() == ' ' || ep.front() == '\t'))
                ep.erase(ep.begin());
            while (!ep.empty() && (ep.back() == ' ' || ep.back() == '\t'))
                ep.pop_back();
            if (!ep.empty())
                o.endpoints.push_back(ep);
            if (comma == std::string::npos)
                break;
            pos = comma + 1;
        }
        if (o.endpoints.empty())
            fatal("network.remote.endpoints: no usable address in '",
                  eps, "'");
        o.socket = o.endpoints.front();
    }
    o.ckpt_quanta =
        cfg.getUInt("network.remote.ckpt_quanta", o.ckpt_quanta);
    o.heartbeat_ms =
        cfg.getDouble("network.remote.heartbeat_ms", o.heartbeat_ms);
    o.attest_quanta =
        cfg.getUInt("network.remote.attest_quanta", o.attest_quanta);
    o.registry = cfg.getString("network.remote.registry", o.registry);
    o.retry = ipc::RetryOptions::fromConfig(cfg);
    o.fault = TransportFaultOptions::fromConfig(cfg);

    if (!ipc::validAddress(o.socket))
        fatal("remote.socket: unusable address '", o.socket, "'");
    for (const std::string &ep : o.endpoints) {
        if (!ipc::validAddress(ep))
            fatal("network.remote.endpoints: unusable address '", ep,
                  "'");
    }
    if (o.connect_timeout_ms <= 0.0)
        fatal("remote.connect_timeout_ms must be positive");
    if (o.heartbeat_ms < 0.0)
        fatal("network.remote.heartbeat_ms must be non-negative");
    if (o.quantum_timeout_ms < 0.0)
        fatal("remote.quantum_timeout_ms must be non-negative");
    if (o.model != "cycle" && o.model != "deflection")
        fatal("remote.model must be cycle or deflection, not '",
              o.model, "'");
    if (o.engine_workers < 0)
        fatal("remote.engine_workers must be non-negative");
    return o;
}

RemoteNetwork::RemoteNetwork(Simulation &sim, const std::string &name,
                             const NocParams &params,
                             RemoteOptions options, SimObject *parent)
    : SimObject(sim, name, parent),
      packetsInjected(this, "packets_injected",
                      "packets handed to the network"),
      packetsDelivered(this, "packets_delivered",
                       "packets fully received"),
      totalLatency(this, "total_latency",
                   "inject-to-deliver latency (cycles)"),
      networkLatency(this, "network_latency",
                     "fabric enter-to-deliver latency (cycles)"),
      queueLatency(this, "queue_latency",
                   "source queueing latency (cycles)"),
      hopCount(this, "hop_count", "router-to-router hops per packet"),
      rpcRoundTrips(this, "rpc_round_trips",
                    "quantum RPC round-trips completed"),
      elidedQuanta(this, "elided_quanta",
                   "idle quanta served without touching the wire"),
      specHits(this, "spec_hits",
               "quantum replies the server had pre-computed"),
      specRebases(this, "spec_rebases",
                  "server speculations rolled back before serving"),
      schedThrottles(this, "sched_throttles",
                     "replies delayed by the server's fair scheduler"),
      health(this, "health"),
      reconnects(&health, "reconnects",
                 "sessions re-opened after a connection loss"),
      retries(&health, "retries",
              "transport attempts re-run after a backoff"),
      failovers(&health, "failovers",
                "sessions moved to a different endpoint"),
      backoffMsTotal(&health, "backoff_ms_total",
                     "wall-clock milliseconds slept in retry backoffs"),
      breakerTrips(&health, "breaker_trips",
                   "circuit breaker openings (exhausted retry rounds)"),
      standbyPrimeFailures(&health, "standby_prime_failures",
                           "standby priming attempts that failed"),
      reprimes(&health, "reprimes",
               "standby sessions re-primed after a loss or promotion"),
      heartbeatMisses(&health, "heartbeat_misses",
                      "liveness probes an endpoint failed to answer"),
      attestationMismatches(&health, "attestation_mismatches",
                            "replica state digests that diverged"),
      workerRestarts(&health, "worker_restarts",
                     "supervised worker restarts (registry mirror)"),
      params_(params), options_(std::move(options)),
      // Identical geometry to the bridge's reciprocal table, so the
      // server's shadow table and the bridge's table are comparable
      // entry for entry.
      table_proto_(params, params.columns + params.rows + 2,
                   sim.config().getDouble("abstract.ewma_alpha", 0.05),
                   sim.config().getString("abstract.granularity",
                                          "distance") == "pair"
                       ? abstractnet::LatencyTable::Granularity::Pair
                       : abstractnet::LatencyTable::Granularity::Distance,
                   params.numNodes())
{
    params_.validate();
    if (options_.endpoints.empty())
        options_.endpoints = {options_.socket};
    // One fault schedule and one retry policy for the object's whole
    // life: the draw sequences run across reconnects and failovers,
    // which is what makes a chaos run reproducible end to end.
    fault_sched_ = TransportFaultSchedule(options_.fault);
    retry_ = ipc::RetryPolicy(options_.retry,
                              sim.makeRng(rng_stream_retry));
    for (int v = 0; v < num_vnets; ++v) {
        vnetLatency.push_back(std::make_unique<stats::Distribution>(
            this, std::string("latency_vnet") + std::to_string(v),
            "total latency on vnet " + std::to_string(v)));
    }
    num_nodes_ = static_cast<std::uint64_t>(params_.numNodes());
    // A registry written before we started can already widen the
    // endpoint set; afterwards the breaker gets one scope per
    // endpoint, so one dead worker cannot trip the others' budgets.
    refreshRegistry();
    retry_.setScopes(options_.endpoints.size());
    runWithRetry([] { return 0; });
    startProber();
}

RemoteNetwork::~RemoteNetwork()
{
    stopProber();
    auto bye = [](ipc::ByteChannel *ch) {
        if (!ch || !ch->valid())
            return;
        try {
            ipc::sendMessage(*ch, ipc::beginMessage(ipc::MsgType::Bye));
        } catch (const SimError &) {
            // Best-effort goodbye; the server treats EOF the same way.
        }
    };
    bye(standby_chan_.get());
    bye(chan_.get());
}

std::size_t
RemoteNetwork::numNodes() const
{
    return static_cast<std::size_t>(num_nodes_);
}

std::optional<NetworkModel::Accounting>
RemoteNetwork::accounting() const
{
    return acct_;
}

void
RemoteNetwork::requestAbort()
{
    abort_.store(true, std::memory_order_relaxed);
}

ipc::FaultyTransport *
RemoteNetwork::faultyChannel()
{
    return dynamic_cast<ipc::FaultyTransport *>(chan_.get());
}

void
RemoteNetwork::inject(const PacketPtr &pkt)
{
    // No IO here: injections buffer until the quantum boundary, so a
    // dead server cannot fail an inject() — every transport fault
    // surfaces inside advanceTo(), where the bridge's health machinery
    // catches backend errors.
    ++packetsInjected;
    pending_.push_back(pkt);
}

bool
RemoteNetwork::retryable(const SimError &err) const
{
    // An abort is the caller cancelling the operation; honouring it
    // beats masking it.
    if (abort_.load(std::memory_order_relaxed))
        return false;
    return err.kind() == ErrorKind::Transport ||
           err.kind() == ErrorKind::Timeout;
}

void
RemoteNetwork::syncHealthStats()
{
    retries.set(static_cast<double>(retry_.retries()));
    breakerTrips.set(static_cast<double>(retry_.breakerTrips()));
    backoffMsTotal.set(retry_.backoffMsTotal());
    heartbeatMisses.set(static_cast<double>(
        heartbeat_misses_.load(std::memory_order_relaxed)));
    workerRestarts.set(static_cast<double>(registry_restarts_));
}

void
RemoteNetwork::markDisconnected()
{
    // Only the connection dies; the recovery lineage (base image +
    // journal) stays, so a retry can rebuild the server state.
    chan_.reset();
}

void
RemoteNetwork::giveUp()
{
    // The retry round is exhausted: drop the whole lineage, reverting
    // to the pre-retry lossy semantics the bridge's quarantine is built
    // around. Buffered injections die with the server that would have
    // simulated them; a later re-engagement opens a fresh session from
    // an empty fabric at the current tick.
    journal_.clear();
    base_image_.clear();
    base_digest_ = 0;
    journal_base_ = cur_time_;
    quanta_since_base_ = 0;
    pending_.clear();
    standby_chan_.reset();
    standby_valid_ = false;
    // No base image, nothing to prime from: the next refreshBase()
    // restarts the replication machinery from scratch.
    reprime_pending_ = false;
    reprime_backoff_ = 1;
}

void
RemoteNetwork::rethrowPartingError(ipc::ByteChannel &ch,
                                   const SimError &send_err)
{
    // An AF_UNIX peer's close does not discard data it already wrote,
    // so an admission refusal sent just before the close is still
    // readable even though our own send got EPIPE.
    std::optional<ipc::Message> parting;
    try {
        parting = ipc::recvMessage(ch, 200.0, &abort_);
    } catch (const SimError &) {
        throw send_err;
    }
    if (parting && parting->type == ipc::MsgType::ErrorReply)
        ipc::throwDecodedError(parting->ar);
    throw send_err;
}

ipc::Message
RemoteNetwork::expectReplyOn(ipc::ByteChannel &ch,
                             const std::string &addr, double timeout_ms)
{
    auto msg = ipc::recvMessage(ch, timeout_ms, &abort_);
    if (!msg) {
        throw SimError(ErrorKind::Transport,
                       "server '" + addr +
                           "' closed the connection mid-request");
    }
    return std::move(*msg);
}

ipc::Message
RemoteNetwork::expectReply(double timeout_ms)
{
    return expectReplyOn(*chan_, activeEndpoint(), timeout_ms);
}

std::unique_ptr<ipc::ByteChannel>
RemoteNetwork::openChannelTo(std::size_t ep, double timeout_ms)
{
    ipc::Fd fd = ipc::connectTo(options_.endpoints[ep], timeout_ms);
    std::unique_ptr<ipc::ByteChannel> ch =
        std::make_unique<ipc::FdChannel>(std::move(fd));
    if (options_.fault.enabled) {
        ch = std::make_unique<ipc::FaultyTransport>(std::move(ch),
                                                    &fault_sched_);
    }
    return ch;
}

ipc::HelloReply
RemoteNetwork::helloOn(ipc::ByteChannel &ch, const std::string &addr,
                       Tick start_tick)
{
    ipc::HelloRequest req;
    req.model = options_.model;
    req.params = params_;
    req.engine_workers = options_.engine_workers;
    req.start_tick = start_tick;
    req.table_alpha = table_proto_.alpha();
    req.table_pair_granularity =
        table_proto_.granularity() ==
        abstractnet::LatencyTable::Granularity::Pair;
    req.table_max_hops = table_proto_.maxHops();
    ArchiveWriter aw = ipc::beginMessage(ipc::MsgType::Hello);
    ipc::encodeHello(aw, req);
    try {
        ipc::sendMessage(ch, std::move(aw));
    } catch (const SimError &e) {
        // The server can refuse admission and close before our Hello
        // lands; surface its typed refusal, not the EPIPE.
        rethrowPartingError(ch, e);
    }

    ipc::Message msg =
        expectReplyOn(ch, addr, options_.connect_timeout_ms);
    if (msg.type == ipc::MsgType::ErrorReply)
        ipc::throwDecodedError(msg.ar);
    if (msg.type != ipc::MsgType::HelloAck) {
        throw SimError(ErrorKind::Transport,
                       std::string("expected HelloAck, got ") +
                           ipc::toString(msg.type));
    }
    ipc::HelloReply rep = ipc::decodeHelloReply(msg.ar);
    msg.done();
    return rep;
}

ipc::CkptLoadReply
RemoteNetwork::ckptLoadOn(ipc::ByteChannel &ch, const std::string &addr,
                          const std::string &image)
{
    ArchiveWriter aw = ipc::beginMessage(ipc::MsgType::CkptLoad);
    aw.putString(image);
    ipc::sendMessage(ch, std::move(aw));
    ipc::Message msg =
        expectReplyOn(ch, addr, options_.quantum_timeout_ms);
    if (msg.type == ipc::MsgType::ErrorReply)
        ipc::throwDecodedError(msg.ar);
    if (msg.type != ipc::MsgType::CkptLoadAck) {
        throw SimError(ErrorKind::Transport,
                       std::string("expected CkptLoadAck, got ") +
                           ipc::toString(msg.type));
    }
    ipc::CkptLoadReply rep = ipc::decodeCkptLoadReply(msg.ar);
    msg.done();
    return rep;
}

bool
RemoteNetwork::promoteStandby()
{
    if (!standby_valid_ || !standby_chan_ || !standby_chan_->valid() ||
        standby_tick_ != journal_base_ || base_image_.empty())
        return false;
    // Hot failover: the standby session already holds the base image,
    // so recovery is the journal replay alone — no state transfer on
    // the critical path.
    chan_ = std::move(standby_chan_);
    standby_valid_ = false;
    active_ep_ = (active_ep_ + 1) % options_.endpoints.size();
    ++failovers;
    server_time_ = standby_tick_;
    // The promotion consumed the standby: queue a re-prime so a
    // second failure is survivable too (countdown runs in successful
    // quanta, giving the supervisor time to respawn the dead worker).
    scheduleReprime();
    if (test_hooks.on_promote)
        test_hooks.on_promote();
    return true;
}

std::uint64_t
RemoteNetwork::refreshRegistry()
{
    const std::uint64_t all_up = ~std::uint64_t(0);
    if (options_.registry.empty())
        return all_up;
    std::ifstream in(options_.registry);
    if (!in)
        return all_up; // not written yet: trust the static list
    // Format (one worker per line, written atomically by
    // rasim-supervisor):
    //   rasim-registry v1
    //   worker <idx> <addr> <up|down> pid <pid> restarts <n>
    std::vector<std::string> addrs;
    std::uint64_t up_mask = 0;
    std::uint64_t restarts_total = 0;
    std::string line;
    while (std::getline(in, line)) {
        std::istringstream ls(line);
        std::string tag;
        ls >> tag;
        if (tag != "worker")
            continue;
        std::uint64_t idx = 0;
        std::string addr, state, pid_tag, restarts_tag;
        std::uint64_t pid = 0, restarts = 0;
        ls >> idx >> addr >> state >> pid_tag >> pid >> restarts_tag >>
            restarts;
        if (!ls || addr.empty() || !ipc::validAddress(addr))
            continue;
        if (idx >= 64 || idx != addrs.size())
            continue; // torn or out-of-order line: keep what parses
        addrs.push_back(addr);
        if (state == "up")
            up_mask |= std::uint64_t(1) << idx;
        restarts_total += restarts;
    }
    if (addrs.empty())
        return all_up;
    registry_restarts_ = restarts_total;
    {
        // The heartbeat prober snapshots this list from its own
        // thread.
        std::lock_guard<std::mutex> lk(prober_mu_);
        options_.endpoints = std::move(addrs);
    }
    if (active_ep_ >= options_.endpoints.size())
        active_ep_ = 0;
    retry_.setScopes(options_.endpoints.size());
    syncHealthStats();
    return up_mask;
}

void
RemoteNetwork::coldOpen()
{
    // Under a supervisor the fleet may have moved since the failure:
    // re-resolve it, and learn which workers the supervisor believes
    // are up.
    const std::uint64_t up_mask = refreshRegistry();
    const std::size_t n = options_.endpoints.size();
    std::optional<SimError> last;
    // Two passes over the ring starting at the active endpoint: the
    // likely-healthy endpoints (registry says up, breaker closed)
    // first, then the suspect ones as last-resort probes. A dead
    // primary with an open breaker therefore costs the failover to a
    // healthy standby nothing at all.
    for (int pass = 0; pass < 2; ++pass) {
        for (std::size_t i = 0; i < n; ++i) {
            const std::size_t ep = (active_ep_ + i) % n;
            const bool healthy = (ep >= 64 ||
                                  (up_mask & (std::uint64_t(1) << ep))) &&
                                 !retry_.breakerOpen(ep);
            if ((pass == 0) != healthy)
                continue;
            const std::string &addr = options_.endpoints[ep];
            try {
                // Cap the connect wait to the retry round's remaining
                // deadline, so a dead endpoint cannot eat the budget
                // of the live ones behind it.
                double budget =
                    retry_.capToDeadline(options_.connect_timeout_ms);
                std::unique_ptr<ipc::ByteChannel> ch =
                    openChannelTo(ep, budget);
                // With a base image the fresh fabric starts at tick 0
                // and the image rewinds it to the base; without one
                // the lineage is empty and the session starts cold at
                // the base tick.
                Tick start = base_image_.empty() ? journal_base_ : 0;
                ipc::HelloReply rep = helloOn(*ch, addr, start);
                Tick server_tick = journal_base_;
                if (!base_image_.empty()) {
                    ipc::CkptLoadReply ack =
                        ckptLoadOn(*ch, addr, base_image_);
                    server_tick = ack.cur_time;
                    if (server_tick != journal_base_) {
                        throw SimError(
                            ErrorKind::Transport,
                            "restored server is at tick " +
                                std::to_string(server_tick) +
                                " but the base image was taken at "
                                "tick " +
                                std::to_string(journal_base_));
                    }
                    if (ack.digest != base_digest_) {
                        // The replica's own re-serialization disagrees
                        // with the attested base: its state diverged
                        // and nothing it computes can be trusted.
                        ++attestationMismatches;
                        throw SimError(
                            ErrorKind::Transport,
                            "replica attestation mismatch on '" +
                                addr + "': restored state digest " +
                                std::to_string(ack.digest) +
                                " != base digest " +
                                std::to_string(base_digest_));
                    }
                }
                num_nodes_ = rep.num_nodes;
                if (ep != active_ep_)
                    ++failovers;
                active_ep_ = ep;
                retry_.noteSuccess(ep);
                chan_ = std::move(ch);
                server_time_ = server_tick;
                return;
            } catch (const SimError &e) {
                last = e;
            }
        }
    }
    throw *last; // endpoints is never empty
}

void
RemoteNetwork::replayJournal()
{
    for (std::size_t i = 0; i < journal_.size(); ++i) {
        const QuantumRecord &rec = journal_[i];
        if (test_hooks.on_replay)
            test_hooks.on_replay(i);
        ipc::StepRequest req;
        req.target = rec.target;
        req.speculate = false;
        req.attest = rec.attested;
        req.packets = rec.packets;
        ArchiveWriter aw = ipc::beginMessage(ipc::MsgType::Step);
        ipc::encodeStep(aw, req);
        ipc::sendMessage(*chan_, std::move(aw));
        ipc::Message msg = expectReply(options_.quantum_timeout_ms);
        if (msg.type == ipc::MsgType::ErrorReply)
            ipc::throwDecodedError(msg.ar);
        if (msg.type != ipc::MsgType::StepReply) {
            throw SimError(ErrorKind::Transport,
                           std::string("expected StepReply, got ") +
                               ipc::toString(msg.type));
        }
        std::uint8_t flags = 0;
        std::uint64_t digest = 0;
        ipc::AdvanceReply rep =
            ipc::decodeStepReply(msg.ar, flags, &digest);
        msg.done();
        // The original exchange attested this quantum: the rebuilt
        // replica must reproduce that digest exactly, or its state
        // has diverged from the run the journal records — quarantine
        // it (feed its breaker, shift the endpoint preference) and
        // let the retry round recover on another replica.
        if (rec.attested && digest != rec.digest) {
            ++attestationMismatches;
            retry_.noteRoundFailed(active_ep_);
            const std::string addr = activeEndpoint();
            active_ep_ =
                (active_ep_ + 1) % options_.endpoints.size();
            throw SimError(
                ErrorKind::Transport,
                "replica attestation mismatch on '" + addr +
                    "' at replayed quantum " + std::to_string(i) +
                    ": digest " + std::to_string(digest) + " != " +
                    std::to_string(rec.digest));
        }
        // The replies' deliveries (and spec flags) were already
        // applied in the original run; only the clock mirror moves.
        server_time_ = rep.cur_time;
    }
}

void
RemoteNetwork::ensureSession()
{
    if (chan_ && chan_->valid())
        return;
    chan_.reset();
    const bool recon = ever_connected_;
    if (!promoteStandby())
        coldOpen();
    ever_connected_ = true;
    if (recon)
        ++reconnects;
    // By the server's determinism, re-issuing the journaled quanta
    // against the restored base reproduces the pre-failure state —
    // deliveries, stats and tuned table — bit for bit.
    replayJournal();
}

void
RemoteNetwork::applyReply(const ipc::AdvanceReply &rep)
{
    cur_time_ = rep.cur_time;
    server_time_ = rep.cur_time;
    idle_ = rep.idle;
    acct_.injected = rep.injected;
    acct_.delivered = rep.delivered;
    acct_.in_flight = rep.in_flight;
    ++rpcRoundTrips;

    // Replay in delivery order: the handler (and the mirrored
    // aggregates) see exactly what an in-process backend would
    // have produced, in the same order.
    for (const PacketPtr &pkt : rep.deliveries) {
        ++packetsDelivered;
        totalLatency.sample(static_cast<double>(pkt->latency()));
        networkLatency.sample(
            static_cast<double>(pkt->networkLatency()));
        queueLatency.sample(static_cast<double>(pkt->queueLatency()));
        hopCount.sample(static_cast<double>(pkt->hops));
        vnetLatency[static_cast<int>(pkt->cls)]->sample(
            static_cast<double>(pkt->latency()));
        if (handler_)
            handler_(pkt);
    }
}

void
RemoteNetwork::stepOnce(const ipc::StepRequest &req, bool count_flags)
{
    if (test_hooks.on_op)
        test_hooks.on_op(op_counter_++);
    ArchiveWriter aw = ipc::beginMessage(ipc::MsgType::Step);
    ipc::encodeStep(aw, req);
    ipc::sendMessage(*chan_, std::move(aw));

    ipc::Message msg = expectReply(options_.quantum_timeout_ms);
    if (msg.type == ipc::MsgType::ErrorReply)
        ipc::throwDecodedError(msg.ar);
    if (msg.type != ipc::MsgType::StepReply) {
        throw SimError(ErrorKind::Transport,
                       std::string("expected StepReply, got ") +
                           ipc::toString(msg.type));
    }
    std::uint8_t flags = 0;
    std::uint64_t digest = 0;
    ipc::AdvanceReply rep = ipc::decodeStepReply(msg.ar, flags, &digest);
    msg.done();
    last_step_attested_ = (flags & ipc::step_flag_attested) != 0;
    last_step_digest_ = digest;
    if (test_hooks.corrupt_attest)
        last_step_digest_ ^= 1;
    if (count_flags) {
        if (flags & ipc::step_flag_spec_hit)
            ++specHits;
        if (flags & ipc::step_flag_rebased)
            ++specRebases;
        if (flags & ipc::step_flag_throttled)
            ++schedThrottles;
    }
    applyReply(rep);
}

void
RemoteNetwork::advanceOnce(Tick t, const std::vector<PacketPtr> &packets)
{
    // v1 blocking exchange, kept for old servers and as the
    // differential baseline (network.pipeline.enabled=false).
    if (test_hooks.on_op)
        test_hooks.on_op(op_counter_++);
    if (!packets.empty()) {
        ArchiveWriter aw = ipc::beginMessage(ipc::MsgType::InjectBatch);
        ipc::encodePackets(aw, packets);
        ipc::sendMessage(*chan_, std::move(aw));
    }
    ArchiveWriter aw = ipc::beginMessage(ipc::MsgType::Advance);
    ipc::encodeAdvance(aw, t);
    ipc::sendMessage(*chan_, std::move(aw));

    ipc::Message msg = expectReply(options_.quantum_timeout_ms);
    if (msg.type == ipc::MsgType::ErrorReply)
        ipc::throwDecodedError(msg.ar);
    if (msg.type != ipc::MsgType::DeliveryBatch) {
        throw SimError(ErrorKind::Transport,
                       std::string("expected DeliveryBatch, got ") +
                           ipc::toString(msg.type));
    }
    ipc::AdvanceReply rep = ipc::decodeAdvanceReply(msg.ar);
    msg.done();
    applyReply(rep);
}

void
RemoteNetwork::advanceTo(Tick t)
{
    // The abort request is sticky until the next advanceTo() call.
    abort_.store(false, std::memory_order_relaxed);

    // Quantum-boundary replica maintenance: act on anything the
    // heartbeat prober flagged, and run a due re-prime.
    maintainReplicas();

    // Idle elision: an idle fabric with nothing buffered cannot
    // produce a delivery, so the quantum needs no RPC at all — the
    // clock advances locally and the server's own idle fast-forward
    // catches its copy up on the next real exchange. This is where
    // most of the amortized per-quantum overhead goes: long idle
    // stretches (warmup, drain tails, disengaged phases) cost zero
    // syscalls.
    if (options_.pipeline && idle_ && pending_.empty()) {
        if (t > cur_time_) {
            cur_time_ = t;
            ++elidedQuanta;
        }
        return;
    }

    // Build the quantum request once; every retry attempt re-sends
    // identical bytes against a recovered session, and the request
    // joins the journal on success so later recoveries replay it.
    std::vector<PacketPtr> packets = std::move(pending_);
    pending_.clear();
    if (options_.pipeline) {
        // Coalesced v2 exchange: inject batch + advance target in
        // one frame, reply in one frame — two syscalls a quantum.
        ipc::StepRequest req;
        req.target = t;
        req.speculate = options_.speculate;
        req.packets = std::move(packets);
        // Periodic attestation: every attest_quanta-th pipelined
        // quantum carries a digest request, journaled with its
        // answer. The cadence counts issued quanta, so it is a pure
        // function of simulated progress and survives retries (the
        // identical request is re-sent).
        ++attest_counter_;
        req.attest = options_.attest_quanta != 0 &&
                     attest_counter_ % options_.attest_quanta == 0;
        runWithRetry([&] {
            stepOnce(req, true);
            return 0;
        });
        journal_.push_back({t, std::move(req.packets),
                            req.attest && last_step_attested_,
                            last_step_digest_});
    } else {
        runWithRetry([&] {
            advanceOnce(t, packets);
            return 0;
        });
        journal_.push_back({t, std::move(packets), false, 0});
    }
    ++quanta_since_base_;
    if (options_.ckpt_quanta != 0 &&
        quanta_since_base_ >= options_.ckpt_quanta)
        refreshBase();
}

void
RemoteNetwork::syncNow()
{
    if (server_time_ >= cur_time_)
        return;
    // Idle elision left the server's clock behind; an empty,
    // unspeculated Step brings it to the client's tick so paired
    // state (tables, stats, checkpoints) is read at the same time on
    // both sides. The fabric was idle throughout, so the reply cannot
    // carry deliveries. Not journaled: a recovery replay ends at the
    // last journaled quantum and the next syncNow() repeats the
    // catch-up, deterministically.
    if (test_hooks.on_op)
        test_hooks.on_op(op_counter_++);
    ipc::StepRequest req;
    req.target = cur_time_;
    ArchiveWriter aw = ipc::beginMessage(ipc::MsgType::Step);
    ipc::encodeStep(aw, req);
    ipc::sendMessage(*chan_, std::move(aw));
    ipc::Message msg = expectReply(options_.quantum_timeout_ms);
    if (msg.type == ipc::MsgType::ErrorReply)
        ipc::throwDecodedError(msg.ar);
    if (msg.type != ipc::MsgType::StepReply) {
        throw SimError(ErrorKind::Transport,
                       std::string("expected StepReply, got ") +
                           ipc::toString(msg.type));
    }
    std::uint8_t flags = 0;
    ipc::AdvanceReply rep = ipc::decodeStepReply(msg.ar, flags);
    msg.done();
    applyReply(rep);
}

ipc::CkptReply
RemoteNetwork::ckptSaveNow()
{
    if (test_hooks.on_op)
        test_hooks.on_op(op_counter_++);
    if (test_hooks.on_ckpt_save)
        test_hooks.on_ckpt_save();
    ipc::sendMessage(*chan_, ipc::beginMessage(ipc::MsgType::CkptSave));
    ipc::Message msg = expectReply(options_.quantum_timeout_ms);
    if (msg.type == ipc::MsgType::ErrorReply)
        ipc::throwDecodedError(msg.ar);
    if (msg.type != ipc::MsgType::CkptData) {
        throw SimError(ErrorKind::Transport,
                       std::string("expected CkptData, got ") +
                           ipc::toString(msg.type));
    }
    ipc::CkptReply rep = ipc::decodeCkptReply(msg.ar);
    msg.done();
    // The image's CRC64 is recomputed locally: what this client holds
    // must be what the server attested, or the lineage built on it
    // would replicate corruption instead of state.
    if (crc64(rep.image) != rep.digest) {
        throw SimError(ErrorKind::Transport,
                       "checkpoint image failed its attestation digest "
                       "(corrupted in transit)");
    }
    if (test_hooks.corrupt_attest)
        rep.digest ^= 1;
    return rep;
}

void
RemoteNetwork::adoptBase(std::string image, std::uint64_t digest)
{
    base_image_ = std::move(image);
    base_digest_ = digest;
    journal_base_ = cur_time_;
    journal_.clear();
    quanta_since_base_ = 0;
}

void
RemoteNetwork::refreshBase()
{
    try {
        syncNow();
        ipc::CkptReply ckpt = ckptSaveNow();
        adoptBase(std::move(ckpt.image), ckpt.digest);
        replicateToStandby();
    } catch (const SimError &) {
        // Single attempt: the old lineage (longer journal) is still
        // valid, and the next operation's retry round recovers the
        // dropped connection.
        markDisconnected();
    }
}

void
RemoteNetwork::scheduleReprime()
{
    reprime_pending_ = true;
    reprime_countdown_ = reprime_backoff_;
    // Exponential in successful quanta, capped: frequent enough to
    // converge quickly once the supervisor has respawned the dead
    // worker, sparse enough not to burn every quantum on a connect
    // attempt to a corpse.
    reprime_backoff_ = std::min<std::uint64_t>(reprime_backoff_ * 2, 64);
}

void
RemoteNetwork::replicateToStandby()
{
    if (options_.endpoints.size() < 2 || base_image_.empty())
        return;
    const std::size_t ep = (active_ep_ + 1) % options_.endpoints.size();
    const std::string &addr = options_.endpoints[ep];
    const bool was_pending = reprime_pending_;
    try {
        if (!standby_chan_ || !standby_chan_->valid()) {
            standby_chan_ =
                openChannelTo(ep, options_.connect_timeout_ms);
            helloOn(*standby_chan_, addr, 0);
        }
        ipc::CkptLoadReply ack =
            ckptLoadOn(*standby_chan_, addr, base_image_);
        standby_tick_ = ack.cur_time;
        // Replica attestation: the standby re-serialized what it
        // restored; if that digest is not the base's, the standby
        // holds diverged state and must not be promoted — quarantine
        // it and retry the priming from scratch later.
        if (ack.digest != base_digest_) {
            ++attestationMismatches;
            throw SimError(ErrorKind::Transport,
                           "standby '" + addr +
                               "' failed attestation: digest " +
                               std::to_string(ack.digest) + " != " +
                               std::to_string(base_digest_));
        }
        standby_valid_ = standby_tick_ == journal_base_;
        if (standby_valid_) {
            retry_.noteSuccess(ep);
            if (was_pending) {
                ++reprimes;
                reprime_pending_ = false;
                reprime_backoff_ = 1;
            }
        }
    } catch (const SimError &) {
        // A dead or diverged standby costs nothing until the primary
        // also dies — but it is never silently forgotten: the failure
        // is counted and a deterministic re-prime retry is queued, so
        // the client regains a standby once the worker comes back.
        standby_chan_.reset();
        standby_valid_ = false;
        ++standbyPrimeFailures;
        scheduleReprime();
    }
}

void
RemoteNetwork::maintainReplicas()
{
    // Consume the prober's verdicts first: suspicions about the
    // active endpoint drop the connection now (so the coming
    // ensureSession fails over before wasting a quantum timeout on a
    // corpse), suspicions about the standby quarantine it.
    std::uint64_t suspects =
        suspect_mask_.exchange(0, std::memory_order_acq_rel);
    if (suspects != 0) {
        syncHealthStats();
        if (active_ep_ < 64 &&
            (suspects & (std::uint64_t(1) << active_ep_)))
            markDisconnected();
        const std::size_t standby_ep =
            (active_ep_ + 1) % options_.endpoints.size();
        if (standby_valid_ && standby_ep < 64 &&
            (suspects & (std::uint64_t(1) << standby_ep))) {
            standby_chan_.reset();
            standby_valid_ = false;
            scheduleReprime();
        }
    }
    if (reprime_pending_) {
        if (reprime_countdown_ > 0)
            --reprime_countdown_;
        if (reprime_countdown_ == 0)
            replicateToStandby();
    }
}

void
RemoteNetwork::startProber()
{
    if (options_.heartbeat_ms <= 0.0)
        return;
    prober_ = std::thread([this] { proberLoop(); });
}

void
RemoteNetwork::stopProber()
{
    if (!prober_.joinable())
        return;
    {
        std::lock_guard<std::mutex> lk(prober_mu_);
        prober_stop_ = true;
    }
    prober_cv_.notify_all();
    prober_.join();
}

void
RemoteNetwork::proberLoop()
{
    // Dedicated plain connections, one per endpoint, reconnected on
    // demand: never the RPC session channel (a probe must not race a
    // quantum exchange) and never chaos-wrapped (a probe must not
    // consume fault-schedule draws, or running the prober would
    // change a chaos run's outcome).
    std::vector<std::unique_ptr<ipc::ByteChannel>> probes;
    std::uint64_t nonce = 0;
    for (;;) {
        std::vector<std::string> eps;
        {
            std::unique_lock<std::mutex> lk(prober_mu_);
            prober_cv_.wait_for(
                lk,
                std::chrono::duration<double, std::milli>(
                    options_.heartbeat_ms),
                [this] { return prober_stop_; });
            if (prober_stop_)
                return;
            eps = options_.endpoints;
        }
        if (probes.size() < eps.size())
            probes.resize(eps.size());
        for (std::size_t i = 0; i < eps.size() && i < 64; ++i) {
            bool alive = false;
            try {
                if (!probes[i] || !probes[i]->valid()) {
                    ipc::Fd fd =
                        ipc::connectTo(eps[i], options_.heartbeat_ms);
                    probes[i] = std::make_unique<ipc::FdChannel>(
                        std::move(fd));
                }
                ipc::PingRequest req;
                req.nonce = ++nonce;
                ArchiveWriter aw =
                    ipc::beginMessage(ipc::MsgType::Ping);
                ipc::encodePing(aw, req);
                ipc::sendMessage(*probes[i], std::move(aw));
                auto msg = ipc::recvMessage(*probes[i],
                                            options_.heartbeat_ms);
                alive = msg && msg->type == ipc::MsgType::Pong &&
                        ipc::decodePong(msg->ar).nonce == req.nonce;
            } catch (const SimError &) {
                alive = false;
            }
            if (!alive) {
                // A missed beat is only a suspicion — the RPC path
                // consumes it at the next quantum boundary and the
                // retry machinery does the actual failing over.
                probes[i].reset();
                heartbeat_misses_.fetch_add(1,
                                            std::memory_order_relaxed);
                suspect_mask_.fetch_or(std::uint64_t(1) << i,
                                       std::memory_order_acq_rel);
            }
        }
    }
}

void
RemoteNetwork::setDeliveryHandler(DeliveryHandler handler)
{
    handler_ = std::move(handler);
}

abstractnet::LatencyTable
RemoteNetwork::fetchTunedTable()
{
    return runWithRetry([&] {
        syncNow();
        ipc::sendMessage(*chan_,
                         ipc::beginMessage(ipc::MsgType::TableGet));
        ipc::Message msg = expectReply(options_.quantum_timeout_ms);
        if (msg.type == ipc::MsgType::ErrorReply)
            ipc::throwDecodedError(msg.ar);
        if (msg.type != ipc::MsgType::TableData) {
            throw SimError(ErrorKind::Transport,
                           std::string("expected TableData, got ") +
                               ipc::toString(msg.type));
        }
        abstractnet::LatencyTable table = table_proto_;
        try {
            // Table bytes come off the wire: archive misuse on a
            // CRC-valid-but-malformed payload must be a typed error.
            logging::ThrowOnError guard;
            table.restoreBinary(msg.ar);
        } catch (const SimError &err) {
            if (err.kind() == ErrorKind::Transport ||
                err.kind() == ErrorKind::Timeout)
                throw;
            throw SimError(ErrorKind::Transport,
                           std::string("malformed TableData payload: ") +
                               err.what());
        }
        msg.done();
        return table;
    });
}

std::vector<ipc::StatRow>
RemoteNetwork::fetchRemoteStats()
{
    return runWithRetry([&] {
        syncNow();
        ipc::sendMessage(*chan_,
                         ipc::beginMessage(ipc::MsgType::StatsGet));
        ipc::Message msg = expectReply(options_.quantum_timeout_ms);
        if (msg.type == ipc::MsgType::ErrorReply)
            ipc::throwDecodedError(msg.ar);
        if (msg.type != ipc::MsgType::StatsData) {
            throw SimError(ErrorKind::Transport,
                           std::string("expected StatsData, got ") +
                               ipc::toString(msg.type));
        }
        auto rows = ipc::decodeStatsReply(msg.ar);
        msg.done();
        return rows;
    });
}

void
RemoteNetwork::save(ArchiveWriter &aw)
{
    aw.beginSection("remote_net");
    aw.putU64(cur_time_);
    aw.putBool(idle_);
    aw.putU64(acct_.injected);
    aw.putU64(acct_.delivered);
    aw.putU64(acct_.in_flight);
    aw.putU64(num_nodes_);
    aw.putU64(pending_.size());
    for (const PacketPtr &pkt : pending_)
        savePacket(aw, *pkt);

    // Paired server-side checkpoint, embedded so one client image
    // restores both processes coherently. Unreachable server: the
    // image is omitted and restore opens a fresh session at the saved
    // tick (the deliveries still in the old fabric are lost — the same
    // loss the outage itself caused).
    ipc::CkptReply ckpt;
    try {
        ckpt = runWithRetry([&] {
            // The paired image must be taken at the client's tick, not
            // wherever idle elision left the server's clock.
            syncNow();
            return ckptSaveNow();
        });
    } catch (const SimError &err) {
        warn("remote checkpoint unavailable (", err.what(),
             "); saving the client half only");
    }
    if (!ckpt.image.empty()) {
        // An explicit checkpoint is also a fresh recovery base.
        adoptBase(ckpt.image, ckpt.digest);
        replicateToStandby();
    }
    aw.putBool(!ckpt.image.empty());
    if (!ckpt.image.empty())
        aw.putString(ckpt.image);
    aw.endSection();
}

void
RemoteNetwork::restore(ArchiveReader &ar)
{
    ar.expectSection("remote_net");
    cur_time_ = ar.getU64();
    idle_ = ar.getBool();
    acct_.injected = ar.getU64();
    acct_.delivered = ar.getU64();
    acct_.in_flight = ar.getU64();
    num_nodes_ = ar.getU64();
    std::vector<PacketPtr> pending;
    std::uint64_t n = ar.getU64();
    pending.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i)
        pending.push_back(restorePacket(ar));
    bool has_image = ar.getBool();
    std::string image = has_image ? ar.getString() : std::string();
    ar.endSection();

    // Whatever session is live belongs to the pre-restore timeline;
    // the restored image becomes the new recovery base (empty image =
    // cold Hello at the saved tick, rebuilding an empty fabric).
    markDisconnected();
    standby_chan_.reset();
    standby_valid_ = false;
    journal_.clear();
    quanta_since_base_ = 0;
    journal_base_ = cur_time_;
    base_image_ = std::move(image);
    // The image came from a trusted archive, not the wire: its digest
    // is recomputed locally so the restored session's CkptLoadAck can
    // still be attested against it.
    base_digest_ = base_image_.empty() ? 0 : crc64(base_image_);
    if (test_hooks.corrupt_attest && !base_image_.empty())
        base_digest_ ^= 1;

    runWithRetry([] { return 0; });
    if (has_image)
        replicateToStandby();
    pending_ = std::move(pending);
}

} // namespace remote
} // namespace noc
} // namespace rasim
