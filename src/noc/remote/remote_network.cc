#include "noc/remote/remote_network.hh"

#include <utility>

#include "ipc/frame.hh"
#include "sim/config.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace rasim
{
namespace noc
{
namespace remote
{

RemoteOptions
RemoteOptions::fromConfig(const Config &cfg)
{
    RemoteOptions o;
    o.socket = cfg.getString("remote.socket", o.socket);
    o.connect_timeout_ms =
        cfg.getDouble("remote.connect_timeout_ms", o.connect_timeout_ms);
    o.quantum_timeout_ms =
        cfg.getDouble("remote.quantum_timeout_ms", o.quantum_timeout_ms);
    o.model = cfg.getString("remote.model", o.model);
    o.engine_workers =
        static_cast<int>(cfg.getUInt("remote.engine_workers", 0));
    o.pipeline = cfg.getBool("network.pipeline.enabled", o.pipeline);
    o.speculate =
        cfg.getBool("network.pipeline.speculate", o.speculate);
    if (!ipc::validAddress(o.socket))
        fatal("remote.socket: unusable address '", o.socket, "'");
    if (o.connect_timeout_ms <= 0.0)
        fatal("remote.connect_timeout_ms must be positive");
    if (o.quantum_timeout_ms < 0.0)
        fatal("remote.quantum_timeout_ms must be non-negative");
    if (o.model != "cycle" && o.model != "deflection")
        fatal("remote.model must be cycle or deflection, not '",
              o.model, "'");
    if (o.engine_workers < 0)
        fatal("remote.engine_workers must be non-negative");
    return o;
}

RemoteNetwork::RemoteNetwork(Simulation &sim, const std::string &name,
                             const NocParams &params,
                             RemoteOptions options, SimObject *parent)
    : SimObject(sim, name, parent),
      packetsInjected(this, "packets_injected",
                      "packets handed to the network"),
      packetsDelivered(this, "packets_delivered",
                       "packets fully received"),
      totalLatency(this, "total_latency",
                   "inject-to-deliver latency (cycles)"),
      networkLatency(this, "network_latency",
                     "fabric enter-to-deliver latency (cycles)"),
      queueLatency(this, "queue_latency",
                   "source queueing latency (cycles)"),
      hopCount(this, "hop_count", "router-to-router hops per packet"),
      rpcRoundTrips(this, "rpc_round_trips",
                    "quantum RPC round-trips completed"),
      reconnects(this, "reconnects",
                 "sessions re-opened after a connection loss"),
      elidedQuanta(this, "elided_quanta",
                   "idle quanta served without touching the wire"),
      specHits(this, "spec_hits",
               "quantum replies the server had pre-computed"),
      specRebases(this, "spec_rebases",
                  "server speculations rolled back before serving"),
      schedThrottles(this, "sched_throttles",
                     "replies delayed by the server's fair scheduler"),
      params_(params), options_(std::move(options)),
      // Identical geometry to the bridge's reciprocal table, so the
      // server's shadow table and the bridge's table are comparable
      // entry for entry.
      table_proto_(params, params.columns + params.rows + 2,
                   sim.config().getDouble("abstract.ewma_alpha", 0.05),
                   sim.config().getString("abstract.granularity",
                                          "distance") == "pair"
                       ? abstractnet::LatencyTable::Granularity::Pair
                       : abstractnet::LatencyTable::Granularity::Distance,
                   params.numNodes())
{
    params_.validate();
    for (int v = 0; v < num_vnets; ++v) {
        vnetLatency.push_back(std::make_unique<stats::Distribution>(
            this, std::string("latency_vnet") + std::to_string(v),
            "total latency on vnet " + std::to_string(v)));
    }
    num_nodes_ = static_cast<std::uint64_t>(params_.numNodes());
    ensureSession();
}

RemoteNetwork::~RemoteNetwork()
{
    if (!fd_.valid())
        return;
    try {
        ipc::sendMessage(fd_, ipc::beginMessage(ipc::MsgType::Bye));
    } catch (const SimError &) {
        // Best-effort goodbye; the server treats EOF the same way.
    }
}

std::size_t
RemoteNetwork::numNodes() const
{
    return static_cast<std::size_t>(num_nodes_);
}

std::optional<NetworkModel::Accounting>
RemoteNetwork::accounting() const
{
    return acct_;
}

void
RemoteNetwork::requestAbort()
{
    abort_.store(true, std::memory_order_relaxed);
}

void
RemoteNetwork::inject(const PacketPtr &pkt)
{
    // No IO here: injections buffer until the quantum boundary, so a
    // dead server cannot fail an inject() — every transport fault
    // surfaces inside advanceTo(), where the bridge's health machinery
    // catches backend errors.
    ++packetsInjected;
    pending_.push_back(pkt);
}

void
RemoteNetwork::markDisconnected()
{
    fd_.reset();
    // Injections buffered for the dead server die with it — the same
    // information loss the quarantine itself represents. A fresh
    // session starts from an empty network at the current tick.
    pending_.clear();
}

void
RemoteNetwork::rethrowPartingError(const SimError &send_err)
{
    // An AF_UNIX peer's close does not discard data it already wrote,
    // so an admission refusal sent just before the close is still
    // readable even though our own send got EPIPE.
    std::optional<ipc::Message> parting;
    try {
        parting = ipc::recvMessage(fd_, 200.0, &abort_);
    } catch (const SimError &) {
        throw send_err;
    }
    if (parting && parting->type == ipc::MsgType::ErrorReply)
        ipc::throwDecodedError(parting->ar);
    throw send_err;
}

ipc::Message
RemoteNetwork::expectReply(double timeout_ms)
{
    auto msg = ipc::recvMessage(fd_, timeout_ms, &abort_);
    if (!msg) {
        throw SimError(ErrorKind::Transport,
                       "server '" + options_.socket +
                           "' closed the connection mid-request");
    }
    return std::move(*msg);
}

void
RemoteNetwork::ensureSession()
{
    if (fd_.valid())
        return;
    try {
        fd_ = ipc::connectTo(options_.socket,
                             options_.connect_timeout_ms);
        ipc::HelloRequest req;
        req.model = options_.model;
        req.params = params_;
        req.engine_workers = options_.engine_workers;
        req.start_tick = cur_time_;
        req.table_alpha = table_proto_.alpha();
        req.table_pair_granularity =
            table_proto_.granularity() ==
            abstractnet::LatencyTable::Granularity::Pair;
        req.table_max_hops = table_proto_.maxHops();
        ArchiveWriter aw = ipc::beginMessage(ipc::MsgType::Hello);
        ipc::encodeHello(aw, req);
        try {
            ipc::sendMessage(fd_, std::move(aw));
        } catch (const SimError &e) {
            // The server can refuse admission and close before our
            // Hello lands; surface its typed refusal, not the EPIPE.
            rethrowPartingError(e);
        }

        ipc::Message msg = expectReply(options_.connect_timeout_ms);
        if (msg.type == ipc::MsgType::ErrorReply)
            ipc::throwDecodedError(msg.ar);
        if (msg.type != ipc::MsgType::HelloAck) {
            throw SimError(ErrorKind::Transport,
                           std::string("expected HelloAck, got ") +
                               ipc::toString(msg.type));
        }
        ipc::HelloReply rep = ipc::decodeHelloReply(msg.ar);
        msg.done();
        num_nodes_ = rep.num_nodes;
        cur_time_ = rep.cur_time;
        server_time_ = rep.cur_time;
        if (ever_connected_)
            ++reconnects;
        ever_connected_ = true;
    } catch (const SimError &) {
        markDisconnected();
        throw;
    }
}

void
RemoteNetwork::applyReply(const ipc::AdvanceReply &rep)
{
    cur_time_ = rep.cur_time;
    server_time_ = rep.cur_time;
    idle_ = rep.idle;
    acct_.injected = rep.injected;
    acct_.delivered = rep.delivered;
    acct_.in_flight = rep.in_flight;
    ++rpcRoundTrips;

    // Replay in delivery order: the handler (and the mirrored
    // aggregates) see exactly what an in-process backend would
    // have produced, in the same order.
    for (const PacketPtr &pkt : rep.deliveries) {
        ++packetsDelivered;
        totalLatency.sample(static_cast<double>(pkt->latency()));
        networkLatency.sample(
            static_cast<double>(pkt->networkLatency()));
        queueLatency.sample(static_cast<double>(pkt->queueLatency()));
        hopCount.sample(static_cast<double>(pkt->hops));
        vnetLatency[static_cast<int>(pkt->cls)]->sample(
            static_cast<double>(pkt->latency()));
        if (handler_)
            handler_(pkt);
    }
}

void
RemoteNetwork::advanceTo(Tick t)
{
    // The abort request is sticky until the next advanceTo() call.
    abort_.store(false, std::memory_order_relaxed);

    // Idle elision: an idle fabric with nothing buffered cannot
    // produce a delivery, so the quantum needs no RPC at all — the
    // clock advances locally and the server's own idle fast-forward
    // catches its copy up on the next real exchange. This is where
    // most of the amortized per-quantum overhead goes: long idle
    // stretches (warmup, drain tails, disengaged phases) cost zero
    // syscalls.
    if (options_.pipeline && idle_ && pending_.empty()) {
        if (t > cur_time_) {
            cur_time_ = t;
            ++elidedQuanta;
        }
        return;
    }

    try {
        ensureSession();
        if (options_.pipeline) {
            // Coalesced v2 exchange: inject batch + advance target in
            // one frame, reply in one frame — two syscalls a quantum.
            ipc::StepRequest req;
            req.target = t;
            req.speculate = options_.speculate;
            req.packets = std::move(pending_);
            pending_.clear();
            ArchiveWriter aw = ipc::beginMessage(ipc::MsgType::Step);
            ipc::encodeStep(aw, req);
            ipc::sendMessage(fd_, std::move(aw));

            ipc::Message msg = expectReply(options_.quantum_timeout_ms);
            if (msg.type == ipc::MsgType::ErrorReply)
                ipc::throwDecodedError(msg.ar);
            if (msg.type != ipc::MsgType::StepReply) {
                throw SimError(ErrorKind::Transport,
                               std::string("expected StepReply, got ") +
                                   ipc::toString(msg.type));
            }
            std::uint8_t flags = 0;
            ipc::AdvanceReply rep = ipc::decodeStepReply(msg.ar, flags);
            msg.done();
            if (flags & ipc::step_flag_spec_hit)
                ++specHits;
            if (flags & ipc::step_flag_rebased)
                ++specRebases;
            if (flags & ipc::step_flag_throttled)
                ++schedThrottles;
            applyReply(rep);
            return;
        }

        // v1 blocking exchange, kept for old servers and as the
        // differential baseline (network.pipeline.enabled=false).
        if (!pending_.empty()) {
            ArchiveWriter aw =
                ipc::beginMessage(ipc::MsgType::InjectBatch);
            ipc::encodePackets(aw, pending_);
            ipc::sendMessage(fd_, std::move(aw));
            pending_.clear();
        }
        ArchiveWriter aw = ipc::beginMessage(ipc::MsgType::Advance);
        ipc::encodeAdvance(aw, t);
        ipc::sendMessage(fd_, std::move(aw));

        ipc::Message msg = expectReply(options_.quantum_timeout_ms);
        if (msg.type == ipc::MsgType::ErrorReply)
            ipc::throwDecodedError(msg.ar);
        if (msg.type != ipc::MsgType::DeliveryBatch) {
            throw SimError(ErrorKind::Transport,
                           std::string("expected DeliveryBatch, got ") +
                               ipc::toString(msg.type));
        }
        ipc::AdvanceReply rep = ipc::decodeAdvanceReply(msg.ar);
        msg.done();
        applyReply(rep);
    } catch (const SimError &) {
        // Whatever went wrong (torn frame, timeout, server-side trip),
        // the stream can no longer be trusted to be in sync; drop the
        // session so a re-engagement starts clean.
        markDisconnected();
        throw;
    }
}

void
RemoteNetwork::syncServer()
{
    ensureSession();
    if (server_time_ >= cur_time_)
        return;
    // Idle elision left the server's clock behind; an empty,
    // unspeculated Step brings it to the client's tick so paired
    // state (tables, stats, checkpoints) is read at the same time on
    // both sides. The fabric was idle throughout, so the reply cannot
    // carry deliveries.
    try {
        ipc::StepRequest req;
        req.target = cur_time_;
        ArchiveWriter aw = ipc::beginMessage(ipc::MsgType::Step);
        ipc::encodeStep(aw, req);
        ipc::sendMessage(fd_, std::move(aw));
        ipc::Message msg = expectReply(options_.quantum_timeout_ms);
        if (msg.type == ipc::MsgType::ErrorReply)
            ipc::throwDecodedError(msg.ar);
        if (msg.type != ipc::MsgType::StepReply) {
            throw SimError(ErrorKind::Transport,
                           std::string("expected StepReply, got ") +
                               ipc::toString(msg.type));
        }
        std::uint8_t flags = 0;
        ipc::AdvanceReply rep = ipc::decodeStepReply(msg.ar, flags);
        msg.done();
        applyReply(rep);
    } catch (const SimError &) {
        // A torn sync leaves the stream unsynchronized; drop the
        // session so a re-engagement starts clean.
        markDisconnected();
        throw;
    }
}

void
RemoteNetwork::setDeliveryHandler(DeliveryHandler handler)
{
    handler_ = std::move(handler);
}

abstractnet::LatencyTable
RemoteNetwork::fetchTunedTable()
{
    syncServer();
    ipc::sendMessage(fd_, ipc::beginMessage(ipc::MsgType::TableGet));
    ipc::Message msg = expectReply(options_.quantum_timeout_ms);
    if (msg.type == ipc::MsgType::ErrorReply)
        ipc::throwDecodedError(msg.ar);
    if (msg.type != ipc::MsgType::TableData) {
        throw SimError(ErrorKind::Transport,
                       std::string("expected TableData, got ") +
                           ipc::toString(msg.type));
    }
    abstractnet::LatencyTable table = table_proto_;
    try {
        // Table bytes come off the wire: archive misuse on a
        // CRC-valid-but-malformed payload must be a typed error.
        logging::ThrowOnError guard;
        table.restoreBinary(msg.ar);
    } catch (const SimError &err) {
        if (err.kind() == ErrorKind::Transport ||
            err.kind() == ErrorKind::Timeout)
            throw;
        throw SimError(ErrorKind::Transport,
                       std::string("malformed TableData payload: ") +
                           err.what());
    }
    msg.done();
    return table;
}

std::vector<ipc::StatRow>
RemoteNetwork::fetchRemoteStats()
{
    syncServer();
    ipc::sendMessage(fd_, ipc::beginMessage(ipc::MsgType::StatsGet));
    ipc::Message msg = expectReply(options_.quantum_timeout_ms);
    if (msg.type == ipc::MsgType::ErrorReply)
        ipc::throwDecodedError(msg.ar);
    if (msg.type != ipc::MsgType::StatsData) {
        throw SimError(ErrorKind::Transport,
                       std::string("expected StatsData, got ") +
                           ipc::toString(msg.type));
    }
    auto rows = ipc::decodeStatsReply(msg.ar);
    msg.done();
    return rows;
}

void
RemoteNetwork::save(ArchiveWriter &aw)
{
    aw.beginSection("remote_net");
    aw.putU64(cur_time_);
    aw.putBool(idle_);
    aw.putU64(acct_.injected);
    aw.putU64(acct_.delivered);
    aw.putU64(acct_.in_flight);
    aw.putU64(num_nodes_);
    aw.putU64(pending_.size());
    for (const PacketPtr &pkt : pending_)
        savePacket(aw, *pkt);

    // Paired server-side checkpoint, embedded so one client image
    // restores both processes coherently. Unreachable server: the
    // image is omitted and restore opens a fresh session at the saved
    // tick (the deliveries still in the old fabric are lost — the same
    // loss the outage itself caused).
    std::string image;
    try {
        // The paired image must be taken at the client's tick, not
        // wherever idle elision left the server's clock.
        syncServer();
        ipc::sendMessage(fd_,
                         ipc::beginMessage(ipc::MsgType::CkptSave));
        ipc::Message msg = expectReply(options_.quantum_timeout_ms);
        if (msg.type == ipc::MsgType::ErrorReply)
            ipc::throwDecodedError(msg.ar);
        if (msg.type != ipc::MsgType::CkptData) {
            throw SimError(ErrorKind::Transport,
                           std::string("expected CkptData, got ") +
                               ipc::toString(msg.type));
        }
        image = ipc::decodeBlob(msg.ar);
        msg.done();
    } catch (const SimError &err) {
        markDisconnected();
        warn("remote checkpoint unavailable (", err.what(),
             "); saving the client half only");
    }
    aw.putBool(!image.empty());
    if (!image.empty())
        aw.putString(image);
    aw.endSection();
}

void
RemoteNetwork::restore(ArchiveReader &ar)
{
    ar.expectSection("remote_net");
    cur_time_ = ar.getU64();
    idle_ = ar.getBool();
    acct_.injected = ar.getU64();
    acct_.delivered = ar.getU64();
    acct_.in_flight = ar.getU64();
    num_nodes_ = ar.getU64();
    std::vector<PacketPtr> pending;
    std::uint64_t n = ar.getU64();
    pending.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i)
        pending.push_back(restorePacket(ar));
    bool has_image = ar.getBool();
    std::string image = has_image ? ar.getString() : std::string();
    ar.endSection();

    if (has_image) {
        // Push the paired image into the (possibly brand-new) server
        // session; the hosted network resumes mid-flight state and all.
        ensureSession();
        ArchiveWriter aw =
            ipc::beginMessage(ipc::MsgType::CkptLoad);
        aw.putString(image);
        ipc::sendMessage(fd_, std::move(aw));
        ipc::Message msg = expectReply(options_.quantum_timeout_ms);
        if (msg.type == ipc::MsgType::ErrorReply)
            ipc::throwDecodedError(msg.ar);
        if (msg.type != ipc::MsgType::CkptLoadAck) {
            throw SimError(ErrorKind::Transport,
                           std::string("expected CkptLoadAck, got ") +
                               ipc::toString(msg.type));
        }
        Tick server_tick = ipc::decodeTick(msg.ar);
        msg.done();
        server_time_ = server_tick;
        if (server_tick != cur_time_) {
            throw SimError(ErrorKind::Transport,
                           "restored server is at tick " +
                               std::to_string(server_tick) +
                               " but the client checkpoint was taken "
                               "at tick " +
                               std::to_string(cur_time_));
        }
    } else {
        // No paired image: rebuild an empty fabric at the saved tick.
        markDisconnected();
        ensureSession();
    }
    pending_ = std::move(pending);
}

} // namespace remote
} // namespace noc
} // namespace rasim
