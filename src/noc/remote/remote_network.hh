/**
 * @file
 * The out-of-process NoC backend client: a NetworkModel whose detailed
 * network lives in a rasim-nocd server, driven over the quantum-RPC
 * protocol. Selected with network.backend=remote.
 *
 * Determinism: injections buffer locally (inject() never performs IO)
 * and flush at advanceTo() — as one coalesced Step frame when
 * network.pipeline.enabled (the default), or as the v1
 * InjectBatch + Advance pair otherwise; the server simulates the
 * quantum and replies with the deliveries in delivery order, which
 * this client replays through the delivery handler in that exact
 * order. Every value the rest of the system reads between quanta
 * (curTime, idle, accounting) is mirrored from the last reply, so a
 * remote run is bit-identical to hosting the same network in-process.
 *
 * Pipelining: under reciprocal coupling quantum N's deliveries re-tune
 * the latency table before quantum N+1's injections sample it, so the
 * client cannot overlap its own RPCs without breaking bit-identity.
 * The amortized cost per quantum drops instead by (a) coalescing
 * inject+advance into one Step frame, (b) eliding the RPC entirely
 * while the fabric is idle and nothing is buffered (the server's own
 * idle fast-forward catches its clock up on the next real exchange),
 * and (c) letting the server speculatively execute the predicted next
 * quantum during the client's compute gap (network.pipeline.speculate)
 * so a matching Step is answered from a pre-sealed reply. All three
 * preserve the delivery stream, stats tree and tuned table bit for
 * bit.
 *
 * Failure: every transport fault or quantum timeout is first fought
 * locally. The deterministic retry policy (network.remote.retry.*)
 * reconnects with seeded jittered backoff and rebuilds the server's
 * state from the client's *recovery lineage*: the last base checkpoint
 * image (refreshed every network.remote.ckpt_quanta quanta) plus a
 * journal of every quantum request issued since. Replaying the journal
 * into a fresh session reproduces, by the server's own determinism,
 * the exact pre-failure state — so the retried quantum proceeds as if
 * nothing happened, bit for bit. With network.remote.endpoints listing
 * standby servers the client also keeps a warm standby session primed
 * with each base image refresh and promotes it on a primary loss (hot
 * failover). Only when the retry budget or circuit breaker is
 * exhausted does the failure surface inside advanceTo() as a typed
 * SimError — precisely where the co-simulation bridge's health
 * machinery catches backend failures and degrades the run to the
 * tuned-abstract fallback; the lineage is dropped at that point, so a
 * later re-engagement opens a fresh session fast-forwarded to the
 * current tick (the pre-retry lossy semantics).
 *
 * Chaos: with fault.transport.* enabled every connection is wrapped in
 * an ipc::FaultyTransport drawing from one TransportFaultSchedule
 * shared across all of the client's connections, so a faulty run is
 * exactly reproducible — and, while every fault stays within the retry
 * budget, bit-identical to the fault-free run (the chaos differential
 * proof; see tests/noc/chaos_differential_test.cc).
 *
 * Self-healing (v3, DESIGN.md section 13): the client can run against
 * a rasim-supervisor-managed worker fleet and survive any number of
 * worker crashes, not just the first.
 *
 *  - Liveness: with network.remote.heartbeat_ms > 0 a background
 *    prober Pings every endpoint over dedicated plain connections and
 *    flags the ones that miss; the flags are consumed at the next
 *    quantum boundary (a suspect primary is dropped pre-emptively, a
 *    suspect standby is quarantined), so a dead peer is detected
 *    within a bounded interval instead of at the next failing RPC.
 *    Default 0 = off: the prober adds wall-clock-dependent connection
 *    churn, so bit-reproducible chaos runs leave it disabled.
 *
 *  - Re-priming: a consumed standby (after a promotion) or a failed
 *    priming attempt schedules a deterministic quanta-counted retry
 *    with exponential backoff, so the client converges back to
 *    one-primary-one-standby as soon as the supervisor respawns the
 *    dead worker — N sequential failures are survivable, not one.
 *
 *  - Attestation: CkptData and CkptLoadAck carry CRC64 digests of the
 *    serialized network state, and every network.remote.attest_quanta
 *    quanta a Step requests one; the client cross-checks primary
 *    against standby at priming time and the rebuilt replica against
 *    the journal during replay, quarantining (and re-priming) any
 *    replica whose state diverged instead of silently computing on it.
 *
 *  - Registry: with network.remote.registry pointing at a supervisor's
 *    endpoints file, every cold open re-resolves the worker fleet
 *    (liveness + restart counts) and prefers endpoints the supervisor
 *    reports up.
 */

#ifndef RASIM_NOC_REMOTE_REMOTE_NETWORK_HH
#define RASIM_NOC_REMOTE_REMOTE_NETWORK_HH

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "abstractnet/latency_table.hh"
#include "ipc/frame.hh"
#include "ipc/protocol.hh"
#include "ipc/retry.hh"
#include "ipc/socket.hh"
#include "noc/network_model.hh"
#include "noc/params.hh"
#include "sim/fault_injector.hh"
#include "sim/sim_error.hh"
#include "sim/sim_object.hh"
#include "stats/distribution.hh"
#include "stats/stat.hh"

namespace rasim
{

class Config;

namespace ipc
{
class FaultyTransport;
} // namespace ipc

namespace noc
{
namespace remote
{

struct RemoteOptions
{
    /** Server address (unix:/path, tcp:host:port, or a bare path). */
    std::string socket = "unix:/tmp/rasim-nocd.sock";
    /** Failover set, in preference order (network.remote.endpoints,
     *  comma-separated). Empty = just @ref socket. The first entry is
     *  the primary; the next one hosts the warm standby session. */
    std::vector<std::string> endpoints;
    /** Budget for connect + Hello handshake, in ms. */
    double connect_timeout_ms = 5000.0;
    /** Budget for one quantum's DeliveryBatch, in ms (0 = forever). */
    double quantum_timeout_ms = 30000.0;
    /** Hosted model on the server: "cycle" or "deflection". */
    std::string model = "cycle";
    /** Server-side ParallelEngine workers (0 = serial). */
    int engine_workers = 0;
    /** Speak the coalesced Step exchange and elide idle quanta
     *  (network.pipeline.enabled). Off = v1 blocking exchange. */
    bool pipeline = true;
    /** Permit server-side speculation of the predicted next quantum
     *  (network.pipeline.speculate; only meaningful with pipeline). */
    bool speculate = true;
    /** Refresh the recovery base image (and replicate it to the
     *  standby) every this many successful quanta; 0 = only explicit
     *  checkpoints refresh the base, so the journal spans the whole
     *  lineage (network.remote.ckpt_quanta). */
    std::uint64_t ckpt_quanta = 256;
    /** Probe every endpoint with a Ping each this many ms from a
     *  background thread; 0 = prober off
     *  (network.remote.heartbeat_ms). */
    double heartbeat_ms = 0.0;
    /** Request a CRC64 state attestation with every this many
     *  pipelined quanta, journaling the digest so a recovery replay
     *  can prove the rebuilt replica reconverged; 0 = attest only at
     *  checkpoints (network.remote.attest_quanta). */
    std::uint64_t attest_quanta = 0;
    /** Path of a rasim-supervisor endpoints registry; when set, every
     *  cold open re-resolves the worker fleet from it
     *  (network.remote.registry). Empty = static endpoint list. */
    std::string registry;
    /** Deterministic retry/backoff/breaker budgets
     *  (network.remote.retry.*). */
    ipc::RetryOptions retry;
    /** Client-side transport chaos (fault.transport.*). */
    TransportFaultOptions fault;

    /** Read the "remote.*", "network.remote.*", "network.pipeline.*"
     *  and "fault.transport.*" keys. */
    static RemoteOptions fromConfig(const Config &cfg);
};

class RemoteNetwork : public SimObject, public NetworkModel
{
  public:
    /** Connects and opens a session eagerly, so a missing server is a
     *  construction-time SimError, not a mid-run surprise. */
    RemoteNetwork(Simulation &sim, const std::string &name,
                  const NocParams &params, RemoteOptions options,
                  SimObject *parent = nullptr);
    ~RemoteNetwork() override;

    // NetworkModel interface.
    void inject(const PacketPtr &pkt) override;
    void advanceTo(Tick t) override;
    void setDeliveryHandler(DeliveryHandler handler) override;
    Tick curTime() const override { return cur_time_; }
    bool idle() const override { return idle_ && pending_.empty(); }
    std::size_t numNodes() const override;
    std::optional<Accounting> accounting() const override;
    void requestAbort() override;

    /** Read back the server's shadow-tuned LatencyTable (the
     *  differential proof that remote feedback equals in-process). */
    abstractnet::LatencyTable fetchTunedTable();

    /** Pull the hosted network's flattened statistics subtree. */
    std::vector<ipc::StatRow> fetchRemoteStats();

    /** True while a session is open (observability / tests). */
    bool connected() const { return chan_ && chan_->valid(); }

    const NocParams &params() const { return params_; }
    const RemoteOptions &options() const { return options_; }

    /** Endpoint of the live (or last live) session. */
    const std::string &
    activeEndpoint() const
    {
        return options_.endpoints[active_ep_];
    }

    /** True while a primed standby session could be promoted. */
    bool standbyReady() const { return standby_valid_; }

    /** Packets reported delivered by the server so far. */
    std::uint64_t deliveredCount() const { return acct_.delivered; }

    /**
     * Checkpoint: the client-side mirror state plus a paired
     * server-side checkpoint image taken over the live session (so a
     * cross-process kill-and-resume restores both halves coherently).
     * When the server is unreachable the image is omitted and restore
     * falls back to a fresh session at the saved tick.
     */
    void save(ArchiveWriter &aw);
    void restore(ArchiveReader &ar);

    /** @name Test hooks */
    /// @{
    /** The retry policy driving every transport round. */
    const ipc::RetryPolicy &retryPolicy() const { return retry_; }
    /** The fault schedule shared by every client connection. */
    const TransportFaultSchedule &
    faultSchedule() const
    {
        return fault_sched_;
    }
    /** The live channel as a FaultyTransport (to force one specific
     *  fault), or nullptr when chaos is off / disconnected. */
    ipc::FaultyTransport *faultyChannel();
    /// @}

    /** @name Mirrored delivery statistics
     * Sampled from the replayed deliveries in delivery order, so they
     * match a server-hosted (or in-process) CycleNetwork's aggregates
     * bit for bit. */
    /// @{
    stats::Scalar packetsInjected;
    stats::Scalar packetsDelivered;
    stats::Distribution totalLatency;
    stats::Distribution networkLatency;
    stats::Distribution queueLatency;
    stats::Distribution hopCount;
    std::vector<std::unique_ptr<stats::Distribution>> vnetLatency;
    /// @}

    /** @name Transport statistics */
    /// @{
    stats::Scalar rpcRoundTrips;  ///< quantum round-trips completed
    stats::Scalar elidedQuanta;   ///< idle quanta served without IO
    stats::Scalar specHits;       ///< replies the server pre-computed
    stats::Scalar specRebases;    ///< server speculations rolled back
    stats::Scalar schedThrottles; ///< replies delayed by fair-sched
    /// @}

    /** @name Failure-handling statistics (the "health" group) */
    /// @{
    stats::Group health;          ///< …dumps under <name>.health.*
    stats::Scalar reconnects;     ///< sessions re-opened after a loss
    stats::Scalar retries;        ///< attempts re-run after a backoff
    stats::Scalar failovers;      ///< sessions moved to a new endpoint
    stats::Scalar backoffMsTotal; ///< wall-clock slept in backoffs
    stats::Scalar breakerTrips;   ///< circuit breaker openings
    stats::Scalar standbyPrimeFailures; ///< priming attempts that failed
    stats::Scalar reprimes;       ///< standbys re-primed after loss/use
    stats::Scalar heartbeatMisses; ///< liveness probes that went dead
    stats::Scalar attestationMismatches; ///< replica digests that diverged
    stats::Scalar workerRestarts; ///< fleet restarts (registry mirror)
    /// @}

    /**
     * Crash-window test instrumentation: callbacks fired at the exact
     * client-side moments the crash-anywhere tests need to SIGKILL a
     * worker in (inside a checkpoint stream, mid-replay, between
     * promotion and the first Step). Never set outside tests; all
     * default-empty. corrupt_attest flips every digest the client
     * records, forcing the attestation cross-checks to fire.
     */
    struct TestHooks
    {
        /** Before each raw exchange hits the wire (Step, Advance,
         *  sync, checkpoint), with a running operation index. */
        std::function<void(std::uint64_t)> on_op;
        /** Before the CkptSave request is sent. */
        std::function<void()> on_ckpt_save;
        /** Before journal record @p i is re-issued during replay. */
        std::function<void(std::size_t)> on_replay;
        /** After a standby promotion, before the journal replay. */
        std::function<void()> on_promote;
        /** Corrupt recorded digests (attestation negative tests). */
        bool corrupt_attest = false;
    };
    TestHooks test_hooks;

  private:
    /** One quantum of the recovery journal: replaying these Step
     *  requests against a session restored to journal_base_
     *  reproduces the pre-failure server state exactly. */
    struct QuantumRecord
    {
        Tick target;
        std::vector<PacketPtr> packets;
        /** The original exchange carried an attestation request; the
         *  digest it returned is the proof a recovery replay must
         *  reproduce before the rebuilt replica is trusted. */
        bool attested = false;
        std::uint64_t digest = 0;
    };

    /** Run @p fn as one retry round: any retryable SimError drops the
     *  connection, backs off deterministically, recovers the session
     *  (failover or reconnect + journal replay) and re-runs @p fn.
     *  An exhausted round drops the recovery lineage (giveUp()) and
     *  rethrows, surfacing to the bridge's health machinery. */
    template <typename Fn>
    auto
    runWithRetry(Fn &&fn) -> decltype(fn())
    {
        retry_.beginRound();
        for (;;) {
            try {
                ensureSession();
                auto result = fn();
                retry_.noteSuccess(active_ep_);
                syncHealthStats();
                return result;
            } catch (const SimError &err) {
                markDisconnected();
                retry_.noteFailure();
                if (!retryable(err) || !retry_.shouldRetry()) {
                    // Only the endpoint the round died on feeds its
                    // breaker: a healthy standby's scope stays closed,
                    // so the next round may still reach it.
                    retry_.noteRoundFailed(active_ep_);
                    giveUp();
                    syncHealthStats();
                    throw;
                }
                retry_.backoff();
                syncHealthStats();
            }
        }
    }

    /** Worth another attempt? Transport/Timeout errors are, unless
     *  the caller requested an abort. */
    bool retryable(const SimError &err) const;

    /** Mirror the retry policy's counters into the health stats. */
    void syncHealthStats();

    /** Open a session if none is live: promote the standby or cold-
     *  open an endpoint, then replay the journal. */
    void ensureSession();
    /** Connect to @p ep and wrap the channel in the shared fault
     *  schedule when chaos is enabled. */
    std::unique_ptr<ipc::ByteChannel> openChannelTo(std::size_t ep,
                                                    double timeout_ms);
    /** Hello/HelloAck handshake on @p ch at @p start_tick. */
    ipc::HelloReply helloOn(ipc::ByteChannel &ch,
                            const std::string &addr, Tick start_tick);
    /** Push @p image into the session on @p ch; returns the restored
     *  server tick plus the replica's own re-serialization digest. */
    ipc::CkptLoadReply ckptLoadOn(ipc::ByteChannel &ch,
                                  const std::string &addr,
                                  const std::string &image);
    /** Promote the primed standby session to active, if it is valid
     *  and at the journal base; schedules a re-prime so the promoted
     *  run regains a standby (the double-failure lineage). */
    bool promoteStandby();
    /** Open a fresh session on the first reachable endpoint (trying
     *  from the active one onward, preferring closed-breaker and
     *  registry-up endpoints) and restore the base image. */
    void coldOpen();
    /** Re-read the supervisor registry (when configured): endpoint
     *  liveness, fleet restart counts. Returns the per-endpoint up
     *  mask (all-up when no registry is readable). */
    std::uint64_t refreshRegistry();
    /** Re-issue every journaled quantum against the fresh session,
     *  discarding the replies (their deliveries were already applied
     *  in the original run) but cross-checking every journaled
     *  attestation digest — a mismatch quarantines the replica. */
    void replayJournal();
    /** Capture a fresh base image at the current tick, truncate the
     *  journal and prime the standby. Failure drops the broken
     *  connection and keeps the old (longer-journal) lineage. */
    void refreshBase();
    /** Push the base image into a warm session on the next endpoint
     *  so failover needs no state transfer. A failure or digest
     *  mismatch is counted and schedules a deterministic re-prime
     *  retry — never silently swallowed. */
    void replicateToStandby();
    /** Queue a replicateToStandby() retry after an exponentially
     *  backed-off number of successful quanta. */
    void scheduleReprime();
    /** Run a scheduled re-prime when its countdown expired, and
     *  consume any endpoint suspicions the heartbeat prober raised
     *  (quantum-boundary maintenance; no-op when nothing is due). */
    void maintainReplicas();
    /** Drop the whole recovery lineage (exhausted round): buffered
     *  injections die with it and the next session starts from an
     *  empty fabric at the current tick. */
    void giveUp();

    /** Drop a broken connection (the lineage survives for replay). */
    void markDisconnected();
    /** Receive one reply on the live channel, mapping EOF to a
     *  Transport SimError. */
    ipc::Message expectReply(double timeout_ms);
    /** Ditto on an explicit channel (handshakes, standby priming). */
    ipc::Message expectReplyOn(ipc::ByteChannel &ch,
                               const std::string &addr,
                               double timeout_ms);
    /** A send failed mid-handshake: the server may have refused the
     *  session and closed, leaving a typed parting error buffered on
     *  our side of the socket. Re-raise that in preference to the
     *  less informative send failure. */
    [[noreturn]] void rethrowPartingError(ipc::ByteChannel &ch,
                                          const SimError &send_err);
    /** Mirror a quantum reply and replay its deliveries in order. */
    void applyReply(const ipc::AdvanceReply &rep);
    /** One raw quantum exchange (no retry): send @p req, apply the
     *  reply. @p flags_out: count spec/sched flags. */
    void stepOnce(const ipc::StepRequest &req, bool count_flags);
    /** One raw v1 exchange (no retry): InjectBatch + Advance. */
    void advanceOnce(Tick t, const std::vector<PacketPtr> &packets);
    /** Raw idle catch-up of the server clock (no retry): an empty,
     *  unspeculated Step to cur_time_, so paired state (tables,
     *  stats, checkpoints) is read at the same tick on both sides. */
    void syncNow();
    /** Raw CkptSave exchange (no retry): the server's image at its
     *  current tick, verified against its attestation digest. */
    ipc::CkptReply ckptSaveNow();
    /** Adopt @p image (and its digest) as the new recovery base. */
    void adoptBase(std::string image, std::uint64_t digest);

    /** @name Heartbeat prober (background thread) */
    /// @{
    void startProber();
    void stopProber();
    void proberLoop();
    /// @}

    NocParams params_;
    RemoteOptions options_;

    std::unique_ptr<ipc::ByteChannel> chan_;
    std::unique_ptr<ipc::ByteChannel> standby_chan_;
    /** One schedule across every connection (primary, standby,
     *  reconnects), so a chaos run is reproducible end to end. */
    TransportFaultSchedule fault_sched_;
    ipc::RetryPolicy retry_;
    std::size_t active_ep_ = 0;
    bool ever_connected_ = false;
    std::atomic<bool> abort_{false};

    DeliveryHandler handler_;
    std::vector<PacketPtr> pending_; ///< injections since last quantum

    // Recovery lineage: base image + journal of quanta since.
    std::string base_image_;  ///< empty = cold Hello at journal_base_
    std::uint64_t base_digest_ = 0; ///< CRC64 attestation of the base
    Tick journal_base_ = 0;   ///< tick the base image was taken at
    std::vector<QuantumRecord> journal_;
    std::uint64_t quanta_since_base_ = 0;
    Tick standby_tick_ = 0;   ///< tick the standby was primed to
    bool standby_valid_ = false;

    // Re-prime scheduling: counted in successful quanta, so the retry
    // cadence is a pure function of simulated progress (deterministic
    // given the failure pattern), not of wall-clock time.
    bool reprime_pending_ = false;
    std::uint64_t reprime_countdown_ = 0;
    std::uint64_t reprime_backoff_ = 1; ///< quanta; doubles per failure

    // Attestation bookkeeping.
    std::uint64_t attest_counter_ = 0; ///< pipelined quanta issued
    std::uint64_t last_step_digest_ = 0; ///< from the last StepReply
    bool last_step_attested_ = false;
    std::uint64_t op_counter_ = 0; ///< raw exchanges (test_hooks.on_op)

    // Heartbeat prober state. The prober thread owns its own plain
    // (never chaos-wrapped) connections and communicates only through
    // these atomics, consumed at quantum boundaries.
    std::thread prober_;
    std::mutex prober_mu_; ///< guards the cv + endpoint list snapshot
    std::condition_variable prober_cv_;
    bool prober_stop_ = false;
    std::atomic<std::uint64_t> suspect_mask_{0};
    std::atomic<std::uint64_t> heartbeat_misses_{0};

    // Registry mirror (refreshRegistry).
    std::uint64_t registry_restarts_ = 0;

    // Mirrored from the last quantum reply (or HelloAck).
    /** Where the server's clock actually is; trails cur_time_ while
     *  idle quanta are elided. */
    Tick server_time_ = 0;
    Tick cur_time_ = 0;
    bool idle_ = true;
    Accounting acct_;
    std::uint64_t num_nodes_ = 0;

    /** Geometry prototype for fetchTunedTable() decoding. */
    abstractnet::LatencyTable table_proto_;
};

} // namespace remote
} // namespace noc
} // namespace rasim

#endif // RASIM_NOC_REMOTE_REMOTE_NETWORK_HH
