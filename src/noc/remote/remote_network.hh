/**
 * @file
 * The out-of-process NoC backend client: a NetworkModel whose detailed
 * network lives in a rasim-nocd server, driven over the quantum-RPC
 * protocol. Selected with network.backend=remote.
 *
 * Determinism: injections buffer locally (inject() never performs IO)
 * and flush at advanceTo() — as one coalesced Step frame when
 * network.pipeline.enabled (the default), or as the v1
 * InjectBatch + Advance pair otherwise; the server simulates the
 * quantum and replies with the deliveries in delivery order, which
 * this client replays through the delivery handler in that exact
 * order. Every value the rest of the system reads between quanta
 * (curTime, idle, accounting) is mirrored from the last reply, so a
 * remote run is bit-identical to hosting the same network in-process.
 *
 * Pipelining: under reciprocal coupling quantum N's deliveries re-tune
 * the latency table before quantum N+1's injections sample it, so the
 * client cannot overlap its own RPCs without breaking bit-identity.
 * The amortized cost per quantum drops instead by (a) coalescing
 * inject+advance into one Step frame, (b) eliding the RPC entirely
 * while the fabric is idle and nothing is buffered (the server's own
 * idle fast-forward catches its clock up on the next real exchange),
 * and (c) letting the server speculatively execute the predicted next
 * quantum during the client's compute gap (network.pipeline.speculate)
 * so a matching Step is answered from a pre-sealed reply. All three
 * preserve the delivery stream, stats tree and tuned table bit for
 * bit.
 *
 * Failure: every transport fault or quantum timeout surfaces inside
 * advanceTo() as a typed SimError — precisely where the co-simulation
 * bridge's health machinery catches backend failures — so a killed
 * server degrades the run to the tuned-abstract fallback instead of
 * hanging it. On re-engagement the client transparently reconnects,
 * opening a fresh session fast-forwarded to the current tick.
 */

#ifndef RASIM_NOC_REMOTE_REMOTE_NETWORK_HH
#define RASIM_NOC_REMOTE_REMOTE_NETWORK_HH

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "abstractnet/latency_table.hh"
#include "ipc/protocol.hh"
#include "ipc/socket.hh"
#include "noc/network_model.hh"
#include "noc/params.hh"
#include "sim/sim_object.hh"
#include "stats/distribution.hh"
#include "stats/stat.hh"

namespace rasim
{

class Config;

namespace noc
{
namespace remote
{

struct RemoteOptions
{
    /** Server address (unix:/path, tcp:host:port, or a bare path). */
    std::string socket = "unix:/tmp/rasim-nocd.sock";
    /** Budget for connect + Hello handshake, in ms. */
    double connect_timeout_ms = 5000.0;
    /** Budget for one quantum's DeliveryBatch, in ms (0 = forever). */
    double quantum_timeout_ms = 30000.0;
    /** Hosted model on the server: "cycle" or "deflection". */
    std::string model = "cycle";
    /** Server-side ParallelEngine workers (0 = serial). */
    int engine_workers = 0;
    /** Speak the coalesced Step exchange and elide idle quanta
     *  (network.pipeline.enabled). Off = v1 blocking exchange. */
    bool pipeline = true;
    /** Permit server-side speculation of the predicted next quantum
     *  (network.pipeline.speculate; only meaningful with pipeline). */
    bool speculate = true;

    /** Read the "remote.*" and "network.pipeline.*" keys. */
    static RemoteOptions fromConfig(const Config &cfg);
};

class RemoteNetwork : public SimObject, public NetworkModel
{
  public:
    /** Connects and opens a session eagerly, so a missing server is a
     *  construction-time SimError, not a mid-run surprise. */
    RemoteNetwork(Simulation &sim, const std::string &name,
                  const NocParams &params, RemoteOptions options,
                  SimObject *parent = nullptr);
    ~RemoteNetwork() override;

    // NetworkModel interface.
    void inject(const PacketPtr &pkt) override;
    void advanceTo(Tick t) override;
    void setDeliveryHandler(DeliveryHandler handler) override;
    Tick curTime() const override { return cur_time_; }
    bool idle() const override { return idle_ && pending_.empty(); }
    std::size_t numNodes() const override;
    std::optional<Accounting> accounting() const override;
    void requestAbort() override;

    /** Read back the server's shadow-tuned LatencyTable (the
     *  differential proof that remote feedback equals in-process). */
    abstractnet::LatencyTable fetchTunedTable();

    /** Pull the hosted network's flattened statistics subtree. */
    std::vector<ipc::StatRow> fetchRemoteStats();

    /** True while a session is open (observability / tests). */
    bool connected() const { return fd_.valid(); }

    const NocParams &params() const { return params_; }
    const RemoteOptions &options() const { return options_; }

    /** Packets reported delivered by the server so far. */
    std::uint64_t deliveredCount() const { return acct_.delivered; }

    /**
     * Checkpoint: the client-side mirror state plus a paired
     * server-side checkpoint image taken over the live session (so a
     * cross-process kill-and-resume restores both halves coherently).
     * When the server is unreachable the image is omitted and restore
     * falls back to a fresh session at the saved tick.
     */
    void save(ArchiveWriter &aw);
    void restore(ArchiveReader &ar);

    /** @name Mirrored delivery statistics
     * Sampled from the replayed deliveries in delivery order, so they
     * match a server-hosted (or in-process) CycleNetwork's aggregates
     * bit for bit. */
    /// @{
    stats::Scalar packetsInjected;
    stats::Scalar packetsDelivered;
    stats::Distribution totalLatency;
    stats::Distribution networkLatency;
    stats::Distribution queueLatency;
    stats::Distribution hopCount;
    std::vector<std::unique_ptr<stats::Distribution>> vnetLatency;
    /// @}

    /** @name Transport statistics */
    /// @{
    stats::Scalar rpcRoundTrips;  ///< quantum round-trips completed
    stats::Scalar reconnects;     ///< sessions re-opened after a loss
    stats::Scalar elidedQuanta;   ///< idle quanta served without IO
    stats::Scalar specHits;       ///< replies the server pre-computed
    stats::Scalar specRebases;    ///< server speculations rolled back
    stats::Scalar schedThrottles; ///< replies delayed by fair-sched
    /// @}

  private:
    /** Open a session if none is live (connect + Hello/HelloAck). */
    void ensureSession();
    /** Drop a broken connection; buffered injections are lost with
     *  the server that would have simulated them. */
    void markDisconnected();
    /** Receive one reply, mapping EOF to a Transport SimError. */
    ipc::Message expectReply(double timeout_ms);
    /** A send failed mid-handshake: the server may have refused the
     *  session and closed, leaving a typed parting error buffered on
     *  our side of the socket. Re-raise that in preference to the
     *  less informative send failure. */
    [[noreturn]] void rethrowPartingError(const SimError &send_err);
    /** Mirror a quantum reply and replay its deliveries in order. */
    void applyReply(const ipc::AdvanceReply &rep);
    /** Catch the server's clock up after idle elision, so paired
     *  state (tables, stats, checkpoints) is read at the same tick on
     *  both sides. */
    void syncServer();

    NocParams params_;
    RemoteOptions options_;

    ipc::Fd fd_;
    bool ever_connected_ = false;
    std::atomic<bool> abort_{false};

    DeliveryHandler handler_;
    std::vector<PacketPtr> pending_; ///< injections since last quantum

    // Mirrored from the last quantum reply (or HelloAck).
    /** Where the server's clock actually is; trails cur_time_ while
     *  idle quanta are elided. */
    Tick server_time_ = 0;
    Tick cur_time_ = 0;
    bool idle_ = true;
    Accounting acct_;
    std::uint64_t num_nodes_ = 0;

    /** Geometry prototype for fetchTunedTable() decoding. */
    abstractnet::LatencyTable table_proto_;
};

} // namespace remote
} // namespace noc
} // namespace rasim

#endif // RASIM_NOC_REMOTE_REMOTE_NETWORK_HH
