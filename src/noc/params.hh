/**
 * @file
 * Cycle-level network parameters and the VC indexing scheme.
 */

#ifndef RASIM_NOC_PARAMS_HH
#define RASIM_NOC_PARAMS_HH

#include <cstdint>
#include <string>

#include "noc/packet.hh"

namespace rasim
{

class Config;

namespace noc
{

/**
 * Configuration of the cycle-level network.
 *
 * VC layout: each virtual network owns `vc_classes * vcs_per_vnet`
 * consecutive VCs. The class dimension implements dateline deadlock
 * avoidance on tori (class 1 after crossing a wrap link); meshes use a
 * single class.
 */
struct NocParams
{
    int columns = 8;
    int rows = 8;
    std::string topology = "mesh";
    std::string routing = "xy";
    /** VCs per (vnet, class) pool. */
    int vcs_per_vnet = 2;
    /** Dateline classes: 1 for mesh, 2 for torus. */
    int vc_classes = 1;
    /** Buffer depth per VC, in flits. */
    int buffer_depth = 4;
    /** Link traversal latency in cycles (>= 1). */
    int link_latency = 1;
    /** Per-hop router pipeline depth in cycles (>= 1). */
    int pipeline_stages = 2;
    /** Link width: bytes carried per flit. */
    std::uint32_t flit_bytes = 16;
    /**
     * Compute backend for the detailed models: "object" steps the
     * per-object Router/Nic/Link reference path, "soa" runs the
     * batched structure-of-arrays kernel (bit-identical results).
     */
    std::string kernel = "object";
    /** SIMD policy for the SoA kernel: "auto", "scalar" or "avx2". */
    std::string simd = "auto";

    /** Read "noc.*" keys (plus "network.kernel" / "kernel.simd"),
     *  applying topology-dependent defaults. */
    static NocParams fromConfig(const Config &cfg);

    /** Abort with fatal() on inconsistent values. */
    void validate() const;

    int numNodes() const { return columns * rows; }
    int vcsPerVnet() const { return vcs_per_vnet * vc_classes; }
    int totalVcs() const { return num_vnets * vcsPerVnet(); }

    /** Global VC index of (vnet, class, index-within-pool). */
    int
    vcIndex(int vnet, int cls, int i) const
    {
        return (vnet * vc_classes + cls) * vcs_per_vnet + i;
    }

    int vnetOf(int vc) const { return vc / vcsPerVnet(); }
    int classOf(int vc) const { return (vc / vcs_per_vnet) % vc_classes; }

    std::uint32_t
    flitsPerPacket(std::uint32_t size_bytes) const
    {
        return flitsForBytes(size_bytes, flit_bytes);
    }
};

} // namespace noc
} // namespace rasim

#endif // RASIM_NOC_PARAMS_HH
