#include "noc/cycle_network.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace rasim
{
namespace noc
{

CycleNetwork::CycleNetwork(Simulation &sim, const std::string &name,
                           const NocParams &params, SimObject *parent)
    : SimObject(sim, name, parent),
      packetsInjected(this, "packets_injected",
                      "packets handed to the network"),
      packetsDelivered(this, "packets_delivered",
                       "packets fully received"),
      flitsDelivered(this, "flits_delivered", "flits fully received"),
      cyclesRun(this, "cycles_run", "network cycles simulated"),
      totalLatency(this, "total_latency",
                   "inject-to-deliver latency (cycles)"),
      networkLatency(this, "network_latency",
                     "fabric enter-to-deliver latency (cycles)"),
      queueLatency(this, "queue_latency",
                   "source queueing latency (cycles)"),
      hopCount(this, "hop_count", "router-to-router hops per packet"),
      params_(params), engine_(&serial_engine_)
{
    params_.validate();
    topo_ = makeTopology(params_.topology, params_.columns, params_.rows);
    routing_ = makeRouting(params_.routing);

    for (int v = 0; v < num_vnets; ++v) {
        vnetLatency.push_back(std::make_unique<stats::Distribution>(
            this, std::string("latency_vnet") + std::to_string(v),
            "total latency on vnet " + std::to_string(v)));
    }

    stalled_.assign(topo_->numNodes(), 0);
    fabric_ = kernel::makeCycleFabric(this, params_, *topo_, *routing_);
    inform("network '", name, "': compute kernel ",
           fabric_->description());
}

CycleNetwork::~CycleNetwork() = default;

void
CycleNetwork::setEngine(StepEngine *engine)
{
    engine_ = engine ? engine : &serial_engine_;
}

std::size_t
CycleNetwork::numNodes() const
{
    return static_cast<std::size_t>(topo_->numNodes());
}

void
CycleNetwork::inject(const PacketPtr &pkt)
{
    if (pkt->src >= numNodes() || pkt->dst >= numNodes())
        fatal("packet ", pkt->toString(), " references nodes outside a ",
              topo_->name(), " network");
    ++injected_;
    ++packetsInjected;
    pending_.push(pkt);
}

void
CycleNetwork::setDeliveryHandler(DeliveryHandler handler)
{
    handler_ = std::move(handler);
}

bool
CycleNetwork::idle() const
{
    return injected_ == delivered_ && pending_.empty();
}

std::optional<noc::NetworkModel::Accounting>
CycleNetwork::accounting() const
{
    // in_flight is rebuilt from the real structures (injection heap +
    // fabric-resident packets), not from injected - delivered, so a
    // bookkeeping bug is visible as a conservation violation.
    Accounting acc;
    acc.injected = injected_;
    acc.delivered = delivered_;
    acc.in_flight = pending_.size() + in_fabric_;
    return acc;
}

bool
CycleNetwork::setNodeStalled(std::size_t node, bool stalled)
{
    if (node >= stalled_.size())
        fatal("cycle network: cannot stall node ", node, " of ",
              stalled_.size());
    stalled_[node] = stalled ? 1 : 0;
    return true;
}

void
CycleNetwork::applyDelivery(const PacketPtr &pkt)
{
    ++delivered_;
    --in_fabric_;
    ++packetsDelivered;
    flitsDelivered += params_.flitsPerPacket(pkt->size_bytes);
    totalLatency.sample(static_cast<double>(pkt->latency()));
    networkLatency.sample(static_cast<double>(pkt->networkLatency()));
    queueLatency.sample(static_cast<double>(pkt->queueLatency()));
    hopCount.sample(static_cast<double>(pkt->hops));
    vnetLatency[static_cast<int>(pkt->cls)]->sample(
        static_cast<double>(pkt->latency()));
    if (handler_)
        handler_(pkt);
}

void
CycleNetwork::stepCycle()
{
    Cycle now = time_;

    // Sequential: packets whose injection tick has arrived enter the
    // NIC queues. Late packets (overlapped co-simulation) enter now;
    // the slip shows up as source queueing latency.
    while (!pending_.empty() && pending_.top()->inject_tick <= now) {
        const PacketPtr &pkt = pending_.top();
        fabric_->enqueue(pkt->src, pkt, now);
        ++in_fabric_;
        pending_.pop();
    }

    // Phase 1: allocation and traversal (pushes onto outgoing links).
    // A stalled router freezes mid-pipeline: it neither allocates nor
    // returns credits, so upstream backpressure builds into a genuine
    // deadlock the watchdog has to catch.
    fabric_->compute(*engine_, now, stalled_);

    // Phase 2: buffer writes and credit returns (pops incoming links).
    fabric_->commit(*engine_, now, stalled_);

    // Sequential: fire delivery callbacks in node order.
    std::size_t n = numNodes();
    for (std::size_t i = 0; i < n; ++i) {
        std::vector<PacketPtr> &done = fabric_->completed(i);
        for (const PacketPtr &pkt : done)
            applyDelivery(pkt);
        done.clear();
    }

    ++time_;
    ++cyclesRun;
}

void
CycleNetwork::advanceTo(Tick t)
{
    while (time_ < t) {
        // Fast-forward through provably idle stretches: nothing in the
        // fabric and no injection due before the horizon.
        if (in_fabric_ == 0) {
            Tick next = pending_.empty() ? t : pending_.top()->inject_tick;
            if (next > time_) {
                time_ = std::min(t, next);
                if (time_ >= t)
                    break;
                continue;
            }
        }
        stepCycle();
    }
}

void
CycleNetwork::save(ArchiveWriter &aw) const
{
    aw.beginSection("cycle_net");
    aw.putU64(time_);
    aw.putU64(injected_);
    aw.putU64(delivered_);
    aw.putU64(in_fabric_);
    for (char s : stalled_)
        aw.putU8(static_cast<std::uint8_t>(s));

    // Drain a copy of the injection heap in order (the heap does not
    // expose its container).
    auto pending = pending_;
    std::vector<PacketPtr> queued;
    queued.reserve(pending.size());
    while (!pending.empty()) {
        queued.push_back(pending.top());
        pending.pop();
    }
    aw.putU64(queued.size());
    for (const PacketPtr &pkt : queued)
        savePacket(aw, *pkt);

    fabric_->save(aw);
    aw.endSection();
}

void
CycleNetwork::restore(ArchiveReader &ar)
{
    ar.expectSection("cycle_net");
    time_ = ar.getU64();
    injected_ = ar.getU64();
    delivered_ = ar.getU64();
    in_fabric_ = ar.getU64();
    for (char &s : stalled_)
        s = static_cast<char>(ar.getU8());

    pending_ = {};
    std::uint64_t n_pending = ar.getU64();
    for (std::uint64_t i = 0; i < n_pending; ++i)
        pending_.push(restorePacket(ar));

    fabric_->restore(ar);
    ar.endSection();
}

} // namespace noc
} // namespace rasim
