#include "noc/deflection_network.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace rasim
{
namespace noc
{

DeflectionNetwork::DeflectionNetwork(Simulation &sim,
                                     const std::string &name,
                                     const NocParams &params,
                                     SimObject *parent)
    : SimObject(sim, name, parent),
      packetsInjected(this, "packets_injected",
                      "packets handed to the network"),
      packetsDelivered(this, "packets_delivered",
                       "packets fully received"),
      flitsDeflected(this, "flits_deflected",
                     "flits denied a productive port"),
      flitsEjected(this, "flits_ejected", "flits ejected at their dst"),
      injectionStalls(this, "injection_stalls",
                      "cycles a flit waited for a free slot"),
      totalLatency(this, "total_latency",
                   "inject-to-deliver latency (cycles)"),
      deflectionsPerFlit(this, "deflections_per_flit",
                         "deflections each flit suffered"),
      params_(params), engine_(&serial_engine_)
{
    if (params_.topology != "mesh" && params_.topology != "torus")
        fatal("deflection network needs a mesh or torus topology");
    topo_ = makeTopology(params_.topology, params_.columns,
                         params_.rows);
    stalled_.assign(topo_->numNodes(), 0);
    fabric_ = kernel::makeDeflectFabric(params_, *topo_);
    inform("network '", name, "': compute kernel ",
           fabric_->description());
}

DeflectionNetwork::~DeflectionNetwork() = default;

void
DeflectionNetwork::setEngine(StepEngine *engine)
{
    engine_ = engine ? engine : &serial_engine_;
}

std::size_t
DeflectionNetwork::numNodes() const
{
    return static_cast<std::size_t>(topo_->numNodes());
}

void
DeflectionNetwork::inject(const PacketPtr &pkt)
{
    if (pkt->src >= numNodes() || pkt->dst >= numNodes())
        fatal("packet ", pkt->toString(),
              " references nodes outside the deflection network");
    ++injected_;
    ++packetsInjected;
    pending_.push(pkt);
}

void
DeflectionNetwork::setDeliveryHandler(DeliveryHandler handler)
{
    handler_ = std::move(handler);
}

bool
DeflectionNetwork::idle() const
{
    return pending_.empty() && queued_flits_ == 0 &&
           in_fabric_flits_ == 0;
}

std::optional<noc::NetworkModel::Accounting>
DeflectionNetwork::accounting() const
{
    // Flits travel independently, so packet-level in-flight is kept
    // as the injected/delivered difference (flit-level residency is
    // covered by queued_flits_/in_fabric_flits_).
    Accounting acc;
    acc.injected = injected_;
    acc.delivered = delivered_;
    acc.in_flight = injected_ - delivered_;
    return acc;
}

bool
DeflectionNetwork::setNodeStalled(std::size_t node, bool stalled)
{
    if (node >= stalled_.size())
        fatal("deflection network: cannot stall node ", node, " of ",
              stalled_.size());
    stalled_[node] = stalled ? 1 : 0;
    return true;
}

void
DeflectionNetwork::reduceScratch(Cycle now)
{
    // Folding an untouched scratch slot is the identity, so iterating
    // the backend's (ascending) active-node list accumulates — and
    // float-rounds — exactly like the full 0..n-1 sweep.
    for (int i : fabric_->scratchNodes()) {
        kernel::NodeScratch &s = fabric_->scratch(i);
        in_fabric_flits_ += s.fabric_delta;
        queued_flits_ += s.queued_delta;
        flitsDeflected += static_cast<double>(s.deflected);
        injectionStalls += static_cast<double>(s.stalls);
        flitsEjected += static_cast<double>(s.eject_deflections.size());
        for (std::uint32_t d : s.eject_deflections)
            deflectionsPerFlit.sample(d);
        for (const PacketPtr &pkt : s.delivered) {
            ++delivered_;
            ++packetsDelivered;
            totalLatency.sample(static_cast<double>(pkt->latency()));
            if (handler_)
                handler_(pkt);
        }
        s.eject_deflections.clear();
        s.delivered.clear();
        s.deflected = 0;
        s.stalls = 0;
        s.fabric_delta = 0;
        s.queued_delta = 0;
    }
    (void)now;
}

void
DeflectionNetwork::stepCycle()
{
    Cycle now = time_;

    // Sequential: move due packets into the per-node injection queues,
    // flit by flit.
    while (!pending_.empty() && pending_.top()->inject_tick <= now) {
        PacketPtr pkt = pending_.top();
        pending_.pop();
        if (pkt->src == pkt->dst) {
            // Local delivery bypasses the bufferless fabric (no port
            // to traverse); mirror the VC network's 2-cycle NIC path.
            pkt->enter_tick = now;
            pkt->hops = 0;
            pkt->deliver_tick = now + 2;
            ++delivered_;
            ++packetsDelivered;
            totalLatency.sample(static_cast<double>(pkt->latency()));
            if (handler_)
                handler_(pkt);
            continue;
        }
        std::uint32_t flits = params_.flitsPerPacket(pkt->size_bytes);
        fabric_->enqueue(pkt->src, pkt, flits);
        queued_flits_ += flits;
    }

    // Phase 1: eject/inject/route — node i writes only its own
    // arrival set, staging slots, reassembly map and scratch.
    fabric_->route(*engine_, now, stalled_);

    // Phase 2: gather — node j rebuilds its arrival set from its
    // upstream staging slots (sole reader of each slot).
    fabric_->gather(*engine_);

    // Sequential: fold per-node side effects in fixed index order.
    reduceScratch(now);

    ++time_;
}

void
DeflectionNetwork::advanceTo(Tick t)
{
    while (time_ < t) {
        if (in_fabric_flits_ == 0 && queued_flits_ == 0) {
            Tick next =
                pending_.empty() ? t : pending_.top()->inject_tick;
            if (next > time_) {
                time_ = std::min(t, next);
                continue;
            }
        }
        stepCycle();
    }
}

void
DeflectionNetwork::save(ArchiveWriter &aw) const
{
    aw.beginSection("deflection_net");
    aw.putU64(time_);
    aw.putU64(in_fabric_flits_);
    aw.putU64(queued_flits_);
    aw.putU64(delivered_);
    aw.putU64(injected_);
    for (char s : stalled_)
        aw.putU8(static_cast<std::uint8_t>(s));

    auto pending = pending_;
    std::vector<PacketPtr> queued;
    queued.reserve(pending.size());
    while (!pending.empty()) {
        queued.push_back(pending.top());
        pending.pop();
    }
    aw.putU64(queued.size());
    for (const PacketPtr &pkt : queued)
        savePacket(aw, *pkt);

    fabric_->save(aw);
    aw.endSection();
}

void
DeflectionNetwork::restore(ArchiveReader &ar)
{
    ar.expectSection("deflection_net");
    time_ = ar.getU64();
    in_fabric_flits_ = ar.getU64();
    queued_flits_ = ar.getU64();
    delivered_ = ar.getU64();
    injected_ = ar.getU64();
    for (char &s : stalled_)
        s = static_cast<char>(ar.getU8());

    pending_ = {};
    std::uint64_t n_pending = ar.getU64();
    for (std::uint64_t i = 0; i < n_pending; ++i)
        pending_.push(restorePacket(ar));

    fabric_->restore(ar);
    ar.endSection();
}

} // namespace noc
} // namespace rasim
