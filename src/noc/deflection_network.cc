#include "noc/deflection_network.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace rasim
{
namespace noc
{

DeflectionNetwork::DeflectionNetwork(Simulation &sim,
                                     const std::string &name,
                                     const NocParams &params,
                                     SimObject *parent)
    : SimObject(sim, name, parent),
      packetsInjected(this, "packets_injected",
                      "packets handed to the network"),
      packetsDelivered(this, "packets_delivered",
                       "packets fully received"),
      flitsDeflected(this, "flits_deflected",
                     "flits denied a productive port"),
      flitsEjected(this, "flits_ejected", "flits ejected at their dst"),
      injectionStalls(this, "injection_stalls",
                      "cycles a flit waited for a free slot"),
      totalLatency(this, "total_latency",
                   "inject-to-deliver latency (cycles)"),
      deflectionsPerFlit(this, "deflections_per_flit",
                         "deflections each flit suffered"),
      params_(params), engine_(&serial_engine_)
{
    if (params_.topology != "mesh" && params_.topology != "torus")
        fatal("deflection network needs a mesh or torus topology");
    topo_ = makeTopology(params_.topology, params_.columns,
                         params_.rows);
    int n = topo_->numNodes();
    arriving_.resize(n);
    out_.resize(n);
    sources_.resize(n);
    inject_queues_.resize(n);
    stalled_.assign(n, 0);
    rx_.resize(n);
    scratch_.resize(n);
    for (int i = 0; i < n; ++i)
        out_[i].resize(topo_->numPorts());
    // Gather order: upstream node index ascending (then port), the
    // same order the pre-refactor per-node loop produced arrivals in.
    for (int i = 0; i < n; ++i) {
        for (int p = 1; p < topo_->numPorts(); ++p) {
            int j = topo_->neighbor(i, p);
            if (j >= 0)
                sources_[j].emplace_back(i, p);
        }
    }
}

DeflectionNetwork::~DeflectionNetwork() = default;

void
DeflectionNetwork::setEngine(StepEngine *engine)
{
    engine_ = engine ? engine : &serial_engine_;
}

std::size_t
DeflectionNetwork::numNodes() const
{
    return static_cast<std::size_t>(topo_->numNodes());
}

void
DeflectionNetwork::inject(const PacketPtr &pkt)
{
    if (pkt->src >= numNodes() || pkt->dst >= numNodes())
        fatal("packet ", pkt->toString(),
              " references nodes outside the deflection network");
    ++injected_;
    ++packetsInjected;
    pending_.push(pkt);
}

void
DeflectionNetwork::setDeliveryHandler(DeliveryHandler handler)
{
    handler_ = std::move(handler);
}

bool
DeflectionNetwork::idle() const
{
    return pending_.empty() && queued_flits_ == 0 &&
           in_fabric_flits_ == 0;
}

std::optional<noc::NetworkModel::Accounting>
DeflectionNetwork::accounting() const
{
    // Flits travel independently, so packet-level in-flight is kept
    // as the injected/delivered difference (flit-level residency is
    // covered by queued_flits_/in_fabric_flits_).
    Accounting acc;
    acc.injected = injected_;
    acc.delivered = delivered_;
    acc.in_flight = injected_ - delivered_;
    return acc;
}

bool
DeflectionNetwork::setNodeStalled(std::size_t node, bool stalled)
{
    if (node >= stalled_.size())
        fatal("deflection network: cannot stall node ", node, " of ",
              stalled_.size());
    stalled_[node] = stalled ? 1 : 0;
    return true;
}

void
DeflectionNetwork::routeNode(int i, Cycle now)
{
    std::vector<DFlit> &cand = arriving_[i];
    NodeScratch &s = scratch_[i];

    // Ejection: one flit per cycle, oldest first. Reassembly state is
    // per destination node, so only this partition touches rx_[i].
    // A stalled node's ejection port is wedged: its flits keep routing
    // (bufferless fabrics cannot hold them) but never leave — a
    // livelock only the progress watchdog can detect.
    if (!cand.empty() && !stalled_[i]) {
        int eject = -1;
        for (std::size_t k = 0; k < cand.size(); ++k) {
            if (cand[k].pkt->dst != static_cast<NodeId>(i))
                continue;
            if (eject < 0 || cand[k].birth < cand[eject].birth ||
                (cand[k].birth == cand[eject].birth &&
                 cand[k].pkt->id < cand[eject].pkt->id)) {
                eject = static_cast<int>(k);
            }
        }
        if (eject >= 0) {
            DFlit f = std::move(cand[eject]);
            cand.erase(cand.begin() + eject);
            --s.fabric_delta;
            s.eject_deflections.push_back(f.deflections);
            PacketPtr pkt = f.pkt;
            // Hop accounting happens at ejection (not en route) so a
            // packet's flits never race on the shared Packet: every
            // flit of a packet ejects at the same node's partition.
            pkt->hops = std::max(pkt->hops, f.hops);
            std::uint32_t want = params_.flitsPerPacket(pkt->size_bytes);
            auto &rx = rx_[i];
            if (++rx[pkt->id] == want) {
                rx.erase(pkt->id);
                pkt->deliver_tick = now + 1;
                s.delivered.push_back(pkt);
            }
        }
    }

    // Count usable (connected) output ports.
    std::vector<int> free_ports;
    for (int p = 1; p < topo_->numPorts(); ++p)
        if (topo_->neighbor(i, p) >= 0)
            free_ports.push_back(p);

    // Injection: one flit per cycle when a slot remains.
    if (!inject_queues_[i].empty()) {
        if (cand.size() < free_ports.size()) {
            DFlit f = std::move(inject_queues_[i].front());
            inject_queues_[i].pop_front();
            --s.queued_delta;
            ++s.fabric_delta;
            f.birth = now;
            if (f.seq == 0)
                f.pkt->enter_tick = now;
            cand.push_back(std::move(f));
        } else {
            ++s.stalls;
        }
    }

    if (cand.size() > free_ports.size())
        panic("deflection: more flits than ports at node ", i);

    // Oldest-first port assignment.
    std::sort(cand.begin(), cand.end(),
              [](const DFlit &a, const DFlit &b) {
                  if (a.birth != b.birth)
                      return a.birth < b.birth;
                  if (a.pkt->id != b.pkt->id)
                      return a.pkt->id < b.pkt->id;
                  return a.seq < b.seq;
              });

    for (DFlit &f : cand) {
        auto [x, y] = topo_->coords(static_cast<NodeId>(i));
        auto [tx, ty] = topo_->coords(f.pkt->dst);
        // Productive direction preference: X first, then Y,
        // honouring torus wrap via the shorter way.
        std::vector<int> prefs;
        int dx = tx - x, dy = ty - y;
        if (topo_->isWrapLink(topo_->nodeAt(topo_->columns() - 1, y),
                              port_east)) {
            if (dx > topo_->columns() / 2)
                dx -= topo_->columns();
            else if (dx < -(topo_->columns() / 2))
                dx += topo_->columns();
            if (dy > topo_->rows() / 2)
                dy -= topo_->rows();
            else if (dy < -(topo_->rows() / 2))
                dy += topo_->rows();
        }
        if (dx > 0)
            prefs.push_back(port_east);
        else if (dx < 0)
            prefs.push_back(port_west);
        if (dy > 0)
            prefs.push_back(port_south);
        else if (dy < 0)
            prefs.push_back(port_north);

        int chosen = -1;
        for (int p : prefs) {
            auto it =
                std::find(free_ports.begin(), free_ports.end(), p);
            if (it != free_ports.end()) {
                chosen = p;
                free_ports.erase(it);
                break;
            }
        }
        if (chosen < 0) {
            // Deflected: take any remaining port.
            if (free_ports.empty())
                panic("deflection: no port left for a flit");
            chosen = free_ports.front();
            free_ports.erase(free_ports.begin());
            ++f.deflections;
            ++s.deflected;
        }
        ++f.hops;
        out_[i][chosen] = std::move(f);
    }
    cand.clear();
}

void
DeflectionNetwork::gatherNode(int j)
{
    std::vector<DFlit> &arr = arriving_[j];
    for (const auto &[i, p] : sources_[j]) {
        DFlit &slot = out_[i][p];
        if (!slot.pkt)
            continue;
        arr.push_back(std::move(slot));
        slot.pkt.reset();
    }
}

void
DeflectionNetwork::reduceScratch(Cycle now)
{
    int n = topo_->numNodes();
    for (int i = 0; i < n; ++i) {
        NodeScratch &s = scratch_[i];
        in_fabric_flits_ += s.fabric_delta;
        queued_flits_ += s.queued_delta;
        flitsDeflected += static_cast<double>(s.deflected);
        injectionStalls += static_cast<double>(s.stalls);
        flitsEjected += static_cast<double>(s.eject_deflections.size());
        for (std::uint32_t d : s.eject_deflections)
            deflectionsPerFlit.sample(d);
        for (const PacketPtr &pkt : s.delivered) {
            ++delivered_;
            ++packetsDelivered;
            totalLatency.sample(static_cast<double>(pkt->latency()));
            if (handler_)
                handler_(pkt);
        }
        s.eject_deflections.clear();
        s.delivered.clear();
        s.deflected = 0;
        s.stalls = 0;
        s.fabric_delta = 0;
        s.queued_delta = 0;
    }
    (void)now;
}

void
DeflectionNetwork::stepCycle()
{
    Cycle now = time_;
    int n = topo_->numNodes();

    // Sequential: move due packets into the per-node injection queues,
    // flit by flit.
    while (!pending_.empty() && pending_.top()->inject_tick <= now) {
        PacketPtr pkt = pending_.top();
        pending_.pop();
        if (pkt->src == pkt->dst) {
            // Local delivery bypasses the bufferless fabric (no port
            // to traverse); mirror the VC network's 2-cycle NIC path.
            pkt->enter_tick = now;
            pkt->hops = 0;
            pkt->deliver_tick = now + 2;
            ++delivered_;
            ++packetsDelivered;
            totalLatency.sample(static_cast<double>(pkt->latency()));
            if (handler_)
                handler_(pkt);
            continue;
        }
        std::uint32_t flits = params_.flitsPerPacket(pkt->size_bytes);
        for (std::uint32_t s = 0; s < flits; ++s) {
            DFlit f;
            f.pkt = pkt;
            f.seq = s;
            inject_queues_[pkt->src].push_back(std::move(f));
            ++queued_flits_;
        }
    }

    // Phase 1: eject/inject/route — node i writes only arriving_[i],
    // out_[i], rx_[i], inject_queues_[i] and scratch_[i].
    engine_->forEach(static_cast<std::size_t>(n),
                     [this, now](std::size_t i) {
                         routeNode(static_cast<int>(i), now);
                     });

    // Phase 2: gather — node j rebuilds arriving_[j] from its
    // upstream staging slots (sole reader of each slot).
    engine_->forEach(static_cast<std::size_t>(n),
                     [this](std::size_t j) {
                         gatherNode(static_cast<int>(j));
                     });

    // Sequential: fold per-node side effects in fixed index order.
    reduceScratch(now);

    ++time_;
}

void
DeflectionNetwork::advanceTo(Tick t)
{
    while (time_ < t) {
        if (in_fabric_flits_ == 0 && queued_flits_ == 0) {
            Tick next =
                pending_.empty() ? t : pending_.top()->inject_tick;
            if (next > time_) {
                time_ = std::min(t, next);
                continue;
            }
        }
        stepCycle();
    }
}

namespace
{

void
saveDFlitFields(ArchiveWriter &aw, std::uint32_t seq,
                std::uint32_t deflections, std::uint32_t hops,
                Tick birth, PacketId id)
{
    aw.putU64(id);
    aw.putU32(seq);
    aw.putU32(deflections);
    aw.putU32(hops);
    aw.putU64(birth);
}

} // namespace

void
DeflectionNetwork::save(ArchiveWriter &aw) const
{
    aw.beginSection("deflection_net");
    aw.putU64(time_);
    aw.putU64(in_fabric_flits_);
    aw.putU64(queued_flits_);
    aw.putU64(delivered_);
    aw.putU64(injected_);
    for (char s : stalled_)
        aw.putU8(static_cast<std::uint8_t>(s));

    // out_ staging is drained every cycle; a populated slot would mean
    // the checkpoint was taken mid-cycle.
    for (const auto &slots : out_)
        for (const DFlit &df : slots)
            if (df.pkt)
                panic("deflection net: checkpoint mid-cycle "
                      "(staging slot occupied)");

    auto pending = pending_;
    std::vector<PacketPtr> queued;
    queued.reserve(pending.size());
    while (!pending.empty()) {
        queued.push_back(pending.top());
        pending.pop();
    }
    aw.putU64(queued.size());
    for (const PacketPtr &pkt : queued)
        savePacket(aw, *pkt);

    PacketTable table;
    for (const auto &flits : arriving_)
        for (const DFlit &df : flits)
            collectPacket(table, df.pkt);
    for (const auto &q : inject_queues_)
        for (const DFlit &df : q)
            collectPacket(table, df.pkt);
    savePacketTable(aw, table);

    for (const auto &flits : arriving_) {
        aw.putU64(flits.size());
        for (const DFlit &df : flits)
            saveDFlitFields(aw, df.seq, df.deflections, df.hops,
                            df.birth, df.pkt->id);
    }
    for (const auto &q : inject_queues_) {
        aw.putU64(q.size());
        for (const DFlit &df : q)
            saveDFlitFields(aw, df.seq, df.deflections, df.hops,
                            df.birth, df.pkt->id);
    }
    // FlatMap iterates in ascending id order — same bytes as the
    // sort-before-save loop this replaces.
    for (const auto &rx : rx_) {
        aw.putU64(rx.size());
        for (const auto &[id, count] : rx) {
            aw.putU64(id);
            aw.putU32(count);
        }
    }
    aw.endSection();
}

void
DeflectionNetwork::restore(ArchiveReader &ar)
{
    ar.expectSection("deflection_net");
    time_ = ar.getU64();
    in_fabric_flits_ = ar.getU64();
    queued_flits_ = ar.getU64();
    delivered_ = ar.getU64();
    injected_ = ar.getU64();
    for (char &s : stalled_)
        s = static_cast<char>(ar.getU8());

    pending_ = {};
    std::uint64_t n_pending = ar.getU64();
    for (std::uint64_t i = 0; i < n_pending; ++i)
        pending_.push(restorePacket(ar));

    PacketTable table = restorePacketTable(ar);

    auto read_dflit = [&](std::vector<DFlit> *vec,
                          std::deque<DFlit> *dq) {
        DFlit df;
        PacketId id = ar.getU64();
        df.seq = ar.getU32();
        df.deflections = ar.getU32();
        df.hops = ar.getU32();
        df.birth = ar.getU64();
        df.pkt = table.at(id);
        if (vec)
            vec->push_back(std::move(df));
        else
            dq->push_back(std::move(df));
    };

    for (auto &flits : arriving_) {
        flits.clear();
        std::uint64_t n = ar.getU64();
        for (std::uint64_t i = 0; i < n; ++i)
            read_dflit(&flits, nullptr);
    }
    for (auto &q : inject_queues_) {
        q.clear();
        std::uint64_t n = ar.getU64();
        for (std::uint64_t i = 0; i < n; ++i)
            read_dflit(nullptr, &q);
    }
    for (auto &rx : rx_) {
        rx.clear();
        std::uint64_t n = ar.getU64();
        for (std::uint64_t i = 0; i < n; ++i) {
            PacketId id = ar.getU64();
            rx[id] = ar.getU32();
        }
    }
    ar.endSection();
}

} // namespace noc
} // namespace rasim
