/**
 * @file
 * Activity-based NoC energy model (ORION-style abstraction): dynamic
 * energy from per-event costs (buffer write, crossbar traversal, link
 * traversal) plus per-router static leakage over the simulated
 * interval. Event counts come straight from the cycle network's
 * activity counters, so the model prices exactly what was simulated.
 */

#ifndef RASIM_NOC_POWER_HH
#define RASIM_NOC_POWER_HH

#include <cstdint>

namespace rasim
{

class Config;

namespace noc
{

class CycleNetwork;

/** Per-event energies (picojoules) and leakage (milliwatts). */
struct PowerParams
{
    double buffer_write_pj = 1.2;
    double switch_traversal_pj = 0.8;
    double link_traversal_pj = 1.8;
    double static_mw_per_router = 0.5;
    /** Wall-clock length of one network cycle, for leakage. */
    double ns_per_cycle = 1.0;

    static PowerParams fromConfig(const Config &cfg);
};

/** Aggregated switching activity of a simulated interval. */
struct NocActivity
{
    std::uint64_t buffer_writes = 0;
    std::uint64_t switch_traversals = 0;
    std::uint64_t link_traversals = 0;
    std::uint64_t cycles = 0;
    int routers = 0;
};

/** Collect the activity counters of a cycle network. */
NocActivity activityOf(CycleNetwork &net);

/** Energy breakdown of one simulated interval. */
struct EnergyEstimate
{
    double buffer_pj = 0.0;
    double switch_pj = 0.0;
    double link_pj = 0.0;
    double static_pj = 0.0;

    double
    totalPj() const
    {
        return buffer_pj + switch_pj + link_pj + static_pj;
    }

    /** Average power over the interval in milliwatts. */
    double averageMw(double interval_ns) const;
};

class NocPowerModel
{
  public:
    explicit NocPowerModel(PowerParams params = PowerParams());

    EnergyEstimate estimate(const NocActivity &activity) const;

    const PowerParams &params() const { return params_; }

  private:
    PowerParams params_;
};

} // namespace noc
} // namespace rasim

#endif // RASIM_NOC_POWER_HH
