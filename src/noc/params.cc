#include "noc/params.hh"

#include "sim/config.hh"
#include "sim/logging.hh"

namespace rasim
{
namespace noc
{

NocParams
NocParams::fromConfig(const Config &cfg)
{
    NocParams p;
    p.columns = static_cast<int>(cfg.getUInt("noc.columns", 8));
    p.rows = static_cast<int>(cfg.getUInt("noc.rows", 8));
    p.topology = cfg.getString("noc.topology", "mesh");
    p.routing = cfg.getString("noc.routing", "xy");
    p.vcs_per_vnet = static_cast<int>(cfg.getUInt("noc.vcs_per_vnet", 2));
    p.vc_classes = static_cast<int>(
        cfg.getUInt("noc.vc_classes", p.topology == "torus" ? 2 : 1));
    p.buffer_depth = static_cast<int>(cfg.getUInt("noc.buffer_depth", 4));
    p.link_latency = static_cast<int>(cfg.getUInt("noc.link_latency", 1));
    p.pipeline_stages =
        static_cast<int>(cfg.getUInt("noc.pipeline_stages", 2));
    p.flit_bytes =
        static_cast<std::uint32_t>(cfg.getUInt("noc.flit_bytes", 16));
    p.kernel = cfg.getString("network.kernel", "object");
    p.simd = cfg.getString("kernel.simd", "auto");
    p.validate();
    return p;
}

void
NocParams::validate() const
{
    if (columns < 1 || rows < 1)
        fatal("noc: dimensions must be positive (", columns, "x", rows,
              ")");
    if (vcs_per_vnet < 1)
        fatal("noc: vcs_per_vnet must be >= 1");
    if (vc_classes < 1 || vc_classes > 2)
        fatal("noc: vc_classes must be 1 or 2");
    if (topology == "torus" && vc_classes != 2)
        fatal("noc: torus topologies need vc_classes=2 (datelines)");
    if (buffer_depth < 1)
        fatal("noc: buffer_depth must be >= 1");
    if (link_latency < 1)
        fatal("noc: link_latency must be >= 1");
    if (pipeline_stages < 1)
        fatal("noc: pipeline_stages must be >= 1");
    if (flit_bytes == 0)
        fatal("noc: flit_bytes must be > 0");
    if (topology != "mesh" && topology != "torus")
        fatal("noc: unknown topology '", topology, "'");
    if (kernel != "object" && kernel != "soa")
        fatal("noc: unknown network.kernel '", kernel,
              "' (expected object or soa)");
    if (simd != "auto" && simd != "scalar" && simd != "avx2")
        fatal("noc: unknown kernel.simd '", simd,
              "' (expected auto, scalar or avx2)");
}

} // namespace noc
} // namespace rasim
