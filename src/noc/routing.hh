/**
 * @file
 * Routing algorithms. RC returns the set of productive output ports
 * permitted by the algorithm; the router then selects adaptively among
 * them by local congestion.
 */

#ifndef RASIM_NOC_ROUTING_HH
#define RASIM_NOC_ROUTING_HH

#include <memory>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace rasim
{
namespace noc
{

class Topology;

/**
 * Strategy computing the permitted output ports for a packet parked at
 * a router. Algorithms must be deadlock-free on the topologies they
 * accept (XY/YX by dimension order; west-first by turn model; torus
 * additionally relies on dateline VC classes).
 */
class RoutingAlgorithm
{
  public:
    virtual ~RoutingAlgorithm() = default;

    /**
     * Append the permitted output ports at @p node for destination
     * @p dst to @p out. port_local is returned iff node == dst.
     * Candidates are ordered by algorithm preference.
     */
    virtual void route(const Topology &topo, int node, NodeId dst,
                       std::vector<int> &out) const = 0;

    virtual std::string name() const = 0;
};

/** Deterministic dimension-order routing, X first. */
class XYRouting : public RoutingAlgorithm
{
  public:
    void route(const Topology &topo, int node, NodeId dst,
               std::vector<int> &out) const override;
    std::string name() const override { return "xy"; }
};

/** Deterministic dimension-order routing, Y first. */
class YXRouting : public RoutingAlgorithm
{
  public:
    void route(const Topology &topo, int node, NodeId dst,
               std::vector<int> &out) const override;
    std::string name() const override { return "yx"; }
};

/**
 * West-first turn model: a packet makes all westward progress first;
 * afterwards it may route adaptively among the remaining productive
 * directions (north/south/east). Deadlock-free on meshes.
 */
class WestFirstRouting : public RoutingAlgorithm
{
  public:
    void route(const Topology &topo, int node, NodeId dst,
               std::vector<int> &out) const override;
    std::string name() const override { return "westfirst"; }
};

/** Factory from a name: "xy", "yx" or "westfirst". */
std::unique_ptr<RoutingAlgorithm> makeRouting(const std::string &kind);

} // namespace noc
} // namespace rasim

#endif // RASIM_NOC_ROUTING_HH
