#include "noc/routing.hh"

#include "noc/topology.hh"
#include "sim/logging.hh"

namespace rasim
{
namespace noc
{

namespace
{

/**
 * Signed per-dimension progress on a (possibly wrapping) topology.
 * Positive dx means "go east", positive dy means "go south"; tori pick
 * the shorter way around.
 */
void
delta(const Topology &topo, int node, NodeId dst, int &dx, int &dy)
{
    auto [x, y] = topo.coords(static_cast<NodeId>(node));
    auto [tx, ty] = topo.coords(dst);
    dx = tx - x;
    dy = ty - y;
    // On tori, take the shorter way around. Wrap links exist iff the
    // topology reports one on the rightmost/bottom edge.
    int cols = topo.columns();
    int rows = topo.rows();
    bool wraps = topo.isWrapLink(topo.nodeAt(cols - 1, y), port_east) ||
                 topo.isWrapLink(topo.nodeAt(x, rows - 1), port_south);
    if (wraps) {
        if (dx > cols / 2)
            dx -= cols;
        else if (dx < -(cols / 2))
            dx += cols;
        if (dy > rows / 2)
            dy -= rows;
        else if (dy < -(rows / 2))
            dy += rows;
    }
}

} // namespace

void
XYRouting::route(const Topology &topo, int node, NodeId dst,
                 std::vector<int> &out) const
{
    if (static_cast<NodeId>(node) == dst) {
        out.push_back(port_local);
        return;
    }
    int dx, dy;
    delta(topo, node, dst, dx, dy);
    if (dx > 0)
        out.push_back(port_east);
    else if (dx < 0)
        out.push_back(port_west);
    else if (dy > 0)
        out.push_back(port_south);
    else
        out.push_back(port_north);
}

void
YXRouting::route(const Topology &topo, int node, NodeId dst,
                 std::vector<int> &out) const
{
    if (static_cast<NodeId>(node) == dst) {
        out.push_back(port_local);
        return;
    }
    int dx, dy;
    delta(topo, node, dst, dx, dy);
    if (dy > 0)
        out.push_back(port_south);
    else if (dy < 0)
        out.push_back(port_north);
    else if (dx > 0)
        out.push_back(port_east);
    else
        out.push_back(port_west);
}

void
WestFirstRouting::route(const Topology &topo, int node, NodeId dst,
                        std::vector<int> &out) const
{
    if (static_cast<NodeId>(node) == dst) {
        out.push_back(port_local);
        return;
    }
    int dx, dy;
    delta(topo, node, dst, dx, dy);
    if (dx < 0) {
        // All westward hops must come first (the turn model forbids
        // turning into west later).
        out.push_back(port_west);
        return;
    }
    // Adaptive among the remaining productive directions.
    if (dx > 0)
        out.push_back(port_east);
    if (dy > 0)
        out.push_back(port_south);
    else if (dy < 0)
        out.push_back(port_north);
}

std::unique_ptr<RoutingAlgorithm>
makeRouting(const std::string &kind)
{
    if (kind == "xy")
        return std::make_unique<XYRouting>();
    if (kind == "yx")
        return std::make_unique<YXRouting>();
    if (kind == "westfirst")
        return std::make_unique<WestFirstRouting>();
    fatal("unknown routing algorithm '", kind,
          "' (want xy, yx or westfirst)");
}

} // namespace noc
} // namespace rasim
