/**
 * @file
 * The abstraction boundary of reciprocal abstraction: every network
 * implementation — analytical, cycle-level, coprocessor-accelerated —
 * exposes this interface, so the full-system side never knows which
 * fidelity it is coupled to.
 */

#ifndef RASIM_NOC_NETWORK_MODEL_HH
#define RASIM_NOC_NETWORK_MODEL_HH

#include <cstddef>
#include <functional>

#include "noc/packet.hh"
#include "sim/types.hh"

namespace rasim
{

class StepEngine;

namespace noc
{

class NetworkModel
{
  public:
    /**
     * Invoked once per fully received packet, during advanceTo(), with
     * timing fields (enter/deliver/hops) filled in. deliver_tick is
     * always <= the advanceTo() horizon.
     */
    using DeliveryHandler = std::function<void(const PacketPtr &)>;

    virtual ~NetworkModel() = default;

    /**
     * Hand a packet to the network. pkt->inject_tick may be at or
     * after curTime(); earlier ticks are accepted (quantum-overlapped
     * co-simulation delivers late on purpose) and treated as "now",
     * with the slip accounted as source queueing.
     */
    virtual void inject(const PacketPtr &pkt) = 0;

    /** Simulate up to (and including deliveries at) tick @p t. */
    virtual void advanceTo(Tick t) = 0;

    virtual void setDeliveryHandler(DeliveryHandler handler) = 0;

    /**
     * Install the execution engine running this model's data-parallel
     * phases (nullptr restores serial execution). The model does not
     * own the engine; it must outlive the model's last advanceTo().
     * Models without parallel phases (analytical networks) ignore it —
     * the co-simulation bridge can therefore install an engine on any
     * backend fidelity.
     */
    virtual void setEngine(StepEngine *engine) { (void)engine; }

    /** Current internal time of the network. */
    virtual Tick curTime() const = 0;

    /** True when no packet is queued, in flight or unreassembled. */
    virtual bool idle() const = 0;

    /** Number of endpoints (nodes) the network connects. */
    virtual std::size_t numNodes() const = 0;
};

} // namespace noc
} // namespace rasim

#endif // RASIM_NOC_NETWORK_MODEL_HH
