/**
 * @file
 * The abstraction boundary of reciprocal abstraction: every network
 * implementation — analytical, cycle-level, coprocessor-accelerated —
 * exposes this interface, so the full-system side never knows which
 * fidelity it is coupled to.
 */

#ifndef RASIM_NOC_NETWORK_MODEL_HH
#define RASIM_NOC_NETWORK_MODEL_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>

#include "noc/packet.hh"
#include "sim/types.hh"

namespace rasim
{

class StepEngine;

namespace noc
{

class NetworkModel
{
  public:
    /**
     * Invoked once per fully received packet, during advanceTo(), with
     * timing fields (enter/deliver/hops) filled in. deliver_tick is
     * always <= the advanceTo() horizon.
     */
    using DeliveryHandler = std::function<void(const PacketPtr &)>;

    virtual ~NetworkModel() = default;

    /**
     * Hand a packet to the network. pkt->inject_tick may be at or
     * after curTime(); earlier ticks are accepted (quantum-overlapped
     * co-simulation delivers late on purpose) and treated as "now",
     * with the slip accounted as source queueing.
     */
    virtual void inject(const PacketPtr &pkt) = 0;

    /** Simulate up to (and including deliveries at) tick @p t. */
    virtual void advanceTo(Tick t) = 0;

    virtual void setDeliveryHandler(DeliveryHandler handler) = 0;

    /**
     * Install the execution engine running this model's data-parallel
     * phases (nullptr restores serial execution). The model does not
     * own the engine; it must outlive the model's last advanceTo().
     * Models without parallel phases (analytical networks) ignore it —
     * the co-simulation bridge can therefore install an engine on any
     * backend fidelity.
     */
    virtual void setEngine(StepEngine *engine) { (void)engine; }

    /** Current internal time of the network. */
    virtual Tick curTime() const = 0;

    /** True when no packet is queued, in flight or unreassembled. */
    virtual bool idle() const = 0;

    /** Number of endpoints (nodes) the network connects. */
    virtual std::size_t numNodes() const = 0;

    /**
     * Packet bookkeeping for machine-checked conservation: a healthy
     * model satisfies injected == delivered + in_flight at any point
     * where advanceTo() is not running. A model that loses packets
     * (or a fault injector that drops them) breaks the identity —
     * exactly what the health monitor's conservation guard checks.
     */
    struct Accounting
    {
        /** Packets accepted through inject(). */
        std::uint64_t injected = 0;
        /** Packets reported through the delivery handler. */
        std::uint64_t delivered = 0;
        /** Packets accepted but not yet delivered, derived from the
         *  model's real queues/fabric state where possible. */
        std::uint64_t in_flight = 0;
    };

    /**
     * Report packet accounting, or nullopt when the model cannot be
     * audited (conservation checks are then skipped).
     */
    virtual std::optional<Accounting> accounting() const
    {
        return std::nullopt;
    }

    /**
     * Debug/fault hook: wedge (or release) node @p node. Semantics are
     * model-specific — a stalled cycle-network router stops its
     * pipeline (credits freeze, upstream backpressure builds into a
     * deadlock); a stalled deflection node stops ejecting (its flits
     * circulate forever, a livelock). Returns false when unsupported.
     */
    virtual bool
    setNodeStalled(std::size_t node, bool stalled)
    {
        (void)node;
        (void)stalled;
        return false;
    }

    /**
     * Cooperative cancellation: ask an in-progress advanceTo() (possibly
     * running on another thread) to return as soon as it is safe —
     * used by the health monitor's wall-clock watchdog to reclaim a
     * stuck worker. Models advance cycle-at-a-time and so return
     * naturally; only models that can block mid-quantum need to honour
     * it. The request is sticky until the next advanceTo() call.
     */
    virtual void requestAbort() {}
};

} // namespace noc
} // namespace rasim

#endif // RASIM_NOC_NETWORK_MODEL_HH
