/**
 * @file
 * Execution engines for the per-cycle network update. The cycle-level
 * network expresses each phase as a data-parallel loop over node
 * indices; an engine decides where that loop runs (host CPU, worker
 * pool standing in for the GPU coprocessor, ...).
 */

#ifndef RASIM_NOC_STEP_ENGINE_HH
#define RASIM_NOC_STEP_ENGINE_HH

#include <cstddef>
#include <functional>

namespace rasim
{
namespace noc
{

class StepEngine
{
  public:
    virtual ~StepEngine() = default;

    /**
     * Apply @p fn to every index in [0, n). Implementations may run
     * iterations concurrently but must complete them all before
     * returning. fn(i) only touches partition-i state (the network's
     * phase discipline guarantees this is race-free).
     */
    virtual void forEach(std::size_t n,
                         const std::function<void(std::size_t)> &fn) = 0;

    /** Human-readable engine name for logs and reports. */
    virtual const char *name() const = 0;
};

/** Plain sequential execution on the calling thread. */
class SerialEngine : public StepEngine
{
  public:
    void
    forEach(std::size_t n,
            const std::function<void(std::size_t)> &fn) override
    {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
    }

    const char *name() const override { return "serial"; }
};

} // namespace noc
} // namespace rasim

#endif // RASIM_NOC_STEP_ENGINE_HH
