/**
 * @file
 * Network topologies. A topology maps (node, output port) to the
 * neighbouring node and tells routing algorithms about coordinates
 * and wrap-around links.
 */

#ifndef RASIM_NOC_TOPOLOGY_HH
#define RASIM_NOC_TOPOLOGY_HH

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "sim/types.hh"

namespace rasim
{
namespace noc
{

/** Router port indices for 2D topologies. */
enum Port : int
{
    port_local = 0,
    port_north = 1,
    port_east = 2,
    port_south = 3,
    port_west = 4,
    num_2d_ports = 5,
};

/** Render a port index for logs. */
const char *portName(int port);

/**
 * Abstract topology: a regular directed graph over router nodes, with
 * one bidirectional channel per (node, port).
 */
class Topology
{
  public:
    virtual ~Topology() = default;

    virtual int numNodes() const = 0;

    /** Ports per router, including the local (NIC) port 0. */
    virtual int numPorts() const = 0;

    /**
     * Node reached by leaving @p node through @p port, or -1 when the
     * port is unconnected (mesh edge or local port).
     */
    virtual int neighbor(int node, int port) const = 0;

    /** Port on the neighbour that receives traffic sent via @p port. */
    virtual int inputPortAt(int node, int port) const = 0;

    /** Minimal hop distance between two nodes. */
    virtual int minHops(NodeId a, NodeId b) const = 0;

    /**
     * True when the hop (node, port) traverses a wrap-around link;
     * used for dateline VC-class switching on tori.
     */
    virtual bool isWrapLink(int node, int port) const { (void)node;
        (void)port; return false; }

    /** (x, y) coordinates of a node; x is the column. */
    virtual std::pair<int, int> coords(NodeId node) const = 0;

    /** Node at coordinates (x, y). */
    virtual NodeId nodeAt(int x, int y) const = 0;

    virtual int columns() const = 0;
    virtual int rows() const = 0;

    virtual std::string name() const = 0;
};

/** Open 2D mesh of columns x rows routers. */
class Mesh2D : public Topology
{
  public:
    Mesh2D(int columns, int rows);

    int numNodes() const override { return cols_ * rows_; }
    int numPorts() const override { return num_2d_ports; }
    int neighbor(int node, int port) const override;
    int inputPortAt(int node, int port) const override;
    int minHops(NodeId a, NodeId b) const override;
    std::pair<int, int> coords(NodeId node) const override;
    NodeId nodeAt(int x, int y) const override;
    int columns() const override { return cols_; }
    int rows() const override { return rows_; }
    std::string name() const override;

  protected:
    int cols_;
    int rows_;
};

/** 2D torus: a mesh with wrap-around links in both dimensions. */
class Torus2D : public Mesh2D
{
  public:
    Torus2D(int columns, int rows);

    int neighbor(int node, int port) const override;
    int minHops(NodeId a, NodeId b) const override;
    bool isWrapLink(int node, int port) const override;
    std::string name() const override;
};

/** Factory from a name: "mesh" or "torus". */
std::unique_ptr<Topology> makeTopology(const std::string &kind,
                                       int columns, int rows);

} // namespace noc
} // namespace rasim

#endif // RASIM_NOC_TOPOLOGY_HH
