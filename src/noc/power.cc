#include "noc/power.hh"

#include "noc/cycle_network.hh"
#include "sim/config.hh"
#include "sim/logging.hh"

namespace rasim
{
namespace noc
{

PowerParams
PowerParams::fromConfig(const Config &cfg)
{
    PowerParams p;
    p.buffer_write_pj =
        cfg.getDouble("power.buffer_write_pj", p.buffer_write_pj);
    p.switch_traversal_pj = cfg.getDouble("power.switch_traversal_pj",
                                          p.switch_traversal_pj);
    p.link_traversal_pj =
        cfg.getDouble("power.link_traversal_pj", p.link_traversal_pj);
    p.static_mw_per_router = cfg.getDouble("power.static_mw_per_router",
                                           p.static_mw_per_router);
    p.ns_per_cycle = cfg.getDouble("power.ns_per_cycle", p.ns_per_cycle);
    if (p.ns_per_cycle <= 0.0)
        fatal("power.ns_per_cycle must be positive");
    return p;
}

NocActivity
activityOf(CycleNetwork &net)
{
    NocActivity a;
    a.routers = static_cast<int>(net.numNodes());
    a.cycles = static_cast<std::uint64_t>(net.cyclesRun.value());
    for (std::size_t i = 0; i < net.numNodes(); ++i) {
        kernel::RouterActivity r = net.routerActivity(i);
        a.buffer_writes +=
            static_cast<std::uint64_t>(r.buffer_writes);
        a.switch_traversals +=
            static_cast<std::uint64_t>(r.flits_routed);
        a.link_traversals +=
            static_cast<std::uint64_t>(r.link_traversals);
    }
    return a;
}

double
EnergyEstimate::averageMw(double interval_ns) const
{
    // 1 pJ / 1 ns = 1 mW.
    return interval_ns > 0.0 ? totalPj() / interval_ns : 0.0;
}

NocPowerModel::NocPowerModel(PowerParams params) : params_(params)
{
}

EnergyEstimate
NocPowerModel::estimate(const NocActivity &activity) const
{
    EnergyEstimate e;
    e.buffer_pj = params_.buffer_write_pj *
                  static_cast<double>(activity.buffer_writes);
    e.switch_pj = params_.switch_traversal_pj *
                  static_cast<double>(activity.switch_traversals);
    e.link_pj = params_.link_traversal_pj *
                static_cast<double>(activity.link_traversals);
    double interval_ns =
        static_cast<double>(activity.cycles) * params_.ns_per_cycle;
    // mW * ns = pJ.
    e.static_pj = params_.static_mw_per_router * activity.routers *
                  interval_ns;
    return e;
}

} // namespace noc
} // namespace rasim
