#include "noc/topology.hh"

#include <cmath>
#include <cstdlib>

#include "sim/logging.hh"

namespace rasim
{
namespace noc
{

const char *
portName(int port)
{
    switch (port) {
      case port_local:
        return "local";
      case port_north:
        return "north";
      case port_east:
        return "east";
      case port_south:
        return "south";
      case port_west:
        return "west";
    }
    return "invalid";
}

Mesh2D::Mesh2D(int columns, int rows) : cols_(columns), rows_(rows)
{
    if (columns < 1 || rows < 1)
        fatal("mesh dimensions must be positive, got ", columns, "x",
              rows);
}

int
Mesh2D::neighbor(int node, int port) const
{
    auto [x, y] = coords(node);
    switch (port) {
      case port_north:
        return y > 0 ? node - cols_ : -1;
      case port_south:
        return y < rows_ - 1 ? node + cols_ : -1;
      case port_west:
        return x > 0 ? node - 1 : -1;
      case port_east:
        return x < cols_ - 1 ? node + 1 : -1;
      default:
        return -1;
    }
}

int
Mesh2D::inputPortAt(int node, int port) const
{
    (void)node;
    switch (port) {
      case port_north:
        return port_south;
      case port_south:
        return port_north;
      case port_west:
        return port_east;
      case port_east:
        return port_west;
      default:
        return -1;
    }
}

int
Mesh2D::minHops(NodeId a, NodeId b) const
{
    auto [ax, ay] = coords(a);
    auto [bx, by] = coords(b);
    return std::abs(ax - bx) + std::abs(ay - by);
}

std::pair<int, int>
Mesh2D::coords(NodeId node) const
{
    int n = static_cast<int>(node);
    return {n % cols_, n / cols_};
}

NodeId
Mesh2D::nodeAt(int x, int y) const
{
    if (x < 0 || x >= cols_ || y < 0 || y >= rows_)
        panic("nodeAt(", x, ",", y, ") outside ", cols_, "x", rows_,
              " mesh");
    return static_cast<NodeId>(y * cols_ + x);
}

std::string
Mesh2D::name() const
{
    return "mesh" + std::to_string(cols_) + "x" + std::to_string(rows_);
}

Torus2D::Torus2D(int columns, int rows) : Mesh2D(columns, rows)
{
}

int
Torus2D::neighbor(int node, int port) const
{
    auto [x, y] = coords(node);
    switch (port) {
      case port_north:
        return nodeAt(x, (y + rows_ - 1) % rows_);
      case port_south:
        return nodeAt(x, (y + 1) % rows_);
      case port_west:
        return nodeAt((x + cols_ - 1) % cols_, y);
      case port_east:
        return nodeAt((x + 1) % cols_, y);
      default:
        return -1;
    }
}

int
Torus2D::minHops(NodeId a, NodeId b) const
{
    auto [ax, ay] = coords(a);
    auto [bx, by] = coords(b);
    int dx = std::abs(ax - bx);
    int dy = std::abs(ay - by);
    return std::min(dx, cols_ - dx) + std::min(dy, rows_ - dy);
}

bool
Torus2D::isWrapLink(int node, int port) const
{
    auto [x, y] = coords(node);
    switch (port) {
      case port_north:
        return y == 0;
      case port_south:
        return y == rows_ - 1;
      case port_west:
        return x == 0;
      case port_east:
        return x == cols_ - 1;
      default:
        return false;
    }
}

std::string
Torus2D::name() const
{
    return "torus" + std::to_string(cols_) + "x" + std::to_string(rows_);
}

std::unique_ptr<Topology>
makeTopology(const std::string &kind, int columns, int rows)
{
    if (kind == "mesh")
        return std::make_unique<Mesh2D>(columns, rows);
    if (kind == "torus")
        return std::make_unique<Torus2D>(columns, rows);
    fatal("unknown topology '", kind, "' (want mesh or torus)");
}

} // namespace noc
} // namespace rasim
