/**
 * @file
 * Point-to-point channel between routers (or a router and its network
 * interface): a forward flit pipeline and a reverse credit pipeline.
 *
 * Phase discipline (see CycleNetwork): pushes happen in the compute
 * phase of the sending component, pops in the commit phase of the
 * receiving component, so a link is never touched concurrently.
 */

#ifndef RASIM_NOC_LINK_HH
#define RASIM_NOC_LINK_HH

#include <cstdint>
#include <deque>
#include <utility>

#include "noc/packet.hh"
#include "sim/types.hh"

namespace rasim
{
namespace noc
{

class Link
{
  public:
    explicit Link(int latency) : latency_(latency) {}

    /** Send a flit during compute(now); poppable at commit(now +
     *  latency - 1), i.e. visible to the receiver at now + latency. */
    void
    sendFlit(Cycle now, Flit f)
    {
        flits_.emplace_back(now + latency_ - 1, std::move(f));
    }

    /** True when a flit can be popped at commit(now). */
    bool
    flitReady(Cycle now) const
    {
        return !flits_.empty() && flits_.front().first <= now;
    }

    Flit
    popFlit()
    {
        Flit f = std::move(flits_.front().second);
        flits_.pop_front();
        return f;
    }

    /** Return one credit for @p vc to the sender (reverse direction). */
    void
    sendCredit(Cycle now, int vc)
    {
        credits_.emplace_back(now + latency_ - 1,
                              static_cast<std::int16_t>(vc));
    }

    bool
    creditReady(Cycle now) const
    {
        return !credits_.empty() && credits_.front().first <= now;
    }

    int
    popCredit()
    {
        int vc = credits_.front().second;
        credits_.pop_front();
        return vc;
    }

    bool
    empty() const
    {
        return flits_.empty() && credits_.empty();
    }

    std::size_t flitsInFlight() const { return flits_.size(); }
    int latency() const { return latency_; }

    void
    collectPackets(PacketTable &table) const
    {
        for (const auto &[cycle, flit] : flits_)
            collectPacket(table, flit.pkt);
    }

    void
    save(ArchiveWriter &aw) const
    {
        aw.beginSection("link");
        aw.putU64(flits_.size());
        for (const auto &[cycle, flit] : flits_) {
            aw.putU64(cycle);
            saveFlit(aw, flit);
        }
        aw.putU64(credits_.size());
        for (const auto &[cycle, vc] : credits_) {
            aw.putU64(cycle);
            aw.putI64(vc);
        }
        aw.endSection();
    }

    void
    restore(ArchiveReader &ar, const PacketTable &table)
    {
        ar.expectSection("link");
        flits_.clear();
        std::uint64_t n_flits = ar.getU64();
        for (std::uint64_t i = 0; i < n_flits; ++i) {
            Cycle cycle = ar.getU64();
            flits_.emplace_back(cycle, restoreFlit(ar, table));
        }
        credits_.clear();
        std::uint64_t n_credits = ar.getU64();
        for (std::uint64_t i = 0; i < n_credits; ++i) {
            Cycle cycle = ar.getU64();
            credits_.emplace_back(
                cycle, static_cast<std::int16_t>(ar.getI64()));
        }
        ar.endSection();
    }

  private:
    int latency_;
    std::deque<std::pair<Cycle, Flit>> flits_;
    std::deque<std::pair<Cycle, std::int16_t>> credits_;
};

} // namespace noc
} // namespace rasim

#endif // RASIM_NOC_LINK_HH
