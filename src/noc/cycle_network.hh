/**
 * @file
 * The parallel cycle-level NoC, advanced one cycle at a time through an
 * exchangeable execution engine. The network itself is a thin
 * orchestrator — injection heap, aggregate statistics, delivery
 * callbacks — while the per-cycle router/NIC/link state machine lives
 * behind a swappable compute backend (see noc/kernel/backend.hh)
 * selected by `network.kernel`.
 */

#ifndef RASIM_NOC_CYCLE_NETWORK_HH
#define RASIM_NOC_CYCLE_NETWORK_HH

#include <memory>
#include <queue>
#include <vector>

#include "noc/kernel/backend.hh"
#include "noc/network_model.hh"
#include "noc/params.hh"
#include "noc/routing.hh"
#include "noc/topology.hh"
#include "sim/step_engine.hh"
#include "sim/sim_object.hh"
#include "stats/distribution.hh"
#include "stats/stat.hh"

namespace rasim
{

class Simulation;

namespace noc
{

class CycleNetwork : public SimObject, public NetworkModel
{
  public:
    CycleNetwork(Simulation &sim, const std::string &name,
                 const NocParams &params, SimObject *parent = nullptr);
    ~CycleNetwork() override;

    // NetworkModel interface.
    void inject(const PacketPtr &pkt) override;
    void advanceTo(Tick t) override;
    void setDeliveryHandler(DeliveryHandler handler) override;
    Tick curTime() const override { return time_; }
    bool idle() const override;
    std::size_t numNodes() const override;
    std::optional<Accounting> accounting() const override;
    bool setNodeStalled(std::size_t node, bool stalled) override;

    /**
     * Replace the execution engine (default: SerialEngine). The
     * network does not own the engine; it must outlive the network's
     * last advanceTo().
     */
    void setEngine(StepEngine *engine) override;

    const NocParams &params() const { return params_; }
    const Topology &topology() const { return *topo_; }

    /** The active compute backend (object or soa). */
    const kernel::CycleFabric &fabric() const { return *fabric_; }

    /** Run exactly one cycle (tests; advanceTo is the public driver). */
    void stepCycle();

    /** Packets handed to inject() so far. */
    std::uint64_t injectedCount() const { return injected_; }
    /** Packets delivered so far. */
    std::uint64_t deliveredCount() const { return delivered_; }
    /** Packets currently inside the network (or queued for it). */
    std::uint64_t inFlight() const { return injected_ - delivered_; }

    /** Per-router activity counters (power model, tests). */
    kernel::RouterActivity
    routerActivity(std::size_t i) const
    {
        return fabric_->routerActivity(i);
    }

    /** Checkpoint the full fabric state between cycles. */
    void save(ArchiveWriter &aw) const;
    void restore(ArchiveReader &ar);

    /** @name Aggregate statistics */
    /// @{
    stats::Scalar packetsInjected;
    stats::Scalar packetsDelivered;
    stats::Scalar flitsDelivered;
    stats::Scalar cyclesRun;
    stats::Distribution totalLatency;
    stats::Distribution networkLatency;
    stats::Distribution queueLatency;
    stats::Distribution hopCount;
    std::vector<std::unique_ptr<stats::Distribution>> vnetLatency;
    /// @}

  private:
    void applyDelivery(const PacketPtr &pkt);

    struct InjectOrder
    {
        bool
        operator()(const PacketPtr &a, const PacketPtr &b) const
        {
            if (a->inject_tick != b->inject_tick)
                return a->inject_tick > b->inject_tick; // min-heap
            return a->id > b->id;
        }
    };

    NocParams params_;
    std::unique_ptr<Topology> topo_;
    std::unique_ptr<RoutingAlgorithm> routing_;
    SerialEngine serial_engine_;
    StepEngine *engine_;

    std::unique_ptr<kernel::CycleFabric> fabric_;
    /** Fault hook: routers whose pipeline is wedged (see
     *  setNodeStalled). Written only between cycles. */
    std::vector<char> stalled_;

    Tick time_ = 0;
    std::uint64_t injected_ = 0;
    std::uint64_t delivered_ = 0;
    /** Packets inside the fabric (entered a NIC, not yet delivered). */
    std::uint64_t in_fabric_ = 0;
    std::priority_queue<PacketPtr, std::vector<PacketPtr>, InjectOrder>
        pending_;
    DeliveryHandler handler_;
};

} // namespace noc
} // namespace rasim

#endif // RASIM_NOC_CYCLE_NETWORK_HH
