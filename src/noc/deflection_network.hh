/**
 * @file
 * Bufferless deflection-routed (hot-potato) network — the alternative
 * detailed router organisation from the NoC literature (cf. BLESS /
 * DNOC). Flits never wait in router buffers: each cycle every router
 * permutes its arriving flits onto distinct output ports, oldest flit
 * first; flits that lose their productive port are deflected and try
 * again elsewhere. Oldest-first arbitration makes the scheme
 * livelock-free.
 *
 * Packets travel as independent single-flit "worms" (each flit routes
 * alone and is reassembled at the destination NIC), the classic
 * bufferless formulation.
 */

#ifndef RASIM_NOC_DEFLECTION_NETWORK_HH
#define RASIM_NOC_DEFLECTION_NETWORK_HH

#include <deque>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "noc/network_model.hh"
#include "noc/packet.hh"
#include "noc/params.hh"
#include "noc/topology.hh"
#include "sim/sim_object.hh"
#include "stats/distribution.hh"
#include "stats/stat.hh"

namespace rasim
{

class Simulation;

namespace noc
{

class DeflectionNetwork : public SimObject, public NetworkModel
{
  public:
    /**
     * Uses NocParams for geometry, link width and per-hop latency
     * (pipeline_stages); buffering/VC parameters are ignored — the
     * whole point of the organisation.
     */
    DeflectionNetwork(Simulation &sim, const std::string &name,
                      const NocParams &params,
                      SimObject *parent = nullptr);
    ~DeflectionNetwork() override;

    // NetworkModel interface.
    void inject(const PacketPtr &pkt) override;
    void advanceTo(Tick t) override;
    void setDeliveryHandler(DeliveryHandler handler) override;
    Tick curTime() const override { return time_; }
    bool idle() const override;
    std::size_t numNodes() const override;

    const NocParams &params() const { return params_; }
    const Topology &topology() const { return *topo_; }

    stats::Scalar packetsInjected;
    stats::Scalar packetsDelivered;
    stats::Scalar flitsDeflected;
    stats::Scalar flitsEjected;
    stats::Scalar injectionStalls;
    stats::Distribution totalLatency;
    stats::Distribution deflectionsPerFlit;

  private:
    /** A flit in flight, with its age for oldest-first arbitration. */
    struct DFlit
    {
        PacketPtr pkt;
        std::uint32_t seq = 0;
        std::uint32_t deflections = 0;
        std::uint32_t hops = 0;
        Tick birth = 0; ///< cycle the flit entered the fabric
    };

    void stepCycle();

    NocParams params_;
    std::unique_ptr<Topology> topo_;

    /** Flits arriving at router i this cycle (by input port). */
    std::vector<std::vector<DFlit>> arriving_;
    /** Staged flits that will arrive next cycle. */
    std::vector<std::vector<DFlit>> next_;
    /** Per-node injection queues (flits waiting for a free slot). */
    std::vector<std::deque<DFlit>> inject_queues_;
    /** Reassembly: flits received per packet id. */
    std::unordered_map<PacketId, std::uint32_t> rx_;

    struct InjectOrder
    {
        bool
        operator()(const PacketPtr &a, const PacketPtr &b) const
        {
            if (a->inject_tick != b->inject_tick)
                return a->inject_tick > b->inject_tick;
            return a->id > b->id;
        }
    };
    std::priority_queue<PacketPtr, std::vector<PacketPtr>, InjectOrder>
        pending_;

    Tick time_ = 0;
    std::uint64_t in_fabric_flits_ = 0;
    std::uint64_t queued_flits_ = 0;
    std::uint64_t delivered_ = 0;
    std::uint64_t injected_ = 0;
    DeliveryHandler handler_;
};

} // namespace noc
} // namespace rasim

#endif // RASIM_NOC_DEFLECTION_NETWORK_HH
