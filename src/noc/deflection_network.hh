/**
 * @file
 * Bufferless deflection-routed (hot-potato) network — the alternative
 * detailed router organisation from the NoC literature (cf. BLESS /
 * DNOC). Flits never wait in router buffers: each cycle every router
 * permutes its arriving flits onto distinct output ports, oldest flit
 * first; flits that lose their productive port are deflected and try
 * again elsewhere. Oldest-first arbitration makes the scheme
 * livelock-free.
 *
 * Packets travel as independent single-flit "worms" (each flit routes
 * alone and is reassembled at the destination NIC), the classic
 * bufferless formulation.
 *
 * Like CycleNetwork, the network is a thin orchestrator over a
 * swappable compute backend (see noc/kernel/backend.hh) selected by
 * `network.kernel`. The per-cycle update is phase-structured so an
 * exchangeable StepEngine can run it data-parallel and bit-identical
 * to serial execution: a route phase in which node i consumes its own
 * arrival set and writes only its own per-port output staging, a
 * gather phase in which node j pulls from its upstream neighbours'
 * staging in a fixed order, and a sequential reduction that folds
 * per-node scratch (stats, deliveries, counters) in node-index order.
 */

#ifndef RASIM_NOC_DEFLECTION_NETWORK_HH
#define RASIM_NOC_DEFLECTION_NETWORK_HH

#include <memory>
#include <queue>
#include <vector>

#include "noc/kernel/backend.hh"
#include "noc/network_model.hh"
#include "noc/packet.hh"
#include "noc/params.hh"
#include "noc/topology.hh"
#include "sim/sim_object.hh"
#include "sim/step_engine.hh"
#include "stats/distribution.hh"
#include "stats/stat.hh"

namespace rasim
{

class Simulation;

namespace noc
{

class DeflectionNetwork : public SimObject, public NetworkModel
{
  public:
    /**
     * Uses NocParams for geometry, link width and per-hop latency
     * (pipeline_stages); buffering/VC parameters are ignored — the
     * whole point of the organisation.
     */
    DeflectionNetwork(Simulation &sim, const std::string &name,
                      const NocParams &params,
                      SimObject *parent = nullptr);
    ~DeflectionNetwork() override;

    // NetworkModel interface.
    void inject(const PacketPtr &pkt) override;
    void advanceTo(Tick t) override;
    void setDeliveryHandler(DeliveryHandler handler) override;
    Tick curTime() const override { return time_; }
    bool idle() const override;
    std::size_t numNodes() const override;
    std::optional<Accounting> accounting() const override;
    bool setNodeStalled(std::size_t node, bool stalled) override;

    /**
     * Replace the execution engine (default: SerialEngine). The
     * network does not own the engine; it must outlive the network's
     * last advanceTo().
     */
    void setEngine(StepEngine *engine) override;

    const NocParams &params() const { return params_; }
    const Topology &topology() const { return *topo_; }

    /** The active compute backend (object or soa). */
    const kernel::DeflectFabric &fabric() const { return *fabric_; }

    /** Checkpoint the full fabric state between cycles. */
    void save(ArchiveWriter &aw) const;
    void restore(ArchiveReader &ar);

    stats::Scalar packetsInjected;
    stats::Scalar packetsDelivered;
    stats::Scalar flitsDeflected;
    stats::Scalar flitsEjected;
    stats::Scalar injectionStalls;
    stats::Distribution totalLatency;
    stats::Distribution deflectionsPerFlit;

  private:
    void stepCycle();
    /** Fold scratch into stats/deliveries in node index order. */
    void reduceScratch(Cycle now);

    NocParams params_;
    std::unique_ptr<Topology> topo_;
    SerialEngine serial_engine_;
    StepEngine *engine_;

    std::unique_ptr<kernel::DeflectFabric> fabric_;
    /** Fault hook: nodes whose ejection port is wedged — their flits
     *  circulate forever (livelock). Written only between cycles. */
    std::vector<char> stalled_;

    struct InjectOrder
    {
        bool
        operator()(const PacketPtr &a, const PacketPtr &b) const
        {
            if (a->inject_tick != b->inject_tick)
                return a->inject_tick > b->inject_tick;
            return a->id > b->id;
        }
    };
    std::priority_queue<PacketPtr, std::vector<PacketPtr>, InjectOrder>
        pending_;

    Tick time_ = 0;
    std::uint64_t in_fabric_flits_ = 0;
    std::uint64_t queued_flits_ = 0;
    std::uint64_t delivered_ = 0;
    std::uint64_t injected_ = 0;
    DeliveryHandler handler_;
};

} // namespace noc
} // namespace rasim

#endif // RASIM_NOC_DEFLECTION_NETWORK_HH
