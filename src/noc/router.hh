/**
 * @file
 * Input-buffered virtual-channel wormhole router with credit-based
 * flow control.
 *
 * The per-cycle update is split into compute() (route computation, VC
 * allocation, switch allocation, traversal onto outgoing links — touches
 * only this router's state and the push-ends of its outgoing links) and
 * commit() (buffer writes from incoming links, credit returns — touches
 * only the pop-ends of its incoming links). This two-phase structure is
 * what makes the data-parallel engine race-free and deterministic.
 *
 * Timing model: a flit buffered at cycle A becomes eligible for switch
 * allocation at cycle A + pipeline_stages - 1 (the RC/VA/SA pipeline),
 * traverses the crossbar in the winning cycle, and spends link_latency
 * cycles on the wire. Per-hop latency is pipeline_stages - 1 +
 * link_latency plus contention.
 */

#ifndef RASIM_NOC_ROUTER_HH
#define RASIM_NOC_ROUTER_HH

#include <deque>
#include <vector>

#include "noc/link.hh"
#include "noc/packet.hh"
#include "noc/params.hh"
#include "stats/stat.hh"
#include "stats/group.hh"

namespace rasim
{
namespace noc
{

class Topology;
class RoutingAlgorithm;

class Router : public stats::Group
{
  public:
    Router(stats::Group *parent, int id, const NocParams &params,
           const Topology &topo, const RoutingAlgorithm &routing);

    /** Attach the link whose flits arrive at input @p port. */
    void connectInput(int port, Link *link);

    /**
     * Attach the link leaving output @p port; @p downstream_depth is
     * the buffer depth per VC at the receiving side (initial credits).
     */
    void connectOutput(int port, Link *link, int downstream_depth);

    /** Phase 1: allocate and traverse (see file comment). */
    void compute(Cycle now);

    /** Phase 2: accept arrivals and credits. */
    void commit(Cycle now);

    int id() const { return id_; }

    /** Flits currently buffered in all input VCs (test/idle probe). */
    std::size_t bufferedFlits() const;

    /** Credits currently available at (output port, vc). */
    int creditsAt(int port, int vc) const;

    /** True when the output VC is allocated to an in-flight packet. */
    bool outVcBusy(int port, int vc) const;

    /** Register packets referenced by buffered flits. */
    void collectPackets(PacketTable &table) const;

    /** Checkpoint buffered flits, VC allocation and arbiter state. */
    void save(ArchiveWriter &aw) const;
    void restore(ArchiveReader &ar, const PacketTable &table);

    /** Flits this router moved through its crossbar. */
    stats::Scalar flitsRouted;
    /** Flits written into input buffers (power model activity). */
    stats::Scalar bufferWrites;
    /** Flits sent over router-to-router links (power model). */
    stats::Scalar linkTraversals;

  private:
    enum class VcState : std::uint8_t { Idle, NeedVA, Active };

    struct InputVc
    {
        std::deque<Flit> fifo;
        VcState state = VcState::Idle;
        int out_port = -1;
        int out_vc = -1;
        std::uint8_t out_class = 0;
        std::uint8_t out_dim = 2;
    };

    struct InputPort
    {
        Link *in = nullptr;
        std::vector<InputVc> vcs;
        int sa_rr = 0; ///< round-robin pointer over VCs
    };

    struct OutVc
    {
        bool busy = false;
        int credits = 0;
    };

    struct OutputPort
    {
        Link *out = nullptr;
        std::vector<OutVc> vcs;
        std::vector<int> va_rr; ///< per (vnet,class) pool RR pointer
        int sa_rr = 0;          ///< round-robin pointer over input ports
    };

    void vcAllocation(Cycle now);
    void switchAllocation(Cycle now);

    /** Pick the output port among routing candidates (adaptive). */
    int selectOutputPort(const Flit &head, const std::vector<int> &cand,
                         int in_port) const;

    /** VC class the packet will use on the link leaving @p port. */
    std::uint8_t nextVcClass(const Flit &head, int out_port) const;

    /** Dimension (0 = X, 1 = Y, 2 = none) of a port. */
    static std::uint8_t dimOf(int port);

    /** Try to reserve a free output VC; returns -1 when none. */
    int allocateOutVc(int out_port, int vnet, int cls);

    int id_;
    const NocParams &params_;
    const Topology &topo_;
    const RoutingAlgorithm &routing_;
    std::vector<InputPort> inputs_;
    std::vector<OutputPort> outputs_;
    mutable std::vector<int> route_scratch_;
};

} // namespace noc
} // namespace rasim

#endif // RASIM_NOC_ROUTER_HH
