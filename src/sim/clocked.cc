#include "sim/clocked.hh"

#include <utility>

#include "sim/logging.hh"

namespace rasim
{

ClockDomain::ClockDomain(std::string name, Tick period)
    : name_(std::move(name)), period_(period)
{
    if (period_ == 0)
        fatal("clock domain '", name_, "' must have a non-zero period");
}

Tick
ClockDomain::edgeAtOrAfter(Tick t) const
{
    Tick rem = t % period_;
    return rem == 0 ? t : t + (period_ - rem);
}

Clocked::Clocked(EventQueue &eq, const ClockDomain &domain)
    : eq_(eq), domain_(domain)
{
}

Cycle
Clocked::curCycle() const
{
    return domain_.ticksToCycles(eq_.curTick());
}

Tick
Clocked::clockEdge(Cycle cycles) const
{
    return domain_.edgeAtOrAfter(eq_.curTick()) +
           domain_.cyclesToTicks(cycles);
}

} // namespace rasim
