/**
 * @file
 * Open-addressing hash map with deterministic, key-ordered iteration —
 * the in-flight-table replacement for std::map/std::unordered_map on
 * the simulation hot path.
 *
 * Lookups and erases are O(1) with no per-node allocation (Robin Hood
 * probing with backward-shift deletion over one flat slot array), while
 * iteration visits entries in ascending key order exactly like the
 * std::map it replaces — checkpoints written by walking a FlatMap are
 * byte-identical to the manual sort-before-save loops they retire. The
 * order index is rebuilt lazily on first iteration after a mutation, so
 * steady-state insert/find/erase never pays for it.
 *
 * Reference stability: pointers and references into the map are
 * invalidated by rehash (any insert may rehash) and by erase (backward
 * shifting moves neighbours). Callers must not hold a mapped reference
 * across a mutation — the existing protocol code already obeys this
 * (see DESIGN.md §9).
 */

#ifndef RASIM_SIM_FLAT_MAP_HH
#define RASIM_SIM_FLAT_MAP_HH

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/logging.hh"

namespace rasim
{

namespace detail
{

/** splitmix64 finalizer: deterministic, platform-independent mixing of
 *  integral keys into well-spread hashes. */
inline std::uint64_t
mixHash(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace detail

/**
 * Robin Hood open-addressing map keyed by an integral type. The subset
 * of the std::map interface the simulator uses, with one deliberate
 * difference: find() returns a pointer to the mapped value (nullptr on
 * miss) instead of an iterator.
 */
template <typename K, typename V>
class FlatMap
{
  public:
    FlatMap() = default;

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

    void
    clear()
    {
        slots_.clear();
        size_ = 0;
        mask_ = 0;
        order_.clear();
        order_dirty_ = false;
    }

    /** Pre-size the table for @p n entries without rehashing later. */
    void
    reserve(std::size_t n)
    {
        std::size_t want = 16;
        while (want * max_load_num < n * max_load_den)
            want <<= 1;
        if (want > slots_.size())
            rehash(want);
    }

    V *
    find(const K &key)
    {
        std::size_t i = findSlot(key);
        return i == npos ? nullptr : &slots_[i].value;
    }

    const V *
    find(const K &key) const
    {
        std::size_t i = findSlot(key);
        return i == npos ? nullptr : &slots_[i].value;
    }

    bool contains(const K &key) const { return findSlot(key) != npos; }

    /** Mapped value for @p key; panics when absent (map::at parity). */
    V &
    at(const K &key)
    {
        V *v = find(key);
        if (!v)
            panic("FlatMap::at: key ", key, " not present");
        return *v;
    }

    const V &
    at(const K &key) const
    {
        const V *v = find(key);
        if (!v)
            panic("FlatMap::at: key ", key, " not present");
        return *v;
    }

    /** Default-construct-on-miss access (map::operator[] parity). */
    V &
    operator[](const K &key)
    {
        std::size_t i = findSlot(key);
        if (i != npos)
            return slots_[i].value;
        return insertNew(key, V{});
    }

    /**
     * Insert when absent; existing entries win (map::emplace parity).
     * @return true when the value was inserted.
     */
    template <typename... Args>
    bool
    emplace(const K &key, Args &&...args)
    {
        if (findSlot(key) != npos)
            return false;
        insertNew(key, V(std::forward<Args>(args)...));
        return true;
    }

    /** Insert-or-overwrite. */
    void
    insertOrAssign(const K &key, V value)
    {
        std::size_t i = findSlot(key);
        if (i != npos) {
            slots_[i].value = std::move(value);
            return;
        }
        insertNew(key, std::move(value));
    }

    /** @return number of entries removed (0 or 1), like map::erase. */
    std::size_t
    erase(const K &key)
    {
        std::size_t i = findSlot(key);
        if (i == npos)
            return 0;
        // Backward-shift deletion: pull successors one slot toward
        // their home until an empty or home-positioned slot ends the
        // displaced run.
        std::size_t hole = i;
        for (;;) {
            std::size_t next = (hole + 1) & mask_;
            if (!slots_[next].used || distance(next) == 0)
                break;
            slots_[hole] = std::move(slots_[next]);
            hole = next;
        }
        slots_[hole].used = false;
        slots_[hole].value = V{};
        --size_;
        order_dirty_ = true;
        return 1;
    }

    /**
     * @name Key-ordered iteration
     * Proxy iterators yielding pair<const K&, V&>; ascending key order,
     * byte-compatible with iterating the std::map this replaced. The
     * map must not be mutated during iteration.
     */
    /// @{
    template <bool Const>
    class Iterator
    {
        using MapT = std::conditional_t<Const, const FlatMap, FlatMap>;
        using ValT = std::conditional_t<Const, const V, V>;

      public:
        Iterator(MapT *m, std::size_t pos) : map_(m), pos_(pos) {}

        std::pair<const K &, ValT &>
        operator*() const
        {
            auto &slot = map_->slots_[map_->order_[pos_]];
            return {slot.key, slot.value};
        }

        Iterator &
        operator++()
        {
            ++pos_;
            return *this;
        }

        bool
        operator!=(const Iterator &o) const
        {
            return pos_ != o.pos_;
        }

        bool
        operator==(const Iterator &o) const
        {
            return pos_ == o.pos_;
        }

      private:
        MapT *map_;
        std::size_t pos_;
    };

    using iterator = Iterator<false>;
    using const_iterator = Iterator<true>;

    iterator
    begin()
    {
        refreshOrder();
        return iterator(this, 0);
    }

    iterator end() { return iterator(this, size_); }

    const_iterator
    begin() const
    {
        refreshOrder();
        return const_iterator(this, 0);
    }

    const_iterator end() const { return const_iterator(this, size_); }
    /// @}

  private:
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);
    // Load factor 7/8: dense enough to stay cache-friendly, sparse
    // enough to keep Robin Hood probe runs short.
    static constexpr std::size_t max_load_num = 7;
    static constexpr std::size_t max_load_den = 8;

    struct Slot
    {
        K key{};
        V value{};
        bool used = false;
    };

    std::size_t
    home(const K &key) const
    {
        return static_cast<std::size_t>(
                   detail::mixHash(static_cast<std::uint64_t>(key))) &
               mask_;
    }

    /** Probe distance of the entry sitting in slot @p i. */
    std::size_t
    distance(std::size_t i) const
    {
        return (i - home(slots_[i].key)) & mask_;
    }

    std::size_t
    findSlot(const K &key) const
    {
        if (slots_.empty())
            return npos;
        std::size_t i = home(key);
        std::size_t d = 0;
        for (;;) {
            const Slot &slot = slots_[i];
            if (!slot.used)
                return npos;
            if (slot.key == key)
                return i;
            // Robin Hood invariant: a resident poorer than our probe
            // distance proves the key was never inserted.
            if (distance(i) < d)
                return npos;
            i = (i + 1) & mask_;
            ++d;
        }
    }

    V &
    insertNew(const K &key, V value)
    {
        if (slots_.empty() ||
            (size_ + 1) * max_load_den > slots_.size() * max_load_num)
            rehash(slots_.empty() ? 16 : slots_.size() * 2);

        K k = key;
        V v = std::move(value);
        std::size_t i = home(k);
        std::size_t d = 0;
        V *inserted = nullptr;
        for (;;) {
            Slot &slot = slots_[i];
            if (!slot.used) {
                slot.key = std::move(k);
                slot.value = std::move(v);
                slot.used = true;
                ++size_;
                order_dirty_ = true;
                return inserted ? *inserted : slot.value;
            }
            std::size_t rd = distance(i);
            if (rd < d) {
                // Rob the richer resident: swap and keep probing on
                // its behalf.
                std::swap(k, slot.key);
                std::swap(v, slot.value);
                if (!inserted)
                    inserted = &slot.value;
                d = rd;
            }
            i = (i + 1) & mask_;
            ++d;
        }
    }

    void
    rehash(std::size_t new_cap)
    {
        std::vector<Slot> old = std::move(slots_);
        slots_.assign(new_cap, Slot{});
        mask_ = new_cap - 1;
        size_ = 0;
        for (Slot &slot : old) {
            if (slot.used)
                insertNew(slot.key, std::move(slot.value));
        }
        order_dirty_ = true;
    }

    void
    refreshOrder() const
    {
        if (!order_dirty_ && order_.size() == size_)
            return;
        order_.clear();
        order_.reserve(size_);
        for (std::size_t i = 0; i < slots_.size(); ++i) {
            if (slots_[i].used)
                order_.push_back(i);
        }
        std::sort(order_.begin(), order_.end(),
                  [this](std::size_t a, std::size_t b) {
                      return slots_[a].key < slots_[b].key;
                  });
        order_dirty_ = false;
    }

    std::vector<Slot> slots_;
    std::size_t mask_ = 0;
    std::size_t size_ = 0;
    // Iteration cache: slot indices sorted by key, rebuilt lazily.
    mutable std::vector<std::size_t> order_;
    mutable bool order_dirty_ = false;
};

} // namespace rasim

#endif // RASIM_SIM_FLAT_MAP_HH
