/**
 * @file
 * Persistent worker-pool execution engine for data-parallel simulation
 * phases — the host-side realisation of the paper's data-parallel
 * router-update kernels, shared by every phase-structured model (the
 * cycle-level and deflection networks today).
 *
 * Results are bit-identical to SerialEngine because phases only touch
 * partition-local state; the pool changes *where* iterations run, not
 * what they compute. Workers are started once and handed phases
 * through a generation-counter barrier (no spawn-per-call); they spin
 * briefly before blocking so the per-phase dispatch latency stays in
 * the microsecond range on multicore hosts.
 */

#ifndef RASIM_SIM_PARALLEL_ENGINE_HH
#define RASIM_SIM_PARALLEL_ENGINE_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/step_engine.hh"

namespace rasim
{

class ParallelEngine : public StepEngine
{
  public:
    /**
     * @param num_workers Worker threads in addition to the calling
     *        thread (which always processes the first partition).
     *        Zero degenerates to serial execution on the caller.
     */
    explicit ParallelEngine(int num_workers);
    ~ParallelEngine() override;

    ParallelEngine(const ParallelEngine &) = delete;
    ParallelEngine &operator=(const ParallelEngine &) = delete;

    void forEach(std::size_t n,
                 const std::function<void(std::size_t)> &fn) override;

    void forRange(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>
                      &fn) override;

    const char *name() const override { return "parallel"; }

    int numWorkers() const { return static_cast<int>(workers_.size()); }

    /** forEach() invocations so far (one per simulated phase). */
    std::uint64_t phasesRun() const { return phases_; }

    /** Sensible worker count for this host: cores minus the caller. */
    static int defaultWorkerCount();

  private:
    void workerLoop(int worker_index);
    /** Exactly one of @p fn / @p range_fn is non-null per phase. */
    void runPartition(int slot, std::size_t n,
                      const std::function<void(std::size_t)> *fn,
                      const std::function<void(std::size_t, std::size_t)>
                          *range_fn,
                      std::exception_ptr &error) noexcept;
    void runPhase(std::size_t n,
                  const std::function<void(std::size_t)> *fn,
                  const std::function<void(std::size_t, std::size_t)>
                      *range_fn);

    std::vector<std::thread> workers_;
    /** Captured per slot (caller = 0); first non-null is rethrown. */
    std::vector<std::exception_ptr> errors_;

    std::mutex mutex_;
    std::condition_variable start_cv_;
    std::condition_variable done_cv_;
    /** Bumped (under mutex_) to publish a phase; spun on by workers. */
    std::atomic<std::uint64_t> generation_{0};
    /** Workers still inside the current phase. */
    std::atomic<int> pending_{0};
    std::atomic<bool> shutdown_{false};
    std::size_t job_n_ = 0;
    const std::function<void(std::size_t)> *job_fn_ = nullptr;
    const std::function<void(std::size_t, std::size_t)> *job_range_fn_ =
        nullptr;

    std::uint64_t phases_ = 0;
};

} // namespace rasim

#endif // RASIM_SIM_PARALLEL_ENGINE_HH
