/**
 * @file
 * Deterministic, config-driven fault injection at the network-model
 * boundary. The injector is a transparent NetworkModel decorator the
 * full system interposes between the co-simulation bridge and the
 * detailed backend, so every health guard is exercisable on demand:
 *
 *  - drop:   swallow every Nth injected packet (breaks conservation);
 *  - delay:  hold every Nth packet for extra cycles before forwarding;
 *  - stall:  wedge one router/ejection port via setNodeStalled()
 *            (deadlock/livelock for the progress watchdog);
 *  - freeze: stop advancing the backend inside a tick window (no
 *            progress while packets are in flight);
 *  - poison: inflate the reported latency of every Nth delivery
 *            (corrupts the reciprocal feedback — divergence guard);
 *  - hang:   burn wall-clock inside advanceTo(), honouring
 *            requestAbort() (overlapped-worker timeout guard).
 *
 * All faults are counter- or tick-keyed, never randomised, so a
 * faulty run is exactly reproducible.
 */

#ifndef RASIM_SIM_FAULT_INJECTOR_HH
#define RASIM_SIM_FAULT_INJECTOR_HH

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "noc/network_model.hh"
#include "sim/serialize.hh"
#include "sim/types.hh"

namespace rasim
{

class Config;

/** Which faults fire and when — read from the "fault.*" config keys. */
struct FaultOptions
{
    /** Master switch; when false the injector is never interposed. */
    bool enabled = false;

    /** Drop every Nth injected packet (0 = off). */
    std::uint64_t drop_every = 0;

    /** Hold every Nth injected packet (0 = off) ... */
    std::uint64_t delay_every = 0;
    /** ... for this many cycles past its injection tick. */
    Tick delay_cycles = 64;

    /** Node to wedge via setNodeStalled() (-1 = off). */
    int stall_node = -1;
    /** Engage the stall at the first boundary reaching this tick. */
    Tick stall_from = 0;
    /** Release the stall at this tick (0 = never release). */
    Tick stall_until = 0;

    /** Stop advancing the backend from this tick on (0 = off). */
    Tick freeze_from = 0;
    /** Resume advancing at this tick (0 = never resume). */
    Tick freeze_until = 0;

    /** Inflate every Nth delivery's reported latency (0 = off) ... */
    std::uint64_t poison_every = 0;
    /** ... by this many cycles. */
    Tick poison_offset = 10000;

    /** Burn this much wall-clock per advanceTo() call (0 = off). */
    std::uint64_t hang_ms = 0;
    /** Only hang for horizons at or past this tick. */
    Tick hang_from = 0;
    /** Stop hanging for horizons past this tick (0 = never stop). */
    Tick hang_until = 0;

    /** Read the "fault.*" keys. */
    static FaultOptions fromConfig(const Config &cfg);
};

class FaultInjector final : public noc::NetworkModel
{
  public:
    /** Decorate @p inner; does not take ownership. */
    FaultInjector(noc::NetworkModel &inner, FaultOptions opts);

    // NetworkModel facade: forwards to the inner model, applying the
    // configured faults.
    void inject(const noc::PacketPtr &pkt) override;
    void advanceTo(Tick t) override;
    void setDeliveryHandler(DeliveryHandler handler) override;
    void setEngine(StepEngine *engine) override;
    Tick curTime() const override;
    bool idle() const override;
    std::size_t numNodes() const override;
    std::optional<Accounting> accounting() const override;
    bool setNodeStalled(std::size_t node, bool stalled) override;
    void requestAbort() override;

    const FaultOptions &options() const { return opts_; }
    noc::NetworkModel &inner() { return inner_; }

    /** @name Fault activity counters (deterministic) */
    /// @{
    std::uint64_t dropped() const { return dropped_; }
    std::uint64_t delayed() const { return delayed_; }
    std::uint64_t poisoned() const { return poisoned_; }
    std::uint64_t aborted() const { return aborted_; }
    /// @}

    /** Checkpoint fault counters and held (delayed) packets. */
    void save(ArchiveWriter &aw) const;
    void restore(ArchiveReader &ar);

  private:
    void onInnerDelivery(const noc::PacketPtr &pkt);
    void releaseHeld(Tick t);

    noc::NetworkModel &inner_;
    FaultOptions opts_;
    DeliveryHandler handler_;

    /** Delayed packets waiting for their release tick. */
    std::vector<std::pair<Tick, noc::PacketPtr>> held_;

    std::uint64_t received_ = 0;
    std::uint64_t forwarded_up_ = 0;
    std::uint64_t deliveries_seen_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint64_t delayed_ = 0;
    std::uint64_t poisoned_ = 0;
    std::uint64_t aborted_ = 0;
    bool stall_engaged_ = false;
    /** Cooperative-cancellation flag (set cross-thread). */
    std::atomic<bool> abort_{false};
};

} // namespace rasim

#endif // RASIM_SIM_FAULT_INJECTOR_HH
