/**
 * @file
 * Deterministic, config-driven fault injection at the network-model
 * boundary. The injector is a transparent NetworkModel decorator the
 * full system interposes between the co-simulation bridge and the
 * detailed backend, so every health guard is exercisable on demand:
 *
 *  - drop:   swallow every Nth injected packet (breaks conservation);
 *  - delay:  hold every Nth packet for extra cycles before forwarding;
 *  - stall:  wedge one router/ejection port via setNodeStalled()
 *            (deadlock/livelock for the progress watchdog);
 *  - freeze: stop advancing the backend inside a tick window (no
 *            progress while packets are in flight);
 *  - poison: inflate the reported latency of every Nth delivery
 *            (corrupts the reciprocal feedback — divergence guard);
 *  - hang:   burn wall-clock inside advanceTo(), honouring
 *            requestAbort() (overlapped-worker timeout guard).
 *
 * All faults are counter- or tick-keyed, never randomised, so a
 * faulty run is exactly reproducible.
 *
 * This file also holds the *transport* fault plan
 * (TransportFaultOptions + TransportFaultSchedule, the "fault.
 * transport.*" keys): which byte-level faults the ipc FaultyTransport
 * decorator injects into the remote backend's socket traffic, and at
 * which operations. The schedule draws from its own seeded Rng stream
 * in operation order, so transport chaos is as reproducible as the
 * counter-keyed network faults above.
 */

#ifndef RASIM_SIM_FAULT_INJECTOR_HH
#define RASIM_SIM_FAULT_INJECTOR_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "noc/network_model.hh"
#include "sim/rng.hh"
#include "sim/serialize.hh"
#include "sim/types.hh"

namespace rasim
{

class Config;

/** Which faults fire and when — read from the "fault.*" config keys. */
struct FaultOptions
{
    /** Master switch; when false the injector is never interposed. */
    bool enabled = false;

    /** Drop every Nth injected packet (0 = off). */
    std::uint64_t drop_every = 0;

    /** Hold every Nth injected packet (0 = off) ... */
    std::uint64_t delay_every = 0;
    /** ... for this many cycles past its injection tick. */
    Tick delay_cycles = 64;

    /** Node to wedge via setNodeStalled() (-1 = off). */
    int stall_node = -1;
    /** Engage the stall at the first boundary reaching this tick. */
    Tick stall_from = 0;
    /** Release the stall at this tick (0 = never release). */
    Tick stall_until = 0;

    /** Stop advancing the backend from this tick on (0 = off). */
    Tick freeze_from = 0;
    /** Resume advancing at this tick (0 = never resume). */
    Tick freeze_until = 0;

    /** Inflate every Nth delivery's reported latency (0 = off) ... */
    std::uint64_t poison_every = 0;
    /** ... by this many cycles. */
    Tick poison_offset = 10000;

    /** Burn this much wall-clock per advanceTo() call (0 = off). */
    std::uint64_t hang_ms = 0;
    /** Only hang for horizons at or past this tick. */
    Tick hang_from = 0;
    /** Stop hanging for horizons past this tick (0 = never stop). */
    Tick hang_until = 0;

    /** Read the "fault.*" keys. */
    static FaultOptions fromConfig(const Config &cfg);
};

/**
 * Which transport faults a FaultyTransport channel decorator may
 * inject, read from the "fault.transport.*" config keys. Probabilities
 * are per transport operation (one frame send or one frame-piece
 * receive), drawn from a dedicated seeded Rng stream in operation
 * order, so a faulty run is exactly reproducible — the same contract
 * the network-level FaultOptions above keep.
 */
struct TransportFaultOptions
{
    /** Master switch; when false no channel is ever decorated. */
    bool enabled = false;

    /** Seed of the fault schedule's private Rng stream. */
    std::uint64_t seed = 0x7a5;

    /** Tear a frame: close after part of the payload (send side) or
     *  truncate the payload mid-read (receive side). */
    double torn_frame = 0.0;
    /** Short read: close inside the 12-byte frame header. */
    double short_read = 0.0;
    /** Flip one payload byte, so the archive CRC32 check trips. */
    double corrupt = 0.0;
    /** Delay a write by delay_ms before letting it through. */
    double delay = 0.0;
    double delay_ms = 2.0;
    /** Stall a read: burn stall_ms, then fail with a Timeout. */
    double stall = 0.0;
    double stall_ms = 2.0;
    /** Drop the connection cold before a send (mid-quantum loss). */
    double disconnect = 0.0;

    /** Arm the schedule only from this operation ordinal on (lets a
     *  handshake complete before the chaos starts). */
    std::uint64_t start_op = 0;
    /** Stop injecting after this many faults in total (0 = no cap). */
    std::uint64_t max_faults = 0;
    /** Guaranteed fault-free operations after each fault, so a
     *  bounded retry budget can always mask the fault. */
    std::uint64_t min_gap_ops = 8;

    /** Read the "fault.transport.*" keys. */
    static TransportFaultOptions fromConfig(const Config &cfg);
};

/** The faults a transport schedule can inject. */
enum class TransportFaultKind : std::uint8_t
{
    None = 0,
    TornFrame,  ///< peer closes inside the payload
    ShortRead,  ///< peer closes inside the frame header
    Corrupt,    ///< one payload byte flipped (CRC trip)
    Delay,      ///< write delayed by delay_ms
    Stall,      ///< read burns stall_ms then times out
    Disconnect, ///< connection dropped before the send
    Oversize,   ///< length prefix forged past max_frame_bytes
};
constexpr std::size_t transport_fault_kinds = 8;

/** Render a fault kind for diagnostics. */
const char *toString(TransportFaultKind kind);

/**
 * The deterministic schedule deciding which transport operation
 * suffers which fault. One draw per operation, in operation order,
 * from a private seeded Rng — two runs with the same seed inject
 * the same faults at the same operations. A single schedule can be
 * shared across successive connections of one client (the operation
 * counter keeps running), which is what makes a whole chaos run
 * reproducible across reconnects.
 */
class TransportFaultSchedule
{
  public:
    TransportFaultSchedule() = default;
    /** @p stream separates independent schedules of one seed (the
     *  server gives each session its own stream). */
    explicit TransportFaultSchedule(const TransportFaultOptions &opts,
                                    std::uint64_t stream = 1);

    const TransportFaultOptions &options() const { return opts_; }

    /** Fault (or None) for the next frame send. */
    TransportFaultKind nextSend();
    /** Fault (or None) for the next frame-piece receive; @p header
     *  tells whether the read is the 12-byte frame header. */
    TransportFaultKind nextRecv(bool header);

    /** Record a fault injected outside the probability draw (the
     *  failNext*() test hooks), so the activity counters cover every
     *  injected fault regardless of how it was requested. */
    void noteForced(TransportFaultKind kind);

    /** @name Deterministic activity counters */
    /// @{
    std::uint64_t ops() const { return ops_; }
    std::uint64_t faults() const { return faults_; }
    std::uint64_t
    count(TransportFaultKind kind) const
    {
        return by_kind_[static_cast<std::size_t>(kind)];
    }
    /// @}

  private:
    /** One uniform draw against the cumulative probability bands of
     *  the kinds applicable to this operation. */
    TransportFaultKind
    draw(const std::pair<TransportFaultKind, double> *bands,
         std::size_t n);

    TransportFaultOptions opts_;
    Rng rng_{0x7a5, 1};
    std::uint64_t ops_ = 0;
    std::uint64_t faults_ = 0;
    std::uint64_t since_fault_ = ~std::uint64_t(0);
    std::array<std::uint64_t, transport_fault_kinds> by_kind_{};
};

class FaultInjector final : public noc::NetworkModel
{
  public:
    /** Decorate @p inner; does not take ownership. */
    FaultInjector(noc::NetworkModel &inner, FaultOptions opts);

    // NetworkModel facade: forwards to the inner model, applying the
    // configured faults.
    void inject(const noc::PacketPtr &pkt) override;
    void advanceTo(Tick t) override;
    void setDeliveryHandler(DeliveryHandler handler) override;
    void setEngine(StepEngine *engine) override;
    Tick curTime() const override;
    bool idle() const override;
    std::size_t numNodes() const override;
    std::optional<Accounting> accounting() const override;
    bool setNodeStalled(std::size_t node, bool stalled) override;
    void requestAbort() override;

    const FaultOptions &options() const { return opts_; }
    noc::NetworkModel &inner() { return inner_; }

    /** @name Fault activity counters (deterministic) */
    /// @{
    std::uint64_t dropped() const { return dropped_; }
    std::uint64_t delayed() const { return delayed_; }
    std::uint64_t poisoned() const { return poisoned_; }
    std::uint64_t aborted() const { return aborted_; }
    /// @}

    /** Checkpoint fault counters and held (delayed) packets. */
    void save(ArchiveWriter &aw) const;
    void restore(ArchiveReader &ar);

  private:
    void onInnerDelivery(const noc::PacketPtr &pkt);
    void releaseHeld(Tick t);

    noc::NetworkModel &inner_;
    FaultOptions opts_;
    DeliveryHandler handler_;

    /** Delayed packets waiting for their release tick. */
    std::vector<std::pair<Tick, noc::PacketPtr>> held_;

    std::uint64_t received_ = 0;
    std::uint64_t forwarded_up_ = 0;
    std::uint64_t deliveries_seen_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint64_t delayed_ = 0;
    std::uint64_t poisoned_ = 0;
    std::uint64_t aborted_ = 0;
    bool stall_engaged_ = false;
    /** Cooperative-cancellation flag (set cross-thread). */
    std::atomic<bool> abort_{false};
};

} // namespace rasim

#endif // RASIM_SIM_FAULT_INJECTOR_HH
