#include "sim/trace.hh"

#include <cstdlib>
#include <iostream>
#include <mutex>
#include <set>
#include <sstream>

namespace rasim
{

namespace Trace
{

namespace
{

std::set<std::string> &
flags()
{
    static std::set<std::string> *the_flags = [] {
        auto *f = new std::set<std::string>;
        if (const char *env = std::getenv("RASIM_TRACE")) {
            std::istringstream is(env);
            std::string item;
            while (std::getline(is, item, ','))
                if (!item.empty())
                    f->insert(item);
        }
        return f;
    }();
    return *the_flags;
}

std::mutex trace_mutex;

} // namespace

void
enable(const std::string &flag)
{
    std::lock_guard<std::mutex> lock(trace_mutex);
    flags().insert(flag);
}

void
disable(const std::string &flag)
{
    std::lock_guard<std::mutex> lock(trace_mutex);
    flags().erase(flag);
}

bool
enabled(const std::string &flag)
{
    std::lock_guard<std::mutex> lock(trace_mutex);
    return flags().count(flag) > 0;
}

void
output(const std::string &flag, Tick when, const std::string &msg)
{
    std::lock_guard<std::mutex> lock(trace_mutex);
    std::cout << when << ": [" << flag << "] " << msg << "\n";
}

} // namespace Trace

} // namespace rasim
