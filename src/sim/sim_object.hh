/**
 * @file
 * Base class of all simulated components.
 */

#ifndef RASIM_SIM_SIM_OBJECT_HH
#define RASIM_SIM_SIM_OBJECT_HH

#include <string>

#include "sim/clocked.hh"
#include "sim/types.hh"
#include "stats/group.hh"

namespace rasim
{

class Simulation;
class Config;
class EventQueue;

/**
 * A named simulated component. SimObjects register with the Simulation
 * at construction, form the statistics hierarchy (SimObject is a stats
 * Group), and get an init() hook called once before the first event is
 * serviced.
 */
class SimObject : public stats::Group, public Clocked
{
  public:
    /**
     * @param sim Owning simulation.
     * @param name Local name; hierarchical path comes from @p parent.
     * @param parent Parent component for the stats tree, or nullptr to
     *        attach directly under the simulation root.
     */
    SimObject(Simulation &sim, const std::string &name,
              SimObject *parent = nullptr);
    ~SimObject() override = default;

    /**
     * One-time initialisation after the whole component tree is built
     * and before the first event runs. Wiring between components that
     * needs every object constructed belongs here.
     */
    virtual void init() {}

    /** Local name (use path() for the fully qualified name). */
    const std::string &name() const { return groupName(); }

    Simulation &sim() const { return sim_; }

    /** Current simulated time. */
    Tick curTick() const;

    /** Global configuration shortcut. */
    const Config &config() const;

  private:
    Simulation &sim_;
};

} // namespace rasim

#endif // RASIM_SIM_SIM_OBJECT_HH
