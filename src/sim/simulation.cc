#include "sim/simulation.hh"

#include <utility>

#include "sim/logging.hh"
#include "sim/sim_object.hh"

namespace rasim
{

Simulation::Simulation(Config cfg)
    : config_(std::move(cfg)), eventq_("root.eventq"),
      stats_root_(nullptr, "system"),
      root_clock_("root_clock", config_.getUInt("sim.clock_period", 1)),
      seed_(config_.getUInt("sim.seed", 1))
{
}

Simulation::~Simulation() = default;

Rng
Simulation::makeRng(std::uint64_t stream) const
{
    return Rng(seed_ * 0x9e3779b97f4a7c15ULL + 0x243f6a8885a308d3ULL,
               stream);
}

void
Simulation::registerObject(SimObject *obj)
{
    if (initialized_)
        panic("component '", obj->name(),
              "' constructed after simulation start");
    objects_.push_back(obj);
}

void
Simulation::initAll()
{
    if (initialized_)
        return;
    initialized_ = true;
    // Init in construction order: parents were built before children.
    for (SimObject *obj : objects_)
        obj->init();
}

Tick
Simulation::run(Tick until)
{
    initAll();
    while (!exit_requested_ && !eventq_.empty() &&
           eventq_.nextTick() <= until) {
        eventq_.serviceOne();
    }
    if (!exit_requested_ && eventq_.curTick() < until &&
        eventq_.empty()) {
        // Queue drained before the horizon; stay at the last event time.
        return eventq_.curTick();
    }
    if (!exit_requested_ && eventq_.curTick() < until)
        eventq_.serviceUntil(until);
    return eventq_.curTick();
}

void
Simulation::exitSimLoop(const std::string &reason)
{
    exit_requested_ = true;
    exit_reason_ = reason;
}

void
Simulation::clearExit()
{
    exit_requested_ = false;
    exit_reason_.clear();
}

} // namespace rasim
