#include "sim/rng.hh"

#include <cmath>

namespace rasim
{

Rng::Rng(std::uint64_t seed, std::uint64_t stream)
    : state_(0), inc_((stream << 1u) | 1u)
{
    next();
    state_ += seed;
    next();
}

std::uint32_t
Rng::next()
{
    std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    std::uint32_t xorshifted =
        static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    std::uint32_t rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
}

std::uint64_t
Rng::next64()
{
    return (static_cast<std::uint64_t>(next()) << 32) | next();
}

double
Rng::uniform()
{
    // 53-bit mantissa from a 64-bit draw.
    return static_cast<double>(next64() >> 11) * 0x1.0p-53;
}

std::uint32_t
Rng::range(std::uint32_t n)
{
    // Lemire-style rejection to avoid modulo bias.
    std::uint32_t threshold = (-n) % n;
    for (;;) {
        std::uint32_t r = next();
        if (r >= threshold)
            return r % n;
    }
}

std::uint32_t
Rng::rangeInclusive(std::uint32_t lo, std::uint32_t hi)
{
    if (lo == 0 && hi == 0xffffffffu)
        return next();
    return lo + range(hi - lo + 1);
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

std::uint64_t
Rng::geometric(double p)
{
    if (p >= 1.0)
        return 0;
    double u = uniform();
    // Guard against log(0).
    if (u <= 0.0)
        u = 0x1.0p-53;
    return static_cast<std::uint64_t>(std::log(u) / std::log1p(-p));
}

double
Rng::exponential(double mean)
{
    double u = uniform();
    if (u <= 0.0)
        u = 0x1.0p-53;
    return -mean * std::log(u);
}

} // namespace rasim
