/**
 * @file
 * Execution engines for data-parallel simulation phases. A phase is a
 * loop over partition indices in which iteration i only touches
 * partition-i state (the caller's phase discipline guarantees this);
 * an engine decides where those iterations run — the calling thread,
 * a persistent worker pool, or (in the paper's setting) a GPU
 * coprocessor.
 *
 * Determinism contract: because every iteration is partition-local,
 * an engine may execute iterations in any order and on any thread
 * without changing simulation results. Anything that is *not*
 * partition-local (aggregate statistics, delivery callbacks, global
 * counters) must stay outside forEach() and be reduced in a fixed
 * index order so serial and parallel runs stay bit-identical.
 */

#ifndef RASIM_SIM_STEP_ENGINE_HH
#define RASIM_SIM_STEP_ENGINE_HH

#include <cstddef>
#include <functional>

namespace rasim
{

class StepEngine
{
  public:
    virtual ~StepEngine() = default;

    /**
     * Apply @p fn to every index in [0, n) exactly once. Iterations
     * may run concurrently but all complete before forEach() returns.
     * If any iteration throws, the first exception (by partition slot
     * order) is rethrown after the phase barrier; the engine stays
     * usable afterwards.
     */
    virtual void forEach(std::size_t n,
                         const std::function<void(std::size_t)> &fn) = 0;

    /**
     * Apply @p fn to contiguous, disjoint ranges that exactly cover
     * [0, n). Each index is inside exactly one range; ranges may run
     * concurrently but all complete before forRange() returns. This is
     * the batched counterpart of forEach(): a structure-of-arrays
     * kernel wants one call per worker over a contiguous index block
     * so it can stream through flat state, not one call per index.
     * The default executes the whole interval as a single range on
     * the calling thread, which satisfies the contract for any serial
     * engine.
     */
    virtual void
    forRange(std::size_t n,
             const std::function<void(std::size_t, std::size_t)> &fn)
    {
        if (n > 0)
            fn(0, n);
    }

    /** Human-readable engine name for logs and reports. */
    virtual const char *name() const = 0;
};

/** Plain sequential execution on the calling thread. */
class SerialEngine : public StepEngine
{
  public:
    void
    forEach(std::size_t n,
            const std::function<void(std::size_t)> &fn) override
    {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
    }

    const char *name() const override { return "serial"; }
};

} // namespace rasim

#endif // RASIM_SIM_STEP_ENGINE_HH
