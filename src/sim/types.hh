/**
 * @file
 * Fundamental simulation types shared by every rasim subsystem.
 */

#ifndef RASIM_SIM_TYPES_HH
#define RASIM_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace rasim
{

/**
 * Simulated time. One tick is one cycle of the reference (network) clock
 * domain in the default configuration; slower components express their
 * latencies as multiples via ClockDomain.
 */
using Tick = std::uint64_t;

/** Cycle count within a clock domain. */
using Cycle = std::uint64_t;

/** Largest representable tick; used as "never". */
constexpr Tick max_tick = std::numeric_limits<Tick>::max();

/** Identifier of a node (tile) on the on-chip network. */
using NodeId = std::uint32_t;

/** Identifier distinguishing packets for reassembly and statistics. */
using PacketId = std::uint64_t;

/** Physical memory address in the simulated target. */
using Addr = std::uint64_t;

/** Invalid node marker. */
constexpr NodeId invalid_node = std::numeric_limits<NodeId>::max();

} // namespace rasim

#endif // RASIM_SIM_TYPES_HH
