/**
 * @file
 * Clock domains and the Clocked mixin translating between cycles and
 * ticks.
 */

#ifndef RASIM_SIM_CLOCKED_HH
#define RASIM_SIM_CLOCKED_HH

#include <string>

#include "sim/eventq.hh"
#include "sim/types.hh"

namespace rasim
{

/**
 * A clock domain: a period in ticks shared by a set of components.
 * The default configuration runs the whole target at period 1 (one
 * tick per network cycle), but cores and memory may be placed in
 * slower domains.
 */
class ClockDomain
{
  public:
    explicit ClockDomain(std::string name, Tick period = 1);

    Tick period() const { return period_; }
    const std::string &name() const { return name_; }

    /** Tick of the first clock edge at or after @p t. */
    Tick edgeAtOrAfter(Tick t) const;

    /** Convert a cycle count to ticks. */
    Tick cyclesToTicks(Cycle c) const { return c * period_; }

    /** Cycles fully elapsed at tick @p t. */
    Cycle ticksToCycles(Tick t) const { return t / period_; }

  private:
    std::string name_;
    Tick period_;
};

/**
 * Mixin for components that operate on clock edges of a domain and
 * schedule their events aligned to those edges.
 */
class Clocked
{
  public:
    Clocked(EventQueue &eq, const ClockDomain &domain);

    /** Current cycle in this component's domain. */
    Cycle curCycle() const;

    /**
     * Tick of the clock edge @p cycles edges after "now", where an
     * edge exactly at the current tick counts as zero edges away.
     */
    Tick clockEdge(Cycle cycles = 0) const;

    Tick clockPeriod() const { return domain_.period(); }
    EventQueue &eventQueue() const { return eq_; }

  private:
    EventQueue &eq_;
    const ClockDomain &domain_;
};

} // namespace rasim

#endif // RASIM_SIM_CLOCKED_HH
