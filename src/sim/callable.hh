/**
 * @file
 * InlineCallable: a move-only, small-buffer-only `void()` callable for
 * the event hot path. Unlike std::function it never heap-allocates —
 * captures larger than the inline buffer are a compile error, which is
 * the point: scheduleLambda() runs millions of times per simulated
 * second and must not touch the allocator. The largest capture in the
 * tree today ([this, seq, msg, dst] in MessageHub) is under 56 bytes;
 * the buffer leaves headroom without bloating the pooled events that
 * embed one.
 */

#ifndef RASIM_SIM_CALLABLE_HH
#define RASIM_SIM_CALLABLE_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace rasim
{

class InlineCallable
{
  public:
    /** Inline capture budget, bytes. */
    static constexpr std::size_t capacity = 64;

    InlineCallable() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineCallable>>>
    InlineCallable(F &&f)
    {
        using Fn = std::decay_t<F>;
        static_assert(sizeof(Fn) <= capacity,
                      "capture too large for InlineCallable — shrink "
                      "the capture or raise the budget deliberately");
        static_assert(alignof(Fn) <= alignof(std::max_align_t),
                      "over-aligned capture");
        static_assert(std::is_nothrow_move_constructible_v<Fn>,
                      "capture must be nothrow-movable");
        new (buf_) Fn(std::forward<F>(f));
        ops_ = &opsFor<Fn>;
    }

    InlineCallable(InlineCallable &&o) noexcept : ops_(o.ops_)
    {
        if (ops_) {
            ops_->relocate(buf_, o.buf_);
            o.ops_ = nullptr;
        }
    }

    InlineCallable &
    operator=(InlineCallable &&o) noexcept
    {
        if (this != &o) {
            reset();
            ops_ = o.ops_;
            if (ops_) {
                ops_->relocate(buf_, o.buf_);
                o.ops_ = nullptr;
            }
        }
        return *this;
    }

    InlineCallable(const InlineCallable &) = delete;
    InlineCallable &operator=(const InlineCallable &) = delete;

    ~InlineCallable() { reset(); }

    explicit operator bool() const noexcept { return ops_ != nullptr; }

    void operator()() { ops_->invoke(buf_); }

    void
    reset() noexcept
    {
        if (ops_) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

  private:
    struct Ops
    {
        void (*invoke)(void *);
        /** Move-construct into dst from src, then destroy src. */
        void (*relocate)(void *dst, void *src);
        void (*destroy)(void *);
    };

    template <typename Fn>
    static constexpr Ops opsFor = {
        [](void *p) { (*std::launder(static_cast<Fn *>(p)))(); },
        [](void *dst, void *src) {
            Fn *s = std::launder(static_cast<Fn *>(src));
            new (dst) Fn(std::move(*s));
            s->~Fn();
        },
        [](void *p) { std::launder(static_cast<Fn *>(p))->~Fn(); },
    };

    alignas(std::max_align_t) unsigned char buf_[capacity];
    const Ops *ops_ = nullptr;
};

} // namespace rasim

#endif // RASIM_SIM_CALLABLE_HH
