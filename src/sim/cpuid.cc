#include "sim/cpuid.hh"

#include "sim/logging.hh"

namespace rasim
{
namespace cpuid
{

namespace
{

enum class Override : int
{
    None,
    ForceOff,
    ForceOn,
};

Override host_override = Override::None;

bool
probeAvx2()
{
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_cpu_supports("avx2");
#else
    return false;
#endif
}

} // namespace

const char *
simdLevelName(SimdLevel level)
{
    switch (level) {
      case SimdLevel::Scalar:
        return "scalar";
      case SimdLevel::Avx2:
        return "avx2";
    }
    return "unknown";
}

bool
simdCompiledIn()
{
#if defined(RASIM_SIMD_AVX2)
    return true;
#else
    return false;
#endif
}

bool
hostHasAvx2()
{
    if (host_override != Override::None)
        return host_override == Override::ForceOn;
    static const bool has = probeAvx2();
    return has;
}

SimdLevel
resolveSimdLevel(const std::string &requested)
{
    if (requested == "scalar")
        return SimdLevel::Scalar;
    if (requested == "avx2") {
        if (!simdCompiledIn())
            fatal("kernel.simd=avx2 requested but this build has no "
                  "AVX2 kernel (configure with -DRASIM_SIMD=on on an "
                  "x86-64 toolchain)");
        if (!hostHasAvx2())
            fatal("kernel.simd=avx2 requested but this CPU does not "
                  "support AVX2; use kernel.simd=auto for a scalar "
                  "fallback");
        return SimdLevel::Avx2;
    }
    if (requested == "auto") {
        return (simdCompiledIn() && hostHasAvx2()) ? SimdLevel::Avx2
                                                   : SimdLevel::Scalar;
    }
    fatal("unknown kernel.simd value '", requested,
          "' (expected auto, scalar or avx2)");
}

void
setHostOverrideForTest(bool has)
{
    host_override = has ? Override::ForceOn : Override::ForceOff;
}

void
clearHostOverrideForTest()
{
    host_override = Override::None;
}

} // namespace cpuid
} // namespace rasim
