#include "sim/parallel_engine.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace rasim
{

namespace
{

/** Bounded busy-wait before blocking; keeps phase handoff cheap when
 *  phases arrive back to back, without burning CPU across quanta. */
constexpr int spin_limit = 4096;

inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    std::this_thread::yield();
#endif
}

} // namespace

int
ParallelEngine::defaultWorkerCount()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 1 ? static_cast<int>(hw - 1) : 1;
}

ParallelEngine::ParallelEngine(int num_workers)
{
    if (num_workers < 0)
        fatal("parallel engine needs a non-negative worker count");
    errors_.resize(num_workers + 1);
    workers_.reserve(num_workers);
    for (int i = 0; i < num_workers; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ParallelEngine::~ParallelEngine()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_.store(true, std::memory_order_release);
    }
    start_cv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
ParallelEngine::runPartition(int slot, std::size_t n,
                             const std::function<void(std::size_t)> *fn,
                             const std::function<void(std::size_t,
                                                      std::size_t)>
                                 *range_fn,
                             std::exception_ptr &error) noexcept
{
    // Static block partition over (workers + caller) slots: slot 0 is
    // the caller. Determinism does not depend on the partition shape —
    // the phase discipline isolates every index — but static blocks
    // keep cache behaviour stable across phases, and a range phase
    // receives its whole block in one call so it can stream through
    // contiguous structure-of-arrays state.
    std::size_t slots = workers_.size() + 1;
    std::size_t begin = n * slot / slots;
    std::size_t end = n * (slot + 1) / slots;
    try {
        if (range_fn) {
            if (begin < end)
                (*range_fn)(begin, end);
        } else {
            for (std::size_t i = begin; i < end; ++i)
                (*fn)(i);
        }
    } catch (...) {
        // Remaining indices of this partition are abandoned; the
        // exception resurfaces from forEach() after the barrier so
        // the pool never deadlocks on a throwing phase.
        error = std::current_exception();
    }
}

void
ParallelEngine::workerLoop(int worker_index)
{
    std::uint64_t seen = 0;
    for (;;) {
        // Fast path: spin briefly for the next phase publication.
        int spins = 0;
        while (generation_.load(std::memory_order_acquire) == seen &&
               !shutdown_.load(std::memory_order_acquire) &&
               spins < spin_limit) {
            ++spins;
            cpuRelax();
        }
        std::size_t n;
        const std::function<void(std::size_t)> *fn;
        const std::function<void(std::size_t, std::size_t)> *range_fn;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            start_cv_.wait(lock, [this, seen] {
                return shutdown_.load(std::memory_order_relaxed) ||
                       generation_.load(std::memory_order_relaxed) !=
                           seen;
            });
            if (generation_.load(std::memory_order_relaxed) == seen)
                return; // shutdown with no new phase pending
            seen = generation_.load(std::memory_order_relaxed);
            n = job_n_;
            fn = job_fn_;
            range_fn = job_range_fn_;
        }

        runPartition(worker_index + 1, n, fn, range_fn,
                     errors_[worker_index + 1]);

        if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            // Lock-then-notify so the caller's predicate check cannot
            // miss the final decrement.
            { std::lock_guard<std::mutex> lock(mutex_); }
            done_cv_.notify_one();
        }
    }
}

void
ParallelEngine::runPhase(std::size_t n,
                         const std::function<void(std::size_t)> *fn,
                         const std::function<void(std::size_t,
                                                  std::size_t)>
                             *range_fn)
{
    std::fill(errors_.begin(), errors_.end(), nullptr);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_n_ = n;
        job_fn_ = fn;
        job_range_fn_ = range_fn;
        pending_.store(static_cast<int>(workers_.size()),
                       std::memory_order_relaxed);
        generation_.fetch_add(1, std::memory_order_release);
    }
    start_cv_.notify_all();

    runPartition(0, n, fn, range_fn, errors_[0]);

    int spins = 0;
    while (pending_.load(std::memory_order_acquire) != 0 &&
           spins < spin_limit) {
        ++spins;
        cpuRelax();
    }
    if (pending_.load(std::memory_order_acquire) != 0) {
        std::unique_lock<std::mutex> lock(mutex_);
        done_cv_.wait(lock, [this] {
            return pending_.load(std::memory_order_relaxed) == 0;
        });
    }

    for (const std::exception_ptr &e : errors_)
        if (e)
            std::rethrow_exception(e);
}

void
ParallelEngine::forEach(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    ++phases_;
    if (workers_.empty()) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    runPhase(n, &fn, nullptr);
}

void
ParallelEngine::forRange(std::size_t n,
                         const std::function<void(std::size_t,
                                                  std::size_t)> &fn)
{
    ++phases_;
    if (workers_.empty()) {
        if (n > 0)
            fn(0, n);
        return;
    }
    runPhase(n, nullptr, &fn);
}

} // namespace rasim
