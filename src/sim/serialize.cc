#include "sim/serialize.hh"

#include <cstring>
#include <ostream>
#include <utility>

#include "sim/logging.hh"
#include "stats/distribution.hh"
#include "stats/group.hh"
#include "stats/stat.hh"

namespace rasim
{

namespace
{

/** Stat type tags recorded per stat so restore validates alignment. */
enum StatKind : std::uint8_t
{
    kind_scalar = 0,
    kind_average = 1,
    kind_distribution = 2,
    kind_histogram = 3,
    kind_value = 4,
};

std::uint32_t crc_table[256];
bool crc_table_ready = false;

void
buildCrcTable()
{
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        crc_table[i] = c;
    }
    crc_table_ready = true;
}

std::uint64_t crc64_table[256];
bool crc64_table_ready = false;

void
buildCrc64Table()
{
    for (std::uint64_t i = 0; i < 256; ++i) {
        std::uint64_t c = i;
        for (int k = 0; k < 8; ++k) {
            c = (c & 1u) ? 0xc96c5795d7870f42ull ^ (c >> 1) : c >> 1;
        }
        crc64_table[i] = c;
    }
    crc64_table_ready = true;
}

} // namespace

std::uint32_t
crc32(const void *data, std::size_t len)
{
    if (!crc_table_ready)
        buildCrcTable();
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint32_t c = 0xffffffffu;
    for (std::size_t i = 0; i < len; ++i)
        c = crc_table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

std::uint64_t
crc64(const void *data, std::size_t len)
{
    if (!crc64_table_ready)
        buildCrc64Table();
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint64_t c = ~0ull;
    for (std::size_t i = 0; i < len; ++i)
        c = crc64_table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
    return ~c;
}

std::uint64_t
crc64(const std::string &bytes)
{
    return crc64(bytes.data(), bytes.size());
}

// ---------------------------------------------------------------------
// ArchiveWriter
// ---------------------------------------------------------------------

void
ArchiveWriter::raw(const void *p, std::size_t n)
{
    if (finished_)
        panic("ArchiveWriter: write after finish()");
    body_.append(static_cast<const char *>(p), n);
}

void
ArchiveWriter::beginSection(const std::string &tag)
{
    putU32(static_cast<std::uint32_t>(tag.size()));
    raw(tag.data(), tag.size());
    open_.push_back(body_.size());
    std::uint64_t placeholder = 0;
    raw(&placeholder, sizeof(placeholder));
}

void
ArchiveWriter::endSection()
{
    if (open_.empty())
        panic("ArchiveWriter: endSection() without open section");
    std::size_t at = open_.back();
    open_.pop_back();
    std::uint64_t len = body_.size() - (at + sizeof(std::uint64_t));
    std::memcpy(&body_[at], &len, sizeof(len));
}

void
ArchiveWriter::putBool(bool v)
{
    putU8(v ? 1 : 0);
}

void
ArchiveWriter::putU8(std::uint8_t v)
{
    raw(&v, sizeof(v));
}

void
ArchiveWriter::putU32(std::uint32_t v)
{
    raw(&v, sizeof(v));
}

void
ArchiveWriter::putU64(std::uint64_t v)
{
    raw(&v, sizeof(v));
}

void
ArchiveWriter::putI64(std::int64_t v)
{
    raw(&v, sizeof(v));
}

void
ArchiveWriter::putDouble(double v)
{
    raw(&v, sizeof(v));
}

void
ArchiveWriter::putString(const std::string &s)
{
    putU64(s.size());
    raw(s.data(), s.size());
}

std::string
ArchiveWriter::finish()
{
    if (!open_.empty())
        panic("ArchiveWriter: finish() with ", open_.size(),
              " unclosed section(s)");
    finished_ = true;
    std::string out;
    out.reserve(sizeof(magic) + sizeof(format_version) + body_.size() +
                sizeof(std::uint32_t));
    out.append(magic, sizeof(magic));
    std::uint32_t version = format_version;
    out.append(reinterpret_cast<const char *>(&version), sizeof(version));
    out.append(body_);
    std::uint32_t crc = crc32(out.data(), out.size());
    out.append(reinterpret_cast<const char *>(&crc), sizeof(crc));
    return out;
}

void
ArchiveWriter::writeTo(std::ostream &os)
{
    std::string bytes = finish();
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ---------------------------------------------------------------------
// ArchiveReader
// ---------------------------------------------------------------------

ArchiveReader::ArchiveReader(std::string bytes) : bytes_(std::move(bytes))
{
    constexpr std::size_t header =
        sizeof(ArchiveWriter::magic) + sizeof(std::uint32_t);
    constexpr std::size_t trailer = sizeof(std::uint32_t);
    if (bytes_.size() < header + trailer) {
        error_ = "archive truncated (" + std::to_string(bytes_.size()) +
                 " bytes)";
        return;
    }
    if (std::memcmp(bytes_.data(), ArchiveWriter::magic,
                    sizeof(ArchiveWriter::magic)) != 0) {
        error_ = "bad magic (not a rasim checkpoint)";
        return;
    }
    std::memcpy(&version_, bytes_.data() + sizeof(ArchiveWriter::magic),
                sizeof(version_));
    if (version_ != ArchiveWriter::format_version) {
        error_ = "unsupported archive version " + std::to_string(version_) +
                 " (expected " +
                 std::to_string(ArchiveWriter::format_version) + ")";
        return;
    }
    std::uint32_t stored = 0;
    std::memcpy(&stored, bytes_.data() + bytes_.size() - trailer,
                sizeof(stored));
    std::uint32_t computed = crc32(bytes_.data(), bytes_.size() - trailer);
    if (stored != computed) {
        error_ = "CRC mismatch (archive corrupted)";
        return;
    }
    pos_ = header;
    end_ = bytes_.size() - trailer;
}

void
ArchiveReader::need(std::size_t n)
{
    if (!ok())
        panic("ArchiveReader: read from invalid archive (", error_, ")");
    std::size_t limit = section_ends_.empty() ? end_ : section_ends_.back();
    if (pos_ + n > limit)
        panic("ArchiveReader: read of ", n, " bytes overruns ",
              section_ends_.empty() ? "archive" : "section", " end");
}

void
ArchiveReader::raw(void *p, std::size_t n)
{
    need(n);
    std::memcpy(p, bytes_.data() + pos_, n);
    pos_ += n;
}

void
ArchiveReader::expectSection(const std::string &tag)
{
    std::uint32_t tag_len = getU32();
    need(tag_len);
    std::string found(bytes_.data() + pos_, tag_len);
    pos_ += tag_len;
    if (found != tag)
        panic("ArchiveReader: expected section '", tag, "', found '",
              found, "'");
    std::uint64_t payload = getU64();
    std::size_t limit = section_ends_.empty() ? end_ : section_ends_.back();
    if (pos_ + payload > limit)
        panic("ArchiveReader: section '", tag, "' length ", payload,
              " overruns enclosing bounds");
    section_ends_.push_back(pos_ + payload);
}

void
ArchiveReader::endSection()
{
    if (section_ends_.empty())
        panic("ArchiveReader: endSection() without open section");
    if (pos_ != section_ends_.back())
        panic("ArchiveReader: section closed with ",
              section_ends_.back() - pos_, " unread byte(s)");
    section_ends_.pop_back();
}

bool
ArchiveReader::getBool()
{
    return getU8() != 0;
}

std::uint8_t
ArchiveReader::getU8()
{
    std::uint8_t v;
    raw(&v, sizeof(v));
    return v;
}

std::uint32_t
ArchiveReader::getU32()
{
    std::uint32_t v;
    raw(&v, sizeof(v));
    return v;
}

std::uint64_t
ArchiveReader::getU64()
{
    std::uint64_t v;
    raw(&v, sizeof(v));
    return v;
}

std::int64_t
ArchiveReader::getI64()
{
    std::int64_t v;
    raw(&v, sizeof(v));
    return v;
}

double
ArchiveReader::getDouble()
{
    double v;
    raw(&v, sizeof(v));
    return v;
}

std::string
ArchiveReader::getString()
{
    std::uint64_t len = getU64();
    need(len);
    std::string s(bytes_.data() + pos_, len);
    pos_ += len;
    return s;
}

// ---------------------------------------------------------------------
// Statistics tree serialization
// ---------------------------------------------------------------------

namespace
{

void
saveGroup(ArchiveWriter &aw, const stats::Group &g)
{
    aw.putU64(g.statList().size());
    for (const stats::Stat *s : g.statList()) {
        aw.putString(s->name());
        if (auto *sc = dynamic_cast<const stats::Scalar *>(s)) {
            aw.putU8(kind_scalar);
            aw.putDouble(sc->value());
        } else if (auto *av = dynamic_cast<const stats::Average *>(s)) {
            aw.putU8(kind_average);
            aw.putDouble(av->sum());
            aw.putU64(av->count());
        } else if (auto *d =
                       dynamic_cast<const stats::Distribution *>(s)) {
            aw.putU8(kind_distribution);
            aw.putU64(d->count());
            aw.putDouble(d->sum());
            aw.putDouble(d->sumSq());
            aw.putDouble(d->rawMin());
            aw.putDouble(d->rawMax());
        } else if (auto *h = dynamic_cast<const stats::Histogram *>(s)) {
            aw.putU8(kind_histogram);
            aw.putU64(h->numBuckets());
            for (std::size_t i = 0; i < h->numBuckets(); ++i)
                aw.putU64(h->bucketCount(i));
            aw.putU64(h->overflow());
            aw.putU64(h->totalCount());
        } else {
            // Derived values recompute from restored state.
            aw.putU8(kind_value);
        }
    }
    aw.putU64(g.children().size());
    for (const stats::Group *c : g.children())
        saveGroup(aw, *c);
}

void
restoreGroup(ArchiveReader &ar, stats::Group &g)
{
    std::uint64_t nstats = ar.getU64();
    if (nstats != g.statList().size())
        panic("stats restore: group '", g.path(), "' has ",
              g.statList().size(), " stats, archive has ", nstats);
    for (stats::Stat *s : g.statList()) {
        std::string name = ar.getString();
        if (name != s->name())
            panic("stats restore: expected stat '", s->name(),
                  "' in group '", g.path(), "', archive has '", name, "'");
        std::uint8_t kind = ar.getU8();
        if (auto *sc = dynamic_cast<stats::Scalar *>(s)) {
            if (kind != kind_scalar)
                panic("stats restore: kind mismatch for '", name, "'");
            sc->set(ar.getDouble());
        } else if (auto *av = dynamic_cast<stats::Average *>(s)) {
            if (kind != kind_average)
                panic("stats restore: kind mismatch for '", name, "'");
            double sum = ar.getDouble();
            std::uint64_t count = ar.getU64();
            av->setState(sum, count);
        } else if (auto *d = dynamic_cast<stats::Distribution *>(s)) {
            if (kind != kind_distribution)
                panic("stats restore: kind mismatch for '", name, "'");
            std::uint64_t count = ar.getU64();
            double sum = ar.getDouble();
            double sum_sq = ar.getDouble();
            double mn = ar.getDouble();
            double mx = ar.getDouble();
            d->setState(count, sum, sum_sq, mn, mx);
        } else if (auto *h = dynamic_cast<stats::Histogram *>(s)) {
            if (kind != kind_histogram)
                panic("stats restore: kind mismatch for '", name, "'");
            std::uint64_t nb = ar.getU64();
            if (nb != h->numBuckets())
                panic("stats restore: histogram '", name, "' has ",
                      h->numBuckets(), " buckets, archive has ", nb);
            std::vector<std::uint64_t> buckets(nb);
            for (auto &b : buckets)
                b = ar.getU64();
            std::uint64_t overflow = ar.getU64();
            std::uint64_t total = ar.getU64();
            h->setState(std::move(buckets), overflow, total);
        } else {
            if (kind != kind_value)
                panic("stats restore: kind mismatch for '", name, "'");
        }
    }
    std::uint64_t nchildren = ar.getU64();
    if (nchildren != g.children().size())
        panic("stats restore: group '", g.path(), "' has ",
              g.children().size(), " children, archive has ", nchildren);
    for (stats::Group *c : g.children())
        restoreGroup(ar, *c);
}

} // namespace

void
saveStats(ArchiveWriter &aw, const stats::Group &root)
{
    aw.beginSection("stats");
    saveGroup(aw, root);
    aw.endSection();
}

void
restoreStats(ArchiveReader &ar, stats::Group &root)
{
    ar.expectSection("stats");
    restoreGroup(ar, root);
    ar.endSection();
}

} // namespace rasim
