#include "sim/config.hh"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "sim/logging.hh"

namespace rasim
{

namespace
{

std::string
trim(const std::string &s)
{
    auto b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    auto e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

} // namespace

void
Config::set(const std::string &key, const std::string &value)
{
    values_[key] = value;
}

void
Config::set(const std::string &key, std::int64_t value)
{
    values_[key] = std::to_string(value);
}

void
Config::set(const std::string &key, std::uint64_t value)
{
    values_[key] = std::to_string(value);
}

void
Config::set(const std::string &key, int value)
{
    values_[key] = std::to_string(value);
}

void
Config::set(const std::string &key, double value)
{
    std::ostringstream os;
    os.precision(17);
    os << value;
    values_[key] = os.str();
}

void
Config::set(const std::string &key, bool value)
{
    values_[key] = value ? "true" : "false";
}

bool
Config::has(const std::string &key) const
{
    read_.insert(key);
    return values_.count(key) > 0;
}

const std::string *
Config::find(const std::string &key) const
{
    read_.insert(key);
    auto it = values_.find(key);
    return it == values_.end() ? nullptr : &it->second;
}

std::string
Config::getString(const std::string &key, const std::string &dflt) const
{
    const std::string *v = find(key);
    return v ? *v : dflt;
}

std::int64_t
Config::getInt(const std::string &key, std::int64_t dflt) const
{
    const std::string *v = find(key);
    if (!v)
        return dflt;
    try {
        std::size_t pos = 0;
        std::int64_t r = std::stoll(*v, &pos, 0);
        if (pos != v->size())
            throw std::invalid_argument(*v);
        return r;
    } catch (const std::exception &) {
        fatal("config key '", key, "': '", *v, "' is not an integer");
    }
}

std::uint64_t
Config::getUInt(const std::string &key, std::uint64_t dflt) const
{
    const std::string *v = find(key);
    if (!v)
        return dflt;
    try {
        std::size_t pos = 0;
        if (!v->empty() && (*v)[0] == '-')
            throw std::invalid_argument(*v);
        std::uint64_t r = std::stoull(*v, &pos, 0);
        if (pos != v->size())
            throw std::invalid_argument(*v);
        return r;
    } catch (const std::exception &) {
        fatal("config key '", key, "': '", *v,
              "' is not an unsigned integer");
    }
}

double
Config::getDouble(const std::string &key, double dflt) const
{
    const std::string *v = find(key);
    if (!v)
        return dflt;
    try {
        std::size_t pos = 0;
        double r = std::stod(*v, &pos);
        if (pos != v->size())
            throw std::invalid_argument(*v);
        return r;
    } catch (const std::exception &) {
        fatal("config key '", key, "': '", *v, "' is not a number");
    }
}

bool
Config::getBool(const std::string &key, bool dflt) const
{
    const std::string *v = find(key);
    if (!v)
        return dflt;
    std::string s = *v;
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (s == "true" || s == "1" || s == "yes" || s == "on")
        return true;
    if (s == "false" || s == "0" || s == "no" || s == "off")
        return false;
    fatal("config key '", key, "': '", *v, "' is not a boolean");
}

std::string
Config::requireString(const std::string &key) const
{
    const std::string *v = find(key);
    if (!v)
        fatal("required config key '", key, "' is missing");
    return *v;
}

std::uint64_t
Config::requireUInt(const std::string &key) const
{
    if (!has(key))
        fatal("required config key '", key, "' is missing");
    return getUInt(key, 0);
}

void
Config::parseArg(const std::string &arg)
{
    auto eq = arg.find('=');
    if (eq == std::string::npos || eq == 0)
        fatal("malformed config argument '", arg, "' (want key=value)");
    set(trim(arg.substr(0, eq)), trim(arg.substr(eq + 1)));
}

void
Config::parseArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a.find('=') != std::string::npos)
            parseArg(a);
    }
}

void
Config::loadFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open config file '", path, "'");
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;
        auto eq = line.find('=');
        if (eq == std::string::npos)
            fatal("config file '", path, "' line ", lineno,
                  ": missing '='");
        set(trim(line.substr(0, eq)), trim(line.substr(eq + 1)));
    }
}

std::vector<std::string>
Config::keysWithPrefix(const std::string &prefix) const
{
    std::vector<std::string> out;
    for (const auto &[k, v] : values_)
        if (k.rfind(prefix, 0) == 0)
            out.push_back(k);
    return out;
}

std::vector<std::string>
Config::unreadKeysWithPrefix(const std::string &prefix) const
{
    std::vector<std::string> out;
    for (const auto &[k, v] : values_)
        if (k.rfind(prefix, 0) == 0 && read_.count(k) == 0)
            out.push_back(k);
    return out;
}

void
Config::warnUnread(const std::vector<std::string> &prefixes) const
{
    for (const std::string &prefix : prefixes)
        for (const std::string &k : unreadKeysWithPrefix(prefix))
            warn("unknown config key '", k,
                 "' was never consulted (misspelled?)");
}

std::string
Config::toString() const
{
    std::ostringstream os;
    for (const auto &[k, v] : values_)
        os << k << " = " << v << "\n";
    return os.str();
}

} // namespace rasim
