#include "sim/fault_injector.hh"

#include <algorithm>
#include <chrono>
#include <thread>

#include "sim/config.hh"
#include "sim/logging.hh"

namespace rasim
{

FaultOptions
FaultOptions::fromConfig(const Config &cfg)
{
    FaultOptions o;
    o.enabled = cfg.getBool("fault.enabled", false);
    o.drop_every = cfg.getUInt("fault.drop_every", 0);
    o.delay_every = cfg.getUInt("fault.delay_every", 0);
    o.delay_cycles = cfg.getUInt("fault.delay_cycles", 64);
    o.stall_node = static_cast<int>(cfg.getInt("fault.stall_node", -1));
    o.stall_from = cfg.getUInt("fault.stall_from", 0);
    o.stall_until = cfg.getUInt("fault.stall_until", 0);
    o.freeze_from = cfg.getUInt("fault.freeze_from", 0);
    o.freeze_until = cfg.getUInt("fault.freeze_until", 0);
    o.poison_every = cfg.getUInt("fault.poison_every", 0);
    o.poison_offset = cfg.getUInt("fault.poison_offset", 10000);
    o.hang_ms = cfg.getUInt("fault.hang_ms", 0);
    o.hang_from = cfg.getUInt("fault.hang_from", 0);
    o.hang_until = cfg.getUInt("fault.hang_until", 0);
    if (o.delay_every > 0 && o.delay_cycles == 0)
        fatal("fault.delay_cycles must be positive when delays are on");
    if (o.poison_every > 0 && o.poison_offset == 0)
        fatal("fault.poison_offset must be positive when poisoning");
    return o;
}

FaultInjector::FaultInjector(noc::NetworkModel &inner, FaultOptions opts)
    : inner_(inner), opts_(opts)
{
    inner_.setDeliveryHandler(
        [this](const noc::PacketPtr &pkt) { onInnerDelivery(pkt); });
}

void
FaultInjector::inject(const noc::PacketPtr &pkt)
{
    ++received_;
    if (opts_.drop_every > 0 && received_ % opts_.drop_every == 0) {
        ++dropped_;
        return;
    }
    if (opts_.delay_every > 0 && received_ % opts_.delay_every == 0) {
        ++delayed_;
        held_.emplace_back(pkt->inject_tick + opts_.delay_cycles, pkt);
        return;
    }
    inner_.inject(pkt);
}

void
FaultInjector::releaseHeld(Tick t)
{
    // Stable order: release in (tick, id) order so a run is exactly
    // reproducible regardless of how many packets share a release tick.
    std::sort(held_.begin(), held_.end(),
              [](const auto &a, const auto &b) {
                  if (a.first != b.first)
                      return a.first < b.first;
                  return a.second->id < b.second->id;
              });
    // Advance the inner network up to each release point before
    // injecting: the inner model treats inject ticks in its past as
    // "now", so injecting without the advance would let a held packet
    // re-enter (and be delivered) before its delay expired.
    std::size_t n = 0;
    while (n < held_.size() && held_[n].first <= t) {
        Tick release = held_[n].first;
        if (release > inner_.curTime())
            inner_.advanceTo(release);
        while (n < held_.size() && held_[n].first == release)
            inner_.inject(held_[n++].second);
    }
    held_.erase(held_.begin(), held_.begin() + n);
}

void
FaultInjector::advanceTo(Tick t)
{
    abort_.store(false, std::memory_order_relaxed);

    // Engage/release the router stall at boundary granularity.
    if (opts_.stall_node >= 0) {
        if (!stall_engaged_ && t >= opts_.stall_from) {
            inner_.setNodeStalled(
                static_cast<std::size_t>(opts_.stall_node), true);
            stall_engaged_ = true;
        }
        if (stall_engaged_ && opts_.stall_until > 0 &&
            t >= opts_.stall_until) {
            inner_.setNodeStalled(
                static_cast<std::size_t>(opts_.stall_node), false);
            stall_engaged_ = false;
        }
    }

    // Wall-clock hang, honouring cooperative cancellation.
    if (opts_.hang_ms > 0 && t >= opts_.hang_from &&
        (opts_.hang_until == 0 || t <= opts_.hang_until)) {
        auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(opts_.hang_ms);
        while (std::chrono::steady_clock::now() < deadline) {
            if (abort_.load(std::memory_order_relaxed)) {
                ++aborted_;
                return; // abandon the quantum without advancing
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
    }

    // Frozen: the backend makes no progress inside the window (held
    // packets stay held — releasing them would advance the inner net).
    if (opts_.freeze_from > 0 && t >= opts_.freeze_from &&
        (opts_.freeze_until == 0 || t < opts_.freeze_until)) {
        return;
    }

    releaseHeld(t);
    inner_.advanceTo(t);
}

void
FaultInjector::onInnerDelivery(const noc::PacketPtr &pkt)
{
    ++deliveries_seen_;
    if (opts_.poison_every > 0 &&
        deliveries_seen_ % opts_.poison_every == 0) {
        pkt->deliver_tick += opts_.poison_offset;
        ++poisoned_;
    }
    ++forwarded_up_;
    if (handler_)
        handler_(pkt);
}

void
FaultInjector::setDeliveryHandler(DeliveryHandler handler)
{
    handler_ = std::move(handler);
}

void
FaultInjector::setEngine(StepEngine *engine)
{
    inner_.setEngine(engine);
}

Tick
FaultInjector::curTime() const
{
    return inner_.curTime();
}

bool
FaultInjector::idle() const
{
    return held_.empty() && inner_.idle();
}

std::size_t
FaultInjector::numNodes() const
{
    return inner_.numNodes();
}

std::optional<noc::NetworkModel::Accounting>
FaultInjector::accounting() const
{
    auto inner_acc = inner_.accounting();
    if (!inner_acc)
        return std::nullopt;
    // Report what the bridge handed *us*: dropped packets are neither
    // delivered nor in flight, so they surface as a conservation
    // violation — by design.
    Accounting acc;
    acc.injected = received_;
    acc.delivered = forwarded_up_;
    acc.in_flight = inner_acc->in_flight + held_.size();
    return acc;
}

bool
FaultInjector::setNodeStalled(std::size_t node, bool stalled)
{
    return inner_.setNodeStalled(node, stalled);
}

void
FaultInjector::requestAbort()
{
    abort_.store(true, std::memory_order_relaxed);
    inner_.requestAbort();
}

void
FaultInjector::save(ArchiveWriter &aw) const
{
    aw.beginSection("fault");
    aw.putU64(received_);
    aw.putU64(forwarded_up_);
    aw.putU64(deliveries_seen_);
    aw.putU64(dropped_);
    aw.putU64(delayed_);
    aw.putU64(poisoned_);
    aw.putU64(aborted_);
    aw.putBool(stall_engaged_);
    aw.putU64(held_.size());
    for (const auto &[tick, pkt] : held_) {
        aw.putU64(tick);
        noc::savePacket(aw, *pkt);
    }
    aw.endSection();
}

void
FaultInjector::restore(ArchiveReader &ar)
{
    ar.expectSection("fault");
    received_ = ar.getU64();
    forwarded_up_ = ar.getU64();
    deliveries_seen_ = ar.getU64();
    dropped_ = ar.getU64();
    delayed_ = ar.getU64();
    poisoned_ = ar.getU64();
    aborted_ = ar.getU64();
    stall_engaged_ = ar.getBool();
    held_.clear();
    std::uint64_t n = ar.getU64();
    for (std::uint64_t i = 0; i < n; ++i) {
        Tick tick = ar.getU64();
        held_.emplace_back(tick, noc::restorePacket(ar));
    }
    ar.endSection();
}

} // namespace rasim
