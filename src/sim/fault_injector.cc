#include "sim/fault_injector.hh"

#include <algorithm>
#include <chrono>
#include <thread>

#include "sim/config.hh"
#include "sim/logging.hh"

namespace rasim
{

FaultOptions
FaultOptions::fromConfig(const Config &cfg)
{
    FaultOptions o;
    o.enabled = cfg.getBool("fault.enabled", false);
    o.drop_every = cfg.getUInt("fault.drop_every", 0);
    o.delay_every = cfg.getUInt("fault.delay_every", 0);
    o.delay_cycles = cfg.getUInt("fault.delay_cycles", 64);
    o.stall_node = static_cast<int>(cfg.getInt("fault.stall_node", -1));
    o.stall_from = cfg.getUInt("fault.stall_from", 0);
    o.stall_until = cfg.getUInt("fault.stall_until", 0);
    o.freeze_from = cfg.getUInt("fault.freeze_from", 0);
    o.freeze_until = cfg.getUInt("fault.freeze_until", 0);
    o.poison_every = cfg.getUInt("fault.poison_every", 0);
    o.poison_offset = cfg.getUInt("fault.poison_offset", 10000);
    o.hang_ms = cfg.getUInt("fault.hang_ms", 0);
    o.hang_from = cfg.getUInt("fault.hang_from", 0);
    o.hang_until = cfg.getUInt("fault.hang_until", 0);
    if (o.delay_every > 0 && o.delay_cycles == 0)
        fatal("fault.delay_cycles must be positive when delays are on");
    if (o.poison_every > 0 && o.poison_offset == 0)
        fatal("fault.poison_offset must be positive when poisoning");
    return o;
}

TransportFaultOptions
TransportFaultOptions::fromConfig(const Config &cfg)
{
    TransportFaultOptions o;
    o.enabled = cfg.getBool("fault.transport.enabled", false);
    o.seed = cfg.getUInt("fault.transport.seed", o.seed);
    o.torn_frame = cfg.getDouble("fault.transport.torn_frame", 0.0);
    o.short_read = cfg.getDouble("fault.transport.short_read", 0.0);
    o.corrupt = cfg.getDouble("fault.transport.corrupt", 0.0);
    o.delay = cfg.getDouble("fault.transport.delay", 0.0);
    o.delay_ms = cfg.getDouble("fault.transport.delay_ms", o.delay_ms);
    o.stall = cfg.getDouble("fault.transport.stall", 0.0);
    o.stall_ms = cfg.getDouble("fault.transport.stall_ms", o.stall_ms);
    o.disconnect = cfg.getDouble("fault.transport.disconnect", 0.0);
    o.start_op = cfg.getUInt("fault.transport.start_op", 0);
    o.max_faults = cfg.getUInt("fault.transport.max_faults", 0);
    o.min_gap_ops =
        cfg.getUInt("fault.transport.min_gap_ops", o.min_gap_ops);
    for (double p : {o.torn_frame, o.short_read, o.corrupt, o.delay,
                     o.stall, o.disconnect}) {
        if (p < 0.0 || p > 1.0)
            fatal("fault.transport.* probabilities must be in [0, 1]");
    }
    if (o.delay_ms < 0.0 || o.stall_ms < 0.0)
        fatal("fault.transport delay_ms/stall_ms must be non-negative");
    return o;
}

const char *
toString(TransportFaultKind kind)
{
    switch (kind) {
      case TransportFaultKind::None:
        return "none";
      case TransportFaultKind::TornFrame:
        return "torn-frame";
      case TransportFaultKind::ShortRead:
        return "short-read";
      case TransportFaultKind::Corrupt:
        return "corrupt";
      case TransportFaultKind::Delay:
        return "delay";
      case TransportFaultKind::Stall:
        return "stall";
      case TransportFaultKind::Disconnect:
        return "disconnect";
      case TransportFaultKind::Oversize:
        return "oversize";
    }
    return "unknown";
}

TransportFaultSchedule::TransportFaultSchedule(
    const TransportFaultOptions &opts, std::uint64_t stream)
    : opts_(opts), rng_(opts.seed, stream)
{
}

TransportFaultKind
TransportFaultSchedule::draw(
    const std::pair<TransportFaultKind, double> *bands, std::size_t n)
{
    std::uint64_t op = ops_++;
    // Exactly one Rng draw per operation whatever happens below, so
    // the schedule's sequence is a pure function of the operation
    // ordinal — reconnects and retries cannot desynchronise it.
    double u = rng_.uniform();
    if (!opts_.enabled || op < opts_.start_op)
        return TransportFaultKind::None;
    if (opts_.max_faults > 0 && faults_ >= opts_.max_faults)
        return TransportFaultKind::None;
    if (since_fault_ < opts_.min_gap_ops) {
        ++since_fault_;
        return TransportFaultKind::None;
    }
    double edge = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        edge += bands[i].second;
        if (u < edge) {
            ++faults_;
            since_fault_ = 0;
            ++by_kind_[static_cast<std::size_t>(bands[i].first)];
            return bands[i].first;
        }
    }
    // No increment here: once out of the gap, since_fault_ only moves
    // again by a fault resetting it (and the pre-first-fault ~0
    // sentinel must not wrap around into a phantom gap).
    return TransportFaultKind::None;
}

TransportFaultKind
TransportFaultSchedule::nextSend()
{
    const std::pair<TransportFaultKind, double> bands[] = {
        {TransportFaultKind::TornFrame, opts_.torn_frame},
        {TransportFaultKind::ShortRead, opts_.short_read},
        {TransportFaultKind::Corrupt, opts_.corrupt},
        {TransportFaultKind::Delay, opts_.delay},
        {TransportFaultKind::Disconnect, opts_.disconnect},
    };
    return draw(bands, std::size(bands));
}

TransportFaultKind
TransportFaultSchedule::nextRecv(bool header)
{
    // A header read can only be cut short (ShortRead); payload reads
    // can be torn or corrupted. Stalls apply to either.
    const std::pair<TransportFaultKind, double> header_bands[] = {
        {TransportFaultKind::Stall, opts_.stall},
        {TransportFaultKind::ShortRead, opts_.short_read},
    };
    const std::pair<TransportFaultKind, double> payload_bands[] = {
        {TransportFaultKind::Stall, opts_.stall},
        {TransportFaultKind::TornFrame, opts_.torn_frame},
        {TransportFaultKind::Corrupt, opts_.corrupt},
    };
    if (header)
        return draw(header_bands, std::size(header_bands));
    return draw(payload_bands, std::size(payload_bands));
}

void
TransportFaultSchedule::noteForced(TransportFaultKind kind)
{
    // Counters only: a forced fault neither consumes a draw nor
    // resets the gap — the probabilistic schedule stays exactly where
    // it was.
    if (kind == TransportFaultKind::None)
        return;
    ++faults_;
    ++by_kind_[static_cast<std::size_t>(kind)];
}

FaultInjector::FaultInjector(noc::NetworkModel &inner, FaultOptions opts)
    : inner_(inner), opts_(opts)
{
    inner_.setDeliveryHandler(
        [this](const noc::PacketPtr &pkt) { onInnerDelivery(pkt); });
}

void
FaultInjector::inject(const noc::PacketPtr &pkt)
{
    ++received_;
    if (opts_.drop_every > 0 && received_ % opts_.drop_every == 0) {
        ++dropped_;
        return;
    }
    if (opts_.delay_every > 0 && received_ % opts_.delay_every == 0) {
        ++delayed_;
        held_.emplace_back(pkt->inject_tick + opts_.delay_cycles, pkt);
        return;
    }
    inner_.inject(pkt);
}

void
FaultInjector::releaseHeld(Tick t)
{
    // Stable order: release in (tick, id) order so a run is exactly
    // reproducible regardless of how many packets share a release tick.
    std::sort(held_.begin(), held_.end(),
              [](const auto &a, const auto &b) {
                  if (a.first != b.first)
                      return a.first < b.first;
                  return a.second->id < b.second->id;
              });
    // Advance the inner network up to each release point before
    // injecting: the inner model treats inject ticks in its past as
    // "now", so injecting without the advance would let a held packet
    // re-enter (and be delivered) before its delay expired.
    std::size_t n = 0;
    while (n < held_.size() && held_[n].first <= t) {
        Tick release = held_[n].first;
        if (release > inner_.curTime())
            inner_.advanceTo(release);
        while (n < held_.size() && held_[n].first == release)
            inner_.inject(held_[n++].second);
    }
    held_.erase(held_.begin(), held_.begin() + n);
}

void
FaultInjector::advanceTo(Tick t)
{
    abort_.store(false, std::memory_order_relaxed);

    // Engage/release the router stall at boundary granularity.
    if (opts_.stall_node >= 0) {
        if (!stall_engaged_ && t >= opts_.stall_from) {
            inner_.setNodeStalled(
                static_cast<std::size_t>(opts_.stall_node), true);
            stall_engaged_ = true;
        }
        if (stall_engaged_ && opts_.stall_until > 0 &&
            t >= opts_.stall_until) {
            inner_.setNodeStalled(
                static_cast<std::size_t>(opts_.stall_node), false);
            stall_engaged_ = false;
        }
    }

    // Wall-clock hang, honouring cooperative cancellation.
    if (opts_.hang_ms > 0 && t >= opts_.hang_from &&
        (opts_.hang_until == 0 || t <= opts_.hang_until)) {
        auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(opts_.hang_ms);
        while (std::chrono::steady_clock::now() < deadline) {
            if (abort_.load(std::memory_order_relaxed)) {
                ++aborted_;
                return; // abandon the quantum without advancing
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
    }

    // Frozen: the backend makes no progress inside the window (held
    // packets stay held — releasing them would advance the inner net).
    if (opts_.freeze_from > 0 && t >= opts_.freeze_from &&
        (opts_.freeze_until == 0 || t < opts_.freeze_until)) {
        return;
    }

    releaseHeld(t);
    inner_.advanceTo(t);
}

void
FaultInjector::onInnerDelivery(const noc::PacketPtr &pkt)
{
    ++deliveries_seen_;
    if (opts_.poison_every > 0 &&
        deliveries_seen_ % opts_.poison_every == 0) {
        pkt->deliver_tick += opts_.poison_offset;
        ++poisoned_;
    }
    ++forwarded_up_;
    if (handler_)
        handler_(pkt);
}

void
FaultInjector::setDeliveryHandler(DeliveryHandler handler)
{
    handler_ = std::move(handler);
}

void
FaultInjector::setEngine(StepEngine *engine)
{
    inner_.setEngine(engine);
}

Tick
FaultInjector::curTime() const
{
    return inner_.curTime();
}

bool
FaultInjector::idle() const
{
    return held_.empty() && inner_.idle();
}

std::size_t
FaultInjector::numNodes() const
{
    return inner_.numNodes();
}

std::optional<noc::NetworkModel::Accounting>
FaultInjector::accounting() const
{
    auto inner_acc = inner_.accounting();
    if (!inner_acc)
        return std::nullopt;
    // Report what the bridge handed *us*: dropped packets are neither
    // delivered nor in flight, so they surface as a conservation
    // violation — by design.
    Accounting acc;
    acc.injected = received_;
    acc.delivered = forwarded_up_;
    acc.in_flight = inner_acc->in_flight + held_.size();
    return acc;
}

bool
FaultInjector::setNodeStalled(std::size_t node, bool stalled)
{
    return inner_.setNodeStalled(node, stalled);
}

void
FaultInjector::requestAbort()
{
    abort_.store(true, std::memory_order_relaxed);
    inner_.requestAbort();
}

void
FaultInjector::save(ArchiveWriter &aw) const
{
    aw.beginSection("fault");
    aw.putU64(received_);
    aw.putU64(forwarded_up_);
    aw.putU64(deliveries_seen_);
    aw.putU64(dropped_);
    aw.putU64(delayed_);
    aw.putU64(poisoned_);
    aw.putU64(aborted_);
    aw.putBool(stall_engaged_);
    aw.putU64(held_.size());
    for (const auto &[tick, pkt] : held_) {
        aw.putU64(tick);
        noc::savePacket(aw, *pkt);
    }
    aw.endSection();
}

void
FaultInjector::restore(ArchiveReader &ar)
{
    ar.expectSection("fault");
    received_ = ar.getU64();
    forwarded_up_ = ar.getU64();
    deliveries_seen_ = ar.getU64();
    dropped_ = ar.getU64();
    delayed_ = ar.getU64();
    poisoned_ = ar.getU64();
    aborted_ = ar.getU64();
    stall_engaged_ = ar.getBool();
    held_.clear();
    std::uint64_t n = ar.getU64();
    for (std::uint64_t i = 0; i < n; ++i) {
        Tick tick = ar.getU64();
        held_.emplace_back(tick, noc::restorePacket(ar));
    }
    ar.endSection();
}

} // namespace rasim
