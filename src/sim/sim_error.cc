#include "sim/sim_error.hh"

namespace rasim
{

const char *
toString(ErrorKind kind)
{
    switch (kind) {
      case ErrorKind::Config:
        return "config";
      case ErrorKind::Internal:
        return "internal";
      case ErrorKind::Conservation:
        return "conservation";
      case ErrorKind::Deadlock:
        return "deadlock";
      case ErrorKind::Divergence:
        return "divergence";
      case ErrorKind::Timeout:
        return "timeout";
      case ErrorKind::Transport:
        return "transport";
    }
    return "unknown";
}

SimError::SimError(ErrorKind kind, const std::string &msg)
    : std::runtime_error(std::string("[") + toString(kind) + "] " + msg),
      kind_(kind)
{
}

} // namespace rasim
