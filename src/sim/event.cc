#include "sim/event.hh"

#include "sim/logging.hh"

namespace rasim
{

Event::Event(Priority pri) : priority_(pri)
{
}

Event::~Event()
{
    if (scheduled())
        panic("event '", description(), "' destroyed while scheduled");
}

EventFunctionWrapper::EventFunctionWrapper(InlineCallable callback,
                                           std::string name, Priority pri)
    : Event(pri), callback_(std::move(callback)), name_(std::move(name))
{
}

void
EventFunctionWrapper::process()
{
    callback_();
}

} // namespace rasim
