/**
 * @file
 * Structured, catchable simulation errors.
 *
 * Library code raises SimError (directly or through fatal()/panic()
 * with a logging::ThrowOnError guard active) instead of aborting the
 * process, so long co-simulation campaigns can quarantine a sick
 * component and degrade a run rather than kill it. The Kind taxonomy
 * distinguishes user misconfiguration from internal bugs and from the
 * machine-checked runtime invariants the health monitor enforces at
 * quantum boundaries.
 */

#ifndef RASIM_SIM_SIM_ERROR_HH
#define RASIM_SIM_SIM_ERROR_HH

#include <stdexcept>
#include <string>

namespace rasim
{

/** What went wrong — the failure taxonomy (see DESIGN.md section 7). */
enum class ErrorKind
{
    /** User error: bad configuration or invalid arguments (fatal()). */
    Config,
    /** Internal simulator bug: a broken invariant (panic()). */
    Internal,
    /** Packet-conservation violation: injected != delivered + in-flight. */
    Conservation,
    /** No delivery progress while packets are in flight (deadlock or
     *  livelock in the detailed network). */
    Deadlock,
    /** Estimate/feedback divergence: the latency table left its
     *  trusted bounds or the estimate error blew up. */
    Divergence,
    /** Wall-clock timeout: a worker failed to finish a quantum. */
    Timeout,
    /** IPC transport failure: a remote peer died, a frame was torn,
     *  oversized or corrupted, or the protocol versions disagree. */
    Transport,
};

/** Render a Kind as a short lowercase tag ("deadlock"). */
const char *toString(ErrorKind kind);

/**
 * The catchable error every recoverable failure path raises. what()
 * carries the "[kind] message" rendering; kind() drives the policy
 * decision (degrade, retry, abort) at the catch site.
 */
class SimError : public std::runtime_error
{
  public:
    SimError(ErrorKind kind, const std::string &msg);

    ErrorKind kind() const { return kind_; }

  private:
    ErrorKind kind_;
};

} // namespace rasim

#endif // RASIM_SIM_SIM_ERROR_HH
