/**
 * @file
 * Discrete events. Components usually embed their events (gem5-style)
 * and reschedule them; one-shot lambda events are available through
 * EventQueue::scheduleLambda().
 */

#ifndef RASIM_SIM_EVENT_HH
#define RASIM_SIM_EVENT_HH

#include <cstdint>
#include <string>

#include "sim/callable.hh"
#include "sim/types.hh"

namespace rasim
{

class EventQueue;

/**
 * A schedulable unit of simulated work. Events are not owned by the
 * queue: the scheduling component keeps the event alive while it is
 * scheduled. Events ordered by (when, priority, insertion sequence),
 * so simultaneous events execute in a deterministic order.
 */
class Event
{
  public:
    using Priority = int;

    /** Priorities: smaller runs earlier within a tick. */
    static constexpr Priority clock_pri = -100;
    static constexpr Priority default_pri = 0;
    static constexpr Priority stat_pri = 100;
    static constexpr Priority exit_pri = 200;

    explicit Event(Priority pri = default_pri);
    virtual ~Event();

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Callback invoked when simulated time reaches when(). */
    virtual void process() = 0;

    /** Short human-readable description for tracing and errors. */
    virtual std::string description() const { return "generic event"; }

    /** Tick this event is scheduled for (valid while scheduled()). */
    Tick when() const { return when_; }

    /** True while on an event queue. */
    bool scheduled() const { return queue_ != nullptr; }

    Priority priority() const { return priority_; }

    /**
     * Insertion sequence assigned by the queue (valid while
     * scheduled()). Checkpoints record it so restored events keep
     * their same-tick ordering.
     */
    std::uint64_t sequence() const { return sequence_; }

  private:
    friend class EventQueue;

    Tick when_ = 0;
    Priority priority_;
    std::uint64_t sequence_ = 0;
    EventQueue *queue_ = nullptr;
};

/**
 * Event that runs a bound callable; the canonical member-event:
 *
 *   EventFunctionWrapper retryEvent_{[this]{ retry(); }, "retry"};
 */
class EventFunctionWrapper : public Event
{
  public:
    EventFunctionWrapper(InlineCallable callback,
                         std::string name = "function event",
                         Priority pri = default_pri);

    void process() override;
    std::string description() const override { return name_; }

  private:
    InlineCallable callback_;
    std::string name_;
};

} // namespace rasim

#endif // RASIM_SIM_EVENT_HH
