/**
 * @file
 * Runtime CPU-feature detection for the SIMD kernel dispatch. The
 * structure-of-arrays NoC kernel ships a scalar implementation plus an
 * AVX2 specialization compiled behind the RASIM_SIMD build switch;
 * this helper decides, once per process, which one a run may use.
 *
 * Policy: "auto" silently falls back to scalar when AVX2 is missing
 * (compile-time or runtime), because the two paths are bit-identical
 * by construction. Explicitly requesting "avx2" on a host that cannot
 * run it is a configuration error and raises a typed SimError rather
 * than silently degrading — a forced kernel choice is a reproducibility
 * statement the simulator must not quietly override.
 */

#ifndef RASIM_SIM_CPUID_HH
#define RASIM_SIM_CPUID_HH

#include <string>

namespace rasim
{
namespace cpuid
{

enum class SimdLevel
{
    Scalar,
    Avx2,
};

/** Short lower-case name for logs, stats and bench JSON. */
const char *simdLevelName(SimdLevel level);

/** True when the AVX2 kernel translation unit was compiled in
 *  (-DRASIM_SIMD=on on an x86-64 toolchain). */
bool simdCompiledIn();

/** Runtime probe: does this CPU execute AVX2? Cached after the first
 *  call; honours the test override below. */
bool hostHasAvx2();

/**
 * Resolve a requested SIMD policy string ("auto", "scalar", "avx2")
 * to the level this process will actually run. Unknown strings and
 * an unsatisfiable explicit "avx2" request report through fatal(), so
 * under logging::ThrowOnError they surface as
 * SimError(ErrorKind::Config).
 */
SimdLevel resolveSimdLevel(const std::string &requested);

/**
 * Test hook: force hostHasAvx2() to return @p has regardless of the
 * real CPU, so unit tests can exercise both the graceful-fallback and
 * the explicit-rejection paths on any build host. Call
 * clearHostOverrideForTest() to restore real detection.
 */
void setHostOverrideForTest(bool has);
void clearHostOverrideForTest();

} // namespace cpuid
} // namespace rasim

#endif // RASIM_SIM_CPUID_HH
