#include "sim/eventq.hh"

#include <utility>

#include "sim/logging.hh"

namespace rasim
{

/**
 * One-shot event used by scheduleLambda(). Owned by its queue and
 * recycled after firing instead of deleted, so steady-state lambda
 * scheduling never allocates.
 */
class LambdaEvent : public Event
{
  public:
    explicit LambdaEvent(EventQueue *owner) : owner_(owner) {}

    void arm(InlineCallable fn) { fn_ = std::move(fn); }

    void
    process() override
    {
        // Recycle before invoking: the callable may schedule another
        // lambda and immediately reuse this very object, which is fine
        // once fn_ has been moved out.
        InlineCallable fn = std::move(fn_);
        owner_->recycleLambda(this);
        fn();
    }

    std::string description() const override { return "lambda event"; }

  private:
    EventQueue *owner_;
    InlineCallable fn_;
};

EventQueue::EventQueue(std::string name) : name_(std::move(name))
{
}

EventQueue::~EventQueue()
{
    // Orphan (never delete) remaining events: they are owned by the
    // components, which are usually destroyed after the queue. Lambda
    // events are the exception — the queue owns those and reclaims the
    // whole pool, pending or idle alike.
    for (Event *ev : events_)
        ev->queue_ = nullptr;
    for (LambdaEvent *le : lambda_store_)
        delete le;
}

LambdaEvent *
EventQueue::acquireLambda(InlineCallable fn, Event::Priority pri)
{
    LambdaEvent *ev;
    if (lambda_free_.empty()) {
        ev = new LambdaEvent(this);
        lambda_store_.push_back(ev);
    } else {
        ev = lambda_free_.back();
        lambda_free_.pop_back();
    }
    ev->priority_ = pri;
    ev->arm(std::move(fn));
    return ev;
}

void
EventQueue::recycleLambda(LambdaEvent *ev)
{
    lambda_free_.push_back(ev);
}

void
EventQueue::schedule(Event *ev, Tick when)
{
    if (ev->scheduled())
        panic("schedule of already-scheduled event '", ev->description(),
              "'");
    if (when < cur_tick_)
        panic("event '", ev->description(), "' scheduled at ", when,
              " in the past (now ", cur_tick_, ")");
    ev->when_ = when;
    ev->sequence_ = next_sequence_++;
    ev->queue_ = this;
    events_.insert(ev);
}

void
EventQueue::deschedule(Event *ev)
{
    if (ev->queue_ != this)
        panic("deschedule of event '", ev->description(),
              "' not on this queue");
    events_.erase(ev);
    ev->queue_ = nullptr;
}

void
EventQueue::reschedule(Event *ev, Tick when)
{
    if (ev->scheduled())
        deschedule(ev);
    schedule(ev, when);
}

void
EventQueue::scheduleLambda(Tick when, InlineCallable fn,
                           Event::Priority pri)
{
    schedule(acquireLambda(std::move(fn), pri), when);
}

void
EventQueue::restoreState(Tick cur_tick, std::uint64_t next_sequence,
                         std::uint64_t num_processed)
{
    if (!events_.empty())
        panic("restoreState on a queue with ", events_.size(),
              " pending event(s)");
    cur_tick_ = cur_tick;
    next_sequence_ = next_sequence;
    num_processed_ = num_processed;
}

void
EventQueue::scheduleWithSequence(Event *ev, Tick when,
                                 std::uint64_t sequence)
{
    if (ev->scheduled())
        panic("schedule of already-scheduled event '", ev->description(),
              "'");
    if (when < cur_tick_)
        panic("event '", ev->description(), "' restored at ", when,
              " in the past (now ", cur_tick_, ")");
    if (sequence >= next_sequence_)
        panic("event '", ev->description(), "' restored with sequence ",
              sequence, " >= next sequence ", next_sequence_);
    ev->when_ = when;
    ev->sequence_ = sequence;
    ev->queue_ = this;
    if (!events_.insert(ev).second)
        panic("event '", ev->description(),
              "' restored with duplicate (when, priority, sequence)");
}

void
EventQueue::scheduleLambdaWithSequence(Tick when, InlineCallable fn,
                                       Event::Priority pri,
                                       std::uint64_t sequence)
{
    scheduleWithSequence(acquireLambda(std::move(fn), pri), when,
                         sequence);
}

Tick
EventQueue::nextTick() const
{
    if (events_.empty())
        panic("nextTick() on empty event queue");
    return (*events_.begin())->when();
}

bool
EventQueue::serviceOne()
{
    if (events_.empty())
        return false;
    auto it = events_.begin();
    Event *ev = *it;
    events_.erase(it);
    cur_tick_ = ev->when_;
    ev->queue_ = nullptr;
    ++num_processed_;
    ev->process();
    return true;
}

void
EventQueue::serviceUntil(Tick until)
{
    while (!events_.empty() && (*events_.begin())->when() <= until)
        serviceOne();
    if (cur_tick_ < until)
        cur_tick_ = until;
}

} // namespace rasim
