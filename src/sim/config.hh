/**
 * @file
 * Hierarchical key/value configuration with typed accessors.
 *
 * Keys are dotted paths ("noc.vcs_per_vnet"). Values are strings parsed
 * on demand. Sources: programmatic set(), command-line style "key=value"
 * arguments, and simple config files (one "key = value" per line, '#'
 * comments).
 */

#ifndef RASIM_SIM_CONFIG_HH
#define RASIM_SIM_CONFIG_HH

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace rasim
{

class Config
{
  public:
    Config() = default;

    /** Set (or overwrite) one key. */
    void set(const std::string &key, const std::string &value);

    /** Convenience overloads for non-string values. */
    void set(const std::string &key, std::int64_t value);
    void set(const std::string &key, std::uint64_t value);
    void set(const std::string &key, int value);
    void set(const std::string &key, double value);
    void set(const std::string &key, bool value);

    /** True when the key has been set. */
    bool has(const std::string &key) const;

    /**
     * Typed getters. The value must parse as the requested type or the
     * run aborts with fatal() — a misconfiguration, not a bug.
     */
    std::string getString(const std::string &key,
                          const std::string &dflt) const;
    std::int64_t getInt(const std::string &key, std::int64_t dflt) const;
    std::uint64_t getUInt(const std::string &key, std::uint64_t dflt) const;
    double getDouble(const std::string &key, double dflt) const;
    bool getBool(const std::string &key, bool dflt) const;

    /** Required variants: fatal() when the key is missing. */
    std::string requireString(const std::string &key) const;
    std::uint64_t requireUInt(const std::string &key) const;

    /** Parse one "key=value" token; fatal() on malformed input. */
    void parseArg(const std::string &arg);

    /** Parse argv-style arguments, skipping non "key=value" tokens. */
    void parseArgs(int argc, char **argv);

    /** Load "key = value" lines from @p path; fatal() if unreadable. */
    void loadFile(const std::string &path);

    /** All keys with the given prefix (for diagnostics). */
    std::vector<std::string> keysWithPrefix(const std::string &prefix) const;

    /**
     * Config hygiene: keys under @p prefix that were set but never
     * consulted by any getter — almost always a misspelling
     * ("noc.colums"). Every getter (including has()) marks its key as
     * read, so call this only after the consumers constructed.
     */
    std::vector<std::string>
    unreadKeysWithPrefix(const std::string &prefix) const;

    /** warn() once per unread key under any of @p prefixes. */
    void warnUnread(const std::vector<std::string> &prefixes) const;

    /** Render the whole configuration (sorted) for logging. */
    std::string toString() const;

  private:
    const std::string *find(const std::string &key) const;

    std::map<std::string, std::string> values_;
    /** Keys consulted by getters/has(); mutable read-side bookkeeping. */
    mutable std::set<std::string> read_;
};

} // namespace rasim

#endif // RASIM_SIM_CONFIG_HH
