/**
 * @file
 * gem5-style status and error reporting: panic() for simulator bugs,
 * fatal() for user errors, warn()/inform() for status messages.
 */

#ifndef RASIM_SIM_LOGGING_HH
#define RASIM_SIM_LOGGING_HH

#include <sstream>
#include <string>

namespace rasim
{

namespace detail
{

/** Concatenate arbitrary streamable arguments into one string. */
template <typename... Args>
std::string
cat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const std::string &msg, const char *file,
                            int line);
[[noreturn]] void fatalImpl(const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/**
 * Report an internal simulator bug and abort. Call when a condition
 * occurs that no user configuration should be able to trigger.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::panicImpl(detail::cat(std::forward<Args>(args)...), nullptr, 0);
}

/**
 * Report a user error (bad configuration, invalid arguments) and exit
 * with a failing status. Not a simulator bug.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::fatalImpl(detail::cat(std::forward<Args>(args)...));
}

/** Alert the user to questionable but non-fatal behaviour. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::cat(std::forward<Args>(args)...));
}

/** Provide normal operating status to the user. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::cat(std::forward<Args>(args)...));
}

/** Number of warnings emitted so far (used by tests). */
std::uint64_t warnCount();

} // namespace rasim

#endif // RASIM_SIM_LOGGING_HH
