/**
 * @file
 * gem5-style status and error reporting: panic() for simulator bugs,
 * fatal() for user errors, warn()/inform() for status messages.
 *
 * Both error entry points are rebased on the SimError taxonomy: by
 * default they terminate the process (the classic behaviour), but
 * while a logging::ThrowOnError guard is alive on the current thread
 * they throw SimError instead, so error paths are unit-testable
 * without death tests and embedding applications can survive a sick
 * component.
 */

#ifndef RASIM_SIM_LOGGING_HH
#define RASIM_SIM_LOGGING_HH

#include <sstream>
#include <string>

#include "sim/sim_error.hh"

namespace rasim
{

namespace detail
{

/** Concatenate arbitrary streamable arguments into one string. */
template <typename... Args>
std::string
cat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const std::string &msg, const char *file,
                            int line);
[[noreturn]] void fatalImpl(const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/**
 * Report an internal simulator bug and abort. Call when a condition
 * occurs that no user configuration should be able to trigger.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::panicImpl(detail::cat(std::forward<Args>(args)...), nullptr, 0);
}

/**
 * Report a user error (bad configuration, invalid arguments) and exit
 * with a failing status. Not a simulator bug.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::fatalImpl(detail::cat(std::forward<Args>(args)...));
}

/** Alert the user to questionable but non-fatal behaviour. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::cat(std::forward<Args>(args)...));
}

/** Provide normal operating status to the user. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::cat(std::forward<Args>(args)...));
}

/** Number of warnings emitted so far (used by tests). */
std::uint64_t warnCount();

namespace logging
{

/**
 * Scoped, thread-local switch turning fatal()/panic() into throws:
 * while at least one guard is alive on this thread, fatal() throws
 * SimError(ErrorKind::Config) and panic() throws
 * SimError(ErrorKind::Internal) instead of terminating the process.
 * Nestable; restores the previous behaviour on destruction.
 */
class ThrowOnError
{
  public:
    ThrowOnError();
    ~ThrowOnError();

    ThrowOnError(const ThrowOnError &) = delete;
    ThrowOnError &operator=(const ThrowOnError &) = delete;
};

/** True when fatal()/panic() throw on the current thread. */
bool throwing();

} // namespace logging

} // namespace rasim

#endif // RASIM_SIM_LOGGING_HH
