/**
 * @file
 * Top-level simulation container: event queue, configuration, clock
 * domains, the component registry and the run loop.
 */

#ifndef RASIM_SIM_SIMULATION_HH
#define RASIM_SIM_SIMULATION_HH

#include <memory>
#include <string>
#include <vector>

#include "sim/clocked.hh"
#include "sim/config.hh"
#include "sim/eventq.hh"
#include "sim/rng.hh"
#include "sim/types.hh"
#include "stats/group.hh"

namespace rasim
{

class SimObject;

/**
 * Owns the global simulation state. Components are built against a
 * Simulation, then run() drives the event loop until an exit is
 * requested, the queue drains, or a tick limit is reached.
 */
class Simulation
{
  public:
    explicit Simulation(Config cfg = Config());
    ~Simulation();

    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

    EventQueue &eventq() { return eventq_; }
    const EventQueue &eventq() const { return eventq_; }
    Tick curTick() const { return eventq_.curTick(); }

    Config &config() { return config_; }
    const Config &config() const { return config_; }

    /** Root of the statistics tree ("system"). */
    stats::Group &statsRoot() { return stats_root_; }
    const stats::Group &statsRoot() const { return stats_root_; }

    /** Reference clock domain (period from config "sim.clock_period"). */
    const ClockDomain &rootClock() const { return root_clock_; }

    /**
     * Per-component RNG derived from the global seed ("sim.seed") and a
     * caller-chosen stream id, so adding components does not perturb
     * existing streams.
     */
    Rng makeRng(std::uint64_t stream) const;

    /** Called by the SimObject constructor. */
    void registerObject(SimObject *obj);

    /**
     * Run until @p until, an exit request, or queue drain — whichever
     * comes first. Calls init() on all components the first time.
     * @return the tick at which the loop stopped.
     */
    Tick run(Tick until = max_tick);

    /** Request the run loop to stop after the current event. */
    void exitSimLoop(const std::string &reason);

    bool exitRequested() const { return exit_requested_; }
    const std::string &exitReason() const { return exit_reason_; }

    /** Clear an exit request so run() can be called again. */
    void clearExit();

    /**
     * Mark the simulation as initialized without calling init() on the
     * components. Checkpoint restore uses this: init() would schedule
     * fresh startup events, but a restored run re-creates its pending
     * events from the archive instead.
     */
    void markInitialized() { initialized_ = true; }

  private:
    void initAll();

    Config config_;
    EventQueue eventq_;
    stats::Group stats_root_;
    ClockDomain root_clock_;
    std::uint64_t seed_;
    std::vector<SimObject *> objects_;
    bool initialized_ = false;
    bool exit_requested_ = false;
    std::string exit_reason_;
};

} // namespace rasim

#endif // RASIM_SIM_SIMULATION_HH
