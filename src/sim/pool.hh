/**
 * @file
 * Deterministic slab object pool with refcounted handles — the
 * allocation substrate of the simulation hot path.
 *
 * A Pool<T> owns slabs of fixed-size slots whose addresses never move,
 * so a PoolPtr<T> can hold a raw slot pointer for the object's whole
 * lifetime. Allocation pops a dense index off a LIFO free list and
 * placement-constructs in the slot; the last PoolPtr to go away runs
 * the destructor and pushes the index back. Given the same sequence of
 * allocate/release calls the pool hands out the same indices — but no
 * simulation state may depend on slot indices (they are deliberately
 * not part of any checkpoint; archives store payloads keyed by domain
 * ids instead, see DESIGN.md §9).
 *
 * Thread safety: handles may be copied, moved and dropped concurrently
 * (the refcount is atomic), and allocate/release may race between the
 * host thread and an overlapped backend worker (the free list is
 * spinlocked). Steady-state hot paths allocate and free on the serial
 * boundary code, so the lock is effectively uncontended.
 *
 * Safety nets: releasing a slot that is not live panics (double free),
 * and in debug builds freed payloads are poisoned with 0xDD so a
 * use-after-free trips fast and visibly.
 */

#ifndef RASIM_SIM_POOL_HH
#define RASIM_SIM_POOL_HH

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace rasim
{

/** Occupancy and traffic counters of one pool (see poolStats()). */
struct PoolStats
{
    /** Slabs currently backing the pool. */
    std::uint64_t slabs = 0;
    /** Total slots across all slabs. */
    std::uint64_t capacity = 0;
    /** Slots currently constructed. */
    std::uint64_t live = 0;
    /** High-water mark of live. */
    std::uint64_t peak_live = 0;
    /** Lifetime allocate() calls. */
    std::uint64_t total_allocated = 0;
    /** Lifetime releases back to the free list. */
    std::uint64_t total_released = 0;
};

/**
 * Registry base: every pool announces itself so tests and benches can
 * assert "no pool grew a slab during the steady state" without naming
 * each pool. Registration is process-wide and mutex-guarded.
 */
class PoolBase
{
  public:
    explicit PoolBase(std::string name);
    virtual ~PoolBase();

    PoolBase(const PoolBase &) = delete;
    PoolBase &operator=(const PoolBase &) = delete;

    virtual PoolStats stats() const = 0;
    const std::string &name() const { return name_; }

  private:
    std::string name_;
};

/** Snapshot of every registered pool, ordered by registration. */
std::vector<std::pair<std::string, PoolStats>> poolStatsSnapshot();

/** Sum of slab counts across every registered pool. */
std::uint64_t poolTotalSlabs();

template <typename T> class Pool;
template <typename T> class PoolPtr;

namespace detail
{

/** Minimal test-and-set lock for the pool free list. */
class PoolLock
{
  public:
    void
    lock()
    {
        while (flag_.test_and_set(std::memory_order_acquire)) {
        }
    }

    void unlock() { flag_.clear(std::memory_order_release); }

  private:
    std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

template <typename T>
struct PoolSlot
{
    alignas(T) unsigned char storage[sizeof(T)];
    std::atomic<std::uint32_t> refs{0};
    Pool<T> *pool = nullptr;
    std::uint32_t index = 0;
    bool live = false;

    T *obj() { return std::launder(reinterpret_cast<T *>(storage)); }
    const T *
    obj() const
    {
        return std::launder(reinterpret_cast<const T *>(storage));
    }
};

} // namespace detail

/**
 * Refcounted handle to a pool slot; drop-in for the shared_ptr it
 * replaced (copy/move, operator->, bool conversion, reset). The last
 * handle returns the slot to its pool — exactly once, enforced by the
 * pool's live check.
 */
template <typename T>
class PoolPtr
{
  public:
    constexpr PoolPtr() noexcept = default;
    constexpr PoolPtr(std::nullptr_t) noexcept {}

    PoolPtr(const PoolPtr &o) noexcept : slot_(o.slot_) { ref(); }

    PoolPtr(PoolPtr &&o) noexcept : slot_(o.slot_) { o.slot_ = nullptr; }

    PoolPtr &
    operator=(const PoolPtr &o) noexcept
    {
        if (slot_ != o.slot_) {
            unref();
            slot_ = o.slot_;
            ref();
        }
        return *this;
    }

    PoolPtr &
    operator=(PoolPtr &&o) noexcept
    {
        if (this != &o) {
            unref();
            slot_ = o.slot_;
            o.slot_ = nullptr;
        }
        return *this;
    }

    PoolPtr &
    operator=(std::nullptr_t) noexcept
    {
        unref();
        slot_ = nullptr;
        return *this;
    }

    ~PoolPtr() { unref(); }

    T *get() const noexcept { return slot_ ? slot_->obj() : nullptr; }
    T *operator->() const noexcept { return slot_->obj(); }
    T &operator*() const noexcept { return *slot_->obj(); }

    explicit operator bool() const noexcept { return slot_ != nullptr; }

    void
    reset() noexcept
    {
        unref();
        slot_ = nullptr;
    }

    friend bool
    operator==(const PoolPtr &a, const PoolPtr &b) noexcept
    {
        return a.slot_ == b.slot_;
    }

    friend bool
    operator!=(const PoolPtr &a, const PoolPtr &b) noexcept
    {
        return a.slot_ != b.slot_;
    }

    friend bool
    operator==(const PoolPtr &a, std::nullptr_t) noexcept
    {
        return a.slot_ == nullptr;
    }

    friend bool
    operator!=(const PoolPtr &a, std::nullptr_t) noexcept
    {
        return a.slot_ != nullptr;
    }

    /** Outstanding handles to this slot (diagnostics/tests). */
    std::uint32_t
    useCount() const noexcept
    {
        return slot_ ? slot_->refs.load(std::memory_order_relaxed) : 0;
    }

  private:
    friend class Pool<T>;

    explicit PoolPtr(detail::PoolSlot<T> *slot) noexcept : slot_(slot)
    {
        // The pool hands out slots with refs already at 1.
    }

    void
    ref() noexcept
    {
        if (slot_)
            slot_->refs.fetch_add(1, std::memory_order_relaxed);
    }

    void
    unref() noexcept
    {
        if (slot_ &&
            slot_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1)
            slot_->pool->release(slot_);
    }

    detail::PoolSlot<T> *slot_ = nullptr;
};

template <typename T>
class Pool : public PoolBase
{
  public:
    /** Slots per slab; growth happens one slab at a time. */
    static constexpr std::uint32_t slab_slots = 256;

    explicit Pool(std::string name) : PoolBase(std::move(name)) {}

    ~Pool() override = default;

    /** Construct a T in a free slot and return the owning handle. */
    template <typename... Args>
    PoolPtr<T>
    allocate(Args &&...args)
    {
        lock_.lock();
        if (free_.empty())
            grow();
        std::uint32_t index = free_.back();
        free_.pop_back();
        ++live_;
        ++total_allocated_;
        if (live_ > peak_live_)
            peak_live_ = live_;
        // Resolve the slot address before unlocking: a concurrent
        // allocate() on another thread may grow() and reallocate the
        // slab vector, so slabs_ must only be indexed under the lock
        // (slot addresses themselves never move).
        detail::PoolSlot<T> &slot = slotAt(index);
        lock_.unlock();

        if (slot.live)
            panic("pool '", name(), "': allocating live slot ", index);
        new (slot.storage) T(std::forward<Args>(args)...);
        slot.live = true;
        slot.refs.store(1, std::memory_order_relaxed);
        return PoolPtr<T>(&slot);
    }

    PoolStats
    stats() const override
    {
        auto &self = const_cast<Pool &>(*this);
        self.lock_.lock();
        PoolStats s;
        s.slabs = slabs_.size();
        s.capacity =
            static_cast<std::uint64_t>(slabs_.size()) * slab_slots;
        s.live = live_;
        s.peak_live = peak_live_;
        s.total_allocated = total_allocated_;
        s.total_released = total_released_;
        self.lock_.unlock();
        return s;
    }

    /**
     * Checkpoint the pool as occupancy + payloads (never addresses):
     * live slots in ascending index order, each serialized by @p fn.
     * Intended for pools whose objects are not already archived
     * through a domain-keyed table.
     */
    template <typename SaveFn>
    void
    save(ArchiveWriter &aw, SaveFn fn) const
    {
        aw.beginSection("pool");
        aw.putU64(live_);
        std::uint64_t written = 0;
        for (std::uint32_t i = 0; i < capacity(); ++i) {
            const detail::PoolSlot<T> &slot =
                const_cast<Pool *>(this)->slotAt(i);
            if (!slot.live)
                continue;
            aw.putU32(i);
            fn(aw, *slot.obj());
            ++written;
        }
        if (written != live_)
            panic("pool '", name(), "': live count ", live_,
                  " disagrees with occupancy ", written);
        aw.endSection();
    }

    /**
     * Rebuild occupancy from an archive written by save(). The pool
     * must hold no live slots; returns one handle per restored object
     * (ascending index order) — dropping them releases the slots.
     */
    template <typename RestoreFn>
    std::vector<PoolPtr<T>>
    restore(ArchiveReader &ar, RestoreFn fn)
    {
        if (live_ != 0)
            panic("pool '", name(), "': restore over ", live_,
                  " live slot(s)");
        ar.expectSection("pool");
        std::uint64_t n = ar.getU64();
        std::vector<PoolPtr<T>> handles;
        handles.reserve(n);
        std::vector<char> occupied;
        for (std::uint64_t k = 0; k < n; ++k) {
            std::uint32_t index = ar.getU32();
            while (capacity() <= index)
                grow();
            if (occupied.size() < capacity())
                occupied.resize(capacity(), 0);
            detail::PoolSlot<T> &slot = slotAt(index);
            new (slot.storage) T(fn(ar));
            slot.live = true;
            occupied[index] = 1;
            slot.refs.store(1, std::memory_order_relaxed);
            handles.push_back(PoolPtr<T>(&slot));
        }
        ar.endSection();
        occupied.resize(capacity(), 0);
        // Free list: every dead index, descending, so the next
        // allocations pop ascending — same discipline as growth.
        free_.clear();
        for (std::uint32_t i = capacity(); i-- > 0;) {
            if (!occupied[i])
                free_.push_back(i);
        }
        live_ = n;
        if (live_ > peak_live_)
            peak_live_ = live_;
        total_allocated_ += n;
        return handles;
    }

  private:
    friend class PoolPtr<T>;

    using Slab = std::unique_ptr<detail::PoolSlot<T>[]>;

    std::uint32_t
    capacity() const
    {
        return static_cast<std::uint32_t>(slabs_.size()) * slab_slots;
    }

    detail::PoolSlot<T> &
    slotAt(std::uint32_t index)
    {
        return slabs_[index / slab_slots][index % slab_slots];
    }

    /** Append one slab; indices pushed descending so allocation order
     *  walks the slab front to back. Caller holds lock_. */
    void
    grow()
    {
        std::uint32_t base = capacity();
        slabs_.push_back(
            std::make_unique<detail::PoolSlot<T>[]>(slab_slots));
        Slab &slab = slabs_.back();
        free_.reserve(free_.size() + slab_slots);
        for (std::uint32_t i = slab_slots; i-- > 0;) {
            slab[i].pool = this;
            slab[i].index = base + i;
            free_.push_back(base + i);
        }
    }

    /** Destroy the payload and return the slot to the free list.
     *  Called by the last handle; a dead slot here is a double free. */
    void
    release(detail::PoolSlot<T> *slot)
    {
        if (!slot->live)
            panic("pool '", name(), "': double release of slot ",
                  slot->index);
        slot->obj()->~T();
        slot->live = false;
#ifndef NDEBUG
        std::memset(slot->storage, 0xDD, sizeof(T));
#endif
        lock_.lock();
        free_.push_back(slot->index);
        --live_;
        ++total_released_;
        lock_.unlock();
    }

    detail::PoolLock lock_;
    std::vector<Slab> slabs_;
    std::vector<std::uint32_t> free_;
    std::uint64_t live_ = 0;
    std::uint64_t peak_live_ = 0;
    std::uint64_t total_allocated_ = 0;
    std::uint64_t total_released_ = 0;
};

} // namespace rasim

#endif // RASIM_SIM_POOL_HH
