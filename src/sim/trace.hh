/**
 * @file
 * Lightweight trace-flag facility. Flags are enabled by name through
 * Trace::enable() or the RASIM_TRACE environment variable
 * (comma-separated list). Tracing is compiled in but costs one branch
 * when disabled.
 */

#ifndef RASIM_SIM_TRACE_HH
#define RASIM_SIM_TRACE_HH

#include <string>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace rasim
{

namespace Trace
{

/** Enable one trace flag by name ("NoC", "Cache", "Cosim", ...). */
void enable(const std::string &flag);

/** Disable one trace flag by name. */
void disable(const std::string &flag);

/** True when the named flag is active. */
bool enabled(const std::string &flag);

/** Emit a trace record for @p flag at tick @p when. */
void output(const std::string &flag, Tick when, const std::string &msg);

} // namespace Trace

/**
 * Trace helper: no-op unless the flag is enabled.
 */
template <typename... Args>
void
tracef(const std::string &flag, Tick when, Args &&...args)
{
    if (Trace::enabled(flag))
        Trace::output(flag, when, detail::cat(std::forward<Args>(args)...));
}

} // namespace rasim

#endif // RASIM_SIM_TRACE_HH
