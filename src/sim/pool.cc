#include "sim/pool.hh"

#include <mutex>

namespace rasim
{

namespace
{

/**
 * Process-wide pool registry. Pools register in construction order and
 * unregister on destruction; snapshots copy under the mutex so tests
 * and benches can read stats while a simulation is live.
 */
struct Registry
{
    std::mutex mutex;
    std::vector<PoolBase *> pools;
};

Registry &
registry()
{
    static Registry r;
    return r;
}

} // namespace

PoolBase::PoolBase(std::string name) : name_(std::move(name))
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.pools.push_back(this);
}

PoolBase::~PoolBase()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    std::erase(r.pools, this);
}

std::vector<std::pair<std::string, PoolStats>>
poolStatsSnapshot()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    std::vector<std::pair<std::string, PoolStats>> out;
    out.reserve(r.pools.size());
    for (PoolBase *p : r.pools)
        out.emplace_back(p->name(), p->stats());
    return out;
}

std::uint64_t
poolTotalSlabs()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    std::uint64_t total = 0;
    for (PoolBase *p : r.pools)
        total += p->stats().slabs;
    return total;
}

} // namespace rasim
