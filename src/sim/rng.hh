/**
 * @file
 * Deterministic pseudo-random number generation (PCG32). Every stochastic
 * component owns its own Rng seeded from the configuration so that runs
 * are reproducible and components are statistically independent.
 */

#ifndef RASIM_SIM_RNG_HH
#define RASIM_SIM_RNG_HH

#include <cstdint>

namespace rasim
{

/**
 * PCG32 generator (O'Neill, pcg-random.org; XSH-RR variant).
 *
 * Small, fast, and far better distributed than rand(). Each (seed,
 * stream) pair yields an independent sequence, which lets every
 * simulated component draw from its own stream of one global seed.
 */
class Rng
{
  public:
    /** Construct from a seed and a stream selector. */
    explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 1);

    /** Next raw 32-bit output. */
    std::uint32_t next();

    /** Next raw 64-bit output (two draws). */
    std::uint64_t next64();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform integer in [0, n). @pre n > 0. Unbiased (rejection). */
    std::uint32_t range(std::uint32_t n);

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi. */
    std::uint32_t rangeInclusive(std::uint32_t lo, std::uint32_t hi);

    /** Bernoulli trial with success probability p. */
    bool bernoulli(double p);

    /**
     * Geometric number of failures before the first success with
     * per-trial probability p; used for bursty injection processes.
     * @pre 0 < p <= 1.
     */
    std::uint64_t geometric(double p);

    /** Exponential variate with the given mean. */
    double exponential(double mean);

    /** Complete generator state; enough to resume the sequence. */
    struct State
    {
        std::uint64_t state;
        std::uint64_t inc;

        bool
        operator==(const State &o) const
        {
            return state == o.state && inc == o.inc;
        }
    };

    /** Raw state for checkpointing. */
    State state() const { return {state_, inc_}; }

    /** Overwrite the raw state (checkpoint restore). */
    void
    setState(const State &s)
    {
        state_ = s.state;
        inc_ = s.inc;
    }

  private:
    std::uint64_t state_;
    std::uint64_t inc_;
};

} // namespace rasim

#endif // RASIM_SIM_RNG_HH
