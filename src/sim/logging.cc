#include "sim/logging.hh"

#include <atomic>
#include <cstdlib>
#include <iostream>

namespace rasim
{

namespace
{
std::atomic<std::uint64_t> warn_count{0};
thread_local int throw_depth = 0;
} // namespace

namespace logging
{

ThrowOnError::ThrowOnError()
{
    ++throw_depth;
}

ThrowOnError::~ThrowOnError()
{
    --throw_depth;
}

bool
throwing()
{
    return throw_depth > 0;
}

} // namespace logging

namespace detail
{

void
panicImpl(const std::string &msg, const char *file, int line)
{
    if (logging::throwing())
        throw SimError(ErrorKind::Internal, msg);
    std::cerr << "panic: " << msg;
    if (file)
        std::cerr << " (" << file << ":" << line << ")";
    std::cerr << std::endl;
    std::abort();
}

void
fatalImpl(const std::string &msg)
{
    if (logging::throwing())
        throw SimError(ErrorKind::Config, msg);
    std::cerr << "fatal: " << msg << std::endl;
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    warn_count.fetch_add(1, std::memory_order_relaxed);
    std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    std::cout << "info: " << msg << std::endl;
}

} // namespace detail

std::uint64_t
warnCount()
{
    return warn_count.load(std::memory_order_relaxed);
}

} // namespace rasim
