#include "sim/sim_object.hh"

#include "sim/simulation.hh"

namespace rasim
{

SimObject::SimObject(Simulation &sim, const std::string &name,
                     SimObject *parent)
    : stats::Group(parent ? static_cast<stats::Group *>(parent)
                          : &sim.statsRoot(),
                   name),
      Clocked(sim.eventq(), sim.rootClock()), sim_(sim)
{
    sim.registerObject(this);
}

Tick
SimObject::curTick() const
{
    return sim_.curTick();
}

const Config &
SimObject::config() const
{
    return sim_.config();
}

} // namespace rasim
