/**
 * @file
 * Checkpoint serialization: a versioned binary archive format with
 * per-section tags and a CRC32 integrity trailer, plus the
 * Serializable interface implemented by every stateful component.
 *
 * Archive layout (little-endian):
 *
 *   [8]  magic "RASIMCKP"
 *   [4]  format version (u32)
 *   [..] body: nested tagged sections
 *   [4]  CRC32 of magic+version+body
 *
 * A section is [u32 tag length][tag bytes][u64 payload length][payload].
 * Sections nest; the reader bounds-checks every primitive read against
 * the innermost open section so a truncated or corrupted image fails
 * loudly instead of yielding garbage state.
 */

#ifndef RASIM_SIM_SERIALIZE_HH
#define RASIM_SIM_SERIALIZE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace rasim
{

namespace stats
{
class Group;
} // namespace stats

/** CRC-32 (IEEE, reflected polynomial 0xEDB88320) of a byte buffer. */
std::uint32_t crc32(const void *data, std::size_t len);

/** CRC-64 (ECMA-182, reflected polynomial 0xC96C5795D7870F42) of a
 *  byte buffer. The replica-attestation digest of the remote backend:
 *  two replicas whose serialized state archives agree bit for bit
 *  produce the same digest, so a diverged (or corrupt) standby is
 *  caught by comparing eight bytes instead of shipping the image. */
std::uint64_t crc64(const void *data, std::size_t len);
std::uint64_t crc64(const std::string &bytes);

/**
 * Accumulates an archive in memory. Sections open with beginSection()
 * and close with endSection(); lengths are patched on close so callers
 * never pre-compute payload sizes. finish() seals the archive with the
 * header and CRC trailer.
 */
class ArchiveWriter
{
  public:
    static constexpr char magic[8] = {'R', 'A', 'S', 'I',
                                      'M', 'C', 'K', 'P'};
    static constexpr std::uint32_t format_version = 1;

    void beginSection(const std::string &tag);
    void endSection();

    void putBool(bool v);
    void putU8(std::uint8_t v);
    void putU32(std::uint32_t v);
    void putU64(std::uint64_t v);
    void putI64(std::int64_t v);
    void putDouble(double v);
    void putString(const std::string &s);

    /** Seal and return the complete archive. No puts afterwards. */
    std::string finish();

    /** Seal and stream the complete archive to @p os. */
    void writeTo(std::ostream &os);

  private:
    void raw(const void *p, std::size_t n);

    std::string body_;
    std::vector<std::size_t> open_; ///< offsets of unpatched lengths
    bool finished_ = false;
};

/**
 * Bounds-checked reader over a complete archive image. Construction
 * validates magic, version and CRC without terminating: a corrupt
 * image leaves ok() false so callers can fall back to an older
 * checkpoint. Structural misuse during reading (wrong tag, read past
 * a section end) is a panic — that is a programming error, not bad
 * input, once the CRC has passed.
 */
class ArchiveReader
{
  public:
    explicit ArchiveReader(std::string bytes);

    /** False when magic/version/CRC validation failed. */
    bool ok() const { return error_.empty(); }
    const std::string &error() const { return error_; }
    std::uint32_t version() const { return version_; }

    void expectSection(const std::string &tag);
    void endSection();

    bool getBool();
    std::uint8_t getU8();
    std::uint32_t getU32();
    std::uint64_t getU64();
    std::int64_t getI64();
    double getDouble();
    std::string getString();

  private:
    void need(std::size_t n);
    void raw(void *p, std::size_t n);

    std::string bytes_;
    std::size_t pos_ = 0;
    std::size_t end_ = 0;
    std::vector<std::size_t> section_ends_;
    std::string error_;
    std::uint32_t version_ = 0;
};

/**
 * A component whose dynamic state can round-trip through an archive.
 * restore() overwrites the state of a freshly constructed object built
 * from the same configuration; static geometry (table sizes, port
 * counts) is reconstructed, not archived.
 */
class Serializable
{
  public:
    virtual ~Serializable() = default;

    virtual void save(ArchiveWriter &aw) const = 0;
    virtual void restore(ArchiveReader &ar) = 0;
};

/**
 * Save / restore every statistic in the subtree rooted at @p root.
 * Both sides traverse the tree in registration order, which is the
 * deterministic construction order, so no name-based lookup is needed;
 * names are still recorded and verified to catch topology mismatches.
 * Derived stats::Value entries carry no state and are skipped.
 */
void saveStats(ArchiveWriter &aw, const stats::Group &root);
void restoreStats(ArchiveReader &ar, stats::Group &root);

} // namespace rasim

#endif // RASIM_SIM_SERIALIZE_HH
