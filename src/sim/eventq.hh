/**
 * @file
 * The discrete-event queue at the heart of the simulator.
 */

#ifndef RASIM_SIM_EVENTQ_HH
#define RASIM_SIM_EVENTQ_HH

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "sim/callable.hh"
#include "sim/event.hh"
#include "sim/types.hh"

namespace rasim
{

class LambdaEvent;

/**
 * Ordered queue of pending events plus the current simulated time.
 *
 * Events with equal tick execute in ascending priority, then insertion
 * order, making simultaneous-event behaviour deterministic. Descheduling
 * is supported (components cancel timeouts/retries), hence the ordered
 * set rather than a binary heap.
 */
class EventQueue
{
  public:
    explicit EventQueue(std::string name = "eventq");
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick curTick() const { return cur_tick_; }

    /** Schedule @p ev at absolute tick @p when (>= curTick()). */
    void schedule(Event *ev, Tick when);

    /** Remove a scheduled event. @pre ev->scheduled(). */
    void deschedule(Event *ev);

    /** Move a scheduled (or idle) event to @p when. */
    void reschedule(Event *ev, Tick when);

    /**
     * Schedule a one-shot event running @p fn; the event object is
     * recycled from a queue-owned free list after it fires, so the
     * steady state allocates nothing. Convenient for fire-and-forget
     * callbacks like packet deliveries. The callable must fit
     * InlineCallable's inline buffer (enforced at compile time).
     */
    void scheduleLambda(Tick when, InlineCallable fn,
                        Event::Priority pri = Event::default_pri);

    /** True when no events are pending. */
    bool empty() const { return events_.empty(); }

    /** Number of pending events. */
    std::size_t size() const { return events_.size(); }

    /** Tick of the earliest pending event. @pre !empty(). */
    Tick nextTick() const;

    /**
     * Execute the single earliest event, advancing curTick to it.
     * @return false if the queue was empty.
     */
    bool serviceOne();

    /**
     * Execute all events with when() <= @p until, then set curTick to
     * @p until. Events scheduled during servicing are honoured.
     */
    void serviceUntil(Tick until);

    /** Total number of events processed (statistics). */
    std::uint64_t numProcessed() const { return num_processed_; }

    /**
     * Sequence number the next schedule() will assign. Components peek
     * this immediately before scheduling so they can key bookkeeping
     * for a pending event by the sequence it is about to receive
     * (scheduling is synchronous, so the peek cannot race).
     */
    std::uint64_t nextSequence() const { return next_sequence_; }

    /**
     * Overwrite time and bookkeeping counters from a checkpoint.
     * @pre the queue is empty — restore happens before any events are
     * re-scheduled.
     */
    void restoreState(Tick cur_tick, std::uint64_t next_sequence,
                      std::uint64_t num_processed);

    /**
     * schedule() that reuses a saved insertion sequence instead of
     * assigning a fresh one; used only when re-creating the pending
     * events of a checkpoint so same-tick ordering is preserved
     * exactly. Does not advance nextSequence().
     */
    void scheduleWithSequence(Event *ev, Tick when,
                              std::uint64_t sequence);

    /** scheduleLambda() variant of scheduleWithSequence(). */
    void scheduleLambdaWithSequence(Tick when, InlineCallable fn,
                                    Event::Priority pri,
                                    std::uint64_t sequence);

    const std::string &name() const { return name_; }

    /** Lambda-event objects ever created (pool growth diagnostics). */
    std::size_t lambdaEventsAllocated() const
    {
        return lambda_store_.size();
    }

  private:
    friend class LambdaEvent;

    /** Pop a recycled lambda event (or grow the pool) and arm it. */
    LambdaEvent *acquireLambda(InlineCallable fn, Event::Priority pri);
    /** Return a fired lambda event to the free list. */
    void recycleLambda(LambdaEvent *ev);

    struct Before
    {
        bool
        operator()(const Event *a, const Event *b) const
        {
            if (a->when() != b->when())
                return a->when() < b->when();
            if (a->priority() != b->priority())
                return a->priority() < b->priority();
            return a->sequence_ < b->sequence_;
        }
    };

    std::string name_;
    Tick cur_tick_ = 0;
    std::uint64_t next_sequence_ = 0;
    std::uint64_t num_processed_ = 0;
    std::set<Event *, Before> events_;
    /** Every lambda event this queue ever created (owned). */
    std::vector<LambdaEvent *> lambda_store_;
    /** The idle subset of lambda_store_, ready for reuse. */
    std::vector<LambdaEvent *> lambda_free_;
};

} // namespace rasim

#endif // RASIM_SIM_EVENTQ_HH
