#include "ipc/protocol.hh"

namespace rasim
{
namespace ipc
{

void
encodeHello(ArchiveWriter &aw, const HelloRequest &req)
{
    aw.putU32(req.proto);
    aw.putString(req.model);
    aw.putU32(static_cast<std::uint32_t>(req.params.columns));
    aw.putU32(static_cast<std::uint32_t>(req.params.rows));
    aw.putString(req.params.topology);
    aw.putString(req.params.routing);
    aw.putU32(static_cast<std::uint32_t>(req.params.vcs_per_vnet));
    aw.putU32(static_cast<std::uint32_t>(req.params.vc_classes));
    aw.putU32(static_cast<std::uint32_t>(req.params.buffer_depth));
    aw.putU32(static_cast<std::uint32_t>(req.params.link_latency));
    aw.putU32(static_cast<std::uint32_t>(req.params.pipeline_stages));
    aw.putU32(req.params.flit_bytes);
    aw.putU32(static_cast<std::uint32_t>(req.engine_workers));
    aw.putU64(req.start_tick);
    aw.putDouble(req.table_alpha);
    aw.putBool(req.table_pair_granularity);
    aw.putU32(static_cast<std::uint32_t>(req.table_max_hops));
}

HelloRequest
decodeHello(ArchiveReader &ar)
{
    HelloRequest req;
    req.proto = ar.getU32();
    req.model = ar.getString();
    req.params.columns = static_cast<int>(ar.getU32());
    req.params.rows = static_cast<int>(ar.getU32());
    req.params.topology = ar.getString();
    req.params.routing = ar.getString();
    req.params.vcs_per_vnet = static_cast<int>(ar.getU32());
    req.params.vc_classes = static_cast<int>(ar.getU32());
    req.params.buffer_depth = static_cast<int>(ar.getU32());
    req.params.link_latency = static_cast<int>(ar.getU32());
    req.params.pipeline_stages = static_cast<int>(ar.getU32());
    req.params.flit_bytes = ar.getU32();
    req.engine_workers = static_cast<int>(ar.getU32());
    req.start_tick = ar.getU64();
    req.table_alpha = ar.getDouble();
    req.table_pair_granularity = ar.getBool();
    req.table_max_hops = static_cast<int>(ar.getU32());
    return req;
}

void
encodeHelloReply(ArchiveWriter &aw, const HelloReply &rep)
{
    aw.putU64(rep.num_nodes);
    aw.putU64(rep.cur_time);
}

HelloReply
decodeHelloReply(ArchiveReader &ar)
{
    HelloReply rep;
    rep.num_nodes = ar.getU64();
    rep.cur_time = ar.getU64();
    return rep;
}

void
encodePackets(ArchiveWriter &aw, const std::vector<noc::PacketPtr> &pkts)
{
    aw.putU64(pkts.size());
    for (const auto &pkt : pkts)
        noc::savePacket(aw, *pkt);
}

std::vector<noc::PacketPtr>
decodePackets(ArchiveReader &ar)
{
    std::uint64_t count = ar.getU64();
    std::vector<noc::PacketPtr> pkts;
    pkts.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i)
        pkts.push_back(noc::restorePacket(ar));
    return pkts;
}

void
encodeAdvance(ArchiveWriter &aw, Tick target)
{
    aw.putU64(target);
}

Tick
decodeAdvance(ArchiveReader &ar)
{
    return ar.getU64();
}

void
encodeAdvanceReply(ArchiveWriter &aw, const AdvanceReply &rep)
{
    aw.putU64(rep.cur_time);
    aw.putBool(rep.idle);
    aw.putU64(rep.injected);
    aw.putU64(rep.delivered);
    aw.putU64(rep.in_flight);
    encodePackets(aw, rep.deliveries);
}

AdvanceReply
decodeAdvanceReply(ArchiveReader &ar)
{
    AdvanceReply rep;
    rep.cur_time = ar.getU64();
    rep.idle = ar.getBool();
    rep.injected = ar.getU64();
    rep.delivered = ar.getU64();
    rep.in_flight = ar.getU64();
    rep.deliveries = decodePackets(ar);
    return rep;
}

void
encodeStatsReply(ArchiveWriter &aw, const std::vector<StatRow> &rows)
{
    aw.putU64(rows.size());
    for (const auto &row : rows) {
        aw.putString(row.path);
        aw.putString(row.sub);
        aw.putDouble(row.value);
    }
}

std::vector<StatRow>
decodeStatsReply(ArchiveReader &ar)
{
    std::uint64_t count = ar.getU64();
    std::vector<StatRow> rows;
    rows.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        StatRow row;
        row.path = ar.getString();
        row.sub = ar.getString();
        row.value = ar.getDouble();
        rows.push_back(std::move(row));
    }
    return rows;
}

void
encodeError(ArchiveWriter &aw, ErrorKind kind, const std::string &what)
{
    aw.putU32(static_cast<std::uint32_t>(kind));
    aw.putString(what);
}

void
throwDecodedError(ArchiveReader &ar)
{
    auto kind = static_cast<ErrorKind>(ar.getU32());
    std::string what = ar.getString();
    ar.endSection();
    throw SimError(kind, "remote peer reported: " + what);
}

} // namespace ipc
} // namespace rasim
