#include "ipc/protocol.hh"

#include "sim/logging.hh"

namespace rasim
{
namespace ipc
{

namespace
{

/**
 * Run a decoder body with archive misuse demoted to typed transport
 * errors: a CRC-valid payload whose structure disagrees with the
 * schema (short fields, wrong tags) panics in the reader, which is
 * right for trusted checkpoints but wrong for wire input. Transport
 * and Timeout errors pass through untouched.
 */
template <typename Fn>
auto
guardedDecode(const char *what, Fn &&fn) -> decltype(fn())
{
    try {
        logging::ThrowOnError guard;
        return fn();
    } catch (const SimError &err) {
        if (err.kind() == ErrorKind::Transport ||
            err.kind() == ErrorKind::Timeout)
            throw;
        throw SimError(ErrorKind::Transport,
                       std::string("malformed ") + what +
                           " payload: " + err.what());
    }
}

/** Reject an element count no legal frame could carry before
 *  reserving memory for it: a forged count must be a typed error,
 *  not a multi-gigabyte allocation. */
void
checkCount(std::uint64_t count, std::uint64_t min_bytes_each,
           const char *what)
{
    if (count > max_frame_bytes / min_bytes_each) {
        throw SimError(ErrorKind::Transport,
                       std::string("implausible ") + what +
                           " count " + std::to_string(count) +
                           " (larger than any legal frame)");
    }
}

std::vector<noc::PacketPtr>
decodePacketsRaw(ArchiveReader &ar)
{
    std::uint64_t count = ar.getU64();
    // A serialized packet is ~57 bytes; 32 is a safe lower bound.
    checkCount(count, 32, "packet");
    std::vector<noc::PacketPtr> pkts;
    pkts.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i)
        pkts.push_back(noc::restorePacket(ar));
    return pkts;
}

AdvanceReply
decodeAdvanceReplyRaw(ArchiveReader &ar)
{
    AdvanceReply rep;
    rep.cur_time = ar.getU64();
    rep.idle = ar.getBool();
    rep.injected = ar.getU64();
    rep.delivered = ar.getU64();
    rep.in_flight = ar.getU64();
    rep.deliveries = decodePacketsRaw(ar);
    return rep;
}

} // namespace

void
encodeHello(ArchiveWriter &aw, const HelloRequest &req)
{
    aw.putU32(req.proto);
    aw.putString(req.model);
    aw.putU32(static_cast<std::uint32_t>(req.params.columns));
    aw.putU32(static_cast<std::uint32_t>(req.params.rows));
    aw.putString(req.params.topology);
    aw.putString(req.params.routing);
    aw.putU32(static_cast<std::uint32_t>(req.params.vcs_per_vnet));
    aw.putU32(static_cast<std::uint32_t>(req.params.vc_classes));
    aw.putU32(static_cast<std::uint32_t>(req.params.buffer_depth));
    aw.putU32(static_cast<std::uint32_t>(req.params.link_latency));
    aw.putU32(static_cast<std::uint32_t>(req.params.pipeline_stages));
    aw.putU32(req.params.flit_bytes);
    aw.putString(req.params.kernel);
    aw.putString(req.params.simd);
    aw.putU32(static_cast<std::uint32_t>(req.engine_workers));
    aw.putU64(req.start_tick);
    aw.putDouble(req.table_alpha);
    aw.putBool(req.table_pair_granularity);
    aw.putU32(static_cast<std::uint32_t>(req.table_max_hops));
}

HelloRequest
decodeHello(ArchiveReader &ar)
{
    return guardedDecode("Hello", [&] {
        HelloRequest req;
        req.proto = ar.getU32();
        req.model = ar.getString();
        req.params.columns = static_cast<int>(ar.getU32());
        req.params.rows = static_cast<int>(ar.getU32());
        req.params.topology = ar.getString();
        req.params.routing = ar.getString();
        req.params.vcs_per_vnet = static_cast<int>(ar.getU32());
        req.params.vc_classes = static_cast<int>(ar.getU32());
        req.params.buffer_depth = static_cast<int>(ar.getU32());
        req.params.link_latency = static_cast<int>(ar.getU32());
        req.params.pipeline_stages = static_cast<int>(ar.getU32());
        req.params.flit_bytes = ar.getU32();
        req.params.kernel = ar.getString();
        req.params.simd = ar.getString();
        req.engine_workers = static_cast<int>(ar.getU32());
        req.start_tick = ar.getU64();
        req.table_alpha = ar.getDouble();
        req.table_pair_granularity = ar.getBool();
        req.table_max_hops = static_cast<int>(ar.getU32());
        return req;
    });
}

void
encodeHelloReply(ArchiveWriter &aw, const HelloReply &rep)
{
    aw.putU64(rep.num_nodes);
    aw.putU64(rep.cur_time);
}

HelloReply
decodeHelloReply(ArchiveReader &ar)
{
    return guardedDecode("HelloAck", [&] {
        HelloReply rep;
        rep.num_nodes = ar.getU64();
        rep.cur_time = ar.getU64();
        return rep;
    });
}

void
encodePackets(ArchiveWriter &aw, const std::vector<noc::PacketPtr> &pkts)
{
    aw.putU64(pkts.size());
    for (const auto &pkt : pkts)
        noc::savePacket(aw, *pkt);
}

std::vector<noc::PacketPtr>
decodePackets(ArchiveReader &ar)
{
    return guardedDecode("packet batch",
                         [&] { return decodePacketsRaw(ar); });
}

void
encodeAdvance(ArchiveWriter &aw, Tick target)
{
    aw.putU64(target);
}

Tick
decodeAdvance(ArchiveReader &ar)
{
    return guardedDecode("Advance", [&] { return ar.getU64(); });
}

void
encodeAdvanceReply(ArchiveWriter &aw, const AdvanceReply &rep)
{
    aw.putU64(rep.cur_time);
    aw.putBool(rep.idle);
    aw.putU64(rep.injected);
    aw.putU64(rep.delivered);
    aw.putU64(rep.in_flight);
    encodePackets(aw, rep.deliveries);
}

AdvanceReply
decodeAdvanceReply(ArchiveReader &ar)
{
    return guardedDecode("DeliveryBatch",
                         [&] { return decodeAdvanceReplyRaw(ar); });
}

void
encodeStep(ArchiveWriter &aw, const StepRequest &req)
{
    aw.putU64(req.target);
    aw.putBool(req.speculate);
    aw.putBool(req.attest);
    encodePackets(aw, req.packets);
}

StepRequest
decodeStep(ArchiveReader &ar)
{
    return guardedDecode("Step", [&] {
        StepRequest req;
        req.target = ar.getU64();
        req.speculate = ar.getBool();
        req.attest = ar.getBool();
        req.packets = decodePacketsRaw(ar);
        return req;
    });
}

void
encodeStepReply(ArchiveWriter &aw, const AdvanceReply &rep,
                std::uint8_t flags, std::uint64_t digest)
{
    aw.putU8(flags);
    encodeAdvanceReply(aw, rep);
    if (flags & step_flag_attested)
        aw.putU64(digest);
}

AdvanceReply
decodeStepReply(ArchiveReader &ar, std::uint8_t &flags,
                std::uint64_t *digest)
{
    return guardedDecode("StepReply", [&] {
        flags = ar.getU8();
        AdvanceReply rep = decodeAdvanceReplyRaw(ar);
        std::uint64_t d =
            (flags & step_flag_attested) ? ar.getU64() : 0;
        if (digest)
            *digest = d;
        return rep;
    });
}

void
encodePing(ArchiveWriter &aw, const PingRequest &req)
{
    aw.putU64(req.nonce);
}

PingRequest
decodePing(ArchiveReader &ar)
{
    return guardedDecode("Ping", [&] {
        PingRequest req;
        req.nonce = ar.getU64();
        return req;
    });
}

void
encodePong(ArchiveWriter &aw, const PongReply &rep)
{
    aw.putU64(rep.nonce);
    aw.putBool(rep.in_session);
    aw.putU64(rep.cur_time);
    aw.putU64(rep.sessions_active);
    aw.putU64(rep.sessions_served);
}

PongReply
decodePong(ArchiveReader &ar)
{
    return guardedDecode("Pong", [&] {
        PongReply rep;
        rep.nonce = ar.getU64();
        rep.in_session = ar.getBool();
        rep.cur_time = ar.getU64();
        rep.sessions_active = ar.getU64();
        rep.sessions_served = ar.getU64();
        return rep;
    });
}

void
encodeCkptReply(ArchiveWriter &aw, const CkptReply &rep)
{
    aw.putString(rep.image);
    aw.putU64(rep.digest);
}

CkptReply
decodeCkptReply(ArchiveReader &ar)
{
    return guardedDecode("CkptData", [&] {
        CkptReply rep;
        rep.image = ar.getString();
        rep.digest = ar.getU64();
        return rep;
    });
}

void
encodeCkptLoadReply(ArchiveWriter &aw, const CkptLoadReply &rep)
{
    aw.putU64(rep.cur_time);
    aw.putU64(rep.digest);
}

CkptLoadReply
decodeCkptLoadReply(ArchiveReader &ar)
{
    return guardedDecode("CkptLoadAck", [&] {
        CkptLoadReply rep;
        rep.cur_time = ar.getU64();
        rep.digest = ar.getU64();
        return rep;
    });
}

void
encodeStatsReply(ArchiveWriter &aw, const std::vector<StatRow> &rows)
{
    aw.putU64(rows.size());
    for (const auto &row : rows) {
        aw.putString(row.path);
        aw.putString(row.sub);
        aw.putDouble(row.value);
    }
}

std::vector<StatRow>
decodeStatsReply(ArchiveReader &ar)
{
    return guardedDecode("StatsData", [&] {
        std::uint64_t count = ar.getU64();
        // Two length-prefixed strings + a double: >= 16 bytes a row.
        checkCount(count, 16, "stat row");
        std::vector<StatRow> rows;
        rows.reserve(count);
        for (std::uint64_t i = 0; i < count; ++i) {
            StatRow row;
            row.path = ar.getString();
            row.sub = ar.getString();
            row.value = ar.getDouble();
            rows.push_back(std::move(row));
        }
        return rows;
    });
}

std::string
decodeBlob(ArchiveReader &ar)
{
    return guardedDecode("blob", [&] { return ar.getString(); });
}

Tick
decodeTick(ArchiveReader &ar)
{
    return guardedDecode("tick", [&] { return ar.getU64(); });
}

void
encodeError(ArchiveWriter &aw, ErrorKind kind, const std::string &what)
{
    aw.putU32(static_cast<std::uint32_t>(kind));
    aw.putString(what);
}

void
throwDecodedError(ArchiveReader &ar)
{
    auto decoded = guardedDecode("ErrorReply", [&] {
        // An out-of-range kind off the wire folds to Transport: the
        // peer is broken in a way this build cannot name.
        std::uint32_t raw = ar.getU32();
        auto kind =
            raw <= static_cast<std::uint32_t>(ErrorKind::Transport)
                ? static_cast<ErrorKind>(raw)
                : ErrorKind::Transport;
        std::string what = ar.getString();
        ar.endSection();
        return std::make_pair(kind, std::move(what));
    });
    throw SimError(decoded.first,
                   "remote peer reported: " + decoded.second);
}

} // namespace ipc
} // namespace rasim
