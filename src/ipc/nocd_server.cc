#include "ipc/nocd_server.hh"

#include <algorithm>
#include <chrono>
#include <utility>
#include <vector>

#include "abstractnet/latency_table.hh"
#include "ipc/faulty_transport.hh"
#include "ipc/protocol.hh"
#include "noc/cycle_network.hh"
#include "noc/deflection_network.hh"
#include "sim/config.hh"
#include "sim/logging.hh"
#include "sim/parallel_engine.hh"
#include "sim/serialize.hh"
#include "sim/simulation.hh"
#include "stats/group.hh"
#include "stats/stat.hh"

namespace rasim
{
namespace ipc
{

/**
 * One hosted network and everything that shadows it, including the
 * session's speculation state. Sessions share nothing mutable with
 * each other, which is what keeps every concurrent session
 * bit-identical to a solo run against a dedicated server.
 */
struct NocServer::Session
{
    explicit Session(const HelloRequest &req) : hello(req)
    {
        if (req.proto != protocol_version) {
            throw SimError(
                ErrorKind::Transport,
                "protocol version mismatch: client speaks v" +
                    std::to_string(req.proto) + ", server speaks v" +
                    std::to_string(protocol_version));
        }
        sim = std::make_unique<Simulation>();
        if (req.model == "cycle") {
            cycle = std::make_unique<noc::CycleNetwork>(*sim, "net",
                                                        req.params);
            net = cycle.get();
        } else if (req.model == "deflection") {
            defl = std::make_unique<noc::DeflectionNetwork>(
                *sim, "net", req.params);
            net = defl.get();
        } else {
            throw SimError(ErrorKind::Config,
                           "unknown hosted model '" + req.model +
                               "' (want cycle or deflection)");
        }
        if (req.engine_workers > 0) {
            engine =
                std::make_unique<ParallelEngine>(req.engine_workers);
            net->setEngine(engine.get());
        }
        table = std::make_unique<abstractnet::LatencyTable>(
            req.params, req.table_max_hops, req.table_alpha,
            req.table_pair_granularity
                ? abstractnet::LatencyTable::Granularity::Pair
                : abstractnet::LatencyTable::Granularity::Distance,
            req.params.numNodes());

        // Shadow-tune from every delivery, in delivery order — the
        // identical order the client-side bridge observes them, so
        // the two tables evolve bit-identically.
        net->setDeliveryHandler([this](const noc::PacketPtr &pkt) {
            deliveries.push_back(pkt);
            table->observe(static_cast<int>(pkt->cls),
                           static_cast<int>(pkt->hops),
                           hello.params.flitsPerPacket(pkt->size_bytes),
                           pkt->latency(), pkt->src, pkt->dst);
        });

        // Reconnect after a client-side quarantine: catch a fresh
        // network up to the client's clock so injections at the
        // current quantum are not "in the past".
        if (req.start_tick > 0)
            net->advanceTo(req.start_tick);
        deliveries.clear();
    }

    const stats::Group &statsGroup() const { return *group(); }
    stats::Group *
    group() const
    {
        return cycle ? static_cast<stats::Group *>(cycle.get())
                     : static_cast<stats::Group *>(defl.get());
    }

    void
    save(ArchiveWriter &aw) const
    {
        aw.beginSection("nocd");
        aw.putString(hello.model);
        aw.putU32(static_cast<std::uint32_t>(hello.params.columns));
        aw.putU32(static_cast<std::uint32_t>(hello.params.rows));
        aw.putU64(net->curTime());
        aw.endSection();
        saveStats(aw, statsGroup());
        if (cycle)
            cycle->save(aw);
        else
            defl->save(aw);
        table->saveBinary(aw);
    }

    void
    restore(ArchiveReader &ar)
    {
        ar.expectSection("nocd");
        std::string model = ar.getString();
        auto columns = static_cast<int>(ar.getU32());
        auto rows = static_cast<int>(ar.getU32());
        ar.getU64(); // informational tick
        ar.endSection();
        if (model != hello.model || columns != hello.params.columns ||
            rows != hello.params.rows) {
            throw SimError(ErrorKind::Config,
                           "checkpoint was taken on a different hosted "
                           "network (" +
                               model + " " + std::to_string(columns) +
                               "x" + std::to_string(rows) + ")");
        }
        restoreStats(ar, *group());
        if (cycle)
            cycle->restore(ar);
        else
            defl->restore(ar);
        table->restoreBinary(ar);
        deliveries.clear();
    }

    /** Serialize the whole session state to archive bytes — the
     *  CkptSave image, and the byte string the CRC64 attestation
     *  digest is taken over. Deterministic: two replicas holding the
     *  same state produce identical bytes, hence identical digests. */
    std::string
    serializedState() const
    {
        ArchiveWriter aw;
        save(aw);
        return aw.finish();
    }

    /** CRC64 replica-attestation digest of the current state. */
    std::uint64_t stateDigest() const { return crc64(serializedState()); }

    /** Package the state a quantum reply mirrors to the client,
     *  consuming the deliveries gathered since the last reply. */
    AdvanceReply
    takeReply()
    {
        AdvanceReply rep;
        rep.cur_time = net->curTime();
        rep.idle = net->idle();
        if (auto acct = net->accounting()) {
            rep.injected = acct->injected;
            rep.delivered = acct->delivered;
            rep.in_flight = acct->in_flight;
        }
        rep.deliveries = std::move(deliveries);
        deliveries.clear();
        return rep;
    }

    /** Record the stride of the client's quantum clock; the predictor
     *  assumes the next Step lands one stride further on. */
    void
    noteStep(const StepRequest &req)
    {
        if (req.target > last_target)
            last_delta = req.target - last_target;
        last_target = req.target;
    }

    HelloRequest hello;
    std::unique_ptr<Simulation> sim;
    std::unique_ptr<ParallelEngine> engine;
    std::unique_ptr<noc::CycleNetwork> cycle;
    std::unique_ptr<noc::DeflectionNetwork> defl;
    noc::NetworkModel *net = nullptr;
    std::unique_ptr<abstractnet::LatencyTable> table;
    std::vector<noc::PacketPtr> deliveries;

    /// @name Speculation state (see maybeSpeculate / rebase)
    /// @{
    bool spec_armed = false;    ///< predictor wants the next gap
    bool spec_valid = false;    ///< state is speculatively advanced
    Tick spec_predicted = 0;    ///< tick the speculation ran to
    std::string spec_snapshot;  ///< committed state (rebase target)
    std::string spec_frame;     ///< pre-sealed StepReply for a hit
    Tick last_target = 0;       ///< last Step's advance target
    Tick last_delta = 0;        ///< last observed quantum stride
    /// @}
};

/** One session thread. The Fd lives here so its lifetime matches the
 *  thread that reads from it — which is also what lets the watchdog
 *  reap a hung session from the accept thread: shutdownFd() on the
 *  shared Fd makes the blocked session thread see EOF without racing
 *  on descriptor ownership. */
struct NocServer::Worker
{
    Fd conn;
    std::thread thread;
    std::atomic<bool> done{false};
    /** steady-clock ms of the last completed frame (recv or reply);
     *  the watchdog reaps the session when this goes stale. */
    std::atomic<std::uint64_t> last_active_ms{0};
    std::atomic<bool> reaped{false};
};

/** RAII compute grant: waits for a FairScheduler slot on entry,
 *  releases it on exit, and feeds the wait/yield counters. */
class NocServer::Turn
{
  public:
    Turn(NocServer &srv, std::uint64_t id) : srv_(srv)
    {
        bool quota_yield = false;
        srv_.sched_.acquire(id, srv_.stop_, waited_, quota_yield);
        if (waited_)
            srv_.sched_waits_.fetch_add(1, std::memory_order_relaxed);
        if (quota_yield)
            srv_.quota_yields_.fetch_add(1, std::memory_order_relaxed);
    }
    ~Turn() { srv_.sched_.release(); }

    Turn(const Turn &) = delete;
    Turn &operator=(const Turn &) = delete;

    /** True when the grant had to queue behind other sessions. */
    bool waited() const { return waited_; }

  private:
    NocServer &srv_;
    bool waited_ = false;
};

namespace
{

void
flattenStats(const stats::Group &g, std::vector<StatRow> &out)
{
    for (const stats::Stat *s : g.statList())
        for (const auto &[sub, v] : s->values())
            out.push_back({g.path() + "." + s->name(), sub, v});
    for (const stats::Group *c : g.children())
        flattenStats(*c, out);
}

void
sendError(const Fd &conn, const SimError &err)
{
    ArchiveWriter aw = beginMessage(MsgType::ErrorReply);
    encodeError(aw, err.kind(), err.what());
    sendMessage(conn, std::move(aw));
}

void
sendError(ByteChannel &conn, const SimError &err)
{
    ArchiveWriter aw = beginMessage(MsgType::ErrorReply);
    encodeError(aw, err.kind(), err.what());
    sendMessage(conn, std::move(aw));
}

std::uint64_t
nowMs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

NocServerOptions
NocServerOptions::fromConfig(const Config &cfg)
{
    NocServerOptions o;
    o.address = cfg.getString("server.address", o.address);
    o.max_sessions = cfg.getUInt("server.max_sessions", o.max_sessions);
    o.serve_limit = cfg.getUInt("server.serve_limit", o.serve_limit);
    o.io_timeout_ms =
        cfg.getDouble("server.io_timeout_ms", o.io_timeout_ms);
    o.max_active = static_cast<int>(cfg.getUInt(
        "server.max_active", static_cast<std::uint64_t>(o.max_active)));
    o.quota_frames = static_cast<std::uint32_t>(
        cfg.getUInt("server.quota_frames", o.quota_frames));
    o.max_batch_packets =
        cfg.getUInt("server.max_batch_packets", o.max_batch_packets);
    o.speculate = cfg.getBool("server.speculate", o.speculate);
    o.drain_timeout_ms =
        cfg.getDouble("server.drain_timeout_ms", o.drain_timeout_ms);
    o.session_timeout_ms =
        cfg.getDouble("server.session_timeout_ms", o.session_timeout_ms);
    if (o.drain_timeout_ms < 0.0 || o.session_timeout_ms < 0.0)
        fatal("server.*_timeout_ms must be non-negative");
    o.fault = TransportFaultOptions::fromConfig(cfg);
    return o;
}

void
NocServer::FairScheduler::configure(int max_active,
                                    std::uint32_t quota_frames)
{
    std::lock_guard<std::mutex> lk(mu_);
    max_active_ = max_active > 0 ? max_active : 1;
    // quota 0 = unlimited consecutive grants (never force a yield).
    quota_ = quota_frames > 0 ? quota_frames : ~std::uint32_t(0);
}

void
NocServer::FairScheduler::acquire(std::uint64_t id,
                                  const std::atomic<bool> &stop,
                                  bool &waited, bool &quota_yield)
{
    std::unique_lock<std::mutex> lk(mu_);
    auto grant = [&] {
        ++active_;
        if (last_id_ == id) {
            ++consecutive_;
        } else {
            last_id_ = id;
            consecutive_ = 1;
        }
    };
    // A session continuing its streak may barge ahead of the queue
    // (its state is hot) until it exhausts quota_ consecutive grants;
    // after that it takes its place at the back — block round-robin
    // with block size quota_frames.
    bool streak = last_id_ == id && consecutive_ < quota_;
    if (active_ < max_active_ && (queue_.empty() || streak)) {
        grant();
        return;
    }
    waited = true;
    quota_yield =
        !queue_.empty() && last_id_ == id && consecutive_ >= quota_;
    queue_.push_back(id);
    // Timed slices instead of a pure notify wake: stop() is a plain
    // atomic store (it must stay async-signal-safe), so shutdown is
    // noticed by polling, not by notification.
    while (!stop.load(std::memory_order_relaxed) &&
           !(queue_.front() == id && active_ < max_active_)) {
        cv_.wait_for(lk, std::chrono::milliseconds(20));
    }
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (*it == id) {
            queue_.erase(it);
            break;
        }
    }
    // On shutdown this over-grants past max_active_ — harmless, every
    // session is winding down anyway.
    grant();
}

void
NocServer::FairScheduler::release()
{
    std::lock_guard<std::mutex> lk(mu_);
    --active_;
    cv_.notify_all();
}

NocServer::NocServer(NocServerOptions opts) : opts_(std::move(opts))
{
    listener_ = listenOn(opts_.address);
    int max_active = opts_.max_active;
    if (max_active <= 0) {
        unsigned hw = std::thread::hardware_concurrency();
        max_active = hw > 1 ? static_cast<int>(hw - 1) : 1;
    }
    sched_.configure(max_active, opts_.quota_frames);
}

NocServer::~NocServer()
{
    stop();
    reapWorkers(true);
    listener_.reset();
    // A clean shutdown leaves no stale socket file behind.
    unlinkAddress(opts_.address);
}

void
NocServer::stop()
{
    // Only the stores: stop() is called from signal handlers, so it
    // must stay async-signal-safe (no locks, no notifies). Waiters
    // poll the flags in timed slices.
    stop_.store(true, std::memory_order_relaxed);
    wake_.store(true, std::memory_order_relaxed);
}

void
NocServer::drain()
{
    drain_.store(true, std::memory_order_relaxed);
    wake_.store(true, std::memory_order_relaxed);
}

NocServerCounters
NocServer::counters() const
{
    NocServerCounters c;
    c.sessions_served = sessions_served_.load(std::memory_order_relaxed);
    c.sessions_active = sessions_active_.load(std::memory_order_relaxed);
    c.sessions_peak = sessions_peak_.load(std::memory_order_relaxed);
    c.sessions_rejected =
        sessions_rejected_.load(std::memory_order_relaxed);
    c.frames = frames_.load(std::memory_order_relaxed);
    c.spec_hits = spec_hits_.load(std::memory_order_relaxed);
    c.spec_rebases = spec_rebases_.load(std::memory_order_relaxed);
    c.sched_waits = sched_waits_.load(std::memory_order_relaxed);
    c.quota_yields = quota_yields_.load(std::memory_order_relaxed);
    c.quota_trips = quota_trips_.load(std::memory_order_relaxed);
    c.sessions_reaped =
        sessions_reaped_.load(std::memory_order_relaxed);
    return c;
}

void
NocServer::reapWorkers(bool all)
{
    std::lock_guard<std::mutex> lk(workers_mu_);
    for (auto it = workers_.begin(); it != workers_.end();) {
        Worker &w = **it;
        if (all || w.done.load(std::memory_order_acquire)) {
            if (w.thread.joinable())
                w.thread.join();
            it = workers_.erase(it);
        } else {
            ++it;
        }
    }
}

void
NocServer::run()
{
    // With the watchdog on, the accept wait must tick: a hung session
    // is reaped by the *accept* thread, which otherwise blocks
    // indefinitely when no new client ever connects.
    double slice = 0.0;
    if (opts_.session_timeout_ms > 0.0) {
        slice = std::min(500.0,
                         std::max(10.0, opts_.session_timeout_ms / 4.0));
    }
    while (!stop_.load(std::memory_order_relaxed)) {
        Fd conn = acceptOn(listener_, slice, &wake_);
        if (drain_.load(std::memory_order_relaxed))
            break; // an accepted-but-unserved conn just closes
        if (!conn.valid()) {
            // Stop requested, watchdog tick, or spurious wakeup.
            reapHung();
            continue;
        }
        reapWorkers(false);

        std::uint64_t active =
            sessions_active_.load(std::memory_order_relaxed);
        if (opts_.max_sessions > 0 && active >= opts_.max_sessions) {
            sessions_rejected_.fetch_add(1, std::memory_order_relaxed);
            try {
                sendError(conn,
                          SimError(ErrorKind::Transport,
                                   "server at capacity (" +
                                       std::to_string(active) + " of " +
                                       std::to_string(
                                           opts_.max_sessions) +
                                       " sessions active); retry later"));
            } catch (const SimError &) {
                // The refused client vanished first; nothing to tell.
            }
            continue;
        }

        std::uint64_t id =
            sessions_served_.fetch_add(1, std::memory_order_relaxed) + 1;
        std::uint64_t now_active =
            sessions_active_.fetch_add(1, std::memory_order_relaxed) + 1;
        std::uint64_t peak =
            sessions_peak_.load(std::memory_order_relaxed);
        while (peak < now_active &&
               !sessions_peak_.compare_exchange_weak(
                   peak, now_active, std::memory_order_relaxed)) {
        }

        auto owned = std::make_unique<Worker>();
        Worker *w = owned.get();
        w->conn = std::move(conn);
        {
            std::lock_guard<std::mutex> lk(workers_mu_);
            workers_.push_back(std::move(owned));
        }
        w->last_active_ms.store(nowMs(), std::memory_order_relaxed);
        w->thread = std::thread([this, w, id] {
            try {
                serveConnection(*w, id);
            } catch (const SimError &err) {
                // A sick or vanished client must not take the server
                // down; drop the session and keep serving the rest.
                // (A reaped session's error is the watchdog's doing,
                // already counted; shutdown noise is not news either.)
                if (!stop_.load(std::memory_order_relaxed) &&
                    !drain_.load(std::memory_order_relaxed) &&
                    !w->reaped.load(std::memory_order_relaxed)) {
                    warn("nocd session ", id,
                         " ended abnormally: ", err.what());
                }
            }
            // The Fd itself is reclaimed later (reapWorkers); shut it
            // down now so the peer sees EOF the moment the session
            // ends instead of when the accept loop next turns over.
            shutdownFd(w->conn);
            sessions_active_.fetch_sub(1, std::memory_order_relaxed);
            w->done.store(true, std::memory_order_release);
        });

        if (opts_.serve_limit > 0 && id >= opts_.serve_limit)
            break; // --once and friends: drain, then return
    }
    if (drain_.load(std::memory_order_relaxed) &&
        !stop_.load(std::memory_order_relaxed)) {
        drainSessions();
    }
    reapWorkers(true);
}

void
NocServer::reapHung()
{
    if (opts_.session_timeout_ms <= 0.0)
        return;
    const std::uint64_t now = nowMs();
    const auto budget =
        static_cast<std::uint64_t>(opts_.session_timeout_ms);
    std::lock_guard<std::mutex> lk(workers_mu_);
    for (const auto &w : workers_) {
        if (w->done.load(std::memory_order_acquire) ||
            w->reaped.load(std::memory_order_relaxed)) {
            continue;
        }
        std::uint64_t last =
            w->last_active_ms.load(std::memory_order_relaxed);
        if (last == 0 || now < last || now - last < budget)
            continue;
        w->reaped.store(true, std::memory_order_relaxed);
        sessions_reaped_.fetch_add(1, std::memory_order_relaxed);
        // Shut down, don't close: the session thread owns the Fd and
        // is (at worst) blocked reading it — it sees EOF and unwinds.
        shutdownFd(w->conn);
    }
}

void
NocServer::drainSessions()
{
    const auto start = std::chrono::steady_clock::now();
    while (sessions_active_.load(std::memory_order_relaxed) > 0) {
        if (opts_.drain_timeout_ms > 0.0) {
            double waited = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - start)
                                .count();
            if (waited >= opts_.drain_timeout_ms)
                break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    // Whatever is still alive gets the hard stop it would have gotten
    // without the grace period.
    stop_.store(true, std::memory_order_relaxed);
}

void
NocServer::serveConnection(Worker &w, std::uint64_t id)
{
    // The session's view of its socket: a FaultyTransport when the
    // daemon itself runs chaos (stream = session id, so concurrent
    // sessions draw independent, individually deterministic fault
    // sequences), a plain FdChannel otherwise.
    std::unique_ptr<ByteChannel> owned =
        std::make_unique<FdChannel>(&w.conn);
    if (opts_.fault.enabled) {
        owned = std::make_unique<FaultyTransport>(std::move(owned),
                                                  opts_.fault, id);
    }
    ByteChannel &conn = *owned;

    std::unique_ptr<Session> session;
    while (!stop_.load(std::memory_order_relaxed)) {
        // Drain is only honoured here, between frames: the previous
        // reply went out whole, nothing has been read of the next
        // request, so closing now leaves no torn frame on the wire.
        if (drain_.load(std::memory_order_relaxed)) {
            drainTail(conn, session, id);
            return;
        }
        // The gap while the client simulates its own quantum is free
        // compute: run the predicted next quantum now, so a matching
        // Step is answered with a pre-sealed reply.
        if (session)
            maybeSpeculate(conn, *session, id);
        std::optional<Message> msg;
        try {
            msg = recvMessage(conn, opts_.io_timeout_ms, &wake_);
        } catch (const SimError &) {
            // A read cut short by shutdown is the wind-down working,
            // not a session failure. On drain the wake may have
            // interrupted the wait with a request already buffered on
            // the socket — that request still deserves its reply.
            if (stop_.load(std::memory_order_relaxed))
                return;
            if (drain_.load(std::memory_order_relaxed)) {
                drainTail(conn, session, id);
                return;
            }
            throw;
        }
        if (!msg)
            return; // clean EOF: the client is gone
        w.last_active_ms.store(nowMs(), std::memory_order_relaxed);
        frames_.fetch_add(1, std::memory_order_relaxed);
        if (!dispatch(conn, *msg, session, id))
            return;
        w.last_active_ms.store(nowMs(), std::memory_order_relaxed);
    }
}

void
NocServer::drainTail(ByteChannel &conn,
                     std::unique_ptr<Session> &session, std::uint64_t id)
{
    // A request that was already on the wire when the drain landed
    // gets its reply before the frame-boundary close; a client racing
    // further requests past this point loses them, exactly as if the
    // daemon had gone away an instant earlier.
    try {
        while (conn.valid() && conn.readable()) {
            std::optional<Message> msg =
                recvMessage(conn, opts_.io_timeout_ms);
            if (!msg)
                return;
            frames_.fetch_add(1, std::memory_order_relaxed);
            if (!dispatch(conn, *msg, session, id))
                return;
        }
    } catch (const SimError &) {
        // Best effort only: the wind-down must not turn an interrupted
        // read into a crash.
    }
}

void
NocServer::rebase(Session &session)
{
    spec_rebases_.fetch_add(1, std::memory_order_relaxed);
    ArchiveReader ar(std::move(session.spec_snapshot));
    if (!ar.ok()) {
        throw SimError(ErrorKind::Internal,
                       "speculation snapshot unreadable: " + ar.error());
    }
    session.restore(ar);
    session.spec_snapshot.clear();
    session.spec_frame.clear();
    session.spec_valid = false;
}

void
NocServer::maybeSpeculate(ByteChannel &conn, Session &session,
                          std::uint64_t id)
{
    if (!session.spec_armed || session.spec_valid)
        return;
    session.spec_armed = false;
    // If the next request already arrived, real work beats
    // speculative work.
    if (conn.readable())
        return;

    Tick predicted = session.last_target + session.last_delta;
    ArchiveWriter snap;
    session.save(snap);
    std::string snapshot = snap.finish();
    try {
        bool waited = false;
        {
            Turn turn(*this, id);
            session.deliveries.clear();
            session.net->advanceTo(predicted);
            waited = turn.waited();
        }
        AdvanceReply rep = session.takeReply();
        std::uint8_t flags = step_flag_spec_hit;
        if (waited)
            flags |= step_flag_throttled;
        ArchiveWriter aw = beginMessage(MsgType::StepReply);
        encodeStepReply(aw, rep, flags);
        session.spec_frame = sealFrame(std::move(aw));
        session.spec_snapshot = std::move(snapshot);
        session.spec_predicted = predicted;
        session.spec_valid = true;
    } catch (const SimError &) {
        // Speculation must never hurt the session: roll back and let
        // the real request reproduce (and report) any simulation
        // error on the committed path.
        ArchiveReader ar(std::move(snapshot));
        session.restore(ar);
        session.spec_valid = false;
    }
}

bool
NocServer::dispatch(ByteChannel &conn, Message &msg,
                    std::unique_ptr<Session> &session, std::uint64_t id)
{
    // Every failure below is reported to the client as a typed
    // ErrorReply; only transport trouble while replying propagates.
    try {
        // Liveness probes are legal on any connection, session or not:
        // the supervisor's heartbeat and the client's standby prober
        // must be able to ask "are you alive?" without opening (or
        // disturbing) a session — in particular a Ping never costs a
        // speculation rebase.
        if (msg.type == MsgType::Ping) {
            PingRequest req = decodePing(msg.ar);
            msg.done();
            PongReply rep;
            rep.nonce = req.nonce;
            rep.in_session = session != nullptr;
            rep.cur_time = session ? session->net->curTime() : 0;
            rep.sessions_active =
                sessions_active_.load(std::memory_order_relaxed);
            rep.sessions_served =
                sessions_served_.load(std::memory_order_relaxed);
            ArchiveWriter aw = beginMessage(MsgType::Pong);
            encodePong(aw, rep);
            sendMessage(conn, std::move(aw));
            return true;
        }
        if (!session && msg.type != MsgType::Hello &&
            msg.type != MsgType::Bye) {
            throw SimError(ErrorKind::Transport,
                           std::string("request ") + toString(msg.type) +
                               " before Hello");
        }
        // Any non-Step request consumes the committed state: undo a
        // live speculation before serving it. (A Step resolves its
        // own hit-or-rebase below; Bye tears the state down anyway.)
        if (session && session->spec_valid &&
            msg.type != MsgType::Step && msg.type != MsgType::Bye) {
            rebase(*session);
        }
        auto checkQuota = [&](std::size_t n) {
            if (opts_.max_batch_packets > 0 &&
                n > opts_.max_batch_packets) {
                quota_trips_.fetch_add(1, std::memory_order_relaxed);
                throw SimError(
                    ErrorKind::Transport,
                    "backpressure: inject batch of " +
                        std::to_string(n) +
                        " packets exceeds server quota of " +
                        std::to_string(opts_.max_batch_packets));
            }
        };
        switch (msg.type) {
          case MsgType::Hello: {
            HelloRequest req = decodeHello(msg.ar);
            msg.done();
            {
                // Construction can fast-forward a reconnecting
                // session arbitrarily far: that is compute.
                Turn turn(*this, id);
                session = std::make_unique<Session>(req);
            }
            HelloReply rep;
            rep.num_nodes = session->net->numNodes();
            rep.cur_time = session->net->curTime();
            ArchiveWriter aw = beginMessage(MsgType::HelloAck);
            encodeHelloReply(aw, rep);
            sendMessage(conn, std::move(aw));
            return true;
          }
          case MsgType::InjectBatch: {
            // Unacknowledged on purpose: one round-trip per quantum.
            // An injection failure surfaces on the next Advance reply.
            auto pkts = decodePackets(msg.ar);
            msg.done();
            checkQuota(pkts.size());
            for (const auto &pkt : pkts)
                session->net->inject(pkt);
            return true;
          }
          case MsgType::Advance: {
            Tick target = decodeAdvance(msg.ar);
            msg.done();
            {
                Turn turn(*this, id);
                session->deliveries.clear();
                session->net->advanceTo(target);
            }
            AdvanceReply rep = session->takeReply();
            ArchiveWriter aw = beginMessage(MsgType::DeliveryBatch);
            encodeAdvanceReply(aw, rep);
            sendMessage(conn, std::move(aw));
            return true;
          }
          case MsgType::Step: {
            StepRequest req = decodeStep(msg.ar);
            msg.done();
            std::uint8_t flags = 0;
            if (session->spec_valid) {
                // An attested Step cannot take the pre-sealed frame:
                // the digest was not computed when the reply was
                // sealed, so fall through to the rebase+execute path.
                if (!req.attest && req.packets.empty() &&
                    req.target == session->spec_predicted) {
                    // Spec hit: the state already sits at the target
                    // and the reply was sealed during the gap.
                    spec_hits_.fetch_add(1, std::memory_order_relaxed);
                    sendFrameBytes(conn, session->spec_frame);
                    session->spec_frame.clear();
                    session->spec_snapshot.clear();
                    session->spec_valid = false;
                    session->noteStep(req);
                    session->spec_armed = opts_.speculate &&
                                          req.speculate &&
                                          !session->net->idle();
                    return true;
                }
                rebase(*session);
                flags |= step_flag_rebased;
            }
            checkQuota(req.packets.size());
            bool waited = false;
            {
                Turn turn(*this, id);
                session->deliveries.clear();
                for (const auto &pkt : req.packets)
                    session->net->inject(pkt);
                session->net->advanceTo(req.target);
                waited = turn.waited();
            }
            if (waited)
                flags |= step_flag_throttled;
            AdvanceReply rep = session->takeReply();
            std::uint64_t digest = 0;
            if (req.attest) {
                flags |= step_flag_attested;
                digest = session->stateDigest();
            }
            ArchiveWriter aw = beginMessage(MsgType::StepReply);
            encodeStepReply(aw, rep, flags, digest);
            sendMessage(conn, std::move(aw));
            session->noteStep(req);
            // Arm the predictor only for a drain-shaped quantum: no
            // injections arrived and traffic is still in flight, so
            // the next Step is very likely "same stride, empty batch".
            session->spec_armed = opts_.speculate && req.speculate &&
                                  req.packets.empty() &&
                                  session->last_delta > 0 &&
                                  !session->net->idle();
            return true;
          }
          case MsgType::TableGet: {
            msg.done();
            ArchiveWriter aw = beginMessage(MsgType::TableData);
            session->table->saveBinary(aw);
            sendMessage(conn, std::move(aw));
            return true;
          }
          case MsgType::StatsGet: {
            msg.done();
            std::vector<StatRow> rows;
            flattenStats(session->statsGroup(), rows);
            ArchiveWriter aw = beginMessage(MsgType::StatsData);
            encodeStatsReply(aw, rows);
            sendMessage(conn, std::move(aw));
            return true;
          }
          case MsgType::CkptSave: {
            msg.done();
            ArchiveWriter image;
            {
                Turn turn(*this, id);
                session->save(image);
            }
            CkptReply rep;
            rep.image = image.finish();
            // Attest the image bytes themselves: a standby restored
            // from them re-serializes to the same bytes, so its
            // CkptLoadAck digest must equal this one.
            rep.digest = crc64(rep.image);
            ArchiveWriter aw = beginMessage(MsgType::CkptData);
            encodeCkptReply(aw, rep);
            sendMessage(conn, std::move(aw));
            return true;
          }
          case MsgType::CkptLoad: {
            std::string bytes = decodeBlob(msg.ar);
            msg.done();
            ArchiveReader image(std::move(bytes));
            if (!image.ok()) {
                throw SimError(ErrorKind::Transport,
                               "corrupt checkpoint image: " +
                                   image.error());
            }
            {
                Turn turn(*this, id);
                try {
                    // A CRC-valid image whose structure is not a
                    // session checkpoint must be a typed refusal, not
                    // an archive-misuse panic: it came off the wire.
                    logging::ThrowOnError guard;
                    session->restore(image);
                } catch (const SimError &err) {
                    if (err.kind() == ErrorKind::Config)
                        throw;
                    throw SimError(ErrorKind::Transport,
                                   std::string(
                                       "corrupt checkpoint image: ") +
                                       err.what());
                }
            }
            CkptLoadReply rep;
            rep.cur_time = session->net->curTime();
            // Re-serialize what was just restored: this is the
            // replica's own proof that its state is bit-identical to
            // the image it was primed from.
            rep.digest = crc64(session->serializedState());
            ArchiveWriter aw = beginMessage(MsgType::CkptLoadAck);
            encodeCkptLoadReply(aw, rep);
            sendMessage(conn, std::move(aw));
            return true;
          }
          case MsgType::Bye:
            msg.done();
            return false;
          default:
            throw SimError(ErrorKind::Transport,
                           std::string("unexpected message type ") +
                               toString(msg.type));
        }
    } catch (const SimError &err) {
        sendError(conn, err);
        // A failed Hello leaves no session; anything else keeps the
        // connection alive so the client can decide what to do.
        return session != nullptr;
    }
}

} // namespace ipc
} // namespace rasim
