#include "ipc/nocd_server.hh"

#include <vector>

#include "abstractnet/latency_table.hh"
#include "ipc/protocol.hh"
#include "noc/cycle_network.hh"
#include "noc/deflection_network.hh"
#include "sim/logging.hh"
#include "sim/parallel_engine.hh"
#include "sim/simulation.hh"
#include "stats/group.hh"
#include "stats/stat.hh"

namespace rasim
{
namespace ipc
{

/**
 * One hosted network and everything that shadows it. Torn down and
 * rebuilt per session, so a new client always starts from a fresh,
 * deterministic world.
 */
struct NocServer::Session
{
    explicit Session(const HelloRequest &req) : hello(req)
    {
        if (req.proto != protocol_version) {
            throw SimError(
                ErrorKind::Transport,
                "protocol version mismatch: client speaks v" +
                    std::to_string(req.proto) + ", server speaks v" +
                    std::to_string(protocol_version));
        }
        sim = std::make_unique<Simulation>();
        if (req.model == "cycle") {
            cycle = std::make_unique<noc::CycleNetwork>(*sim, "net",
                                                        req.params);
            net = cycle.get();
        } else if (req.model == "deflection") {
            defl = std::make_unique<noc::DeflectionNetwork>(
                *sim, "net", req.params);
            net = defl.get();
        } else {
            throw SimError(ErrorKind::Config,
                           "unknown hosted model '" + req.model +
                               "' (want cycle or deflection)");
        }
        if (req.engine_workers > 0) {
            engine =
                std::make_unique<ParallelEngine>(req.engine_workers);
            net->setEngine(engine.get());
        }
        table = std::make_unique<abstractnet::LatencyTable>(
            req.params, req.table_max_hops, req.table_alpha,
            req.table_pair_granularity
                ? abstractnet::LatencyTable::Granularity::Pair
                : abstractnet::LatencyTable::Granularity::Distance,
            req.params.numNodes());

        // Shadow-tune from every delivery, in delivery order — the
        // identical order the client-side bridge observes them, so
        // the two tables evolve bit-identically.
        net->setDeliveryHandler([this](const noc::PacketPtr &pkt) {
            deliveries.push_back(pkt);
            table->observe(static_cast<int>(pkt->cls),
                           static_cast<int>(pkt->hops),
                           hello.params.flitsPerPacket(pkt->size_bytes),
                           pkt->latency(), pkt->src, pkt->dst);
        });

        // Reconnect after a client-side quarantine: catch a fresh
        // network up to the client's clock so injections at the
        // current quantum are not "in the past".
        if (req.start_tick > 0)
            net->advanceTo(req.start_tick);
        deliveries.clear();
    }

    const stats::Group &statsGroup() const { return *group(); }
    stats::Group *
    group() const
    {
        return cycle ? static_cast<stats::Group *>(cycle.get())
                     : static_cast<stats::Group *>(defl.get());
    }

    void
    save(ArchiveWriter &aw) const
    {
        aw.beginSection("nocd");
        aw.putString(hello.model);
        aw.putU32(static_cast<std::uint32_t>(hello.params.columns));
        aw.putU32(static_cast<std::uint32_t>(hello.params.rows));
        aw.putU64(net->curTime());
        aw.endSection();
        saveStats(aw, statsGroup());
        if (cycle)
            cycle->save(aw);
        else
            defl->save(aw);
        table->saveBinary(aw);
    }

    void
    restore(ArchiveReader &ar)
    {
        ar.expectSection("nocd");
        std::string model = ar.getString();
        auto columns = static_cast<int>(ar.getU32());
        auto rows = static_cast<int>(ar.getU32());
        ar.getU64(); // informational tick
        ar.endSection();
        if (model != hello.model || columns != hello.params.columns ||
            rows != hello.params.rows) {
            throw SimError(ErrorKind::Config,
                           "checkpoint was taken on a different hosted "
                           "network (" +
                               model + " " + std::to_string(columns) +
                               "x" + std::to_string(rows) + ")");
        }
        restoreStats(ar, *group());
        if (cycle)
            cycle->restore(ar);
        else
            defl->restore(ar);
        table->restoreBinary(ar);
        deliveries.clear();
    }

    HelloRequest hello;
    std::unique_ptr<Simulation> sim;
    std::unique_ptr<ParallelEngine> engine;
    std::unique_ptr<noc::CycleNetwork> cycle;
    std::unique_ptr<noc::DeflectionNetwork> defl;
    noc::NetworkModel *net = nullptr;
    std::unique_ptr<abstractnet::LatencyTable> table;
    std::vector<noc::PacketPtr> deliveries;
};

namespace
{

void
flattenStats(const stats::Group &g, std::vector<StatRow> &out)
{
    for (const stats::Stat *s : g.statList())
        for (const auto &[sub, v] : s->values())
            out.push_back({g.path() + "." + s->name(), sub, v});
    for (const stats::Group *c : g.children())
        flattenStats(*c, out);
}

void
sendError(const Fd &conn, const SimError &err)
{
    ArchiveWriter aw = beginMessage(MsgType::ErrorReply);
    encodeError(aw, err.kind(), err.what());
    sendMessage(conn, std::move(aw));
}

} // namespace

NocServer::NocServer(NocServerOptions opts) : opts_(std::move(opts))
{
    listener_ = listenOn(opts_.address);
}

NocServer::~NocServer() = default;

void
NocServer::run()
{
    while (!stop_.load(std::memory_order_relaxed)) {
        Fd conn = acceptOn(listener_, 0.0, &stop_);
        if (!conn.valid())
            continue; // stop requested (or spurious wakeup)
        ++sessions_;
        try {
            serveConnection(conn);
        } catch (const SimError &err) {
            // A sick or vanished client must not take the server
            // down; drop the session and serve the next one.
            warn("nocd session ended abnormally: ", err.what());
        }
        if (opts_.max_sessions > 0 && sessions_ >= opts_.max_sessions)
            break;
    }
}

void
NocServer::serveConnection(const Fd &conn)
{
    std::unique_ptr<Session> session;
    while (!stop_.load(std::memory_order_relaxed)) {
        auto msg = recvMessage(conn, opts_.io_timeout_ms, &stop_);
        if (!msg)
            return; // clean EOF: the client is gone
        if (!dispatch(conn, *msg, session))
            return;
    }
}

bool
NocServer::dispatch(const Fd &conn, Message &msg,
                    std::unique_ptr<Session> &session)
{
    // Every failure below is reported to the client as a typed
    // ErrorReply; only transport trouble while replying propagates.
    try {
        if (!session && msg.type != MsgType::Hello &&
            msg.type != MsgType::Bye) {
            throw SimError(ErrorKind::Transport,
                           std::string("request ") + toString(msg.type) +
                               " before Hello");
        }
        switch (msg.type) {
          case MsgType::Hello: {
            HelloRequest req = decodeHello(msg.ar);
            msg.done();
            session = std::make_unique<Session>(req);
            HelloReply rep;
            rep.num_nodes = session->net->numNodes();
            rep.cur_time = session->net->curTime();
            ArchiveWriter aw = beginMessage(MsgType::HelloAck);
            encodeHelloReply(aw, rep);
            sendMessage(conn, std::move(aw));
            return true;
          }
          case MsgType::InjectBatch: {
            // Unacknowledged on purpose: one round-trip per quantum.
            // An injection failure surfaces on the next Advance reply.
            auto pkts = decodePackets(msg.ar);
            msg.done();
            for (const auto &pkt : pkts)
                session->net->inject(pkt);
            return true;
          }
          case MsgType::Advance: {
            Tick target = decodeAdvance(msg.ar);
            msg.done();
            session->deliveries.clear();
            session->net->advanceTo(target);
            AdvanceReply rep;
            rep.cur_time = session->net->curTime();
            rep.idle = session->net->idle();
            if (auto acct = session->net->accounting()) {
                rep.injected = acct->injected;
                rep.delivered = acct->delivered;
                rep.in_flight = acct->in_flight;
            }
            rep.deliveries = std::move(session->deliveries);
            session->deliveries.clear();
            ArchiveWriter aw = beginMessage(MsgType::DeliveryBatch);
            encodeAdvanceReply(aw, rep);
            sendMessage(conn, std::move(aw));
            return true;
          }
          case MsgType::TableGet: {
            msg.done();
            ArchiveWriter aw = beginMessage(MsgType::TableData);
            session->table->saveBinary(aw);
            sendMessage(conn, std::move(aw));
            return true;
          }
          case MsgType::StatsGet: {
            msg.done();
            std::vector<StatRow> rows;
            flattenStats(session->statsGroup(), rows);
            ArchiveWriter aw = beginMessage(MsgType::StatsData);
            encodeStatsReply(aw, rows);
            sendMessage(conn, std::move(aw));
            return true;
          }
          case MsgType::CkptSave: {
            msg.done();
            ArchiveWriter image;
            session->save(image);
            ArchiveWriter aw = beginMessage(MsgType::CkptData);
            aw.putString(image.finish());
            sendMessage(conn, std::move(aw));
            return true;
          }
          case MsgType::CkptLoad: {
            std::string bytes = msg.ar.getString();
            msg.done();
            ArchiveReader image(std::move(bytes));
            if (!image.ok()) {
                throw SimError(ErrorKind::Transport,
                               "corrupt checkpoint image: " +
                                   image.error());
            }
            session->restore(image);
            ArchiveWriter aw = beginMessage(MsgType::CkptLoadAck);
            aw.putU64(session->net->curTime());
            sendMessage(conn, std::move(aw));
            return true;
          }
          case MsgType::Bye:
            msg.done();
            return false;
          default:
            throw SimError(ErrorKind::Transport,
                           std::string("unexpected message type ") +
                               toString(msg.type));
        }
    } catch (const SimError &err) {
        sendError(conn, err);
        // A failed Hello leaves no session; anything else keeps the
        // connection alive so the client can decide what to do.
        return session != nullptr;
    }
}

} // namespace ipc
} // namespace rasim
