/**
 * @file
 * The rasim-nocd session server: hosts cycle-level networks
 * (CycleNetwork or DeflectionNetwork, serial or parallel engine)
 * behind a socket speaking the quantum-RPC protocol.
 *
 * Since protocol v2 the daemon multiplexes: every accepted connection
 * gets its own session — network, engine, shadow table, speculation
 * state — served on its own thread, so N clients co-simulate against
 * one daemon concurrently. Determinism survives because sessions
 * share *nothing* stateful (the packet pool is a thread-safe slab
 * allocator whose slot indices are never part of simulation state);
 * each session remains bit-identical to a solo run against a
 * dedicated server, which is exactly what the multi-session soak
 * test asserts.
 *
 * Fairness and backpressure: a round-robin FairScheduler bounds how
 * many sessions compute at once (server.max_active) and forces a
 * session that has taken server.quota_frames consecutive compute
 * grants to yield while others wait. A hard per-batch packet quota
 * (server.max_batch_packets) refuses absurd inject batches with a
 * typed "backpressure:" ErrorReply — the client's health machinery
 * turns that into a quarantine instead of letting one client starve
 * the daemon. Admission control (server.max_sessions) rejects
 * connections beyond the concurrent cap at Hello time.
 *
 * Speculation: after answering a Step whose inject batch was empty,
 * a session may snapshot its committed state and speculatively
 * execute the predicted next quantum during the client's compute
 * gap, pre-encoding the reply. A matching next Step is answered
 * from the cache (spec hit); anything else rolls the session back
 * to the snapshot first (deterministic rebase). The simulation
 * payload of the reply is bit-identical either way — only the
 * observability flags byte records which path ran — see DESIGN.md
 * section 11.
 *
 * The server also keeps a shadow LatencyTable per session, tuned from
 * every delivery in delivery order — the same order the client-side
 * bridge observes them — so TableGet returns a table bit-identical to
 * the client's own tuned table. That readback is the differential
 * proof that remote feedback behaves exactly like in-process feedback.
 *
 * NocServer is usable two ways: run() on a background thread inside a
 * test process (hermetic differential tests), or wrapped by the
 * rasim-nocd executable for cross-process runs.
 */

#ifndef RASIM_IPC_NOCD_SERVER_HH
#define RASIM_IPC_NOCD_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ipc/frame.hh"
#include "ipc/socket.hh"
#include "sim/fault_injector.hh"

namespace rasim
{

class Config;

namespace ipc
{

struct NocServerOptions
{
    /** Listen address (unix:/path, tcp:host:port, or a bare path). */
    std::string address = "unix:/tmp/rasim-nocd.sock";
    /** Concurrent-session cap (admission control); a connection over
     *  the cap is refused with a typed ErrorReply. 0 = unlimited. */
    std::uint64_t max_sessions = 0;
    /** Exit after this many sessions have been accepted *and served
     *  to completion* (0 = serve forever). The --once tooling hook,
     *  orthogonal to the concurrent cap above. */
    std::uint64_t serve_limit = 0;
    /** Idle deadline while waiting for the next request inside a
     *  session, in ms (0 = wait forever). A client that vanished
     *  without closing its socket frees the server after this long. */
    double io_timeout_ms = 0.0;
    /** Sessions allowed to run simulation work at once (0 = auto:
     *  hardware threads minus one, at least one). */
    int max_active = 0;
    /** Consecutive compute grants one session may take while others
     *  are waiting before it is forced to the back of the queue. */
    std::uint32_t quota_frames = 64;
    /** Hard per-batch packet quota; a larger inject batch is refused
     *  with a "backpressure:" ErrorReply. 0 = unlimited. */
    std::uint64_t max_batch_packets = 1u << 20;
    /** Honour client speculation hints (speculative execution of the
     *  predicted next quantum during the client's compute gap). */
    bool speculate = true;
    /** drain(): how long to wait for live sessions to finish their
     *  in-flight work before hard-stopping, in ms (0 = forever). */
    double drain_timeout_ms = 5000.0;
    /** Session watchdog: a session that completes no frame for this
     *  long is reaped — its socket is shut down, so a client hung
     *  mid-frame (or vanished without closing) frees its seat and
     *  thread. 0 = watchdog off. Must exceed the client's longest
     *  compute gap between quanta. */
    double session_timeout_ms = 0.0;
    /** Server-side transport chaos (fault.transport.*): every session
     *  connection is wrapped in a FaultyTransport drawing from its own
     *  schedule stream (the session id), so multi-session chaos stays
     *  per-session deterministic. */
    TransportFaultOptions fault;

    /** Read the "server.*" and "fault.transport.*" keys. */
    static NocServerOptions fromConfig(const Config &cfg);
};

/** Monotonic scheduler/speculation/admission counters, exported for
 *  observability and asserted sane by the multi-session soak test. */
struct NocServerCounters
{
    std::uint64_t sessions_served = 0;   ///< connections admitted
    std::uint64_t sessions_active = 0;   ///< live right now
    std::uint64_t sessions_peak = 0;     ///< high-water mark of active
    std::uint64_t sessions_rejected = 0; ///< refused over the cap
    std::uint64_t frames = 0;            ///< requests dispatched
    std::uint64_t spec_hits = 0;         ///< pre-computed Step replies
    std::uint64_t spec_rebases = 0;      ///< speculations rolled back
    std::uint64_t sched_waits = 0;       ///< grants that had to queue
    std::uint64_t quota_yields = 0;      ///< forced round-robin yields
    std::uint64_t quota_trips = 0;       ///< batches refused (quota)
    std::uint64_t sessions_reaped = 0;   ///< hung sessions watchdogged
};

class NocServer
{
  public:
    /** Binds and listens immediately, so the address is connectable
     *  the moment the constructor returns (no startup race for tests
     *  and scripts). @throws SimError on an unusable address. */
    explicit NocServer(NocServerOptions opts);

    /** Stops, joins every session thread and removes the Unix socket
     *  file (clean shutdown leaves no stale address behind). */
    ~NocServer();

    NocServer(const NocServer &) = delete;
    NocServer &operator=(const NocServer &) = delete;

    /**
     * Accept and serve sessions until stop() is called or serve_limit
     * is reached, each session on its own thread. Blocking; run it on
     * a thread when the server shares a process with the client.
     */
    void run();

    /** Ask run() to return at the next safe point (thread-safe).
     *  In-flight sessions are woken and wound down. */
    void stop();

    /** Graceful shutdown (SIGTERM): stop accepting, let every live
     *  session finish its in-flight request and close at a frame
     *  boundary — no torn frames on the wire — then return from
     *  run(). Sessions still running after drain_timeout_ms are cut
     *  loose as by stop(). Async-signal-safe (plain atomic stores),
     *  like stop(). */
    void drain();

    const std::string &address() const { return opts_.address; }

    /** Connections admitted so far (thread-safe). */
    std::uint64_t
    sessionsServed() const
    {
        return sessions_served_.load(std::memory_order_relaxed);
    }

    /** Snapshot of the scheduler/speculation/admission counters. */
    NocServerCounters counters() const;

  private:
    struct Session;
    struct Worker;

    /**
     * Round-robin compute gate: at most max_active sessions simulate
     * at once, FIFO among waiters, and a session that has taken
     * quota_frames consecutive grants while others wait is sent to
     * the back of the queue. IO never holds a grant — only network
     * advances, checkpoint work and session construction do.
     */
    class FairScheduler
    {
      public:
        void configure(int max_active, std::uint32_t quota_frames);

        /** Block until this session may compute. Sets @p waited /
         *  @p quota_yield for the counters. Waits in short timed
         *  slices so a plain store to @p stop (all stop() does — it
         *  must stay async-signal-safe) grants every waiter promptly
         *  during shutdown. Every acquire pairs with a release. */
        void acquire(std::uint64_t id, const std::atomic<bool> &stop,
                     bool &waited, bool &quota_yield);
        void release();

      private:
        std::mutex mu_;
        std::condition_variable cv_;
        std::deque<std::uint64_t> queue_;
        int active_ = 0;
        int max_active_ = 1;
        std::uint32_t quota_ = 64;
        std::uint64_t last_id_ = 0;
        std::uint32_t consecutive_ = 0;
    };

    /** RAII compute grant, bumping the wait/yield counters. */
    class Turn;

    /** Serve one connection until Bye/EOF/stop/drain (worker
     *  thread). The channel view of the Fd is wrapped in a
     *  FaultyTransport when server-side chaos is on. */
    void serveConnection(Worker &w, std::uint64_t id);

    /** Handle one request; false ends the session. */
    bool dispatch(ByteChannel &conn, Message &msg,
                  std::unique_ptr<Session> &session, std::uint64_t id);

    /** Serve whatever requests were already buffered on the socket
     *  when the drain landed, then let the session close at its frame
     *  boundary. Best-effort: never throws. */
    void drainTail(ByteChannel &conn, std::unique_ptr<Session> &session,
                   std::uint64_t id);

    /** Speculatively execute the predicted next quantum if the
     *  session armed it and no request is already waiting. */
    void maybeSpeculate(ByteChannel &conn, Session &session,
                        std::uint64_t id);

    /** Roll a live speculation back to its snapshot. */
    void rebase(Session &session);

    /** Join finished workers; with @p all also join the live ones. */
    void reapWorkers(bool all);

    /** Watchdog sweep: shut down the socket of every session that
     *  has not completed a frame for session_timeout_ms. */
    void reapHung();

    /** Wait (up to drain_timeout_ms) for live sessions to wind down
     *  at their frame boundaries, then hard-stop the rest. */
    void drainSessions();

    NocServerOptions opts_;
    Fd listener_;
    std::atomic<bool> stop_{false};
    std::atomic<bool> drain_{false};
    /** Set with either stop_ or drain_: wakes blocking accepts and
     *  session reads promptly (they poll it in timed slices). */
    std::atomic<bool> wake_{false};
    FairScheduler sched_;

    std::mutex workers_mu_;
    std::vector<std::unique_ptr<Worker>> workers_;

    std::atomic<std::uint64_t> sessions_served_{0};
    std::atomic<std::uint64_t> sessions_active_{0};
    std::atomic<std::uint64_t> sessions_peak_{0};
    std::atomic<std::uint64_t> sessions_rejected_{0};
    std::atomic<std::uint64_t> frames_{0};
    std::atomic<std::uint64_t> spec_hits_{0};
    std::atomic<std::uint64_t> spec_rebases_{0};
    std::atomic<std::uint64_t> sched_waits_{0};
    std::atomic<std::uint64_t> quota_yields_{0};
    std::atomic<std::uint64_t> quota_trips_{0};
    std::atomic<std::uint64_t> sessions_reaped_{0};
};

} // namespace ipc
} // namespace rasim

#endif // RASIM_IPC_NOCD_SERVER_HH
