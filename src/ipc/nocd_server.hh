/**
 * @file
 * The rasim-nocd session server: hosts one cycle-level network
 * (CycleNetwork or DeflectionNetwork, serial or parallel engine)
 * behind a socket speaking the quantum-RPC protocol.
 *
 * Sessions are strictly one at a time — the whole point of the remote
 * backend is that a remote run is bit-identical to an in-process one,
 * and interleaving two clients on one hosted network would destroy
 * that. A second connection queues in the listen backlog until the
 * current session ends.
 *
 * The server also keeps a shadow LatencyTable, tuned from every
 * delivery in delivery order — the same order the client-side bridge
 * observes them — so TableGet returns a table bit-identical to the
 * client's own tuned table. That readback is the differential proof
 * that remote feedback behaves exactly like in-process feedback.
 *
 * NocServer is usable two ways: run() on a background thread inside a
 * test process (hermetic differential tests), or wrapped by the
 * rasim-nocd executable for cross-process runs.
 */

#ifndef RASIM_IPC_NOCD_SERVER_HH
#define RASIM_IPC_NOCD_SERVER_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "ipc/frame.hh"
#include "ipc/socket.hh"

namespace rasim
{
namespace ipc
{

struct NocServerOptions
{
    /** Listen address (unix:/path, tcp:host:port, or a bare path). */
    std::string address = "unix:/tmp/rasim-nocd.sock";
    /** Stop after serving this many sessions (0 = serve forever). */
    std::uint64_t max_sessions = 0;
    /** Idle deadline while waiting for the next request inside a
     *  session, in ms (0 = wait forever). A client that vanished
     *  without closing its socket frees the server after this long. */
    double io_timeout_ms = 0.0;
};

class NocServer
{
  public:
    /** Binds and listens immediately, so the address is connectable
     *  the moment the constructor returns (no startup race for tests
     *  and scripts). @throws SimError on an unusable address. */
    explicit NocServer(NocServerOptions opts);
    ~NocServer();

    NocServer(const NocServer &) = delete;
    NocServer &operator=(const NocServer &) = delete;

    /**
     * Accept and serve sessions until stop() is called or
     * max_sessions is reached. Blocking; run it on a thread when the
     * server shares a process with the client.
     */
    void run();

    /** Ask run() to return at the next safe point (thread-safe). */
    void stop() { stop_.store(true, std::memory_order_relaxed); }

    const std::string &address() const { return opts_.address; }
    std::uint64_t sessionsServed() const { return sessions_; }

  private:
    struct Session;

    /** Serve one connection until Bye/EOF/stop. */
    void serveConnection(const Fd &conn);

    /** Handle one request; false ends the session. */
    bool dispatch(const Fd &conn, Message &msg,
                  std::unique_ptr<Session> &session);

    NocServerOptions opts_;
    Fd listener_;
    std::atomic<bool> stop_{false};
    std::uint64_t sessions_ = 0;
};

} // namespace ipc
} // namespace rasim

#endif // RASIM_IPC_NOCD_SERVER_HH
