#include "ipc/retry.hh"

#include <algorithm>
#include <thread>

#include "sim/config.hh"
#include "sim/logging.hh"

namespace rasim
{
namespace ipc
{

RetryOptions
RetryOptions::fromConfig(const Config &cfg)
{
    RetryOptions o;
    o.max_attempts =
        cfg.getUInt("network.remote.retry.max_attempts", o.max_attempts);
    o.backoff_base_ms = cfg.getDouble("network.remote.retry.base_ms",
                                      o.backoff_base_ms);
    o.backoff_multiplier = cfg.getDouble(
        "network.remote.retry.multiplier", o.backoff_multiplier);
    o.backoff_max_ms =
        cfg.getDouble("network.remote.retry.max_ms", o.backoff_max_ms);
    o.jitter = cfg.getDouble("network.remote.retry.jitter", o.jitter);
    o.deadline_ms = cfg.getDouble("network.remote.retry.deadline_ms",
                                  o.deadline_ms);
    o.breaker_failures = cfg.getUInt(
        "network.remote.retry.breaker_failures", o.breaker_failures);
    if (o.max_attempts == 0)
        fatal("network.remote.retry.max_attempts must be at least 1");
    if (o.backoff_base_ms < 0.0 || o.backoff_max_ms < 0.0 ||
        o.deadline_ms < 0.0)
        fatal("network.remote.retry.* budgets must be non-negative");
    if (o.backoff_multiplier < 1.0)
        fatal("network.remote.retry.multiplier must be at least 1");
    if (o.jitter < 0.0 || o.jitter > 1.0)
        fatal("network.remote.retry.jitter must be in [0, 1]");
    return o;
}

double
RetryPolicy::elapsedMs() const
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - round_start_)
        .count();
}

void
RetryPolicy::beginRound()
{
    attempt_ = 0;
    round_start_ = std::chrono::steady_clock::now();
}

bool
RetryPolicy::shouldRetry() const
{
    // Open breakers allow exactly one probe per round: once every
    // endpoint's breaker is open the first failure ends the round
    // immediately, no backoff storm. One healthy endpoint is enough
    // to keep the round alive — a dead primary must never delay the
    // failover to its standby.
    if (breakerAllOpen())
        return false;
    if (attempt_ >= opts_.max_attempts)
        return false;
    if (opts_.deadline_ms > 0.0 && elapsedMs() >= opts_.deadline_ms)
        return false;
    return true;
}

void
RetryPolicy::setScopes(std::size_t n)
{
    breakers_.resize(std::max<std::size_t>(n, 1));
}

bool
RetryPolicy::breakerOpen(std::size_t scope) const
{
    return scope < breakers_.size() && breakers_[scope].open;
}

bool
RetryPolicy::breakerAllOpen() const
{
    for (const auto &b : breakers_) {
        if (!b.open)
            return false;
    }
    return true;
}

double
RetryPolicy::backoff()
{
    ++retries_;
    // attempt_ failed attempts so far, so this backoff precedes
    // attempt number attempt_ + 1.
    double ms = opts_.backoff_base_ms;
    for (std::uint64_t i = 1; i < attempt_; ++i)
        ms *= opts_.backoff_multiplier;
    ms = std::min(ms, opts_.backoff_max_ms);
    // One Rng draw per backoff, whatever the jitter setting, so the
    // draw sequence is a pure function of the retry count.
    double u = rng_.uniform();
    ms *= 1.0 - opts_.jitter + opts_.jitter * u;
    backoff_ms_total_ += ms;
    if (ms > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(ms));
    }
    return ms;
}

void
RetryPolicy::noteSuccess(std::size_t scope)
{
    if (scope >= breakers_.size())
        return;
    breakers_[scope].failed_rounds = 0;
    breakers_[scope].open = false;
}

void
RetryPolicy::noteRoundFailed(std::size_t scope)
{
    if (scope >= breakers_.size())
        return;
    Breaker &b = breakers_[scope];
    ++b.failed_rounds;
    if (!b.open && opts_.breaker_failures > 0 &&
        b.failed_rounds >= opts_.breaker_failures) {
        b.open = true;
        ++breaker_trips_;
    }
}

double
RetryPolicy::capToDeadline(double want_ms) const
{
    if (opts_.deadline_ms <= 0.0)
        return want_ms;
    double left = opts_.deadline_ms - elapsedMs();
    return std::max(1.0, std::min(left, want_ms));
}

} // namespace ipc
} // namespace rasim
