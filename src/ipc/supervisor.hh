/**
 * @file
 * The rasim-nocd fleet supervisor: spawns one worker daemon per
 * endpoint, watches them with waitpid and (optionally) heartbeat Ping
 * probes, restarts whatever dies with deterministic exponential
 * backoff, and republishes a live endpoints registry that
 * RemoteNetwork clients re-resolve on every cold open
 * (network.remote.registry).
 *
 * This is the process half of the crash-anywhere story (DESIGN.md
 * section 13): the client's recovery lineage makes a worker loss
 * survivable, the supervisor makes it *repeatable* — a respawned
 * worker re-listens on the same endpoint, the client's re-prime
 * machinery rebuilds the standby on it, and the fleet converges back
 * to one-primary-one-standby after every crash, so N sequential
 * failures end bit-identical to a fault-free run.
 *
 * The registry file is rewritten atomically (tmp + rename) on every
 * state change:
 *
 *   rasim-registry v1
 *   worker <idx> <addr> <up|down> pid <pid> restarts <n>
 *
 * Liveness has two tiers: waitpid catches a worker that died (crash,
 * OOM-kill, SIGKILL from a chaos script) the moment it exits, and the
 * heartbeat probe catches one that is alive but wedged — a worker
 * that misses heartbeat_miss_limit consecutive Pings is killed and
 * respawned like any other crash.
 *
 * Restart backoff is a pure function of the worker's restart count
 * (base * multiplier^restarts, capped), so a seeded chaos soak
 * produces the identical respawn schedule on every run.
 */

#ifndef RASIM_IPC_SUPERVISOR_HH
#define RASIM_IPC_SUPERVISOR_HH

#include <sys/types.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace rasim
{
namespace ipc
{

struct SupervisorOptions
{
    /** Worker argv prefix: binary path plus fixed arguments; the
     *  supervisor appends each worker's endpoint address. */
    std::vector<std::string> worker_cmd;
    /** One worker per endpoint, in the order clients prefer them. */
    std::vector<std::string> endpoints;
    /** Registry file republished on every fleet state change; empty =
     *  no registry (clients keep their static endpoint list). */
    std::string registry_path;
    /** Probe cadence per worker, in ms; 0 = waitpid-only liveness. */
    double heartbeat_ms = 0.0;
    /** Budget for one Ping/Pong round trip, in ms. */
    double heartbeat_timeout_ms = 1000.0;
    /** Consecutive missed probes that declare a live worker wedged
     *  (it is then killed and respawned). */
    std::uint64_t heartbeat_miss_limit = 3;
    /** First restart delay, in ms. */
    double restart_backoff_base_ms = 50.0;
    /** Growth factor of successive restart delays. */
    double restart_backoff_multiplier = 2.0;
    /** Restart delay ceiling, in ms. */
    double restart_backoff_max_ms = 2000.0;
    /** Give up on a worker after this many restarts (0 = never). */
    std::uint64_t max_restarts = 0;
    /** Monitor poll period, in ms (bounds crash-detection latency
     *  between heartbeats). */
    double poll_ms = 20.0;
};

/**
 * Spawns and babysits the worker fleet. run() blocks until stop();
 * tests run the monitor on their own thread and drive crashes by
 * SIGKILLing workerPid(i) directly.
 */
class Supervisor
{
  public:
    explicit Supervisor(SupervisorOptions opts);
    ~Supervisor();

    Supervisor(const Supervisor &) = delete;
    Supervisor &operator=(const Supervisor &) = delete;

    /** Spawn every worker and write the first registry. Throws
     *  SimError{Config} when a worker cannot even be forked. */
    void startFleet();

    /** Monitor loop: reap, respawn, probe, republish. Returns after
     *  stop(), leaving the fleet terminated. */
    void run();

    /** Ask run() to wind down: SIGTERM every worker, reap, return.
     *  Safe from any thread and from signal handlers. */
    void stop() { stop_.store(true, std::memory_order_relaxed); }

    /** @name Fleet observability (tests, stats) */
    /// @{
    std::size_t workers() const { return opts_.endpoints.size(); }
    /** Live pid of worker @p i, or -1 while it is down. */
    pid_t workerPid(std::size_t i) const;
    bool workerUp(std::size_t i) const;
    std::uint64_t restartsOf(std::size_t i) const;
    /** Total restarts across the fleet. */
    std::uint64_t restarts() const;
    std::uint64_t heartbeatMisses() const
    {
        return heartbeat_misses_.load(std::memory_order_relaxed);
    }
    const SupervisorOptions &options() const { return opts_; }
    /// @}

  private:
    using Clock = std::chrono::steady_clock;

    struct WorkerProc
    {
        pid_t pid = -1;
        bool up = false;
        bool abandoned = false; ///< max_restarts exhausted
        std::uint64_t restarts = 0;
        std::uint64_t missed_beats = 0;
        Clock::time_point respawn_at{};
        Clock::time_point next_probe{};
    };

    /** fork + exec worker @p i; records the pid. */
    void spawn(std::size_t i);
    /** Deterministic restart delay for a worker with @p restarts
     *  restarts behind it. */
    double backoffMs(std::uint64_t restarts) const;
    /** waitpid sweep: reap dead workers, schedule their respawns. */
    bool reapAndRespawn();
    /** Ping probe sweep (no-op when heartbeat_ms == 0). */
    bool probeFleet();
    /** Rewrite the registry atomically (tmp + rename). */
    void writeRegistry() const;
    /** SIGTERM (then reap) the whole fleet. */
    void terminateFleet();

    SupervisorOptions opts_;
    mutable std::mutex mu_; ///< guards fleet_ against observer reads
    std::vector<WorkerProc> fleet_;
    std::atomic<bool> stop_{false};
    std::atomic<std::uint64_t> heartbeat_misses_{0};
    bool started_ = false;
};

} // namespace ipc
} // namespace rasim

#endif // RASIM_IPC_SUPERVISOR_HH
