/**
 * @file
 * rasim-nocd: the out-of-process NoC backend daemon. Hosts one
 * cycle-level network per session behind a Unix-domain or TCP socket,
 * serving many concurrent sessions on their own threads; RemoteNetwork
 * clients (network.backend=remote) drive it with the quantum-RPC
 * protocol.
 *
 * Usage: rasim-nocd [address] [--once] [--serve-limit N]
 *                   [--max-sessions N] [--max-active N]
 *                   [--quota-frames N] [--max-batch-packets N]
 *                   [--no-speculate] [--io-timeout-ms MS]
 *                   [--drain-timeout MS] [--session-timeout-ms MS]
 *                   [key=value ...]
 *
 *   --once / --serve-limit   exit after serving N sessions (tooling)
 *   --max-sessions           concurrent-session admission cap
 *   --max-active             sessions computing at once (0 = auto)
 *   --quota-frames           consecutive grants before a forced yield
 *   --max-batch-packets      per-batch quota (refused as backpressure)
 *   --no-speculate           disable server-side speculation
 *   --drain-timeout          SIGTERM grace period for live sessions
 *   --session-timeout-ms     watchdog: reap frame-less sessions
 *
 * Any key=value argument is parsed as a config setting and folded in
 * through NocServerOptions::fromConfig — the hook for the shared
 * "fault.transport.*" chaos keys (and any "server.*" key) without a
 * dedicated flag each. Flags win over key=value settings.
 *
 * Signals: SIGTERM drains — the daemon stops accepting, lets every
 * live session finish its in-flight request and close at a frame
 * boundary (no torn frames on the wire), and hard-stops stragglers
 * after the drain timeout. SIGINT stops immediately.
 *
 * The default address is unix:/tmp/rasim-nocd.sock. The server prints
 * "rasim-nocd listening on <address>" once it is connectable, so
 * scripts can wait on that line instead of sleeping.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "ipc/nocd_server.hh"
#include "sim/config.hh"
#include "sim/logging.hh"
#include "sim/sim_error.hh"

namespace
{

rasim::ipc::NocServer *running_server = nullptr;

void
onTerm(int)
{
    if (running_server)
        running_server->drain(); // plain atomic stores: safe here
}

void
onInt(int)
{
    if (running_server)
        running_server->stop(); // plain atomic stores: safe here
}

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [address] [--once] [--serve-limit N] "
                 "[--max-sessions N] [--max-active N] "
                 "[--quota-frames N] [--max-batch-packets N] "
                 "[--no-speculate] [--io-timeout-ms MS] "
                 "[--drain-timeout MS] [--session-timeout-ms MS] "
                 "[key=value ...]\n"
                 "  address    unix:/path, tcp:host:port, or a bare "
                 "path (default unix:/tmp/rasim-nocd.sock)\n"
                 "  key=value  any server.* or fault.transport.* "
                 "config setting\n",
                 argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    // key=value settings first (parseArgs skips everything else), so
    // explicit flags below override them.
    rasim::Config cfg;
    cfg.parseArgs(argc - 1, argv + 1);
    rasim::ipc::NocServerOptions opts;
    try {
        opts = rasim::ipc::NocServerOptions::fromConfig(cfg);
    } catch (const rasim::SimError &err) {
        std::fprintf(stderr, "rasim-nocd: %s\n", err.what());
        return 2;
    }
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strchr(arg, '=') != nullptr) {
            continue; // consumed by the Config pass above
        } else if (std::strcmp(arg, "--once") == 0) {
            opts.serve_limit = 1;
        } else if (std::strcmp(arg, "--serve-limit") == 0 &&
                   i + 1 < argc) {
            opts.serve_limit =
                static_cast<std::uint64_t>(std::atoll(argv[++i]));
        } else if (std::strcmp(arg, "--max-sessions") == 0 &&
                   i + 1 < argc) {
            opts.max_sessions =
                static_cast<std::uint64_t>(std::atoll(argv[++i]));
        } else if (std::strcmp(arg, "--max-active") == 0 &&
                   i + 1 < argc) {
            opts.max_active = std::atoi(argv[++i]);
        } else if (std::strcmp(arg, "--quota-frames") == 0 &&
                   i + 1 < argc) {
            opts.quota_frames =
                static_cast<std::uint32_t>(std::atoll(argv[++i]));
        } else if (std::strcmp(arg, "--max-batch-packets") == 0 &&
                   i + 1 < argc) {
            opts.max_batch_packets =
                static_cast<std::uint64_t>(std::atoll(argv[++i]));
        } else if (std::strcmp(arg, "--no-speculate") == 0) {
            opts.speculate = false;
        } else if (std::strcmp(arg, "--io-timeout-ms") == 0 &&
                   i + 1 < argc) {
            opts.io_timeout_ms = std::atof(argv[++i]);
        } else if (std::strcmp(arg, "--drain-timeout") == 0 &&
                   i + 1 < argc) {
            opts.drain_timeout_ms = std::atof(argv[++i]);
        } else if (std::strcmp(arg, "--session-timeout-ms") == 0 &&
                   i + 1 < argc) {
            opts.session_timeout_ms = std::atof(argv[++i]);
        } else if (arg[0] == '-') {
            return usage(argv[0]);
        } else {
            opts.address = arg;
        }
    }
    // Hygiene: a misspelled fault.transport.* / server.* key should
    // not silently configure nothing.
    cfg.warnUnread({"server.", "fault."});

    // A client that dies mid-reply must not kill the server (sendAll
    // also passes MSG_NOSIGNAL; this covers platforms without it).
    std::signal(SIGPIPE, SIG_IGN);

    try {
        rasim::ipc::NocServer server(std::move(opts));
        running_server = &server;
        std::signal(SIGINT, onInt);
        std::signal(SIGTERM, onTerm);
        std::printf("rasim-nocd listening on %s\n",
                    server.address().c_str());
        std::fflush(stdout);
        server.run();
        running_server = nullptr;
        std::printf("rasim-nocd served %llu session(s), exiting\n",
                    static_cast<unsigned long long>(
                        server.sessionsServed()));
        return 0;
    } catch (const rasim::SimError &err) {
        std::fprintf(stderr, "rasim-nocd: %s\n", err.what());
        return 1;
    }
}
