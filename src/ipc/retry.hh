/**
 * @file
 * Deterministic retry policy for the remote NoC backend's transport
 * operations, read from the "network.remote.retry.*" config keys.
 *
 * One *round* is one logical operation the client wants to complete —
 * a quantum exchange, a table readback, a checkpoint — however many
 * attempts it takes. Between attempts the policy imposes an
 * exponential backoff with seeded jitter (drawn from a sim::Rng, so
 * two runs with the same seed produce the identical backoff sequence)
 * and enforces two budgets: a per-round attempt cap and a per-round
 * wall-clock deadline. A circuit breaker counts consecutive exhausted
 * rounds; once open, every further round gets exactly one probe
 * attempt and no backoff storm — the failure propagates promptly to
 * the co-simulation bridge, whose health machinery quarantines the
 * backend (HealthMonitor::transportTrips) and falls back to the tuned
 * abstract model. The first probe that succeeds closes the breaker.
 *
 * The breaker is scoped per endpoint (setScopes): a dead primary
 * trips only its own breaker, so a failover to a healthy standby is
 * never denied or slowed by the primary's failure history. A round is
 * refused outright only when every endpoint's breaker is open; an
 * endpoint with an open breaker still gets its single probe inside a
 * round that other endpoints are allowed to run. The legacy
 * scope-free calls operate on scope 0, which keeps single-endpoint
 * callers exactly as before.
 *
 * Note on determinism: retry *counts* and the backoff sequence are a
 * pure function of the failure pattern and the seed, except where the
 * wall-clock deadline binds. Chaos runs that must be bit-reproducible
 * set retry.deadline_ms=0 (attempt-capped only).
 */

#ifndef RASIM_IPC_RETRY_HH
#define RASIM_IPC_RETRY_HH

#include <chrono>
#include <cstdint>
#include <vector>

#include "sim/rng.hh"

namespace rasim
{

class Config;

namespace ipc
{

struct RetryOptions
{
    /** Attempts per round, first try included (min 1 = no retry). */
    std::uint64_t max_attempts = 3;
    /** First backoff, in ms. */
    double backoff_base_ms = 5.0;
    /** Growth factor of successive backoffs. */
    double backoff_multiplier = 4.0;
    /** Backoff ceiling, in ms. */
    double backoff_max_ms = 200.0;
    /** Fraction of each backoff randomised: the slept time is
     *  backoff * (1 - jitter + jitter * u) with u ~ U[0,1). */
    double jitter = 0.5;
    /** Wall-clock budget per round, in ms; no further attempt starts
     *  once it is spent (0 = attempts-capped only). */
    double deadline_ms = 1500.0;
    /** Consecutive exhausted rounds that open the circuit breaker
     *  (0 = breaker disabled). */
    std::uint64_t breaker_failures = 3;

    /** Read the "network.remote.retry.*" keys. */
    static RetryOptions fromConfig(const Config &cfg);
};

class RetryPolicy
{
  public:
    RetryPolicy() = default;
    RetryPolicy(RetryOptions opts, Rng rng)
        : opts_(opts), rng_(rng)
    {
    }

    const RetryOptions &options() const { return opts_; }

    /** Start a round: resets the attempt counter and deadline. */
    void beginRound();

    /** Record one failed attempt of the current round. */
    void noteFailure() { ++attempt_; }

    /** True when the current round may run another attempt: the
     *  breaker is closed, attempts remain, and the deadline (if any)
     *  is not spent. */
    bool shouldRetry() const;

    /** Deterministic jittered backoff before the next attempt:
     *  computes it, sleeps for it, accumulates the counters, and
     *  returns the slept milliseconds. */
    double backoff();

    /** Size the breaker array to one bucket per endpoint (min 1).
     *  Existing buckets keep their state; scope 0 is the default
     *  bucket the scope-free calls below operate on. */
    void setScopes(std::size_t n);

    std::size_t scopes() const { return breakers_.size(); }

    /** The round completed: close @p scope's breaker, reset its
     *  count. */
    void noteSuccess(std::size_t scope = 0);

    /** The round is being abandoned: feed @p scope's breaker. */
    void noteRoundFailed(std::size_t scope = 0);

    bool breakerOpen(std::size_t scope = 0) const;

    /** True when every endpoint's breaker is open — the only state in
     *  which a round is refused outright. */
    bool breakerAllOpen() const;

    /** Cap @p want_ms to the round's remaining deadline budget (at
     *  least 1 ms so a capped connect can still be attempted); with
     *  no deadline, @p want_ms is returned unchanged. */
    double capToDeadline(double want_ms) const;

    /** @name Counters (exported as client health stats) */
    /// @{
    std::uint64_t retries() const { return retries_; }
    std::uint64_t breakerTrips() const { return breaker_trips_; }
    double backoffMsTotal() const { return backoff_ms_total_; }
    /// @}

  private:
    /** One endpoint's breaker: open flag + consecutive failed
     *  rounds. */
    struct Breaker
    {
        bool open = false;
        std::uint64_t failed_rounds = 0;
    };

    double elapsedMs() const;

    RetryOptions opts_;
    Rng rng_{0x6e77, 1};
    std::uint64_t attempt_ = 0; ///< failed attempts this round
    std::chrono::steady_clock::time_point round_start_{};
    std::vector<Breaker> breakers_ = std::vector<Breaker>(1);
    std::uint64_t retries_ = 0;
    std::uint64_t breaker_trips_ = 0;
    double backoff_ms_total_ = 0.0;
};

} // namespace ipc
} // namespace rasim

#endif // RASIM_IPC_RETRY_HH
