/**
 * @file
 * Minimal blocking-socket transport for the out-of-process NoC
 * backend: Unix-domain and TCP stream sockets behind one address
 * syntax, with deadline-bounded reads and cooperative abort.
 *
 * Addresses:
 *
 *   unix:/path/to/socket   Unix-domain stream socket
 *   tcp:host:port          TCP (IPv4) stream socket
 *   /path/to/socket        shorthand for unix:
 *
 * Every failure surfaces as a typed SimError (ErrorKind::Transport for
 * peer/IO trouble, ErrorKind::Timeout for an expired deadline,
 * ErrorKind::Config for an unusable address) — never a crash or a
 * hang, which is what lets the co-simulation health machinery map
 * transport faults onto its quarantine/fallback policy.
 */

#ifndef RASIM_IPC_SOCKET_HH
#define RASIM_IPC_SOCKET_HH

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>

namespace rasim
{
namespace ipc
{

/** RAII file descriptor (move-only). */
class Fd
{
  public:
    Fd() = default;
    explicit Fd(int fd) : fd_(fd) {}
    ~Fd() { reset(); }

    Fd(const Fd &) = delete;
    Fd &operator=(const Fd &) = delete;

    Fd(Fd &&other) noexcept : fd_(other.release()) {}

    Fd &
    operator=(Fd &&other) noexcept
    {
        if (this != &other) {
            reset();
            fd_ = other.release();
        }
        return *this;
    }

    int get() const { return fd_; }
    bool valid() const { return fd_ >= 0; }

    int
    release()
    {
        int fd = fd_;
        fd_ = -1;
        return fd;
    }

    /** Close (idempotent). */
    void reset();

  private:
    int fd_ = -1;
};

/** True when @p addr parses as a supported socket address. */
bool validAddress(const std::string &addr);

/**
 * Bind and listen on @p addr. A *stale* pre-existing Unix socket file
 * (a previous server that died without cleanup; probed with a test
 * connect) is unlinked first; a live server on the path is an error.
 * @throws SimError{Config} on an unusable address,
 *         SimError{Transport} on bind/listen failure or when a live
 *         server already answers on the address.
 */
Fd listenOn(const std::string &addr);

/** Remove the Unix socket file behind @p addr, if any (clean server
 *  shutdown; no-op for TCP or unparseable addresses). */
void unlinkAddress(const std::string &addr);

/**
 * Accept one connection, waiting up to @p timeout_ms (0 = forever).
 * Returns an invalid Fd when @p stop became true or the timeout
 * expired; throws SimError{Transport} when the listening socket died.
 */
Fd acceptOn(const Fd &listener, double timeout_ms,
            const std::atomic<bool> *stop = nullptr);

/** True when a read on @p fd would not block right now (payload bytes
 *  or an EOF already pending). Never blocks: the server uses it to
 *  skip speculative work when the next request has already arrived. */
bool readable(const Fd &fd);

/**
 * Connect to @p addr, retrying until @p timeout_ms expires (a server
 * that is still starting up is not an error until the deadline).
 * @throws SimError{Transport} when the deadline expires.
 */
Fd connectTo(const std::string &addr, double timeout_ms);

/**
 * Write all @p len bytes. @throws SimError{Transport} on a dead peer
 * (EPIPE/ECONNRESET are reported, never raised as SIGPIPE).
 */
void sendAll(const Fd &fd, const void *data, std::size_t len);

/**
 * Read exactly @p len bytes, honouring a wall-clock deadline and a
 * cooperative abort flag (polled between reads).
 *
 * @param timeout_ms Deadline for the whole read (0 = no deadline).
 * @param abort When non-null and set, the read stops early.
 * @return bytes read before a clean EOF (== len on success; a short
 *         count means the peer closed mid-object — the caller decides
 *         whether that is a clean end-of-session or a torn frame).
 * @throws SimError{Timeout} on deadline expiry or abort,
 *         SimError{Transport} on IO errors.
 */
std::size_t recvUpTo(const Fd &fd, void *data, std::size_t len,
                     double timeout_ms,
                     const std::atomic<bool> *abort = nullptr);

/** Shut both directions of @p fd down without closing the descriptor:
 *  the peer (and any thread blocked reading it) sees EOF immediately.
 *  Used by the daemon's session watchdog to reap a hung session whose
 *  Fd is owned by another thread. No-op on an invalid Fd. */
void shutdownFd(const Fd &fd);

/**
 * A byte stream the framing layer reads and writes through. The plain
 * implementation (FdChannel) forwards to the socket primitives above;
 * decorators (ipc::FaultyTransport) interpose to inject transport
 * faults deterministically. Semantics mirror sendAll/recvUpTo: send()
 * writes everything or throws; recv() returns the bytes read before a
 * clean EOF and throws on IO errors, deadline expiry or abort.
 */
class ByteChannel
{
  public:
    virtual ~ByteChannel() = default;

    virtual void send(const void *data, std::size_t len) = 0;
    virtual std::size_t recv(void *data, std::size_t len,
                             double timeout_ms,
                             const std::atomic<bool> *abort) = 0;
    /** True when a recv would not block right now. */
    virtual bool readable() const = 0;
    /** True while the underlying connection is usable. */
    virtual bool valid() const = 0;
    /** Tear the connection down (idempotent). */
    virtual void close() = 0;
};

/** ByteChannel over an Fd: owning (client connections) or borrowing
 *  (server connections, whose Fd lives with the worker thread). */
class FdChannel final : public ByteChannel
{
  public:
    /** Own @p fd; close() resets it. */
    explicit FdChannel(Fd fd) : owned_(std::move(fd)), fd_(&owned_) {}
    /** Borrow @p fd; close() shuts it down but the owner still
     *  closes the descriptor. */
    explicit FdChannel(const Fd *borrowed) : fd_(borrowed) {}

    void send(const void *data, std::size_t len) override;
    std::size_t recv(void *data, std::size_t len, double timeout_ms,
                     const std::atomic<bool> *abort) override;
    bool readable() const override;
    bool valid() const override { return fd_->valid(); }
    void close() override;

    const Fd &fd() const { return *fd_; }

  private:
    Fd owned_;
    const Fd *fd_;
};

} // namespace ipc
} // namespace rasim

#endif // RASIM_IPC_SOCKET_HH
