#include "ipc/frame.hh"

#include <cstring>

#include "sim/sim_error.hh"

namespace rasim
{
namespace ipc
{

const char *
toString(MsgType type)
{
    switch (type) {
      case MsgType::Hello:
        return "Hello";
      case MsgType::InjectBatch:
        return "InjectBatch";
      case MsgType::Advance:
        return "Advance";
      case MsgType::TableGet:
        return "TableGet";
      case MsgType::StatsGet:
        return "StatsGet";
      case MsgType::CkptSave:
        return "CkptSave";
      case MsgType::CkptLoad:
        return "CkptLoad";
      case MsgType::Bye:
        return "Bye";
      case MsgType::HelloAck:
        return "HelloAck";
      case MsgType::DeliveryBatch:
        return "DeliveryBatch";
      case MsgType::TableData:
        return "TableData";
      case MsgType::StatsData:
        return "StatsData";
      case MsgType::CkptData:
        return "CkptData";
      case MsgType::CkptLoadAck:
        return "CkptLoadAck";
      case MsgType::ErrorReply:
        return "ErrorReply";
    }
    return "unknown";
}

ArchiveWriter
beginMessage(MsgType type)
{
    ArchiveWriter aw;
    aw.beginSection("msg");
    aw.putU32(static_cast<std::uint32_t>(type));
    return aw;
}

void
sendMessage(const Fd &fd, ArchiveWriter &&aw)
{
    aw.endSection();
    std::string payload = aw.finish();
    char header[12];
    std::memcpy(header, frame_magic, sizeof(frame_magic));
    std::uint64_t len = payload.size();
    std::memcpy(header + sizeof(frame_magic), &len, sizeof(len));
    sendAll(fd, header, sizeof(header));
    sendAll(fd, payload.data(), payload.size());
}

std::optional<Message>
recvMessage(const Fd &fd, double timeout_ms,
            const std::atomic<bool> *abort)
{
    char header[12];
    std::size_t got =
        recvUpTo(fd, header, sizeof(header), timeout_ms, abort);
    if (got == 0)
        return std::nullopt; // clean EOF at a frame boundary
    if (got < sizeof(header)) {
        throw SimError(ErrorKind::Transport,
                       "short read: peer closed inside the frame "
                       "header (" +
                           std::to_string(got) + " of 12 bytes)");
    }
    if (std::memcmp(header, frame_magic, sizeof(frame_magic)) != 0) {
        throw SimError(ErrorKind::Transport,
                       "bad frame magic (stream desynchronised or not "
                       "a rasim-nocd peer)");
    }
    std::uint64_t len = 0;
    std::memcpy(&len, header + sizeof(frame_magic), sizeof(len));
    if (len > max_frame_bytes) {
        throw SimError(ErrorKind::Transport,
                       "oversized frame rejected: declared payload of " +
                           std::to_string(len) + " bytes exceeds " +
                           std::to_string(max_frame_bytes));
    }
    std::string payload(len, '\0');
    got = len == 0 ? 0
                   : recvUpTo(fd, payload.data(), len, timeout_ms,
                              abort);
    if (got < len) {
        throw SimError(ErrorKind::Transport,
                       "torn frame: peer closed after " +
                           std::to_string(got) + " of " +
                           std::to_string(len) + " payload bytes");
    }
    ArchiveReader ar(std::move(payload));
    if (!ar.ok()) {
        // The archive's own validation names the failure: bad magic,
        // version mismatch or CRC corruption.
        throw SimError(ErrorKind::Transport,
                       "corrupt message payload: " + ar.error());
    }
    Message msg(std::move(ar));
    msg.ar.expectSection("msg");
    msg.type = static_cast<MsgType>(msg.ar.getU32());
    return msg;
}

} // namespace ipc
} // namespace rasim
