#include "ipc/frame.hh"

#include <cstring>

#include "sim/logging.hh"
#include "sim/sim_error.hh"

namespace rasim
{
namespace ipc
{

const char *
toString(MsgType type)
{
    switch (type) {
      case MsgType::Hello:
        return "Hello";
      case MsgType::InjectBatch:
        return "InjectBatch";
      case MsgType::Advance:
        return "Advance";
      case MsgType::TableGet:
        return "TableGet";
      case MsgType::StatsGet:
        return "StatsGet";
      case MsgType::CkptSave:
        return "CkptSave";
      case MsgType::CkptLoad:
        return "CkptLoad";
      case MsgType::Bye:
        return "Bye";
      case MsgType::Step:
        return "Step";
      case MsgType::Ping:
        return "Ping";
      case MsgType::HelloAck:
        return "HelloAck";
      case MsgType::DeliveryBatch:
        return "DeliveryBatch";
      case MsgType::TableData:
        return "TableData";
      case MsgType::StatsData:
        return "StatsData";
      case MsgType::CkptData:
        return "CkptData";
      case MsgType::CkptLoadAck:
        return "CkptLoadAck";
      case MsgType::StepReply:
        return "StepReply";
      case MsgType::Pong:
        return "Pong";
      case MsgType::ErrorReply:
        return "ErrorReply";
    }
    return "unknown";
}

bool
knownMsgType(std::uint32_t raw)
{
    switch (static_cast<MsgType>(raw)) {
      case MsgType::Hello:
      case MsgType::InjectBatch:
      case MsgType::Advance:
      case MsgType::TableGet:
      case MsgType::StatsGet:
      case MsgType::CkptSave:
      case MsgType::CkptLoad:
      case MsgType::Bye:
      case MsgType::Step:
      case MsgType::Ping:
      case MsgType::HelloAck:
      case MsgType::DeliveryBatch:
      case MsgType::TableData:
      case MsgType::StatsData:
      case MsgType::CkptData:
      case MsgType::CkptLoadAck:
      case MsgType::StepReply:
      case MsgType::Pong:
      case MsgType::ErrorReply:
        return true;
    }
    return false;
}

void
Message::done()
{
    try {
        logging::ThrowOnError guard;
        ar.endSection();
    } catch (const SimError &err) {
        throw SimError(ErrorKind::Transport,
                       std::string("malformed message payload: ") +
                           err.what());
    }
}

ArchiveWriter
beginMessage(MsgType type)
{
    ArchiveWriter aw;
    aw.beginSection("msg");
    aw.putU32(static_cast<std::uint32_t>(type));
    return aw;
}

std::string
sealFrame(ArchiveWriter &&aw)
{
    aw.endSection();
    std::string payload = aw.finish();
    std::string frame;
    frame.reserve(12 + payload.size());
    frame.append(frame_magic, sizeof(frame_magic));
    std::uint64_t len = payload.size();
    frame.append(reinterpret_cast<const char *>(&len), sizeof(len));
    frame.append(payload);
    return frame;
}

void
sendFrameBytes(ByteChannel &ch, const std::string &frame)
{
    ch.send(frame.data(), frame.size());
}

void
sendFrameBytes(const Fd &fd, const std::string &frame)
{
    sendAll(fd, frame.data(), frame.size());
}

void
sendMessage(ByteChannel &ch, ArchiveWriter &&aw)
{
    sendFrameBytes(ch, sealFrame(std::move(aw)));
}

void
sendMessage(const Fd &fd, ArchiveWriter &&aw)
{
    // One contiguous buffer, one send: half the syscalls of the
    // header-then-payload scheme, and no torn-header window.
    sendFrameBytes(fd, sealFrame(std::move(aw)));
}

std::optional<Message>
recvMessage(ByteChannel &ch, double timeout_ms,
            const std::atomic<bool> *abort)
{
    char header[12];
    std::size_t got =
        ch.recv(header, sizeof(header), timeout_ms, abort);
    if (got == 0)
        return std::nullopt; // clean EOF at a frame boundary
    if (got < sizeof(header)) {
        throw SimError(ErrorKind::Transport,
                       "short read: peer closed inside the frame "
                       "header (" +
                           std::to_string(got) + " of 12 bytes)");
    }
    if (std::memcmp(header, frame_magic, sizeof(frame_magic)) != 0) {
        throw SimError(ErrorKind::Transport,
                       "bad frame magic (stream desynchronised or not "
                       "a rasim-nocd peer)");
    }
    std::uint64_t len = 0;
    std::memcpy(&len, header + sizeof(frame_magic), sizeof(len));
    if (len > max_frame_bytes) {
        throw SimError(ErrorKind::Transport,
                       "oversized frame rejected: declared payload of " +
                           std::to_string(len) + " bytes exceeds " +
                           std::to_string(max_frame_bytes));
    }
    std::string payload(len, '\0');
    got = len == 0 ? 0
                   : ch.recv(payload.data(), len, timeout_ms, abort);
    if (got < len) {
        throw SimError(ErrorKind::Transport,
                       "torn frame: peer closed after " +
                           std::to_string(got) + " of " +
                           std::to_string(len) + " payload bytes");
    }
    ArchiveReader ar(std::move(payload));
    if (!ar.ok()) {
        // The archive's own validation names the failure: bad magic,
        // version mismatch or CRC corruption.
        throw SimError(ErrorKind::Transport,
                       "corrupt message payload: " + ar.error());
    }
    Message msg(std::move(ar));
    // A CRC-valid archive can still fail to be a message (wrong
    // section tag, truncated type field). Those reader panics are
    // programming errors for trusted archives, but off the wire they
    // are just more corruption — demote them to typed errors.
    std::uint32_t raw_type = 0;
    try {
        logging::ThrowOnError guard;
        msg.ar.expectSection("msg");
        raw_type = msg.ar.getU32();
    } catch (const SimError &err) {
        throw SimError(ErrorKind::Transport,
                       std::string("malformed message payload: ") +
                           err.what());
    }
    if (!knownMsgType(raw_type)) {
        throw SimError(ErrorKind::Transport,
                       "unknown message type " +
                           std::to_string(raw_type) +
                           " (peer speaks a newer protocol?)");
    }
    msg.type = static_cast<MsgType>(raw_type);
    return msg;
}

std::optional<Message>
recvMessage(const Fd &fd, double timeout_ms,
            const std::atomic<bool> *abort)
{
    FdChannel ch(&fd);
    return recvMessage(ch, timeout_ms, abort);
}

} // namespace ipc
} // namespace rasim
