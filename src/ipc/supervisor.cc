#include "ipc/supervisor.hh"

#include <csignal>
#include <cstdio>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <fstream>
#include <thread>

#include "ipc/frame.hh"
#include "ipc/protocol.hh"
#include "ipc/socket.hh"
#include "sim/sim_error.hh"

namespace rasim
{
namespace ipc
{

Supervisor::Supervisor(SupervisorOptions opts) : opts_(std::move(opts))
{
    if (opts_.worker_cmd.empty())
        throw SimError(ErrorKind::Config,
                       "supervisor: empty worker command");
    if (opts_.endpoints.empty())
        throw SimError(ErrorKind::Config,
                       "supervisor: no endpoints to manage");
    if (opts_.endpoints.size() > 64)
        throw SimError(ErrorKind::Config,
                       "supervisor: at most 64 workers");
    for (const std::string &ep : opts_.endpoints) {
        if (!validAddress(ep))
            throw SimError(ErrorKind::Config,
                           "supervisor: unusable endpoint '" + ep +
                               "'");
    }
    fleet_.resize(opts_.endpoints.size());
}

Supervisor::~Supervisor()
{
    if (started_)
        terminateFleet();
}

pid_t
Supervisor::workerPid(std::size_t i) const
{
    std::lock_guard<std::mutex> lk(mu_);
    return i < fleet_.size() ? fleet_[i].pid : -1;
}

bool
Supervisor::workerUp(std::size_t i) const
{
    std::lock_guard<std::mutex> lk(mu_);
    return i < fleet_.size() && fleet_[i].up;
}

std::uint64_t
Supervisor::restartsOf(std::size_t i) const
{
    std::lock_guard<std::mutex> lk(mu_);
    return i < fleet_.size() ? fleet_[i].restarts : 0;
}

std::uint64_t
Supervisor::restarts() const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::uint64_t total = 0;
    for (const WorkerProc &w : fleet_)
        total += w.restarts;
    return total;
}

double
Supervisor::backoffMs(std::uint64_t restarts) const
{
    // Pure function of the restart count: a seeded chaos soak gets
    // the identical respawn schedule on every run.
    double ms = opts_.restart_backoff_base_ms;
    for (std::uint64_t i = 1; i < restarts; ++i) {
        ms *= opts_.restart_backoff_multiplier;
        if (ms >= opts_.restart_backoff_max_ms)
            break;
    }
    return std::min(ms, opts_.restart_backoff_max_ms);
}

void
Supervisor::spawn(std::size_t i)
{
    // argv = worker_cmd... + endpoint address (rasim-nocd takes the
    // address positionally).
    std::vector<std::string> args = opts_.worker_cmd;
    args.push_back(opts_.endpoints[i]);
    std::vector<char *> argv;
    argv.reserve(args.size() + 1);
    for (std::string &a : args)
        argv.push_back(a.data());
    argv.push_back(nullptr);

    pid_t pid = ::fork();
    if (pid < 0) {
        throw SimError(ErrorKind::Config,
                       "supervisor: fork failed for worker " +
                           std::to_string(i));
    }
    if (pid == 0) {
        // Child: own process group, so a test killing the supervisor's
        // group does not take the fleet down out from under it.
        ::setpgid(0, 0);
        ::execvp(argv[0], argv.data());
        // exec only returns on failure; _exit keeps the child from
        // running the parent's atexit machinery.
        std::fprintf(stderr, "supervisor: exec '%s' failed\n", argv[0]);
        ::_exit(127);
    }
    std::lock_guard<std::mutex> lk(mu_);
    WorkerProc &w = fleet_[i];
    w.pid = pid;
    w.up = true;
    w.missed_beats = 0;
    w.next_probe = Clock::now();
}

void
Supervisor::startFleet()
{
    for (std::size_t i = 0; i < fleet_.size(); ++i)
        spawn(i);
    started_ = true;
    writeRegistry();
}

bool
Supervisor::reapAndRespawn()
{
    bool changed = false;
    const Clock::time_point now = Clock::now();
    for (std::size_t i = 0; i < fleet_.size(); ++i) {
        pid_t pid;
        bool up, abandoned;
        std::uint64_t restarts;
        Clock::time_point respawn_at;
        {
            std::lock_guard<std::mutex> lk(mu_);
            WorkerProc &w = fleet_[i];
            pid = w.pid;
            up = w.up;
            abandoned = w.abandoned;
            restarts = w.restarts;
            respawn_at = w.respawn_at;
        }
        if (abandoned)
            continue;
        if (up && pid > 0) {
            int status = 0;
            pid_t got = ::waitpid(pid, &status, WNOHANG);
            if (got == pid) {
                // The worker died: schedule its respawn after the
                // deterministic backoff.
                std::lock_guard<std::mutex> lk(mu_);
                WorkerProc &w = fleet_[i];
                w.up = false;
                w.pid = -1;
                ++w.restarts;
                if (opts_.max_restarts != 0 &&
                    w.restarts > opts_.max_restarts) {
                    w.abandoned = true;
                } else {
                    w.respawn_at =
                        now + std::chrono::duration_cast<
                                  Clock::duration>(
                                  std::chrono::duration<double,
                                                        std::milli>(
                                      backoffMs(w.restarts)));
                }
                changed = true;
            }
        } else if (!up && now >= respawn_at) {
            (void)restarts;
            spawn(i);
            changed = true;
        }
    }
    return changed;
}

bool
Supervisor::probeFleet()
{
    if (opts_.heartbeat_ms <= 0.0)
        return false;
    bool changed = false;
    const Clock::time_point now = Clock::now();
    for (std::size_t i = 0; i < fleet_.size(); ++i) {
        pid_t pid;
        {
            std::lock_guard<std::mutex> lk(mu_);
            WorkerProc &w = fleet_[i];
            if (!w.up || w.pid <= 0 || now < w.next_probe)
                continue;
            w.next_probe =
                now + std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double, std::milli>(
                              opts_.heartbeat_ms));
            pid = w.pid;
        }
        bool alive = false;
        try {
            Fd fd = connectTo(opts_.endpoints[i],
                              opts_.heartbeat_timeout_ms);
            PingRequest req;
            req.nonce = static_cast<std::uint64_t>(pid);
            ArchiveWriter aw = beginMessage(MsgType::Ping);
            encodePing(aw, req);
            sendMessage(fd, std::move(aw));
            auto msg = recvMessage(fd, opts_.heartbeat_timeout_ms);
            alive = msg && msg->type == MsgType::Pong &&
                    decodePong(msg->ar).nonce == req.nonce;
        } catch (const SimError &) {
            alive = false;
        }
        std::lock_guard<std::mutex> lk(mu_);
        WorkerProc &w = fleet_[i];
        if (!w.up || w.pid != pid)
            continue; // reaped/respawned while we probed
        if (alive) {
            w.missed_beats = 0;
            continue;
        }
        heartbeat_misses_.fetch_add(1, std::memory_order_relaxed);
        ++w.missed_beats;
        if (w.missed_beats >= opts_.heartbeat_miss_limit) {
            // Alive but wedged: treat like any other crash. waitpid
            // reaps it on the next sweep and the backoff respawns it.
            ::kill(pid, SIGKILL);
            w.missed_beats = 0;
            changed = true;
        }
    }
    return changed;
}

void
Supervisor::writeRegistry() const
{
    if (opts_.registry_path.empty())
        return;
    const std::string tmp = opts_.registry_path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out)
            return; // observability only: never kill the fleet over it
        out << "rasim-registry v1\n";
        std::lock_guard<std::mutex> lk(mu_);
        for (std::size_t i = 0; i < fleet_.size(); ++i) {
            const WorkerProc &w = fleet_[i];
            out << "worker " << i << ' ' << opts_.endpoints[i] << ' '
                << (w.up ? "up" : "down") << " pid "
                << (w.pid > 0 ? w.pid : 0) << " restarts "
                << w.restarts << '\n';
        }
    }
    // rename() is atomic on POSIX: a client re-resolving mid-write
    // sees either the old fleet or the new one, never a torn file.
    std::rename(tmp.c_str(), opts_.registry_path.c_str());
}

void
Supervisor::run()
{
    if (!started_)
        startFleet();
    while (!stop_.load(std::memory_order_relaxed)) {
        bool changed = reapAndRespawn();
        changed = probeFleet() || changed;
        if (changed)
            writeRegistry();
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(opts_.poll_ms));
    }
    terminateFleet();
}

void
Supervisor::terminateFleet()
{
    std::vector<pid_t> pids;
    {
        std::lock_guard<std::mutex> lk(mu_);
        for (WorkerProc &w : fleet_) {
            if (w.up && w.pid > 0)
                pids.push_back(w.pid);
            w.up = false;
        }
    }
    for (pid_t pid : pids)
        ::kill(pid, SIGTERM);
    for (pid_t pid : pids) {
        // Bounded wait, then SIGKILL: the supervisor must never hang
        // on a worker that ignores its drain.
        const Clock::time_point deadline =
            Clock::now() + std::chrono::seconds(5);
        for (;;) {
            int status = 0;
            pid_t got = ::waitpid(pid, &status, WNOHANG);
            if (got == pid)
                break;
            if (Clock::now() >= deadline) {
                ::kill(pid, SIGKILL);
                ::waitpid(pid, &status, 0);
                break;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
        }
    }
    {
        std::lock_guard<std::mutex> lk(mu_);
        for (WorkerProc &w : fleet_)
            w.pid = -1;
    }
    writeRegistry();
    started_ = false;
}

} // namespace ipc
} // namespace rasim
