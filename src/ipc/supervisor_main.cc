/**
 * @file
 * rasim-supervisor: spawns and babysits a fleet of rasim-nocd workers,
 * one per endpoint, restarting whatever crashes (deterministic
 * exponential backoff) and republishing a registry file RemoteNetwork
 * clients re-resolve on every cold open (network.remote.registry).
 *
 * Usage: rasim-supervisor --endpoints EP[,EP...] [--worker PATH]
 *                         [--registry FILE] [--heartbeat-ms MS]
 *                         [--heartbeat-timeout-ms MS]
 *                         [--heartbeat-miss-limit N]
 *                         [--backoff-base-ms MS] [--backoff-max-ms MS]
 *                         [--backoff-multiplier X] [--max-restarts N]
 *                         [--worker-arg ARG ...]
 *
 *   --endpoints       comma-separated worker addresses (required)
 *   --worker          worker binary (default: rasim-nocd on PATH)
 *   --registry        endpoints registry file, atomically rewritten
 *   --heartbeat-ms    Ping cadence per worker (0 = waitpid only)
 *   --heartbeat-miss-limit  consecutive misses before a wedged worker
 *                     is killed and respawned
 *   --backoff-*       restart delay schedule (base * mult^restarts)
 *   --max-restarts    abandon a worker after N restarts (0 = never)
 *   --worker-arg      extra argument passed through to every worker
 *                     (repeatable; e.g. --worker-arg --max-sessions
 *                      --worker-arg 8)
 *
 * Signals: SIGTERM and SIGINT wind the fleet down (SIGTERM to each
 * worker, bounded wait, SIGKILL stragglers) and exit. The supervisor
 * prints "rasim-supervisor managing N worker(s)" once the fleet is
 * spawned and the registry written, so scripts can wait on that line.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "ipc/supervisor.hh"
#include "sim/sim_error.hh"

namespace
{

rasim::ipc::Supervisor *running = nullptr;

void
onSignal(int)
{
    if (running)
        running->stop(); // plain atomic store: safe here
}

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --endpoints EP[,EP...] [--worker PATH]\n"
        "          [--registry FILE] [--heartbeat-ms MS]\n"
        "          [--heartbeat-timeout-ms MS] "
        "[--heartbeat-miss-limit N]\n"
        "          [--backoff-base-ms MS] [--backoff-max-ms MS]\n"
        "          [--backoff-multiplier X] [--max-restarts N]\n"
        "          [--worker-arg ARG ...]\n",
        argv0);
    return 2;
}

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= s.size()) {
        std::size_t comma = s.find(',', pos);
        std::string item = comma == std::string::npos
                               ? s.substr(pos)
                               : s.substr(pos, comma - pos);
        if (!item.empty())
            out.push_back(item);
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    rasim::ipc::SupervisorOptions opts;
    std::string worker = "rasim-nocd";
    std::vector<std::string> worker_args;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--endpoints") == 0 && i + 1 < argc) {
            opts.endpoints = splitCommas(argv[++i]);
        } else if (std::strcmp(arg, "--worker") == 0 && i + 1 < argc) {
            worker = argv[++i];
        } else if (std::strcmp(arg, "--registry") == 0 &&
                   i + 1 < argc) {
            opts.registry_path = argv[++i];
        } else if (std::strcmp(arg, "--heartbeat-ms") == 0 &&
                   i + 1 < argc) {
            opts.heartbeat_ms = std::atof(argv[++i]);
        } else if (std::strcmp(arg, "--heartbeat-timeout-ms") == 0 &&
                   i + 1 < argc) {
            opts.heartbeat_timeout_ms = std::atof(argv[++i]);
        } else if (std::strcmp(arg, "--heartbeat-miss-limit") == 0 &&
                   i + 1 < argc) {
            opts.heartbeat_miss_limit =
                static_cast<std::uint64_t>(std::atoll(argv[++i]));
        } else if (std::strcmp(arg, "--backoff-base-ms") == 0 &&
                   i + 1 < argc) {
            opts.restart_backoff_base_ms = std::atof(argv[++i]);
        } else if (std::strcmp(arg, "--backoff-max-ms") == 0 &&
                   i + 1 < argc) {
            opts.restart_backoff_max_ms = std::atof(argv[++i]);
        } else if (std::strcmp(arg, "--backoff-multiplier") == 0 &&
                   i + 1 < argc) {
            opts.restart_backoff_multiplier = std::atof(argv[++i]);
        } else if (std::strcmp(arg, "--max-restarts") == 0 &&
                   i + 1 < argc) {
            opts.max_restarts =
                static_cast<std::uint64_t>(std::atoll(argv[++i]));
        } else if (std::strcmp(arg, "--worker-arg") == 0 &&
                   i + 1 < argc) {
            worker_args.push_back(argv[++i]);
        } else {
            return usage(argv[0]);
        }
    }
    if (opts.endpoints.empty())
        return usage(argv[0]);
    opts.worker_cmd.push_back(worker);
    for (std::string &a : worker_args)
        opts.worker_cmd.push_back(std::move(a));

    // A worker dying mid-probe must not kill the supervisor.
    std::signal(SIGPIPE, SIG_IGN);

    try {
        rasim::ipc::Supervisor sup(std::move(opts));
        running = &sup;
        std::signal(SIGINT, onSignal);
        std::signal(SIGTERM, onSignal);
        sup.startFleet();
        std::printf("rasim-supervisor managing %zu worker(s)\n",
                    sup.workers());
        std::fflush(stdout);
        sup.run();
        running = nullptr;
        std::printf("rasim-supervisor exiting after %llu restart(s)\n",
                    static_cast<unsigned long long>(sup.restarts()));
        return 0;
    } catch (const rasim::SimError &err) {
        std::fprintf(stderr, "rasim-supervisor: %s\n", err.what());
        return 1;
    }
}
