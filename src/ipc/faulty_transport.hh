/**
 * @file
 * FaultyTransport: a ByteChannel decorator that injects deterministic
 * transport faults into the quantum-RPC byte stream, driven by a
 * TransportFaultSchedule (the "fault.transport.*" keys). Interposable
 * on both sides of a connection:
 *
 *   client side   wraps the RemoteNetwork's connection, so every
 *                 client-observed failure path (torn frame, short
 *                 read, CRC corruption, stalled socket, mid-quantum
 *                 disconnect) is exercisable on demand;
 *   server side   wraps a rasim-nocd session's connection, so clients
 *                 experience a chaotic *server* (torn replies, dropped
 *                 sessions) — the mid-frame-kill scenario without
 *                 actually killing the daemon.
 *
 * Faults map onto the frame layer's failure taxonomy:
 *
 *   TornFrame    send: part of the frame, then the connection dies
 *                recv: payload truncated, then EOF
 *   ShortRead    send: part of the 12-byte header, then death
 *                recv: header truncated, then EOF
 *   Corrupt      one payload byte flipped; the archive CRC32 trips
 *                on the receiving side
 *   Delay        send delayed by delay_ms, then completes normally
 *   Stall        recv burns stall_ms, then fails with a Timeout
 *   Disconnect   connection dropped cold before the send
 *   Oversize     (targeted only) header length forged past
 *                max_frame_bytes
 *
 * Every injected failure also closes the channel, mirroring what the
 * real faults do to a session: the stream can no longer be trusted to
 * be in frame sync, so recovery must open a fresh connection.
 *
 * Besides the probability schedule, failNextSend()/failNextRecv()
 * force one specific fault on the next operation — the unit-test hook
 * for exercising one failure path in isolation.
 */

#ifndef RASIM_IPC_FAULTY_TRANSPORT_HH
#define RASIM_IPC_FAULTY_TRANSPORT_HH

#include <atomic>
#include <cstddef>
#include <memory>

#include "ipc/socket.hh"
#include "sim/fault_injector.hh"

namespace rasim
{
namespace ipc
{

class FaultyTransport final : public ByteChannel
{
  public:
    /**
     * Decorate @p inner with faults drawn from @p schedule, which the
     * caller owns and may share across successive connections (the
     * client's whole chaos run draws from one schedule, so the fault
     * sequence is independent of how often it reconnects).
     */
    FaultyTransport(std::unique_ptr<ByteChannel> inner,
                    TransportFaultSchedule *schedule);

    /** Decorate @p inner with a schedule owned by this channel (the
     *  server gives each session its own stream of one seed). */
    FaultyTransport(std::unique_ptr<ByteChannel> inner,
                    const TransportFaultOptions &opts,
                    std::uint64_t stream = 1);

    void send(const void *data, std::size_t len) override;
    std::size_t recv(void *data, std::size_t len, double timeout_ms,
                     const std::atomic<bool> *abort) override;
    bool readable() const override { return inner_->readable(); }
    bool valid() const override { return inner_->valid(); }
    void close() override { inner_->close(); }

    /** Force one specific fault on the next send / recv, bypassing
     *  the probability schedule (targeted unit tests). */
    void failNextSend(TransportFaultKind kind) { forced_send_ = kind; }
    void failNextRecv(TransportFaultKind kind) { forced_recv_ = kind; }

    const TransportFaultSchedule &schedule() const { return *sched_; }
    ByteChannel &inner() { return *inner_; }

  private:
    [[noreturn]] void die(TransportFaultKind kind, const char *detail);

    std::unique_ptr<ByteChannel> inner_;
    TransportFaultSchedule owned_sched_;
    TransportFaultSchedule *sched_;
    TransportFaultKind forced_send_ = TransportFaultKind::None;
    TransportFaultKind forced_recv_ = TransportFaultKind::None;
};

} // namespace ipc
} // namespace rasim

#endif // RASIM_IPC_FAULTY_TRANSPORT_HH
