/**
 * @file
 * The quantum-RPC protocol spoken between a RemoteNetwork client and a
 * rasim-nocd server: typed encode/decode for every message payload, on
 * top of the ipc framing layer. One session hosts one network; the
 * protocol is strictly request/reply from the client's point of view,
 * which is what keeps a remote run bit-identical to an in-process one.
 *
 * Session lifecycle:
 *
 *   Hello -> HelloAck                 build the hosted network
 *   { Step -> StepReply }             once per quantum (pipelined v2:
 *                                     inject batch + advance coalesced
 *                                     into one frame each way)
 *   { InjectBatch* Advance -> DeliveryBatch }   v1 blocking form,
 *                                     still spoken (network.pipeline
 *                                     .enabled=false and old tools)
 *   TableGet -> TableData             tuned-table readback (optional)
 *   StatsGet -> StatsData             stats pull (optional)
 *   CkptSave -> CkptData              paired checkpoint (optional)
 *   CkptLoad -> CkptLoadAck           cross-process restore (optional)
 *   Bye (or EOF)                      tear the session down
 *
 * Any request can instead be answered with ErrorReply carrying an
 * ErrorKind + message, which the client re-raises as a SimError.
 *
 * After replying to a Step whose inject batch was empty, the server
 * may speculatively execute the predicted next quantum; the flags
 * byte of the following StepReply records whether that speculation
 * hit (the reply was pre-computed) or was rebased (state rolled back
 * and re-executed) — either way the reply bytes are bit-identical to
 * an unspeculated server, see DESIGN.md section 11.
 *
 * Decoder hardening: every decode* function below converts archive
 * reader misuse on CRC-valid-but-malformed payloads into typed
 * SimError{Transport} (never a panic), and rejects implausible
 * element counts before allocating for them — wire input is never
 * trusted, even after its checksum passes.
 */

#ifndef RASIM_IPC_PROTOCOL_HH
#define RASIM_IPC_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ipc/frame.hh"
#include "noc/packet.hh"
#include "noc/params.hh"
#include "sim/sim_error.hh"
#include "sim/types.hh"

namespace rasim
{
namespace ipc
{

/** Protocol revision, checked in Hello independently of the archive
 *  format version (the archive guards encoding, this guards meaning).
 *  v2 added the coalesced Step/StepReply exchange and server-side
 *  speculation; v3 added Ping/Pong liveness frames and the CRC64
 *  replica-attestation digests carried by CkptData, CkptLoadAck and
 *  attested StepReplies; v4 carries the compute-kernel selection
 *  (network.kernel, kernel.simd) in Hello so the server builds the
 *  same backend the client configured. */
constexpr std::uint32_t protocol_version = 4;

/** Session-opening handshake: everything the server needs to build a
 *  deterministic twin of the in-process backend. */
struct HelloRequest
{
    std::uint32_t proto = protocol_version;
    /** Hosted model: "cycle" or "deflection". */
    std::string model = "cycle";
    noc::NocParams params;
    /** Worker threads of the server-side ParallelEngine (0 = serial).
     *  Bit-identical either way, by the engine determinism contract. */
    int engine_workers = 0;
    /** Fast-forward a fresh network to this tick (reconnect after a
     *  server loss mid-run; 0 on a cold start). */
    Tick start_tick = 0;
    /** Shadow LatencyTable geometry (tuned-table readback). */
    double table_alpha = 0.05;
    bool table_pair_granularity = false;
    int table_max_hops = 0;
};

struct HelloReply
{
    std::uint64_t num_nodes = 0;
    Tick cur_time = 0;
};

/** Advance reply: the quantum's deliveries plus the mirrored state the
 *  client needs to answer NetworkModel queries locally. */
struct AdvanceReply
{
    Tick cur_time = 0;
    bool idle = true;
    std::uint64_t injected = 0;
    std::uint64_t delivered = 0;
    std::uint64_t in_flight = 0;
    std::vector<noc::PacketPtr> deliveries;
};

/** Coalesced quantum request (v2): the inject batch and the advance
 *  target travel in one frame, halving the frames per busy quantum. */
struct StepRequest
{
    Tick target = 0;
    /** Client permits the server to speculate the next quantum. */
    bool speculate = false;
    /** Client wants a CRC64 state digest with the reply (v3): the
     *  server serializes its post-advance state and attests it, so a
     *  recovery replay can prove the rebuilt replica reconverged. */
    bool attest = false;
    std::vector<noc::PacketPtr> packets;
};

/** @name StepReply flag bits (observability only — the reply payload
 *  is bit-identical whether or not speculation was involved; the
 *  attested bit additionally gates a digest field). */
/// @{
constexpr std::uint8_t step_flag_spec_hit = 1; ///< reply pre-computed
constexpr std::uint8_t step_flag_rebased = 2;  ///< speculation undone
constexpr std::uint8_t step_flag_throttled = 4; ///< fair-sched wait
constexpr std::uint8_t step_flag_attested = 8;  ///< digest appended
/// @}

/** Liveness probe (v3): legal before Hello, so a sessionless
 *  connection — the supervisor's heartbeat, the client's standby
 *  prober — can ask "are you alive?" without building a network. */
struct PingRequest
{
    /** Echoed verbatim in the Pong, pairing probe and answer. */
    std::uint64_t nonce = 0;
};

/** Ping echo: the prober's nonce plus enough session/load state to
 *  tell a healthy worker from a wedged one. */
struct PongReply
{
    std::uint64_t nonce = 0;
    /** True when the answering connection carries a live session. */
    bool in_session = false;
    /** The session network's clock (0 when sessionless). */
    Tick cur_time = 0;
    /** Live sessions on the whole daemon (load state). */
    std::uint64_t sessions_active = 0;
    /** Sessions admitted since the daemon started. */
    std::uint64_t sessions_served = 0;
};

/** One flattened statistics row of the hosted network's subtree. */
struct StatRow
{
    std::string path;
    std::string sub;
    double value = 0.0;

    bool operator==(const StatRow &other) const = default;
};

/** CkptData payload (v3): the checkpoint image plus the server's
 *  CRC64 attestation of it, so the client can (a) verify the bytes it
 *  holds and (b) later cross-check a standby restored from them. */
struct CkptReply
{
    std::string image;
    std::uint64_t digest = 0;
};

/** CkptLoadAck payload (v3): the restored tick plus the CRC64 of the
 *  *re-serialized* state — the replica's own attestation that what it
 *  now holds is bit-identical to what was pushed. */
struct CkptLoadReply
{
    Tick cur_time = 0;
    std::uint64_t digest = 0;
};

/** @name Payload encoders (append to a beginMessage() writer) */
/// @{
void encodeHello(ArchiveWriter &aw, const HelloRequest &req);
void encodeHelloReply(ArchiveWriter &aw, const HelloReply &rep);
void encodePackets(ArchiveWriter &aw,
                   const std::vector<noc::PacketPtr> &pkts);
void encodeAdvance(ArchiveWriter &aw, Tick target);
void encodeAdvanceReply(ArchiveWriter &aw, const AdvanceReply &rep);
void encodeStep(ArchiveWriter &aw, const StepRequest &req);
/** @p digest is written only when @p flags has step_flag_attested. */
void encodeStepReply(ArchiveWriter &aw, const AdvanceReply &rep,
                     std::uint8_t flags, std::uint64_t digest = 0);
void encodePing(ArchiveWriter &aw, const PingRequest &req);
void encodePong(ArchiveWriter &aw, const PongReply &rep);
void encodeCkptReply(ArchiveWriter &aw, const CkptReply &rep);
void encodeCkptLoadReply(ArchiveWriter &aw, const CkptLoadReply &rep);
void encodeStatsReply(ArchiveWriter &aw,
                      const std::vector<StatRow> &rows);
void encodeError(ArchiveWriter &aw, ErrorKind kind,
                 const std::string &what);
/// @}

/** @name Payload decoders (consume a recvMessage() payload) */
/// @{
HelloRequest decodeHello(ArchiveReader &ar);
HelloReply decodeHelloReply(ArchiveReader &ar);
std::vector<noc::PacketPtr> decodePackets(ArchiveReader &ar);
Tick decodeAdvance(ArchiveReader &ar);
AdvanceReply decodeAdvanceReply(ArchiveReader &ar);
StepRequest decodeStep(ArchiveReader &ar);
/** @p flags receives the step_flag_* bits; @p digest the attestation
 *  digest (0 unless step_flag_attested is set). */
AdvanceReply decodeStepReply(ArchiveReader &ar, std::uint8_t &flags,
                             std::uint64_t *digest = nullptr);
PingRequest decodePing(ArchiveReader &ar);
PongReply decodePong(ArchiveReader &ar);
CkptReply decodeCkptReply(ArchiveReader &ar);
CkptLoadReply decodeCkptLoadReply(ArchiveReader &ar);
std::vector<StatRow> decodeStatsReply(ArchiveReader &ar);
/** Guarded opaque-blob payload (CkptData / CkptLoad image). */
std::string decodeBlob(ArchiveReader &ar);
/** Guarded single-tick payload (CkptLoadAck). */
Tick decodeTick(ArchiveReader &ar);
/** Re-raise a decoded ErrorReply as the SimError it describes. */
[[noreturn]] void throwDecodedError(ArchiveReader &ar);
/// @}

} // namespace ipc
} // namespace rasim

#endif // RASIM_IPC_PROTOCOL_HH
