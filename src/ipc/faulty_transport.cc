#include "ipc/faulty_transport.hh"

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <utility>

#include "sim/sim_error.hh"

namespace rasim
{
namespace ipc
{

namespace
{

void
sleepMs(double ms)
{
    if (ms > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(ms));
    }
}

} // namespace

FaultyTransport::FaultyTransport(std::unique_ptr<ByteChannel> inner,
                                 TransportFaultSchedule *schedule)
    : inner_(std::move(inner)), sched_(schedule)
{
}

FaultyTransport::FaultyTransport(std::unique_ptr<ByteChannel> inner,
                                 const TransportFaultOptions &opts,
                                 std::uint64_t stream)
    : inner_(std::move(inner)), owned_sched_(opts, stream),
      sched_(&owned_sched_)
{
}

void
FaultyTransport::die(TransportFaultKind kind, const char *detail)
{
    // An injected failure leaves the stream out of frame sync, the
    // same way the real fault would; recovery needs a fresh
    // connection, so kill this one.
    inner_->close();
    throw SimError(kind == TransportFaultKind::Stall
                       ? ErrorKind::Timeout
                       : ErrorKind::Transport,
                   std::string("injected transport fault (") +
                       toString(kind) + "): " + detail);
}

void
FaultyTransport::send(const void *data, std::size_t len)
{
    TransportFaultKind kind = forced_send_;
    forced_send_ = TransportFaultKind::None;
    if (kind == TransportFaultKind::None)
        kind = sched_->nextSend();
    else
        sched_->noteForced(kind);

    const char *bytes = static_cast<const char *>(data);
    switch (kind) {
      case TransportFaultKind::Disconnect:
        die(kind, "connection dropped before the send");
      case TransportFaultKind::ShortRead: {
        // Part of the frame header, then death: the peer reads a
        // short header.
        std::size_t cut = len < 12 ? len / 2 : 6;
        if (cut > 0)
            inner_->send(bytes, cut);
        die(kind, "connection dropped inside the frame header");
      }
      case TransportFaultKind::TornFrame: {
        // The header and part of the payload, then death: the peer
        // reads a torn frame.
        std::size_t cut = len < 12 ? len / 2 : 12 + (len - 12) / 2;
        if (cut > 0)
            inner_->send(bytes, cut);
        die(kind, "connection dropped inside the payload");
      }
      case TransportFaultKind::Corrupt: {
        // Flip one payload byte; the frame arrives whole but the
        // archive CRC32 trips on the receiving side.
        std::string mangled(bytes, len);
        mangled[len > 12 ? len - 1 : len / 2] ^= 0x40;
        inner_->send(mangled.data(), mangled.size());
        return;
      }
      case TransportFaultKind::Delay:
        sleepMs(sched_->options().delay_ms);
        break;
      default:
        break;
    }
    inner_->send(data, len);
}

std::size_t
FaultyTransport::recv(void *data, std::size_t len, double timeout_ms,
                      const std::atomic<bool> *abort)
{
    // The framing layer reads a frame in two pieces; the 12-byte read
    // is the header, anything else the payload.
    bool header = len == 12;
    TransportFaultKind kind = forced_recv_;
    forced_recv_ = TransportFaultKind::None;
    if (kind == TransportFaultKind::None)
        kind = sched_->nextRecv(header);
    else
        sched_->noteForced(kind);

    if (kind == TransportFaultKind::Stall) {
        sleepMs(sched_->options().stall_ms);
        die(kind, "read stalled past its deadline");
    }

    std::size_t got = inner_->recv(data, len, timeout_ms, abort);
    switch (kind) {
      case TransportFaultKind::ShortRead:
      case TransportFaultKind::TornFrame: {
        // Deliver a truncated read and kill the stream: the caller
        // sees the peer close mid-header / mid-payload.
        std::size_t cut = got / 2;
        inner_->close();
        return cut;
      }
      case TransportFaultKind::Corrupt:
        if (got > 0)
            static_cast<char *>(data)[got - 1] ^= 0x40;
        return got;
      case TransportFaultKind::Oversize:
        // Forge the header's length field past max_frame_bytes.
        if (header && got == len)
            std::memset(static_cast<char *>(data) + 4, 0x7f, 8);
        return got;
      default:
        return got;
    }
}

} // namespace ipc
} // namespace rasim
