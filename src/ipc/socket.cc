#include "ipc/socket.hh"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "sim/sim_error.hh"

namespace rasim
{
namespace ipc
{

namespace
{

#ifdef MSG_NOSIGNAL
constexpr int send_flags = MSG_NOSIGNAL;
#else
constexpr int send_flags = 0;
#endif

std::string
errnoString()
{
    return std::strerror(errno);
}

struct ParsedAddr
{
    bool is_unix = true;
    std::string path; ///< unix socket path
    std::string host; ///< tcp host
    int port = 0;     ///< tcp port
};

ParsedAddr
parseAddress(const std::string &addr)
{
    ParsedAddr p;
    if (addr.rfind("unix:", 0) == 0) {
        p.path = addr.substr(5);
    } else if (addr.rfind("tcp:", 0) == 0) {
        p.is_unix = false;
        std::string rest = addr.substr(4);
        std::size_t colon = rest.rfind(':');
        if (colon == std::string::npos || colon == 0 ||
            colon + 1 >= rest.size()) {
            throw SimError(ErrorKind::Config,
                           "bad tcp socket address '" + addr +
                               "' (want tcp:host:port)");
        }
        p.host = rest.substr(0, colon);
        try {
            p.port = std::stoi(rest.substr(colon + 1));
        } catch (...) {
            p.port = -1;
        }
        if (p.port <= 0 || p.port > 65535) {
            throw SimError(ErrorKind::Config,
                           "bad tcp port in socket address '" + addr +
                               "'");
        }
    } else {
        p.path = addr; // bare path = unix socket
    }
    if (p.is_unix) {
        if (p.path.empty()) {
            throw SimError(ErrorKind::Config,
                           "empty unix socket path in '" + addr + "'");
        }
        if (p.path.size() >= sizeof(sockaddr_un{}.sun_path)) {
            throw SimError(ErrorKind::Config,
                           "unix socket path too long: '" + p.path +
                               "'");
        }
    }
    return p;
}

/** Fill a sockaddr for @p p; returns the usable length. */
socklen_t
fillSockaddr(const ParsedAddr &p, sockaddr_storage &ss)
{
    std::memset(&ss, 0, sizeof(ss));
    if (p.is_unix) {
        auto *sun = reinterpret_cast<sockaddr_un *>(&ss);
        sun->sun_family = AF_UNIX;
        std::memcpy(sun->sun_path, p.path.c_str(), p.path.size() + 1);
        return static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) +
                                      p.path.size() + 1);
    }
    auto *sin = reinterpret_cast<sockaddr_in *>(&ss);
    sin->sin_family = AF_INET;
    sin->sin_port = htons(static_cast<std::uint16_t>(p.port));
    if (::inet_pton(AF_INET, p.host.c_str(), &sin->sin_addr) != 1) {
        // Convenience alias; full name resolution is out of scope.
        if (p.host == "localhost") {
            sin->sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        } else {
            throw SimError(ErrorKind::Config,
                           "cannot parse tcp host '" + p.host +
                               "' (want a dotted IPv4 address)");
        }
    }
    return sizeof(sockaddr_in);
}

double
elapsedMs(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Wait until @p fd is readable/writable; -1 error, 0 timeout, 1 ok.
 *  Polls in short slices so @p stop is honoured promptly. */
int
pollFor(int fd, short events, double timeout_ms,
        const std::atomic<bool> *stop)
{
    auto start = std::chrono::steady_clock::now();
    for (;;) {
        if (stop && stop->load(std::memory_order_relaxed))
            return 0;
        double left = timeout_ms > 0.0 ? timeout_ms - elapsedMs(start)
                                       : 10.0;
        if (timeout_ms > 0.0 && left <= 0.0)
            return 0;
        int slice = timeout_ms > 0.0
                        ? static_cast<int>(std::min(left, 10.0)) + 1
                        : 10;
        pollfd pfd{fd, events, 0};
        int rc = ::poll(&pfd, 1, slice);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            return -1;
        }
        if (rc > 0)
            return 1;
    }
}

} // namespace

void
Fd::reset()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
unlinkAddress(const std::string &addr)
{
    try {
        ParsedAddr p = parseAddress(addr);
        if (p.is_unix)
            ::unlink(p.path.c_str());
    } catch (const SimError &) {
        // An unparseable address has no socket file to clean up.
    }
}

bool
validAddress(const std::string &addr)
{
    try {
        parseAddress(addr);
        return true;
    } catch (const SimError &) {
        return false;
    }
}

Fd
listenOn(const std::string &addr)
{
    ParsedAddr p = parseAddress(addr);
    Fd fd(::socket(p.is_unix ? AF_UNIX : AF_INET, SOCK_STREAM, 0));
    if (!fd.valid()) {
        throw SimError(ErrorKind::Transport,
                       "socket() failed for '" + addr +
                           "': " + errnoString());
    }
    if (p.is_unix) {
        // A pre-existing socket file is only removed when it is
        // *stale* (no server answers a probe connect): a dead server
        // must not block a restart, but a live one must not be
        // silently evicted from its own address.
        if (::access(p.path.c_str(), F_OK) == 0) {
            Fd probe(::socket(AF_UNIX, SOCK_STREAM, 0));
            sockaddr_storage pss;
            socklen_t plen = fillSockaddr(p, pss);
            if (probe.valid() &&
                ::connect(probe.get(),
                          reinterpret_cast<sockaddr *>(&pss),
                          plen) == 0) {
                throw SimError(ErrorKind::Transport,
                               "cannot listen on '" + addr +
                                   "': a live server already answers "
                                   "there");
            }
            ::unlink(p.path.c_str());
        }
    } else {
        int one = 1;
        ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
    }
    sockaddr_storage ss;
    socklen_t len = fillSockaddr(p, ss);
    if (::bind(fd.get(), reinterpret_cast<sockaddr *>(&ss), len) != 0) {
        throw SimError(ErrorKind::Transport,
                       "cannot bind '" + addr + "': " + errnoString());
    }
    if (::listen(fd.get(), 4) != 0) {
        throw SimError(ErrorKind::Transport,
                       "cannot listen on '" + addr +
                           "': " + errnoString());
    }
    return fd;
}

Fd
acceptOn(const Fd &listener, double timeout_ms,
         const std::atomic<bool> *stop)
{
    int rc = pollFor(listener.get(), POLLIN, timeout_ms, stop);
    if (rc < 0) {
        throw SimError(ErrorKind::Transport,
                       std::string("poll on listening socket failed: ") +
                           errnoString());
    }
    if (rc == 0)
        return Fd();
    Fd conn(::accept(listener.get(), nullptr, nullptr));
    if (!conn.valid()) {
        throw SimError(ErrorKind::Transport,
                       std::string("accept failed: ") + errnoString());
    }
    return conn;
}

bool
readable(const Fd &fd)
{
    pollfd pfd{fd.get(), POLLIN, 0};
    return ::poll(&pfd, 1, 0) > 0;
}

Fd
connectTo(const std::string &addr, double timeout_ms)
{
    ParsedAddr p = parseAddress(addr);
    auto start = std::chrono::steady_clock::now();
    std::string last_error = "timeout";
    do {
        Fd fd(::socket(p.is_unix ? AF_UNIX : AF_INET, SOCK_STREAM, 0));
        if (!fd.valid()) {
            throw SimError(ErrorKind::Transport,
                           "socket() failed for '" + addr +
                               "': " + errnoString());
        }
        sockaddr_storage ss;
        socklen_t len = fillSockaddr(p, ss);
        if (::connect(fd.get(), reinterpret_cast<sockaddr *>(&ss),
                      len) == 0) {
            if (!p.is_unix) {
                int one = 1;
                ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one,
                             sizeof(one));
            }
            return fd;
        }
        last_error = errnoString();
        // The server may still be starting; retry until the deadline.
        struct timespec ts = {0, 20 * 1000 * 1000};
        ::nanosleep(&ts, nullptr);
    } while (elapsedMs(start) < timeout_ms);
    throw SimError(ErrorKind::Transport,
                   "cannot connect to '" + addr + "' within " +
                       std::to_string(timeout_ms) +
                       " ms (last error: " + last_error + ")");
}

void
sendAll(const Fd &fd, const void *data, std::size_t len)
{
    const char *p = static_cast<const char *>(data);
    while (len > 0) {
        ssize_t n = ::send(fd.get(), p, len, send_flags);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throw SimError(ErrorKind::Transport,
                           std::string("send failed (peer gone?): ") +
                               errnoString());
        }
        p += n;
        len -= static_cast<std::size_t>(n);
    }
}

std::size_t
recvUpTo(const Fd &fd, void *data, std::size_t len, double timeout_ms,
         const std::atomic<bool> *abort)
{
    char *p = static_cast<char *>(data);
    std::size_t got = 0;
    auto start = std::chrono::steady_clock::now();
    while (got < len) {
        if (abort && abort->load(std::memory_order_relaxed)) {
            throw SimError(ErrorKind::Timeout,
                           "receive aborted by requestAbort()");
        }
        double left = 0.0;
        if (timeout_ms > 0.0) {
            left = timeout_ms - elapsedMs(start);
            if (left <= 0.0) {
                throw SimError(ErrorKind::Timeout,
                               "receive timed out after " +
                                   std::to_string(timeout_ms) + " ms");
            }
        }
        int rc = pollFor(fd.get(), POLLIN, left > 0.0 ? left : 0.0,
                         abort);
        if (rc < 0) {
            throw SimError(ErrorKind::Transport,
                           std::string("poll failed: ") + errnoString());
        }
        if (rc == 0)
            continue; // deadline / abort re-checked at loop head
        ssize_t n = ::recv(fd.get(), p + got, len - got, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throw SimError(ErrorKind::Transport,
                           std::string("recv failed: ") + errnoString());
        }
        if (n == 0)
            return got; // EOF
        got += static_cast<std::size_t>(n);
    }
    return got;
}

void
shutdownFd(const Fd &fd)
{
    if (fd.valid())
        ::shutdown(fd.get(), SHUT_RDWR);
}

void
FdChannel::send(const void *data, std::size_t len)
{
    sendAll(*fd_, data, len);
}

std::size_t
FdChannel::recv(void *data, std::size_t len, double timeout_ms,
                const std::atomic<bool> *abort)
{
    return recvUpTo(*fd_, data, len, timeout_ms, abort);
}

bool
FdChannel::readable() const
{
    return ipc::readable(*fd_);
}

void
FdChannel::close()
{
    if (fd_ == &owned_)
        owned_.reset();
    else
        shutdownFd(*fd_);
}

} // namespace ipc
} // namespace rasim
