/**
 * @file
 * Length-prefixed, versioned message framing for the quantum-RPC
 * protocol. A frame on the wire is
 *
 *   [4]  frame magic "RNOC"
 *   [8]  payload length (u64, little-endian)
 *   [..] payload: a complete sim/serialize archive image
 *
 * The payload reuses the existing archive primitives, so its own
 * magic, format version and CRC32 trailer guard the content; the frame
 * prefix only delimits it on the stream. Inside the archive, every
 * message is one "msg" section opening with a u32 message type.
 *
 * Failure taxonomy (all typed SimErrors, no crash, no hang):
 *
 *   short read   peer closed inside the 12-byte frame header
 *   torn frame   peer closed inside the payload
 *   oversized    declared length above max_frame_bytes
 *   version      archive format version mismatch
 *   CRC          archive CRC32 mismatch (bit rot / truncation)
 *   malformed    CRC-valid payload whose structure is not a message
 *   unknown type CRC-valid message of a type this build cannot speak
 */

#ifndef RASIM_IPC_FRAME_HH
#define RASIM_IPC_FRAME_HH

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "ipc/socket.hh"
#include "sim/serialize.hh"

namespace rasim
{
namespace ipc
{

/** Frame prefix magic ("RNOC"). */
constexpr char frame_magic[4] = {'R', 'N', 'O', 'C'};

/** Largest payload accepted off the wire (defence against a torn
 *  length prefix masquerading as a multi-gigabyte frame). */
constexpr std::uint64_t max_frame_bytes = 64ull << 20;

/** Message types of the quantum-RPC protocol. */
enum class MsgType : std::uint32_t
{
    // client -> server
    Hello = 1,       ///< open a session: network config + start tick
    InjectBatch = 2, ///< packets buffered over the last host quantum
    Advance = 3,     ///< advance-to-tick; replied with DeliveryBatch
    TableGet = 4,    ///< read back the server's tuned LatencyTable
    StatsGet = 5,    ///< pull the hosted network's statistics tree
    CkptSave = 6,    ///< take a paired server-side checkpoint
    CkptLoad = 7,    ///< push a checkpoint image into the session
    Bye = 8,         ///< close the session cleanly
    Step = 9,        ///< coalesced inject batch + advance (pipelined)
    Ping = 10,       ///< liveness probe; legal before Hello too

    // server -> client
    HelloAck = 101,
    DeliveryBatch = 103, ///< deliveries + time/idle/accounting
    TableData = 104,
    StatsData = 105,
    CkptData = 106,
    CkptLoadAck = 107,
    StepReply = 108, ///< DeliveryBatch payload + speculation flags
    Pong = 109,      ///< Ping echo: nonce + session/load state
    ErrorReply = 199, ///< request failed server-side: kind + message
};

/** Render a message type for diagnostics. */
const char *toString(MsgType type);

/** True when @p raw is a message type this build understands. */
bool knownMsgType(std::uint32_t raw);

/**
 * Start a message: an ArchiveWriter with the "msg" section opened and
 * the type recorded. Callers append payload fields, then hand the
 * writer to sendMessage() (which closes the section and seals the
 * archive).
 */
ArchiveWriter beginMessage(MsgType type);

/** Seal @p aw (from beginMessage) and send it as one frame. The
 *  header and payload go out in a single send, so a frame costs one
 *  syscall on the happy path. */
void sendMessage(const Fd &fd, ArchiveWriter &&aw);
/** Same, over a ByteChannel (plain or fault-injecting). */
void sendMessage(ByteChannel &ch, ArchiveWriter &&aw);

/**
 * Seal @p aw (from beginMessage) into complete wire bytes — frame
 * header plus payload — without sending. Lets the server pre-encode a
 * speculative reply once and transmit it later with sendFrameBytes()
 * at the cost of a single write.
 */
std::string sealFrame(ArchiveWriter &&aw);

/** Transmit bytes produced by sealFrame(). */
void sendFrameBytes(const Fd &fd, const std::string &frame);
void sendFrameBytes(ByteChannel &ch, const std::string &frame);

/**
 * A received message: the reader is positioned after the type field,
 * inside the open "msg" section. Call done() after consuming every
 * payload field.
 */
struct Message
{
    MsgType type = MsgType::Bye;
    ArchiveReader ar;

    explicit Message(ArchiveReader reader) : ar(std::move(reader)) {}

    /** Close the "msg" section. Incomplete consumption means the
     *  payload carried bytes this build does not understand — a typed
     *  SimError{Transport}, not a panic, since it came off the wire. */
    void done();
};

/**
 * Receive one frame and open its message.
 *
 * @param timeout_ms Deadline for the whole frame (0 = no deadline).
 * @param abort Cooperative abort flag, polled while waiting.
 * @return nullopt on a clean EOF at a frame boundary (the peer closed
 *         the session); a Message otherwise.
 * @throws SimError{Transport} for short reads, torn frames, bad frame
 *         magic, oversized payloads, archive version or CRC failures;
 *         SimError{Timeout} on deadline expiry or abort.
 */
std::optional<Message> recvMessage(const Fd &fd, double timeout_ms,
                                   const std::atomic<bool> *abort =
                                       nullptr);
/** Same, over a ByteChannel (plain or fault-injecting). */
std::optional<Message> recvMessage(ByteChannel &ch, double timeout_ms,
                                   const std::atomic<bool> *abort =
                                       nullptr);

} // namespace ipc
} // namespace rasim

#endif // RASIM_IPC_FRAME_HH
