/**
 * @file
 * Length-prefixed, versioned message framing for the quantum-RPC
 * protocol. A frame on the wire is
 *
 *   [4]  frame magic "RNOC"
 *   [8]  payload length (u64, little-endian)
 *   [..] payload: a complete sim/serialize archive image
 *
 * The payload reuses the existing archive primitives, so its own
 * magic, format version and CRC32 trailer guard the content; the frame
 * prefix only delimits it on the stream. Inside the archive, every
 * message is one "msg" section opening with a u32 message type.
 *
 * Failure taxonomy (all typed SimErrors, no crash, no hang):
 *
 *   short read   peer closed inside the 12-byte frame header
 *   torn frame   peer closed inside the payload
 *   oversized    declared length above max_frame_bytes
 *   version      archive format version mismatch
 *   CRC          archive CRC32 mismatch (bit rot / truncation)
 */

#ifndef RASIM_IPC_FRAME_HH
#define RASIM_IPC_FRAME_HH

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "ipc/socket.hh"
#include "sim/serialize.hh"

namespace rasim
{
namespace ipc
{

/** Frame prefix magic ("RNOC"). */
constexpr char frame_magic[4] = {'R', 'N', 'O', 'C'};

/** Largest payload accepted off the wire (defence against a torn
 *  length prefix masquerading as a multi-gigabyte frame). */
constexpr std::uint64_t max_frame_bytes = 64ull << 20;

/** Message types of the quantum-RPC protocol. */
enum class MsgType : std::uint32_t
{
    // client -> server
    Hello = 1,       ///< open a session: network config + start tick
    InjectBatch = 2, ///< packets buffered over the last host quantum
    Advance = 3,     ///< advance-to-tick; replied with DeliveryBatch
    TableGet = 4,    ///< read back the server's tuned LatencyTable
    StatsGet = 5,    ///< pull the hosted network's statistics tree
    CkptSave = 6,    ///< take a paired server-side checkpoint
    CkptLoad = 7,    ///< push a checkpoint image into the session
    Bye = 8,         ///< close the session cleanly

    // server -> client
    HelloAck = 101,
    DeliveryBatch = 103, ///< deliveries + time/idle/accounting
    TableData = 104,
    StatsData = 105,
    CkptData = 106,
    CkptLoadAck = 107,
    ErrorReply = 199, ///< request failed server-side: kind + message
};

/** Render a message type for diagnostics. */
const char *toString(MsgType type);

/**
 * Start a message: an ArchiveWriter with the "msg" section opened and
 * the type recorded. Callers append payload fields, then hand the
 * writer to sendMessage() (which closes the section and seals the
 * archive).
 */
ArchiveWriter beginMessage(MsgType type);

/** Seal @p aw (from beginMessage) and send it as one frame. */
void sendMessage(const Fd &fd, ArchiveWriter &&aw);

/**
 * A received message: the reader is positioned after the type field,
 * inside the open "msg" section. Call done() after consuming every
 * payload field.
 */
struct Message
{
    MsgType type = MsgType::Bye;
    ArchiveReader ar;

    explicit Message(ArchiveReader reader) : ar(std::move(reader)) {}

    /** Close the "msg" section (asserts full consumption). */
    void done() { ar.endSection(); }
};

/**
 * Receive one frame and open its message.
 *
 * @param timeout_ms Deadline for the whole frame (0 = no deadline).
 * @param abort Cooperative abort flag, polled while waiting.
 * @return nullopt on a clean EOF at a frame boundary (the peer closed
 *         the session); a Message otherwise.
 * @throws SimError{Transport} for short reads, torn frames, bad frame
 *         magic, oversized payloads, archive version or CRC failures;
 *         SimError{Timeout} on deadline expiry or abort.
 */
std::optional<Message> recvMessage(const Fd &fd, double timeout_ms,
                                   const std::atomic<bool> *abort =
                                       nullptr);

} // namespace ipc
} // namespace rasim

#endif // RASIM_IPC_FRAME_HH
