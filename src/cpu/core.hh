/**
 * @file
 * Coarse-grain core model: an in-order core abstracted to compute
 * bursts (geometric gaps derived from the workload's memory ratio)
 * punctuated by memory operations against its private L1. Loads block;
 * stores retire through a small store buffer. This closed loop — core
 * progress depends on memory latency, which depends on network
 * latency — is what isolated network simulation cannot capture.
 */

#ifndef RASIM_CPU_CORE_HH
#define RASIM_CPU_CORE_HH

#include <cstdint>
#include <memory>

#include "mem/l1_cache.hh"
#include "sim/event.hh"
#include "sim/rng.hh"
#include "sim/serialize.hh"
#include "sim/sim_object.hh"
#include "stats/stat.hh"
#include "workload/address_stream.hh"

namespace rasim
{
namespace cpu
{

struct CoreParams
{
    /** Probability an instruction slot is a memory operation. */
    double mem_ratio = 0.3;
    /** Memory operations to complete before the core finishes. */
    std::uint64_t ops_budget = 2000;
    /** Store buffer entries (stores outstanding past the core). */
    int store_buffer = 8;
};

class SyntheticCore : public SimObject, public Serializable
{
  public:
    SyntheticCore(Simulation &sim, const std::string &name, NodeId node,
                  mem::L1Cache &l1,
                  std::unique_ptr<workload::AddressStream> stream,
                  const CoreParams &params, SimObject *parent = nullptr);
    ~SyntheticCore() override;

    void init() override;

    /** True once the budget completed and all stores drained. */
    bool done() const;

    /** Tick the core finished (valid once done()). */
    Tick finishTick() const { return finish_tick_; }

    NodeId node() const { return node_; }

    void save(ArchiveWriter &aw) const override;
    void restore(ArchiveReader &ar) override;

    stats::Scalar opsIssued;
    stats::Scalar loadsCompleted;
    stats::Scalar storesCompleted;
    stats::Scalar stallRetries;
    stats::Scalar cyclesStalledEstimate;

  private:
    /** Advance to the next operation (schedules step_event_). */
    void scheduleNext();

    /** Issue the pending operation; re-entered on L1 retry. */
    void step();

    void loadDone();
    void storeDone();
    void checkFinished();

    NodeId node_;
    mem::L1Cache &l1_;
    std::unique_ptr<workload::AddressStream> stream_;
    CoreParams params_;
    Rng rng_;
    EventFunctionWrapper step_event_;

    std::uint64_t issued_ = 0;
    std::uint64_t completed_ = 0;
    int stores_in_flight_ = 0;
    bool waiting_load_ = false;
    bool blocked_store_full_ = false;
    bool have_pending_op_ = false;
    workload::MemOp pending_op_;
    bool finished_ = false;
    Tick finish_tick_ = 0;
    Tick last_stall_start_ = 0;
};

} // namespace cpu
} // namespace rasim

#endif // RASIM_CPU_CORE_HH
