#include "cpu/core.hh"

#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace rasim
{
namespace cpu
{

SyntheticCore::SyntheticCore(
    Simulation &sim, const std::string &name, NodeId node,
    mem::L1Cache &l1, std::unique_ptr<workload::AddressStream> stream,
    const CoreParams &params, SimObject *parent)
    : SimObject(sim, name, parent),
      opsIssued(this, "ops_issued", "memory operations issued"),
      loadsCompleted(this, "loads_completed", "loads completed"),
      storesCompleted(this, "stores_completed", "stores completed"),
      stallRetries(this, "stall_retries",
                   "issues rejected by full L1 resources"),
      cyclesStalledEstimate(this, "load_stall_cycles",
                            "cycles spent waiting on loads"),
      node_(node), l1_(l1), stream_(std::move(stream)), params_(params),
      rng_(sim.makeRng(0xc07e + node)),
      step_event_([this] { step(); }, name + ".step")
{
    if (params_.mem_ratio <= 0.0 || params_.mem_ratio > 1.0)
        fatal("core mem_ratio must be in (0, 1]");
    if (params_.store_buffer < 1)
        fatal("core store buffer must hold at least one entry");
    l1_.setRetryCallback([this] { step(); });
    // Lets the L1 rebuild our completion closures when restoring a
    // checkpoint: they are fully determined by the operation kind.
    l1_.setCompletionFactory([this](bool is_write) {
        return is_write ? mem::L1Cache::Callback([this] { storeDone(); })
                        : mem::L1Cache::Callback([this] { loadDone(); });
    });
}

SyntheticCore::~SyntheticCore()
{
    // Tolerate teardown of partial runs (tick-limited experiments).
    if (step_event_.scheduled())
        eventQueue().deschedule(&step_event_);
}

void
SyntheticCore::init()
{
    if (params_.ops_budget == 0) {
        finished_ = true;
        return;
    }
    scheduleNext();
}

void
SyntheticCore::scheduleNext()
{
    if (issued_ >= params_.ops_budget)
        return;
    // Compute burst: geometric gap with mean 1/mem_ratio models an
    // IPC-1 core whose instructions are memory ops with p = mem_ratio.
    Tick gap = 1 + rng_.geometric(params_.mem_ratio);
    eventQueue().reschedule(&step_event_, curTick() + gap);
}

void
SyntheticCore::step()
{
    if (finished_ || issued_ >= params_.ops_budget || waiting_load_)
        return;
    if (!have_pending_op_) {
        pending_op_ = stream_->next();
        have_pending_op_ = true;
    }

    if (pending_op_.is_write) {
        if (stores_in_flight_ >= params_.store_buffer) {
            blocked_store_full_ = true;
            return; // storeDone() re-enters
        }
        if (!l1_.access(pending_op_.addr, true, [this] { storeDone(); })) {
            ++stallRetries;
            return; // L1 retry callback re-enters
        }
        ++stores_in_flight_;
        ++issued_;
        ++opsIssued;
        have_pending_op_ = false;
        scheduleNext();
        return;
    }

    if (!l1_.access(pending_op_.addr, false, [this] { loadDone(); })) {
        ++stallRetries;
        return;
    }
    waiting_load_ = true;
    last_stall_start_ = curTick();
    ++issued_;
    ++opsIssued;
    have_pending_op_ = false;
}

void
SyntheticCore::loadDone()
{
    waiting_load_ = false;
    cyclesStalledEstimate +=
        static_cast<double>(curTick() - last_stall_start_);
    ++completed_;
    ++loadsCompleted;
    checkFinished();
    if (!finished_)
        scheduleNext();
}

void
SyntheticCore::storeDone()
{
    --stores_in_flight_;
    ++completed_;
    ++storesCompleted;
    if (blocked_store_full_) {
        blocked_store_full_ = false;
        step();
    }
    checkFinished();
}

void
SyntheticCore::checkFinished()
{
    if (finished_)
        return;
    if (completed_ >= params_.ops_budget && stores_in_flight_ == 0 &&
        !waiting_load_) {
        finished_ = true;
        finish_tick_ = curTick();
    }
}

bool
SyntheticCore::done() const
{
    return finished_;
}

void
SyntheticCore::save(ArchiveWriter &aw) const
{
    aw.beginSection("core");
    const Rng::State rs = rng_.state();
    aw.putU64(rs.state);
    aw.putU64(rs.inc);
    stream_->save(aw);

    aw.putBool(step_event_.scheduled());
    if (step_event_.scheduled()) {
        aw.putU64(step_event_.when());
        aw.putU64(step_event_.sequence());
    }

    aw.putU64(issued_);
    aw.putU64(completed_);
    aw.putI64(stores_in_flight_);
    aw.putBool(waiting_load_);
    aw.putBool(blocked_store_full_);
    aw.putBool(have_pending_op_);
    aw.putU64(pending_op_.addr);
    aw.putBool(pending_op_.is_write);
    aw.putBool(finished_);
    aw.putU64(finish_tick_);
    aw.putU64(last_stall_start_);
    aw.endSection();
}

void
SyntheticCore::restore(ArchiveReader &ar)
{
    ar.expectSection("core");
    Rng::State rs;
    rs.state = ar.getU64();
    rs.inc = ar.getU64();
    rng_.setState(rs);
    stream_->restore(ar);

    if (ar.getBool()) {
        Tick when = ar.getU64();
        std::uint64_t seq = ar.getU64();
        eventQueue().scheduleWithSequence(&step_event_, when, seq);
    }

    issued_ = ar.getU64();
    completed_ = ar.getU64();
    stores_in_flight_ = static_cast<int>(ar.getI64());
    waiting_load_ = ar.getBool();
    blocked_store_full_ = ar.getBool();
    have_pending_op_ = ar.getBool();
    pending_op_.addr = ar.getU64();
    pending_op_.is_write = ar.getBool();
    finished_ = ar.getBool();
    finish_tick_ = ar.getU64();
    last_stall_start_ = ar.getU64();
    ar.endSection();
}

} // namespace cpu
} // namespace rasim
