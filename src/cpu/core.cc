#include "cpu/core.hh"

#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace rasim
{
namespace cpu
{

SyntheticCore::SyntheticCore(
    Simulation &sim, const std::string &name, NodeId node,
    mem::L1Cache &l1, std::unique_ptr<workload::AddressStream> stream,
    const CoreParams &params, SimObject *parent)
    : SimObject(sim, name, parent),
      opsIssued(this, "ops_issued", "memory operations issued"),
      loadsCompleted(this, "loads_completed", "loads completed"),
      storesCompleted(this, "stores_completed", "stores completed"),
      stallRetries(this, "stall_retries",
                   "issues rejected by full L1 resources"),
      cyclesStalledEstimate(this, "load_stall_cycles",
                            "cycles spent waiting on loads"),
      node_(node), l1_(l1), stream_(std::move(stream)), params_(params),
      rng_(sim.makeRng(0xc07e + node)),
      step_event_([this] { step(); }, name + ".step")
{
    if (params_.mem_ratio <= 0.0 || params_.mem_ratio > 1.0)
        fatal("core mem_ratio must be in (0, 1]");
    if (params_.store_buffer < 1)
        fatal("core store buffer must hold at least one entry");
    l1_.setRetryCallback([this] { step(); });
}

SyntheticCore::~SyntheticCore()
{
    // Tolerate teardown of partial runs (tick-limited experiments).
    if (step_event_.scheduled())
        eventQueue().deschedule(&step_event_);
}

void
SyntheticCore::init()
{
    if (params_.ops_budget == 0) {
        finished_ = true;
        return;
    }
    scheduleNext();
}

void
SyntheticCore::scheduleNext()
{
    if (issued_ >= params_.ops_budget)
        return;
    // Compute burst: geometric gap with mean 1/mem_ratio models an
    // IPC-1 core whose instructions are memory ops with p = mem_ratio.
    Tick gap = 1 + rng_.geometric(params_.mem_ratio);
    eventQueue().reschedule(&step_event_, curTick() + gap);
}

void
SyntheticCore::step()
{
    if (finished_ || issued_ >= params_.ops_budget || waiting_load_)
        return;
    if (!have_pending_op_) {
        pending_op_ = stream_->next();
        have_pending_op_ = true;
    }

    if (pending_op_.is_write) {
        if (stores_in_flight_ >= params_.store_buffer) {
            blocked_store_full_ = true;
            return; // storeDone() re-enters
        }
        if (!l1_.access(pending_op_.addr, true, [this] { storeDone(); })) {
            ++stallRetries;
            return; // L1 retry callback re-enters
        }
        ++stores_in_flight_;
        ++issued_;
        ++opsIssued;
        have_pending_op_ = false;
        scheduleNext();
        return;
    }

    if (!l1_.access(pending_op_.addr, false, [this] { loadDone(); })) {
        ++stallRetries;
        return;
    }
    waiting_load_ = true;
    last_stall_start_ = curTick();
    ++issued_;
    ++opsIssued;
    have_pending_op_ = false;
}

void
SyntheticCore::loadDone()
{
    waiting_load_ = false;
    cyclesStalledEstimate +=
        static_cast<double>(curTick() - last_stall_start_);
    ++completed_;
    ++loadsCompleted;
    checkFinished();
    if (!finished_)
        scheduleNext();
}

void
SyntheticCore::storeDone()
{
    --stores_in_flight_;
    ++completed_;
    ++storesCompleted;
    if (blocked_store_full_) {
        blocked_store_full_ = false;
        step();
    }
    checkFinished();
}

void
SyntheticCore::checkFinished()
{
    if (finished_)
        return;
    if (completed_ >= params_.ops_budget && stores_in_flight_ == 0 &&
        !waiting_load_) {
        finished_ = true;
        finish_tick_ = curTick();
    }
}

bool
SyntheticCore::done() const
{
    return finished_;
}

} // namespace cpu
} // namespace rasim
