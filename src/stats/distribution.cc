#include "stats/distribution.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace rasim
{
namespace stats
{

void
Distribution::sample(double v, std::uint64_t count)
{
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    count_ += count;
    sum_ += v * count;
    sum_sq_ += v * v * count;
}

double
Distribution::minValue() const
{
    return count_ ? min_ : 0.0;
}

double
Distribution::maxValue() const
{
    return count_ ? max_ : 0.0;
}

double
Distribution::stddev() const
{
    if (count_ < 2)
        return 0.0;
    double n = static_cast<double>(count_);
    double var = (sum_sq_ - sum_ * sum_ / n) / (n - 1.0);
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

std::vector<std::pair<std::string, double>>
Distribution::values() const
{
    return {{"mean", mean()},
            {"min", minValue()},
            {"max", maxValue()},
            {"stddev", stddev()},
            {"count", static_cast<double>(count_)}};
}

void
Distribution::reset()
{
    count_ = 0;
    sum_ = 0.0;
    sum_sq_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

Histogram::Histogram(Group *parent, std::string name, std::string desc,
                     std::size_t num_buckets, double bucket_width)
    : Stat(parent, std::move(name), std::move(desc)),
      width_(bucket_width), buckets_(num_buckets, 0)
{
    if (num_buckets == 0 || bucket_width <= 0.0)
        panic("histogram '", this->name(), "' needs buckets and width");
}

void
Histogram::sample(double v, std::uint64_t count)
{
    total_ += count;
    if (v < 0.0) {
        overflow_ += count; // Treat negatives as out-of-range.
        return;
    }
    auto idx = static_cast<std::size_t>(v / width_);
    if (idx >= buckets_.size())
        overflow_ += count;
    else
        buckets_[idx] += count;
}

std::vector<std::pair<std::string, double>>
Histogram::values() const
{
    std::vector<std::pair<std::string, double>> out;
    out.reserve(buckets_.size() + 2);
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        out.emplace_back("bucket" + std::to_string(i),
                         static_cast<double>(buckets_[i]));
    }
    out.emplace_back("overflow", static_cast<double>(overflow_));
    out.emplace_back("total", static_cast<double>(total_));
    return out;
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    overflow_ = 0;
    total_ = 0;
}

} // namespace stats
} // namespace rasim
