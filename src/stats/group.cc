#include "stats/group.hh"

#include <algorithm>
#include <utility>

#include "stats/stat.hh"

namespace rasim
{
namespace stats
{

Group::Group(Group *parent, std::string name)
    : parent_(parent), name_(std::move(name))
{
    if (parent_)
        parent_->addChild(this);
}

Group::~Group()
{
    if (parent_)
        parent_->removeChild(this);
}

std::string
Group::path() const
{
    if (!parent_)
        return name_;
    std::string p = parent_->path();
    return p.empty() ? name_ : p + "." + name_;
}

void
Group::addStat(Stat *s)
{
    stats_.push_back(s);
}

void
Group::removeStat(Stat *s)
{
    stats_.erase(std::remove(stats_.begin(), stats_.end(), s),
                 stats_.end());
}

void
Group::addChild(Group *g)
{
    children_.push_back(g);
}

void
Group::removeChild(Group *g)
{
    children_.erase(std::remove(children_.begin(), children_.end(), g),
                    children_.end());
}

void
Group::resetAll()
{
    for (Stat *s : stats_)
        s->reset();
    for (Group *g : children_)
        g->resetAll();
}

} // namespace stats
} // namespace rasim
