/**
 * @file
 * Scalar statistics. Components declare stats as members and register
 * them with their Group (usually the owning SimObject).
 */

#ifndef RASIM_STATS_STAT_HH
#define RASIM_STATS_STAT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace rasim
{
namespace stats
{

class Group;

/**
 * Base class of all statistics. A stat has a name and description and
 * renders itself as one or more (sub-name, value) pairs.
 */
class Stat
{
  public:
    Stat(Group *parent, std::string name, std::string desc);
    virtual ~Stat();

    Stat(const Stat &) = delete;
    Stat &operator=(const Stat &) = delete;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /**
     * Flatten to (sub-name, value) pairs. Scalars produce one pair with
     * an empty sub-name; distributions produce mean/min/max/etc.
     */
    virtual std::vector<std::pair<std::string, double>> values() const = 0;

    /** Reset to the just-constructed state. */
    virtual void reset() = 0;

  private:
    Group *parent_;
    std::string name_;
    std::string desc_;
};

/** A simple accumulating counter/gauge. */
class Scalar : public Stat
{
  public:
    using Stat::Stat;

    Scalar &
    operator+=(double v)
    {
        value_ += v;
        return *this;
    }

    Scalar &
    operator++()
    {
        value_ += 1.0;
        return *this;
    }

    void set(double v) { value_ = v; }
    double value() const { return value_; }

    std::vector<std::pair<std::string, double>> values() const override;
    void reset() override { value_ = 0.0; }

  private:
    double value_ = 0.0;
};

/** Mean of sampled values (reports mean and sample count). */
class Average : public Stat
{
  public:
    using Stat::Stat;

    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
    }

    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }

    /** Overwrite the raw accumulators (checkpoint restore). */
    void
    setState(double sum, std::uint64_t count)
    {
        sum_ = sum;
        count_ = count;
    }

    std::vector<std::pair<std::string, double>> values() const override;

    void
    reset() override
    {
        sum_ = 0.0;
        count_ = 0;
    }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
};

/**
 * A derived value computed at dump time from other state, e.g.
 * occupancy ratios or rates.
 */
class Value : public Stat
{
  public:
    Value(Group *parent, std::string name, std::string desc,
          std::function<double()> fn);

    double value() const { return fn_ ? fn_() : 0.0; }

    std::vector<std::pair<std::string, double>> values() const override;
    void reset() override {}

  private:
    std::function<double()> fn_;
};

} // namespace stats
} // namespace rasim

#endif // RASIM_STATS_STAT_HH
