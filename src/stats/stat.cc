#include "stats/stat.hh"

#include "stats/group.hh"

namespace rasim
{
namespace stats
{

Stat::Stat(Group *parent, std::string name, std::string desc)
    : parent_(parent), name_(std::move(name)), desc_(std::move(desc))
{
    if (parent_)
        parent_->addStat(this);
}

Stat::~Stat()
{
    if (parent_)
        parent_->removeStat(this);
}

std::vector<std::pair<std::string, double>>
Scalar::values() const
{
    return {{"", value_}};
}

std::vector<std::pair<std::string, double>>
Average::values() const
{
    return {{"mean", mean()},
            {"count", static_cast<double>(count_)}};
}

Value::Value(Group *parent, std::string name, std::string desc,
             std::function<double()> fn)
    : Stat(parent, std::move(name), std::move(desc)), fn_(std::move(fn))
{
}

std::vector<std::pair<std::string, double>>
Value::values() const
{
    return {{"", value()}};
}

} // namespace stats
} // namespace rasim
