#include "stats/output.hh"

#include <cmath>
#include <functional>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>

#include "stats/distribution.hh"
#include "stats/group.hh"
#include "stats/stat.hh"

namespace rasim
{
namespace stats
{

namespace
{

/** Visit every (full path, value, description) triple in the subtree. */
void
visit(const Group &g, const std::string &prefix,
      const std::function<void(const std::string &, double,
                               const std::string &)> &fn)
{
    std::string base = prefix.empty() ? g.groupName()
                                      : prefix + "." + g.groupName();
    for (const Stat *s : g.statList()) {
        for (const auto &[sub, v] : s->values()) {
            std::string path = base + "." + s->name();
            if (!sub.empty())
                path += "::" + sub;
            fn(path, v, s->desc());
        }
    }
    for (const Group *c : g.children())
        visit(*c, base, fn);
}

} // namespace

void
dumpText(std::ostream &os, const Group &root)
{
    visit(root, "", [&os](const std::string &path, double v,
                          const std::string &desc) {
        os << std::left << std::setw(56) << path << " " << std::setw(16)
           << v;
        if (!desc.empty())
            os << " # " << desc;
        os << "\n";
    });
}

void
dumpCsv(std::ostream &os, const Group &root)
{
    os << "stat,value\n";
    visit(root, "", [&os](const std::string &path, double v,
                          const std::string &) {
        os << path << "," << v << "\n";
    });
}

void
dumpJson(std::ostream &os, const Group &root)
{
    os << "{";
    bool first = true;
    visit(root, "", [&](const std::string &path, double v,
                        const std::string &) {
        if (!first)
            os << ",";
        first = false;
        os << "\n  \"";
        for (char c : path) {
            // Paths are programmer-chosen identifiers, but stay a
            // valid JSON emitter for any of them.
            switch (c) {
              case '"':
                os << "\\\"";
                break;
              case '\\':
                os << "\\\\";
                break;
              default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    os << "\\u" << std::hex << std::setw(4)
                       << std::setfill('0') << static_cast<int>(c)
                       << std::dec << std::setfill(' ');
                } else {
                    os << c;
                }
            }
        }
        os << "\": ";
        if (std::isfinite(v)) {
            std::ostringstream num;
            num << std::setprecision(
                       std::numeric_limits<double>::max_digits10)
                << v;
            os << num.str();
        } else {
            os << "null";
        }
    });
    os << "\n}\n";
}

double
findValue(const Group &root, const std::string &path)
{
    double result = std::numeric_limits<double>::quiet_NaN();
    visit(root, "", [&](const std::string &p, double v,
                        const std::string &) {
        if (p == path)
            result = v;
    });
    return result;
}

} // namespace stats
} // namespace rasim
