/**
 * @file
 * Rendering of a statistics tree as aligned text or CSV.
 */

#ifndef RASIM_STATS_OUTPUT_HH
#define RASIM_STATS_OUTPUT_HH

#include <iosfwd>
#include <string>

namespace rasim
{
namespace stats
{

class Group;

/**
 * Dump the subtree rooted at @p root as "path value  # description"
 * lines, one per (stat, sub-value).
 */
void dumpText(std::ostream &os, const Group &root);

/** Dump as CSV with a "stat,value" header. */
void dumpCsv(std::ostream &os, const Group &root);

/**
 * Dump as a flat JSON object mapping the full dotted path of every
 * (stat, sub-value) to its value. Doubles are rendered at full
 * round-trip precision; NaN and infinities (not representable in
 * JSON) become null.
 */
void dumpJson(std::ostream &os, const Group &root);

/** Find a stat value by full dotted path (for tests); NaN if missing. */
double findValue(const Group &root, const std::string &path);

} // namespace stats
} // namespace rasim

#endif // RASIM_STATS_OUTPUT_HH
