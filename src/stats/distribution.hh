/**
 * @file
 * Sampled-distribution statistics: moment tracking and fixed-width
 * bucketed histograms.
 */

#ifndef RASIM_STATS_DISTRIBUTION_HH
#define RASIM_STATS_DISTRIBUTION_HH

#include <cstdint>
#include <vector>

#include "stats/stat.hh"

namespace rasim
{
namespace stats
{

/**
 * Tracks count, mean, min, max and standard deviation of samples
 * without storing them.
 */
class Distribution : public Stat
{
  public:
    using Stat::Stat;

    void sample(double v, std::uint64_t count = 1);

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double minValue() const;
    double maxValue() const;
    double stddev() const;
    double sum() const { return sum_; }

    /** Raw accumulators for checkpointing (min/max without the
     *  count-guard that minValue()/maxValue() apply). */
    double sumSq() const { return sum_sq_; }
    double rawMin() const { return min_; }
    double rawMax() const { return max_; }

    /** Overwrite the raw accumulators (checkpoint restore). */
    void
    setState(std::uint64_t count, double sum, double sum_sq, double min,
             double max)
    {
        count_ = count;
        sum_ = sum;
        sum_sq_ = sum_sq;
        min_ = min;
        max_ = max;
    }

    std::vector<std::pair<std::string, double>> values() const override;
    void reset() override;

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double sum_sq_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Fixed-width bucket histogram over [0, buckets*width), with explicit
 * overflow accounting. Bucket boundaries are [i*width, (i+1)*width).
 */
class Histogram : public Stat
{
  public:
    Histogram(Group *parent, std::string name, std::string desc,
              std::size_t num_buckets, double bucket_width);

    void sample(double v, std::uint64_t count = 1);

    std::uint64_t bucketCount(std::size_t i) const { return buckets_[i]; }
    std::size_t numBuckets() const { return buckets_.size(); }
    double bucketWidth() const { return width_; }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t totalCount() const { return total_; }

    /** Overwrite bucket contents (checkpoint restore). @pre the bucket
     *  count matches the configured geometry. */
    void
    setState(std::vector<std::uint64_t> buckets, std::uint64_t overflow,
             std::uint64_t total)
    {
        buckets_ = std::move(buckets);
        overflow_ = overflow;
        total_ = total;
    }

    std::vector<std::pair<std::string, double>> values() const override;
    void reset() override;

  private:
    double width_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

} // namespace stats
} // namespace rasim

#endif // RASIM_STATS_DISTRIBUTION_HH
