/**
 * @file
 * Hierarchical registry of statistics mirroring the component tree.
 */

#ifndef RASIM_STATS_GROUP_HH
#define RASIM_STATS_GROUP_HH

#include <string>
#include <vector>

namespace rasim
{
namespace stats
{

class Stat;

/**
 * A named node in the statistics tree. SimObject derives from Group so
 * each component's stats dump under its hierarchical name. Groups hold
 * non-owning pointers; stats and children deregister on destruction.
 */
class Group
{
  public:
    Group(Group *parent, std::string name);
    virtual ~Group();

    Group(const Group &) = delete;
    Group &operator=(const Group &) = delete;

    const std::string &groupName() const { return name_; }

    /** Fully qualified dotted path from the root. */
    std::string path() const;

    void addStat(Stat *s);
    void removeStat(Stat *s);
    void addChild(Group *g);
    void removeChild(Group *g);

    const std::vector<Stat *> &statList() const { return stats_; }
    const std::vector<Group *> &children() const { return children_; }

    /** Reset every stat in this subtree. */
    void resetAll();

  private:
    Group *parent_;
    std::string name_;
    std::vector<Stat *> stats_;
    std::vector<Group *> children_;
};

} // namespace stats
} // namespace rasim

#endif // RASIM_STATS_GROUP_HH
