/**
 * @file
 * Tests for the coarse-grain synthetic core driving a real memory
 * hierarchy and network (the closed loop the paper relies on).
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cpu/core.hh"
#include "mem/memory_system.hh"
#include "noc/cycle_network.hh"
#include "sim/simulation.hh"
#include "workload/app_profiles.hh"

namespace
{

using namespace rasim;
using namespace rasim::cpu;

struct CoreFixture
{
    explicit CoreFixture(int cols = 4, int rows = 4)
        : net(sim, "noc",
              [cols, rows] {
                  noc::NocParams p;
                  p.columns = cols;
                  p.rows = rows;
                  return p;
              }()),
          mem(sim, "mem", net, mem::MemParams())
    {
    }

    SyntheticCore &
    addCore(NodeId node, const workload::AppProfile &app,
            std::uint64_t ops)
    {
        CoreParams cp;
        cp.mem_ratio = app.mem_ratio;
        cp.ops_budget = ops;
        auto stream = std::make_unique<workload::SyntheticStream>(
            app.stream, node, mem.params().block_bytes,
            sim.makeRng(0x5000 + node));
        cores.push_back(std::make_unique<SyntheticCore>(
            sim, "core" + std::to_string(node), node, mem.l1(node),
            std::move(stream), cp));
        return *cores.back();
    }

    bool
    runUntilDone(Tick limit)
    {
        Tick t = sim.curTick();
        while (t < limit) {
            t += 1;
            sim.run(t);
            net.advanceTo(t);
            bool all = true;
            for (auto &c : cores)
                all &= c->done();
            if (all && mem.quiescent())
                return true;
        }
        return false;
    }

    Simulation sim;
    noc::CycleNetwork net;
    mem::MemorySystem mem;
    std::vector<std::unique_ptr<SyntheticCore>> cores;
};

TEST(SyntheticCore, CompletesItsBudget)
{
    CoreFixture f;
    auto &core = f.addCore(0, workload::appProfile("lu"), 300);
    ASSERT_TRUE(f.runUntilDone(500000));
    EXPECT_TRUE(core.done());
    EXPECT_DOUBLE_EQ(core.opsIssued.value(), 300.0);
    EXPECT_DOUBLE_EQ(core.loadsCompleted.value() +
                         core.storesCompleted.value(),
                     300.0);
    EXPECT_GT(core.finishTick(), 300u);
}

TEST(SyntheticCore, ZeroBudgetFinishesImmediately)
{
    CoreFixture f;
    auto &core = f.addCore(0, workload::appProfile("lu"), 0);
    f.sim.run(10);
    EXPECT_TRUE(core.done());
}

TEST(SyntheticCore, AllNodesProgressTogether)
{
    CoreFixture f;
    for (NodeId n = 0; n < 16; ++n)
        f.addCore(n, workload::appProfile("fft"), 150);
    ASSERT_TRUE(f.runUntilDone(1000000));
    for (auto &c : f.cores)
        EXPECT_TRUE(c->done());
    // Sharing means the network actually carried traffic.
    EXPECT_GT(f.net.packetsDelivered.value(), 16 * 10);
}

TEST(SyntheticCore, MemoryIntensityShortensComputeGaps)
{
    // A memory-hungrier profile issues its budget in fewer cycles of
    // compute, so — with identical memory systems — it finishes with
    // higher traffic density. Compare finish ticks normalised per op.
    CoreFixture light_f, heavy_f;
    workload::AppProfile light = workload::appProfile("water"); // 0.25
    workload::AppProfile heavy = workload::appProfile("ocean"); // 0.5
    light.stream.shared_frac = 0.0; // isolate compute-gap effect
    heavy.stream.shared_frac = 0.0;
    auto &cl = light_f.addCore(0, light, 400);
    auto &ch = heavy_f.addCore(0, heavy, 400);
    ASSERT_TRUE(light_f.runUntilDone(500000));
    ASSERT_TRUE(heavy_f.runUntilDone(500000));
    EXPECT_LT(ch.finishTick(), cl.finishTick());
}

TEST(SyntheticCore, LoadLatencyFeedsBackIntoRuntime)
{
    // The closed loop: a slower network must slow the core down. Use a
    // deeper router pipeline as the slower fabric.
    auto run = [](int stages) {
        Simulation sim;
        noc::NocParams np;
        np.columns = 4;
        np.rows = 4;
        np.pipeline_stages = stages;
        noc::CycleNetwork net(sim, "noc", np);
        mem::MemorySystem mem(sim, "mem", net, mem::MemParams());
        workload::AppProfile app = workload::appProfile("barnes");
        CoreParams cp;
        cp.mem_ratio = app.mem_ratio;
        cp.ops_budget = 300;
        SyntheticCore core(
            sim, "core", 0, mem.l1(0),
            std::make_unique<workload::SyntheticStream>(
                app.stream, 0, 64, sim.makeRng(0x77)),
            cp);
        Tick t = 0;
        while (!core.done() && t < 1000000) {
            ++t;
            sim.run(t);
            net.advanceTo(t);
        }
        EXPECT_TRUE(core.done());
        return core.finishTick();
    };
    Tick fast = run(1);
    Tick slow = run(6);
    EXPECT_GT(slow, fast);
}

TEST(SyntheticCore, StatsAreConsistent)
{
    CoreFixture f;
    auto &core = f.addCore(2, workload::appProfile("radix"), 250);
    ASSERT_TRUE(f.runUntilDone(500000));
    EXPECT_DOUBLE_EQ(core.loadsCompleted.value() +
                         core.storesCompleted.value(),
                     core.opsIssued.value());
    // radix writes a lot: stores must dominate the default 0.3 mix.
    EXPECT_GT(core.storesCompleted.value(), 250 * 0.4);
}

} // namespace
