/**
 * @file
 * Tests for scalar/average/value stats, distributions, histograms,
 * groups and text/CSV output.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "stats/distribution.hh"
#include "stats/group.hh"
#include "stats/output.hh"
#include "stats/stat.hh"

namespace
{

using namespace rasim::stats;

TEST(Scalar, AccumulatesAndResets)
{
    Group root(nullptr, "root");
    Scalar s(&root, "count", "a counter");
    ++s;
    s += 4.5;
    EXPECT_DOUBLE_EQ(s.value(), 5.5);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Scalar, SetOverwrites)
{
    Group root(nullptr, "root");
    Scalar s(&root, "gauge", "");
    s.set(7);
    EXPECT_DOUBLE_EQ(s.value(), 7.0);
}

TEST(Average, MeanOfSamples)
{
    Group root(nullptr, "root");
    Average a(&root, "lat", "latency");
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(10);
    a.sample(20);
    a.sample(30);
    EXPECT_DOUBLE_EQ(a.mean(), 20.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.sum(), 60.0);
}

TEST(Value, EvaluatesCallback)
{
    Group root(nullptr, "root");
    double x = 1.0;
    Value v(&root, "derived", "", [&] { return x * 2; });
    EXPECT_DOUBLE_EQ(v.value(), 2.0);
    x = 5.0;
    EXPECT_DOUBLE_EQ(v.value(), 10.0);
}

TEST(Distribution, Moments)
{
    Group root(nullptr, "root");
    Distribution d(&root, "dist", "");
    d.sample(2);
    d.sample(4);
    d.sample(4);
    d.sample(4);
    d.sample(5);
    d.sample(5);
    d.sample(7);
    d.sample(9);
    EXPECT_EQ(d.count(), 8u);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_DOUBLE_EQ(d.minValue(), 2.0);
    EXPECT_DOUBLE_EQ(d.maxValue(), 9.0);
    // Sample stddev of {2,4,4,4,5,5,7,9} is sqrt(32/7).
    EXPECT_NEAR(d.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Distribution, EmptyIsZero)
{
    Group root(nullptr, "root");
    Distribution d(&root, "dist", "");
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.minValue(), 0.0);
    EXPECT_DOUBLE_EQ(d.maxValue(), 0.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
}

TEST(Distribution, WeightedSamples)
{
    Group root(nullptr, "root");
    Distribution d(&root, "dist", "");
    d.sample(10, 4);
    EXPECT_EQ(d.count(), 4u);
    EXPECT_DOUBLE_EQ(d.mean(), 10.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Group root(nullptr, "root");
    Histogram h(&root, "hist", "", 4, 10.0);
    h.sample(0);
    h.sample(9.99);
    h.sample(10);
    h.sample(35);
    h.sample(40); // overflow
    h.sample(-1); // out of range
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 0u);
    EXPECT_EQ(h.bucketCount(3), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.totalCount(), 6u);
}

TEST(Histogram, ResetClears)
{
    Group root(nullptr, "root");
    Histogram h(&root, "hist", "", 2, 1.0);
    h.sample(0.5);
    h.reset();
    EXPECT_EQ(h.bucketCount(0), 0u);
    EXPECT_EQ(h.totalCount(), 0u);
}

TEST(Group, PathsAreHierarchical)
{
    Group root(nullptr, "system");
    Group mid(&root, "noc");
    Group leaf(&mid, "router3");
    EXPECT_EQ(leaf.path(), "system.noc.router3");
}

TEST(Group, ResetAllRecurses)
{
    Group root(nullptr, "system");
    Group child(&root, "c");
    Scalar a(&root, "a", "");
    Scalar b(&child, "b", "");
    a += 1;
    b += 2;
    root.resetAll();
    EXPECT_DOUBLE_EQ(a.value(), 0.0);
    EXPECT_DOUBLE_EQ(b.value(), 0.0);
}

TEST(Group, StatDeregistersOnDestruction)
{
    Group root(nullptr, "system");
    {
        Scalar tmp(&root, "tmp", "");
        EXPECT_EQ(root.statList().size(), 1u);
    }
    EXPECT_TRUE(root.statList().empty());
}

TEST(Output, TextDumpContainsPathsValuesDescriptions)
{
    Group root(nullptr, "system");
    Group noc(&root, "noc");
    Scalar s(&noc, "pkts", "packets injected");
    s += 12;
    std::ostringstream os;
    dumpText(os, root);
    std::string text = os.str();
    EXPECT_NE(text.find("system.noc.pkts"), std::string::npos);
    EXPECT_NE(text.find("12"), std::string::npos);
    EXPECT_NE(text.find("packets injected"), std::string::npos);
}

TEST(Output, CsvDumpHasHeaderAndRows)
{
    Group root(nullptr, "system");
    Average a(&root, "lat", "");
    a.sample(4);
    std::ostringstream os;
    dumpCsv(os, root);
    std::string text = os.str();
    EXPECT_EQ(text.rfind("stat,value\n", 0), 0u);
    EXPECT_NE(text.find("system.lat::mean,4"), std::string::npos);
    EXPECT_NE(text.find("system.lat::count,1"), std::string::npos);
}

TEST(Output, JsonDumpIsFlatAndFullPrecision)
{
    Group root(nullptr, "system");
    Group noc(&root, "noc");
    Scalar s(&noc, "pkts", "");
    s += 12;
    Average a(&root, "lat", "");
    // A value CSV would round away; JSON must round-trip exactly.
    a.sample(1.0 / 3.0);
    std::ostringstream os;
    dumpJson(os, root);
    std::string text = os.str();
    EXPECT_EQ(text.front(), '{');
    EXPECT_NE(text.find("\"system.noc.pkts\": 12"), std::string::npos);
    EXPECT_NE(text.find("\"system.lat::count\": 1"), std::string::npos);
    EXPECT_NE(text.find("0.33333333333333331"), std::string::npos);
    // Rows are comma-separated: count the pairs.
    std::size_t rows = 0;
    for (std::size_t at = text.find("\": "); at != std::string::npos;
         at = text.find("\": ", at + 1))
        ++rows;
    std::size_t commas = 0;
    for (char c : text)
        if (c == ',')
            ++commas;
    EXPECT_EQ(commas + 1, rows);
}

TEST(Output, JsonDumpRendersNonFiniteAsNull)
{
    Group root(nullptr, "system");
    Scalar nan(&root, "nan", "");
    Scalar inf(&root, "inf", "");
    nan.set(std::nan(""));
    inf.set(std::numeric_limits<double>::infinity());
    std::ostringstream os;
    dumpJson(os, root);
    EXPECT_NE(os.str().find("\"system.nan\": null"), std::string::npos);
    EXPECT_NE(os.str().find("\"system.inf\": null"), std::string::npos);
    EXPECT_EQ(os.str().find("nan\": nan"), std::string::npos);
}

TEST(Output, FindValueLocatesSubValues)
{
    Group root(nullptr, "system");
    Distribution d(&root, "d", "");
    d.sample(3);
    d.sample(5);
    EXPECT_DOUBLE_EQ(findValue(root, "system.d::mean"), 4.0);
    EXPECT_DOUBLE_EQ(findValue(root, "system.d::count"), 2.0);
    EXPECT_TRUE(std::isnan(findValue(root, "system.nope")));
}

} // namespace
